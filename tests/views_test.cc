// Tests for the data profile, working set, and miss classification views.

#include <gtest/gtest.h>

#include "src/dprof/data_profile.h"
#include "src/dprof/miss_classifier.h"
#include "src/dprof/working_set.h"

namespace dprof {
namespace {

void AddSamples(AccessSampleTable* table, TypeId type, FunctionId ip, uint32_t offset,
                ServedBy level, int count, int core = 0) {
  for (int i = 0; i < count; ++i) {
    IbsSample s;
    s.core = core;
    s.ip = ip;
    s.vaddr = 0x1000 + offset;
    s.level = level;
    s.latency = LatencyModel().Of(level);
    ResolveResult r;
    r.valid = true;
    r.type = type;
    r.base = 0x1000;
    r.offset = offset;
    table->Record(s, r);
  }
}

struct ViewsFixture : ::testing::Test {
  ViewsFixture() {
    hot = registry.Register("hot_type", 256);
    cold = registry.Register("cold_type", 64);
    shared = registry.Register("shared_type", 128);
    // Address-set population: hot has many live objects, cold a few.
    for (int i = 0; i < 64; ++i) {
      addresses.OnAlloc(hot, 0x10000 + static_cast<Addr>(i) * 256, 256, 0, 10);
    }
    for (int i = 0; i < 4; ++i) {
      addresses.OnAlloc(cold, 0x40000 + static_cast<Addr>(i) * 64, 64, 0, 10);
    }
    addresses.OnAlloc(shared, 0x50000, 128, 0, 10);

    AddSamples(&samples, hot, 1, 0, ServedBy::kDram, 60);
    AddSamples(&samples, hot, 1, 64, ServedBy::kL1, 40);
    AddSamples(&samples, cold, 2, 0, ServedBy::kL2, 10);
    AddSamples(&samples, shared, 3, 0, ServedBy::kForeignCache, 30);
    AddSamples(&samples, shared, 3, 0, ServedBy::kL1, 10);
  }

  TypeRegistry registry;
  AccessSampleTable samples;
  AddressSet addresses;
  TypeId hot = kInvalidType;
  TypeId cold = kInvalidType;
  TypeId shared = kInvalidType;
  static constexpr uint64_t kNow = 1000;
};

TEST_F(ViewsFixture, DataProfileRanksByMissShare) {
  const DataProfile profile = DataProfile::Build(registry, samples, addresses, kNow);
  ASSERT_EQ(profile.rows().size(), 3u);
  EXPECT_EQ(profile.rows()[0].name, "hot_type");  // 60 misses
  EXPECT_EQ(profile.rows()[1].name, "shared_type");  // 30 misses
  EXPECT_EQ(profile.rows()[2].name, "cold_type");  // 10 misses
  EXPECT_NEAR(profile.rows()[0].miss_pct, 60.0, 1e-9);
  EXPECT_NEAR(profile.rows()[1].miss_pct, 30.0, 1e-9);
}

TEST_F(ViewsFixture, DataProfileBounceFromForeignFraction) {
  const DataProfile profile = DataProfile::Build(registry, samples, addresses, kNow);
  EXPECT_FALSE(profile.Find(hot)->bounce);
  EXPECT_TRUE(profile.Find(shared)->bounce);
  EXPECT_FALSE(profile.Find(cold)->bounce);
}

TEST_F(ViewsFixture, DataProfileWorkingSetFromAddressSet) {
  const DataProfile profile = DataProfile::Build(registry, samples, addresses, kNow);
  // 64 hot objects of 256B live from t=10 to now=1000: ~16KB.
  EXPECT_NEAR(profile.Find(hot)->working_set_bytes, 64 * 256 * 0.99, 64 * 256 * 0.05);
}

TEST_F(ViewsFixture, DataProfileTopTypesAndTable) {
  const DataProfile profile = DataProfile::Build(registry, samples, addresses, kNow);
  const auto top2 = profile.TopTypes(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0], hot);
  const std::string table = profile.ToTable(2);
  EXPECT_NE(table.find("hot_type"), std::string::npos);
  EXPECT_NE(table.find("Total"), std::string::npos);
  EXPECT_EQ(table.find("cold_type"), std::string::npos);  // beyond top 2
}

TEST_F(ViewsFixture, WorkingSetRowsSortedByLiveBytes) {
  WorkingSetOptions options;
  options.geometry = CacheGeometry{64 * 1024, 64, 8};
  const WorkingSetView view =
      WorkingSetView::Build(registry, addresses, samples, kNow, options);
  ASSERT_GE(view.rows().size(), 2u);
  EXPECT_EQ(view.rows()[0].name, "hot_type");
  EXPECT_GT(view.rows()[0].cache_lines_touched, 0.0);
  EXPECT_NE(view.Find(hot), nullptr);
  EXPECT_EQ(view.Find(999), nullptr);
}

TEST_F(ViewsFixture, WorkingSetDetectsNoConflictsForSpreadAddresses) {
  WorkingSetOptions options;
  options.geometry = CacheGeometry{64 * 1024, 64, 8};
  const WorkingSetView view =
      WorkingSetView::Build(registry, addresses, samples, kNow, options);
  EXPECT_TRUE(view.conflicted_sets().empty());
  EXPECT_FALSE(view.OverCapacity());
}

TEST(WorkingSetConflictTest, AliasedAddressesFlagConflictedSets) {
  TypeRegistry registry;
  const TypeId aliased = registry.Register("aliased", 64);
  AddressSet addresses;
  AccessSampleTable samples;
  // 64 objects, all mapping to associativity set 0 of a 64-set cache.
  const uint64_t stride = 64 * 64;  // sets * line
  for (int i = 0; i < 64; ++i) {
    addresses.OnAlloc(aliased, static_cast<Addr>(i) * stride, 64, 0, 1);
  }
  WorkingSetOptions options;
  options.geometry = CacheGeometry{64 * 64 * 4, 64, 4};  // 64 sets, 4 ways
  const WorkingSetView view =
      WorkingSetView::Build(registry, addresses, samples, 1000, options);
  ASSERT_FALSE(view.conflicted_sets().empty());
  EXPECT_EQ(view.conflicted_sets()[0].set, 0u);
  EXPECT_GT(view.conflicted_sets()[0].distinct_lines, 4u);
  EXPECT_GT(view.ConflictedFraction(aliased), 0.9);
}

TEST_F(ViewsFixture, MissClassifierInvalidationForForeignHeavyType) {
  WorkingSetOptions options;
  options.geometry = CacheGeometry{64 * 1024, 64, 8};
  const WorkingSetView ws = WorkingSetView::Build(registry, addresses, samples, kNow, options);
  const auto rows = MissClassifier::Build(registry, samples, ws, {});
  const MissClassRow* shared_row = nullptr;
  for (const auto& row : rows) {
    if (row.type == shared) {
      shared_row = &row;
    }
  }
  ASSERT_NE(shared_row, nullptr);
  EXPECT_EQ(shared_row->dominant, MissKind::kInvalidation);
  EXPECT_GT(shared_row->invalidation_pct, 90.0);
}

TEST_F(ViewsFixture, MissClassifierSharesSumToHundred) {
  const WorkingSetView ws = WorkingSetView::Build(registry, addresses, samples, kNow);
  const auto rows = MissClassifier::Build(registry, samples, ws, {});
  for (const auto& row : rows) {
    EXPECT_NEAR(row.invalidation_pct + row.conflict_pct + row.capacity_pct, 100.0, 1e-6);
  }
}

TEST(MissClassifierTest, ConflictRegime) {
  TypeRegistry registry;
  const TypeId aliased = registry.Register("aliased", 64);
  AddressSet addresses;
  AccessSampleTable samples;
  const uint64_t stride = 64 * 64;
  for (int i = 0; i < 64; ++i) {
    addresses.OnAlloc(aliased, static_cast<Addr>(i) * stride, 64, 0, 1);
  }
  // Misses are local (evictions), not foreign.
  for (int i = 0; i < 50; ++i) {
    IbsSample s;
    s.ip = 1;
    s.vaddr = 0;
    s.level = ServedBy::kL2;
    ResolveResult r;
    r.valid = true;
    r.type = aliased;
    r.base = 0;
    r.offset = 0;
    samples.Record(s, r);
  }
  WorkingSetOptions options;
  options.geometry = CacheGeometry{64 * 64 * 4, 64, 4};
  const WorkingSetView ws = WorkingSetView::Build(registry, addresses, samples, 1000, options);
  const auto rows = MissClassifier::Build(registry, samples, ws, {});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].dominant, MissKind::kConflict);
}

TEST(MissClassifierTest, CapacityRegime) {
  TypeRegistry registry;
  const TypeId big = registry.Register("big", 64);
  AddressSet addresses;
  AccessSampleTable samples;
  // Uniformly spread working set far exceeding the cache.
  for (int i = 0; i < 4096; ++i) {
    addresses.OnAlloc(big, static_cast<Addr>(i) * 64, 64, 0, 1);
  }
  for (int i = 0; i < 50; ++i) {
    IbsSample s;
    s.ip = 1;
    s.vaddr = 0;
    s.level = ServedBy::kDram;
    ResolveResult r;
    r.valid = true;
    r.type = big;
    r.base = 0;
    r.offset = 0;
    samples.Record(s, r);
  }
  WorkingSetOptions options;
  options.geometry = CacheGeometry{16 * 1024, 64, 4};  // 256 lines capacity
  const WorkingSetView ws = WorkingSetView::Build(registry, addresses, samples, 1000, options);
  EXPECT_TRUE(ws.OverCapacity());
  const auto rows = MissClassifier::Build(registry, samples, ws, {});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].dominant, MissKind::kCapacity);
  EXPECT_GT(rows[0].capacity_pct, 90.0);
}

TEST(MissClassifierTest, TableRenders) {
  MissClassRow row;
  row.name = "skbuff";
  row.invalidation_pct = 80;
  row.capacity_pct = 20;
  row.dominant = MissKind::kInvalidation;
  row.miss_samples = 123;
  const std::string out = MissClassifier::ToTable({row});
  EXPECT_NE(out.find("skbuff"), std::string::npos);
  EXPECT_NE(out.find("invalidation"), std::string::npos);
  EXPECT_NE(out.find("123"), std::string::npos);
}

TEST(MissKindTest, Names) {
  EXPECT_STREQ(MissKindName(MissKind::kInvalidation), "invalidation");
  EXPECT_STREQ(MissKindName(MissKind::kConflict), "conflict");
  EXPECT_STREQ(MissKindName(MissKind::kCapacity), "capacity");
  EXPECT_STREQ(MissKindName(MissKind::kNone), "none");
}

TEST_F(ViewsFixture, DataProfileJsonCarriesRankedRows) {
  const DataProfile profile = DataProfile::Build(registry, samples, addresses, kNow);
  const std::string json = profile.ToJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"type\":\"hot_type\""), std::string::npos);
  EXPECT_NE(json.find("\"miss_pct\":"), std::string::npos);
  EXPECT_NE(json.find("\"bounce\":"), std::string::npos);
  // hot_type has the largest miss share, so it must come first.
  EXPECT_LT(json.find("hot_type"), json.find("shared_type"));
}

TEST_F(ViewsFixture, WorkingSetJsonCarriesDemandAndRows) {
  const WorkingSetView view = WorkingSetView::Build(registry, addresses, samples, kNow);
  const std::string json = view.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"demand_lines\":"), std::string::npos);
  EXPECT_NE(json.find("\"capacity_lines\":"), std::string::npos);
  EXPECT_NE(json.find("\"rows\":["), std::string::npos);
  EXPECT_NE(json.find("\"conflicted_sets\":["), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"hot_type\""), std::string::npos);
}

TEST(MissClassifierTest, JsonCarriesSharesAndDominantKind) {
  MissClassRow row;
  row.name = "skbuff";
  row.invalidation_pct = 80;
  row.capacity_pct = 20;
  row.dominant = MissKind::kInvalidation;
  row.miss_samples = 123;
  const std::string json = MissClassifier::ToJson({row});
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"type\":\"skbuff\""), std::string::npos);
  EXPECT_NE(json.find("\"invalidation_pct\":80"), std::string::npos);
  EXPECT_NE(json.find("\"dominant\":\"invalidation\""), std::string::npos);
  EXPECT_NE(json.find("\"miss_samples\":123"), std::string::npos);
}

}  // namespace
}  // namespace dprof
