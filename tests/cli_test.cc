// Tests for the dprof CLI subsystem: scenario registration and lookup,
// unknown-scenario handling, end-to-end scenario runs, and the shape of the
// machine-readable JSON output.

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>

#include "src/cli/bench_registry.h"
#include "src/cli/scenario_registry.h"
#include "src/util/json_writer.h"

namespace dprof {
namespace {

TEST(JsonWriterTest, ObjectsArraysAndEscaping) {
  JsonWriter json;
  json.BeginObject();
  json.Key("name").String("a\"b\\c\n");
  json.Key("n").Int(-3);
  json.Key("u").UInt(7);
  json.Key("x").Number(1.5);
  json.Key("flag").Bool(true);
  json.Key("items").BeginArray().Int(1).Int(2).EndArray();
  json.EndObject();
  EXPECT_EQ(json.str(),
            "{\"name\":\"a\\\"b\\\\c\\n\",\"n\":-3,\"u\":7,\"x\":1.5,"
            "\"flag\":true,\"items\":[1,2]}");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  JsonWriter json;
  json.BeginArray().Number(std::numeric_limits<double>::infinity()).EndArray();
  EXPECT_EQ(json.str(), "[null]");
}

TEST(ScenarioRegistryTest, BuiltinsAreRegistered) {
  ScenarioRegistry registry;
  RegisterBuiltinScenarios(registry);
  EXPECT_TRUE(registry.Has("memcached"));
  EXPECT_TRUE(registry.Has("apache"));
  EXPECT_TRUE(registry.Has("kernel"));
  EXPECT_TRUE(registry.Has("conflict_demo"));
  EXPECT_EQ(registry.size(), 4u);
  for (const std::string& name : registry.Names()) {
    EXPECT_FALSE(registry.Find(name)->description.empty()) << name;
  }
}

TEST(ScenarioRegistryTest, UnknownScenarioIsReported) {
  ScenarioRegistry registry;
  RegisterBuiltinScenarios(registry);
  EXPECT_FALSE(registry.Has("no_such_scenario"));
  EXPECT_EQ(registry.Find("no_such_scenario"), nullptr);
}

TEST(ScenarioRegistryTest, DuplicateRegistrationIsRejected) {
  ScenarioRegistry registry;
  auto factory = [](const RunSpec&) { return std::unique_ptr<ScenarioRig>(); };
  EXPECT_TRUE(registry.Register("x", "first", factory));
  EXPECT_FALSE(registry.Register("x", "second", factory));
  EXPECT_EQ(registry.Find("x")->description, "first");
}

TEST(ScenarioRegistryTest, CustomScenarioFactoryReceivesParams) {
  ScenarioRegistry registry;
  int seen_cores = 0;
  registry.Register("probe", "records params", [&](const RunSpec& params) {
    seen_cores = params.cores;
    return std::unique_ptr<ScenarioRig>();
  });
  RunSpec params;
  params.cores = 5;
  registry.Find("probe")->factory(params);
  EXPECT_EQ(seen_cores, 5);
}

// A short end-to-end run of the cheapest scenario: the report must carry a
// non-empty data profile and sane counters.
TEST(ScenarioRunTest, ConflictDemoProducesProfile) {
  ScenarioRegistry registry;
  RegisterBuiltinScenarios(registry);
  RunSpec params;
  params.cores = 2;
  params.collect_cycles = 3'000'000;
  const ScenarioReport report = RunScenario(registry, "conflict_demo", params);
  EXPECT_EQ(report.scenario, "conflict_demo");
  EXPECT_EQ(report.cores, 2);
  EXPECT_GT(report.access_samples, 0u);
  EXPECT_FALSE(report.profile.empty());
  EXPECT_FALSE(report.profile_table.empty());
  double total_pct = 0.0;
  for (const ScenarioProfileRow& row : report.profile) {
    EXPECT_FALSE(row.type.empty());
    total_pct += row.miss_pct;
  }
  EXPECT_GT(total_pct, 0.0);
}

TEST(ScenarioRunTest, ReportJsonHasExpectedShape) {
  ScenarioRegistry registry;
  RegisterBuiltinScenarios(registry);
  RunSpec params;
  params.cores = 2;
  params.collect_cycles = 2'000'000;
  const ScenarioReport report = RunScenario(registry, "conflict_demo", params);
  const std::string json = ScenarioReportToJson(report);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"scenario\":\"conflict_demo\""), std::string::npos);
  EXPECT_NE(json.find("\"throughput_rps\":"), std::string::npos);
  EXPECT_NE(json.find("\"profile\":["), std::string::npos);
  EXPECT_NE(json.find("\"miss_pct\":"), std::string::npos);
  // The embedded view documents.
  EXPECT_NE(json.find("\"views\":{"), std::string::npos);
  EXPECT_NE(json.find("\"working_set\":{"), std::string::npos);
  EXPECT_NE(json.find("\"miss_classification\":["), std::string::npos);
}

TEST(BenchRegistryTest, BuiltinsAreRegistered) {
  BenchRegistry registry;
  RegisterBuiltinBenches(registry);
  EXPECT_NE(registry.Find("micro_costs"), nullptr);
  EXPECT_NE(registry.Find("memcached_throughput"), nullptr);
  EXPECT_NE(registry.Find("apache_throughput"), nullptr);
  EXPECT_EQ(registry.Find("no_such_bench"), nullptr);
}

TEST(BenchRegistryTest, MicroCostsJsonHasExpectedShape) {
  BenchRegistry registry;
  RegisterBuiltinBenches(registry);
  BenchParams params;
  params.scale = 0.01;  // keep the test fast; metric names are what matter
  const BenchReport report = registry.Find("micro_costs")->fn(params);
  EXPECT_EQ(report.bench, "micro_costs");
  EXPECT_GE(report.metrics.size(), 5u);

  const std::string json = BenchReportToJson(report);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"bench\":\"micro_costs\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":["), std::string::npos);
  for (const char* metric : {"cache_touch", "slab_alloc_free", "resolve",
                             "ibs_interrupt_cycles", "watchpoint_interrupt_cycles"}) {
    EXPECT_NE(json.find(std::string("\"name\":\"") + metric + "\""), std::string::npos)
        << metric;
  }
  // Every metric carries a numeric value and a unit.
  EXPECT_NE(json.find("\"value\":"), std::string::npos);
  EXPECT_NE(json.find("\"unit\":"), std::string::npos);
}

}  // namespace
}  // namespace dprof
