// Sampled execution mode (statistical fast-forward): the engine alternates
// short detailed windows with calibrated fast-forward stretches and reports
// scaled estimates with confidence intervals. These tests pin the three
// properties the mode is allowed to claim:
//
//  1. Honesty: every reported interval must cover the exact-mode value it
//     estimates, for every registered scenario. A sampled run that reports
//     a confidence interval excluding the ground truth is a bug, not a
//     statistics problem — the interval floors exist to absorb systematic
//     window-placement bias (see SamplingController::kMissRateFloorPct).
//  2. Determinism: the sampled report is byte-identical across engine
//     thread counts and across the record-elision toggle, because the
//     window schedule is a pure function of the committed min-clock.
//  3. It actually fast-forwards: most of the run must be skipped work
//     (scale well above 1), otherwise the mode is exact mode with extra
//     steps.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/cli/scenario_registry.h"
#include "src/machine/sampling.h"

namespace dprof {
namespace {

// Short runs keep the suite fast; the windows-per-run count still lands
// well above 10 with the default 400k-cycle period.
constexpr uint64_t kTestCycles = 4'000'000;

RunSpec BaseSpec() {
  RunSpec spec;
  spec.cores = 8;
  spec.threads = 1;
  spec.collect_cycles = kTestCycles;
  spec.collect_histories = false;  // phase 1 is where sampling operates
  spec.build_view_json = false;
  return spec;
}

TEST(SamplingTest, IntervalsCoverExactValuesForEveryScenario) {
  ScenarioRegistry& registry = ScenarioRegistry::Default();
  for (const std::string& name : registry.Names()) {
    SCOPED_TRACE("scenario: " + name);
    RunSpec spec = BaseSpec();
    const ScenarioReport exact = RunScenario(registry, name, spec);
    spec.sampled = true;
    const ScenarioReport sampled = RunScenario(registry, name, spec);

    ASSERT_TRUE(sampled.sampling.enabled);
    ASSERT_GT(exact.hierarchy.accesses, 0u);

    // Overall L1 miss rate: the exact value must sit inside the interval.
    const double exact_rate = 100.0 *
                              static_cast<double>(exact.hierarchy.l1_misses) /
                              static_cast<double>(exact.hierarchy.accesses);
    const SamplingInterval& rate = sampled.sampling.l1_miss_rate;
    EXPECT_LE(rate.lo, exact_rate) << "CI excludes exact rate from below";
    EXPECT_GE(rate.hi, exact_rate) << "CI excludes exact rate from above";
    EXPECT_LE(rate.lo, rate.estimate);
    EXPECT_GE(rate.hi, rate.estimate);

    // Per-type miss shares: every interval reported for a type that the
    // exact profile also ranks must cover the exact share.
    for (const auto& t : sampled.sampling.types) {
      for (const auto& row : exact.profile) {
        if (row.type != t.type) continue;
        EXPECT_LE(t.ci_lo, row.miss_pct)
            << "type " << t.type << " CI excludes exact share from below";
        EXPECT_GE(t.ci_hi, row.miss_pct)
            << "type " << t.type << " CI excludes exact share from above";
      }
    }

    // The exact dominant type must stay at the top of the sampled ranking.
    // At this short run length (~10 windows) the top pair can swap when
    // their shares sit within one interval of each other, so the test
    // requires top-2 containment; ci/check_tables.py pins exact top-type
    // identity at the full 10M-cycle operating point.
    ASSERT_FALSE(exact.profile.empty());
    ASSERT_FALSE(sampled.profile.empty());
    const std::string& exact_top = exact.profile[0].type;
    bool in_top2 = sampled.profile[0].type == exact_top;
    if (!in_top2 && sampled.profile.size() > 1) {
      in_top2 = sampled.profile[1].type == exact_top;
    }
    EXPECT_TRUE(in_top2) << "exact top type " << exact_top
                         << " fell out of the sampled top 2 (sampled top: "
                         << sampled.profile[0].type << ")";
  }
}

TEST(SamplingTest, SampledRunActuallyFastForwards) {
  ScenarioRegistry& registry = ScenarioRegistry::Default();
  RunSpec spec = BaseSpec();
  spec.sampled = true;
  const ScenarioReport r = RunScenario(registry, "memcached", spec);
  EXPECT_GT(r.sampling.ff_epochs, 0u);
  EXPECT_GT(r.sampling.ff_accesses, r.sampling.measured_accesses);
  EXPECT_GT(r.sampling.scale, 2.0);
  // The lattice only sees detailed-window work: its access total tracks the
  // measured-window count (a handful of filter-window accesses replayed at
  // commit can land outside EndEpoch's accounting, so not exact equality).
  EXPECT_LE(r.sampling.measured_accesses, r.hierarchy.accesses);
  EXPECT_LT(r.hierarchy.accesses - r.sampling.measured_accesses,
            r.sampling.measured_accesses / 20);
}

TEST(SamplingTest, SampledReportIsThreadCountInvariant) {
  ScenarioRegistry& registry = ScenarioRegistry::Default();
  RunSpec spec = BaseSpec();
  spec.sampled = true;
  spec.build_view_json = true;
  spec.threads = 1;
  const std::string t1 = ScenarioReportToJson(RunScenario(registry, "memcached", spec));
  spec.threads = 4;
  const std::string t4 = ScenarioReportToJson(RunScenario(registry, "memcached", spec));
  EXPECT_EQ(t1, t4) << "sampled report differs between 1 and 4 engine threads";
}

TEST(SamplingTest, SampledReportIsElisionInvariant) {
  ScenarioRegistry& registry = ScenarioRegistry::Default();
  RunSpec spec = BaseSpec();
  spec.sampled = true;
  spec.build_view_json = true;
  spec.threads = 4;
  const std::string elided = ScenarioReportToJson(RunScenario(registry, "memcached", spec));
  spec.record_elision = false;
  const std::string recorded =
      ScenarioReportToJson(RunScenario(registry, "memcached", spec));
  EXPECT_EQ(elided, recorded)
      << "sampled report differs between elided and recorded apply paths";
}

TEST(SamplingTest, ExactModeReportCarriesNoSamplingBlock) {
  ScenarioRegistry& registry = ScenarioRegistry::Default();
  RunSpec spec = BaseSpec();
  spec.build_view_json = true;
  const ScenarioReport r = RunScenario(registry, "memcached", spec);
  EXPECT_FALSE(r.sampling.enabled);
  EXPECT_EQ(ScenarioReportToJson(r).find("\"sampling\""), std::string::npos)
      << "exact-mode JSON must stay byte-identical to pre-sampling builds";
}

TEST(SamplingTest, CustomPeriodAndWindowAreHonored) {
  ScenarioRegistry& registry = ScenarioRegistry::Default();
  RunSpec spec = BaseSpec();
  spec.sampled = true;
  spec.sampling_period = 200'000;
  spec.sampling_window = 40'000;
  const ScenarioReport r = RunScenario(registry, "memcached", spec);
  EXPECT_EQ(r.sampling.period_cycles, 200'000u);
  EXPECT_EQ(r.sampling.window_cycles, 40'000u);
  // A denser schedule measures more: scale drops toward period/window.
  EXPECT_LT(r.sampling.scale, 10.0);
}

TEST(SamplingTest, WilsonIntervalIsSaneAndFloored) {
  // 500 of 1000: symmetric interval around 50%, at least the floor wide.
  SamplingInterval i = SamplingController::WilsonCI(500, 1000, 2.5);
  EXPECT_NEAR(i.estimate, 50.0, 0.01);
  EXPECT_LE(i.lo, 47.5);
  EXPECT_GE(i.hi, 52.5);
  EXPECT_GE(i.lo, 0.0);
  EXPECT_LE(i.hi, 100.0);
  // Degenerate inputs clamp instead of dividing by zero.
  i = SamplingController::WilsonCI(0, 0, 2.5);
  EXPECT_EQ(i.estimate, 0.0);
  EXPECT_GE(i.hi, i.lo);
  // k == n stays within [0, 100] even with the floor applied.
  i = SamplingController::WilsonCI(10, 10, 5.0);
  EXPECT_LE(i.hi, 100.0);
  EXPECT_GE(i.lo, 0.0);
}

}  // namespace
}  // namespace dprof
