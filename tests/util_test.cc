#include <gtest/gtest.h>

#include <set>

#include "src/util/dot.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace dprof {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Range(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values show up
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.Chance(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, JitterBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t j = rng.Jitter(100);
    EXPECT_GE(j, 50u);
    EXPECT_LE(j, 150u);
  }
  EXPECT_EQ(rng.Jitter(1), 1u);
  EXPECT_EQ(rng.Jitter(0), 1u);
}

TEST(RngTest, JitterMeanNearTarget) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.Jitter(1000));
  }
  EXPECT_NEAR(sum / n, 1000.0, 25.0);
}

TEST(RunningStatTest, Empty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatTest, Accumulates) {
  RunningStat s;
  s.Add(2.0);
  s.Add(4.0);
  s.Add(6.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(RunningStatTest, MergeCombines) {
  RunningStat a;
  a.Add(1.0);
  a.Add(3.0);
  RunningStat b;
  b.Add(5.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(RunningStatTest, MergeWithEmptyIsNoop) {
  RunningStat a;
  a.Add(7.0);
  RunningStat empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 7.0);
}

TEST(DenseHistogramTest, AddAndQuery) {
  DenseHistogram h(4);
  h.Add(0);
  h.Add(2, 5);
  EXPECT_EQ(h.At(0), 1u);
  EXPECT_EQ(h.At(2), 5u);
  EXPECT_EQ(h.At(3), 0u);
  EXPECT_EQ(h.Total(), 6u);
  EXPECT_EQ(h.MaxCount(), 5u);
}

TEST(DenseHistogramTest, GrowsOnDemand) {
  DenseHistogram h(2);
  h.Add(10);
  EXPECT_GE(h.size(), 11u);
  EXPECT_EQ(h.At(10), 1u);
}

TEST(PctTest, HandlesZeroDenominator) {
  EXPECT_EQ(Pct(5, 0), 0.0);
  EXPECT_DOUBLE_EQ(Pct(1, 4), 25.0);
}

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter t({"Name", "Value"});
  t.AddRow({"foo", "1"});
  t.AddRow({"bar", "22"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("foo"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinterTest, MissingCellsRenderEmpty) {
  TablePrinter t({"A", "B", "C"});
  t.AddRow({"x"});
  EXPECT_NE(t.ToString().find('x'), std::string::npos);
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::Fixed(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Percent(12.345, 1), "12.3%");
  EXPECT_EQ(TablePrinter::Bytes(512), "512B");
  EXPECT_EQ(TablePrinter::Bytes(2048), "2.00KB");
  EXPECT_EQ(TablePrinter::Bytes(3 * 1024 * 1024), "3.00MB");
  EXPECT_EQ(TablePrinter::Count(42), "42");
}

TEST(DotWriterTest, EmitsNodesAndEdges) {
  DotWriter dot("g");
  const int a = dot.AddNode("alpha", false);
  const int b = dot.AddNode("beta", true);
  dot.AddEdge(a, b, 7, true);
  const std::string out = dot.ToString();
  EXPECT_NE(out.find("digraph"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("gray55"), std::string::npos);   // dark node
  EXPECT_NE(out.find("penwidth=3"), std::string::npos);  // bold edge
  EXPECT_NE(out.find("label=\"7\""), std::string::npos);
}

TEST(DotWriterTest, EscapesQuotes) {
  DotWriter dot("g");
  dot.AddNode("say \"hi\"", false);
  EXPECT_NE(dot.ToString().find("\\\""), std::string::npos);
}

}  // namespace
}  // namespace dprof
