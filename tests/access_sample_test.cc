#include <gtest/gtest.h>

#include "src/dprof/access_sample.h"

namespace dprof {
namespace {

IbsSample Sample(FunctionId ip, Addr vaddr, ServedBy level, uint32_t latency, int core = 0,
                 bool write = false) {
  IbsSample s;
  s.core = core;
  s.ip = ip;
  s.vaddr = vaddr;
  s.size = 8;
  s.is_write = write;
  s.level = level;
  s.latency = latency;
  return s;
}

ResolveResult Resolved(TypeId type, Addr base, uint32_t offset) {
  ResolveResult r;
  r.valid = true;
  r.type = type;
  r.base = base;
  r.offset = offset;
  r.size = 256;
  return r;
}

TEST(AccessSampleTableTest, RecordsAndAggregates) {
  AccessSampleTable table;
  table.Record(Sample(1, 0x100, ServedBy::kL1, 3), Resolved(7, 0x100, 0));
  table.Record(Sample(1, 0x100, ServedBy::kDram, 250), Resolved(7, 0x100, 0));
  EXPECT_EQ(table.total_samples(), 2u);
  EXPECT_EQ(table.l1_miss_samples(), 1u);
  ASSERT_EQ(table.cells().size(), 1u);
  const SampleStats& stats = table.cells().begin()->second;
  EXPECT_EQ(stats.count, 2u);
  EXPECT_EQ(stats.latency_sum, 253u);
}

TEST(AccessSampleTableTest, UnresolvedCountedButNotAttributed) {
  AccessSampleTable table;
  table.Record(Sample(1, 0x100, ServedBy::kDram, 250), ResolveResult{});
  EXPECT_EQ(table.total_samples(), 1u);
  EXPECT_EQ(table.unresolved_samples(), 1u);
  EXPECT_TRUE(table.cells().empty());
}

TEST(AccessSampleTableTest, SeparateCellsPerOffsetAndIp) {
  AccessSampleTable table;
  table.Record(Sample(1, 0x100, ServedBy::kL1, 3), Resolved(7, 0x100, 0));
  table.Record(Sample(1, 0x108, ServedBy::kL1, 3), Resolved(7, 0x100, 8));
  table.Record(Sample(2, 0x100, ServedBy::kL1, 3), Resolved(7, 0x100, 0));
  EXPECT_EQ(table.cells().size(), 3u);
}

TEST(AccessSampleTableTest, AggregateByType) {
  AccessSampleTable table;
  table.Record(Sample(1, 0x100, ServedBy::kForeignCache, 200, 2), Resolved(7, 0x100, 0));
  table.Record(Sample(1, 0x200, ServedBy::kL1, 3, 3), Resolved(9, 0x200, 0));
  table.Record(Sample(1, 0x204, ServedBy::kDram, 250, 3), Resolved(9, 0x200, 4));
  const auto agg = table.AggregateByType();
  ASSERT_EQ(agg.size(), 2u);
  EXPECT_EQ(agg.at(7).samples, 1u);
  EXPECT_EQ(agg.at(7).l1_misses, 1u);
  EXPECT_EQ(agg.at(7).foreign, 1u);
  EXPECT_DOUBLE_EQ(agg.at(7).ForeignFraction(), 1.0);
  EXPECT_EQ(agg.at(9).samples, 2u);
  EXPECT_EQ(agg.at(9).l1_misses, 1u);
  EXPECT_EQ(agg.at(9).dram, 1u);
  EXPECT_EQ(agg.at(9).cpu_mask, 1u << 3);
}

TEST(AccessSampleTableTest, RangeAggregation) {
  AccessSampleTable table;
  table.Record(Sample(1, 0x100, ServedBy::kL1, 3), Resolved(7, 0x100, 0));
  table.Record(Sample(1, 0x110, ServedBy::kDram, 250), Resolved(7, 0x100, 16));
  table.Record(Sample(1, 0x180, ServedBy::kDram, 250), Resolved(7, 0x100, 128));

  const RangeStats in_range = table.Aggregate(7, 1, 0, 63);
  EXPECT_EQ(in_range.count, 2u);
  EXPECT_DOUBLE_EQ(in_range.level_prob[static_cast<int>(ServedBy::kL1)], 0.5);
  EXPECT_DOUBLE_EQ(in_range.avg_latency, (3 + 250) / 2.0);

  const RangeStats none = table.Aggregate(7, 2, 0, 63);
  EXPECT_EQ(none.count, 0u);

  const RangeStats all = table.Aggregate(7, 1, 0, 255);
  EXPECT_EQ(all.count, 3u);
}

TEST(AccessSampleTableTest, HotOffsetsRankedByCount) {
  AccessSampleTable table;
  for (int i = 0; i < 10; ++i) {
    table.Record(Sample(1, 0x140, ServedBy::kL1, 3), Resolved(7, 0x100, 64));
  }
  for (int i = 0; i < 3; ++i) {
    table.Record(Sample(1, 0x104, ServedBy::kL1, 3), Resolved(7, 0x100, 4));
  }
  table.Record(Sample(1, 0x1f0, ServedBy::kL1, 3), Resolved(7, 0x100, 240));

  const auto top2 = table.HotOffsets(7, 2);
  ASSERT_EQ(top2.size(), 2u);
  // Sorted by offset for sweep use, but contents are the two hottest.
  EXPECT_EQ(top2[0], 4u);
  EXPECT_EQ(top2[1], 64u);

  const auto all = table.HotOffsets(7, 10);
  EXPECT_EQ(all.size(), 3u);
}

TEST(AccessSampleTableTest, WriteCountingAndCpuMask) {
  AccessSampleTable table;
  table.Record(Sample(1, 0x100, ServedBy::kL1, 3, 0, true), Resolved(7, 0x100, 0));
  table.Record(Sample(1, 0x100, ServedBy::kL1, 3, 5, false), Resolved(7, 0x100, 0));
  const SampleStats& stats = table.cells().begin()->second;
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.cpu_mask, (1u << 0) | (1u << 5));
}

TEST(AccessSampleTableTest, ClearResets) {
  AccessSampleTable table;
  table.Record(Sample(1, 0x100, ServedBy::kL1, 3), Resolved(7, 0x100, 0));
  table.Clear();
  EXPECT_EQ(table.total_samples(), 0u);
  EXPECT_TRUE(table.cells().empty());
  EXPECT_EQ(table.Aggregate(7, 1, 0, 255).count, 0u);
}

}  // namespace
}  // namespace dprof
