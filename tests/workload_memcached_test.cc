#include <gtest/gtest.h>

#include <memory>

#include "src/workload/kernel.h"
#include "src/workload/memcached.h"

namespace dprof {
namespace {

struct MemcachedFixture {
  explicit MemcachedFixture(bool fix, int cores = 4) {
    MachineConfig config;
    config.hierarchy.num_cores = cores;
    machine = std::make_unique<Machine>(config);
    allocator = std::make_unique<SlabAllocator>(machine.get(), &registry);
    machine->SetAllocator(allocator.get());
    env = std::make_unique<KernelEnv>(machine.get(), allocator.get());
    MemcachedConfig mc;
    mc.local_queue_fix = fix;
    mc.rx_ring_entries = 32;  // keep tests fast
    workload = std::make_unique<MemcachedWorkload>(env.get(), mc);
    workload->Install(*machine);
  }

  TypeRegistry registry;
  std::unique_ptr<Machine> machine;
  std::unique_ptr<SlabAllocator> allocator;
  std::unique_ptr<KernelEnv> env;
  std::unique_ptr<MemcachedWorkload> workload;
};

TEST(MemcachedWorkloadTest, CompletesRequests) {
  MemcachedFixture f(false);
  f.machine->RunFor(2'000'000);
  EXPECT_GT(f.workload->CompletedRequests(), 100u);
}

TEST(MemcachedWorkloadTest, BugSpreadsTransmitsAcrossQueues) {
  MemcachedFixture f(false);
  f.machine->RunFor(2'000'000);
  const uint64_t remote = f.workload->TxRemote();
  const uint64_t local = f.workload->TxLocal();
  ASSERT_GT(remote + local, 0u);
  // With 4 cores, hashing sends ~3/4 of packets to a remote queue.
  const double remote_fraction =
      static_cast<double>(remote) / static_cast<double>(remote + local);
  EXPECT_NEAR(remote_fraction, 0.75, 0.08);
}

TEST(MemcachedWorkloadTest, FixKeepsTransmitsLocal) {
  MemcachedFixture f(true);
  f.machine->RunFor(2'000'000);
  EXPECT_EQ(f.workload->TxRemote(), 0u);
  EXPECT_GT(f.workload->TxLocal(), 0u);
}

TEST(MemcachedWorkloadTest, FixImprovesThroughput) {
  MemcachedFixture buggy(false);
  MemcachedFixture fixed(true);
  buggy.machine->RunFor(1'000'000);
  fixed.machine->RunFor(1'000'000);
  buggy.workload->ResetStats();
  fixed.workload->ResetStats();
  const uint64_t b0 = buggy.machine->MaxClock();
  const uint64_t f0 = fixed.machine->MaxClock();
  buggy.machine->RunFor(4'000'000);
  fixed.machine->RunFor(4'000'000);
  const double buggy_rps =
      ThroughputRps(buggy.workload->CompletedRequests(), buggy.machine->MaxClock() - b0);
  const double fixed_rps =
      ThroughputRps(fixed.workload->CompletedRequests(), fixed.machine->MaxClock() - f0);
  // The paper reports +57% on 16 cores; on 4 cores the remote fraction is
  // lower, so just require a solid improvement.
  EXPECT_GT(fixed_rps, buggy_rps * 1.15);
}

TEST(MemcachedWorkloadTest, BugCausesForeignCacheTraffic) {
  MemcachedFixture f(false);
  f.machine->RunFor(2'000'000);
  uint64_t foreign = 0;
  uint64_t accesses = 0;
  for (int c = 0; c < f.machine->num_cores(); ++c) {
    const CoreMemStats& stats = f.machine->hierarchy().core_stats(c);
    foreign += stats.served[static_cast<int>(ServedBy::kForeignCache)];
    accesses += stats.accesses;
  }
  EXPECT_GT(static_cast<double>(foreign) / static_cast<double>(accesses), 0.01);
}

TEST(MemcachedWorkloadTest, FixEliminatesMostForeignTraffic) {
  MemcachedFixture buggy(false);
  MemcachedFixture fixed(true);
  buggy.machine->RunFor(2'000'000);
  fixed.machine->RunFor(2'000'000);
  auto foreign_fraction = [](Machine& machine) {
    uint64_t foreign = 0;
    uint64_t accesses = 0;
    for (int c = 0; c < machine.num_cores(); ++c) {
      const CoreMemStats& stats = machine.hierarchy().core_stats(c);
      foreign += stats.served[static_cast<int>(ServedBy::kForeignCache)];
      accesses += stats.accesses;
    }
    return static_cast<double>(foreign) / static_cast<double>(accesses);
  };
  EXPECT_LT(foreign_fraction(*fixed.machine), foreign_fraction(*buggy.machine) * 0.4);
}

TEST(MemcachedWorkloadTest, AlienFreesOnlyWithBug) {
  MemcachedFixture buggy(false);
  MemcachedFixture fixed(true);
  buggy.machine->RunFor(2'000'000);
  fixed.machine->RunFor(2'000'000);
  const TypeId skbuff = buggy.registry.Find("skbuff");
  EXPECT_GT(buggy.allocator->type_stats(skbuff).alien_frees, 0u);
  const TypeId skbuff_fixed = fixed.registry.Find("skbuff");
  EXPECT_EQ(fixed.allocator->type_stats(skbuff_fixed).alien_frees, 0u);
}

TEST(MemcachedWorkloadTest, WorkingSetHoldsRxRing) {
  MemcachedFixture f(false);
  f.machine->RunFor(2'000'000);
  const TypeId payload = f.registry.Find("size-1024");
  // Each core keeps >= rx_ring_entries payload buffers live.
  EXPECT_GE(f.allocator->LiveCount(payload),
            static_cast<uint64_t>(4 * 32));
}

TEST(MemcachedWorkloadTest, ResetStatsZeroes) {
  MemcachedFixture f(false);
  f.machine->RunFor(1'000'000);
  EXPECT_GT(f.workload->CompletedRequests(), 0u);
  f.workload->ResetStats();
  EXPECT_EQ(f.workload->CompletedRequests(), 0u);
  EXPECT_EQ(f.workload->TxRemote(), 0u);
}

TEST(MemcachedWorkloadTest, KernelTypesRegistered) {
  MemcachedFixture f(false);
  EXPECT_NE(f.registry.Find("skbuff"), kInvalidType);
  EXPECT_NE(f.registry.Find("size-1024"), kInvalidType);
  EXPECT_NE(f.registry.Find("udp_sock"), kInvalidType);
  EXPECT_NE(f.registry.Find("net_device"), kInvalidType);
  EXPECT_NE(f.registry.Find("Qdisc"), kInvalidType);
  EXPECT_EQ(f.registry.Size(f.registry.Find("skbuff")), 256u);
  EXPECT_EQ(f.registry.Size(f.registry.Find("tcp_sock")), 1600u);
}

}  // namespace
}  // namespace dprof
