#include <gtest/gtest.h>

#include "src/machine/machine.h"
#include "src/profilers/code_profiler.h"
#include "src/profilers/lock_stat.h"

namespace dprof {
namespace {

AccessEvent Event(FunctionId ip, ServedBy level, uint32_t latency) {
  AccessEvent event;
  event.core = 0;
  event.ip = ip;
  event.addr = 0x100;
  event.size = 8;
  event.level = level;
  event.latency = latency;
  return event;
}

TEST(CodeProfilerTest, AttributesCyclesToFunctions) {
  CodeProfiler profiler;
  profiler.OnCompute(0, 1, 300, 0);
  profiler.OnCompute(0, 2, 100, 0);
  SymbolTable sym;
  sym.Intern("f_zero");
  sym.Intern("hot");
  sym.Intern("cold");
  const auto rows = profiler.Report(sym, 0.0);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "hot");
  EXPECT_DOUBLE_EQ(rows[0].clk_pct, 75.0);
  EXPECT_DOUBLE_EQ(rows[1].clk_pct, 25.0);
}

TEST(CodeProfilerTest, CountsL2MissesForL3AndBeyond) {
  CodeProfiler profiler;
  profiler.OnAccess(Event(1, ServedBy::kL1, 3));
  profiler.OnAccess(Event(1, ServedBy::kL2, 14));
  profiler.OnAccess(Event(1, ServedBy::kL3, 50));
  profiler.OnAccess(Event(2, ServedBy::kForeignCache, 200));
  profiler.OnAccess(Event(2, ServedBy::kDram, 250));
  EXPECT_EQ(profiler.total_l2_misses(), 3u);
  SymbolTable sym;
  sym.Intern("a");
  sym.Intern("one");
  sym.Intern("two");
  const auto rows = profiler.Report(sym, 0.0);
  double l2_total = 0;
  for (const auto& row : rows) {
    l2_total += row.l2_miss_pct;
  }
  EXPECT_NEAR(l2_total, 100.0, 1e-9);
}

TEST(CodeProfilerTest, MinClkFilters) {
  CodeProfiler profiler;
  profiler.OnCompute(0, 1, 990, 0);
  profiler.OnCompute(0, 2, 10, 0);
  SymbolTable sym;
  sym.Intern("pad");
  sym.Intern("big");
  sym.Intern("small");
  EXPECT_EQ(profiler.Report(sym, 1.5).size(), 1u);
  EXPECT_EQ(profiler.Report(sym, 0.5).size(), 2u);
}

TEST(CodeProfilerTest, ResetClears) {
  CodeProfiler profiler;
  profiler.OnCompute(0, 1, 100, 0);
  profiler.Reset();
  EXPECT_EQ(profiler.total_cycles(), 0u);
  SymbolTable sym;
  EXPECT_TRUE(profiler.Report(sym, 0.0).empty());
}

TEST(CodeProfilerTest, TableRendersFunctionNames) {
  CodeProfiler profiler;
  profiler.OnCompute(0, 0, 500, 0);
  SymbolTable sym;
  sym.Intern("interesting_fn");
  const std::string table = profiler.ReportTable(sym, 0.0);
  EXPECT_NE(table.find("interesting_fn"), std::string::npos);
  EXPECT_NE(table.find("% CLK"), std::string::npos);
}

struct LockStatFixture : ::testing::Test {
  LockStatFixture() : stat(&sym) {
    fn_a = sym.Intern("acquirer_a");
    fn_b = sym.Intern("acquirer_b");
  }
  SymbolTable sym;
  LockStat stat;
  FunctionId fn_a = kInvalidFunction;
  FunctionId fn_b = kInvalidFunction;
};

TEST_F(LockStatFixture, AggregatesByLockName) {
  SimLock lock1("Qdisc lock", 0x100);
  SimLock lock2("Qdisc lock", 0x200);  // same class, different instance
  stat.OnAcquire(lock1, 0, fn_a, 1000, 0);
  stat.OnAcquire(lock2, 1, fn_b, 500, 0);
  stat.OnRelease(lock1, 0, fn_a, 50, 0);
  stat.OnRelease(lock2, 1, fn_b, 70, 0);
  const auto rows = stat.Report(1'000'000, 2);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].name, "Qdisc lock");
  EXPECT_EQ(rows[0].acquisitions, 2u);
  EXPECT_EQ(rows[0].contentions, 2u);
  EXPECT_DOUBLE_EQ(rows[0].wait_seconds, 1500.0 / kCyclesPerSecond);
  EXPECT_EQ(rows[0].functions.size(), 2u);
}

TEST_F(LockStatFixture, OverheadIsWaitOverCoreTime) {
  SimLock lock("L", 0x100);
  stat.OnAcquire(lock, 0, fn_a, 2000, 0);
  const auto rows = stat.Report(10000, 2);
  ASSERT_EQ(rows.size(), 1u);
  // 2000 wait cycles over 2 cores * 10000 cycles = 10%.
  EXPECT_DOUBLE_EQ(rows[0].overhead_pct, 10.0);
}

TEST_F(LockStatFixture, UncontendedAcquisitionsAreNotContentions) {
  SimLock lock("L", 0x100);
  stat.OnAcquire(lock, 0, fn_a, 0, 0);
  stat.OnAcquire(lock, 0, fn_a, 100, 0);
  const auto rows = stat.Report(1000, 1);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].acquisitions, 2u);
  EXPECT_EQ(rows[0].contentions, 1u);
}

TEST_F(LockStatFixture, SortedByWaitTime) {
  SimLock cheap("cheap", 0x100);
  SimLock costly("costly", 0x200);
  stat.OnAcquire(cheap, 0, fn_a, 10, 0);
  stat.OnAcquire(costly, 0, fn_a, 9999, 0);
  const auto rows = stat.Report(1'000'000, 1);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "costly");
}

TEST_F(LockStatFixture, ResetClears) {
  SimLock lock("L", 0x100);
  stat.OnAcquire(lock, 0, fn_a, 10, 0);
  stat.Reset();
  EXPECT_TRUE(stat.Report(1000, 1).empty());
}

TEST_F(LockStatFixture, TableListsFunctions) {
  SimLock lock("futex lock", 0x100);
  stat.OnAcquire(lock, 0, fn_a, 500, 0);
  stat.OnAcquire(lock, 0, fn_b, 0, 0);
  const std::string table = stat.ReportTable(100000, 4);
  EXPECT_NE(table.find("futex lock"), std::string::npos);
  EXPECT_NE(table.find("acquirer_a"), std::string::npos);
  EXPECT_NE(table.find("acquirer_b"), std::string::npos);
}

}  // namespace
}  // namespace dprof
