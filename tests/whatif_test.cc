// Coverage for the whatif engine and the TypeTransform plumbing beneath it:
// identity transforms are byte-identical to plain runs (and reproduce the
// golden stats fingerprints through the RunSpec path), every transform is
// deterministic across host thread counts and record-elision modes, and
// pad-to-line on conflict_demo's deliberately aliased type yields a positive
// measured gain.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cli/scenario_registry.h"
#include "src/cli/whatif.h"

namespace dprof {
namespace {

RunSpec SmallConflictSpec() {
  RunSpec spec;
  spec.cores = 2;
  spec.collect_cycles = 2'000'000;
  spec.threads = 1;
  return spec;
}

// An all-identity TransformSet must leave every layout decision untouched:
// the full report JSON is byte-identical to a run with no transforms.
TEST(WhatIfTest, IdentityTransformIsByteIdenticalToPlainRun) {
  ScenarioRegistry& registry = ScenarioRegistry::Default();
  const std::string plain =
      ScenarioReportToJson(RunScenario(registry, "conflict_demo", SmallConflictSpec()));

  RunSpec identity = SmallConflictSpec();
  identity.transforms.Add("pkt_stat", TypeTransformKind::kIdentity);
  identity.transforms.Add("skbuff", TypeTransformKind::kIdentity);
  const std::string transformed =
      ScenarioReportToJson(RunScenario(registry, "conflict_demo", identity));
  EXPECT_EQ(plain, transformed);
}

// The RunSpec path with an identity transform reproduces the golden stats
// fingerprint (tests/golden_stats_test.cc, memcached entry) in both record
// modes: the whatif baseline is the same simulation the goldens pin.
TEST(WhatIfTest, IdentityRunReproducesGoldenFingerprint) {
  ScenarioRegistry& registry = ScenarioRegistry::Default();
  for (const bool elide : {false, true}) {
    SCOPED_TRACE(elide ? "elision on" : "elision off");
    RunSpec spec;
    spec.cores = 8;
    spec.threads = 1;
    spec.collect_cycles = 6'000'000;
    spec.record_elision = elide;
    spec.build_view_json = false;
    spec.adaptive_epoch_focus = false;
    spec.transforms.Add("skbuff", TypeTransformKind::kIdentity);
    const ScenarioReport report = RunScenario(registry, "memcached", spec);
    EXPECT_EQ(report.hierarchy.accesses, 12661292u);
    EXPECT_EQ(report.hierarchy.l1_hits, 7628418u);
    EXPECT_EQ(report.hierarchy.l1_misses, 5032874u);
    const uint64_t served[5] = {7628418, 2244339, 528931, 2185426, 74178};
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(report.hierarchy.served[i], served[i]) << "served level " << i;
    }
    EXPECT_EQ(report.hierarchy.invalidation_misses, 2155207u);
  }
}

// Every transform in the catalog must keep the engine's determinism
// guarantee: the report is byte-identical for any host thread count and
// either record mode.
TEST(WhatIfTest, TransformsAreDeterministicAcrossThreadsAndElision) {
  ScenarioRegistry& registry = ScenarioRegistry::Default();
  for (const TypeTransformKind kind : AllTypeTransformKinds()) {
    SCOPED_TRACE(TypeTransformKindName(kind));
    std::string reference;
    for (const int threads : {1, 4}) {
      for (const bool elide : {false, true}) {
        RunSpec spec = SmallConflictSpec();
        spec.threads = threads;
        spec.record_elision = elide;
        spec.collect_histories = false;
        spec.transforms.Add("pkt_stat", kind);
        const std::string json =
            ScenarioReportToJson(RunScenario(registry, "conflict_demo", spec));
        if (reference.empty()) {
          reference = json;
        } else {
          EXPECT_EQ(reference, json)
              << "threads=" << threads << " elision=" << (elide ? "on" : "off");
        }
      }
    }
  }
}

// pin_home rewires the allocator's remote-free path (alien arrays skipped,
// transfers staged to the epoch boundary): exercise it on a workload that
// actually frees across cores, in the same determinism matrix.
TEST(WhatIfTest, PinHomeOnHeapTypeIsDeterministic) {
  ScenarioRegistry& registry = ScenarioRegistry::Default();
  std::string reference;
  for (const int threads : {1, 4}) {
    for (const bool elide : {false, true}) {
      RunSpec spec;
      spec.cores = 4;
      spec.collect_cycles = 2'000'000;
      spec.threads = threads;
      spec.record_elision = elide;
      spec.collect_histories = false;
      spec.transforms.Add("skbuff", TypeTransformKind::kPinHome);
      spec.transforms.Add("size-1024", TypeTransformKind::kPinHome);
      const std::string json =
          ScenarioReportToJson(RunScenario(registry, "memcached", spec));
      if (reference.empty()) {
        reference = json;
      } else {
        EXPECT_EQ(reference, json)
            << "threads=" << threads << " elision=" << (elide ? "on" : "off");
      }
    }
  }
}

// conflict_demo places pkt_stat objects at a stride that aliases every
// object onto one associativity set; pad_to_line repacks the run densely,
// so the what-if diff must measure a positive throughput gain. The identity
// control arm must measure exactly zero.
TEST(WhatIfTest, PadToLineOnAliasedTypeYieldsPositiveGain) {
  ScenarioRegistry& registry = ScenarioRegistry::Default();
  const std::vector<WhatIfCandidate> candidates = {
      {"pkt_stat", TypeTransformKind::kPadToLine},
      {"pkt_stat", TypeTransformKind::kIdentity},
  };
  const WhatIfReport report =
      RunWhatIf(registry, "conflict_demo", SmallConflictSpec(), candidates);
  ASSERT_EQ(report.outcomes.size(), 2u);
  // Ranked best-first: the real fix above the control arm.
  EXPECT_EQ(report.outcomes[0].candidate.kind, TypeTransformKind::kPadToLine);
  EXPECT_GT(report.outcomes[0].delta_pct, 0.0);
  EXPECT_GT(report.outcomes[0].throughput_rps, report.baseline_rps);
  EXPECT_EQ(report.outcomes[1].candidate.kind, TypeTransformKind::kIdentity);
  EXPECT_EQ(report.outcomes[1].delta_rps, 0.0);
  EXPECT_EQ(report.outcomes[1].requests, report.baseline_requests);

  const std::string json = WhatIfReportToJson(report);
  EXPECT_NE(json.find("\"whatif_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"fix\":\"pad_to_line\""), std::string::npos);
  EXPECT_NE(json.find("\"delta_pct\":"), std::string::npos);
  const std::string table = WhatIfReportToTable(report);
  EXPECT_NE(table.find("pad_to_line"), std::string::npos);
}

TEST(WhatIfTest, AutoCandidatesCrossTopTypesWithCatalog) {
  std::vector<ScenarioProfileRow> profile(3);
  profile[0].type = "size-1024";
  profile[1].type = "skbuff";
  profile[2].type = "slab";
  const std::vector<WhatIfCandidate> candidates = AutoCandidates(profile, 2);
  ASSERT_EQ(candidates.size(), 2 * AllTypeTransformKinds().size());
  EXPECT_EQ(candidates.front().type, "size-1024");
  EXPECT_EQ(candidates.back().type, "skbuff");
  // Asking for more types than profiled clamps instead of overrunning.
  EXPECT_EQ(AutoCandidates(profile, 10).size(), 3 * AllTypeTransformKinds().size());
}

}  // namespace
}  // namespace dprof
