#include <gtest/gtest.h>

#include "src/dprof/address_set.h"

namespace dprof {
namespace {

TEST(AddressSetTest, TracksLiveCounts) {
  AddressSet set;
  set.OnAlloc(1, 0x1000, 64, 0, 100);
  set.OnAlloc(1, 0x2000, 64, 0, 200);
  EXPECT_EQ(set.LiveCount(1), 2u);
  EXPECT_EQ(set.AllocCount(1), 2u);
  set.OnFree(1, 0x1000, 64, 0, 300);
  EXPECT_EQ(set.LiveCount(1), 1u);
  EXPECT_EQ(set.ObjectSize(1), 64u);
}

TEST(AddressSetTest, LifetimeFromAllocToFree) {
  AddressSet set;
  set.OnAlloc(1, 0x1000, 64, 0, 100);
  set.OnFree(1, 0x1000, 64, 2, 600);
  EXPECT_DOUBLE_EQ(set.AverageLifetime(1), 500.0);
  set.OnAlloc(1, 0x1000, 64, 0, 1000);
  set.OnFree(1, 0x1000, 64, 0, 1100);
  EXPECT_DOUBLE_EQ(set.AverageLifetime(1), 300.0);
}

TEST(AddressSetTest, AverageLiveBytesIntegratesResidency) {
  AddressSet set;
  // One 100-byte object live for half of a 1000-cycle window.
  set.OnAlloc(1, 0x1000, 100, 0, 0);
  set.OnFree(1, 0x1000, 100, 0, 500);
  EXPECT_NEAR(set.AverageLiveBytes(1, 1000), 50.0, 1e-6);
}

TEST(AddressSetTest, ToleratesOutOfOrderTimestamps) {
  AddressSet set;
  set.OnAlloc(1, 0x1000, 64, 0, 1000);
  // A second core's clock lags behind; must not corrupt the integral.
  set.OnAlloc(1, 0x2000, 64, 1, 400);
  set.OnFree(1, 0x2000, 64, 1, 500);
  const double avg = set.AverageLiveBytes(1, 2000);
  EXPECT_GE(avg, 0.0);
  EXPECT_LT(avg, 200.0);
}

TEST(AddressSetTest, AddressSamplesModulo) {
  AddressSetOptions options;
  options.modulo = 0x1000;
  AddressSet set(options);
  set.OnAlloc(1, 0x123456, 64, 0, 1);
  const auto& samples = set.AddressSamples(1);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0], 0x123456ull % 0x1000);
}

TEST(AddressSetTest, ReservoirBounded) {
  AddressSetOptions options;
  options.reservoir_per_type = 16;
  AddressSet set(options);
  for (int i = 0; i < 1000; ++i) {
    set.OnAlloc(1, 0x1000 + static_cast<Addr>(i) * 64, 64, 0, static_cast<uint64_t>(i));
  }
  EXPECT_EQ(set.AddressSamples(1).size(), 16u);
  EXPECT_EQ(set.AllocCount(1), 1000u);
}

TEST(AddressSetTest, UnknownTypeIsEmpty) {
  AddressSet set;
  EXPECT_EQ(set.LiveCount(42), 0u);
  EXPECT_EQ(set.AllocCount(42), 0u);
  EXPECT_TRUE(set.AddressSamples(42).empty());
  EXPECT_EQ(set.AverageLiveBytes(42, 100), 0.0);
}

TEST(AddressSetTest, KnownTypesSorted) {
  AddressSet set;
  set.OnAlloc(9, 0x1000, 64, 0, 1);
  set.OnAlloc(3, 0x2000, 64, 0, 2);
  set.OnAlloc(5, 0x3000, 64, 0, 3);
  const auto types = set.KnownTypes();
  ASSERT_EQ(types.size(), 3u);
  EXPECT_EQ(types[0], 3u);
  EXPECT_EQ(types[1], 5u);
  EXPECT_EQ(types[2], 9u);
}

TEST(AddressSetTest, FreeWithoutAllocIsSafe) {
  AddressSet set;
  set.OnFree(1, 0x1000, 64, 0, 100);
  EXPECT_EQ(set.LiveCount(1), 0u);
}

}  // namespace
}  // namespace dprof
