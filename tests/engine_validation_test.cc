// Profile-shape validation: the epoch engine against the legacy
// step-the-minimum-clock-core loop, across every registered scenario.
//
// The engine's timing semantics differ from the legacy loop in bounded,
// documented ways (mailboxes flush at epoch boundaries, lock waits resolve
// at commit, the apply pass interleaves cores at quantum granularity), so
// the two runs cannot be compared byte-for-byte. What must hold for DProf's
// conclusions to be trustworthy is that the *shape* of the profile — which
// types dominate, roughly how much they miss, how fast the workload runs —
// survives the execution strategy. These tests pin that down with
// tolerance-based comparisons of the `dprof run --json` report data.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/cli/scenario_registry.h"

namespace dprof {
namespace {

struct ShapePair {
  ScenarioReport engine;
  ScenarioReport legacy;
};

ShapePair RunBoth(const std::string& scenario, uint64_t cycles) {
  RunSpec params;
  params.cores = 8;
  params.collect_cycles = cycles;
  params.threads = 1;
  params.build_view_json = false;
  ShapePair pair;
  params.use_engine = true;
  pair.engine = RunScenario(ScenarioRegistry::Default(), scenario, params);
  params.use_engine = false;
  pair.legacy = RunScenario(ScenarioRegistry::Default(), scenario, params);
  return pair;
}

std::vector<std::string> TopTypes(const ScenarioReport& report, size_t n) {
  std::vector<std::string> names;
  for (const ScenarioProfileRow& row : report.profile) {
    if (names.size() >= n) {
      break;
    }
    names.push_back(row.type);
  }
  return names;
}

const ScenarioProfileRow* FindRow(const ScenarioReport& report, const std::string& type) {
  for (const ScenarioProfileRow& row : report.profile) {
    if (row.type == type) {
      return &row;
    }
  }
  return nullptr;
}

// Agreement metrics for one scenario, asserted with scenario-tagged
// messages so a failure names the drifting workload.
void ExpectShapesAgree(const std::string& scenario, const ShapePair& pair) {
  SCOPED_TRACE("scenario: " + scenario);
  const ScenarioReport& e = pair.engine;
  const ScenarioReport& l = pair.legacy;

  // Both runs must have produced a usable profile at all.
  ASSERT_FALSE(e.profile.empty());
  ASSERT_FALSE(l.profile.empty());
  ASSERT_GT(e.access_samples, 0u);
  ASSERT_GT(l.access_samples, 0u);

  // Throughput: the engine's epoch batching (mailbox flush granularity,
  // commit-time lock waits) may shift request pacing, but not the order of
  // magnitude of delivered work.
  const double rps_ratio = e.throughput_rps / std::max(l.throughput_rps, 1e-9);
  EXPECT_GT(rps_ratio, 0.60) << "engine rps " << e.throughput_rps << " vs legacy "
                             << l.throughput_rps;
  EXPECT_LT(rps_ratio, 1.67) << "engine rps " << e.throughput_rps << " vs legacy "
                             << l.throughput_rps;

  // Sampling density: IBS periods are identical, so samples scale with
  // executed ops.
  const double sample_ratio =
      static_cast<double>(e.access_samples) / static_cast<double>(l.access_samples);
  EXPECT_GT(sample_ratio, 0.5);
  EXPECT_LT(sample_ratio, 2.0);

  // The top profiled type — the headline DProf answer — must match.
  EXPECT_EQ(e.profile[0].type, l.profile[0].type);

  // The top-3 sets must broadly agree (ranking within the tail may swap).
  const std::vector<std::string> top_e = TopTypes(e, 3);
  const std::vector<std::string> top_l = TopTypes(l, 3);
  const std::set<std::string> set_e(top_e.begin(), top_e.end());
  int shared = 0;
  for (const std::string& name : top_l) {
    shared += set_e.count(name) ? 1 : 0;
  }
  EXPECT_GE(shared, static_cast<int>(std::min(top_l.size(), top_e.size())) - 1)
      << "engine top-3 and legacy top-3 share too few types";

  // Per-type shape for the shared top types: miss percentage within an
  // absolute band, and the bounce verdict — the paper's headline
  // classifier — identical.
  //
  // The band quantifies the engine's known timing drift rather than hiding
  // it: epoch batching delivers mailbox traffic in bursts, which changes
  // payload reuse distances. Measured on the worst case (kernel scenario,
  // size-1024 payloads, 20M cycles): legacy 69.4% missing vs engine 41.0%
  // at the default 20k-cycle epochs, 55.5% at 5k, 56.6% at 2k — the drift
  // shrinks as epochs tighten, pinning its source to epoch granularity,
  // and has been present since the engine landed (PR2 measures 40.4%).
  // 30 points covers that known gap; a regression beyond it still fails.
  for (const std::string& name : top_l) {
    const ScenarioProfileRow* re = FindRow(e, name);
    const ScenarioProfileRow* rl = FindRow(l, name);
    if (re == nullptr || rl == nullptr) {
      continue;  // counted by the overlap check above
    }
    SCOPED_TRACE("type: " + name);
    EXPECT_NEAR(re->miss_pct, rl->miss_pct, 30.0);
    if (rl->samples >= 100 && re->samples >= 100) {
      EXPECT_EQ(re->bounce, rl->bounce);
    }
  }
}

TEST(EngineValidationTest, AllScenariosMatchLegacyShape) {
  // Scenario-specific collection lengths keep the whole suite fast while
  // giving each workload enough samples for a stable shape.
  const std::map<std::string, uint64_t> cycles = {
      {"memcached", 6'000'000},
      {"kernel", 6'000'000},
      {"apache", 6'000'000},
      {"conflict_demo", 4'000'000},
  };
  ScenarioRegistry& registry = ScenarioRegistry::Default();
  for (const std::string& name : registry.Names()) {
    auto it = cycles.find(name);
    const uint64_t collect = it != cycles.end() ? it->second : 4'000'000;
    ExpectShapesAgree(name, RunBoth(name, collect));
  }
}

// The registry must not grow scenarios that silently skip validation.
TEST(EngineValidationTest, CoversEveryRegisteredScenario) {
  EXPECT_GE(ScenarioRegistry::Default().Names().size(), 4u);
}

// Record elision is a pure recording-cost optimization: for every
// registered scenario the full `dprof run --json` document must be
// byte-identical with elision allowed and forced off, at one and at four
// host threads.
TEST(EngineValidationTest, RecordElisionByteIdenticalPerScenario) {
  ScenarioRegistry& registry = ScenarioRegistry::Default();
  for (const std::string& name : registry.Names()) {
    SCOPED_TRACE("scenario: " + name);
    RunSpec params;
    params.cores = 4;
    params.collect_cycles = 1'500'000;
    params.threads = 1;
    params.record_elision = true;
    const std::string baseline =
        ScenarioReportToJson(RunScenario(registry, name, params));
    params.record_elision = false;
    EXPECT_EQ(baseline, ScenarioReportToJson(RunScenario(registry, name, params)));
    params.threads = 4;
    EXPECT_EQ(baseline, ScenarioReportToJson(RunScenario(registry, name, params)));
    params.record_elision = true;
    EXPECT_EQ(baseline, ScenarioReportToJson(RunScenario(registry, name, params)));
  }
}

// Adaptive epochs: drilling into a mailbox-fed type runs the engine at
// EngineConfig::epoch_cycles_focus, which must close most of the documented
// epoch-batching miss-rate drift on that type (legacy 69% vs engine 41% at
// the default 20k-cycle epochs on this workload — a ~28-point gap that the
// 30-point band above merely tolerates). With focus, measured agreement is
// within ~7 points; 15 leaves noise margin while still proving the claim.
TEST(EngineValidationTest, MailboxFocusClosesPayloadMissDrift) {
  RunSpec params;
  params.cores = 8;
  params.collect_cycles = 6'000'000;
  params.threads = 1;
  params.build_view_json = false;
  params.drill_type = "size-1024";

  params.use_engine = true;
  const ScenarioReport engine = RunScenario(ScenarioRegistry::Default(), "kernel", params);
  params.use_engine = false;
  const ScenarioReport legacy = RunScenario(ScenarioRegistry::Default(), "kernel", params);

  const ScenarioProfileRow* re = FindRow(engine, "size-1024");
  const ScenarioProfileRow* rl = FindRow(legacy, "size-1024");
  ASSERT_NE(re, nullptr);
  ASSERT_NE(rl, nullptr);
  EXPECT_NEAR(re->miss_pct, rl->miss_pct, 15.0)
      << "focused engine " << re->miss_pct << "% vs legacy " << rl->miss_pct << "%";
}

}  // namespace
}  // namespace dprof
