#include <gtest/gtest.h>

#include <set>

#include "src/sim/cache.h"
#include "src/util/rng.h"

namespace dprof {
namespace {

CacheGeometry SmallGeometry() { return CacheGeometry{1024, 64, 2}; }  // 8 sets, 2 ways

TEST(CacheGeometryTest, Derivations) {
  CacheGeometry g{32 * 1024, 64, 8};
  EXPECT_EQ(g.NumSets(), 64u);
  EXPECT_EQ(g.LineOf(0), 0u);
  EXPECT_EQ(g.LineOf(63), 0u);
  EXPECT_EQ(g.LineOf(64), 1u);
  EXPECT_EQ(g.SetOf(64), 0u);
  EXPECT_EQ(g.SetOf(65), 1u);
}

// Address math is shift/mask: the helpers must agree with the arithmetic
// definitions on power-of-two shapes, which construction enforces.
TEST(CacheGeometryTest, ShiftMaskFormsMatchArithmetic) {
  const CacheGeometry shapes[] = {
      {1024, 64, 2}, {32 * 1024, 64, 8}, {16384, 128, 4}, {512, 64, 1}};
  for (const CacheGeometry& g : shapes) {
    ASSERT_TRUE(g.IsPowerOfTwoShaped());
    EXPECT_EQ(1u << g.LineShift(), g.line_size);
    EXPECT_EQ(g.SetMask(), g.NumSets() - 1);
    for (const Addr addr : {0ull, 63ull, 64ull, 4097ull, 0xdeadbeefull}) {
      EXPECT_EQ(g.LineOf(addr), addr / g.line_size);
      EXPECT_EQ(g.SetOf(g.LineOf(addr)), g.LineOf(addr) % g.NumSets());
    }
  }
}

TEST(CacheGeometryTest, NonPowerOfTwoShapesAreDetected) {
  // 24 KiB / 64 B / 8 ways = 48 sets: not a power of two, so not a valid
  // backing geometry (Cache and CacheHierarchy refuse it at construction).
  const CacheGeometry g{24 * 1024, 64, 8};
  EXPECT_FALSE(g.IsPowerOfTwoShaped());
}

TEST(CacheTest, MissThenHit) {
  Cache cache(SmallGeometry());
  EXPECT_FALSE(cache.Touch(5, 1));
  cache.Insert(5, 1);
  EXPECT_TRUE(cache.Touch(5, 2));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CacheTest, ContainsHasNoSideEffects) {
  Cache cache(SmallGeometry());
  cache.Insert(3, 1);
  const uint64_t hits_before = cache.stats().hits;
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_FALSE(cache.Contains(4));
  EXPECT_EQ(cache.stats().hits, hits_before);
}

TEST(CacheTest, LruEviction) {
  Cache cache(SmallGeometry());  // 8 sets: lines 0, 8, 16 share set 0
  cache.Insert(0, 1);
  cache.Insert(8, 2);
  // Touch line 0 so line 8 becomes LRU.
  EXPECT_TRUE(cache.Touch(0, 3));
  auto evicted = cache.Insert(16, 4);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 8u);
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(16));
}

TEST(CacheTest, InsertExistingRefreshes) {
  Cache cache(SmallGeometry());
  cache.Insert(0, 1);
  cache.Insert(8, 2);
  // Re-inserting 0 must not evict and must refresh its recency.
  EXPECT_FALSE(cache.Insert(0, 3).has_value());
  auto evicted = cache.Insert(16, 4);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 8u);
}

TEST(CacheTest, RemoveInvalidates) {
  Cache cache(SmallGeometry());
  cache.Insert(7, 1);
  EXPECT_TRUE(cache.Remove(7));
  EXPECT_FALSE(cache.Contains(7));
  EXPECT_FALSE(cache.Remove(7));
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(CacheTest, OccupancyTracksValidLines) {
  Cache cache(SmallGeometry());
  EXPECT_EQ(cache.Occupancy(), 0u);
  cache.Insert(1, 1);
  cache.Insert(2, 1);
  EXPECT_EQ(cache.Occupancy(), 2u);
  cache.Remove(1);
  EXPECT_EQ(cache.Occupancy(), 1u);
}

TEST(CacheTest, SetFillCounting) {
  Cache cache(SmallGeometry());
  cache.Insert(0, 1);   // set 0
  cache.Insert(8, 2);   // set 0
  cache.Insert(16, 3);  // set 0, evicts
  cache.Insert(1, 4);   // set 1
  EXPECT_EQ(cache.FillsOfSet(0), 3u);
  EXPECT_EQ(cache.FillsOfSet(1), 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

// Property-style sweep: across several geometries, a cache never holds more
// lines than its capacity, never holds duplicates, and evicts only when a
// set is full.
struct GeometryCase {
  uint64_t size;
  uint32_t line;
  uint32_t ways;
};

class CachePropertyTest : public ::testing::TestWithParam<GeometryCase> {};

TEST_P(CachePropertyTest, InvariantsUnderRandomWorkload) {
  const GeometryCase& gc = GetParam();
  CacheGeometry geom{gc.size, gc.line, gc.ways};
  Cache cache(geom);
  Rng rng(gc.size ^ gc.ways);
  std::set<uint64_t> model;  // lines we believe are cached

  for (int i = 0; i < 5000; ++i) {
    const uint64_t line = rng.Below(4 * geom.NumSets() * geom.ways);
    switch (rng.Below(3)) {
      case 0: {
        auto evicted = cache.Insert(line, i);
        model.insert(line);
        if (evicted.has_value()) {
          EXPECT_NE(*evicted, line);
          model.erase(*evicted);
        }
        break;
      }
      case 1:
        EXPECT_EQ(cache.Touch(line, i), model.count(line) == 1);
        break;
      case 2:
        EXPECT_EQ(cache.Remove(line), model.count(line) == 1);
        model.erase(line);
        break;
    }
    ASSERT_LE(cache.Occupancy(), geom.NumSets() * geom.ways);
    ASSERT_EQ(cache.Occupancy(), model.size());
  }
  // Model and cache agree on membership at the end.
  for (const uint64_t line : model) {
    EXPECT_TRUE(cache.Contains(line));
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, CachePropertyTest,
                         ::testing::Values(GeometryCase{1024, 64, 2},
                                           GeometryCase{4096, 64, 4},
                                           GeometryCase{8192, 64, 1},
                                           GeometryCase{32768, 64, 8},
                                           GeometryCase{16384, 128, 4},
                                           GeometryCase{65536, 64, 16}));

// Direct-mapped corner case: every insert into an occupied set evicts.
TEST(CacheTest, DirectMappedAlwaysEvictsOnConflict) {
  Cache cache(CacheGeometry{512, 64, 1});  // 8 sets, 1 way
  cache.Insert(0, 1);
  auto evicted = cache.Insert(8, 2);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 0u);
}

}  // namespace
}  // namespace dprof
