#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/alloc/slab_allocator.h"
#include "src/util/rng.h"

namespace dprof {
namespace {

struct AllocFixture : ::testing::Test {
  AllocFixture() : machine(MakeConfig()), allocator(&machine, &registry) {
    machine.SetAllocator(&allocator);
    widget = registry.Register("widget", 100);  // padded to 104
    big = registry.Register("big", 6000);       // multi-page slab
    fn = machine.symbols().Intern("test_fn");
  }

  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.hierarchy.num_cores = 4;
    return config;
  }

  Machine machine;
  TypeRegistry registry;
  SlabAllocator allocator;
  TypeId widget = kInvalidType;
  TypeId big = kInvalidType;
  FunctionId fn = kInvalidFunction;
};

TEST(TypeRegistryTest, RegisterAndLookup) {
  TypeRegistry registry;
  const TypeId a = registry.Register("foo", 64);
  const TypeId b = registry.Register("bar", 128);
  EXPECT_NE(a, b);
  EXPECT_EQ(registry.Register("foo", 64), a);  // idempotent
  EXPECT_EQ(registry.Find("bar"), b);
  EXPECT_EQ(registry.Find("baz"), kInvalidType);
  EXPECT_EQ(registry.Name(a), "foo");
  EXPECT_EQ(registry.Size(b), 128u);
  EXPECT_EQ(registry.size(), 2u);
}

TEST_F(AllocFixture, AllocReturnsDistinctAddresses) {
  CoreContext ctx = machine.Context(0);
  const Addr a = ctx.Alloc(widget, fn);
  const Addr b = ctx.Alloc(widget, fn);
  EXPECT_NE(a, kNullAddr);
  EXPECT_NE(a, b);
}

TEST_F(AllocFixture, ResolveRoundTripsBaseAndInterior) {
  CoreContext ctx = machine.Context(0);
  const Addr a = ctx.Alloc(widget, fn);
  const ResolveResult base = allocator.Resolve(a);
  ASSERT_TRUE(base.valid);
  EXPECT_EQ(base.type, widget);
  EXPECT_EQ(base.base, a);
  EXPECT_EQ(base.offset, 0u);
  EXPECT_EQ(base.size, 104u);  // padded

  const ResolveResult interior = allocator.Resolve(a + 57);
  ASSERT_TRUE(interior.valid);
  EXPECT_EQ(interior.type, widget);
  EXPECT_EQ(interior.base, a);
  EXPECT_EQ(interior.offset, 57u);
}

TEST_F(AllocFixture, ResolveSlabHeader) {
  CoreContext ctx = machine.Context(0);
  const Addr a = ctx.Alloc(widget, fn);
  // The slab header sits at the start of the object's page run.
  const Addr page_base = (a / 4096) * 4096;
  const ResolveResult header = allocator.Resolve(page_base + 8);
  ASSERT_TRUE(header.valid);
  EXPECT_EQ(header.type, allocator.slab_type());
}

TEST_F(AllocFixture, ResolveUnknownAddressFails) {
  EXPECT_FALSE(allocator.Resolve(0x10).valid);
  EXPECT_FALSE(allocator.Resolve(0x7f1234560000ull).valid);
}

TEST_F(AllocFixture, FreeAndReuseSameCore) {
  CoreContext ctx = machine.Context(0);
  const Addr a = ctx.Alloc(widget, fn);
  ctx.Free(a, fn);
  // LIFO magazine: the very next alloc reuses the address.
  const Addr b = ctx.Alloc(widget, fn);
  EXPECT_EQ(a, b);
}

TEST_F(AllocFixture, AlienFreeCountsAndDrains) {
  CoreContext c0 = machine.Context(0);
  CoreContext c1 = machine.Context(1);
  std::vector<Addr> objs;
  for (int i = 0; i < 64; ++i) {
    objs.push_back(c0.Alloc(widget, fn));
  }
  for (const Addr a : objs) {
    c1.Free(a, fn);  // all alien
  }
  EXPECT_EQ(allocator.type_stats(widget).alien_frees, 64u);
  EXPECT_EQ(allocator.type_stats(widget).live, 0u);
  // Eventually core 0 can re-allocate the drained objects.
  std::vector<Addr> again;
  for (int i = 0; i < 64; ++i) {
    again.push_back(c0.Alloc(widget, fn));
  }
  EXPECT_EQ(allocator.type_stats(widget).live, 64u);
}

TEST_F(AllocFixture, LiveStatsTrackAllocFree) {
  CoreContext ctx = machine.Context(0);
  const Addr a = ctx.Alloc(widget, fn);
  const Addr b = ctx.Alloc(widget, fn);
  EXPECT_EQ(allocator.LiveCount(widget), 2u);
  EXPECT_EQ(allocator.type_stats(widget).peak_live, 2u);
  ctx.Free(a, fn);
  EXPECT_EQ(allocator.LiveCount(widget), 1u);
  ctx.Free(b, fn);
  EXPECT_EQ(allocator.LiveCount(widget), 0u);
  EXPECT_EQ(allocator.type_stats(widget).allocs, 2u);
  EXPECT_EQ(allocator.type_stats(widget).frees, 2u);
}

TEST_F(AllocFixture, AverageLiveBytesReflectsResidency) {
  CoreContext ctx = machine.Context(0);
  const Addr a = ctx.Alloc(widget, fn);
  const uint64_t alloc_done = machine.CoreClock(0);
  ctx.Compute(fn, 100000);  // object stays live for a long stretch
  ctx.Free(a, fn);
  const uint64_t now = machine.CoreClock(0);
  const double avg = allocator.AverageLiveBytes(widget, now);
  // One ~104-byte object live for most of the window.
  const double expected = 104.0 * 100000.0 / static_cast<double>(now);
  EXPECT_NEAR(avg, expected, expected * 0.2);
  (void)alloc_done;
}

TEST_F(AllocFixture, MultiPageSlabObjects) {
  CoreContext ctx = machine.Context(0);
  const Addr a = ctx.Alloc(big, fn);
  const ResolveResult r = allocator.Resolve(a + 4500);
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.type, big);
  EXPECT_EQ(r.base, a);
  EXPECT_EQ(r.offset, 4500u);
}

TEST_F(AllocFixture, StaticRegistrationResolves) {
  const TypeId dev = registry.Register("device", 128);
  const Addr base = allocator.RegisterStatic(dev, 128);
  const ResolveResult r = allocator.Resolve(base + 64);
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.type, dev);
  EXPECT_EQ(r.offset, 64u);
}

TEST_F(AllocFixture, ObserverSeesAllocAndFree) {
  struct Observer : AllocationObserver {
    void OnAlloc(TypeId t, Addr base, uint32_t size, int core, uint64_t) override {
      allocs.push_back({t, base, size, core});
    }
    void OnFree(TypeId t, Addr base, uint32_t, int, uint64_t) override {
      frees.push_back({t, base});
    }
    struct A {
      TypeId t;
      Addr base;
      uint32_t size;
      int core;
    };
    std::vector<A> allocs;
    std::vector<std::pair<TypeId, Addr>> frees;
  } obs;
  allocator.AddObserver(&obs);
  CoreContext ctx = machine.Context(2);
  const Addr a = ctx.Alloc(widget, fn);
  ctx.Free(a, fn);
  allocator.RemoveObserver(&obs);
  ctx.Alloc(widget, fn);

  ASSERT_EQ(obs.allocs.size(), 1u);
  EXPECT_EQ(obs.allocs[0].t, widget);
  EXPECT_EQ(obs.allocs[0].base, a);
  EXPECT_EQ(obs.allocs[0].size, 104u);
  EXPECT_EQ(obs.allocs[0].core, 2);
  ASSERT_EQ(obs.frees.size(), 1u);
  EXPECT_EQ(obs.frees[0].second, a);
}

TEST_F(AllocFixture, CacheLockIsSharedName) {
  SimLock* lock = allocator.CacheLock(widget);
  ASSERT_NE(lock, nullptr);
  EXPECT_EQ(lock->name(), "SLAB cache lock");
}

TEST_F(AllocFixture, MetadataTypesRegistered) {
  EXPECT_EQ(registry.Name(allocator.slab_type()), "slab");
  EXPECT_EQ(registry.Name(allocator.array_cache_type()), "array_cache");
  EXPECT_EQ(registry.Name(allocator.kmem_cache_type()), "kmem_cache");
}

TEST_F(AllocFixture, AllocatorMetadataLivesInSimulatedMemory) {
  // The allocator's own accesses must be observable: count events whose
  // resolved type is array_cache during an alloc burst.
  struct Recorder : MachineObserver {
    explicit Recorder(SlabAllocator* a) : alloc(a) {}
    void OnAccess(const AccessEvent& event) override {
      const ResolveResult r = alloc->Resolve(event.addr);
      if (r.valid && r.type == alloc->array_cache_type()) {
        ++array_cache_touches;
      }
    }
    void OnCompute(int, FunctionId, uint64_t, uint64_t) override {}
    SlabAllocator* alloc;
    int array_cache_touches = 0;
  } recorder(&allocator);
  machine.AddObserver(&recorder);
  CoreContext ctx = machine.Context(0);
  ctx.Alloc(widget, fn);
  machine.RemoveObserver(&recorder);
  EXPECT_GT(recorder.array_cache_touches, 0);
}

// Property-style fuzz: random alloc/free interleavings across cores never
// produce overlapping live objects, and every live address resolves.
class AllocatorFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AllocatorFuzzTest, NoOverlapAndResolveAlways) {
  MachineConfig config;
  config.hierarchy.num_cores = 4;
  Machine machine(config);
  TypeRegistry registry;
  SlabAllocator allocator(&machine, &registry);
  machine.SetAllocator(&allocator);
  const FunctionId fn = machine.symbols().Intern("fuzz");
  const TypeId small = registry.Register("small", 48);
  const TypeId medium = registry.Register("medium", 500);
  const TypeId large = registry.Register("large", 1900);

  Rng rng(GetParam());
  std::map<Addr, std::pair<TypeId, uint32_t>> live;  // base -> (type, padded size)
  const TypeId types[3] = {small, medium, large};
  const uint32_t padded[3] = {48, 504, 1904};

  for (int i = 0; i < 3000; ++i) {
    CoreContext ctx = machine.Context(static_cast<int>(rng.Below(4)));
    if (live.empty() || rng.Chance(0.55)) {
      const int which = static_cast<int>(rng.Below(3));
      const Addr a = ctx.Alloc(types[which], fn);
      // No overlap with any live object.
      auto next = live.lower_bound(a);
      if (next != live.end()) {
        ASSERT_GE(next->first, a + padded[which]);
      }
      if (next != live.begin()) {
        auto prev = std::prev(next);
        ASSERT_LE(prev->first + prev->second.second, a);
      }
      live[a] = {types[which], padded[which]};
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.Below(live.size())));
      const ResolveResult r = allocator.Resolve(it->first + rng.Below(it->second.second));
      ASSERT_TRUE(r.valid);
      ASSERT_EQ(r.type, it->second.first);
      ASSERT_EQ(r.base, it->first);
      ctx.Free(it->first, fn);
      live.erase(it);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorFuzzTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dprof
