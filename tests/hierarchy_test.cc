#include <gtest/gtest.h>

#include <string>

#include "src/machine/engine.h"
#include "src/machine/faults.h"
#include "src/machine/machine.h"
#include "src/sim/audit.h"
#include "src/sim/hierarchy.h"

namespace dprof {
namespace {

HierarchyConfig SmallConfig(int cores = 4) {
  HierarchyConfig config;
  config.num_cores = cores;
  config.l1 = CacheGeometry{1024, 64, 2};
  config.l2 = CacheGeometry{4096, 64, 4};
  config.l3 = CacheGeometry{16384, 64, 8};
  return config;
}

TEST(HierarchyTest, FirstAccessComesFromDram) {
  CacheHierarchy h(SmallConfig());
  const AccessResult r = h.Access(0, 0x1000, 8, false, 1);
  EXPECT_EQ(r.level, ServedBy::kDram);
  EXPECT_EQ(r.latency, h.config().latency.dram);
  EXPECT_TRUE(r.l1_miss);
  EXPECT_FALSE(r.invalidation);
}

TEST(HierarchyTest, SecondAccessHitsL1) {
  CacheHierarchy h(SmallConfig());
  h.Access(0, 0x1000, 8, false, 1);
  const AccessResult r = h.Access(0, 0x1000, 8, false, 2);
  EXPECT_EQ(r.level, ServedBy::kL1);
  EXPECT_FALSE(r.l1_miss);
}

TEST(HierarchyTest, RemoteDirtyLineIsForeignFetch) {
  CacheHierarchy h(SmallConfig());
  h.Access(0, 0x2000, 8, true, 1);  // core 0 writes (modified)
  const AccessResult r = h.Access(1, 0x2000, 8, false, 2);
  EXPECT_EQ(r.level, ServedBy::kForeignCache);
}

TEST(HierarchyTest, WriteInvalidatesRemoteCopies) {
  CacheHierarchy h(SmallConfig());
  h.Access(0, 0x3000, 8, false, 1);  // core 0 caches the line
  h.Access(1, 0x3000, 8, true, 2);   // core 1 writes: invalidate core 0
  EXPECT_FALSE(h.InPrivateCache(0, 0x3000));
  // Core 0's next access is an invalidation miss (ground truth flag).
  const AccessResult r = h.Access(0, 0x3000, 8, false, 3);
  EXPECT_TRUE(r.invalidation);
  EXPECT_EQ(r.level, ServedBy::kForeignCache);  // dirty at core 1
}

TEST(HierarchyTest, EvictionIsNotAnInvalidationMiss) {
  HierarchyConfig config = SmallConfig();
  CacheHierarchy h(config);
  // Thrash set 0 of core 0's L1/L2 until 0x0 is evicted naturally.
  h.Access(0, 0x0, 8, false, 1);
  const uint64_t span = config.l2.NumSets() * config.l2.line_size;
  for (int i = 1; i <= 16; ++i) {
    h.Access(0, static_cast<Addr>(i) * span, 8, false, 1 + i);
  }
  const AccessResult r = h.Access(0, 0x0, 8, false, 100);
  EXPECT_TRUE(r.l1_miss);
  EXPECT_FALSE(r.invalidation);
}

TEST(HierarchyTest, SharedReadersDoNotInvalidateEachOther) {
  CacheHierarchy h(SmallConfig());
  h.Access(0, 0x4000, 8, false, 1);
  h.Access(1, 0x4000, 8, false, 2);
  EXPECT_TRUE(h.InPrivateCache(0, 0x4000));
  EXPECT_TRUE(h.InPrivateCache(1, 0x4000));
  const AccessResult r0 = h.Access(0, 0x4000, 8, false, 3);
  EXPECT_EQ(r0.level, ServedBy::kL1);
}

TEST(HierarchyTest, DirtyWritebackServesLaterReadFromL3) {
  CacheHierarchy h(SmallConfig());
  h.Access(0, 0x5000, 8, true, 1);   // dirty at core 0
  h.Access(1, 0x5000, 8, false, 2);  // foreign fetch + writeback to L3
  // A third core now finds it in L3 (both private copies are clean).
  const AccessResult r = h.Access(2, 0x5000, 8, false, 3);
  EXPECT_EQ(r.level, ServedBy::kL3);
}

TEST(HierarchyTest, MultiLineAccessAggregates) {
  CacheHierarchy h(SmallConfig());
  const AccessResult r = h.Access(0, 0x6000, 256, false, 1);  // 4 lines
  EXPECT_EQ(r.lines, 4u);
  EXPECT_EQ(r.latency, 4 * h.config().latency.dram);
  EXPECT_EQ(r.level, ServedBy::kDram);
}

TEST(HierarchyTest, UnalignedAccessSpansExtraLine) {
  CacheHierarchy h(SmallConfig());
  const AccessResult r = h.Access(0, 0x6000 + 60, 8, false, 1);  // straddles
  EXPECT_EQ(r.lines, 2u);
}

TEST(HierarchyTest, ProbeLevelMatchesAccessOutcome) {
  CacheHierarchy h(SmallConfig());
  EXPECT_EQ(h.ProbeLevel(0, 0x7000), ServedBy::kDram);
  h.Access(0, 0x7000, 8, false, 1);
  EXPECT_EQ(h.ProbeLevel(0, 0x7000), ServedBy::kL1);
  h.Access(1, 0x7000, 8, true, 2);
  EXPECT_EQ(h.ProbeLevel(0, 0x7000), ServedBy::kForeignCache);
}

TEST(HierarchyTest, CoreStatsAccumulate) {
  CacheHierarchy h(SmallConfig());
  h.Access(0, 0x8000, 8, false, 1);
  h.Access(0, 0x8000, 8, false, 2);
  const CoreMemStats& stats = h.core_stats(0);
  EXPECT_EQ(stats.accesses, 2u);
  EXPECT_EQ(stats.l1_hits, 1u);
  EXPECT_EQ(stats.l1_misses, 1u);
  EXPECT_EQ(stats.served[static_cast<int>(ServedBy::kDram)], 1u);
  EXPECT_EQ(stats.served[static_cast<int>(ServedBy::kL1)], 1u);
}

TEST(HierarchyTest, FlushAllEmptiesEverything) {
  CacheHierarchy h(SmallConfig());
  h.Access(0, 0x9000, 8, true, 1);
  h.FlushAll();
  EXPECT_FALSE(h.InPrivateCache(0, 0x9000));
  const AccessResult r = h.Access(0, 0x9000, 8, false, 2);
  EXPECT_EQ(r.level, ServedBy::kDram);
}

TEST(HierarchyTest, LatencyModelOrdering) {
  LatencyModel lat;
  EXPECT_LT(lat.Of(ServedBy::kL1), lat.Of(ServedBy::kL2));
  EXPECT_LT(lat.Of(ServedBy::kL2), lat.Of(ServedBy::kL3));
  EXPECT_LT(lat.Of(ServedBy::kL3), lat.Of(ServedBy::kForeignCache));
  EXPECT_LE(lat.Of(ServedBy::kForeignCache), lat.Of(ServedBy::kDram));
}

TEST(HierarchyTest, ServedByNames) {
  EXPECT_STREQ(ServedByName(ServedBy::kL1), "local L1");
  EXPECT_STREQ(ServedByName(ServedBy::kForeignCache), "foreign cache");
  EXPECT_STREQ(ServedByName(ServedBy::kDram), "DRAM");
}

// ---------------------------------------------------------------------------
// Inclusive tag lattice: the embedded directory and its inclusion obligation.
// ---------------------------------------------------------------------------

// A tiny lattice (one extension way per L3 set) so overflow is easy to force.
HierarchyConfig TinyLatticeConfig() {
  HierarchyConfig config = SmallConfig(4);
  config.l3_dir_ext_ways = 1;
  return config;
}

TEST(HierarchyTest, ModifiedLineKeepsLatticeTagWithoutData) {
  CacheHierarchy h(SmallConfig());
  h.Access(0, 0xB000, 8, true, 1);  // modified at core 0: L3 data is stale
  EXPECT_TRUE(h.L3HasTag(0xB000));  // ...but the directory tag stays embedded
  EXPECT_EQ(h.ProbeLevel(1, 0xB000), ServedBy::kForeignCache);
}

TEST(HierarchyTest, ExtensionOverflowBackInvalidatesPrivateCopies) {
  const HierarchyConfig config = TinyLatticeConfig();
  CacheHierarchy h(config);
  // Two lines in the same L3 set, both written (each holds a dir-only tag:
  // one in its data way as an in-place residue, the second likewise). Force
  // residue displacement by filling every data way of the set with fresh
  // lines: displaced residues overflow the single extension way, so the
  // oldest tag is reclaimed and core 0's private copies vanish with it.
  const uint64_t set_span = config.l3.NumSets() * config.l3.line_size;
  const Addr a = 0x10000;
  const Addr b = a + set_span;
  h.Access(0, a, 8, true, 1);
  h.Access(0, b, 8, true, 2);
  ASSERT_TRUE(h.InPrivateCache(0, a));
  ASSERT_EQ(h.tag_reclaims(), 0u);
  for (uint64_t i = 2; i <= 1 + config.l3.ways; ++i) {
    h.Access(1, a + i * set_span, 8, false, 10 + i);
  }
  EXPECT_GT(h.tag_reclaims(), 0u);
  EXPECT_GT(h.back_invalidations(), 0u);
  // Inclusion invariant: a privately-held line always has a lattice tag.
  EXPECT_TRUE(!h.InPrivateCache(0, a) || h.L3HasTag(a));
  EXPECT_TRUE(!h.InPrivateCache(0, b) || h.L3HasTag(b));
  // The reclaimed tag took its private copies with it.
  EXPECT_FALSE(h.InPrivateCache(0, a));
}

TEST(HierarchyTest, DataEvictionWithLiveSharersKeepsDirectoryTag) {
  HierarchyConfig config = SmallConfig();
  CacheHierarchy h(config);
  // Cores 0 and 1 share a line; stream enough distinct lines through its L3
  // set to evict its data. The directory tag must survive (demoted, not
  // dropped), so a third core still sees a foreign copy rather than DRAM.
  const uint64_t set_span = config.l3.NumSets() * config.l3.line_size;
  const Addr shared = 0x40000;
  h.Access(0, shared, 8, false, 1);
  h.Access(1, shared, 8, false, 2);
  for (uint64_t i = 1; i <= config.l3.ways; ++i) {
    h.Access(2, shared + i * set_span, 8, false, 2 + i);
  }
  ASSERT_EQ(h.ProbeLevel(3, shared), ServedBy::kForeignCache);
  EXPECT_TRUE(h.InPrivateCache(0, shared));
  EXPECT_TRUE(h.InPrivateCache(1, shared));
  EXPECT_EQ(h.tag_reclaims(), 0u);
  const AccessResult r = h.Access(3, shared, 8, false, 100);
  EXPECT_EQ(r.level, ServedBy::kForeignCache);
}

TEST(HierarchyTest, FlushAllResetsEmbeddedDirectoryState) {
  CacheHierarchy h(SmallConfig());
  h.Access(0, 0xC000, 8, false, 1);
  h.Access(1, 0xC000, 8, true, 2);  // dir state: owner=1, invalidated_from={0}
  h.FlushAll();
  EXPECT_FALSE(h.L3HasTag(0xC000));
  EXPECT_EQ(h.L3DataLines(), 0u);
  // No stale invalidated-from bit: the next miss is a plain DRAM miss.
  const AccessResult r = h.Access(0, 0xC000, 8, false, 3);
  EXPECT_EQ(r.level, ServedBy::kDram);
  EXPECT_FALSE(r.invalidation);
}

TEST(HierarchyTest, WriteUpgradeTemplatePathsAgree) {
  // The templated Access<is_write> must behave exactly like the runtime
  // dispatch form for both polarities.
  CacheHierarchy a(SmallConfig());
  CacheHierarchy b(SmallConfig());
  const AccessResult r1 = a.Access<true>(0, 0xD000, 8, 1);
  const AccessResult r2 = b.Access(0, 0xD000, 8, true, 1);
  EXPECT_EQ(r1.level, r2.level);
  const AccessResult r3 = a.Access<false>(1, 0xD000, 8, 2);
  const AccessResult r4 = b.Access(1, 0xD000, 8, false, 2);
  EXPECT_EQ(r3.level, r4.level);
  EXPECT_EQ(r3.level, ServedBy::kForeignCache);
}

// ---------------------------------------------------------------------------
// NUMA topology: home-socket assignment, interconnect latency, and
// cross-socket back-invalidation accounting.
// ---------------------------------------------------------------------------

// The small machine split into two sockets of two cores, each with its own
// L3 slice. Shards = 8 (the L1 set count), so home_shift = 2 and home
// blocks are 4 lines (256 bytes) cycling socket 0, 1, 0, 1, ...
HierarchyConfig NumaConfig() {
  HierarchyConfig config = SmallConfig(4);
  config.num_sockets = 2;
  return config;
}

TEST(HierarchyTest, NumaHomeAssignmentCyclesByBlock) {
  CacheHierarchy h(NumaConfig());
  ASSERT_EQ(h.num_sockets(), 2);
  const uint64_t block = h.home_block_bytes();
  EXPECT_EQ(h.HomeSocketOf(0), 0);
  EXPECT_EQ(h.HomeSocketOf(block), 1);
  EXPECT_EQ(h.HomeSocketOf(2 * block), 0);
  EXPECT_EQ(h.SocketOfCore(0), 0);
  EXPECT_EQ(h.SocketOfCore(3), 1);
  // Flat machines degenerate: every address is home, every core socket 0.
  CacheHierarchy flat(SmallConfig(4));
  EXPECT_EQ(flat.num_sockets(), 1);
  EXPECT_EQ(flat.HomeSocketOf(flat.home_block_bytes()), 0);
  EXPECT_EQ(flat.SocketOfCore(3), 0);
}

TEST(HierarchyTest, NumaRemoteHomeFillChargesInterconnect) {
  CacheHierarchy h(NumaConfig());
  const uint64_t block = h.home_block_bytes();
  // Local-home DRAM fill: core 0 (socket 0) reads a socket-0 block.
  const AccessResult local = h.Access(0, 0, 8, false, 1);
  EXPECT_EQ(local.level, ServedBy::kDram);
  EXPECT_EQ(local.latency, h.config().latency.dram);
  EXPECT_EQ(h.remote_fills(), 0u);
  // Remote-home DRAM fill: the next block's home slice is socket 1.
  const AccessResult remote = h.Access(0, block, 8, false, 2);
  EXPECT_EQ(remote.level, ServedBy::kDram);
  EXPECT_EQ(remote.latency, h.config().latency.dram + h.config().latency.interconnect);
  EXPECT_EQ(h.remote_fills(), 1u);
  EXPECT_EQ(h.core_stats(0).remote_fills, 1u);
}

TEST(HierarchyTest, NumaCrossSocketDirtyTransferChargesInterconnect) {
  // 0x2000 is a socket-0 home block. A same-socket dirty transfer (core 0 ->
  // core 1) pays plain foreign latency; the identical transfer to a core on
  // the other socket (core 2) adds exactly one interconnect hop.
  CacheHierarchy same(NumaConfig());
  ASSERT_EQ(same.HomeSocketOf(0x2000), 0);
  same.Access(0, 0x2000, 8, true, 1);
  const AccessResult r_same = same.Access(1, 0x2000, 8, false, 2);
  EXPECT_EQ(r_same.level, ServedBy::kForeignCache);

  CacheHierarchy cross(NumaConfig());
  cross.Access(0, 0x2000, 8, true, 1);
  const AccessResult r_cross = cross.Access(2, 0x2000, 8, false, 2);
  EXPECT_EQ(r_cross.level, ServedBy::kForeignCache);
  EXPECT_EQ(r_cross.latency, r_same.latency + cross.config().latency.interconnect);
  EXPECT_EQ(same.remote_fills(), 0u);
  EXPECT_EQ(cross.remote_fills(), 1u);
}

TEST(HierarchyTest, NumaCrossSocketBackInvalidationCounted) {
  // The TinyLattice overflow idiom, driven from the far socket: cores 2 and
  // 3 (socket 1) write and then displace lines whose home slice is socket 0,
  // so the reclaim's back-invalidations cross the interconnect.
  HierarchyConfig config = NumaConfig();
  config.l3_dir_ext_ways = 1;
  CacheHierarchy h(config);
  const uint64_t set_span = config.l3.NumSets() * config.l3.line_size;
  const Addr a = 0x10000;
  ASSERT_EQ(h.HomeSocketOf(a), 0);
  ASSERT_EQ(h.SocketOfCore(2), 1);
  h.Access(2, a, 8, true, 1);
  h.Access(2, a + set_span, 8, true, 2);
  ASSERT_TRUE(h.InPrivateCache(2, a));
  for (uint64_t i = 2; i <= 1 + config.l3.ways; ++i) {
    h.Access(3, a + i * set_span, 8, false, 10 + i);
  }
  EXPECT_GT(h.tag_reclaims(), 0u);
  EXPECT_GT(h.back_invalidations(), 0u);
  EXPECT_GT(h.cross_socket_back_invalidations(), 0u);
  EXPECT_FALSE(h.InPrivateCache(2, a));
}

TEST(HierarchyTest, WrongHomeFaultInjectableOnlyOnNuma) {
  // Fault kind 6 duplicates a tagged line into a foreign slice's extension
  // bank. It has nothing to corrupt on a flat machine, and on a NUMA one the
  // auditor must call out the misplaced home.
  CacheHierarchy flat(SmallConfig(4));
  flat.Access(0, 0x3000, 8, true, 1);
  EXPECT_FALSE(flat.InjectLatticeFault(6));

  CacheHierarchy h(NumaConfig());
  h.Access(0, 0x3000, 8, true, 1);
  InvariantAuditor auditor(&h);
  EXPECT_TRUE(auditor.Audit().ok());
  ASSERT_TRUE(h.InjectLatticeFault(6));
  const AuditResult corrupted = auditor.Audit();
  EXPECT_FALSE(corrupted.ok());
  bool mentions_home = false;
  for (const std::string& v : corrupted.violations) {
    mentions_home = mentions_home || v.find("home") != std::string::npos;
  }
  EXPECT_TRUE(mentions_home);
}

// ---------------------------------------------------------------------------
// Directory-extension overflow scenario (test-only, unregistered): a full
// engine-driven workload that actually fires the ReclaimExtWay inclusion
// obligation, which no registered scenario reaches. Core 0 writes two lines
// of one L3 set (their stale L3 copies become in-place dir-only residues);
// core 1 then streams enough fresh lines through the same set that the
// displaced residues overflow the single extension way, reclaiming the
// oldest tag and back-invalidating core 0's private copies.
// ---------------------------------------------------------------------------

class ExtOverflowWriter final : public CoreDriver {
 public:
  ExtOverflowWriter(Addr base, uint64_t span) : base_(base), span_(span) {}
  bool Step(CoreContext& ctx) override {
    if (i_ >= 2) {
      return false;
    }
    ctx.Write(1, base_ + i_ * span_, 8);
    ctx.Compute(1, 100);
    ++i_;
    return true;
  }

 private:
  Addr base_;
  uint64_t span_;
  uint64_t i_ = 0;
};

class ExtOverflowStreamer final : public CoreDriver {
 public:
  ExtOverflowStreamer(Addr base, uint64_t span, uint64_t lines)
      : base_(base), span_(span), lines_(lines) {}
  bool Step(CoreContext& ctx) override {
    if (!delayed_) {
      // Pad past the writer's ops so the quantum merge orders the stream
      // strictly after the residues exist.
      ctx.Compute(2, 60'000);
      delayed_ = true;
      return true;
    }
    if (i_ >= lines_) {
      return false;
    }
    ctx.Read(2, base_ + i_ * span_, 8);
    ctx.Compute(2, 50);
    ++i_;
    return true;
  }

 private:
  Addr base_;
  uint64_t span_;
  uint64_t lines_;
  bool delayed_ = false;
  uint64_t i_ = 0;
};

TEST(HierarchyTest, ExtensionOverflowScenarioFiresReclaimUnderEngine) {
  const HierarchyConfig hconfig = TinyLatticeConfig();
  const uint64_t set_span = hconfig.l3.NumSets() * hconfig.l3.line_size;
  const Addr written = 0x10000;  // two written lines: 0x10000, 0x10000+span
  const Addr streamed = written + 2 * set_span;  // same L3 set, fresh lines

  struct RunResult {
    HierarchyTotals totals;
    bool copy_a_private;
    bool copy_a_tagged;
    bool copy_b_tagged;
  };
  auto run = [&](int threads, bool elide) {
    MachineConfig config;
    config.hierarchy = hconfig;
    Machine machine(config);
    ExtOverflowWriter writer(written, set_span);
    ExtOverflowStreamer streamer(streamed, set_span, hconfig.l3.ways + 2);
    machine.SetDriver(0, &writer);
    machine.SetDriver(1, &streamer);
    EngineConfig engine_config;
    engine_config.threads = threads;
    engine_config.allow_record_elision = elide;
    Engine engine(&machine, engine_config);
    machine.SetExecutor(&engine);
    machine.RunFor(200'000);
    CacheHierarchy& h = machine.hierarchy();
    RunResult r;
    r.totals = h.Totals();
    r.copy_a_private = h.InPrivateCache(0, written);
    r.copy_a_tagged = h.L3HasTag(written);
    r.copy_b_tagged = h.L3HasTag(written + set_span);
    // Inclusion invariant for every line the scenario touched: a privately
    // held line always has a lattice tag.
    for (uint64_t i = 0; i < hconfig.l3.ways + 2; ++i) {
      const Addr addr = streamed + i * set_span;
      for (int c = 0; c < hconfig.num_cores; ++c) {
        EXPECT_TRUE(!h.InPrivateCache(c, addr) || h.L3HasTag(addr));
      }
    }
    for (const Addr addr : {written, written + set_span}) {
      for (int c = 0; c < hconfig.num_cores; ++c) {
        EXPECT_TRUE(!h.InPrivateCache(c, addr) || h.L3HasTag(addr));
      }
    }
    return r;
  };

  const RunResult base = run(1, true);
  // The reclaim path really fired, and took private copies with it.
  EXPECT_GT(base.totals.tag_reclaims, 0u);
  EXPECT_GT(base.totals.back_invalidations, 0u);
  EXPECT_FALSE(base.copy_a_private);  // oldest written line lost its copies
  // Counter consistency: served levels partition accesses, and the L1 split
  // agrees with them.
  uint64_t served_sum = 0;
  for (int i = 0; i < 5; ++i) {
    served_sum += base.totals.served[i];
  }
  EXPECT_EQ(base.totals.accesses, served_sum);
  EXPECT_EQ(base.totals.accesses, base.totals.l1_hits + base.totals.l1_misses);
  EXPECT_LE(base.totals.invalidation_misses, base.totals.l1_misses);

  // The reclaim-firing run stays deterministic across thread counts and
  // record modes (back-invalidations land in shard-striped counters).
  for (const auto& [threads, elide] : {std::pair<int, bool>{1, false},
                                       std::pair<int, bool>{4, true},
                                       std::pair<int, bool>{4, false}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads) +
                 " elide=" + std::to_string(elide));
    const RunResult other = run(threads, elide);
    EXPECT_EQ(base.totals.accesses, other.totals.accesses);
    EXPECT_EQ(base.totals.tag_reclaims, other.totals.tag_reclaims);
    EXPECT_EQ(base.totals.back_invalidations, other.totals.back_invalidations);
    EXPECT_EQ(base.totals.invalidation_misses, other.totals.invalidation_misses);
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(base.totals.served[i], other.totals.served[i]) << "level " << i;
    }
    EXPECT_EQ(base.copy_a_private, other.copy_a_private);
    EXPECT_EQ(base.copy_a_tagged, other.copy_a_tagged);
    EXPECT_EQ(base.copy_b_tagged, other.copy_b_tagged);
  }
}

// Extension-bank exhaustion reached the fault-plan way: kExtBankPressure
// shrinks l3_dir_ext_ways at config time, the overflow scenario storms the
// reclaim path, and the invariant auditor must find the lattice consistent
// afterwards — for every thread count and record mode.
TEST(HierarchyTest, FaultPlanExtPressureExhaustionStaysAuditClean) {
  HierarchyConfig hconfig = SmallConfig(4);
  FaultPlanConfig fault_config;
  fault_config.enabled_mask = 1u << static_cast<int>(FaultSeam::kExtBankPressure);
  FaultPlan plan(fault_config);
  plan.ApplyToHierarchy(&hconfig);
  EXPECT_EQ(hconfig.l3_dir_ext_ways, 1u);
  EXPECT_EQ(plan.injected(FaultSeam::kExtBankPressure), 1u);

  const uint64_t set_span = hconfig.l3.NumSets() * hconfig.l3.line_size;
  uint64_t base_reclaims = 0;
  for (const auto& [threads, elide] : {std::pair<int, bool>{1, true},
                                       std::pair<int, bool>{1, false},
                                       std::pair<int, bool>{4, true},
                                       std::pair<int, bool>{4, false}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads) +
                 " elide=" + std::to_string(elide));
    MachineConfig config;
    config.hierarchy = hconfig;
    Machine machine(config);
    ExtOverflowWriter writer(0x10000, set_span);
    ExtOverflowStreamer streamer(0x10000 + 2 * set_span, set_span, hconfig.l3.ways + 2);
    machine.SetDriver(0, &writer);
    machine.SetDriver(1, &streamer);
    EngineConfig engine_config;
    engine_config.threads = threads;
    engine_config.allow_record_elision = elide;
    Engine engine(&machine, engine_config);
    machine.SetExecutor(&engine);
    machine.RunFor(200'000);
    machine.SetExecutor(nullptr);

    const HierarchyTotals totals = machine.hierarchy().Totals();
    EXPECT_GT(totals.tag_reclaims, 0u);
    if (base_reclaims == 0) {
      base_reclaims = totals.tag_reclaims;
    } else {
      EXPECT_EQ(totals.tag_reclaims, base_reclaims);
    }
    InvariantAuditor auditor(&machine.hierarchy());
    const AuditResult audit = auditor.Audit();
    EXPECT_TRUE(audit.ok()) << (audit.violations.empty() ? "" : audit.violations[0]);
    EXPECT_GT(audit.tags_checked, 0u);
  }
}

// Parameterized coherence property: whichever core wrote last, a read from
// any *other* core must not be served from that other core's own L1, and
// after the read both copies are coherent (subsequent reads hit locally).
class CoherencePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CoherencePropertyTest, ReadAfterRemoteWrite) {
  const int writer = GetParam();
  CacheHierarchy h(SmallConfig(4));
  const Addr addr = 0xA000;
  h.Access(writer, addr, 8, true, 1);
  for (int reader = 0; reader < 4; ++reader) {
    if (reader == writer) {
      continue;
    }
    const AccessResult first = h.Access(reader, addr, 8, false, 2);
    EXPECT_NE(first.level, ServedBy::kL1) << "reader " << reader;
    const AccessResult second = h.Access(reader, addr, 8, false, 3);
    EXPECT_EQ(second.level, ServedBy::kL1) << "reader " << reader;
  }
}

INSTANTIATE_TEST_SUITE_P(Writers, CoherencePropertyTest, ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace dprof
