#include <gtest/gtest.h>

#include "src/sim/hierarchy.h"

namespace dprof {
namespace {

HierarchyConfig SmallConfig(int cores = 4) {
  HierarchyConfig config;
  config.num_cores = cores;
  config.l1 = CacheGeometry{1024, 64, 2};
  config.l2 = CacheGeometry{4096, 64, 4};
  config.l3 = CacheGeometry{16384, 64, 8};
  return config;
}

TEST(HierarchyTest, FirstAccessComesFromDram) {
  CacheHierarchy h(SmallConfig());
  const AccessResult r = h.Access(0, 0x1000, 8, false, 1);
  EXPECT_EQ(r.level, ServedBy::kDram);
  EXPECT_EQ(r.latency, h.config().latency.dram);
  EXPECT_TRUE(r.l1_miss);
  EXPECT_FALSE(r.invalidation);
}

TEST(HierarchyTest, SecondAccessHitsL1) {
  CacheHierarchy h(SmallConfig());
  h.Access(0, 0x1000, 8, false, 1);
  const AccessResult r = h.Access(0, 0x1000, 8, false, 2);
  EXPECT_EQ(r.level, ServedBy::kL1);
  EXPECT_FALSE(r.l1_miss);
}

TEST(HierarchyTest, RemoteDirtyLineIsForeignFetch) {
  CacheHierarchy h(SmallConfig());
  h.Access(0, 0x2000, 8, true, 1);  // core 0 writes (modified)
  const AccessResult r = h.Access(1, 0x2000, 8, false, 2);
  EXPECT_EQ(r.level, ServedBy::kForeignCache);
}

TEST(HierarchyTest, WriteInvalidatesRemoteCopies) {
  CacheHierarchy h(SmallConfig());
  h.Access(0, 0x3000, 8, false, 1);  // core 0 caches the line
  h.Access(1, 0x3000, 8, true, 2);   // core 1 writes: invalidate core 0
  EXPECT_FALSE(h.InPrivateCache(0, 0x3000));
  // Core 0's next access is an invalidation miss (ground truth flag).
  const AccessResult r = h.Access(0, 0x3000, 8, false, 3);
  EXPECT_TRUE(r.invalidation);
  EXPECT_EQ(r.level, ServedBy::kForeignCache);  // dirty at core 1
}

TEST(HierarchyTest, EvictionIsNotAnInvalidationMiss) {
  HierarchyConfig config = SmallConfig();
  CacheHierarchy h(config);
  // Thrash set 0 of core 0's L1/L2 until 0x0 is evicted naturally.
  h.Access(0, 0x0, 8, false, 1);
  const uint64_t span = config.l2.NumSets() * config.l2.line_size;
  for (int i = 1; i <= 16; ++i) {
    h.Access(0, static_cast<Addr>(i) * span, 8, false, 1 + i);
  }
  const AccessResult r = h.Access(0, 0x0, 8, false, 100);
  EXPECT_TRUE(r.l1_miss);
  EXPECT_FALSE(r.invalidation);
}

TEST(HierarchyTest, SharedReadersDoNotInvalidateEachOther) {
  CacheHierarchy h(SmallConfig());
  h.Access(0, 0x4000, 8, false, 1);
  h.Access(1, 0x4000, 8, false, 2);
  EXPECT_TRUE(h.InPrivateCache(0, 0x4000));
  EXPECT_TRUE(h.InPrivateCache(1, 0x4000));
  const AccessResult r0 = h.Access(0, 0x4000, 8, false, 3);
  EXPECT_EQ(r0.level, ServedBy::kL1);
}

TEST(HierarchyTest, DirtyWritebackServesLaterReadFromL3) {
  CacheHierarchy h(SmallConfig());
  h.Access(0, 0x5000, 8, true, 1);   // dirty at core 0
  h.Access(1, 0x5000, 8, false, 2);  // foreign fetch + writeback to L3
  // A third core now finds it in L3 (both private copies are clean).
  const AccessResult r = h.Access(2, 0x5000, 8, false, 3);
  EXPECT_EQ(r.level, ServedBy::kL3);
}

TEST(HierarchyTest, MultiLineAccessAggregates) {
  CacheHierarchy h(SmallConfig());
  const AccessResult r = h.Access(0, 0x6000, 256, false, 1);  // 4 lines
  EXPECT_EQ(r.lines, 4u);
  EXPECT_EQ(r.latency, 4 * h.config().latency.dram);
  EXPECT_EQ(r.level, ServedBy::kDram);
}

TEST(HierarchyTest, UnalignedAccessSpansExtraLine) {
  CacheHierarchy h(SmallConfig());
  const AccessResult r = h.Access(0, 0x6000 + 60, 8, false, 1);  // straddles
  EXPECT_EQ(r.lines, 2u);
}

TEST(HierarchyTest, ProbeLevelMatchesAccessOutcome) {
  CacheHierarchy h(SmallConfig());
  EXPECT_EQ(h.ProbeLevel(0, 0x7000), ServedBy::kDram);
  h.Access(0, 0x7000, 8, false, 1);
  EXPECT_EQ(h.ProbeLevel(0, 0x7000), ServedBy::kL1);
  h.Access(1, 0x7000, 8, true, 2);
  EXPECT_EQ(h.ProbeLevel(0, 0x7000), ServedBy::kForeignCache);
}

TEST(HierarchyTest, CoreStatsAccumulate) {
  CacheHierarchy h(SmallConfig());
  h.Access(0, 0x8000, 8, false, 1);
  h.Access(0, 0x8000, 8, false, 2);
  const CoreMemStats& stats = h.core_stats(0);
  EXPECT_EQ(stats.accesses, 2u);
  EXPECT_EQ(stats.l1_hits, 1u);
  EXPECT_EQ(stats.l1_misses, 1u);
  EXPECT_EQ(stats.served[static_cast<int>(ServedBy::kDram)], 1u);
  EXPECT_EQ(stats.served[static_cast<int>(ServedBy::kL1)], 1u);
}

TEST(HierarchyTest, FlushAllEmptiesEverything) {
  CacheHierarchy h(SmallConfig());
  h.Access(0, 0x9000, 8, true, 1);
  h.FlushAll();
  EXPECT_FALSE(h.InPrivateCache(0, 0x9000));
  const AccessResult r = h.Access(0, 0x9000, 8, false, 2);
  EXPECT_EQ(r.level, ServedBy::kDram);
}

TEST(HierarchyTest, LatencyModelOrdering) {
  LatencyModel lat;
  EXPECT_LT(lat.Of(ServedBy::kL1), lat.Of(ServedBy::kL2));
  EXPECT_LT(lat.Of(ServedBy::kL2), lat.Of(ServedBy::kL3));
  EXPECT_LT(lat.Of(ServedBy::kL3), lat.Of(ServedBy::kForeignCache));
  EXPECT_LE(lat.Of(ServedBy::kForeignCache), lat.Of(ServedBy::kDram));
}

TEST(HierarchyTest, ServedByNames) {
  EXPECT_STREQ(ServedByName(ServedBy::kL1), "local L1");
  EXPECT_STREQ(ServedByName(ServedBy::kForeignCache), "foreign cache");
  EXPECT_STREQ(ServedByName(ServedBy::kDram), "DRAM");
}

// Parameterized coherence property: whichever core wrote last, a read from
// any *other* core must not be served from that other core's own L1, and
// after the read both copies are coherent (subsequent reads hit locally).
class CoherencePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CoherencePropertyTest, ReadAfterRemoteWrite) {
  const int writer = GetParam();
  CacheHierarchy h(SmallConfig(4));
  const Addr addr = 0xA000;
  h.Access(writer, addr, 8, true, 1);
  for (int reader = 0; reader < 4; ++reader) {
    if (reader == writer) {
      continue;
    }
    const AccessResult first = h.Access(reader, addr, 8, false, 2);
    EXPECT_NE(first.level, ServedBy::kL1) << "reader " << reader;
    const AccessResult second = h.Access(reader, addr, 8, false, 3);
    EXPECT_EQ(second.level, ServedBy::kL1) << "reader " << reader;
  }
}

INSTANTIATE_TEST_SUITE_P(Writers, CoherencePropertyTest, ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace dprof
