// Tests for the robustness layer: the deterministic FaultPlan, the lattice
// invariant auditor, the watchdog, and the graceful-degradation paths. The
// load-bearing properties: every fault decision is a pure function of the
// plan seed and simulated coordinates (so faulted runs are byte-identical
// across host thread counts), the auditor catches every corruption kind the
// hierarchy can inject, and healthy audited runs change nothing.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/cli/scenario_registry.h"
#include "src/machine/engine.h"
#include "src/machine/faults.h"
#include "src/sim/audit.h"
#include "src/workload/memcached.h"

namespace dprof {
namespace {

RunSpec SmallSpec(const std::string& seams) {
  RunSpec spec;
  spec.cores = 4;
  spec.seed = 1;
  spec.collect_cycles = 1'500'000;
  spec.collect_histories = false;
  spec.build_view_json = true;
  spec.fault_seams = seams;
  return spec;
}

std::string RunJson(const RunSpec& spec, const std::string& scenario = "memcached") {
  return ScenarioReportToJson(RunScenario(ScenarioRegistry::Default(), scenario, spec));
}

TEST(FaultPlanTest, SeamListParsing) {
  uint32_t mask = 0;
  std::string error;
  ASSERT_TRUE(ParseFaultSeamList("slab_grow,lane_drop", &mask, &error));
  EXPECT_EQ(mask, (1u << static_cast<int>(FaultSeam::kSlabGrow)) |
                      (1u << static_cast<int>(FaultSeam::kLaneDrop)));
  ASSERT_TRUE(ParseFaultSeamList("all", &mask, &error));
  EXPECT_EQ(mask, (1u << kNumFaultSeams) - 1);
  EXPECT_FALSE(ParseFaultSeamList("bogus_seam", &mask, &error));
  EXPECT_NE(error.find("bogus_seam"), std::string::npos);
  EXPECT_FALSE(ParseFaultSeamList("", &mask, &error));
}

TEST(FaultPlanTest, DecisionsArePureFunctionsOfSeedAndCoordinates) {
  FaultPlanConfig config;
  config.enabled_mask = ~0u;
  FaultPlan a(config);
  FaultPlan b(config);
  for (int core = 0; core < 8; ++core) {
    for (uint64_t i = 0; i < 200; ++i) {
      EXPECT_EQ(a.SlabGrowFails(core, i), b.SlabGrowFails(core, i));
      EXPECT_EQ(a.LaneFaultFor(core, i * 37, 0x1000 + i * 64),
                b.LaneFaultFor(core, i * 37, 0x1000 + i * 64));
      EXPECT_EQ(a.ClockSkew(core, i), b.ClockSkew(core, i));
    }
  }
  FaultPlanConfig other = config;
  other.seed = config.seed + 1;
  FaultPlan c(other);
  int differs = 0;
  for (uint64_t i = 0; i < 500; ++i) {
    differs += a.ClockSkew(0, i) != c.ClockSkew(0, i) ? 1 : 0;
  }
  EXPECT_GT(differs, 0);
}

TEST(FaultPlanTest, SeamDecisionsRespectEnabledMask) {
  FaultPlan off(FaultPlanConfig{});
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(off.SlabGrowFails(0, i));
    EXPECT_EQ(off.LaneFaultFor(0, i, 0x40 * i), LaneFault::kNone);
    EXPECT_EQ(off.ClockSkew(0, i), 0u);
    EXPECT_FALSE(off.StallsEpoch(i));
    EXPECT_EQ(off.CorruptionAtAudit(i), -1);
  }
  EXPECT_EQ(off.MailboxCap(), ~0u);
}

// The acceptance bar for the whole fault layer: a faulted run's report is a
// deterministic function of (scenario, spec), never of host threading.
TEST(FaultPlanTest, FaultedRunsAreByteIdenticalAcrossThreads) {
  for (const char* seams :
       {"slab_grow", "lane_drop,lane_dup", "clock_skew", "mailbox_overflow"}) {
    RunSpec spec = SmallSpec(seams);
    spec.record_elision = false;
    spec.threads = 1;
    const std::string one = RunJson(spec);
    spec.threads = 3;
    const std::string three = RunJson(spec);
    EXPECT_EQ(one, three) << "seams=" << seams;
    // The seam must actually have fired, or the determinism check is vacuous.
    EXPECT_NE(one.find("\"faults\""), std::string::npos) << seams;
  }
}

// Healthy runs with auditing on are the same bytes as runs without: auditing
// only reads, and its schedule rides the deterministic epoch ordinals.
TEST(AuditTest, HealthyAuditedRunIsByteIdentical) {
  RunSpec spec = SmallSpec("");
  const std::string plain = RunJson(spec);
  spec.audit_epochs = 8;
  const std::string audited = RunJson(spec);
  EXPECT_EQ(plain, audited);
  EXPECT_EQ(plain.find("\"error\""), std::string::npos);
}

// Build a small live rig, run it long enough to populate the lattice, then
// corrupt it one kind at a time: the auditor must flag every kind.
TEST(AuditTest, AuditorDetectsEveryCorruptionKind) {
  for (int kind = 0; kind < CacheHierarchy::kNumLatticeFaultKinds; ++kind) {
    RunSpec spec = SmallSpec("");
    if (kind == 6) {
      // Wrong-home corruption only exists on a multi-socket topology.
      spec.topology = "paper-amd";
    }
    auto rig = MakeBaseRig(spec);
    rig->workload = std::make_unique<MemcachedWorkload>(rig->env.get(), MemcachedConfig{});
    rig->workload->Install(*rig->machine);
    Engine engine(rig->machine.get(), EngineConfig{});
    rig->machine->SetExecutor(&engine);
    rig->machine->RunFor(400'000);

    InvariantAuditor auditor(&rig->machine->hierarchy());
    const AuditResult clean = auditor.Audit();
    EXPECT_TRUE(clean.ok()) << "kind " << kind << " pre-corruption: "
                            << (clean.violations.empty() ? "" : clean.violations[0]);
    ASSERT_TRUE(rig->machine->hierarchy().InjectLatticeFault(kind))
        << "kind " << kind << " found nothing to corrupt";
    const AuditResult corrupted = auditor.Audit();
    EXPECT_FALSE(corrupted.ok()) << "kind " << kind << " went undetected";
    rig->machine->SetExecutor(nullptr);
  }
}

// End to end: the lattice_corrupt seam corrupts between audits, and the run
// ends in a structured data_loss diagnostic instead of a crash.
TEST(AuditTest, InjectedCorruptionEndsRunInDataLossDiagnostic) {
  RunSpec spec = SmallSpec("lattice_corrupt");
  spec.audit_epochs = 16;
  const ScenarioReport report =
      RunScenario(ScenarioRegistry::Default(), "memcached", spec);
  EXPECT_FALSE(report.status.ok());
  EXPECT_EQ(report.status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(report.status.seam(), "audit");
  EXPECT_GE(report.audits_run, 1u);
}

TEST(WatchdogTest, StallBecomesDeadlineDiagnostic) {
  RunSpec spec = SmallSpec("epoch_stall");
  spec.watchdog_stall_epochs = 32;
  const ScenarioReport report =
      RunScenario(ScenarioRegistry::Default(), "memcached", spec);
  EXPECT_FALSE(report.status.ok());
  EXPECT_EQ(report.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(report.status.seam(), "watchdog");
  // The diagnostic document renders the error block.
  const std::string json = ScenarioReportToJson(report);
  EXPECT_NE(json.find("\"error\""), std::string::npos);
  EXPECT_NE(json.find("deadline_exceeded"), std::string::npos);
}

TEST(FaultPlanTest, SlabGrowFaultsRecoverAndRunStaysHealthy) {
  RunSpec spec = SmallSpec("slab_grow");
  spec.audit_epochs = 16;
  const ScenarioReport report =
      RunScenario(ScenarioRegistry::Default(), "memcached", spec);
  EXPECT_TRUE(report.status.ok()) << report.status.ToString();
  ASSERT_EQ(report.fault_seams.size(), 1u);
  EXPECT_GT(report.fault_seams[0].injected, 0u);
  EXPECT_EQ(report.fault_seams[0].injected, report.fault_seams[0].recovered);
}

TEST(FaultPlanTest, MailboxOverflowDropsAreCountedNotFatal) {
  RunSpec spec = SmallSpec("mailbox_overflow");
  // Queue depth only reaches the injected cap with enough producer cores
  // spreading packets over the hashed-queue bug path; 4 cores drain too
  // fast to ever exceed it.
  spec.cores = 8;
  spec.collect_cycles = 3'000'000;
  spec.audit_epochs = 16;
  const ScenarioReport report =
      RunScenario(ScenarioRegistry::Default(), "memcached", spec);
  EXPECT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_GT(report.mailbox_dropped, 0u);
  ASSERT_EQ(report.fault_seams.size(), 1u);
  EXPECT_EQ(report.fault_seams[0].injected, report.mailbox_dropped);
}

// Ext-bank pressure shrinks the directory extension bank to one way: the
// hierarchy must absorb it with reclaims/back-invalidations (not corruption:
// the periodic audit stays clean) across elision modes and thread counts.
TEST(FaultPlanTest, ExtBankPressureStormsStayAuditClean) {
  for (const bool elision : {true, false}) {
    for (const int threads : {1, 2}) {
      RunSpec spec = SmallSpec("ext_pressure");
      spec.audit_epochs = 16;
      spec.record_elision = elision;
      spec.threads = threads;
      const ScenarioReport report =
          RunScenario(ScenarioRegistry::Default(), "memcached", spec);
      EXPECT_TRUE(report.status.ok())
          << "elision=" << elision << " threads=" << threads << ": "
          << report.status.ToString();
      EXPECT_GT(report.hierarchy.tag_reclaims, 0u);
    }
  }
}

// The sampled-mode honesty self-check: injected schedule jitter starves the
// detailed windows; the controller must degrade (widen, then exact fallback)
// rather than report dishonest intervals — and say so in the report.
TEST(DegradeTest, WindowJitterTriggersHonestyDegradation) {
  RunSpec spec = SmallSpec("window_jitter");
  spec.sampled = true;
  spec.sampling_period = 150'000;
  spec.sampling_window = 8'000;
  const ScenarioReport report =
      RunScenario(ScenarioRegistry::Default(), "memcached", spec);
  EXPECT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_TRUE(report.degraded);
  EXPECT_GT(report.sampling_violations, 0u);
  const std::string json = ScenarioReportToJson(report);
  EXPECT_NE(json.find("\"degraded\""), std::string::npos);
}

TEST(ValidateRunSpecTest, CoversTheRealCoreLimit) {
  RunSpec spec;
  // Passes the old CLI's [1, 4096] check, aborted the rig before validation
  // moved to the real engine limit.
  spec.cores = Engine::kMaxCores + 1;
  const std::string error = ValidateRunSpec(spec);
  EXPECT_NE(error.find("--cores"), std::string::npos);
  EXPECT_NE(error.find(std::to_string(Engine::kMaxCores)), std::string::npos);
  spec.cores = Engine::kMaxCores;
  EXPECT_EQ(ValidateRunSpec(spec), "");
}

TEST(ValidateRunSpecTest, RejectsInconsistentAndMalformedFields) {
  RunSpec spec;
  spec.sampling_period = 1000;  // sampling flags without --sampled
  EXPECT_NE(ValidateRunSpec(spec).find("--sampled"), std::string::npos);
  spec = RunSpec{};
  spec.sampled = true;
  spec.sampling_period = 1000;
  spec.sampling_window = 2000;
  EXPECT_NE(ValidateRunSpec(spec).find("--window"), std::string::npos);
  spec = RunSpec{};
  spec.fault_seams = "no_such_seam";
  EXPECT_NE(ValidateRunSpec(spec).find("no_such_seam"), std::string::npos);
  spec = RunSpec{};
  spec.threads = 4096;
  EXPECT_NE(ValidateRunSpec(spec).find("--threads"), std::string::npos);
  EXPECT_EQ(ValidateRunSpec(RunSpec{}), "");
}

}  // namespace
}  // namespace dprof
