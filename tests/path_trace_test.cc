#include <gtest/gtest.h>

#include "src/dprof/path_trace.h"

namespace dprof {
namespace {

HistoryElement Elem(uint32_t offset, FunctionId ip, uint16_t cpu, uint64_t time,
                    bool write = false) {
  HistoryElement e;
  e.offset = offset;
  e.ip = ip;
  e.cpu = cpu;
  e.is_write = write;
  e.time = time;
  return e;
}

ObjectHistory History(TypeId type, uint32_t sweep, std::vector<HistoryElement> elems,
                      uint64_t end_time = 0) {
  ObjectHistory h;
  h.type = type;
  h.sweep = sweep;
  h.complete = true;
  h.elements = std::move(elems);
  h.end_time = end_time != 0 ? end_time
                             : (h.elements.empty() ? 0 : h.elements.back().time + 10);
  if (!h.elements.empty()) {
    h.watch_offsets[0] = h.elements[0].offset;
  }
  return h;
}

TEST(PathTraceTest, SingleHistoryBecomesOnePath) {
  AccessSampleTable samples;
  std::vector<ObjectHistory> histories;
  histories.push_back(History(1, 0, {Elem(0, 10, 0, 5, true), Elem(0, 11, 0, 9)}));
  const auto traces = PathTraceBuilder::Build(1, histories, samples);
  ASSERT_EQ(traces.size(), 1u);
  ASSERT_EQ(traces[0].steps.size(), 2u);
  EXPECT_EQ(traces[0].steps[0].ip, 10u);
  EXPECT_TRUE(traces[0].steps[0].has_write);
  EXPECT_EQ(traces[0].steps[1].ip, 11u);
  EXPECT_EQ(traces[0].frequency, 1u);
}

TEST(PathTraceTest, SameSignatureAggregatesFrequencyAndOffsets) {
  AccessSampleTable samples;
  std::vector<ObjectHistory> histories;
  histories.push_back(History(1, 0, {Elem(0, 10, 0, 5), Elem(0, 11, 0, 9)}));
  histories.push_back(History(1, 0, {Elem(64, 10, 3, 6), Elem(64, 11, 3, 11)}));
  const auto traces = PathTraceBuilder::Build(1, histories, samples);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].frequency, 2u);
  EXPECT_EQ(traces[0].steps[0].offset_lo, 0u);
  EXPECT_EQ(traces[0].steps[0].offset_hi, 64u);
}

TEST(PathTraceTest, CpuChangeCreatesDistinctPath) {
  AccessSampleTable samples;
  std::vector<ObjectHistory> histories;
  // Same ip sequence, but one history migrates cores mid-way.
  histories.push_back(History(1, 0, {Elem(0, 10, 0, 5), Elem(0, 11, 0, 9)}));
  histories.push_back(History(1, 1, {Elem(0, 10, 2, 5), Elem(0, 11, 6, 9)}));
  const auto traces = PathTraceBuilder::Build(1, histories, samples);
  ASSERT_EQ(traces.size(), 2u);
  int bouncing = 0;
  for (const PathTrace& t : traces) {
    if (t.Bounces()) {
      ++bouncing;
      EXPECT_TRUE(t.steps[1].cpu_change);
    }
  }
  EXPECT_EQ(bouncing, 1);
}

TEST(PathTraceTest, AbsoluteCoreIdsAreNormalized) {
  AccessSampleTable samples;
  std::vector<ObjectHistory> histories;
  // Both histories migrate once, but between different absolute cores.
  histories.push_back(History(1, 0, {Elem(0, 10, 0, 5), Elem(0, 11, 1, 9)}));
  histories.push_back(History(1, 1, {Elem(0, 10, 7, 5), Elem(0, 11, 3, 9)}));
  const auto traces = PathTraceBuilder::Build(1, histories, samples);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].frequency, 2u);
  EXPECT_TRUE(traces[0].Bounces());
}

TEST(PathTraceTest, ConsecutiveSameIpCollapses) {
  AccessSampleTable samples;
  std::vector<ObjectHistory> histories;
  histories.push_back(History(
      1, 0, {Elem(0, 10, 0, 1), Elem(4, 10, 0, 2), Elem(8, 10, 0, 3), Elem(0, 11, 0, 4)}));
  const auto traces = PathTraceBuilder::Build(1, histories, samples);
  ASSERT_EQ(traces.size(), 1u);
  ASSERT_EQ(traces[0].steps.size(), 2u);
  EXPECT_EQ(traces[0].steps[0].accesses, 3u);
  EXPECT_EQ(traces[0].steps[0].offset_lo, 0u);
  EXPECT_EQ(traces[0].steps[0].offset_hi, 8u);
}

TEST(PathTraceTest, FoldLookbackToleratesInterleaving) {
  AccessSampleTable samples;
  std::vector<ObjectHistory> histories;
  // a b a b pattern folds into two steps via the lookback window.
  histories.push_back(History(
      1, 0, {Elem(0, 10, 0, 1), Elem(0, 11, 0, 2), Elem(4, 10, 0, 3), Elem(4, 11, 0, 4)}));
  const auto traces = PathTraceBuilder::Build(1, histories, samples);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].steps.size(), 2u);
}

TEST(PathTraceTest, NeverFoldsAcrossCpuChange) {
  AccessSampleTable samples;
  std::vector<ObjectHistory> histories;
  histories.push_back(
      History(1, 0, {Elem(0, 10, 0, 1), Elem(0, 10, 2, 5), Elem(0, 10, 2, 6)}));
  const auto traces = PathTraceBuilder::Build(1, histories, samples);
  ASSERT_EQ(traces.size(), 1u);
  ASSERT_EQ(traces[0].steps.size(), 2u);
  EXPECT_TRUE(traces[0].steps[1].cpu_change);
  EXPECT_EQ(traces[0].steps[1].accesses, 2u);
}

TEST(PathTraceTest, CombineSweepsMergesOffsets) {
  AccessSampleTable samples;
  std::vector<ObjectHistory> histories;
  // Two single-offset histories of the same sweep and shape combine into a
  // whole-object path when combine_sweeps is set. Both end-align at their
  // object's free time.
  histories.push_back(History(1, 0, {Elem(0, 10, 0, 1), Elem(0, 12, 0, 30)}, 40));
  histories.push_back(History(1, 0, {Elem(4, 11, 0, 5)}, 20));
  PathTraceOptions options;
  options.combine_sweeps = true;
  const auto traces = PathTraceBuilder::Build(1, histories, samples, options);
  ASSERT_EQ(traces.size(), 1u);
  ASSERT_EQ(traces[0].steps.size(), 3u);
  EXPECT_EQ(traces[0].steps[0].ip, 10u);
  EXPECT_EQ(traces[0].steps[1].ip, 11u);
  EXPECT_EQ(traces[0].steps[2].ip, 12u);
}

TEST(PathTraceTest, AugmentsStepsWithSampleStats) {
  AccessSampleTable samples;
  IbsSample s;
  s.core = 0;
  s.ip = 10;
  s.vaddr = 0x100;
  s.level = ServedBy::kForeignCache;
  s.latency = 200;
  ResolveResult r;
  r.valid = true;
  r.type = 1;
  r.base = 0x100;
  r.offset = 0;
  samples.Record(s, r);

  std::vector<ObjectHistory> histories;
  histories.push_back(History(1, 0, {Elem(0, 10, 0, 1)}));
  const auto traces = PathTraceBuilder::Build(1, histories, samples);
  ASSERT_EQ(traces.size(), 1u);
  const PathStep& step = traces[0].steps[0];
  EXPECT_TRUE(step.has_sample_stats);
  EXPECT_DOUBLE_EQ(step.level_prob[static_cast<int>(ServedBy::kForeignCache)], 1.0);
  EXPECT_DOUBLE_EQ(step.avg_latency, 200.0);
}

TEST(PathTraceTest, IgnoresOtherTypes) {
  AccessSampleTable samples;
  std::vector<ObjectHistory> histories;
  histories.push_back(History(2, 0, {Elem(0, 10, 0, 1)}));
  EXPECT_TRUE(PathTraceBuilder::Build(1, histories, samples).empty());
}

TEST(PathTraceTest, SortedByFrequency) {
  AccessSampleTable samples;
  std::vector<ObjectHistory> histories;
  for (uint32_t i = 0; i < 3; ++i) {
    histories.push_back(History(1, i, {Elem(0, 10, 0, 1)}));
  }
  histories.push_back(History(1, 3, {Elem(0, 99, 0, 1)}));
  const auto traces = PathTraceBuilder::Build(1, histories, samples);
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].frequency, 3u);
  EXPECT_EQ(traces[1].frequency, 1u);
}

TEST(PathTraceTest, HasInvalidationPattern) {
  PathTrace trace;
  PathStep write_step;
  write_step.ip = 1;
  write_step.has_write = true;
  write_step.offset_lo = 0;
  write_step.offset_hi = 16;
  PathStep remote_read;
  remote_read.ip = 2;
  remote_read.cpu_change = true;
  remote_read.offset_lo = 8;
  remote_read.offset_hi = 8;
  trace.steps = {write_step, remote_read};
  EXPECT_TRUE(trace.HasInvalidationPattern());

  // Different cache line: no invalidation pattern.
  trace.steps[1].offset_lo = 128;
  trace.steps[1].offset_hi = 128;
  EXPECT_FALSE(trace.HasInvalidationPattern());

  // Same line but no CPU change anywhere: not an invalidation.
  trace.steps[1].offset_lo = 8;
  trace.steps[1].offset_hi = 8;
  trace.steps[1].cpu_change = false;
  EXPECT_FALSE(trace.HasInvalidationPattern());
}

TEST(PathTraceTest, CountUniqueSignatures) {
  std::vector<ObjectHistory> histories;
  histories.push_back(History(1, 0, {Elem(0, 10, 0, 1), Elem(0, 11, 0, 2)}));
  histories.push_back(History(1, 1, {Elem(0, 10, 0, 1), Elem(0, 11, 0, 2)}));  // dup
  histories.push_back(History(1, 2, {Elem(0, 10, 0, 1), Elem(0, 12, 0, 2)}));  // new ips
  histories.push_back(History(1, 3, {Elem(0, 10, 0, 1), Elem(0, 11, 4, 2)}));  // cpu change
  histories.push_back(History(1, 4, {Elem(4, 10, 0, 1), Elem(4, 11, 0, 2)}));  // new offset
  EXPECT_EQ(PathTraceBuilder::CountUniqueSignatures(histories), 4u);
}

TEST(PathTraceTest, TableRendersStepsAndFrequency) {
  SymbolTable sym;
  const FunctionId fn = sym.Intern("tcp_write");
  PathTrace trace;
  PathStep step;
  step.ip = fn;
  step.offset_lo = 64;
  step.offset_hi = 128;
  step.cpu_change = true;
  trace.steps = {step};
  trace.frequency = 17;
  const std::string out = PathTraceBuilder::ToTable(trace, sym);
  EXPECT_NE(out.find("tcp_write()"), std::string::npos);
  EXPECT_NE(out.find("yes"), std::string::npos);
  EXPECT_NE(out.find("64-128"), std::string::npos);
  EXPECT_NE(out.find("frequency: 17"), std::string::npos);
}

TEST(PathTraceTest, JsonCarriesStepsAndFrequency) {
  SymbolTable sym;
  const FunctionId fn = sym.Intern("tcp_write");
  PathTrace trace;
  PathStep step;
  step.ip = fn;
  step.offset_lo = 64;
  step.offset_hi = 128;
  step.cpu_change = true;
  trace.type = 7;
  trace.steps = {step};
  trace.frequency = 17;
  const std::string json = PathTraceBuilder::ToJson(trace, sym);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"function\":\"tcp_write\""), std::string::npos);
  EXPECT_NE(json.find("\"cpu_change\":true"), std::string::npos);
  EXPECT_NE(json.find("\"offset_lo\":64"), std::string::npos);
  EXPECT_NE(json.find("\"frequency\":17"), std::string::npos);
}

}  // namespace
}  // namespace dprof
