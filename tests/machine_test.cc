#include <gtest/gtest.h>

#include <vector>

#include "src/machine/machine.h"

namespace dprof {
namespace {

MachineConfig SmallMachine(int cores = 2) {
  MachineConfig config;
  config.hierarchy.num_cores = cores;
  config.hierarchy.l1 = CacheGeometry{1024, 64, 2};
  config.hierarchy.l2 = CacheGeometry{4096, 64, 4};
  config.hierarchy.l3 = CacheGeometry{16384, 64, 8};
  return config;
}

class CountingDriver : public CoreDriver {
 public:
  explicit CountingDriver(uint64_t work_cycles = 100) : work_cycles_(work_cycles) {}
  bool Step(CoreContext& ctx) override {
    ++steps;
    ctx.Compute(0, work_cycles_);
    return true;
  }
  uint64_t steps = 0;

 private:
  uint64_t work_cycles_;
};

class IdleDriver : public CoreDriver {
 public:
  bool Step(CoreContext&) override {
    ++steps;
    return false;
  }
  uint64_t steps = 0;
};

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable sym;
  const FunctionId a = sym.Intern("foo");
  const FunctionId b = sym.Intern("foo");
  const FunctionId c = sym.Intern("bar");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(sym.Name(a), "foo");
  EXPECT_EQ(sym.Name(c), "bar");
  EXPECT_EQ(sym.Name(999), "?");
  EXPECT_EQ(sym.size(), 2u);
}

TEST(MachineTest, MinClockSchedulingBalancesCores) {
  Machine machine(SmallMachine(2));
  CountingDriver fast(100);
  CountingDriver slow(300);
  machine.SetDriver(0, &fast);
  machine.SetDriver(1, &slow);
  machine.RunFor(30000);
  // The fast driver should have stepped roughly 3x as often.
  EXPECT_NEAR(static_cast<double>(fast.steps) / static_cast<double>(slow.steps), 3.0, 0.3);
}

TEST(MachineTest, IdleDriverAdvancesByIdleCycles) {
  MachineConfig config = SmallMachine(1);
  config.idle_cycles = 500;
  Machine machine(config);
  IdleDriver idle;
  machine.SetDriver(0, &idle);
  machine.RunSteps(10);
  EXPECT_EQ(machine.CoreClock(0), 5000u);
  EXPECT_EQ(idle.steps, 10u);
}

TEST(MachineTest, NullDriverIdles) {
  Machine machine(SmallMachine(1));
  machine.RunSteps(3);
  EXPECT_EQ(machine.CoreClock(0), 3 * machine.config().idle_cycles);
}

TEST(MachineTest, ComputeAdvancesClock) {
  Machine machine(SmallMachine(1));
  CoreContext ctx = machine.Context(0);
  ctx.Compute(0, 1234);
  EXPECT_EQ(machine.CoreClock(0), 1234u);
}

TEST(MachineTest, AccessChargesBaseCostPlusLatency) {
  Machine machine(SmallMachine(1));
  CoreContext ctx = machine.Context(0);
  const AccessResult r = ctx.Read(0, 0x1000, 8);
  EXPECT_EQ(machine.CoreClock(0), machine.config().base_op_cost + r.latency);
}

TEST(MachineTest, LargeAccessSplitsIntoLineOps) {
  Machine machine(SmallMachine(1));
  struct Recorder : MachineObserver {
    void OnAccess(const AccessEvent& event) override { events.push_back(event); }
    void OnCompute(int, FunctionId, uint64_t, uint64_t) override {}
    std::vector<AccessEvent> events;
  } recorder;
  machine.AddObserver(&recorder);
  CoreContext ctx = machine.Context(0);
  ctx.Write(7, 0x2000 + 32, 128);  // unaligned 128B -> 32 + 64 + 32
  ASSERT_EQ(recorder.events.size(), 3u);
  EXPECT_EQ(recorder.events[0].size, 32u);
  EXPECT_EQ(recorder.events[1].size, 64u);
  EXPECT_EQ(recorder.events[2].size, 32u);
  for (const AccessEvent& e : recorder.events) {
    EXPECT_EQ(e.ip, 7u);
    EXPECT_TRUE(e.is_write);
    EXPECT_LE(e.size, 64u);
  }
}

TEST(MachineTest, ObserverSeesComputeAndAccess) {
  Machine machine(SmallMachine(1));
  struct Recorder : MachineObserver {
    void OnAccess(const AccessEvent&) override { ++accesses; }
    void OnCompute(int, FunctionId, uint64_t cycles, uint64_t) override { compute += cycles; }
    int accesses = 0;
    uint64_t compute = 0;
  } recorder;
  machine.AddObserver(&recorder);
  CoreContext ctx = machine.Context(0);
  ctx.Read(0, 0x100, 8);
  ctx.Compute(0, 50);
  EXPECT_EQ(recorder.accesses, 1);
  EXPECT_EQ(recorder.compute, 50u);
  machine.RemoveObserver(&recorder);
  ctx.Compute(0, 50);
  EXPECT_EQ(recorder.compute, 50u);
}

TEST(MachineTest, PmuHookChargesExtraCycles) {
  Machine machine(SmallMachine(1));
  struct Hook : PmuHook {
    uint64_t OnAccess(const AccessEvent&) override { return 777; }
  } hook;
  machine.AddPmuHook(&hook);
  CoreContext ctx = machine.Context(0);
  const AccessResult r = ctx.Read(0, 0x100, 8);
  EXPECT_EQ(machine.CoreClock(0), machine.config().base_op_cost + r.latency + 777);
  machine.RemovePmuHook(&hook);
  const uint64_t before = machine.CoreClock(0);
  const AccessResult r2 = ctx.Read(0, 0x100, 8);
  EXPECT_EQ(machine.CoreClock(0), before + machine.config().base_op_cost + r2.latency);
}

TEST(MachineTest, ChargeCyclesIsDirect) {
  Machine machine(SmallMachine(2));
  machine.ChargeCycles(1, 9999);
  EXPECT_EQ(machine.CoreClock(1), 9999u);
  EXPECT_EQ(machine.CoreClock(0), 0u);
  EXPECT_EQ(machine.MinClock(), 0u);
  EXPECT_EQ(machine.MaxClock(), 9999u);
}

TEST(MachineTest, CoreRngsAreIndependentButDeterministic) {
  Machine a(SmallMachine(2));
  Machine b(SmallMachine(2));
  EXPECT_EQ(a.CoreRng(0).Next(), b.CoreRng(0).Next());
  Machine c(SmallMachine(2));
  EXPECT_NE(c.CoreRng(0).Next(), c.CoreRng(1).Next());
}

TEST(SimLockTest, UncontendedAcquireHasNoWait) {
  Machine machine(SmallMachine(1));
  struct Observer : LockObserver {
    void OnAcquire(const SimLock&, int, FunctionId, uint64_t wait, uint64_t) override {
      last_wait = wait;
    }
    void OnRelease(const SimLock&, int, FunctionId, uint64_t hold, uint64_t) override {
      last_hold = hold;
    }
    uint64_t last_wait = 99;
    uint64_t last_hold = 0;
  } obs;
  machine.SetLockObserver(&obs);
  SimLock lock("test lock", 0x100);
  CoreContext ctx = machine.Context(0);
  ctx.LockAcquire(lock, 0);
  ctx.Compute(0, 300);
  ctx.LockRelease(lock, 0);
  EXPECT_EQ(obs.last_wait, 0u);
  EXPECT_GE(obs.last_hold, 300u);
}

TEST(SimLockTest, ContendedAcquireWaits) {
  Machine machine(SmallMachine(2));
  struct Observer : LockObserver {
    void OnAcquire(const SimLock&, int core, FunctionId, uint64_t wait, uint64_t) override {
      waits.push_back({core, wait});
    }
    void OnRelease(const SimLock&, int, FunctionId, uint64_t, uint64_t) override {}
    std::vector<std::pair<int, uint64_t>> waits;
  } obs;
  machine.SetLockObserver(&obs);
  SimLock lock("test lock", 0x100);

  CoreContext c0 = machine.Context(0);
  c0.LockAcquire(lock, 0);
  c0.Compute(0, 1000);
  c0.LockRelease(lock, 0);
  const uint64_t release_time = machine.CoreClock(0);

  // Core 1's clock is still 0; it must wait until core 0 released.
  CoreContext c1 = machine.Context(1);
  c1.LockAcquire(lock, 0);
  ASSERT_EQ(obs.waits.size(), 2u);
  EXPECT_EQ(obs.waits[1].first, 1);
  EXPECT_EQ(obs.waits[1].second, release_time);
  EXPECT_GE(machine.CoreClock(1), release_time);
  c1.LockRelease(lock, 0);
}

TEST(SimLockTest, LockWordGeneratesCoherenceTraffic) {
  Machine machine(SmallMachine(2));
  SimLock lock("test lock", 0x100);
  CoreContext c0 = machine.Context(0);
  CoreContext c1 = machine.Context(1);
  c0.LockAcquire(lock, 0);
  c0.LockRelease(lock, 0);
  // Core 1 taking the lock must pull the line from core 0.
  EXPECT_EQ(machine.hierarchy().ProbeLevel(1, 0x100), ServedBy::kForeignCache);
  c1.LockAcquire(lock, 0);
  c1.LockRelease(lock, 0);
  EXPECT_EQ(machine.hierarchy().ProbeLevel(1, 0x100), ServedBy::kL1);
}

TEST(MachineTest, RunForReachesDeadline) {
  Machine machine(SmallMachine(2));
  CountingDriver d0(100);
  CountingDriver d1(100);
  machine.SetDriver(0, &d0);
  machine.SetDriver(1, &d1);
  machine.RunFor(10000);
  EXPECT_GE(machine.MinClock(), 10000u);
}

}  // namespace
}  // namespace dprof
