#include <gtest/gtest.h>

#include "src/dprof/data_flow.h"

namespace dprof {
namespace {

PathStep Step(FunctionId ip, bool cpu_change = false, double latency = 0.0) {
  PathStep step;
  step.ip = ip;
  step.cpu_change = cpu_change;
  if (latency > 0) {
    step.avg_latency = latency;
    step.has_sample_stats = true;
  }
  return step;
}

PathTrace Trace(std::vector<PathStep> steps, uint64_t freq) {
  PathTrace t;
  t.type = 1;
  t.steps = std::move(steps);
  t.frequency = freq;
  return t;
}

struct DataFlowFixture : ::testing::Test {
  DataFlowFixture() {
    fn_a = sym.Intern("alloc_path");
    fn_b = sym.Intern("branch_b");
    fn_c = sym.Intern("branch_c");
    fn_d = sym.Intern("dequeue");
  }
  SymbolTable sym;
  FunctionId fn_a, fn_b, fn_c, fn_d;
};

TEST_F(DataFlowFixture, SinglePathChains) {
  const auto graph =
      DataFlowGraph::Build({Trace({Step(fn_a), Step(fn_b)}, 5)}, sym);
  // alloc + free sentinels + 2 steps.
  EXPECT_EQ(graph.nodes().size(), 4u);
  EXPECT_EQ(graph.edges().size(), 3u);
  EXPECT_EQ(graph.nodes()[0].visits, 5u);  // root
  EXPECT_EQ(graph.nodes()[1].visits, 5u);  // sink
}

TEST_F(DataFlowFixture, SharedPrefixMerges) {
  const auto graph = DataFlowGraph::Build(
      {Trace({Step(fn_a), Step(fn_b)}, 3), Trace({Step(fn_a), Step(fn_c)}, 2)}, sym);
  // Nodes: root, sink, a (shared), b, c.
  EXPECT_EQ(graph.nodes().size(), 5u);
  // The shared prefix node accumulated both frequencies.
  bool found = false;
  for (const auto& node : graph.nodes()) {
    if (node.label == "alloc_path()") {
      EXPECT_EQ(node.visits, 5u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(DataFlowFixture, CpuChangeEdgesAreMarked) {
  const auto graph =
      DataFlowGraph::Build({Trace({Step(fn_a), Step(fn_d, true)}, 7)}, sym);
  const auto transitions = graph.CpuTransitions();
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].frequency, 7u);
  EXPECT_EQ(graph.nodes()[transitions[0].to].label, "dequeue()");
}

TEST_F(DataFlowFixture, CpuTransitionsSortedByFrequency) {
  const auto graph = DataFlowGraph::Build(
      {Trace({Step(fn_a), Step(fn_d, true)}, 2), Trace({Step(fn_b), Step(fn_c, true)}, 9)},
      sym);
  const auto transitions = graph.CpuTransitions();
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0].frequency, 9u);
}

TEST_F(DataFlowFixture, SameIpWithAndWithoutCpuChangeAreDistinctNodes) {
  const auto graph = DataFlowGraph::Build(
      {Trace({Step(fn_a), Step(fn_d, false)}, 1), Trace({Step(fn_a), Step(fn_d, true)}, 1)},
      sym);
  // root, sink, a, d(no change), d(change).
  EXPECT_EQ(graph.nodes().size(), 5u);
}

TEST_F(DataFlowFixture, DarkNodesForHighLatency) {
  DataFlowOptions options;
  options.dark_latency_threshold = 60.0;
  const auto graph = DataFlowGraph::Build(
      {Trace({Step(fn_a, false, 150.0), Step(fn_b, false, 10.0)}, 1)}, sym, options);
  int dark = 0;
  for (const auto& node : graph.nodes()) {
    if (node.dark) {
      ++dark;
      EXPECT_EQ(node.label, "alloc_path()");
    }
  }
  EXPECT_EQ(dark, 1);
}

TEST_F(DataFlowFixture, DotOutputHasBoldCpuEdges) {
  const auto graph =
      DataFlowGraph::Build({Trace({Step(fn_a), Step(fn_d, true)}, 3)}, sym);
  const std::string dot = graph.ToDot("skbuff");
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("penwidth=3"), std::string::npos);
  EXPECT_NE(dot.find("dequeue()"), std::string::npos);
}

TEST_F(DataFlowFixture, AsciiOutputShowsTransitionsAndCounts) {
  const auto graph =
      DataFlowGraph::Build({Trace({Step(fn_a), Step(fn_d, true)}, 3)}, sym);
  const std::string ascii = graph.ToAscii();
  EXPECT_NE(ascii.find("==CPU=>"), std::string::npos);
  EXPECT_NE(ascii.find("alloc_path()"), std::string::npos);
  EXPECT_NE(ascii.find("[x3"), std::string::npos);
}

TEST_F(DataFlowFixture, SentinelLabelsConfigurable) {
  DataFlowOptions options;
  options.alloc_label = "my_alloc()";
  options.free_label = "my_free()";
  const auto graph = DataFlowGraph::Build({Trace({Step(fn_a)}, 1)}, sym, options);
  EXPECT_EQ(graph.nodes()[0].label, "my_alloc()");
  EXPECT_EQ(graph.nodes()[1].label, "my_free()");
}

TEST_F(DataFlowFixture, EmptyTraceListYieldsSentinelsOnly) {
  const auto graph = DataFlowGraph::Build({}, sym);
  EXPECT_EQ(graph.nodes().size(), 2u);
  EXPECT_TRUE(graph.edges().empty());
  EXPECT_TRUE(graph.CpuTransitions().empty());
}

TEST_F(DataFlowFixture, JsonCarriesNodesAndEdges) {
  const auto graph =
      DataFlowGraph::Build({Trace({Step(fn_a), Step(fn_d, true)}, 3)}, sym);
  const std::string json = graph.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"nodes\":["), std::string::npos);
  EXPECT_NE(json.find("\"edges\":["), std::string::npos);
  EXPECT_NE(json.find("alloc_path"), std::string::npos);
  EXPECT_NE(json.find("\"cpu_change\":true"), std::string::npos);
  EXPECT_NE(json.find("\"frequency\":3"), std::string::npos);
}

}  // namespace
}  // namespace dprof
