// Cross-module property tests: invariants that must hold across parameter
// sweeps of the whole simulated machine.

#include <gtest/gtest.h>

#include <memory>

#include "src/dprof/session.h"
#include "src/workload/kernel.h"
#include "src/workload/memcached.h"

namespace dprof {
namespace {

// ---- Hierarchy conservation: served-level counts sum to accesses. --------

class HierarchyConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(HierarchyConservationTest, ServedCountsSumToAccesses) {
  const int cores = GetParam();
  HierarchyConfig config;
  config.num_cores = cores;
  config.l1 = CacheGeometry{2048, 64, 2};
  config.l2 = CacheGeometry{8192, 64, 4};
  config.l3 = CacheGeometry{32768, 64, 8};
  CacheHierarchy h(config);
  Rng rng(cores);
  for (int i = 0; i < 20000; ++i) {
    const int core = static_cast<int>(rng.Below(static_cast<uint64_t>(cores)));
    const Addr addr = rng.Below(64 * 1024);
    h.Access(core, addr, 1 + static_cast<uint32_t>(rng.Below(16)), rng.Chance(0.3), i);
  }
  for (int c = 0; c < cores; ++c) {
    const CoreMemStats& stats = h.core_stats(c);
    uint64_t sum = 0;
    for (int level = 0; level < 5; ++level) {
      sum += stats.served[level];
    }
    EXPECT_EQ(sum, stats.accesses);
    EXPECT_EQ(stats.l1_hits + stats.l1_misses, stats.accesses);
    EXPECT_LE(stats.invalidation_misses, stats.l1_misses);
  }
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, HierarchyConservationTest, ::testing::Values(1, 2, 4, 8));

// ---- Coherence safety: at most one core holds a dirty copy. --------------

TEST(CoherenceSafetyTest, SingleWriterInvariant) {
  HierarchyConfig config;
  config.num_cores = 4;
  config.l1 = CacheGeometry{1024, 64, 2};
  config.l2 = CacheGeometry{4096, 64, 4};
  config.l3 = CacheGeometry{16384, 64, 8};
  CacheHierarchy h(config);
  Rng rng(99);
  const Addr kLines[4] = {0x1000, 0x2000, 0x3000, 0x4000};
  for (int i = 0; i < 5000; ++i) {
    const int core = static_cast<int>(rng.Below(4));
    const Addr addr = kLines[rng.Below(4)];
    h.Access(core, addr, 8, rng.Chance(0.5), i);
    // After a write, every other core's next read must not be an L1 hit on
    // stale data: probe says its level is not L1.
  }
  // Spot-check: core 0 writes, others must fetch.
  h.Access(0, kLines[0], 8, true, 10000);
  for (int c = 1; c < 4; ++c) {
    EXPECT_NE(h.ProbeLevel(c, kLines[0]), ServedBy::kL1);
  }
}

// ---- IBS statistics: sampling rate tracks the configured period. ---------

class IbsRateTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IbsRateTest, AchievedRateMatchesPeriod) {
  const uint64_t period = GetParam();
  IbsConfig config;
  config.period_ops = period;
  IbsUnit ibs(1, config);
  const uint64_t ops = 200000;
  for (uint64_t i = 0; i < ops; ++i) {
    AccessEvent event;
    event.core = 0;
    ibs.OnAccess(event);
  }
  const double expected = static_cast<double>(ops) / static_cast<double>(period);
  EXPECT_NEAR(static_cast<double>(ibs.samples_taken()), expected, expected * 0.15);
}

INSTANTIATE_TEST_SUITE_P(Periods, IbsRateTest, ::testing::Values(10, 50, 200, 1000));

// ---- Profile mass: data profile rows account for most resolved misses. ---

TEST(ProfileMassTest, MissSharesSumBelowHundred) {
  MachineConfig config;
  config.hierarchy.num_cores = 2;
  Machine machine(config);
  TypeRegistry registry;
  SlabAllocator allocator(&machine, &registry);
  machine.SetAllocator(&allocator);
  KernelEnv env(&machine, &allocator);
  MemcachedConfig mc;
  mc.rx_ring_entries = 16;
  MemcachedWorkload workload(&env, mc);
  workload.Install(machine);

  DProfOptions options;
  options.ibs_period_ops = 50;
  DProfSession session(&machine, &allocator, options);
  session.CollectAccessSamples(6'000'000);

  const DataProfile profile = session.BuildDataProfile();
  double total = 0.0;
  for (const DataProfileRow& row : profile.rows()) {
    EXPECT_GE(row.miss_pct, 0.0);
    total += row.miss_pct;
  }
  // Userspace samples are unresolved, so attributed shares stay <= 100%.
  EXPECT_LE(total, 100.0 + 1e-9);
  EXPECT_GT(total, 50.0);
}

// ---- History sweeps: histories per set match size/granularity exactly. ---

struct SweepCase {
  uint32_t object_size;
  uint32_t granularity;
  bool pair;
};

class HistorySweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(HistorySweepTest, HistoriesPerSetFormula) {
  const SweepCase& c = GetParam();
  MachineConfig config;
  config.hierarchy.num_cores = 1;
  Machine machine(config);
  TypeRegistry registry;
  SlabAllocator allocator(&machine, &registry);
  machine.SetAllocator(&allocator);
  DebugRegisterFile regs;
  const TypeId type = registry.Register("t", c.object_size);
  HistoryCollectorOptions options;
  options.granularity = c.granularity;
  options.pair_mode = c.pair;
  HistoryCollector collector(&machine, &regs, type, c.object_size, options);
  const uint32_t n = c.object_size / c.granularity;
  const uint32_t expected = c.pair ? n * (n - 1) / 2 : n;
  EXPECT_EQ(collector.histories_per_set(), expected);
}

INSTANTIATE_TEST_SUITE_P(Sweeps, HistorySweepTest,
                         ::testing::Values(SweepCase{256, 4, false},   // skbuff: 64
                                           SweepCase{256, 4, true},    // pairs: 2016
                                           SweepCase{1024, 4, false},  // size-1024: 256
                                           SweepCase{1600, 4, false},  // tcp_sock: 400
                                           SweepCase{64, 8, false},
                                           SweepCase{64, 8, true}));

// ---- Determinism: identical seeds give identical simulations. ------------

TEST(DeterminismTest, SameSeedSameResult) {
  auto run = [] {
    MachineConfig config;
    config.hierarchy.num_cores = 2;
    config.seed = 77;
    Machine machine(config);
    TypeRegistry registry;
    SlabAllocator allocator(&machine, &registry);
    machine.SetAllocator(&allocator);
    KernelEnv env(&machine, &allocator);
    MemcachedConfig mc;
    mc.rx_ring_entries = 16;
    MemcachedWorkload workload(&env, mc);
    workload.Install(machine);
    machine.RunFor(2'000'000);
    return std::make_pair(workload.CompletedRequests(), machine.MaxClock());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

// ---- Throughput monotonicity: IBS overhead grows with sampling rate. -----

TEST(OverheadMonotonicityTest, FasterSamplingCostsMore) {
  auto measure = [](uint64_t period) {
    MachineConfig config;
    config.hierarchy.num_cores = 2;
    Machine machine(config);
    TypeRegistry registry;
    SlabAllocator allocator(&machine, &registry);
    machine.SetAllocator(&allocator);
    KernelEnv env(&machine, &allocator);
    MemcachedConfig mc;
    mc.rx_ring_entries = 16;
    MemcachedWorkload workload(&env, mc);
    workload.Install(machine);
    DProfOptions options;
    options.ibs_period_ops = period;
    DProfSession session(&machine, &allocator, options);
    machine.RunFor(500'000);
    workload.ResetStats();
    const uint64_t start = machine.MaxClock();
    session.CollectAccessSamples(5'000'000);
    return ThroughputRps(workload.CompletedRequests(), machine.MaxClock() - start);
  };
  const double slow_sampling = measure(2000);
  const double fast_sampling = measure(30);
  EXPECT_LT(fast_sampling, slow_sampling);
}

}  // namespace
}  // namespace dprof
