#include <gtest/gtest.h>

#include "src/dprof/history.h"
#include "src/machine/machine.h"

namespace dprof {
namespace {

// A tiny driver that allocates an object, touches some offsets, frees it.
class TouchDriver : public CoreDriver {
 public:
  TouchDriver(TypeId type, FunctionId fn_alloc, FunctionId fn_touch) // NOLINT
      : type_(type), fn_alloc_(fn_alloc), fn_touch_(fn_touch) {}

  bool Step(CoreContext& ctx) override {
    const Addr obj = ctx.Alloc(type_, fn_alloc_);
    ctx.Write(fn_touch_, obj, 4);       // offset 0
    ctx.Read(fn_touch_, obj + 8, 4);    // offset 8
    ctx.Write(fn_touch_, obj + 12, 4);  // offset 12
    ctx.Compute(fn_touch_, 50);
    ctx.Free(obj, fn_alloc_);
    ++iterations;
    return true;
  }
  uint64_t iterations = 0;

 private:
  TypeId type_;
  FunctionId fn_alloc_;
  FunctionId fn_touch_;
};

struct HistoryFixture : ::testing::Test {
  HistoryFixture() : machine(MakeConfig()), allocator(&machine, &registry) {
    machine.SetAllocator(&allocator);
    type = registry.Register("obj16", 16);
    fn_alloc = machine.symbols().Intern("alloc_fn");
    fn_touch = machine.symbols().Intern("touch_fn");
    machine.AddPmuHook(&regs);
  }

  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.hierarchy.num_cores = 2;
    return config;
  }

  HistoryCollectorOptions Options(uint32_t sets, bool pair = false) {
    HistoryCollectorOptions options;
    options.max_sets = sets;
    options.pair_mode = pair;
    options.arm_skip_max = 0;       // deterministic arming for tests
    options.min_rearm_cycles = 0;   // no pacing in unit tests
    return options;
  }

  Machine machine;
  TypeRegistry registry;
  SlabAllocator allocator;
  DebugRegisterFile regs;
  TypeId type = kInvalidType;
  FunctionId fn_alloc = kInvalidFunction;
  FunctionId fn_touch = kInvalidFunction;
};

TEST_F(HistoryFixture, SingleModeSweepsAllOffsets) {
  HistoryCollector collector(&machine, &regs, type, 16, Options(2));
  EXPECT_EQ(collector.histories_per_set(), 4u);  // 16 bytes / 4-byte windows
  allocator.AddObserver(&collector);
  TouchDriver driver(type, fn_alloc, fn_touch);
  machine.SetDriver(0, &driver);
  while (!collector.done() && driver.iterations < 100) {
    machine.RunSteps(1);
  }
  collector.Stop();
  allocator.RemoveObserver(&collector);

  EXPECT_EQ(collector.sets_completed(), 2u);
  ASSERT_EQ(collector.histories().size(), 8u);  // 2 sets * 4 offsets
  // Offsets cycle 0,4,8,12, 0,4,8,12.
  EXPECT_EQ(collector.histories()[0].watch_offsets[0], 0u);
  EXPECT_EQ(collector.histories()[1].watch_offsets[0], 4u);
  EXPECT_EQ(collector.histories()[2].watch_offsets[0], 8u);
  EXPECT_EQ(collector.histories()[3].watch_offsets[0], 12u);
  EXPECT_EQ(collector.histories()[4].sweep, 1u);
}

TEST_F(HistoryFixture, ElementsRecordTouchedOffsetsOnly) {
  HistoryCollector collector(&machine, &regs, type, 16, Options(1));
  allocator.AddObserver(&collector);
  TouchDriver driver(type, fn_alloc, fn_touch);
  machine.SetDriver(0, &driver);
  while (!collector.done() && driver.iterations < 100) {
    machine.RunSteps(1);
  }
  collector.Stop();
  allocator.RemoveObserver(&collector);

  // Offset 0: one write. Offset 4: never touched. Offset 8: one read.
  const auto& histories = collector.histories();
  ASSERT_EQ(histories.size(), 4u);
  ASSERT_EQ(histories[0].elements.size(), 1u);
  EXPECT_TRUE(histories[0].elements[0].is_write);
  EXPECT_EQ(histories[0].elements[0].ip, fn_touch);
  EXPECT_TRUE(histories[1].elements.empty());
  ASSERT_EQ(histories[2].elements.size(), 1u);
  EXPECT_FALSE(histories[2].elements[0].is_write);
  ASSERT_EQ(histories[3].elements.size(), 1u);
  EXPECT_TRUE(histories[3].complete);
  // end_time anchors at the free.
  EXPECT_GT(histories[0].end_time, 0u);
  EXPECT_GE(histories[0].end_time, histories[0].elements.back().time);
}

TEST_F(HistoryFixture, PairModeCoversAllPairs) {
  HistoryCollector collector(&machine, &regs, type, 16, Options(1, true));
  EXPECT_EQ(collector.histories_per_set(), 6u);  // C(4,2)
  allocator.AddObserver(&collector);
  TouchDriver driver(type, fn_alloc, fn_touch);
  machine.SetDriver(0, &driver);
  while (!collector.done() && driver.iterations < 200) {
    machine.RunSteps(1);
  }
  collector.Stop();
  allocator.RemoveObserver(&collector);

  ASSERT_EQ(collector.histories().size(), 6u);
  // First pair is (0,4); a pair history watching (0,12) sees both touches
  // in true order.
  EXPECT_EQ(collector.histories()[0].watch_offsets[0], 0u);
  EXPECT_EQ(collector.histories()[0].watch_offsets[1], 4u);
  bool found_0_12 = false;
  for (const ObjectHistory& h : collector.histories()) {
    if (h.watch_offsets[0] == 0 && h.watch_offsets[1] == 12) {
      found_0_12 = true;
      ASSERT_EQ(h.elements.size(), 2u);
      EXPECT_EQ(h.elements[0].offset, 0u);
      EXPECT_EQ(h.elements[1].offset, 12u);
      EXPECT_LE(h.elements[0].time, h.elements[1].time);
    }
  }
  EXPECT_TRUE(found_0_12);
}

TEST_F(HistoryFixture, OverheadAccounting) {
  HistoryCollector collector(&machine, &regs, type, 16, Options(1));
  allocator.AddObserver(&collector);
  TouchDriver driver(type, fn_alloc, fn_touch);
  machine.SetDriver(0, &driver);
  while (!collector.done() && driver.iterations < 100) {
    machine.RunSteps(1);
  }
  collector.Stop();
  allocator.RemoveObserver(&collector);

  const HistoryOverhead& overhead = collector.overhead();
  EXPECT_EQ(overhead.objects_profiled, 4u);
  const DebugRegCostModel& costs = regs.costs();
  EXPECT_EQ(overhead.reserve_cycles, 4 * costs.reserve_cycles);
  // 2-core machine: initiator + 1 IPI per object.
  EXPECT_EQ(overhead.comm_cycles,
            4 * (costs.setup_initiator_cycles + costs.setup_ipi_cycles));
  EXPECT_EQ(overhead.interrupt_cycles, overhead.elements_recorded * costs.interrupt_cycles);
  EXPECT_EQ(overhead.elements_recorded, 3u);  // offsets 0, 8, 12 touched once each
}

TEST_F(HistoryFixture, MemberOffsetsRestrictSweep) {
  HistoryCollectorOptions options = Options(1);
  options.member_offsets = {0, 12};
  HistoryCollector collector(&machine, &regs, type, 16, options);
  EXPECT_EQ(collector.histories_per_set(), 2u);
  allocator.AddObserver(&collector);
  TouchDriver driver(type, fn_alloc, fn_touch);
  machine.SetDriver(0, &driver);
  while (!collector.done() && driver.iterations < 100) {
    machine.RunSteps(1);
  }
  collector.Stop();
  allocator.RemoveObserver(&collector);
  ASSERT_EQ(collector.histories().size(), 2u);
  EXPECT_EQ(collector.histories()[0].watch_offsets[0], 0u);
  EXPECT_EQ(collector.histories()[1].watch_offsets[0], 12u);
}

TEST_F(HistoryFixture, SetupChargesCores) {
  HistoryCollector collector(&machine, &regs, type, 16, Options(1));
  allocator.AddObserver(&collector);
  const uint64_t clock0_before = machine.CoreClock(0);
  const uint64_t clock1_before = machine.CoreClock(1);
  CoreContext ctx = machine.Context(0);
  const Addr obj = ctx.Alloc(type, fn_alloc);  // arming happens here
  collector.Stop();
  allocator.RemoveObserver(&collector);
  // Core 0 (initiator) pays reserve + initiator; core 1 pays the IPI.
  EXPECT_GE(machine.CoreClock(0) - clock0_before,
            regs.costs().reserve_cycles + regs.costs().setup_initiator_cycles);
  EXPECT_GE(machine.CoreClock(1) - clock1_before, regs.costs().setup_ipi_cycles);
  (void)obj;
}

TEST_F(HistoryFixture, StopAbandonsInFlightMonitoring) {
  HistoryCollector collector(&machine, &regs, type, 16, Options(1));
  allocator.AddObserver(&collector);
  CoreContext ctx = machine.Context(0);
  const Addr obj = ctx.Alloc(type, fn_alloc);
  ctx.Write(fn_touch, obj, 4);
  collector.Stop();
  allocator.RemoveObserver(&collector);
  ASSERT_EQ(collector.histories().size(), 1u);
  EXPECT_FALSE(collector.histories()[0].complete);
  EXPECT_EQ(collector.histories()[0].elements.size(), 1u);
  EXPECT_FALSE(regs.armed(0));
}

TEST_F(HistoryFixture, RecordsCpuOfAccessingCore) {
  HistoryCollector collector(&machine, &regs, type, 16, Options(1));
  allocator.AddObserver(&collector);
  CoreContext c0 = machine.Context(0);
  CoreContext c1 = machine.Context(1);
  const Addr obj = c0.Alloc(type, fn_alloc);
  c0.Write(fn_touch, obj, 4);
  c1.Read(fn_touch, obj, 4);
  c0.Free(obj, fn_alloc);
  collector.Stop();
  allocator.RemoveObserver(&collector);
  ASSERT_EQ(collector.histories().size(), 1u);
  const auto& elems = collector.histories()[0].elements;
  ASSERT_EQ(elems.size(), 2u);
  EXPECT_EQ(elems[0].cpu, 0u);
  EXPECT_EQ(elems[1].cpu, 1u);
}

}  // namespace
}  // namespace dprof
