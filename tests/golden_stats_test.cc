// Golden stats equivalence: the flattened tag lattice with its embedded
// directory (src/sim/hierarchy.h) against the recorded ground truth of the
// model it replaced (per-level Cache objects + the DirShard open-addressing
// hash directory, removed in this refactor).
//
// The expected values below were captured by running exactly this harness
// against the pre-refactor model. The simulation is fully deterministic
// (fixed seeds, engine at one thread, fixed epoch lengths), so the numbers
// are host-independent: any drift in hits/misses/served[]/invalidation
// counts means the lattice stopped being behaviorally identical.
//
// The lattice is only equivalent while no inclusion obligation fires (a
// reclaimed extension tag back-invalidates private copies, which the old
// unbounded directory never did), so the test also pins tag_reclaims and
// back_invalidations to zero — the envelope every registered scenario must
// stay inside.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "src/cli/scenario_registry.h"
#include "src/machine/engine.h"

namespace dprof {
namespace {

struct GoldenTotals {
  uint64_t collect_cycles;
  uint64_t accesses;
  uint64_t l1_hits;
  uint64_t l1_misses;
  uint64_t served[5];
  uint64_t invalidation_misses;
};

// Captured from the pre-refactor model (cores=8, threads=1, default
// 20k-cycle epochs, seed 1, phase 1 + top-3 history sets, fixed epochs).
const std::map<std::string, GoldenTotals> kGolden = {
    {"apache",
     {6'000'000, 19941063, 11219679, 8721384,
      {11219679, 5542212, 2831613, 144554, 203005}, 144519}},
    {"conflict_demo",
     {4'000'000, 1275216, 4631, 1270585, {4631, 8691, 1261702, 0, 192}, 0}},
    {"kernel",
     {6'000'000, 21072401, 16946071, 4126330,
      {16946071, 3438122, 255711, 360804, 71693}, 361979}},
    {"memcached",
     {6'000'000, 12661292, 7628418, 5032874,
      {7628418, 2244339, 528931, 2185426, 74178}, 2155207}},
};

TEST(GoldenStatsTest, LatticeMatchesRecordedBaselinePerScenario) {
  ScenarioRegistry& registry = ScenarioRegistry::Default();
  // Both record modes must reproduce the fingerprints: the elided stream
  // (EngineConfig::allow_record_elision) feeds the hierarchy through the
  // batch applier in exactly the recorded path's merge order.
  for (const bool elide : {false, true}) {
    for (const auto& [name, golden] : kGolden) {
      SCOPED_TRACE("scenario: " + name + (elide ? " (elision on)" : " (elision off)"));
      const ScenarioInfo* info = registry.Find(name);
      ASSERT_NE(info, nullptr);

      RunSpec params;
      params.cores = 8;
      params.threads = 1;
      params.build_view_json = false;
      auto rig = info->factory(params);
      rig->workload->Install(*rig->machine);
      EngineConfig engine_config{1, 20'000, 2'000, 11};
      engine_config.allow_record_elision = elide;
      Engine engine(rig->machine.get(), engine_config);
      rig->machine->SetExecutor(&engine);

      // Fixed-epoch run: the golden numbers predate adaptive epoch focus,
      // and this test pins the lattice, not the epoch policy.
      rig->options.adaptive_epoch_focus = false;
      DProfSession session(rig->machine.get(), rig->allocator.get(), rig->options);
      session.CollectAccessSamples(golden.collect_cycles);
      session.CollectHistoriesForTopTypes(rig->top_types, rig->history_sets);

      const HierarchyTotals totals = rig->machine->hierarchy().Totals();
      EXPECT_EQ(totals.accesses, golden.accesses);
      EXPECT_EQ(totals.l1_hits, golden.l1_hits);
      EXPECT_EQ(totals.l1_misses, golden.l1_misses);
      for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(totals.served[i], golden.served[i]) << "served level " << i;
      }
      EXPECT_EQ(totals.invalidation_misses, golden.invalidation_misses);

      // The equivalence envelope: no extension bank overflowed, so no
      // back-invalidation the old model would not have performed.
      EXPECT_EQ(totals.tag_reclaims, 0u);
      EXPECT_EQ(totals.back_invalidations, 0u);
    }
  }
}

// Every registered scenario must have a golden fingerprint: a new scenario
// landing without one would silently skip equivalence coverage.
TEST(GoldenStatsTest, CoversEveryRegisteredScenario) {
  for (const std::string& name : ScenarioRegistry::Default().Names()) {
    EXPECT_TRUE(kGolden.count(name) == 1)
        << "scenario '" << name << "' has no golden stats fingerprint";
  }
}

}  // namespace
}  // namespace dprof
