// Batch/virtual equivalence of the engine's fused event sink.
//
// The commit pass delivers observer events through the span-based
// OnAccessBatch/OnComputeBatch entry points and consults PMU hooks through
// the QuietOps/OnQuietAccessBatch/AccessFilter contract. Every test here
// pins the core guarantee: the batched paths produce exactly the event
// stream and sampling decisions that per-op virtual dispatch produces.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "src/cli/scenario_registry.h"
#include "src/machine/engine.h"
#include "src/pmu/debug_registers.h"
#include "src/pmu/ibs_unit.h"
#include "src/profilers/code_profiler.h"
#include "src/workload/memcached.h"

namespace dprof {
namespace {

using Recorded = std::tuple<int, FunctionId, Addr, uint32_t, bool, uint32_t, uint64_t, bool>;

Recorded Key(const AccessEvent& e) {
  return {e.core, e.ip, e.addr, e.size, e.is_write, e.latency, e.now, false};
}

// Receives events through the default batch implementations, i.e. via the
// per-event virtuals.
struct VirtualRecorder : MachineObserver {
  void OnAccess(const AccessEvent& event) override { stream.push_back(Key(event)); }
  void OnCompute(int core, FunctionId ip, uint64_t cycles, uint64_t now) override {
    stream.push_back({core, ip, 0, 0, false, static_cast<uint32_t>(cycles), now, true});
  }
  std::vector<Recorded> stream;
};

// Consumes whole spans; must observe the identical stream.
struct BatchRecorder final : VirtualRecorder {
  void OnAccessBatch(const AccessEvent* events, size_t count) override {
    for (size_t i = 0; i < count; ++i) {
      stream.push_back(Key(events[i]));
    }
  }
  void OnComputeBatch(const ComputeEvent* events, size_t count) override {
    for (size_t i = 0; i < count; ++i) {
      stream.push_back({events[i].core, events[i].ip, 0, 0, false,
                        static_cast<uint32_t>(events[i].cycles), events[i].now, true});
    }
  }
};

struct MixedDriver final : CoreDriver {
  explicit MixedDriver(SimLock* lock) : lock(lock) {}
  bool Step(CoreContext& ctx) override {
    const Addr base = 0x100000 + static_cast<Addr>(ctx.core()) * 0x40000;
    ctx.Read(1, base + (steps % 128) * 64, 32);
    ctx.Compute(2, 40);
    ctx.Write(3, 0x900000 + (steps % 8) * 64, 8);  // shared, bounces
    if (steps % 5 == 0 && lock != nullptr) {
      ctx.LockAcquire(*lock, 4);
      ctx.Compute(4, 25);
      ctx.LockRelease(*lock, 4);
    }
    ++steps;
    return true;
  }
  SimLock* lock;
  uint64_t steps = 0;
};

TEST(EventSinkTest, BatchedDeliveryMatchesPerOpVirtualDispatch) {
  MachineConfig config;
  config.hierarchy.num_cores = 4;
  Machine machine(config);
  SimLock lock("sink lock", 0xa000);
  std::vector<MixedDriver> drivers(4, MixedDriver(&lock));
  for (int c = 0; c < 4; ++c) {
    machine.SetDriver(c, &drivers[c]);
  }
  VirtualRecorder virtual_obs;
  BatchRecorder batch_obs;
  machine.AddObserver(&virtual_obs);
  machine.AddObserver(&batch_obs);
  // An enabled IBS unit forces mid-segment dispatch points, so spans split
  // and single sampled events interleave with batches.
  IbsConfig ibs_config;
  ibs_config.period_ops = 64;
  IbsUnit ibs(4, ibs_config);
  machine.AddPmuHook(&ibs);

  Engine engine(&machine, EngineConfig{1, 10'000});
  machine.SetExecutor(&engine);
  machine.RunFor(200'000);

  ASSERT_FALSE(virtual_obs.stream.empty());
  EXPECT_GT(ibs.samples_taken(), 0u);
  EXPECT_EQ(virtual_obs.stream, batch_obs.stream);
}

TEST(EventSinkTest, BatchObserverIdenticalAcrossThreadCounts) {
  auto run = [](int threads) {
    MachineConfig config;
    config.hierarchy.num_cores = 4;
    Machine machine(config);
    SimLock lock("sink lock", 0xa000);
    std::vector<MixedDriver> drivers(4, MixedDriver(&lock));
    for (int c = 0; c < 4; ++c) {
      machine.SetDriver(c, &drivers[c]);
    }
    BatchRecorder batch_obs;
    machine.AddObserver(&batch_obs);
    Engine engine(&machine, EngineConfig{threads, 10'000});
    machine.SetExecutor(&engine);
    machine.RunFor(200'000);
    return batch_obs.stream;
  };
  const std::vector<Recorded> t1 = run(1);
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, run(4));  // overlapped delivery must not reorder or drop
}

TEST(EventSinkTest, CodeProfilerBatchMatchesVirtualAccounting) {
  // CodeProfiler overrides the batch entry points; a plain forwarding
  // observer goes through the default per-event loop. Their reports must
  // agree exactly.
  struct Forwarder final : MachineObserver {
    explicit Forwarder(CodeProfiler* p) : p(p) {}
    void OnAccess(const AccessEvent& event) override { p->OnAccess(event); }
    void OnCompute(int core, FunctionId ip, uint64_t cycles, uint64_t now) override {
      p->OnCompute(core, ip, cycles, now);
    }
    CodeProfiler* p;
  };
  MachineConfig config;
  config.hierarchy.num_cores = 2;
  Machine machine(config);
  std::vector<MixedDriver> drivers(2, MixedDriver(nullptr));
  machine.SetDriver(0, &drivers[0]);
  machine.SetDriver(1, &drivers[1]);
  CodeProfiler batched;
  CodeProfiler virtual_only;
  Forwarder forwarder(&virtual_only);
  machine.AddObserver(&batched);
  machine.AddObserver(&forwarder);
  Engine engine(&machine, EngineConfig{1, 10'000});
  machine.SetExecutor(&engine);
  machine.RunFor(150'000);

  EXPECT_GT(batched.total_cycles(), 0u);
  EXPECT_EQ(batched.total_cycles(), virtual_only.total_cycles());
  EXPECT_EQ(batched.total_l2_misses(), virtual_only.total_l2_misses());
  const auto rows_b = batched.Report(machine.symbols(), 0.0);
  const auto rows_v = virtual_only.Report(machine.symbols(), 0.0);
  ASSERT_EQ(rows_b.size(), rows_v.size());
  for (size_t i = 0; i < rows_b.size(); ++i) {
    EXPECT_EQ(rows_b[i].fn, rows_v[i].fn);
    EXPECT_EQ(rows_b[i].cycles, rows_v[i].cycles);
    EXPECT_EQ(rows_b[i].l2_misses, rows_v[i].l2_misses);
  }
}

TEST(EventSinkTest, IbsQuietSkipMatchesPerOpCountdown) {
  // Feeding one unit per-op and its twin through QuietOps/OnQuietAccessBatch
  // chunks must sample the same ops and charge the same cycles.
  IbsConfig config;
  config.period_ops = 50;
  IbsUnit per_op(1, config);
  IbsUnit batched(1, config);
  std::vector<int> fired_per_op;
  std::vector<int> fired_batched;
  per_op.SetHandler([&](const IbsSample& s) { fired_per_op.push_back(static_cast<int>(s.now)); });
  batched.SetHandler(
      [&](const IbsSample& s) { fired_batched.push_back(static_cast<int>(s.now)); });

  AccessEvent event;
  event.core = 0;
  event.size = 8;
  uint64_t charged_per_op = 0;
  uint64_t charged_batched = 0;
  int op = 0;
  const int kOps = 20'000;
  while (op < kOps) {
    event.now = static_cast<uint64_t>(op);
    charged_per_op += per_op.OnAccess(event);
    ++op;
  }
  op = 0;
  while (op < kOps) {
    const uint64_t quiet = batched.QuietOps(0);
    if (quiet > 0) {
      const uint64_t chunk = std::min<uint64_t>(quiet, static_cast<uint64_t>(kOps - op));
      batched.OnQuietAccessBatch(0, chunk);
      op += static_cast<int>(chunk);
      if (op >= kOps) {
        break;
      }
    }
    event.now = static_cast<uint64_t>(op);
    charged_batched += batched.OnAccess(event);
    ++op;
  }
  EXPECT_EQ(per_op.samples_taken(), batched.samples_taken());
  EXPECT_EQ(charged_per_op, charged_batched);
  EXPECT_EQ(fired_per_op, fired_batched);  // identical sample positions
}

TEST(EventSinkTest, DebugRegisterFilterWindow) {
  DebugRegisterFile regs;
  Addr lo = 0;
  Addr hi = 0;
  EXPECT_FALSE(regs.AccessFilter(&lo, &hi));
  EXPECT_EQ(regs.QuietOps(0), PmuHook::kQuietUnbounded);

  regs.Arm(0, 0x1000, 4);
  regs.Arm(1, 0x2000, 8);
  ASSERT_TRUE(regs.AccessFilter(&lo, &hi));
  EXPECT_EQ(lo, 0x1000u);
  EXPECT_EQ(hi, 0x2008u);
  EXPECT_EQ(regs.QuietOps(0), 0u);

  regs.Disarm(1);
  ASSERT_TRUE(regs.AccessFilter(&lo, &hi));
  EXPECT_EQ(lo, 0x1000u);
  EXPECT_EQ(hi, 0x1004u);

  regs.DisarmAll();
  EXPECT_FALSE(regs.AccessFilter(&lo, &hi));
  EXPECT_EQ(regs.QuietOps(0), PmuHook::kQuietUnbounded);
}

// End-to-end guard: a scenario run with an attached batch observer stays
// byte-identical across thread counts (overlapped delivery included).
TEST(EventSinkTest, ScenarioWithObserverDeterministicAcrossThreads) {
  auto run = [](int threads) {
    RunSpec params;
    params.cores = 4;
    params.collect_cycles = 1'500'000;
    params.threads = threads;
    params.build_view_json = false;
    const ScenarioReport report =
        RunScenario(ScenarioRegistry::Default(), "memcached", params);
    return ScenarioReportToJson(report);
  };
  const std::string t1 = run(1);
  EXPECT_EQ(t1, run(4));
}

}  // namespace
}  // namespace dprof
