#include <gtest/gtest.h>

#include "src/cli/scenario_registry.h"
#include "src/machine/engine.h"
#include "src/util/stats.h"

namespace dprof {
namespace {

// The engine's core guarantee: the committed event stream — and therefore
// the whole profiling report, views included — is bit-identical for every
// host thread count. These run full DProf sessions (IBS sampling, history
// collection, view construction) through `dprof run`'s code path.
std::string RunJson(const std::string& scenario, int cores, uint64_t cycles, int threads,
                    bool record_elision = true) {
  RunSpec params;
  params.cores = cores;
  params.collect_cycles = cycles;
  params.threads = threads;
  params.record_elision = record_elision;
  const ScenarioReport report =
      RunScenario(ScenarioRegistry::Default(), scenario, params);
  return ScenarioReportToJson(report);
}

TEST(EngineDeterminismTest, MemcachedIdenticalAcrossThreadCounts) {
  const std::string t1 = RunJson("memcached", 4, 2'000'000, 1);
  EXPECT_EQ(t1, RunJson("memcached", 4, 2'000'000, 4));
  EXPECT_EQ(t1, RunJson("memcached", 4, 2'000'000, 16));
}

TEST(EngineDeterminismTest, ConflictDemoIdenticalAcrossThreadCounts) {
  const std::string t1 = RunJson("conflict_demo", 2, 2'000'000, 1);
  EXPECT_EQ(t1, RunJson("conflict_demo", 2, 2'000'000, 4));
  EXPECT_EQ(t1, RunJson("conflict_demo", 2, 2'000'000, 16));
}

TEST(EngineDeterminismTest, ApacheIdenticalAcrossThreadCounts) {
  // Apache exercises the latency-probe path and per-core open-loop pacing.
  const std::string t1 = RunJson("apache", 4, 1'500'000, 1);
  EXPECT_EQ(t1, RunJson("apache", 4, 1'500'000, 2));
}

TEST(EngineDeterminismTest, RecordElisionIdenticalOnOffAndAcrossThreads) {
  // Record elision must be invisible in the committed stream: the full
  // report is byte-identical with elision allowed or forced off, at any
  // thread count.
  const std::string base = RunJson("memcached", 4, 2'000'000, 1, /*record_elision=*/true);
  EXPECT_EQ(base, RunJson("memcached", 4, 2'000'000, 1, false));
  EXPECT_EQ(base, RunJson("memcached", 4, 2'000'000, 4, true));
  EXPECT_EQ(base, RunJson("memcached", 4, 2'000'000, 4, false));
}

TEST(EngineDeterminismTest, PaperTopologyIdenticalAcrossThreadsAndModes) {
  // The NUMA machine adds per-socket L3 slices, interconnect latency, and
  // socket-aware apply sharding with work stealing — none of which may leak
  // host threading into the committed stream. The full report must be
  // byte-identical across thread counts, record elision, flat sharding, and
  // stealing on/off.
  auto run = [](int threads, bool elide, bool socket_aware, bool stealing) {
    RunSpec params;
    params.topology = "paper-amd";
    params.collect_cycles = 500'000;
    params.threads = threads;
    params.record_elision = elide;
    params.socket_aware_apply = socket_aware;
    params.work_stealing = stealing;
    return ScenarioReportToJson(
        RunScenario(ScenarioRegistry::Default(), "memcached", params));
  };
  const std::string base = run(1, true, true, true);
  EXPECT_NE(base.find("num_sockets"), std::string::npos);
  EXPECT_EQ(base, run(4, true, true, true));
  EXPECT_EQ(base, run(8, true, true, true));
  EXPECT_EQ(base, run(1, false, true, true));
  EXPECT_EQ(base, run(4, false, true, true));
  EXPECT_EQ(base, run(4, true, false, true));  // flat sharding
  EXPECT_EQ(base, run(4, true, true, false));  // stealing off
}

TEST(EngineTest, UnprofiledRunElidesEveryEpochAndMatchesRecordedPath) {
  // With no session attached nothing can consume an access event, so every
  // epoch is elision-eligible; clocks (and everything derived from them)
  // must match the recorded path exactly.
  struct Driver final : CoreDriver {
    bool Step(CoreContext& ctx) override {
      const Addr base = 0x2000000 + static_cast<Addr>(ctx.core()) * 0x100000;
      ctx.Read(1, base + (steps % 512) * 64, 16);
      ctx.Write(1, 0x9000000 + (steps % 64) * 64, 8);  // shared, contended
      ctx.Compute(1, 25);
      ++steps;
      return true;
    }
    uint64_t steps = 0;
  };
  uint64_t clocks[2][4];
  uint64_t elided[2];
  for (const bool elide : {false, true}) {
    MachineConfig config;
    config.hierarchy.num_cores = 4;
    Machine machine(config);
    Driver drivers[4];
    for (int c = 0; c < 4; ++c) {
      machine.SetDriver(c, &drivers[c]);
    }
    EngineConfig engine_config;
    engine_config.threads = 1;
    engine_config.epoch_cycles = 10'000;
    engine_config.allow_record_elision = elide;
    Engine engine(&machine, engine_config);
    machine.SetExecutor(&engine);
    machine.RunFor(100'000);
    for (int c = 0; c < 4; ++c) {
      clocks[elide ? 1 : 0][c] = machine.CoreClock(c);
    }
    elided[elide ? 1 : 0] = engine.phase_stats().elided_epochs;
  }
  EXPECT_EQ(elided[0], 0u);
  EXPECT_GT(elided[1], 0u);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(clocks[0][c], clocks[1][c]) << "core " << c;
  }
}

TEST(EngineTest, RunForReachesDeadline) {
  MachineConfig config;
  config.hierarchy.num_cores = 4;
  Machine machine(config);
  Engine engine(&machine, EngineConfig{2, 10'000});
  machine.SetExecutor(&engine);
  machine.RunFor(100'000);  // no drivers: cores idle forward deterministically
  EXPECT_GE(machine.MinClock(), 100'000u);
  EXPECT_GT(engine.epochs_run(), 0u);
}

TEST(EngineTest, RecordedStreamMatchesDirectModeForIndependentCores) {
  // With drivers that touch disjoint, core-local memory (no locks, no
  // cross-core lines, no PMU), the engine's committed clocks must be
  // exactly what direct execution produces: same accesses, same latencies.
  struct Driver final : CoreDriver {
    bool Step(CoreContext& ctx) override {
      const Addr base = 0x1000000 + static_cast<Addr>(ctx.core()) * 0x100000;
      ctx.Write(1, base + (steps % 64) * 64, 32);
      ctx.Compute(1, 10);
      ++steps;
      return true;
    }
    uint64_t steps = 0;
  };

  MachineConfig config;
  config.hierarchy.num_cores = 2;
  uint64_t direct_clock[2];
  uint64_t direct_steps[2];
  {
    Machine machine(config);
    Driver drivers[2];
    machine.SetDriver(0, &drivers[0]);
    machine.SetDriver(1, &drivers[1]);
    machine.RunFor(50'000);
    for (int c = 0; c < 2; ++c) {
      direct_clock[c] = machine.CoreClock(c);
      direct_steps[c] = drivers[c].steps;
    }
  }
  {
    Machine machine(config);
    Driver drivers[2];
    machine.SetDriver(0, &drivers[0]);
    machine.SetDriver(1, &drivers[1]);
    Engine engine(&machine, EngineConfig{1, 10'000});
    machine.SetExecutor(&engine);
    machine.RunFor(50'000);
    // Epoch boundaries quantize where the run stops, so allow the engine to
    // overshoot the deadline; per-step costs must agree, so clock and step
    // counts stay proportional.
    for (int c = 0; c < 2; ++c) {
      EXPECT_GE(machine.CoreClock(c), direct_clock[c]);
      EXPECT_GE(drivers[c].steps, direct_steps[c]);
      // Same per-step cost: clock difference explained by whole extra steps.
      const uint64_t extra_steps = drivers[c].steps - direct_steps[c];
      const uint64_t per_step = direct_clock[c] / direct_steps[c];
      EXPECT_EQ(machine.CoreClock(c) - direct_clock[c], extra_steps * per_step);
    }
  }
}

TEST(EngineTest, LatencyProbeMatchesDirectMode) {
  struct Driver final : CoreDriver {
    bool Step(CoreContext& ctx) override {
      ctx.BeginLatencyProbe();
      ctx.Read(1, 0x5000, 64);
      ctx.EndLatencyProbe(&stat, 1.0);
      ctx.Compute(1, 500);
      return true;
    }
    RunningStat stat;
  };

  MachineConfig config;
  config.hierarchy.num_cores = 1;
  auto run = [&](bool engine_mode) {
    Machine machine(config);
    Driver driver;
    machine.SetDriver(0, &driver);
    Engine engine(&machine, EngineConfig{1, 5'000});
    if (engine_mode) {
      machine.SetExecutor(&engine);
    }
    machine.RunFor(20'000);
    return driver.stat.mean();
  };
  const double direct_mean = run(false);
  const double engine_mean = run(true);
  // First access misses to DRAM, the rest hit L1: identical in both modes.
  EXPECT_DOUBLE_EQ(direct_mean, engine_mean);
}

TEST(EngineTest, LockArbitrationSerializesUnderEngine) {
  // Two cores hammer one lock; commit-order arbitration must produce waits
  // and consistent hold accounting, deterministically.
  struct Driver final : CoreDriver {
    Driver(SimLock* lock, int id) : lock(lock), id(id) {}
    bool Step(CoreContext& ctx) override {
      ctx.LockAcquire(*lock, 1);
      ctx.Compute(1, 200);
      ctx.LockRelease(*lock, 1);
      ctx.Compute(1, 50);
      return true;
    }
    SimLock* lock;
    int id;
  };
  struct Observer final : LockObserver {
    void OnAcquire(const SimLock&, int, FunctionId, uint64_t wait_cycles, uint64_t) override {
      total_wait += wait_cycles;
      ++acquires;
    }
    void OnRelease(const SimLock&, int, FunctionId, uint64_t, uint64_t) override {}
    uint64_t total_wait = 0;
    uint64_t acquires = 0;
  };

  auto run = [](int threads) {
    MachineConfig config;
    config.hierarchy.num_cores = 2;
    Machine machine(config);
    SimLock lock("test lock", 0x9000);
    Driver d0(&lock, 0), d1(&lock, 1);
    machine.SetDriver(0, &d0);
    machine.SetDriver(1, &d1);
    Observer observer;
    machine.SetLockObserver(&observer);
    Engine engine(&machine, EngineConfig{threads, 5'000});
    machine.SetExecutor(&engine);
    machine.RunFor(100'000);
    return std::make_pair(observer.total_wait, observer.acquires);
  };
  const auto t1 = run(1);
  EXPECT_GT(t1.second, 0u);
  EXPECT_GT(t1.first, 0u);  // contended: waits must materialize
  EXPECT_EQ(t1, run(4));
}

}  // namespace
}  // namespace dprof
