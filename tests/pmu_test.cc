#include <gtest/gtest.h>

#include <vector>

#include "src/machine/machine.h"
#include "src/pmu/debug_registers.h"
#include "src/pmu/ibs_unit.h"

namespace dprof {
namespace {

AccessEvent MakeEvent(int core, Addr addr, uint32_t size, bool write = false) {
  AccessEvent event;
  event.core = core;
  event.ip = 5;
  event.addr = addr;
  event.size = size;
  event.is_write = write;
  event.level = ServedBy::kL2;
  event.latency = 14;
  event.now = 1000;
  return event;
}

TEST(IbsUnitTest, DisabledTakesNoSamples) {
  IbsUnit ibs(2);
  int samples = 0;
  ibs.SetHandler([&](const IbsSample&) { ++samples; });
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(ibs.OnAccess(MakeEvent(0, 0x100, 8)), 0u);
  }
  EXPECT_EQ(samples, 0);
  EXPECT_EQ(ibs.samples_taken(), 0u);
}

TEST(IbsUnitTest, SamplingRateApproximatesPeriod) {
  IbsConfig config;
  config.period_ops = 100;
  IbsUnit ibs(1, config);
  int samples = 0;
  ibs.SetHandler([&](const IbsSample&) { ++samples; });
  const int ops = 100000;
  for (int i = 0; i < ops; ++i) {
    ibs.OnAccess(MakeEvent(0, 0x100, 8));
  }
  EXPECT_NEAR(samples, ops / 100, ops / 100 / 5);
  EXPECT_EQ(ibs.samples_taken(), static_cast<uint64_t>(samples));
}

TEST(IbsUnitTest, SampleCarriesEventPayload) {
  IbsConfig config;
  config.period_ops = 1;
  IbsUnit ibs(2, config);
  std::vector<IbsSample> samples;
  ibs.SetHandler([&](const IbsSample& s) { samples.push_back(s); });
  AccessEvent event = MakeEvent(1, 0xabc, 16, true);
  // Period 1 with jitter still fires within a couple of ops.
  for (int i = 0; i < 10 && samples.empty(); ++i) {
    ibs.OnAccess(event);
  }
  ASSERT_FALSE(samples.empty());
  const IbsSample& s = samples[0];
  EXPECT_EQ(s.core, 1);
  EXPECT_EQ(s.ip, 5u);
  EXPECT_EQ(s.vaddr, 0xabcu);
  EXPECT_EQ(s.size, 16u);
  EXPECT_TRUE(s.is_write);
  EXPECT_EQ(s.level, ServedBy::kL2);
  EXPECT_EQ(s.latency, 14u);
}

TEST(IbsUnitTest, InterruptCostCharged) {
  IbsConfig config;
  config.period_ops = 1;
  config.interrupt_cycles = 2000;
  config.handler_cycles = 1200;
  IbsUnit ibs(1, config);
  uint64_t charged = 0;
  for (int i = 0; i < 10; ++i) {
    charged += ibs.OnAccess(MakeEvent(0, 0x100, 8));
  }
  EXPECT_EQ(charged, ibs.samples_taken() * 3200);
}

TEST(IbsUnitTest, PerCoreCountdownsIndependent) {
  IbsConfig config;
  config.period_ops = 50;
  IbsUnit ibs(2, config);
  int samples = 0;
  ibs.SetHandler([&](const IbsSample&) { ++samples; });
  // Only core 0 executes; core 1 must not dilute core 0's rate.
  for (int i = 0; i < 5000; ++i) {
    ibs.OnAccess(MakeEvent(0, 0x100, 8));
  }
  EXPECT_NEAR(samples, 100, 30);
}

TEST(IbsUnitTest, SetPeriodReEnables) {
  IbsUnit ibs(1);
  EXPECT_FALSE(ibs.enabled());
  ibs.SetPeriod(10);
  EXPECT_TRUE(ibs.enabled());
  for (int i = 0; i < 100; ++i) {
    ibs.OnAccess(MakeEvent(0, 0x100, 8));
  }
  EXPECT_GT(ibs.samples_taken(), 0u);
  ibs.SetPeriod(0);
  const uint64_t before = ibs.samples_taken();
  for (int i = 0; i < 100; ++i) {
    ibs.OnAccess(MakeEvent(0, 0x100, 8));
  }
  EXPECT_EQ(ibs.samples_taken(), before);
}

TEST(DebugRegistersTest, ArmAndMatch) {
  DebugRegisterFile regs;
  std::vector<std::pair<Addr, int>> hits;
  regs.SetHandler([&](const AccessEvent& e, int r) { hits.push_back({e.addr, r}); });
  regs.Arm(0, 0x1000, 4);

  regs.OnAccess(MakeEvent(0, 0x1000, 4));        // exact
  regs.OnAccess(MakeEvent(0, 0x0ffc, 8));        // straddles start
  regs.OnAccess(MakeEvent(0, 0x1003, 1));        // last byte
  regs.OnAccess(MakeEvent(0, 0x1004, 4));        // adjacent, no overlap
  regs.OnAccess(MakeEvent(0, 0x0ff8, 4));        // before, no overlap
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(regs.hits(), 3u);
  for (const auto& [addr, reg] : hits) {
    EXPECT_EQ(reg, 0);
  }
}

TEST(DebugRegistersTest, InterruptCostPerHit) {
  DebugRegisterFile regs;
  regs.Arm(0, 0x1000, 8);
  EXPECT_EQ(regs.OnAccess(MakeEvent(0, 0x1000, 4)), regs.costs().interrupt_cycles);
  EXPECT_EQ(regs.OnAccess(MakeEvent(0, 0x2000, 4)), 0u);
}

TEST(DebugRegistersTest, TwoRegistersBothFire) {
  DebugRegisterFile regs;
  std::vector<int> fired;
  regs.SetHandler([&](const AccessEvent&, int r) { fired.push_back(r); });
  regs.Arm(0, 0x1000, 4);
  regs.Arm(1, 0x1008, 4);
  // A 16-byte access covering both windows triggers both registers.
  const uint64_t cost = regs.OnAccess(MakeEvent(0, 0x1000, 16));
  EXPECT_EQ(cost, 2 * regs.costs().interrupt_cycles);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], 0);
  EXPECT_EQ(fired[1], 1);
}

TEST(DebugRegistersTest, DisarmStopsMatching) {
  DebugRegisterFile regs;
  regs.Arm(2, 0x500, 8);
  EXPECT_TRUE(regs.armed(2));
  regs.Disarm(2);
  EXPECT_FALSE(regs.armed(2));
  EXPECT_EQ(regs.OnAccess(MakeEvent(0, 0x500, 8)), 0u);
}

TEST(DebugRegistersTest, FreeRegisterScan) {
  DebugRegisterFile regs;
  EXPECT_EQ(regs.FreeRegister(), 0);
  regs.Arm(0, 0x1, 1);
  regs.Arm(1, 0x10, 1);
  EXPECT_EQ(regs.FreeRegister(), 2);
  regs.Arm(2, 0x20, 1);
  regs.Arm(3, 0x30, 1);
  EXPECT_EQ(regs.FreeRegister(), -1);
  regs.DisarmAll();
  EXPECT_EQ(regs.FreeRegister(), 0);
}

TEST(DebugRegistersTest, CostModelDefaultsMatchPaper) {
  // Paper §6.3/§6.4: ~1,000 cycles per watchpoint interrupt, ~130,000 on the
  // initiating core for cross-core setup, ~220,000 total setup.
  DebugRegCostModel costs;
  EXPECT_EQ(costs.interrupt_cycles, 1000u);
  EXPECT_EQ(costs.setup_initiator_cycles, 130000u);
  EXPECT_EQ(costs.setup_initiator_cycles + 15 * costs.setup_ipi_cycles, 220000u);
}

}  // namespace
}  // namespace dprof
