#include <gtest/gtest.h>

#include <memory>

#include "src/workload/apache.h"
#include "src/workload/kernel.h"

namespace dprof {
namespace {

struct ApacheFixture {
  explicit ApacheFixture(const ApacheConfig& config, int cores = 4) {
    MachineConfig machine_config;
    machine_config.hierarchy.num_cores = cores;
    machine = std::make_unique<Machine>(machine_config);
    allocator = std::make_unique<SlabAllocator>(machine.get(), &registry);
    machine->SetAllocator(allocator.get());
    env = std::make_unique<KernelEnv>(machine.get(), allocator.get());
    workload = std::make_unique<ApacheWorkload>(env.get(), config);
    workload->Install(*machine);
  }

  void WarmAndMeasure(uint64_t warm, uint64_t measure) {
    machine->RunFor(warm);
    workload->ResetStats();
    start = machine->MaxClock();
    machine->RunFor(measure);
    elapsed = machine->MaxClock() - start;
  }

  double Throughput() const {
    return ThroughputRps(workload->CompletedRequests(), elapsed);
  }

  TypeRegistry registry;
  std::unique_ptr<Machine> machine;
  std::unique_ptr<SlabAllocator> allocator;
  std::unique_ptr<KernelEnv> env;
  std::unique_ptr<ApacheWorkload> workload;
  uint64_t start = 0;
  uint64_t elapsed = 0;
};

TEST(ApacheWorkloadTest, ServesRequestsAtPeak) {
  ApacheFixture f(ApacheConfig::Peak());
  f.WarmAndMeasure(2'000'000, 4'000'000);
  EXPECT_GT(f.workload->CompletedRequests(), 100u);
  EXPECT_EQ(f.workload->DroppedSyns(), 0u);
  EXPECT_LT(f.workload->AverageAcceptQueueDepth(), 4.0);
}

TEST(ApacheWorkloadTest, DropOffFillsBacklogAndDropsSyns) {
  ApacheFixture f(ApacheConfig::DropOff(), 16);
  f.WarmAndMeasure(25'000'000, 6'000'000);
  EXPECT_GT(f.workload->AverageAcceptQueueDepth(), 400.0);
  EXPECT_GT(f.workload->DroppedSyns(), 0u);
}

TEST(ApacheWorkloadTest, SockLatencyGrowsAtDropOff) {
  ApacheFixture peak(ApacheConfig::Peak(), 16);
  ApacheFixture drop(ApacheConfig::DropOff(), 16);
  peak.WarmAndMeasure(5'000'000, 5'000'000);
  drop.WarmAndMeasure(25'000'000, 6'000'000);
  // The paper's 50-vs-150-cycle signal: at least 3x growth.
  EXPECT_GT(drop.workload->AverageSockMissLatency(),
            3.0 * peak.workload->AverageSockMissLatency());
}

TEST(ApacheWorkloadTest, TcpSockWorkingSetGrowsAtDropOff) {
  ApacheFixture peak(ApacheConfig::Peak(), 16);
  ApacheFixture drop(ApacheConfig::DropOff(), 16);
  peak.WarmAndMeasure(5'000'000, 5'000'000);
  drop.WarmAndMeasure(25'000'000, 6'000'000);
  const TypeId sock_peak = peak.registry.Find("tcp_sock");
  const TypeId sock_drop = drop.registry.Find("tcp_sock");
  // Live socket population grows by roughly the backlog depth.
  EXPECT_GT(drop.allocator->LiveCount(sock_drop),
            5 * peak.allocator->LiveCount(sock_peak));
}

TEST(ApacheWorkloadTest, AdmissionControlRecoversThroughput) {
  ApacheFixture drop(ApacheConfig::DropOff(), 16);
  ApacheFixture fixed(ApacheConfig::Fixed(), 16);
  drop.WarmAndMeasure(25'000'000, 8'000'000);
  fixed.WarmAndMeasure(25'000'000, 8'000'000);
  EXPECT_GT(fixed.Throughput(), drop.Throughput() * 1.05);
  EXPECT_LT(fixed.workload->AverageAcceptQueueDepth(),
            drop.workload->AverageAcceptQueueDepth());
}

TEST(ApacheWorkloadTest, DropOffThroughputBelowPeak) {
  ApacheFixture peak(ApacheConfig::Peak(), 16);
  ApacheFixture drop(ApacheConfig::DropOff(), 16);
  peak.WarmAndMeasure(10'000'000, 10'000'000);
  drop.WarmAndMeasure(30'000'000, 10'000'000);
  EXPECT_LT(drop.Throughput(), peak.Throughput());
}

TEST(ApacheWorkloadTest, ConfigPresets) {
  EXPECT_LT(ApacheConfig::Peak().offered_load, 1.0);
  EXPECT_GT(ApacheConfig::DropOff().offered_load, 1.0);
  EXPECT_TRUE(ApacheConfig::Fixed().admission_control);
  EXPECT_EQ(ApacheConfig::Fixed().EffectiveBacklog(), ApacheConfig::Fixed().admission_limit);
  EXPECT_EQ(ApacheConfig::DropOff().EffectiveBacklog(), ApacheConfig::DropOff().backlog);
}

TEST(ApacheWorkloadTest, NoBouncingTypesGroundTruth) {
  // All handling is core-local: foreign-cache traffic stays negligible
  // except for the shared net_device and futex words.
  ApacheFixture f(ApacheConfig::Peak());
  f.WarmAndMeasure(2'000'000, 4'000'000);
  uint64_t foreign = 0;
  uint64_t accesses = 0;
  for (int c = 0; c < f.machine->num_cores(); ++c) {
    const CoreMemStats& stats = f.machine->hierarchy().core_stats(c);
    foreign += stats.served[static_cast<int>(ServedBy::kForeignCache)];
    accesses += stats.accesses;
  }
  EXPECT_LT(static_cast<double>(foreign) / static_cast<double>(accesses), 0.01);
}

TEST(ApacheWorkloadTest, TaskStructsStayLive) {
  ApacheFixture f(ApacheConfig::Peak());
  f.WarmAndMeasure(2'000'000, 2'000'000);
  const TypeId task = f.registry.Find("task_struct");
  // One worker pool per core.
  EXPECT_EQ(f.allocator->LiveCount(task),
            static_cast<uint64_t>(4 * ApacheConfig::Peak().worker_threads));
}

}  // namespace
}  // namespace dprof
