// End-to-end integration tests: DProf profiling sessions over the case-study
// workloads must reproduce the paper's qualitative findings.

#include <gtest/gtest.h>

#include <memory>

#include "src/dprof/session.h"
#include "src/workload/apache.h"
#include "src/workload/conflict_demo.h"
#include "src/workload/kernel.h"
#include "src/workload/memcached.h"

namespace dprof {
namespace {

struct Rig {
  explicit Rig(int cores) {
    MachineConfig config;
    config.hierarchy.num_cores = cores;
    machine = std::make_unique<Machine>(config);
    allocator = std::make_unique<SlabAllocator>(machine.get(), &registry);
    machine->SetAllocator(allocator.get());
    env = std::make_unique<KernelEnv>(machine.get(), allocator.get());
  }

  TypeRegistry registry;
  std::unique_ptr<Machine> machine;
  std::unique_ptr<SlabAllocator> allocator;
  std::unique_ptr<KernelEnv> env;
};

TEST(SessionIntegrationTest, MemcachedDataProfileShape) {
  Rig rig(4);
  MemcachedConfig mc;
  mc.rx_ring_entries = 64;
  MemcachedWorkload workload(rig.env.get(), mc);
  workload.Install(*rig.machine);

  DProfOptions options;
  options.ibs_period_ops = 60;
  DProfSession session(rig.machine.get(), rig.allocator.get(), options);
  session.CollectAccessSamples(12'000'000);

  const DataProfile profile = session.BuildDataProfile();
  ASSERT_GE(profile.rows().size(), 4u);
  // Paper Table 6.1: packet payload tops the chart and bounces.
  EXPECT_EQ(profile.rows()[0].name, "size-1024");
  EXPECT_TRUE(profile.rows()[0].bounce);
  EXPECT_GT(profile.rows()[0].miss_pct, 25.0);
  // skbuff present and bouncing.
  const DataProfileRow* skbuff = profile.Find(rig.registry.Find("skbuff"));
  ASSERT_NE(skbuff, nullptr);
  EXPECT_TRUE(skbuff->bounce);
  // Allocator metadata appears as its own types.
  EXPECT_NE(profile.Find(rig.allocator->array_cache_type()), nullptr);
  EXPECT_NE(profile.Find(rig.allocator->slab_type()), nullptr);
}

TEST(SessionIntegrationTest, MemcachedFixRemovesBouncing) {
  Rig rig(4);
  MemcachedConfig mc;
  mc.local_queue_fix = true;
  mc.rx_ring_entries = 64;
  MemcachedWorkload workload(rig.env.get(), mc);
  workload.Install(*rig.machine);

  DProfOptions options;
  options.ibs_period_ops = 60;
  DProfSession session(rig.machine.get(), rig.allocator.get(), options);
  session.CollectAccessSamples(12'000'000);

  const DataProfile profile = session.BuildDataProfile();
  const DataProfileRow* payload = profile.Find(rig.registry.Find("size-1024"));
  ASSERT_NE(payload, nullptr);
  EXPECT_FALSE(payload->bounce);
  const DataProfileRow* skbuff = profile.Find(rig.registry.Find("skbuff"));
  ASSERT_NE(skbuff, nullptr);
  EXPECT_FALSE(skbuff->bounce);
}

TEST(SessionIntegrationTest, SkbuffDataFlowShowsQueueCpuChange) {
  Rig rig(4);
  MemcachedConfig mc;
  mc.rx_ring_entries = 32;
  MemcachedWorkload workload(rig.env.get(), mc);
  workload.Install(*rig.machine);

  DProfOptions options;
  options.ibs_period_ops = 100;
  DProfSession session(rig.machine.get(), rig.allocator.get(), options);
  session.CollectAccessSamples(5'000'000);
  const TypeId skbuff = rig.registry.Find("skbuff");
  session.CollectHistories(skbuff, 6);

  const DataFlowGraph flow = session.BuildDataFlow(skbuff);
  const auto transitions = flow.CpuTransitions();
  ASSERT_FALSE(transitions.empty());
  // The paper's Figure 6-1 signal: a cross-CPU edge into the transmit-side
  // dequeue/DMA path.
  bool found_tx_transition = false;
  for (const DataFlowEdge& edge : transitions) {
    const std::string& to = flow.nodes()[edge.to].label;
    if (to == "pfifo_fast_dequeue()" || to == "dev_hard_start_xmit()" ||
        to == "skb_dma_map()" || to == "ixgbe_xmit_frame()" ||
        to == "__kfree_skb()" || to == "pfifo_fast_enqueue()") {
      found_tx_transition = true;
    }
  }
  EXPECT_TRUE(found_tx_transition);
}

TEST(SessionIntegrationTest, MemcachedPathTracesBounce) {
  Rig rig(4);
  MemcachedConfig mc;
  mc.rx_ring_entries = 32;
  MemcachedWorkload workload(rig.env.get(), mc);
  workload.Install(*rig.machine);

  DProfOptions options;
  options.ibs_period_ops = 100;
  DProfSession session(rig.machine.get(), rig.allocator.get(), options);
  session.CollectAccessSamples(5'000'000);
  const TypeId skbuff = rig.registry.Find("skbuff");
  session.CollectHistories(skbuff, 6);

  const auto traces = session.BuildPathTraces(skbuff);
  ASSERT_FALSE(traces.empty());
  bool any_bounce = false;
  uint64_t total_freq = 0;
  for (const PathTrace& trace : traces) {
    any_bounce = any_bounce || trace.Bounces();
    total_freq += trace.frequency;
  }
  EXPECT_TRUE(any_bounce);
  EXPECT_GT(total_freq, 0u);
}

TEST(SessionIntegrationTest, ApacheDifferentialWorkingSet) {
  auto run = [](const ApacheConfig& config, double* ws, double* miss_pct) {
    Rig rig(4);
    ApacheWorkload workload(rig.env.get(), config);
    workload.Install(*rig.machine);
    DProfOptions options;
    options.ibs_period_ops = 80;
    DProfSession session(rig.machine.get(), rig.allocator.get(), options);
    rig.machine->RunFor(8'000'000);
    session.CollectAccessSamples(10'000'000);
    const DataProfile profile = session.BuildDataProfile();
    const DataProfileRow* row = profile.Find(rig.registry.Find("tcp_sock"));
    ASSERT_NE(row, nullptr);
    *ws = row->working_set_bytes;
    *miss_pct = row->miss_pct;
  };
  double peak_ws = 0, peak_miss = 0, drop_ws = 0, drop_miss = 0;
  run(ApacheConfig::Peak(), &peak_ws, &peak_miss);
  run(ApacheConfig::DropOff(), &drop_ws, &drop_miss);
  // Paper Tables 6.4/6.5: the tcp_sock working set explodes at drop-off and
  // its miss share grows.
  EXPECT_GT(drop_ws, 4.0 * peak_ws);
  EXPECT_GT(drop_miss, peak_miss);
}

TEST(SessionIntegrationTest, MissClassificationMemcachedInvalidation) {
  Rig rig(4);
  MemcachedConfig mc;
  mc.rx_ring_entries = 32;
  MemcachedWorkload workload(rig.env.get(), mc);
  workload.Install(*rig.machine);
  DProfOptions options;
  options.ibs_period_ops = 80;
  DProfSession session(rig.machine.get(), rig.allocator.get(), options);
  session.CollectAccessSamples(10'000'000);

  const auto rows = session.ClassifyMisses();
  // The shared net_device must classify as invalidation-dominated.
  bool found = false;
  for (const MissClassRow& row : rows) {
    if (row.name == "net_device") {
      EXPECT_EQ(row.dominant, MissKind::kInvalidation);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SessionIntegrationTest, MissClassificationConflictDemo) {
  Rig rig(4);
  ConflictDemoWorkload workload(rig.env.get(), ConflictDemoConfig{});
  workload.Install(*rig.machine);
  DProfOptions options;
  options.ibs_period_ops = 80;
  DProfSession session(rig.machine.get(), rig.allocator.get(), options);
  session.CollectAccessSamples(8'000'000);

  WorkingSetOptions ws_options;
  ws_options.geometry = rig.machine->hierarchy().config().l2;
  const WorkingSetView ws = session.BuildWorkingSet(ws_options);
  EXPECT_FALSE(ws.conflicted_sets().empty());
  // pkt_stat's lines should sit in the conflicted sets.
  EXPECT_GT(ws.ConflictedFraction(workload.hot_type()), 0.5);
}

TEST(SessionIntegrationTest, IbsOverheadSlowsThroughput) {
  auto measure = [](uint64_t period) {
    Rig rig(4);
    MemcachedConfig mc;
    mc.rx_ring_entries = 32;
    MemcachedWorkload workload(rig.env.get(), mc);
    workload.Install(*rig.machine);
    DProfOptions options;
    options.ibs_period_ops = period;
    DProfSession session(rig.machine.get(), rig.allocator.get(), options);
    rig.machine->RunFor(1'000'000);
    workload.ResetStats();
    const uint64_t start = rig.machine->MaxClock();
    if (period == 0) {
      rig.machine->RunFor(8'000'000);
    } else {
      session.CollectAccessSamples(8'000'000);
    }
    return ThroughputRps(workload.CompletedRequests(), rig.machine->MaxClock() - start);
  };
  const double baseline = measure(0);
  const double heavy = measure(25);  // very aggressive sampling
  EXPECT_LT(heavy, baseline);
}

TEST(SessionIntegrationTest, HistoryOverheadAccountedPerType) {
  Rig rig(4);
  MemcachedConfig mc;
  mc.rx_ring_entries = 32;
  MemcachedWorkload workload(rig.env.get(), mc);
  workload.Install(*rig.machine);
  DProfOptions options;
  DProfSession session(rig.machine.get(), rig.allocator.get(), options);
  const TypeId skbuff = rig.registry.Find("skbuff");
  const uint64_t elapsed = session.CollectHistories(skbuff, 2);
  EXPECT_GT(elapsed, 0u);
  const HistoryOverhead& overhead = session.history_overhead(skbuff);
  EXPECT_GT(overhead.objects_profiled, 0u);
  EXPECT_GT(overhead.comm_cycles, 0u);
  EXPECT_GT(overhead.Total(), 0u);
  EXPECT_EQ(session.histories(skbuff).size(), overhead.objects_profiled);
}

}  // namespace
}  // namespace dprof
