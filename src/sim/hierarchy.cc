#include "src/sim/hierarchy.h"

#include <algorithm>

#include "src/util/check.h"

namespace dprof {

const char* ServedByName(ServedBy level) {
  switch (level) {
    case ServedBy::kL1:
      return "local L1";
    case ServedBy::kL2:
      return "local L2";
    case ServedBy::kL3:
      return "shared L3";
    case ServedBy::kForeignCache:
      return "foreign cache";
    case ServedBy::kDram:
      return "DRAM";
  }
  return "?";
}

uint32_t LatencyModel::Of(ServedBy level) const {
  switch (level) {
    case ServedBy::kL1:
      return l1;
    case ServedBy::kL2:
      return l2;
    case ServedBy::kL3:
      return l3;
    case ServedBy::kForeignCache:
      return foreign;
    case ServedBy::kDram:
      return dram;
  }
  return dram;
}

CacheHierarchy::DirEntry* CacheHierarchy::DirShard::Find(uint64_t line) {
  uint64_t i = (line * 0x9e3779b97f4a7c15ull) & mask_;
  while (true) {
    Slot& slot = slots_[i];
    if (slot.line == line) {
      return &slot.entry;
    }
    if (slot.line == kEmpty) {
      return nullptr;
    }
    i = (i + 1) & mask_;
  }
}

const CacheHierarchy::DirEntry* CacheHierarchy::DirShard::Find(uint64_t line) const {
  return const_cast<DirShard*>(this)->Find(line);
}

CacheHierarchy::DirEntry& CacheHierarchy::DirShard::GetOrCreate(uint64_t line) {
  if (used_ * 4 >= slots_.size() * 3) {
    Grow();
  }
  uint64_t i = (line * 0x9e3779b97f4a7c15ull) & mask_;
  while (true) {
    Slot& slot = slots_[i];
    if (slot.line == line) {
      return slot.entry;
    }
    if (slot.line == kEmpty) {
      slot.line = line;
      slot.entry = DirEntry();
      ++used_;
      return slot.entry;
    }
    i = (i + 1) & mask_;
  }
}

void CacheHierarchy::DirShard::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{kEmpty, DirEntry()});
  mask_ = slots_.size() - 1;
  for (const Slot& slot : old) {
    if (slot.line == kEmpty) {
      continue;
    }
    uint64_t i = (slot.line * 0x9e3779b97f4a7c15ull) & mask_;
    while (slots_[i].line != kEmpty) {
      i = (i + 1) & mask_;
    }
    slots_[i] = slot;
  }
}

void CacheHierarchy::DirShard::Reset() {
  slots_.assign(1024, Slot{kEmpty, DirEntry()});
  mask_ = slots_.size() - 1;
  used_ = 0;
}

CacheHierarchy::CacheHierarchy(const HierarchyConfig& config)
    : config_(config), l3_(config.l3), core_stats_(0) {
  DPROF_CHECK(config.num_cores > 0 && config.num_cores <= 32);
  DPROF_CHECK(config.l1.line_size == config.l2.line_size &&
              config.l2.line_size == config.l3.line_size);
  DPROF_CHECK(config.l1.line_size > 0 &&
              (config.l1.line_size & (config.l1.line_size - 1)) == 0);
  line_shift_ = static_cast<uint32_t>(__builtin_ctz(config.l1.line_size));
  l1_.reserve(config.num_cores);
  l2_.reserve(config.num_cores);
  for (int c = 0; c < config.num_cores; ++c) {
    l1_.emplace_back(config.l1);
    l2_.emplace_back(config.l2);
  }
  // The shard width is bounded by every cache's counter-stripe width so a
  // shard worker never writes another shard's counters.
  uint32_t shards = 64;
  shards = std::min(shards, l1_[0].num_stripes());
  shards = std::min(shards, l2_[0].num_stripes());
  shards = std::min(shards, l3_.num_stripes());
  shard_mask_ = shards - 1;
  dir_.resize(shards);
  core_stats_.assign(static_cast<size_t>(config.num_cores) * shards, CoreMemStats());
  agg_core_stats_.resize(config.num_cores);
}

void CacheHierarchy::InvalidateFrom(int c, uint64_t line, DirEntry* entry) {
  const bool in_l1 = l1_[c].Remove(line);
  const bool in_l2 = l2_[c].Remove(line);
  if (in_l1 || in_l2) {
    entry->invalidated_from |= 1u << c;
  }
  entry->sharers &= ~(1u << c);
  if (entry->modified_owner == c) {
    entry->modified_owner = -1;
  }
}

void CacheHierarchy::HandlePrivateEviction(int c, uint64_t victim, uint64_t now) {
  if (l1_[c].Contains(victim) || l2_[c].Contains(victim)) {
    return;  // still held by the other private level
  }
  DirEntry* entry = ShardFor(victim).Find(victim);
  if (entry == nullptr) {
    return;
  }
  entry->sharers &= ~(1u << c);
  if (entry->modified_owner == c) {
    // Dirty victim: write back into the shared L3.
    entry->modified_owner = -1;
    l3_.Insert(victim, now);
  }
}

void CacheHierarchy::WriteUpgrade(int core, uint64_t line, DirEntry& entry, int64_t l1_slot,
                                  int64_t l2_slot) {
  uint32_t others = entry.sharers & ~(1u << core);
  while (others != 0) {
    const int victim_core = __builtin_ctz(others);
    others &= others - 1;
    InvalidateFrom(victim_core, line, &entry);
  }
  entry.modified_owner = static_cast<int8_t>(core);
  entry.sharers |= 1u << core;
  // The L3 copy is now stale; drop it so remote readers must fetch from us.
  l3_.Remove(line);
  // Sole modified owner: later write hits can skip the directory entirely.
  if (l1_slot >= 0) {
    l1_[core].SetSlotExclusive(static_cast<uint64_t>(l1_slot), true);
  }
  if (l2_slot >= 0) {
    l2_[core].SetSlotExclusive(static_cast<uint64_t>(l2_slot), true);
  } else {
    l2_[core].SetExclusive(line, true);
  }
}

void CacheHierarchy::AccessLine(int core, uint64_t line, bool is_write, uint64_t now,
                                ServedBy* level, bool* invalidation) {
  *invalidation = false;
  Cache& l1 = l1_[core];
  Cache& l2 = l2_[core];

  const int64_t l1_hit = l1.TouchSlot(line, now);
  if (l1_hit >= 0) {
    *level = ServedBy::kL1;
    if (!is_write || l1.SlotExclusive(static_cast<uint64_t>(l1_hit))) {
      return;  // read hit, or write hit on an exclusively-owned line
    }
    WriteUpgrade(core, line, ShardFor(line).GetOrCreate(line), l1_hit, -1);
    return;
  }
  const int64_t l2_hit = l2.TouchSlot(line, now);
  if (l2_hit >= 0) {
    *level = ServedBy::kL2;
    const bool exclusive = l2.SlotExclusive(static_cast<uint64_t>(l2_hit));
    uint64_t l1_slot = 0;
    if (auto evicted = l1.FillAbsent(line, now, &l1_slot)) {
      HandlePrivateEviction(core, *evicted, now);
    }
    if (exclusive) {
      l1.SetSlotExclusive(l1_slot, true);
      return;  // already sole modified owner, for reads and writes alike
    }
    if (is_write) {
      WriteUpgrade(core, line, ShardFor(line).GetOrCreate(line),
                   static_cast<int64_t>(l1_slot), l2_hit);
    }
    return;
  }

  DirEntry& entry = ShardFor(line).GetOrCreate(line);
  // Private miss. Was it caused by a remote write invalidating our copy?
  if ((entry.invalidated_from >> core) & 1u) {
    *invalidation = true;
    entry.invalidated_from &= ~(1u << core);
  }

  const uint32_t others = entry.sharers & ~(1u << core);
  if (entry.modified_owner >= 0 && entry.modified_owner != core) {
    // Dirty in another core's cache: cache-to-cache transfer. The owner
    // writes back and keeps a shared copy; L3 picks up the data.
    *level = ServedBy::kForeignCache;
    l1_[entry.modified_owner].SetExclusive(line, false);
    l2_[entry.modified_owner].SetExclusive(line, false);
    entry.modified_owner = -1;
    l3_.Insert(line, now);
  } else if (l3_.Touch(line, now)) {
    *level = ServedBy::kL3;
  } else if (others != 0) {
    // Clean copy only in a sibling's private cache: cache-to-cache transfer.
    *level = ServedBy::kForeignCache;
    l3_.Insert(line, now);
  } else {
    *level = ServedBy::kDram;
    l3_.Insert(line, now);
  }

  uint64_t l2_slot = 0;
  if (auto evicted = l2.FillAbsent(line, now, &l2_slot)) {
    HandlePrivateEviction(core, *evicted, now);
  }
  uint64_t l1_slot = 0;
  if (auto evicted = l1.FillAbsent(line, now, &l1_slot)) {
    HandlePrivateEviction(core, *evicted, now);
  }
  entry.sharers |= 1u << core;

  if (is_write) {
    WriteUpgrade(core, line, entry, static_cast<int64_t>(l1_slot),
                 static_cast<int64_t>(l2_slot));
  }
}

AccessResult CacheHierarchy::Access(int core, Addr addr, uint32_t size, bool is_write,
                                    uint64_t now) {
  DPROF_DCHECK(core >= 0 && core < config_.num_cores);
  DPROF_DCHECK(size > 0);
  AccessResult result;
  const uint64_t first = addr >> line_shift_;
  const uint64_t last = (addr + size - 1) >> line_shift_;

  for (uint64_t line = first; line <= last; ++line) {
    ServedBy level = ServedBy::kL1;
    bool invalidation = false;
    AccessLine(core, line, is_write, now, &level, &invalidation);

    result.latency += config_.latency.Of(level);
    result.level = std::max(result.level, level);
    result.l1_miss = result.l1_miss || level != ServedBy::kL1;
    result.invalidation = result.invalidation || invalidation;
    ++result.lines;

    CoreMemStats& stats = StatsFor(core, line);
    ++stats.accesses;
    ++stats.served[static_cast<int>(level)];
    if (level == ServedBy::kL1) {
      ++stats.l1_hits;
    } else {
      ++stats.l1_misses;
    }
    if (invalidation) {
      ++stats.invalidation_misses;
    }
  }
  return result;
}

const CoreMemStats& CacheHierarchy::core_stats(int core) const {
  CoreMemStats& agg = agg_core_stats_[core];
  agg = CoreMemStats();
  const uint32_t shards = shard_mask_ + 1;
  for (uint32_t s = 0; s < shards; ++s) {
    const CoreMemStats& part = core_stats_[static_cast<uint64_t>(core) * shards + s];
    agg.accesses += part.accesses;
    agg.l1_hits += part.l1_hits;
    agg.l1_misses += part.l1_misses;
    for (int i = 0; i < 5; ++i) {
      agg.served[i] += part.served[i];
    }
    agg.invalidation_misses += part.invalidation_misses;
  }
  return agg;
}

bool CacheHierarchy::InPrivateCache(int core, Addr addr) const {
  const uint64_t line = addr >> line_shift_;
  return l1_[core].Contains(line) || l2_[core].Contains(line);
}

ServedBy CacheHierarchy::ProbeLevel(int core, Addr addr) const {
  const uint64_t line = addr >> line_shift_;
  if (l1_[core].Contains(line)) {
    return ServedBy::kL1;
  }
  if (l2_[core].Contains(line)) {
    return ServedBy::kL2;
  }
  const DirEntry* entry = ShardFor(line).Find(line);
  if (entry != nullptr && entry->modified_owner >= 0 && entry->modified_owner != core) {
    return ServedBy::kForeignCache;
  }
  if (l3_.Contains(line)) {
    return ServedBy::kL3;
  }
  if (entry != nullptr && (entry->sharers & ~(1u << core)) != 0) {
    return ServedBy::kForeignCache;
  }
  return ServedBy::kDram;
}

void CacheHierarchy::FlushAll() {
  for (int c = 0; c < config_.num_cores; ++c) {
    l1_[c] = Cache(config_.l1);
    l2_[c] = Cache(config_.l2);
  }
  l3_ = Cache(config_.l3);
  for (DirShard& shard : dir_) {
    shard.Reset();
  }
}

}  // namespace dprof
