#include "src/sim/hierarchy.h"

#include <algorithm>

namespace dprof {

const char* ServedByName(ServedBy level) {
  switch (level) {
    case ServedBy::kL1:
      return "local L1";
    case ServedBy::kL2:
      return "local L2";
    case ServedBy::kL3:
      return "shared L3";
    case ServedBy::kForeignCache:
      return "foreign cache";
    case ServedBy::kDram:
      return "DRAM";
  }
  return "?";
}

uint32_t LatencyModel::Of(ServedBy level) const {
  switch (level) {
    case ServedBy::kL1:
      return l1;
    case ServedBy::kL2:
      return l2;
    case ServedBy::kL3:
      return l3;
    case ServedBy::kForeignCache:
      return foreign;
    case ServedBy::kDram:
      return dram;
  }
  return dram;
}

CacheHierarchy::CacheHierarchy(const HierarchyConfig& config)
    : config_(config), l3_(config.l3), core_stats_(config.num_cores) {
  DPROF_CHECK(config.num_cores > 0 && config.num_cores <= 32);
  DPROF_CHECK(config.l1.line_size == config.l2.line_size &&
              config.l2.line_size == config.l3.line_size);
  l1_.reserve(config.num_cores);
  l2_.reserve(config.num_cores);
  for (int c = 0; c < config.num_cores; ++c) {
    l1_.emplace_back(config.l1);
    l2_.emplace_back(config.l2);
  }
}

void CacheHierarchy::InvalidateFrom(int c, uint64_t line, DirEntry* entry) {
  const bool in_l1 = l1_[c].Remove(line);
  const bool in_l2 = l2_[c].Remove(line);
  if (in_l1 || in_l2) {
    entry->invalidated_from |= 1u << c;
  }
  entry->sharers &= ~(1u << c);
  if (entry->modified_owner == c) {
    entry->modified_owner = -1;
  }
}

void CacheHierarchy::HandlePrivateEviction(int c, uint64_t victim, uint64_t now) {
  if (l1_[c].Contains(victim) || l2_[c].Contains(victim)) {
    return;  // still held by the other private level
  }
  auto it = dir_.find(victim);
  if (it == dir_.end()) {
    return;
  }
  DirEntry& entry = it->second;
  entry.sharers &= ~(1u << c);
  if (entry.modified_owner == c) {
    // Dirty victim: write back into the shared L3.
    entry.modified_owner = -1;
    l3_.Insert(victim, now);
  }
}

void CacheHierarchy::AccessLine(int core, uint64_t line, bool is_write, uint64_t now,
                                ServedBy* level, bool* invalidation) {
  DirEntry& entry = dir_[line];
  *invalidation = false;

  if (l1_[core].Touch(line, now)) {
    *level = ServedBy::kL1;
  } else if (l2_[core].Touch(line, now)) {
    *level = ServedBy::kL2;
    if (auto evicted = l1_[core].Insert(line, now)) {
      HandlePrivateEviction(core, *evicted, now);
    }
  } else {
    // Private miss. Was it caused by a remote write invalidating our copy?
    if ((entry.invalidated_from >> core) & 1u) {
      *invalidation = true;
      entry.invalidated_from &= ~(1u << core);
    }

    const uint32_t others = entry.sharers & ~(1u << core);
    if (entry.modified_owner >= 0 && entry.modified_owner != core) {
      // Dirty in another core's cache: cache-to-cache transfer. The owner
      // writes back and keeps a shared copy; L3 picks up the data.
      *level = ServedBy::kForeignCache;
      entry.modified_owner = -1;
      l3_.Insert(line, now);
    } else if (l3_.Touch(line, now)) {
      *level = ServedBy::kL3;
    } else if (others != 0) {
      // Clean copy only in a sibling's private cache: cache-to-cache transfer.
      *level = ServedBy::kForeignCache;
      l3_.Insert(line, now);
    } else {
      *level = ServedBy::kDram;
      l3_.Insert(line, now);
    }

    if (auto evicted = l2_[core].Insert(line, now)) {
      HandlePrivateEviction(core, *evicted, now);
    }
    if (auto evicted = l1_[core].Insert(line, now)) {
      HandlePrivateEviction(core, *evicted, now);
    }
    entry.sharers |= 1u << core;
  }

  if (is_write) {
    uint32_t others = entry.sharers & ~(1u << core);
    while (others != 0) {
      const int victim_core = __builtin_ctz(others);
      others &= others - 1;
      InvalidateFrom(victim_core, line, &entry);
    }
    entry.modified_owner = static_cast<int8_t>(core);
    entry.sharers |= 1u << core;
    // The L3 copy is now stale; drop it so remote readers must fetch from us.
    l3_.Remove(line);
  }
}

AccessResult CacheHierarchy::Access(int core, Addr addr, uint32_t size, bool is_write,
                                    uint64_t now) {
  DPROF_DCHECK(core >= 0 && core < config_.num_cores);
  DPROF_DCHECK(size > 0);
  AccessResult result;
  const uint32_t line_size = config_.l1.line_size;
  const uint64_t first = addr / line_size;
  const uint64_t last = (addr + size - 1) / line_size;

  CoreMemStats& stats = core_stats_[core];
  for (uint64_t line = first; line <= last; ++line) {
    ServedBy level = ServedBy::kL1;
    bool invalidation = false;
    AccessLine(core, line, is_write, now, &level, &invalidation);

    result.latency += config_.latency.Of(level);
    result.level = std::max(result.level, level);
    result.l1_miss = result.l1_miss || level != ServedBy::kL1;
    result.invalidation = result.invalidation || invalidation;
    ++result.lines;

    ++stats.accesses;
    ++stats.served[static_cast<int>(level)];
    if (level == ServedBy::kL1) {
      ++stats.l1_hits;
    } else {
      ++stats.l1_misses;
    }
    if (invalidation) {
      ++stats.invalidation_misses;
    }
  }
  return result;
}

bool CacheHierarchy::InPrivateCache(int core, Addr addr) const {
  const uint64_t line = addr / config_.l1.line_size;
  return l1_[core].Contains(line) || l2_[core].Contains(line);
}

ServedBy CacheHierarchy::ProbeLevel(int core, Addr addr) const {
  const uint64_t line = addr / config_.l1.line_size;
  if (l1_[core].Contains(line)) {
    return ServedBy::kL1;
  }
  if (l2_[core].Contains(line)) {
    return ServedBy::kL2;
  }
  auto it = dir_.find(line);
  if (it != dir_.end() && it->second.modified_owner >= 0 &&
      it->second.modified_owner != core) {
    return ServedBy::kForeignCache;
  }
  if (l3_.Contains(line)) {
    return ServedBy::kL3;
  }
  if (it != dir_.end() && (it->second.sharers & ~(1u << core)) != 0) {
    return ServedBy::kForeignCache;
  }
  return ServedBy::kDram;
}

void CacheHierarchy::FlushAll() {
  for (int c = 0; c < config_.num_cores; ++c) {
    l1_[c] = Cache(config_.l1);
    l2_[c] = Cache(config_.l2);
  }
  l3_ = Cache(config_.l3);
  dir_.clear();
}

}  // namespace dprof
