#include "src/sim/hierarchy.h"

#include <algorithm>

#include "src/util/check.h"

namespace dprof {

const char* ServedByName(ServedBy level) {
  switch (level) {
    case ServedBy::kL1:
      return "local L1";
    case ServedBy::kL2:
      return "local L2";
    case ServedBy::kL3:
      return "shared L3";
    case ServedBy::kForeignCache:
      return "foreign cache";
    case ServedBy::kDram:
      return "DRAM";
  }
  return "?";
}

uint32_t LatencyModel::Of(ServedBy level) const {
  switch (level) {
    case ServedBy::kL1:
      return l1;
    case ServedBy::kL2:
      return l2;
    case ServedBy::kL3:
      return l3;
    case ServedBy::kForeignCache:
      return foreign;
    case ServedBy::kDram:
      return dram;
  }
  return dram;
}

void CacheHierarchy::Level::Init(const CacheGeometry& geometry, int num_cores) {
  DPROF_CHECK(geometry.ways > 0);
  DPROF_CHECK(geometry.IsPowerOfTwoShaped());
  ways = geometry.ways;
  sets = geometry.NumSets();
  set_mask = geometry.SetMask();
  const size_t slots = static_cast<size_t>(num_cores) * sets * ways;
  tags.assign(slots, kNoLine);
  stamps.assign(slots, 0);
}

CacheHierarchy::CacheHierarchy(const HierarchyConfig& config) : config_(config) {
  DPROF_CHECK(config.num_cores > 0 && config.num_cores <= 64);
  DPROF_CHECK(config.l1.line_size == config.l2.line_size &&
              config.l2.line_size == config.l3.line_size);
  DPROF_CHECK(config.l3.IsPowerOfTwoShaped());
  DPROF_CHECK(config.l3.ways > 0);
  DPROF_CHECK(config.l3_dir_ext_ways > 0);
  const int sockets = config.num_sockets;
  DPROF_CHECK(sockets > 0 && (sockets & (sockets - 1)) == 0);
  DPROF_CHECK(config.num_cores % sockets == 0);
  line_shift_ = config_.l1.LineShift();

  l1_.Init(config.l1, config.num_cores);
  l2_.Init(config.l2, config.num_cores);

  l3_ways_ = config.l3.ways;
  l3_ext_ways_ = config.l3_dir_ext_ways;
  l3_sets_ = config.l3.NumSets();
  l3_set_mask_ = config.l3.SetMask();
  // One L3 slice per socket: the global set array concatenates the slices,
  // and L3SetOf(line) = home_socket * l3_sets_ + within-slice set.
  l3_total_sets_ = l3_sets_ * static_cast<uint64_t>(sockets);
  l3_tags_.assign(l3_total_sets_ * l3_ways_, kNoLine);
  l3_stamps_.assign(l3_total_sets_ * l3_ways_, 0);
  l3_meta_.assign(l3_total_sets_ * l3_ways_, WayMeta());
  l3_ext_tags_.assign(l3_total_sets_ * l3_ext_ways_, kNoLine);
  l3_ext_stamps_.assign(l3_total_sets_ * l3_ext_ways_, 0);
  l3_ext_meta_.assign(l3_total_sets_ * l3_ext_ways_, WayMeta());
  l3_ext_count_.assign(l3_total_sets_, 0);
  l3_tag_count_.assign(l3_total_sets_, 0);

  // The shard partition must refine every level's set partition: a worker
  // that owns shard s then owns whole L1/L2 set rows and whole L3 sets
  // (including their embedded directory and extension bank), so concurrent
  // shard workers never touch the same state. All set counts are powers of
  // two, so taking the minimum guarantees the refinement.
  uint64_t shards = 64;
  shards = std::min(shards, l1_.sets);
  shards = std::min(shards, l2_.sets);
  shards = std::min(shards, l3_sets_);
  shard_mask_ = static_cast<uint32_t>(shards - 1);
  DPROF_CHECK((l3_set_mask_ & shard_mask_) == shard_mask_);
  // Home bits live inside the shard width (so every shard's lines share one
  // home socket) and therefore inside every level's set mask: two lines in
  // the same private set row always share a home slice, which keeps
  // eviction victims and back-invalidation targets inside their evictor's
  // shard even across slices.
  DPROF_CHECK(static_cast<uint64_t>(sockets) <= shards);
  socket_mask_ = static_cast<uint32_t>(sockets - 1);
  const uint32_t shard_bits = static_cast<uint32_t>(__builtin_ctzll(shards));
  const uint32_t socket_bits =
      sockets > 1 ? static_cast<uint32_t>(__builtin_ctz(static_cast<uint32_t>(sockets))) : 0;
  home_shift_ = shard_bits - socket_bits;
  cores_per_socket_ = config.num_cores / sockets;
  core_stats_.assign(static_cast<size_t>(config.num_cores) * shards, StatStripe());
  agg_core_stats_.resize(config.num_cores);
  reclaims_per_shard_.assign(shards, 0);
  backinv_per_shard_.assign(shards, 0);
  xsocket_backinv_per_shard_.assign(shards, 0);
}

int CacheHierarchy::ProbeRow(const Level& level, size_t row, uint64_t line) {
  const uint64_t* tags = &level.tags[row];
  for (uint32_t w = 0; w < level.ways; ++w) {
    if ((tags[w] & kPrivTagMask) == line) {
      return static_cast<int>(w);
    }
  }
  return -1;
}

void CacheHierarchy::RemoveAt(Level& level, size_t slot) {
  level.tags[slot] = kNoLine;
  level.stamps[slot] = 0;
}

// One tag-only pass produces both the probe result and the fill candidate:
// the matching way, or the first invalid way. On a hit the scan stops at
// the match and touches no LRU state; on a miss the caller fills with
// FillAt — no second walk over the tags, and the stamps column is read
// only when a full row actually forces an LRU choice.
CacheHierarchy::RowScan CacheHierarchy::ScanRow(const Level& level, size_t row,
                                                uint64_t line) {
  const uint64_t* tags = &level.tags[row];
  RowScan scan;
  int free = -1;
  for (uint32_t w = 0; w < level.ways; ++w) {
    const uint64_t tag = tags[w];
    if ((tag & kPrivTagMask) == line) {
      scan.way = static_cast<int>(w);
      return scan;
    }
    if (tag == kNoLine && free < 0) {
      free = static_cast<int>(w);
    }
  }
  scan.free = free;
  return scan;
}

uint32_t CacheHierarchy::FillAt(Level& level, size_t row, const RowScan& scan,
                                uint64_t line, uint64_t now, uint64_t* victim) {
  uint32_t w;
  if (scan.free >= 0) {
    w = static_cast<uint32_t>(scan.free);
    *victim = kNoLine;
  } else {
    // Row is full: pick the LRU way now (first index wins stamp ties, like
    // the classic model).
    const uint64_t* stamps = &level.stamps[row];
    w = 0;
    for (uint32_t i = 1; i < level.ways; ++i) {
      if (stamps[i] < stamps[w]) {
        w = i;
      }
    }
    *victim = level.tags[row + w] & kPrivTagMask;
  }
  const size_t slot = row + w;
  level.tags[slot] = line;  // a fresh fill is never exclusive
  level.stamps[slot] = now;
  return w;
}

int CacheHierarchy::FindL3Slot(uint64_t set, uint64_t line) const {
  const uint64_t* tags = &l3_tags_[set * l3_ways_];
  uint32_t remaining = l3_tag_count_[set];
  for (uint32_t w = 0; remaining > 0; ++w) {
    const uint64_t tag = tags[w];
    if (tag == kNoLine) {
      continue;
    }
    if ((tag & kTagMask) == line) {
      return static_cast<int>(w);
    }
    --remaining;
  }
  const uint64_t* ext = &l3_ext_tags_[set * l3_ext_ways_];
  const uint32_t count = l3_ext_count_[set];
  for (uint32_t i = 0; i < count; ++i) {
    if (ext[i] == line) {
      return static_cast<int>(l3_ways_ + i);
    }
  }
  return -1;
}

// Like ScanRow for the L3 lattice: a tag-only walk over the tagged data
// ways (the per-set count bounds it, so near-empty sets cost a couple of
// compares) also yields the free fill candidate a promote needs. "Free"
// means no *valid data*: untagged ways and in-place dir-only residues both
// qualify — exactly the ways the classic model would have left invalid.
CacheHierarchy::L3Scan CacheHierarchy::ScanL3(uint64_t set, uint64_t line) const {
  const uint64_t* tags = &l3_tags_[set * l3_ways_];
  L3Scan scan;
  int free = -1;
  uint32_t remaining = l3_tag_count_[set];
  uint32_t w = 0;
  for (; remaining > 0; ++w) {
    const uint64_t tag = tags[w];
    if (tag == kNoLine) {
      if (free < 0) {
        free = static_cast<int>(w);
      }
      continue;
    }
    --remaining;
    const bool dir_only = tag >= kDirOnlyBit;
    if (dir_only && free < 0) {
      free = static_cast<int>(w);
    }
    if ((tag & kTagMask) == line) {
      scan.slot = static_cast<int>(w);
      scan.free_data = free;
      return scan;
    }
  }
  if (free < 0 && w < l3_ways_) {
    free = static_cast<int>(w);  // every way past the last tagged one is free
  }
  scan.free_data = free;
  const uint64_t* ext = &l3_ext_tags_[set * l3_ext_ways_];
  const uint32_t count = l3_ext_count_[set];
  for (uint32_t i = 0; i < count; ++i) {
    if (ext[i] == line) {
      scan.slot = static_cast<int>(l3_ways_ + i);
      break;
    }
  }
  return scan;
}

void CacheHierarchy::ReclaimExtWay(uint64_t set) {
  const size_t ext_base = set * l3_ext_ways_;
  const uint32_t count = l3_ext_count_[set];
  DPROF_DCHECK(count > 0);
  uint32_t oldest = 0;
  for (uint32_t i = 1; i < count; ++i) {
    if (l3_ext_stamps_[ext_base + i] < l3_ext_stamps_[ext_base + oldest]) {
      oldest = i;
    }
  }
  const uint64_t line = l3_ext_tags_[ext_base + oldest];
  const WayMeta meta = l3_ext_meta_[ext_base + oldest];
  const uint32_t shard = static_cast<uint32_t>(line & shard_mask_);
  const int home = SocketOfShard(shard);
  // The inclusion obligation: a tag leaving the lattice takes every private
  // copy it tracked with it (the owner's sharer bit is always set, so a
  // dirty owner is covered; the data itself is conceptually written back).
  uint64_t sharers = meta.sharers;
  for (uint64_t p = sharers; p != 0; p &= p - 1) {
    PrefetchPrivateRows(__builtin_ctzll(p), line);
  }
  while (sharers != 0) {
    const int c = __builtin_ctzll(sharers);
    sharers &= sharers - 1;
    const size_t row1 = l1_.RowOf(c, line);
    const int w1 = ProbeRow(l1_, row1, line);
    if (w1 >= 0) {
      RemoveAt(l1_, row1 + static_cast<uint32_t>(w1));
    }
    const size_t row2 = l2_.RowOf(c, line);
    const int w2 = ProbeRow(l2_, row2, line);
    if (w2 >= 0) {
      RemoveAt(l2_, row2 + static_cast<uint32_t>(w2));
    }
    if (w1 >= 0 || w2 >= 0) {
      ++backinv_per_shard_[shard];
      if (SocketOfCore(c) != home) {
        ++xsocket_backinv_per_shard_[shard];
      }
    }
  }
  ++reclaims_per_shard_[shard];
  RemoveExtAt(set, static_cast<int>(l3_ways_ + oldest));
}

void CacheHierarchy::RemoveExtAt(uint64_t set, int slot) {
  const size_t ext_base = set * l3_ext_ways_;
  const uint32_t i = static_cast<uint32_t>(slot) - l3_ways_;
  const uint32_t last = l3_ext_count_[set] - 1;
  if (i != last) {
    l3_ext_tags_[ext_base + i] = l3_ext_tags_[ext_base + last];
    l3_ext_stamps_[ext_base + i] = l3_ext_stamps_[ext_base + last];
    l3_ext_meta_[ext_base + i] = l3_ext_meta_[ext_base + last];
  }
  l3_ext_tags_[ext_base + last] = kNoLine;
  l3_ext_meta_[ext_base + last] = WayMeta();
  l3_ext_count_[set] = static_cast<uint16_t>(last);
}

void CacheHierarchy::PushExt(uint64_t set, uint64_t line, uint64_t stamp, WayMeta meta) {
  if (l3_ext_count_[set] == l3_ext_ways_) {
    ReclaimExtWay(set);
  }
  const size_t at = set * l3_ext_ways_ + l3_ext_count_[set];
  l3_ext_tags_[at] = line;
  l3_ext_stamps_[at] = stamp;
  l3_ext_meta_[at] = meta;
  l3_ext_count_[set] = static_cast<uint16_t>(l3_ext_count_[set] + 1);
}

int CacheHierarchy::PromoteToData(uint64_t set, const L3Scan& scan, uint64_t line,
                                  uint64_t now) {
  const size_t set_base = set * l3_ways_;
  int slot = scan.slot;
  if (slot >= 0 && static_cast<uint32_t>(slot) < l3_ways_) {
    if (l3_tags_[set_base + slot] == line) {
      // Valid data way already: refresh recency, like a classic
      // insert-existing.
      l3_stamps_[set_base + slot] = now;
      return slot;
    }
    if (slot == scan.free_data) {
      // In-place dir-only residue sitting exactly where a classic fill
      // would land (its way is the first free one): revalidate in place —
      // the hot path of a modified line bouncing between cores. The tag
      // count is unchanged: the way was tagged and stays tagged.
      l3_tags_[set_base + slot] = line;
      l3_stamps_[set_base + slot] = now;
      return slot;
    }
  }
  WayMeta meta;
  if (slot >= 0) {
    if (static_cast<uint32_t>(slot) >= l3_ways_) {
      // Lift the tag out of the extension bank, closing the hole.
      meta = l3_ext_meta_[set * l3_ext_ways_ + (static_cast<uint32_t>(slot) - l3_ways_)];
      RemoveExtAt(set, slot);
    } else {
      meta = l3_meta_[set_base + slot];
      // In-place residue elsewhere in the set: vacate its way; the fill
      // below lands on the first free way, as the classic model would.
      l3_tags_[set_base + slot] = kNoLine;
      l3_meta_[set_base + slot] = WayMeta();
      l3_tag_count_[set] = static_cast<uint16_t>(l3_tag_count_[set] - 1);
    }
  }
  // Classic N-way fill over the data ways, candidate already scanned:
  // first free way, else evict the LRU data way — whose tag (with its
  // directory state) demotes into the extension bank instead of vanishing.
  if (scan.free_data >= 0) {
    slot = scan.free_data;
    const uint64_t displaced = l3_tags_[set_base + slot];
    if (displaced != kNoLine) {
      // The free way carries another line's dir-only residue; displace it
      // into the extension bank.
      PushExt(set, displaced & kTagMask, now, l3_meta_[set_base + slot]);
    } else {
      l3_tag_count_[set] = static_cast<uint16_t>(l3_tag_count_[set] + 1);
    }
  } else {
    slot = LruDataWay(set_base);
    if (l3_meta_[set_base + slot].HasState()) {
      PushExt(set, l3_tags_[set_base + slot], now, l3_meta_[set_base + slot]);
    }
  }
  l3_tags_[set_base + slot] = line;
  l3_stamps_[set_base + slot] = now;
  l3_meta_[set_base + slot] = meta;
  return slot;
}

// LRU over a full bank of data ways; first index wins stamp ties, like the
// classic model.
int CacheHierarchy::LruDataWay(size_t set_base) const {
  const uint64_t* stamps = &l3_stamps_[set_base];
  uint32_t lru = 0;
  for (uint32_t w = 1; w < l3_ways_; ++w) {
    if (stamps[w] < stamps[lru]) {
      lru = w;
    }
  }
  return static_cast<int>(lru);
}

void CacheHierarchy::InvalidateFrom(int c, uint64_t line, WayMeta* meta) {
  const size_t row1 = l1_.RowOf(c, line);
  const int w1 = ProbeRow(l1_, row1, line);
  if (w1 >= 0) {
    RemoveAt(l1_, row1 + static_cast<uint32_t>(w1));
  }
  const size_t row2 = l2_.RowOf(c, line);
  const int w2 = ProbeRow(l2_, row2, line);
  if (w2 >= 0) {
    RemoveAt(l2_, row2 + static_cast<uint32_t>(w2));
  }
  if (w1 >= 0 || w2 >= 0) {
    meta->invalidated_from |= 1ull << c;
  }
  meta->sharers &= ~(1ull << c);
  if (meta->owner == c) {
    meta->owner = -1;
    meta->excl_levels = 0;  // the owner's tagged copies just left with it
  }
}

void CacheHierarchy::WriteUpgrade(int core, uint64_t line, uint64_t set, int slot,
                                  int64_t l1_way, int64_t l2_way) {
  if (slot < 0) {
    // No lattice tag yet (a write upgrade racing ahead of any tracked
    // state); materialize a bare extension tag to carry the ownership.
    PushExt(set, line, 0, WayMeta());
    slot = static_cast<int>(l3_ways_ + l3_ext_count_[set] - 1);
  }
  WayMeta* meta = MetaAt(set, slot);
  uint64_t others = meta->sharers & ~(1ull << core);
  while (others != 0) {
    const int victim_core = __builtin_ctzll(others);
    others &= others - 1;
    InvalidateFrom(victim_core, line, meta);
  }
  meta->owner = static_cast<int8_t>(core);
  meta->sharers |= 1ull << core;
  // The L3 data copy is now stale; mark the way dir-only in place (no tag
  // motion) so remote readers must fetch from us, while the embedded
  // directory state stays put. The way reads as free to later fills, which
  // displace the residue into the extension bank only when they claim it.
  if (static_cast<uint32_t>(slot) < l3_ways_) {
    l3_tags_[set * l3_ways_ + slot] |= kDirOnlyBit;
  }
  // Sole modified owner: later write hits can skip the directory entirely.
  // The exclusive bit lives in the tag word the probe already loaded, and
  // the directory word remembers which levels got the grant (an L2 grant
  // covers L1 too: an exclusive L2 propagates its bit into an L1 refill
  // without a directory access), so the downgrade path probes only rows
  // that can actually carry the bit.
  uint8_t excl_levels = 0;
  if (l1_way >= 0) {
    l1_.tags[l1_.RowOf(core, line) + static_cast<uint64_t>(l1_way)] |= kPrivExclBit;
    excl_levels |= 1;
  }
  const size_t row2 = l2_.RowOf(core, line);
  const int w2 = l2_way >= 0 ? static_cast<int>(l2_way) : ProbeRow(l2_, row2, line);
  if (w2 >= 0) {
    l2_.tags[row2 + static_cast<uint32_t>(w2)] |= kPrivExclBit;
    excl_levels |= 3;
  }
  meta->excl_levels = excl_levels;
}

void CacheHierarchy::HandlePrivateEviction(int c, const Level& other, uint64_t victim,
                                           uint64_t now) {
  // The victim's L3 set row is needed right after the other-level probe;
  // start it now so the two fetches overlap.
  __builtin_prefetch(l3_tags_.data() + L3SetOf(victim) * l3_ways_);
  if (ProbeRow(other, other.RowOf(c, victim), victim) >= 0) {
    return;  // still held by the other private level
  }
  const uint64_t set = L3SetOf(victim);
  const L3Scan scan = ScanL3(set, victim);
  if (scan.slot < 0) {
    return;
  }
  WayMeta* meta = MetaAt(set, scan.slot);
  meta->sharers &= ~(1ull << c);
  if (meta->owner == c) {
    // Dirty victim: write back into the shared L3. Both private copies are
    // gone (the eviction took one, the probe above cleared the other), so
    // no exclusive tag survives anywhere.
    meta->owner = -1;
    meta->excl_levels = 0;
    PromoteToData(set, scan, victim, now);
  } else if (!meta->HasState()) {
    // A stateless dir-only tag tracks nothing; free the way it occupies.
    if (static_cast<uint32_t>(scan.slot) >= l3_ways_) {
      RemoveExtAt(set, scan.slot);
    } else {
      const size_t slot = set * l3_ways_ + static_cast<uint32_t>(scan.slot);
      if (l3_tags_[slot] >= kDirOnlyBit) {
        l3_tags_[slot] = kNoLine;
        l3_meta_[slot] = WayMeta();
        l3_tag_count_[set] = static_cast<uint16_t>(l3_tag_count_[set] - 1);
      }
    }
  }
}

template <bool kWrite>
ServedBy CacheHierarchy::AccessLine(int core, uint64_t line, uint64_t now,
                                    bool* invalidation, uint32_t* extra_latency,
                                    bool* remote) {
  // L1 probe: the read-hit fast path is this one row scan plus a stamp.
  const size_t row1 = l1_.RowOf(core, line);
  const RowScan scan1 = ScanRow(l1_, row1, line);
  if (scan1.way >= 0) {
    const size_t slot1 = row1 + static_cast<uint32_t>(scan1.way);
    l1_.stamps[slot1] = now;
    if (!kWrite || (l1_.tags[slot1] & kPrivExclBit) != 0) {
      return ServedBy::kL1;  // read hit, or write hit on an owned line
    }
    const uint64_t set = L3SetOf(line);
    WriteUpgrade(core, line, set, FindL3Slot(set, line), scan1.way, -1);
    return ServedBy::kL1;
  }

  // L2 probe; the L1 scan above already produced the L1 fill candidates.
  const size_t row2 = l2_.RowOf(core, line);
  const RowScan scan2 = ScanRow(l2_, row2, line);
  if (scan2.way >= 0) {
    const size_t slot2 = row2 + static_cast<uint32_t>(scan2.way);
    l2_.stamps[slot2] = now;
    const bool exclusive = (l2_.tags[slot2] & kPrivExclBit) != 0;
    uint64_t victim = kNoLine;
    const uint32_t l1_way = FillAt(l1_, row1, scan1, line, now, &victim);
    if (victim != kNoLine) {
      HandlePrivateEviction(core, l2_, victim, now);
    }
    if (exclusive) {
      l1_.tags[row1 + l1_way] |= kPrivExclBit;
      return ServedBy::kL2;  // already sole modified owner, reads and writes alike
    }
    if (kWrite) {
      const uint64_t set = L3SetOf(line);
      WriteUpgrade(core, line, set, FindL3Slot(set, line),
                   static_cast<int64_t>(l1_way), scan2.way);
    }
    return ServedBy::kL2;
  }

  // Private miss: one L3 lattice scan yields the data way (if any), the
  // embedded directory state, and the fill candidates a promote needs.
  const uint64_t set = L3SetOf(line);
  const size_t set_base = set * l3_ways_;
  const L3Scan l3scan = ScanL3(set, line);
  int slot = l3scan.slot;
  WayMeta* meta = slot >= 0 ? MetaAt(set, slot) : nullptr;

  // Was the miss caused by a remote write invalidating our copy?
  if (meta != nullptr && ((meta->invalidated_from >> core) & 1u) != 0) {
    *invalidation = true;
    meta->invalidated_from &= ~(1ull << core);
  }

  const uint64_t others = meta != nullptr ? meta->sharers & ~(1ull << core) : 0;
  // Interconnect model: the accessor's socket vs. the serving agent's. A
  // cache-to-cache transfer is remote when the supplier core sits on
  // another socket; an L3 or DRAM fill is remote when the line's home slice
  // does (the memory controller lives with the home slice).
  const int my_socket = SocketOfCore(core);
  const bool remote_home = socket_mask_ != 0 && SocketOfShard(static_cast<uint32_t>(
                                                   line & shard_mask_)) != my_socket;
  ServedBy level;
  bool promote = true;  // every outcome but an L3 data hit fills a data way
  if (meta != nullptr && meta->owner >= 0 && meta->owner != core) {
    // Dirty in another core's cache: cache-to-cache transfer. The L3 picks
    // up the written-back data via the promote below.
    level = ServedBy::kForeignCache;
    const int owner = meta->owner;
    if (socket_mask_ != 0 && SocketOfCore(owner) != my_socket) {
      *extra_latency += config_.latency.interconnect;
      *remote = true;
    }
    meta->owner = -1;
    if (!kWrite) {
      // The owner keeps a shared, no-longer-exclusive copy. (On a write the
      // upgrade below invalidates the owner's copies outright, so clearing
      // their exclusive bits first would be wasted probes.) The directory's
      // level hints say which private rows can carry the bit at all, so
      // only those are probed.
      if ((meta->excl_levels & 1) != 0) {
        const size_t orow1 = l1_.RowOf(owner, line);
        const int ow1 = ProbeRow(l1_, orow1, line);
        if (ow1 >= 0) {
          l1_.tags[orow1 + static_cast<uint32_t>(ow1)] &= ~kPrivExclBit;
        }
      }
      if ((meta->excl_levels & 2) != 0) {
        const size_t orow2 = l2_.RowOf(owner, line);
        const int ow2 = ProbeRow(l2_, orow2, line);
        if (ow2 >= 0) {
          l2_.tags[orow2 + static_cast<uint32_t>(ow2)] &= ~kPrivExclBit;
        }
      }
    }
    meta->excl_levels = 0;
  } else if (slot >= 0 && static_cast<uint32_t>(slot) < l3_ways_ &&
             l3_tags_[set_base + slot] == line) {
    level = ServedBy::kL3;
    l3_stamps_[set_base + slot] = now;
    promote = false;
    if (remote_home) {
      *extra_latency += config_.latency.interconnect;
      *remote = true;
    }
  } else if (others != 0) {
    // Clean copy only in a sibling's private cache: cache-to-cache transfer.
    // The directory forwards from the lowest-numbered sharer.
    level = ServedBy::kForeignCache;
    const int supplier = __builtin_ctzll(others);
    if (socket_mask_ != 0 && SocketOfCore(supplier) != my_socket) {
      *extra_latency += config_.latency.interconnect;
      *remote = true;
    }
  } else {
    level = ServedBy::kDram;
    if (remote_home) {
      *extra_latency += config_.latency.interconnect;
      *remote = true;
    }
  }
  if (promote) {
    slot = PromoteToData(set, l3scan, line, now);
  }

  uint64_t victim = kNoLine;
  const uint32_t l2_way = FillAt(l2_, row2, scan2, line, now, &victim);
  if (victim != kNoLine) {
    HandlePrivateEviction(core, l1_, victim, now);
  }
  victim = kNoLine;
  const uint32_t l1_way = FillAt(l1_, row1, scan1, line, now, &victim);
  if (victim != kNoLine) {
    HandlePrivateEviction(core, l2_, victim, now);
  }

  // The victim handling above may have moved this line's tag within its set
  // (a dirty victim promoting into the same set can evict and demote our
  // data way), so re-find before touching the directory state.
  if (TagAt(set, slot) != line) {
    slot = FindL3Slot(set, line);
    if (slot < 0) {
      PushExt(set, line, now, WayMeta());
      slot = static_cast<int>(l3_ways_ + l3_ext_count_[set] - 1);
    }
  }
  MetaAt(set, slot)->sharers |= 1ull << core;

  if (kWrite) {
    WriteUpgrade(core, line, set, slot, static_cast<int64_t>(l1_way),
                 static_cast<int64_t>(l2_way));
  }
  return level;
}

template <bool kWrite>
AccessResult CacheHierarchy::AccessImpl(int core, Addr addr, uint32_t size, uint64_t now,
                                        StatStripe* scratch) {
  DPROF_DCHECK(core >= 0 && core < config_.num_cores);
  DPROF_DCHECK(size > 0);
  AccessResult result;
  const uint64_t first = addr >> line_shift_;
  const uint64_t last = (addr + size - 1) >> line_shift_;

  for (uint64_t line = first; line <= last; ++line) {
    bool invalidation = false;
    uint32_t extra_latency = 0;
    bool remote = false;
    const ServedBy level =
        AccessLine<kWrite>(core, line, now, &invalidation, &extra_latency, &remote);

    result.latency += config_.latency.Of(level) + extra_latency;
    result.level = std::max(result.level, level);
    result.l1_miss = result.l1_miss || level != ServedBy::kL1;
    result.invalidation = result.invalidation || invalidation;
    ++result.lines;

    StatStripe& stats = scratch != nullptr ? *scratch : StatsFor(core, line);
    ++stats.served[static_cast<int>(level)];
    if (invalidation) {
      ++stats.invalidation_misses;
    }
    if (remote) {
      ++stats.remote_fills;
    }
  }
  return result;
}

template AccessResult CacheHierarchy::AccessImpl<false>(int core, Addr addr, uint32_t size,
                                                        uint64_t now, StatStripe* scratch);
template AccessResult CacheHierarchy::AccessImpl<true>(int core, Addr addr, uint32_t size,
                                                       uint64_t now, StatStripe* scratch);

void CacheHierarchy::ApplyBatch(int core, uint64_t base, ApplyLane* lanes, size_t count) {
  if (count == 0) {
    return;
  }
  // Prime the pipeline: the first kPrefetchDepth accesses' rows start their
  // way toward the host caches before any of them resolves.
  const size_t lead = count < kPrefetchDepth ? count : kPrefetchDepth;
  for (size_t i = 0; i < lead; ++i) {
    PrefetchAccess(core, lanes[i].addr);
  }
  StatStripe scratch;
  for (size_t i = 0; i < count; ++i) {
    if (i + kPrefetchDepth < count) {
      PrefetchAccess(core, lanes[i + kPrefetchDepth].addr);
    }
    ApplyLane& lane = lanes[i];
    const uint32_t size = lane.size_w & ~ApplyLane::kWriteBit;
    const AccessResult r =
        (lane.size_w & ApplyLane::kWriteBit) != 0
            ? AccessImpl<true>(core, lane.addr, size, base + lane.t_delta, &scratch)
            : AccessImpl<false>(core, lane.addr, size, base + lane.t_delta, &scratch);
    lane.size_w = PackAccessResult(r.latency, r.level, r.invalidation);
  }
  // One flush per span. Under shard-parallel apply every line of the span
  // belongs to the calling worker's shard (see the header contract), so the
  // first line's stripe is never touched by a concurrent worker; observable
  // stats are per-core sums over stripes, so which stripe of the core
  // receives the counts is immaterial.
  StatStripe& out = StatsFor(core, lanes[0].addr >> line_shift_);
  for (int level = 0; level < 5; ++level) {
    out.served[level] += scratch.served[level];
  }
  out.invalidation_misses += scratch.invalidation_misses;
  out.remote_fills += scratch.remote_fills;
}

const CoreMemStats& CacheHierarchy::core_stats(int core) const {
  CoreMemStats& agg = agg_core_stats_[core];
  agg = CoreMemStats();
  const uint32_t shards = shard_mask_ + 1;
  for (uint32_t s = 0; s < shards; ++s) {
    const StatStripe& part = core_stats_[static_cast<uint64_t>(core) * shards + s];
    for (int i = 0; i < 5; ++i) {
      agg.served[i] += part.served[i];
    }
    agg.invalidation_misses += part.invalidation_misses;
    agg.remote_fills += part.remote_fills;
  }
  agg.l1_hits = agg.served[static_cast<int>(ServedBy::kL1)];
  agg.accesses = agg.l1_hits + agg.served[1] + agg.served[2] + agg.served[3] + agg.served[4];
  agg.l1_misses = agg.accesses - agg.l1_hits;
  return agg;
}

HierarchyTotals CacheHierarchy::Totals() const {
  HierarchyTotals totals;
  for (int c = 0; c < config_.num_cores; ++c) {
    const CoreMemStats& stats = core_stats(c);
    totals.accesses += stats.accesses;
    totals.l1_hits += stats.l1_hits;
    totals.l1_misses += stats.l1_misses;
    for (int i = 0; i < 5; ++i) {
      totals.served[i] += stats.served[i];
    }
    totals.invalidation_misses += stats.invalidation_misses;
    totals.remote_fills += stats.remote_fills;
  }
  totals.tag_reclaims = tag_reclaims();
  totals.back_invalidations = back_invalidations();
  totals.cross_socket_back_invalidations = cross_socket_back_invalidations();
  return totals;
}

uint64_t CacheHierarchy::tag_reclaims() const {
  uint64_t total = 0;
  for (const uint64_t n : reclaims_per_shard_) {
    total += n;
  }
  return total;
}

uint64_t CacheHierarchy::back_invalidations() const {
  uint64_t total = 0;
  for (const uint64_t n : backinv_per_shard_) {
    total += n;
  }
  return total;
}

uint64_t CacheHierarchy::cross_socket_back_invalidations() const {
  uint64_t total = 0;
  for (const uint64_t n : xsocket_backinv_per_shard_) {
    total += n;
  }
  return total;
}

uint64_t CacheHierarchy::remote_fills() const {
  uint64_t total = 0;
  for (const StatStripe& part : core_stats_) {
    total += part.remote_fills;
  }
  return total;
}

uint64_t CacheHierarchy::L3DataLines() const {
  uint64_t n = 0;
  for (uint64_t set = 0; set < l3_total_sets_; ++set) {
    const size_t base = set * l3_ways_;
    for (uint32_t w = 0; w < l3_ways_; ++w) {
      if (l3_tags_[base + w] < kDirOnlyBit) {
        ++n;
      }
    }
  }
  return n;
}

bool CacheHierarchy::L3HasTag(Addr addr) const {
  const uint64_t line = addr >> line_shift_;
  return FindL3Slot(L3SetOf(line), line) >= 0;
}

bool CacheHierarchy::InPrivateCache(int core, Addr addr) const {
  const uint64_t line = addr >> line_shift_;
  return ProbeRow(l1_, l1_.RowOf(core, line), line) >= 0 ||
         ProbeRow(l2_, l2_.RowOf(core, line), line) >= 0;
}

ServedBy CacheHierarchy::ProbeLevel(int core, Addr addr) const {
  const uint64_t line = addr >> line_shift_;
  if (ProbeRow(l1_, l1_.RowOf(core, line), line) >= 0) {
    return ServedBy::kL1;
  }
  if (ProbeRow(l2_, l2_.RowOf(core, line), line) >= 0) {
    return ServedBy::kL2;
  }
  const uint64_t set = L3SetOf(line);
  const int slot = FindL3Slot(set, line);
  const WayMeta* meta =
      slot >= 0 ? const_cast<CacheHierarchy*>(this)->MetaAt(set, slot) : nullptr;
  if (meta != nullptr && meta->owner >= 0 && meta->owner != core) {
    return ServedBy::kForeignCache;
  }
  if (slot >= 0 && static_cast<uint32_t>(slot) < l3_ways_ &&
      l3_tags_[set * l3_ways_ + slot] == line) {
    return ServedBy::kL3;
  }
  if (meta != nullptr && (meta->sharers & ~(1ull << core)) != 0) {
    return ServedBy::kForeignCache;
  }
  return ServedBy::kDram;
}

void CacheHierarchy::FlushAll() {
  std::fill(l1_.tags.begin(), l1_.tags.end(), kNoLine);
  std::fill(l1_.stamps.begin(), l1_.stamps.end(), 0);
  std::fill(l2_.tags.begin(), l2_.tags.end(), kNoLine);
  std::fill(l2_.stamps.begin(), l2_.stamps.end(), 0);
  std::fill(l3_tags_.begin(), l3_tags_.end(), kNoLine);
  std::fill(l3_stamps_.begin(), l3_stamps_.end(), 0);
  std::fill(l3_meta_.begin(), l3_meta_.end(), WayMeta());
  std::fill(l3_ext_tags_.begin(), l3_ext_tags_.end(), kNoLine);
  std::fill(l3_ext_stamps_.begin(), l3_ext_stamps_.end(), 0);
  std::fill(l3_ext_meta_.begin(), l3_ext_meta_.end(), WayMeta());
  std::fill(l3_ext_count_.begin(), l3_ext_count_.end(), 0);
  std::fill(l3_tag_count_.begin(), l3_tag_count_.end(), 0);
}

bool CacheHierarchy::InjectLatticeFault(int kind) {
  switch (kind) {
    case 0: {
      // Inclusion break: a private cache keeps its copy while the lattice
      // forgets the tag.
      for (int c = 0; c < config_.num_cores; ++c) {
        for (size_t i = 0; i < l1_.tags.size() / config_.num_cores; ++i) {
          const size_t slot = static_cast<size_t>(c) * l1_.sets * l1_.ways + i;
          const uint64_t tag = l1_.tags[slot];
          if (tag == kNoLine) {
            continue;
          }
          const uint64_t line = tag & kPrivTagMask;
          const uint64_t set = L3SetOf(line);
          const int l3slot = FindL3Slot(set, line);
          if (l3slot < 0) {
            continue;
          }
          if (static_cast<uint32_t>(l3slot) < l3_ways_) {
            l3_tags_[set * l3_ways_ + static_cast<uint32_t>(l3slot)] = kNoLine;
            l3_meta_[set * l3_ways_ + static_cast<uint32_t>(l3slot)] = WayMeta();
            l3_tag_count_[set] = static_cast<uint16_t>(l3_tag_count_[set] - 1);
          } else {
            RemoveExtAt(set, l3slot);
          }
          return true;
        }
      }
      return false;
    }
    case 1: {
      // Exclusive-bit inconsistency: forge the bit on a line the directory
      // does not credit to this core, or orphan a granted bit.
      for (int c = 0; c < config_.num_cores; ++c) {
        for (size_t i = 0; i < l1_.tags.size() / config_.num_cores; ++i) {
          const size_t slot = static_cast<size_t>(c) * l1_.sets * l1_.ways + i;
          const uint64_t tag = l1_.tags[slot];
          if (tag == kNoLine) {
            continue;
          }
          const uint64_t line = tag & kPrivTagMask;
          const int l3slot = FindL3Slot(L3SetOf(line), line);
          if (l3slot < 0) {
            continue;
          }
          WayMeta* meta = MetaAt(L3SetOf(line), l3slot);
          if ((tag & kPrivExclBit) == 0 && meta->owner != c) {
            l1_.tags[slot] = tag | kPrivExclBit;
            return true;
          }
          if ((tag & kPrivExclBit) != 0 && meta->owner == c) {
            meta->owner = -1;
            return true;
          }
        }
      }
      return false;
    }
    case 2: {
      // Tag-count bookkeeping skew. Decrementing (never incrementing) keeps
      // every tag scan in bounds while the audit's recount still disagrees.
      for (uint64_t set = 0; set < l3_total_sets_; ++set) {
        if (l3_tag_count_[set] > 0) {
          l3_tag_count_[set] = static_cast<uint16_t>(l3_tag_count_[set] - 1);
          return true;
        }
      }
      return false;
    }
    case 3: {
      // Sharer-set underflow: a live private holder loses its directory bit.
      for (int c = 0; c < config_.num_cores; ++c) {
        for (size_t i = 0; i < l1_.tags.size() / config_.num_cores; ++i) {
          const size_t slot = static_cast<size_t>(c) * l1_.sets * l1_.ways + i;
          const uint64_t tag = l1_.tags[slot];
          if (tag == kNoLine) {
            continue;
          }
          const uint64_t line = tag & kPrivTagMask;
          const int l3slot = FindL3Slot(L3SetOf(line), line);
          if (l3slot < 0) {
            continue;
          }
          WayMeta* meta = MetaAt(L3SetOf(line), l3slot);
          if ((meta->sharers >> c) & 1u) {
            meta->sharers &= ~(1ull << c);
            return true;
          }
        }
      }
      return false;
    }
    case 4: {
      // Duplicate lattice tag: the same line tagged in a data way and the
      // extension bank at once.
      for (uint64_t set = 0; set < l3_total_sets_; ++set) {
        if (l3_ext_count_[set] >= l3_ext_ways_) {
          continue;
        }
        const size_t set_base = set * l3_ways_;
        for (uint32_t w = 0; w < l3_ways_; ++w) {
          const uint64_t tag = l3_tags_[set_base + w];
          if (tag == kNoLine) {
            continue;
          }
          const size_t at = set * l3_ext_ways_ + l3_ext_count_[set];
          l3_ext_tags_[at] = tag & kTagMask;
          l3_ext_stamps_[at] = 0;
          l3_ext_meta_[at] = WayMeta();
          l3_ext_count_[set] = static_cast<uint16_t>(l3_ext_count_[set] + 1);
          return true;
        }
      }
      return false;
    }
    case 5: {
      // Owner outside the sharer set.
      for (uint64_t set = 0; set < l3_total_sets_; ++set) {
        const size_t set_base = set * l3_ways_;
        for (uint32_t w = 0; w < l3_ways_; ++w) {
          if (l3_tags_[set_base + w] == kNoLine || l3_meta_[set_base + w].sharers == 0) {
            continue;
          }
          WayMeta& meta = l3_meta_[set_base + w];
          int outside = -1;
          for (int c = 0; c < config_.num_cores; ++c) {
            if (((meta.sharers >> c) & 1u) == 0) {
              outside = c;
              break;
            }
          }
          if (outside >= 0) {
            meta.owner = static_cast<int8_t>(outside);
          } else {
            meta.owner = 0;
            meta.sharers &= ~1ull;
          }
          return true;
        }
      }
      return false;
    }
    case 6: {
      // Wrong-home line: duplicate a tagged line into a foreign socket's
      // slice (same low set bits, different slice). Only expressible on a
      // multi-socket topology.
      if (socket_mask_ == 0) {
        return false;
      }
      for (uint64_t set = 0; set < l3_total_sets_; ++set) {
        const size_t set_base = set * l3_ways_;
        for (uint32_t w = 0; w < l3_ways_; ++w) {
          const uint64_t tag = l3_tags_[set_base + w];
          if (tag == kNoLine) {
            continue;
          }
          const uint64_t line = tag & kTagMask;
          const uint64_t low = line & l3_set_mask_;
          const uint64_t home = set / l3_sets_;
          const uint64_t foreign = (home + 1) & socket_mask_;
          const uint64_t wrong_set = foreign * l3_sets_ + low;
          if (l3_ext_count_[wrong_set] >= l3_ext_ways_) {
            continue;
          }
          const size_t at = wrong_set * l3_ext_ways_ + l3_ext_count_[wrong_set];
          l3_ext_tags_[at] = line;
          l3_ext_stamps_[at] = 0;
          l3_ext_meta_[at] = WayMeta();
          l3_ext_count_[wrong_set] = static_cast<uint16_t>(l3_ext_count_[wrong_set] + 1);
          return true;
        }
      }
      return false;
    }
    default:
      return false;
  }
}

}  // namespace dprof
