// Multicore coherent cache hierarchy: private L1/L2 per core, shared L3,
// DRAM, and an MSI-style directory tracking which private caches hold each
// line and who last wrote it.
//
// This is the hardware substrate the paper ran on (a 16-core AMD machine).
// It supplies everything DProf observes through the PMU: the cache level that
// served each access, access latency, and (for the simulator-side ground
// truth used in tests) whether a miss was caused by a remote invalidation.

#ifndef DPROF_SRC_SIM_HIERARCHY_H_
#define DPROF_SRC_SIM_HIERARCHY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/sim/cache.h"
#include "src/util/types.h"

namespace dprof {

// Where a memory access was satisfied. Order matters: larger is slower.
enum class ServedBy : uint8_t {
  kL1 = 0,
  kL2 = 1,
  kL3 = 2,
  kForeignCache = 3,  // another core's private cache (modified or exclusive)
  kDram = 4,
};

const char* ServedByName(ServedBy level);

struct LatencyModel {
  uint32_t l1 = 3;
  uint32_t l2 = 14;
  uint32_t l3 = 50;
  uint32_t foreign = 200;
  uint32_t dram = 250;

  uint32_t Of(ServedBy level) const;
};

// Result of one (possibly multi-line) access.
struct AccessResult {
  uint32_t latency = 0;        // summed over all lines touched
  ServedBy level = ServedBy::kL1;  // slowest level among touched lines
  bool l1_miss = false;        // any line missed the local L1
  bool invalidation = false;   // any line miss caused by a remote write
  uint32_t lines = 0;          // number of cache lines spanned
};

struct HierarchyConfig {
  int num_cores = 16;
  CacheGeometry l1{32 * 1024, 64, 8};
  CacheGeometry l2{512 * 1024, 64, 16};
  CacheGeometry l3{16 * 1024 * 1024, 64, 16};
  LatencyModel latency;
};

// Per-core aggregate counters (ground truth, not what DProf sees).
struct CoreMemStats {
  uint64_t accesses = 0;
  uint64_t l1_hits = 0;
  uint64_t l1_misses = 0;
  uint64_t served[5] = {0, 0, 0, 0, 0};  // indexed by ServedBy
  uint64_t invalidation_misses = 0;
};

class CacheHierarchy {
 public:
  explicit CacheHierarchy(const HierarchyConfig& config);

  CacheHierarchy(const CacheHierarchy&) = delete;
  CacheHierarchy& operator=(const CacheHierarchy&) = delete;

  // Performs an access to [addr, addr + size) by `core` at time `now`.
  AccessResult Access(int core, Addr addr, uint32_t size, bool is_write, uint64_t now);

  const HierarchyConfig& config() const { return config_; }
  uint32_t line_size() const { return config_.l1.line_size; }

  // Introspection for tests and profilers.
  bool InPrivateCache(int core, Addr addr) const;
  ServedBy ProbeLevel(int core, Addr addr) const;  // level a read would hit now
  const CoreMemStats& core_stats(int core) const { return core_stats_[core]; }
  const Cache& l1(int core) const { return l1_[core]; }
  const Cache& l2(int core) const { return l2_[core]; }
  const Cache& l3() const { return l3_; }

  // Drops every cached line (used between benchmark phases).
  void FlushAll();

 private:
  struct DirEntry {
    uint32_t sharers = 0;           // cores whose private caches may hold the line
    int8_t modified_owner = -1;     // core with a dirty copy, or -1
    uint32_t invalidated_from = 0;  // cores that lost the line to a remote write
  };

  // Serves a single line access; returns its level and whether the private
  // miss was caused by an earlier remote invalidation.
  void AccessLine(int core, uint64_t line, bool is_write, uint64_t now, ServedBy* level,
                  bool* invalidation);

  // Removes `line` from core `c`'s private caches, updating the directory.
  void InvalidateFrom(int c, uint64_t line, DirEntry* entry);

  // Handles a victim evicted from one of core `c`'s private caches.
  void HandlePrivateEviction(int c, uint64_t victim, uint64_t now);

  HierarchyConfig config_;
  std::vector<Cache> l1_;
  std::vector<Cache> l2_;
  Cache l3_;
  std::unordered_map<uint64_t, DirEntry> dir_;
  std::vector<CoreMemStats> core_stats_;
};

}  // namespace dprof

#endif  // DPROF_SRC_SIM_HIERARCHY_H_
