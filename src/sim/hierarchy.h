// Multicore coherent cache hierarchy: private L1/L2 per core, a shared L3
// whose tag lattice embeds the MSI-style coherence directory, and DRAM.
//
// This is the hardware substrate the paper ran on (a 16-core AMD machine).
// It supplies everything DProf observes through the PMU: the cache level that
// served each access, access latency, and (for the simulator-side ground
// truth used in tests) whether a miss was caused by a remote invalidation.
//
// Layout: the access path is a flattened tag lattice, not a stack of cache
// objects. Private L1/L2 tags for all cores live in contiguous
// structure-of-arrays columns (tags / LRU stamps / exclusive bits), so one
// access is a slot-based walk: probe the core's L1 set row, then its L2 set
// row, then the line's L3 set — three bounded scans over packed tags with no
// hashing and no per-level object indirection.
//
// The L3 is an inclusive tag lattice with the coherence directory (sharers
// mask, modified owner, invalidated-from set) embedded in its way metadata.
// Each L3 set has `ways` data ways — which behave exactly like a classic
// N-way LRU data array — plus a compacted bank of directory-extension ways
// (`HierarchyConfig::l3_dir_ext_ways`, the hardware analogue of a snoop
// filter sized beyond the data array). A line whose data leaves the L3 (a
// capacity eviction, or a write upgrade making the L3 copy stale) keeps its
// tag and directory state in an extension way, so every line held by any
// private cache always has a lattice tag. The one inclusion obligation lives
// in a single place, ReclaimExtWay: when a set's extension bank overflows,
// the least-recently-stamped extension tag is dropped and every private copy
// it tracked is back-invalidated. tag_reclaims()/back_invalidations() count
// those events; the registered scenarios never trigger them, which is what
// makes the lattice's aggregate stats bit-identical to the unbounded
// hash-directory model this replaced.
//
// NUMA: with HierarchyConfig::num_sockets > 1 the machine carries one L3
// slice per socket — an independent set array, directory domain, and
// extension bank. A line's home slice is an address hash (the socket-count
// bits of its line number just below the shard width), so homes interleave
// in aligned blocks of home_block_bytes() and, crucially, every shard's
// lines share one home socket: the engine can hand whole sockets' worth of
// shards to one worker. Accesses served by a remote home slice, or by a
// supplier core on another socket (including the foreign-read downgrade),
// pay LatencyModel::interconnect per line and count as remote_fills;
// reclaim back-invalidations crossing a socket boundary count as
// cross_socket_back_invalidations. num_sockets == 1 degenerates to the flat
// SMP exactly.
//
// Sharding: every piece of hierarchy state — the L1/L2 set rows, and the L3
// sets with their embedded directory — partitions by the low bits of the
// line number, and the shard width divides every level's set count, so the
// shard partition agrees with (refines into) the L3 set partition: a shard
// worker owns whole L3 sets, including their directory state. Victims of an
// eviction and back-invalidation targets share their evictor's set, hence
// its shard. num_shards() reports the partition width; the parallel engine
// drives one commit worker per shard, and two accesses whose lines fall in
// different shards may be applied concurrently.

#ifndef DPROF_SRC_SIM_HIERARCHY_H_
#define DPROF_SRC_SIM_HIERARCHY_H_

#include <cstdint>
#include <vector>

#include "src/sim/cache.h"
#include "src/util/types.h"

namespace dprof {

// Where a memory access was satisfied. Order matters: larger is slower.
enum class ServedBy : uint8_t {
  kL1 = 0,
  kL2 = 1,
  kL3 = 2,
  kForeignCache = 3,  // another core's private cache (modified or exclusive)
  kDram = 4,
};

const char* ServedByName(ServedBy level);

struct LatencyModel {
  uint32_t l1 = 3;
  uint32_t l2 = 14;
  uint32_t l3 = 50;
  uint32_t foreign = 200;
  uint32_t dram = 250;
  // Added once per line when the serving agent sits on another socket: an
  // L3/DRAM fill whose home slice is remote, or a cache-to-cache transfer
  // (including the foreign-read downgrade) whose supplier core is remote.
  // Never charged on single-socket machines.
  uint32_t interconnect = 100;

  uint32_t Of(ServedBy level) const;
};

// Result of one (possibly multi-line) access.
struct AccessResult {
  uint32_t latency = 0;        // summed over all lines touched
  ServedBy level = ServedBy::kL1;  // slowest level among touched lines
  bool l1_miss = false;        // any line missed the local L1
  bool invalidation = false;   // any line miss caused by a remote write
  uint32_t lines = 0;          // number of cache lines spanned
};

// Packed form of an AccessResult: latency (24 bits) | level (3) |
// invalidation (1). The batch-apply interface below writes it, and the
// engine's lane records (CoreRecorder in src/machine/machine.h) carry the
// same layout; simulated latencies are a few hundred cycles, so 24 bits
// leaves three orders of magnitude of headroom.
inline uint32_t PackAccessResult(uint32_t latency, ServedBy level, bool invalidation) {
  return latency | (static_cast<uint32_t>(level) << 24) |
         (static_cast<uint32_t>(invalidation) << 27);
}
inline uint32_t PackedAccessLatency(uint32_t packed) { return packed & 0x00ff'ffffu; }
inline ServedBy PackedAccessLevel(uint32_t packed) {
  return static_cast<ServedBy>((packed >> 24) & 0x7u);
}
inline bool PackedAccessInvalidation(uint32_t packed) {
  return ((packed >> 27) & 1u) != 0;
}

// One access of a batch-apply span: the compact 16-byte record the engine
// streams accesses through (its record-elision rings use exactly this
// layout, so an elided stream is applied in place). `size_w` carries
// size | kWriteBit on entry and the packed AccessResult on return.
struct ApplyLane {
  static constexpr uint32_t kWriteBit = 0x8000'0000u;

  Addr addr;
  uint32_t t_delta;  // access time = span base + t_delta
  uint32_t size_w;   // in: size | write bit; out: PackAccessResult(...)
};
static_assert(sizeof(ApplyLane) == 16, "spans are streamed as 16-byte records");

struct HierarchyConfig {
  int num_cores = 16;
  // NUMA sockets (power of two, divides num_cores). Cores are block-assigned
  // (core c sits on socket c / (num_cores / num_sockets)); the `l3` geometry
  // below describes ONE per-socket slice, so the machine carries num_sockets
  // independent slices, each with its own directory domain and extension
  // bank. Lines are homed by address hash: the two (for 4 sockets) line bits
  // just below the shard width pick the slice, so homes interleave in
  // aligned blocks of 2^(shard_bits - socket_bits) lines and every shard's
  // lines share one home socket. num_sockets == 1 is the flat SMP the
  // pre-NUMA model simulated, bit for bit.
  int num_sockets = 1;
  CacheGeometry l1{32 * 1024, 64, 8};
  CacheGeometry l2{512 * 1024, 64, 16};
  CacheGeometry l3{16 * 1024 * 1024, 64, 16};
  // Directory-extension ways per L3 set: tags whose data left the L3 keep
  // their directory state here. Overflow is the inclusion obligation (the
  // oldest extension tag is reclaimed and its private copies
  // back-invalidated); sized so registered workloads never overflow.
  uint32_t l3_dir_ext_ways = 32;
  LatencyModel latency;
};

// Per-core aggregate counters (ground truth, not what DProf sees).
struct CoreMemStats {
  uint64_t accesses = 0;
  uint64_t l1_hits = 0;
  uint64_t l1_misses = 0;
  uint64_t served[5] = {0, 0, 0, 0, 0};  // indexed by ServedBy
  uint64_t invalidation_misses = 0;
  // Lines served across the interconnect (remote home slice or remote
  // supplier core). Always zero on single-socket machines.
  uint64_t remote_fills = 0;
};

// CoreMemStats summed over all cores, plus the lattice's inclusion-
// obligation counters: the simulator-side ground truth fingerprint of a run
// (stats-equivalence tests, `dprof run --json`'s "hierarchy" block).
struct HierarchyTotals {
  uint64_t accesses = 0;
  uint64_t l1_hits = 0;
  uint64_t l1_misses = 0;
  uint64_t served[5] = {0, 0, 0, 0, 0};
  uint64_t invalidation_misses = 0;
  uint64_t tag_reclaims = 0;
  uint64_t back_invalidations = 0;
  // NUMA interconnect traffic: lines served across sockets, and reclaim
  // back-invalidations whose victim core sat on a different socket than the
  // line's home slice. Both zero on single-socket machines.
  uint64_t remote_fills = 0;
  uint64_t cross_socket_back_invalidations = 0;
};

class CacheHierarchy {
 public:
  explicit CacheHierarchy(const HierarchyConfig& config);

  CacheHierarchy(const CacheHierarchy&) = delete;
  CacheHierarchy& operator=(const CacheHierarchy&) = delete;

  // Performs an access to [addr, addr + size) by `core` at time `now`.
  // The write-ness of an access is a template parameter so the read path —
  // the overwhelmingly common case — compiles to a single predictable probe
  // with no ownership checks.
  template <bool kWrite>
  AccessResult Access(int core, Addr addr, uint32_t size, uint64_t now) {
    return AccessImpl<kWrite>(core, addr, size, now, nullptr);
  }

  // Runtime-dispatch form for callers that carry the write bit in data.
  AccessResult Access(int core, Addr addr, uint32_t size, bool is_write, uint64_t now) {
    return is_write ? Access<true>(core, addr, size, now)
                    : Access<false>(core, addr, size, now);
  }

  // Software-pipelined batch apply: resolves `count` accesses by `core` in
  // order (access i happens at base + lanes[i].t_delta) and writes each
  // packed result into lanes[i].size_w. While resolving access i it issues
  // host prefetches for the L1/L2 tag rows and the L3 set/directory rows of
  // access i + kPrefetchDepth, so a span of random addresses overlaps its
  // host cache misses on the tag columns instead of serializing them; the
  // per-access stat counters accumulate in a span-local scratch stripe and
  // flush once per span. State effects and results are exactly those of
  // `count` sequential Access calls. Concurrency contract: when spans are
  // applied from concurrent shard workers, every line of a span must belong
  // to the calling worker's shard (the engine's per-shard drains satisfy
  // this by construction); single-threaded callers may span shards freely.
  void ApplyBatch(int core, uint64_t base, ApplyLane* lanes, size_t count);

  // Prefetch distance of ApplyBatch: far enough ahead to cover a host DRAM
  // miss at a few ns per simulated access, short enough that the prefetched
  // rows are still resident when their access resolves.
  static constexpr size_t kPrefetchDepth = 8;

  const HierarchyConfig& config() const { return config_; }
  uint32_t line_size() const { return config_.l1.line_size; }

  // Width of the line-number partition (power of two). Accesses to lines in
  // different shards touch disjoint state; the width divides every level's
  // set count, so a shard owns whole L3 sets (and their embedded directory).
  uint32_t num_shards() const { return shard_mask_ + 1; }
  uint32_t ShardOf(Addr addr) const {
    return static_cast<uint32_t>((addr >> line_shift_) & shard_mask_);
  }

  // NUMA topology. Home-socket bits sit inside the shard width, so every
  // shard's lines share one home slice and the engine can schedule whole
  // sockets' worth of shards onto one worker (SocketOfShard).
  int num_sockets() const { return static_cast<int>(socket_mask_ + 1); }
  int SocketOfCore(int core) const { return core / cores_per_socket_; }
  int SocketOfShard(uint32_t shard) const {
    return static_cast<int>((shard >> home_shift_) & socket_mask_);
  }
  int HomeSocketOf(Addr addr) const {
    return static_cast<int>(((addr >> line_shift_) >> home_shift_) & socket_mask_);
  }
  // Granularity of home interleaving: addresses inside one aligned block of
  // this many bytes share a home socket, and consecutive blocks cycle the
  // sockets in order (block index modulo num_sockets). The slab allocator's
  // socket-aware pin_home placement carves object runs from these blocks.
  uint64_t home_block_bytes() const { return 1ull << (line_shift_ + home_shift_); }

  // Introspection for tests and profilers.
  bool InPrivateCache(int core, Addr addr) const;
  ServedBy ProbeLevel(int core, Addr addr) const;  // level a read would hit now
  const CoreMemStats& core_stats(int core) const;
  HierarchyTotals Totals() const;

  // Inclusion-obligation ground truth: lattice tags reclaimed from
  // overflowing extension banks, and private-cache copies those reclaims
  // back-invalidated. Zero on every registered scenario (the
  // stats-equivalence envelope).
  uint64_t tag_reclaims() const;
  uint64_t back_invalidations() const;
  // NUMA interconnect ground truth: lines served across sockets, and
  // reclaim back-invalidations that crossed a socket boundary.
  uint64_t remote_fills() const;
  uint64_t cross_socket_back_invalidations() const;

  // Lattice introspection for tests: number of L3 data ways in use, and
  // whether `addr`'s line holds any lattice tag (data or extension).
  uint64_t L3DataLines() const;
  bool L3HasTag(Addr addr) const;

  // Drops every cached line and all embedded directory state (used between
  // benchmark phases). Counters survive.
  void FlushAll();

  // Deliberately corrupts one lattice invariant, for the fault-injection
  // harness: every kind below produces a state the InvariantAuditor is
  // guaranteed to flag (the audit detection contract is pinned by
  // faults_test). Returns false when the lattice holds no suitable target
  // (e.g. it is empty); the caller tries another kind.
  //   0: drop the lattice tag of a line a private cache still holds
  //      (inclusion violation)
  //   1: forge or orphan a private exclusive bit (owner mismatch)
  //   2: skew a set's l3_tag_count_ bookkeeping
  //   3: clear the directory sharer bit of a live private holder
  //   4: duplicate a data tag into the extension bank
  //   5: point a directory owner at a core outside its sharer set
  //   6: materialize a line's tag in a foreign socket's L3 slice (wrong-home
  //      line; injectable only when num_sockets > 1)
  static constexpr int kNumLatticeFaultKinds = 7;
  bool InjectLatticeFault(int kind);

 private:
  friend class InvariantAuditor;
  // Pulls the tag/stamp rows an access to `addr` will walk toward the host
  // caches: the issuing core's L1 and L2 set rows and the line's L3 set row
  // (both halves of the 16-way tag rows; the stamp rows ride along because
  // every hit stamps recency). Used by ApplyBatch's lookahead.
  // Starts the L1/L2 tag rows of (core, line) toward the host caches.
  // An extension-bank reclaim back-invalidates every sharer of the
  // reclaimed tag in turn; issuing all sharers' row prefetches before the
  // first serialized probe overlaps their fetches. (The hot write-upgrade
  // path deliberately does not do this: measured on the reference host,
  // the extra prefetch instructions cost more than the overlap buys when
  // the victims' rows are already cache-resident.)
  void PrefetchPrivateRows(int core, uint64_t line) const {
    __builtin_prefetch(l1_.tags.data() + l1_.RowOf(core, line));
    __builtin_prefetch(l2_.tags.data() + l2_.RowOf(core, line));
  }

  void PrefetchAccess(int core, Addr addr) const {
#if DPROF_DISABLE_PREFETCH
    (void)core; (void)addr;
#else
    const uint64_t line = addr >> line_shift_;
    const size_t row1 = l1_.RowOf(core, line);
    __builtin_prefetch(l1_.tags.data() + row1);
    __builtin_prefetch(l1_.stamps.data() + row1, 1);
    const size_t row2 = l2_.RowOf(core, line);
    __builtin_prefetch(l2_.tags.data() + row2);
    __builtin_prefetch(l2_.stamps.data() + row2, 1);
    const size_t l3_base = L3SetOf(line) * l3_ways_;
    __builtin_prefetch(l3_tags_.data() + l3_base);
    if (l3_ways_ > 8) {  // second host line of a 16-way tag row
      __builtin_prefetch(l3_tags_.data() + l3_base + 8);
    }
    __builtin_prefetch(l3_stamps_.data() + l3_base, 1);
#endif
  }
  static constexpr uint64_t kNoLine = ~0ull;
  // Exclusive-owner bit packed into private (L1/L2) tag words: the line is
  // held by this core as sole modified owner, so write hits skip the
  // directory. Packing it into the tag removes the separate exclusive-bit
  // column the walk used to touch — write upgrades and the foreign-read
  // downgrade or/and-not the bit in the tag word the probe already loaded.
  // Line numbers are < 2^58 and kNoLine keeps the bit set, so masked
  // compares below never collide.
  static constexpr uint64_t kPrivExclBit = 1ull << 62;
  static constexpr uint64_t kPrivTagMask = kPrivExclBit - 1;
  // High tag bit marking an in-place dir-only residue in a data way: the
  // line's data left the L3 (write upgrade), but its tag and embedded
  // directory state stay put. Such a way reads as free to fills — exactly
  // the way the classic model would have left invalid — and the residue is
  // displaced into the extension bank only when a fill claims the way.
  // Line numbers are < 2^58, so the bit never collides (kNoLine has it set,
  // which makes "free way" a single unsigned compare).
  static constexpr uint64_t kDirOnlyBit = 1ull << 63;
  static constexpr uint64_t kTagMask = kDirOnlyBit - 1;

  // One private cache level (L1 or L2) for all cores, SoA: a core's set row
  // is `ways` contiguous tags.
  struct Level {
    uint32_t ways = 0;
    uint64_t sets = 0;
    uint64_t set_mask = 0;
    // [core][set][way]; kNoLine = invalid. A valid tag may carry
    // kPrivExclBit (sole modified owner).
    std::vector<uint64_t> tags;
    std::vector<uint64_t> stamps;  // LRU stamp per way

    void Init(const CacheGeometry& geometry, int num_cores);
    size_t RowOf(int core, uint64_t line) const {
      return (static_cast<uint64_t>(core) * sets + (line & set_mask)) * ways;
    }
  };

  // Directory metadata embedded in every L3 lattice way. The core masks are
  // 64 bits wide to match Engine::kMaxCores.
  struct WayMeta {
    uint64_t sharers = 0;           // cores whose private caches may hold the line
    uint64_t invalidated_from = 0;  // cores that lost the line to a remote write
    int8_t owner = -1;              // core with a dirty copy, or -1
    // Level-presence hint for the owner's exclusive grant: bit 0 = the
    // owner's L1 may carry kPrivExclBit, bit 1 = its L2 may. Granting L2
    // sets both bits (an exclusive L2 silently propagates its bit to an L1
    // refill, with no directory access), so a clear bit guarantees that
    // level holds no exclusive tag — the foreign-read downgrade skips its
    // probe. Fits the struct's padding bytes.
    uint8_t excl_levels = 0;

    bool HasState() const {
      return sharers != 0 || invalidated_from != 0 || owner >= 0;
    }
  };

  // Result of one fused probe+fill scan over a private set row: the
  // matching way (probe), or the first invalid way when there is no match —
  // one tag-only walk serves both, and LRU stamps are read only when a full
  // row forces an eviction (inside FillAt).
  struct RowScan {
    int way = -1;   // matching way, or -1
    int free = -1;  // first invalid way (miss only)
  };
  // Same for an L3 set: the matching slot (data or extension), plus the
  // free data way. When the match is a data way the scan returns early and
  // free_data is unset — no caller needs it then.
  struct L3Scan {
    int slot = -1;
    int free_data = -1;
  };

  static RowScan ScanRow(const Level& level, size_t row, uint64_t line);
  // Fills `line` using the candidates of a missing ScanRow. Returns the way
  // index; *victim receives the evicted line or kNoLine.
  static uint32_t FillAt(Level& level, size_t row, const RowScan& scan, uint64_t line,
                         uint64_t now, uint64_t* victim);

  // Slot of `line` within L3 set `set` (data ways then live extension
  // ways), as an offset from the set base; -1 if the lattice has no tag.
  int FindL3Slot(uint64_t set, uint64_t line) const;
  L3Scan ScanL3(uint64_t set, uint64_t line) const;

  // Serves a single line access. Returns the level; sets *invalidation, and
  // *extra_latency gains the interconnect penalty when the serving agent sat
  // on another socket (sets *remote alongside).
  template <bool kWrite>
  ServedBy AccessLine(int core, uint64_t line, uint64_t now, bool* invalidation,
                      uint32_t* extra_latency, bool* remote);

  // Home slice's global L3 set of `line`: the home socket picks the slice,
  // the line's set bits pick the set within it. Degenerates to the flat
  // `line & l3_set_mask_` when num_sockets == 1 (socket_mask_ == 0).
  uint64_t L3SetOf(uint64_t line) const {
    return ((line >> home_shift_) & socket_mask_) * l3_sets_ + (line & l3_set_mask_);
  }


  // Ensures `line` occupies an L3 data way (stamp = now), preserving its
  // directory state; mirrors a classic LRU insert on the data ways and
  // demotes an evicted victim's tag into the extension bank. Returns the
  // line's data-way slot offset.
  int PromoteToData(uint64_t set, const L3Scan& scan, uint64_t line, uint64_t now);

  // Appends a tag to the set's extension bank, reclaiming the oldest
  // extension tag first if the bank is full.
  void PushExt(uint64_t set, uint64_t line, uint64_t stamp, WayMeta meta);
  // Drops live extension way `slot`, compacting the bank.
  void RemoveExtAt(uint64_t set, int slot);

  // LRU over a full bank of data ways (stamp pass, first index wins ties).
  int LruDataWay(size_t set_base) const;

  // Directory metadata of unified slot `slot` (data way or ways+ext index).
  WayMeta* MetaAt(uint64_t set, int slot) {
    return static_cast<uint32_t>(slot) < l3_ways_
               ? &l3_meta_[set * l3_ways_ + static_cast<uint32_t>(slot)]
               : &l3_ext_meta_[set * l3_ext_ways_ +
                               (static_cast<uint32_t>(slot) - l3_ways_)];
  }
  // Raw tag at unified slot `slot` (data tags may carry kDirOnlyBit).
  uint64_t TagAt(uint64_t set, int slot) const {
    return static_cast<uint32_t>(slot) < l3_ways_
               ? l3_tags_[set * l3_ways_ + static_cast<uint32_t>(slot)]
               : l3_ext_tags_[set * l3_ext_ways_ +
                              (static_cast<uint32_t>(slot) - l3_ways_)];
  }

  // THE inclusion obligation: drops the least-recently-stamped extension tag
  // of the set and back-invalidates every private copy it tracked.
  void ReclaimExtWay(uint64_t set);

  // Grants `core` exclusive-modified ownership of a line it already holds in
  // its private caches: invalidates other sharers, demotes the (now stale)
  // L3 data copy, and sets the private exclusive bits. `l1_way`/`l2_way` are
  // the line's way slots when the caller knows them (-1 probes L2 by line).
  void WriteUpgrade(int core, uint64_t line, uint64_t set, int slot, int64_t l1_way,
                    int64_t l2_way);

  // Removes `line` from core `c`'s private caches, updating `meta`.
  void InvalidateFrom(int c, uint64_t line, WayMeta* meta);

  // Handles a victim evicted from one of core `c`'s private caches; `other`
  // is the private level that might still hold it.
  void HandlePrivateEviction(int c, const Level& other, uint64_t victim, uint64_t now);

  // Way index of `line` in the row, or -1.
  static int ProbeRow(const Level& level, size_t row, uint64_t line);
  static void RemoveAt(Level& level, size_t slot);

  // Striped counter cell: only the five served-level counts and the
  // invalidation count are stored; accesses / l1_hits / l1_misses are
  // derived sums, so the hot path does one indexed increment instead of
  // three stores into a wider struct.
  struct StatStripe {
    uint64_t served[5] = {0, 0, 0, 0, 0};
    uint64_t invalidation_misses = 0;
    uint64_t remote_fills = 0;
  };

  StatStripe& StatsFor(int core, uint64_t line) {
    return core_stats_[static_cast<uint64_t>(core) * (shard_mask_ + 1) + (line & shard_mask_)];
  }

  // Shared implementation of Access and ApplyBatch: with a scratch stripe,
  // per-line stat counts accumulate there (the batch path flushes once per
  // span) instead of read-modify-writing the striped counters per line.
  template <bool kWrite>
  AccessResult AccessImpl(int core, Addr addr, uint32_t size, uint64_t now,
                          StatStripe* scratch);

  HierarchyConfig config_;
  uint32_t shard_mask_ = 0;  // num_shards-1
  uint32_t line_shift_ = 6;  // log2(line size); lines are power-of-two sized
  // Socket topology: home bits sit at [home_shift_, home_shift_+socket_bits)
  // of the line number, inside the shard width. All zero-width (mask 0,
  // shift = shard bits) on single-socket machines.
  uint32_t socket_mask_ = 0;       // num_sockets - 1
  uint32_t home_shift_ = 0;        // shard bits - socket bits
  int cores_per_socket_ = 1;

  Level l1_;
  Level l2_;

  // The L3 tag lattice. Data ways are dense per-set rows (`l3_ways_` tags,
  // one or two host cache lines) — the hot scans touch only these. The
  // compacted extension bank lives in separate side arrays (`l3_ext_ways_`
  // slots per set, the first `l3_ext_count_[set]` live), touched only when
  // a tag actually moves out of the data row. A unified slot index
  // addresses both: data way w, or l3_ways_ + ext index.
  uint32_t l3_ways_ = 0;
  uint32_t l3_ext_ways_ = 0;
  uint64_t l3_sets_ = 0;        // sets per slice (config.l3 geometry)
  uint64_t l3_total_sets_ = 0;  // l3_sets_ * num_sockets: all slices' sets
  uint64_t l3_set_mask_ = 0;    // within-slice set mask
  std::vector<uint64_t> l3_tags_;
  std::vector<uint64_t> l3_stamps_;
  std::vector<WayMeta> l3_meta_;
  std::vector<uint64_t> l3_ext_tags_;
  std::vector<uint64_t> l3_ext_stamps_;
  std::vector<WayMeta> l3_ext_meta_;
  std::vector<uint16_t> l3_ext_count_;
  std::vector<uint16_t> l3_tag_count_;  // tagged data ways per set (valid + residue)

  std::vector<StatStripe> core_stats_;  // striped: [core * num_shards + shard]
  mutable std::vector<CoreMemStats> agg_core_stats_;  // cache for core_stats()
  // Inclusion counters, striped by shard so concurrent apply workers (which
  // own disjoint shards) never write the same slot.
  std::vector<uint64_t> reclaims_per_shard_;
  std::vector<uint64_t> backinv_per_shard_;
  std::vector<uint64_t> xsocket_backinv_per_shard_;
};

}  // namespace dprof

#endif  // DPROF_SRC_SIM_HIERARCHY_H_
