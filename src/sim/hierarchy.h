// Multicore coherent cache hierarchy: private L1/L2 per core, shared L3,
// DRAM, and an MSI-style directory tracking which private caches hold each
// line and who last wrote it.
//
// This is the hardware substrate the paper ran on (a 16-core AMD machine).
// It supplies everything DProf observes through the PMU: the cache level that
// served each access, access latency, and (for the simulator-side ground
// truth used in tests) whether a miss was caused by a remote invalidation.
//
// Sharding: every piece of hierarchy state — the L1/L2/L3 associativity sets,
// the directory, and the striped counters — partitions cleanly by the low
// bits of the line number (victims of an eviction share their evictor's set,
// hence its shard). num_shards() reports the partition width; the parallel
// engine drives one commit worker per shard, and two accesses whose lines
// fall in different shards may be applied concurrently.

#ifndef DPROF_SRC_SIM_HIERARCHY_H_
#define DPROF_SRC_SIM_HIERARCHY_H_

#include <cstdint>
#include <vector>

#include "src/sim/cache.h"
#include "src/util/types.h"

namespace dprof {

// Where a memory access was satisfied. Order matters: larger is slower.
enum class ServedBy : uint8_t {
  kL1 = 0,
  kL2 = 1,
  kL3 = 2,
  kForeignCache = 3,  // another core's private cache (modified or exclusive)
  kDram = 4,
};

const char* ServedByName(ServedBy level);

struct LatencyModel {
  uint32_t l1 = 3;
  uint32_t l2 = 14;
  uint32_t l3 = 50;
  uint32_t foreign = 200;
  uint32_t dram = 250;

  uint32_t Of(ServedBy level) const;
};

// Result of one (possibly multi-line) access.
struct AccessResult {
  uint32_t latency = 0;        // summed over all lines touched
  ServedBy level = ServedBy::kL1;  // slowest level among touched lines
  bool l1_miss = false;        // any line missed the local L1
  bool invalidation = false;   // any line miss caused by a remote write
  uint32_t lines = 0;          // number of cache lines spanned
};

struct HierarchyConfig {
  int num_cores = 16;
  CacheGeometry l1{32 * 1024, 64, 8};
  CacheGeometry l2{512 * 1024, 64, 16};
  CacheGeometry l3{16 * 1024 * 1024, 64, 16};
  LatencyModel latency;
};

// Per-core aggregate counters (ground truth, not what DProf sees).
struct CoreMemStats {
  uint64_t accesses = 0;
  uint64_t l1_hits = 0;
  uint64_t l1_misses = 0;
  uint64_t served[5] = {0, 0, 0, 0, 0};  // indexed by ServedBy
  uint64_t invalidation_misses = 0;
};

class CacheHierarchy {
 public:
  explicit CacheHierarchy(const HierarchyConfig& config);

  CacheHierarchy(const CacheHierarchy&) = delete;
  CacheHierarchy& operator=(const CacheHierarchy&) = delete;

  // Performs an access to [addr, addr + size) by `core` at time `now`.
  AccessResult Access(int core, Addr addr, uint32_t size, bool is_write, uint64_t now);

  const HierarchyConfig& config() const { return config_; }
  uint32_t line_size() const { return config_.l1.line_size; }

  // Width of the line-number partition (power of two). Accesses to lines in
  // different shards touch disjoint state.
  uint32_t num_shards() const { return shard_mask_ + 1; }
  uint32_t ShardOf(Addr addr) const {
    return static_cast<uint32_t>((addr >> line_shift_) & shard_mask_);
  }

  // Introspection for tests and profilers.
  bool InPrivateCache(int core, Addr addr) const;
  ServedBy ProbeLevel(int core, Addr addr) const;  // level a read would hit now
  const CoreMemStats& core_stats(int core) const;
  const Cache& l1(int core) const { return l1_[core]; }
  const Cache& l2(int core) const { return l2_[core]; }
  const Cache& l3() const { return l3_; }

  // Drops every cached line (used between benchmark phases).
  void FlushAll();

 private:
  struct DirEntry {
    uint32_t sharers = 0;           // cores whose private caches may hold the line
    uint32_t invalidated_from = 0;  // cores that lost the line to a remote write
    int8_t modified_owner = -1;     // core with a dirty copy, or -1
  };

  // One open-addressing hash shard of the directory. Entries are never
  // erased (only FlushAll clears), so lookups need no tombstone handling.
  class DirShard {
   public:
    DirShard() { Reset(); }

    DirEntry* Find(uint64_t line);
    const DirEntry* Find(uint64_t line) const;
    DirEntry& GetOrCreate(uint64_t line);
    void Reset();

   private:
    struct Slot {
      uint64_t line;
      DirEntry entry;
    };
    static constexpr uint64_t kEmpty = ~0ull;

    void Grow();

    std::vector<Slot> slots_;
    uint64_t mask_ = 0;
    uint64_t used_ = 0;
  };

  DirShard& ShardFor(uint64_t line) { return dir_[line & shard_mask_]; }
  const DirShard& ShardFor(uint64_t line) const { return dir_[line & shard_mask_]; }

  // Serves a single line access; returns its level and whether the private
  // miss was caused by an earlier remote invalidation.
  void AccessLine(int core, uint64_t line, bool is_write, uint64_t now, ServedBy* level,
                  bool* invalidation);

  // Grants `core` exclusive-modified ownership of a line it already holds
  // in its private caches. Slots are the line's L1/L2 slots when the caller
  // knows them (-1 falls back to a by-line scan for L2, no-op for L1).
  void WriteUpgrade(int core, uint64_t line, DirEntry& entry, int64_t l1_slot,
                    int64_t l2_slot);

  // Removes `line` from core `c`'s private caches, updating the directory.
  void InvalidateFrom(int c, uint64_t line, DirEntry* entry);

  // Handles a victim evicted from one of core `c`'s private caches.
  void HandlePrivateEviction(int c, uint64_t victim, uint64_t now);

  CoreMemStats& StatsFor(int core, uint64_t line) {
    return core_stats_[static_cast<uint64_t>(core) * (shard_mask_ + 1) + (line & shard_mask_)];
  }

  HierarchyConfig config_;
  uint32_t shard_mask_ = 0;  // num_shards-1
  uint32_t line_shift_ = 6;  // log2(line size); lines are power-of-two sized
  std::vector<Cache> l1_;
  std::vector<Cache> l2_;
  Cache l3_;
  std::vector<DirShard> dir_;
  std::vector<CoreMemStats> core_stats_;  // striped: [core * num_shards + shard]
  mutable std::vector<CoreMemStats> agg_core_stats_;  // cache for core_stats()
};

}  // namespace dprof

#endif  // DPROF_SRC_SIM_HIERARCHY_H_
