#include "src/sim/audit.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace dprof {

namespace {

struct Reporter {
  AuditResult* result;

  void operator()(const char* fmt, ...) {
    ++result->total_violations;
    if (result->violations.size() >= InvariantAuditor::kMaxMessages) {
      return;
    }
    char buf[256];
    va_list args;
    va_start(args, fmt);
    vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    result->violations.emplace_back(buf);
  }
};

}  // namespace

AuditResult InvariantAuditor::Audit() const {
  // Private names of the audited class, usable here by friendship.
  using Level = CacheHierarchy::Level;
  using WayMeta = CacheHierarchy::WayMeta;
  constexpr uint64_t kNoLine = CacheHierarchy::kNoLine;
  constexpr uint64_t kTagMask = CacheHierarchy::kTagMask;
  constexpr uint64_t kDirOnlyBit = CacheHierarchy::kDirOnlyBit;
  constexpr uint64_t kPrivTagMask = CacheHierarchy::kPrivTagMask;
  constexpr uint64_t kPrivExclBit = CacheHierarchy::kPrivExclBit;

  const CacheHierarchy& h = *hierarchy_;
  AuditResult result;
  Reporter violate{&result};
  const int num_cores = h.config_.num_cores;
  const uint64_t core_mask =
      num_cores >= 64 ? ~0ull : ((1ull << num_cores) - 1ull);

  // The audit trusts nothing derived: lattice lookups rescan every data way
  // and every extension slot instead of going through FindL3Slot, whose
  // early exits lean on the per-set tag count the audit is itself verifying.
  const auto find_slot = [&](uint64_t set, uint64_t line) -> int {
    const size_t set_base = set * h.l3_ways_;
    for (uint32_t w = 0; w < h.l3_ways_; ++w) {
      const uint64_t tag = h.l3_tags_[set_base + w];
      if (tag != kNoLine && (tag & kTagMask) == line) {
        return static_cast<int>(w);
      }
    }
    const size_t ext_base = set * h.l3_ext_ways_;
    for (uint32_t i = 0; i < h.l3_ext_ways_; ++i) {
      if (h.l3_ext_tags_[ext_base + i] == line) {
        return static_cast<int>(h.l3_ways_ + i);
      }
    }
    return -1;
  };
  const auto meta_of = [&](uint64_t set, int slot) -> const auto& {
    return static_cast<uint32_t>(slot) < h.l3_ways_
               ? h.l3_meta_[set * h.l3_ways_ + static_cast<uint32_t>(slot)]
               : h.l3_ext_meta_[set * h.l3_ext_ways_ +
                                (static_cast<uint32_t>(slot) - h.l3_ways_)];
  };

  // --- Private levels: inclusion, sharer membership, exclusive grants.
  const Level* levels[2] = {&h.l1_, &h.l2_};
  const char* level_names[2] = {"L1", "L2"};
  for (int li = 0; li < 2; ++li) {
    const Level& level = *levels[li];
    for (int core = 0; core < num_cores; ++core) {
      for (uint64_t set = 0; set < level.sets; ++set) {
        const size_t row = (static_cast<uint64_t>(core) * level.sets + set) * level.ways;
        for (uint32_t w = 0; w < level.ways; ++w) {
          const uint64_t tag = level.tags[row + w];
          if (tag == kNoLine) {
            continue;
          }
          ++result.tags_checked;
          if (tag >= kDirOnlyBit) {
            violate("%s core %d set %" PRIu64 " way %u: malformed tag %#" PRIx64,
                    level_names[li], core, set, w, tag);
            continue;
          }
          const uint64_t line = tag & kPrivTagMask;
          for (uint32_t w2 = w + 1; w2 < level.ways; ++w2) {
            const uint64_t other = level.tags[row + w2];
            if (other != kNoLine && (other & kPrivTagMask) == line) {
              violate("%s core %d set %" PRIu64 ": line %#" PRIx64
                      " tagged in two ways",
                      level_names[li], core, set, line);
            }
          }
          // Inclusion is a per-slice obligation: the tag must live in the
          // line's home slice (L3SetOf routes through the home socket).
          const uint64_t l3set = h.L3SetOf(line);
          const int slot = find_slot(l3set, line);
          if (slot < 0) {
            violate("inclusion: %s core %d holds line %#" PRIx64
                    " with no lattice tag in home slice %d",
                    level_names[li], core, line, h.HomeSocketOf(line << h.line_shift_));
            continue;
          }
          const WayMeta& meta = meta_of(l3set, slot);
          if (((meta.sharers >> core) & 1u) == 0) {
            violate("directory: %s core %d holds line %#" PRIx64
                    " but its sharer bit is clear",
                    level_names[li], core, line);
          }
          if ((tag & kPrivExclBit) != 0) {
            if (meta.owner != core) {
              violate("exclusive: %s core %d carries kPrivExclBit on line %#" PRIx64
                      " but directory owner is %d",
                      level_names[li], core, line, meta.owner);
            } else if ((meta.excl_levels & (1u << li)) == 0) {
              violate("exclusive: %s core %d carries kPrivExclBit on line %#" PRIx64
                      " outside the excl_levels grant %u",
                      level_names[li], core, line, meta.excl_levels);
            }
          }
        }
      }
    }
  }

  // --- L3 lattice: tag-count bookkeeping, extension-bank liveness,
  // per-set uniqueness, directory field sanity. The global set array
  // concatenates the per-socket slices, so this walk covers every slice's
  // own directory domain and extension bank; each tagged line must also sit
  // in its home slice (set / l3_sets_ names the slice being walked).
  for (uint64_t set = 0; set < h.l3_total_sets_; ++set) {
    const uint64_t slice = set / h.l3_sets_;
    const size_t set_base = set * h.l3_ways_;
    const size_t ext_base = set * h.l3_ext_ways_;
    const uint32_t ext_count = h.l3_ext_count_[set];
    if (ext_count > h.l3_ext_ways_) {
      violate("ext bank set %" PRIu64 ": count %u exceeds %u ways", set, ext_count,
              h.l3_ext_ways_);
      continue;
    }

    uint32_t tagged_data = 0;
    for (uint32_t w = 0; w < h.l3_ways_; ++w) {
      if (h.l3_tags_[set_base + w] != kNoLine) {
        ++tagged_data;
        ++result.tags_checked;
      }
    }
    if (tagged_data != h.l3_tag_count_[set]) {
      violate("lattice set %" PRIu64 ": tag count records %u but %u ways are tagged",
              set, h.l3_tag_count_[set], tagged_data);
    }
    for (uint32_t i = 0; i < h.l3_ext_ways_; ++i) {
      const uint64_t tag = h.l3_ext_tags_[ext_base + i];
      if (i < ext_count) {
        ++result.tags_checked;
        if (tag == kNoLine || tag >= kDirOnlyBit) {
          violate("ext bank set %" PRIu64 " slot %u: malformed live tag %#" PRIx64,
                  set, i, tag);
        }
      } else if (tag != kNoLine) {
        violate("ext bank set %" PRIu64 " slot %u: dead slot holds tag %#" PRIx64,
                set, i, tag);
      }
    }

    // Per-set uniqueness over data tags (masked of their dir-only bit) and
    // live extension tags, plus directory field sanity per tagged slot.
    const uint32_t total_slots = h.l3_ways_ + ext_count;
    const auto tag_at = [&](uint32_t s) -> uint64_t {
      return s < h.l3_ways_ ? h.l3_tags_[set_base + s]
                            : h.l3_ext_tags_[ext_base + (s - h.l3_ways_)];
    };
    for (uint32_t a = 0; a < total_slots; ++a) {
      const uint64_t tag_a = tag_at(a);
      if (tag_a == kNoLine) {
        continue;
      }
      const uint64_t line_a = tag_a & kTagMask;
      for (uint32_t b = a + 1; b < total_slots; ++b) {
        const uint64_t tag_b = tag_at(b);
        if (tag_b != kNoLine && (tag_b & kTagMask) == line_a) {
          violate("lattice set %" PRIu64 ": line %#" PRIx64 " tagged twice", set,
                  line_a);
        }
      }
      if (h.socket_mask_ != 0 &&
          ((line_a >> h.home_shift_) & h.socket_mask_) != slice) {
        violate("home: slice %" PRIu64 " set %" PRIu64 " holds line %#" PRIx64
                " whose home slice is %" PRIu64,
                slice, set, line_a, (line_a >> h.home_shift_) & h.socket_mask_);
      }
      const WayMeta& meta = meta_of(set, static_cast<int>(a));
      if ((meta.sharers & ~core_mask) != 0 ||
          (meta.invalidated_from & ~core_mask) != 0) {
        violate("directory set %" PRIu64 " slot %u: masks name nonexistent cores "
                "(sharers %#" PRIx64 ", invalidated %#" PRIx64 ")",
                set, a, meta.sharers, meta.invalidated_from);
      }
      if (meta.owner >= 0) {
        if (meta.owner >= num_cores) {
          violate("directory set %" PRIu64 " slot %u: owner %d out of range", set, a,
                  meta.owner);
        } else if (((meta.sharers >> meta.owner) & 1u) == 0) {
          violate("directory set %" PRIu64 " slot %u: owner %d outside sharer set %#" PRIx64,
                  set, a, meta.owner, meta.sharers);
        }
      }
    }
  }

  return result;
}

}  // namespace dprof
