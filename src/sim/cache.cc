#include "src/sim/cache.h"

namespace dprof {

Cache::Cache(const CacheGeometry& geometry)
    : geometry_(geometry),
      ways_(geometry.NumSets() * geometry.ways),
      set_fills_(geometry.NumSets(), 0) {
  DPROF_CHECK(geometry.line_size > 0);
  DPROF_CHECK(geometry.ways > 0);
  DPROF_CHECK(geometry.size_bytes % (static_cast<uint64_t>(geometry.line_size) * geometry.ways) ==
              0);
  DPROF_CHECK(geometry.NumSets() > 0);
}

Cache::Way* Cache::FindWay(uint64_t set, uint64_t line) {
  Way* base = &ways_[set * geometry_.ways];
  for (uint32_t w = 0; w < geometry_.ways; ++w) {
    if (base[w].line == line) {
      return &base[w];
    }
  }
  return nullptr;
}

const Cache::Way* Cache::FindWay(uint64_t set, uint64_t line) const {
  const Way* base = &ways_[set * geometry_.ways];
  for (uint32_t w = 0; w < geometry_.ways; ++w) {
    if (base[w].line == line) {
      return &base[w];
    }
  }
  return nullptr;
}

bool Cache::Touch(uint64_t line, uint64_t now) {
  Way* way = FindWay(geometry_.SetOf(line), line);
  if (way != nullptr) {
    way->last_use = now;
    ++stats_.hits;
    return true;
  }
  ++stats_.misses;
  return false;
}

bool Cache::Contains(uint64_t line) const {
  return FindWay(geometry_.SetOf(line), line) != nullptr;
}

std::optional<uint64_t> Cache::Insert(uint64_t line, uint64_t now) {
  const uint64_t set = geometry_.SetOf(line);
  if (Way* existing = FindWay(set, line); existing != nullptr) {
    existing->last_use = now;
    return std::nullopt;
  }
  ++stats_.fills;
  ++set_fills_[set];

  Way* base = &ways_[set * geometry_.ways];
  Way* victim = nullptr;
  for (uint32_t w = 0; w < geometry_.ways; ++w) {
    if (base[w].line == kInvalidLine) {
      base[w] = Way{line, now};
      return std::nullopt;
    }
    if (victim == nullptr || base[w].last_use < victim->last_use) {
      victim = &base[w];
    }
  }
  const uint64_t evicted = victim->line;
  *victim = Way{line, now};
  ++stats_.evictions;
  return evicted;
}

bool Cache::Remove(uint64_t line) {
  Way* way = FindWay(geometry_.SetOf(line), line);
  if (way == nullptr) {
    return false;
  }
  way->line = kInvalidLine;
  way->last_use = 0;
  ++stats_.invalidations;
  return true;
}

uint64_t Cache::Occupancy() const {
  uint64_t n = 0;
  for (const Way& w : ways_) {
    if (w.line != kInvalidLine) {
      ++n;
    }
  }
  return n;
}

}  // namespace dprof
