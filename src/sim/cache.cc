#include "src/sim/cache.h"

namespace dprof {

Cache::Cache(const CacheGeometry& geometry)
    : geometry_(geometry),
      lines_(geometry.NumSets() * geometry.ways, kInvalidLine),
      last_use_(geometry.NumSets() * geometry.ways, 0),
      set_fills_(geometry.NumSets(), 0) {
  DPROF_CHECK(geometry.ways > 0);
  DPROF_CHECK(geometry.size_bytes % (static_cast<uint64_t>(geometry.line_size) * geometry.ways) ==
              0);
  DPROF_CHECK(geometry.IsPowerOfTwoShaped());
  set_mask_ = geometry.SetMask();
}

int Cache::FindWay(uint64_t set, uint64_t line) const {
  const uint64_t* base = &lines_[set * geometry_.ways];
  for (uint32_t w = 0; w < geometry_.ways; ++w) {
    if (base[w] == line) {
      return static_cast<int>(w);
    }
  }
  return -1;
}

bool Cache::Touch(uint64_t line, uint64_t now) {
  const uint64_t set = SetIndex(line);
  const int w = FindWay(set, line);
  if (w >= 0) {
    last_use_[set * geometry_.ways + static_cast<uint64_t>(w)] = now;
    ++stats_.hits;
    return true;
  }
  ++stats_.misses;
  return false;
}

bool Cache::Contains(uint64_t line) const {
  return FindWay(SetIndex(line), line) >= 0;
}

std::optional<uint64_t> Cache::Insert(uint64_t line, uint64_t now) {
  const uint64_t set = SetIndex(line);
  const uint64_t row = set * geometry_.ways;
  int victim = -1;
  for (uint32_t w = 0; w < geometry_.ways; ++w) {
    if (lines_[row + w] == line) {
      last_use_[row + w] = now;
      return std::nullopt;
    }
  }
  ++stats_.fills;
  ++set_fills_[set];
  for (uint32_t w = 0; w < geometry_.ways; ++w) {
    if (lines_[row + w] == kInvalidLine) {
      lines_[row + w] = line;
      last_use_[row + w] = now;
      return std::nullopt;
    }
    if (victim < 0 || last_use_[row + w] < last_use_[row + victim]) {
      victim = static_cast<int>(w);
    }
  }
  const uint64_t evicted = lines_[row + victim];
  lines_[row + victim] = line;
  last_use_[row + victim] = now;
  ++stats_.evictions;
  return evicted;
}

bool Cache::Remove(uint64_t line) {
  const uint64_t set = SetIndex(line);
  const int w = FindWay(set, line);
  if (w < 0) {
    return false;
  }
  const uint64_t slot = set * geometry_.ways + static_cast<uint64_t>(w);
  lines_[slot] = kInvalidLine;
  last_use_[slot] = 0;
  ++stats_.invalidations;
  return true;
}

uint64_t Cache::Occupancy() const {
  uint64_t n = 0;
  for (const uint64_t line : lines_) {
    if (line != kInvalidLine) {
      ++n;
    }
  }
  return n;
}

}  // namespace dprof
