#include "src/sim/cache.h"

namespace dprof {

namespace {

bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

Cache::Cache(const CacheGeometry& geometry)
    : geometry_(geometry),
      lines_(geometry.NumSets() * geometry.ways, kInvalidLine),
      last_use_(geometry.NumSets() * geometry.ways, 0),
      exclusive_(geometry.NumSets() * geometry.ways, 0),
      set_fills_(geometry.NumSets(), 0) {
  DPROF_CHECK(geometry.line_size > 0);
  DPROF_CHECK(geometry.ways > 0);
  DPROF_CHECK(geometry.size_bytes % (static_cast<uint64_t>(geometry.line_size) * geometry.ways) ==
              0);
  const uint64_t num_sets = geometry.NumSets();
  DPROF_CHECK(num_sets > 0);
  if (IsPowerOfTwo(num_sets)) {
    set_mask_ = num_sets - 1;
    stripe_mask_ = (num_sets < 64 ? num_sets : 64) - 1;
  }
  stripes_.resize(stripe_mask_ + 1);
}

int Cache::FindWay(uint64_t set, uint64_t line) const {
  const uint64_t* base = &lines_[set * geometry_.ways];
  for (uint32_t w = 0; w < geometry_.ways; ++w) {
    if (base[w] == line) {
      return static_cast<int>(w);
    }
  }
  return -1;
}

bool Cache::Touch(uint64_t line, uint64_t now) { return TouchSlot(line, now) >= 0; }

int64_t Cache::TouchSlot(uint64_t line, uint64_t now) {
  const uint64_t set = SetIndex(line);
  const int w = FindWay(set, line);
  if (w >= 0) {
    const uint64_t slot = set * geometry_.ways + static_cast<uint64_t>(w);
    last_use_[slot] = now;
    ++StripeOf(set).hits;
    return static_cast<int64_t>(slot);
  }
  ++StripeOf(set).misses;
  return -1;
}

std::optional<uint64_t> Cache::FillAbsent(uint64_t line, uint64_t now, uint64_t* slot) {
  const uint64_t set = SetIndex(line);
  const uint64_t row = set * geometry_.ways;
  DPROF_DCHECK(FindWay(set, line) < 0);
  CacheStats& stats = StripeOf(set);
  ++stats.fills;
  ++set_fills_[set];
  int victim = 0;
  for (uint32_t w = 0; w < geometry_.ways; ++w) {
    if (lines_[row + w] == kInvalidLine) {
      lines_[row + w] = line;
      last_use_[row + w] = now;
      exclusive_[row + w] = 0;
      *slot = row + w;
      return std::nullopt;
    }
    if (last_use_[row + w] < last_use_[row + victim]) {
      victim = static_cast<int>(w);
    }
  }
  const uint64_t evicted = lines_[row + victim];
  lines_[row + victim] = line;
  last_use_[row + victim] = now;
  exclusive_[row + victim] = 0;
  *slot = row + static_cast<uint64_t>(victim);
  ++stats.evictions;
  return evicted;
}

bool Cache::Contains(uint64_t line) const {
  return FindWay(SetIndex(line), line) >= 0;
}

std::optional<uint64_t> Cache::Insert(uint64_t line, uint64_t now) {
  const uint64_t set = SetIndex(line);
  const uint64_t row = set * geometry_.ways;
  int victim = -1;
  for (uint32_t w = 0; w < geometry_.ways; ++w) {
    if (lines_[row + w] == line) {
      last_use_[row + w] = now;
      return std::nullopt;
    }
  }
  CacheStats& stats = StripeOf(set);
  ++stats.fills;
  ++set_fills_[set];
  for (uint32_t w = 0; w < geometry_.ways; ++w) {
    if (lines_[row + w] == kInvalidLine) {
      lines_[row + w] = line;
      last_use_[row + w] = now;
      exclusive_[row + w] = 0;
      return std::nullopt;
    }
    if (victim < 0 || last_use_[row + w] < last_use_[row + victim]) {
      victim = static_cast<int>(w);
    }
  }
  const uint64_t evicted = lines_[row + victim];
  lines_[row + victim] = line;
  last_use_[row + victim] = now;
  exclusive_[row + victim] = 0;
  ++stats.evictions;
  return evicted;
}

bool Cache::Remove(uint64_t line) {
  const uint64_t set = SetIndex(line);
  const int w = FindWay(set, line);
  if (w < 0) {
    return false;
  }
  const uint64_t slot = set * geometry_.ways + static_cast<uint64_t>(w);
  lines_[slot] = kInvalidLine;
  last_use_[slot] = 0;
  exclusive_[slot] = 0;
  ++StripeOf(set).invalidations;
  return true;
}

void Cache::SetExclusive(uint64_t line, bool exclusive) {
  const uint64_t set = SetIndex(line);
  const int w = FindWay(set, line);
  if (w >= 0) {
    exclusive_[set * geometry_.ways + static_cast<uint64_t>(w)] = exclusive ? 1 : 0;
  }
}

bool Cache::IsExclusive(uint64_t line) const {
  const uint64_t set = SetIndex(line);
  const int w = FindWay(set, line);
  return w >= 0 && exclusive_[set * geometry_.ways + static_cast<uint64_t>(w)] != 0;
}

uint64_t Cache::Occupancy() const {
  uint64_t n = 0;
  for (const uint64_t line : lines_) {
    if (line != kInvalidLine) {
      ++n;
    }
  }
  return n;
}

const CacheStats& Cache::stats() const {
  agg_ = CacheStats();
  for (const CacheStats& s : stripes_) {
    agg_.hits += s.hits;
    agg_.misses += s.misses;
    agg_.fills += s.fills;
    agg_.evictions += s.evictions;
    agg_.invalidations += s.invalidations;
  }
  return agg_;
}

}  // namespace dprof
