// N-way set-associative cache model with per-set LRU replacement.
//
// Addresses are tracked at cache-line granularity ("line numbers" =
// byte address / line size). The cache knows nothing about coherence; the
// hierarchy layers MESI-style state on top via the coherence directory.

#ifndef DPROF_SRC_SIM_CACHE_H_
#define DPROF_SRC_SIM_CACHE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/util/check.h"
#include "src/util/types.h"

namespace dprof {

struct CacheGeometry {
  uint64_t size_bytes = 32 * 1024;
  uint32_t line_size = 64;
  uint32_t ways = 8;

  uint64_t NumSets() const { return size_bytes / (static_cast<uint64_t>(line_size) * ways); }
  uint64_t LineOf(Addr addr) const { return addr / line_size; }
  uint64_t SetOf(uint64_t line) const { return line % NumSets(); }
};

// Per-cache counters, exposed for tests and the simulator-side ground truth.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t fills = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
};

class Cache {
 public:
  explicit Cache(const CacheGeometry& geometry);

  const CacheGeometry& geometry() const { return geometry_; }

  // Looks up `line`; on hit refreshes LRU state and returns true.
  // Counts a hit or miss in stats().
  bool Touch(uint64_t line, uint64_t now);

  // Presence check with no LRU or stats side effects.
  bool Contains(uint64_t line) const;

  // Inserts `line`, evicting the LRU way if the set is full. Returns the
  // evicted line, if any. Inserting a line that is already present just
  // refreshes it and returns nullopt.
  std::optional<uint64_t> Insert(uint64_t line, uint64_t now);

  // Removes `line` (coherence invalidation or explicit flush).
  // Returns true if the line was present.
  bool Remove(uint64_t line);

  // Number of valid lines currently cached.
  uint64_t Occupancy() const;

  // Number of fills that ever targeted associativity set `set`.
  uint64_t FillsOfSet(uint64_t set) const { return set_fills_[set]; }

  const CacheStats& stats() const { return stats_; }

 private:
  struct Way {
    uint64_t line = kInvalidLine;
    uint64_t last_use = 0;
  };

  static constexpr uint64_t kInvalidLine = ~0ull;

  Way* FindWay(uint64_t set, uint64_t line);
  const Way* FindWay(uint64_t set, uint64_t line) const;

  CacheGeometry geometry_;
  std::vector<Way> ways_;  // NumSets() * ways, row-major by set.
  std::vector<uint64_t> set_fills_;
  CacheStats stats_;
};

}  // namespace dprof

#endif  // DPROF_SRC_SIM_CACHE_H_
