// Cache geometry math and a standalone N-way set-associative cache model
// with per-set LRU replacement.
//
// Addresses are tracked at cache-line granularity ("line numbers" = byte
// address >> line shift). Geometries are constrained to power-of-two line
// sizes and set counts — checked at construction wherever a geometry backs
// real state — so every address-to-line and line-to-set computation is a
// shift or a mask, never a divide.
//
// The `Cache` class here is the reference model: tests and the working-set
// view use it directly. The simulated machine's hot path does not — the
// coherent hierarchy (src/sim/hierarchy.h) keeps its own flattened tag
// lattice and only shares the geometry math.

#ifndef DPROF_SRC_SIM_CACHE_H_
#define DPROF_SRC_SIM_CACHE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/util/check.h"
#include "src/util/types.h"

namespace dprof {

struct CacheGeometry {
  uint64_t size_bytes = 32 * 1024;
  uint32_t line_size = 64;
  uint32_t ways = 8;

  uint64_t NumSets() const { return size_bytes / (static_cast<uint64_t>(line_size) * ways); }

  // Shift/mask forms of the address math. Valid only for power-of-two line
  // sizes and set counts, which every constructor taking a geometry checks.
  uint32_t LineShift() const { return static_cast<uint32_t>(__builtin_ctz(line_size)); }
  uint64_t SetMask() const { return NumSets() - 1; }
  uint64_t LineOf(Addr addr) const { return addr >> LineShift(); }
  uint64_t SetOf(uint64_t line) const { return line & SetMask(); }

  bool IsPowerOfTwoShaped() const {
    const uint64_t sets = NumSets();
    return line_size != 0 && (line_size & (line_size - 1)) == 0 && sets != 0 &&
           (sets & (sets - 1)) == 0;
  }
};

// Per-cache counters, exposed for tests.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t fills = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
};

class Cache {
 public:
  explicit Cache(const CacheGeometry& geometry);

  const CacheGeometry& geometry() const { return geometry_; }

  // Looks up `line`; on hit refreshes LRU state and returns true.
  // Counts a hit or miss in stats().
  bool Touch(uint64_t line, uint64_t now);

  // Presence check with no LRU or stats side effects.
  bool Contains(uint64_t line) const;

  // Inserts `line`, evicting the LRU way if the set is full. Returns the
  // evicted line, if any. Inserting a line that is already present just
  // refreshes it and returns nullopt.
  std::optional<uint64_t> Insert(uint64_t line, uint64_t now);

  // Removes `line` (coherence invalidation or explicit flush).
  // Returns true if the line was present.
  bool Remove(uint64_t line);

  // Number of valid lines currently cached.
  uint64_t Occupancy() const;

  // Number of fills that ever targeted associativity set `set`.
  uint64_t FillsOfSet(uint64_t set) const { return set_fills_[set]; }

  const CacheStats& stats() const { return stats_; }

 private:
  static constexpr uint64_t kInvalidLine = ~0ull;

  // Power-of-two set counts are required at construction, so the old
  // `line % NumSets()` fallback is gone: set indexing is always a mask.
  uint64_t SetIndex(uint64_t line) const { return line & set_mask_; }
  // Way index of `line` within `set`, or -1.
  int FindWay(uint64_t set, uint64_t line) const;

  CacheGeometry geometry_;
  uint64_t set_mask_ = 0;            // NumSets - 1
  std::vector<uint64_t> lines_;      // NumSets * ways tags, row-major by set
  std::vector<uint64_t> last_use_;   // LRU stamp per way
  std::vector<uint64_t> set_fills_;
  CacheStats stats_;
};

}  // namespace dprof

#endif  // DPROF_SRC_SIM_CACHE_H_
