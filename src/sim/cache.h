// N-way set-associative cache model with per-set LRU replacement.
//
// Addresses are tracked at cache-line granularity ("line numbers" =
// byte address / line size). The cache knows nothing about coherence; the
// hierarchy layers MESI-style state on top via the coherence directory. The
// one piece of coherence state kept here is a per-way "exclusive" bit the
// hierarchy uses to elide directory lookups for lines a single core owns.
//
// Storage is structure-of-arrays: the line tags of one set are contiguous
// (64 or 128 bytes), so the way scan that every operation performs touches
// one or two host cache lines. Counter updates go to per-stripe slots
// (stripe = set mod #stripes) so that the parallel engine's shard workers,
// which own disjoint set ranges, never write the same counter.

#ifndef DPROF_SRC_SIM_CACHE_H_
#define DPROF_SRC_SIM_CACHE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/util/check.h"
#include "src/util/types.h"

namespace dprof {

struct CacheGeometry {
  uint64_t size_bytes = 32 * 1024;
  uint32_t line_size = 64;
  uint32_t ways = 8;

  uint64_t NumSets() const { return size_bytes / (static_cast<uint64_t>(line_size) * ways); }
  uint64_t LineOf(Addr addr) const { return addr / line_size; }
  uint64_t SetOf(uint64_t line) const { return line % NumSets(); }
};

// Per-cache counters, exposed for tests and the simulator-side ground truth.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t fills = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
};

class Cache {
 public:
  explicit Cache(const CacheGeometry& geometry);

  const CacheGeometry& geometry() const { return geometry_; }

  // Looks up `line`; on hit refreshes LRU state and returns true.
  // Counts a hit or miss in stats().
  bool Touch(uint64_t line, uint64_t now);

  // Presence check with no LRU or stats side effects.
  bool Contains(uint64_t line) const;

  // Inserts `line`, evicting the LRU way if the set is full. Returns the
  // evicted line, if any. Inserting a line that is already present just
  // refreshes it and returns nullopt. A newly inserted line is not exclusive.
  std::optional<uint64_t> Insert(uint64_t line, uint64_t now);

  // Removes `line` (coherence invalidation or explicit flush).
  // Returns true if the line was present.
  bool Remove(uint64_t line);

  // Coherence "exclusive/modified by the owning core" bit. Both calls are
  // no-ops / false for lines not present.
  void SetExclusive(uint64_t line, bool exclusive);
  bool IsExclusive(uint64_t line) const;

  // ---- Slot-level API for the hierarchy's hot paths ----------------------
  // A slot is set * ways + way; it stays valid until this cache's set is
  // modified again. These avoid the redundant way rescans of the by-line
  // calls above.

  // Touch returning the hit slot, or -1 on miss. Counts hit/miss stats.
  int64_t TouchSlot(uint64_t line, uint64_t now);

  // Insert for a line known to be absent (callers pair this with a failed
  // touch). Returns the evicted line, if any, and stores the filled slot.
  std::optional<uint64_t> FillAbsent(uint64_t line, uint64_t now, uint64_t* slot);

  bool SlotExclusive(uint64_t slot) const { return exclusive_[slot] != 0; }
  void SetSlotExclusive(uint64_t slot, bool exclusive) {
    exclusive_[slot] = exclusive ? 1 : 0;
  }

  // Number of valid lines currently cached.
  uint64_t Occupancy() const;

  // Number of fills that ever targeted associativity set `set`.
  uint64_t FillsOfSet(uint64_t set) const { return set_fills_[set]; }

  // Aggregated over all stripes; cheap enough for tests and reports, not
  // meant for per-access use.
  const CacheStats& stats() const;

  // Number of counter stripes (power of two). The hierarchy's shard count
  // never exceeds the stripe count of any of its caches.
  uint32_t num_stripes() const { return stripe_mask_ + 1; }

 private:
  static constexpr uint64_t kInvalidLine = ~0ull;

  uint64_t SetIndex(uint64_t line) const {
    return set_mask_ != 0 ? (line & set_mask_) : line % geometry_.NumSets();
  }
  CacheStats& StripeOf(uint64_t set) { return stripes_[set & stripe_mask_]; }
  // Way index of `line` within `set`, or -1.
  int FindWay(uint64_t set, uint64_t line) const;

  CacheGeometry geometry_;
  uint64_t set_mask_ = 0;     // NumSets-1 when NumSets is a power of two
  uint64_t stripe_mask_ = 0;  // #stripes-1 (power of two)
  std::vector<uint64_t> lines_;      // NumSets * ways tags, row-major by set
  std::vector<uint64_t> last_use_;   // LRU stamp per way
  std::vector<uint8_t> exclusive_;   // coherence bit per way
  std::vector<uint64_t> set_fills_;
  std::vector<CacheStats> stripes_;
  mutable CacheStats agg_;  // cache for stats()
};

}  // namespace dprof

#endif  // DPROF_SRC_SIM_CACHE_H_
