// Tag-lattice invariant auditing.
//
// An InvariantAuditor walks the hierarchy's private tag columns and the L3
// lattice (data ways + directory-extension bank) and verifies the structural
// invariants the simulator's correctness rests on:
//
//   - inclusion: every line a private L1/L2 holds has a lattice tag, and its
//     holder's bit is set in the embedded directory's sharer mask;
//   - exclusive-bit consistency: a private tag carrying kPrivExclBit belongs
//     to the directory's modified owner, and the directory's excl_levels
//     presence hint admits that level;
//   - directory sanity: owners are in range and inside their sharer sets,
//     sharer/invalidated masks never name nonexistent cores;
//   - extension-bank obligations: per-set tag counts match the tags actually
//     present, live extension slots hold plain line tags, dead slots are
//     empty, and no line is tagged twice in one set.
//
// The walk is read-only and allocation-light; with `dprof run --audit=N` the
// engine runs it on the commit thread every N epochs, so a clean audit
// changes no observable output (byte-identical JSON). Committed-clock
// monotonicity — the one invariant that lives in the engine, not the
// lattice — is checked at the same cadence by the engine itself.

#ifndef DPROF_SRC_SIM_AUDIT_H_
#define DPROF_SRC_SIM_AUDIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/hierarchy.h"

namespace dprof {

struct AuditResult {
  uint64_t tags_checked = 0;       // private + lattice tags visited
  uint64_t total_violations = 0;   // all violations found
  std::vector<std::string> violations;  // first kMaxMessages, human-readable

  bool ok() const { return total_violations == 0; }
};

class InvariantAuditor {
 public:
  // Messages kept per audit; the total count is always exact.
  static constexpr size_t kMaxMessages = 8;

  explicit InvariantAuditor(const CacheHierarchy* hierarchy)
      : hierarchy_(hierarchy) {}

  AuditResult Audit() const;

 private:
  const CacheHierarchy* hierarchy_;
};

}  // namespace dprof

#endif  // DPROF_SRC_SIM_AUDIT_H_
