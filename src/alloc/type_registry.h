// Registry of data types known to the allocator and the profiler.
//
// Mirrors the Linux kernel's per-type slab pools: every dynamically allocated
// object belongs to a named type with a fixed size, which is exactly the
// information DProf's address-to-type resolver needs (paper §5.2).

#ifndef DPROF_SRC_ALLOC_TYPE_REGISTRY_H_
#define DPROF_SRC_ALLOC_TYPE_REGISTRY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/util/check.h"
#include "src/util/types.h"

namespace dprof {

struct TypeInfo {
  std::string name;
  uint32_t size = 0;
};

class TypeRegistry {
 public:
  // Registers `name` with object size `size` bytes. Re-registering the same
  // name with the same size returns the existing id.
  TypeId Register(const std::string& name, uint32_t size);

  // Returns the id for `name` or kInvalidType.
  TypeId Find(const std::string& name) const;

  const TypeInfo& Info(TypeId id) const;
  const std::string& Name(TypeId id) const { return Info(id).name; }
  uint32_t Size(TypeId id) const { return Info(id).size; }

  size_t size() const { return types_.size(); }

 private:
  std::vector<TypeInfo> types_;
  std::unordered_map<std::string, TypeId> by_name_;
};

}  // namespace dprof

#endif  // DPROF_SRC_ALLOC_TYPE_REGISTRY_H_
