// Typed slab allocator modelled on the Linux SLAB allocator.
//
// Structure (paper §5.2, §6.1):
//  - One kmem_cache per data type, with per-core array_caches (magazines of
//    free objects) and per-core slab arenas protected by a lock.
//  - Slabs are page-sized regions with an on-slab header; objects are carved
//    at fixed offsets, so any interior pointer resolves to (type, base,
//    offset) by arithmetic — this implements DProf's memory type resolver.
//  - Freeing on a core other than the allocating ("home") core takes the
//    alien path: it acquires the cache's slab lock and writes into the home
//    core's array_cache, which is how the paper's memcached case study ends
//    up with `slab` and `array_cache` objects bouncing between cores.
//
// Crucially, the allocator's own metadata (array_cache structs, slab
// headers, kmem_cache structs) lives in *simulated memory* and is touched
// through CoreContext::Access, so allocator metadata shows up in DProf's
// views exactly as it does in Table 6.1 of the paper.
//
// Engine-compatibility: the simulated address space is split into one arena
// per core (plus a setup-time metadata arena), and slab lists are per-core,
// so every host-state mutation Alloc/Free performs is owned by the calling
// core. Cross-core effects flow through two deterministic channels instead:
//  - allocation events (stats, AllocationObservers) are delivered through
//    CoreContext::NotifyAllocEvent and arrive via CommitAllocEvent /
//    CommitFreeEvent in committed order;
//  - alien frees are staged per freeing core and transferred into the home
//    cores' magazines by FlushEpoch at epoch boundaries (in direct mode the
//    drain applies immediately, as before).
// Arena page tables and slab arrays use preallocated storage, so concurrent
// readers resolving addresses published in earlier epochs never race with
// the owner core growing its arena.

#ifndef DPROF_SRC_ALLOC_SLAB_ALLOCATOR_H_
#define DPROF_SRC_ALLOC_SLAB_ALLOCATOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/alloc/type_registry.h"
#include "src/alloc/type_transform.h"
#include "src/machine/machine.h"
#include "src/util/types.h"

namespace dprof {

// Receives every allocation and deallocation. DProf uses this to build its
// address set and to arm debug registers on newly allocated objects.
class AllocationObserver {
 public:
  virtual ~AllocationObserver() = default;
  virtual void OnAlloc(TypeId type, Addr base, uint32_t size, int core, uint64_t now) = 0;
  virtual void OnFree(TypeId type, Addr base, uint32_t size, int core, uint64_t now) = 0;
};

struct ResolveResult {
  bool valid = false;
  TypeId type = kInvalidType;
  Addr base = kNullAddr;
  uint32_t offset = 0;
  uint32_t size = 0;
};

struct SlabConfig {
  uint32_t page_size = 4096;
  uint32_t slab_header_size = 64;
  uint32_t magazine_capacity = 32;  // array_cache entries per core
  uint32_t batch_count = 16;        // objects moved per refill/flush
  Addr base_addr = 0x100000000ull;  // start of the simulated heap
  // Simulated address space per core arena (and for the metadata arena).
  Addr arena_stride = 256ull * 1024 * 1024;
  // Upper bound on slabs per arena; storage is preallocated so concurrent
  // cross-core address resolution never observes a reallocating array.
  uint32_t max_slabs_per_arena = 8192;
  // Data-layout transforms applied per type name when its kmem_cache or
  // static registration is created (see type_transform.h). Empty by
  // default: an empty or all-identity set leaves every layout decision
  // byte-identical to the untransformed allocator.
  TransformSet transforms;
};

struct AllocatorTypeStats {
  uint64_t allocs = 0;
  uint64_t frees = 0;
  uint64_t alien_frees = 0;
  uint64_t live = 0;
  uint64_t peak_live = 0;
  // Time-weighted live-object integral, for average working set estimation:
  // sum over events of live_count * cycles_at_that_count.
  double live_cycles = 0.0;
  uint64_t last_event = 0;
};

class SlabAllocator : public AllocatorIface {
 public:
  SlabAllocator(Machine* machine, TypeRegistry* registry, const SlabConfig& config = {});

  SlabAllocator(const SlabAllocator&) = delete;
  SlabAllocator& operator=(const SlabAllocator&) = delete;

  // AllocatorIface:
  Addr Alloc(CoreContext& ctx, TypeId type, FunctionId ip) override;
  void Free(CoreContext& ctx, Addr addr, FunctionId ip) override;
  void PrepareParallel(int num_cores) override;
  void FlushEpoch() override;
  void CommitAllocEvent(TypeId type, Addr base, uint32_t size, int core,
                        uint64_t now) override;
  void CommitFreeEvent(TypeId type, Addr base, uint32_t size, int core, uint64_t now,
                       bool alien) override;
  // Sticky: set on genuine arena exhaustion (the injected transient grow
  // failures recover and never surface here). Cores may exhaust
  // concurrently during the parallel phase, hence the lock.
  Status status() const override {
    std::lock_guard<std::mutex> lk(status_mu_);
    return status_;
  }

  // Maps any address (interior pointers included) to its containing object.
  // Works for slab objects, slab headers, allocator metadata, and static
  // registrations.
  ResolveResult Resolve(Addr addr) const;

  // Registers a statically allocated object (the paper resolves these via
  // executable debug info). Returns its base address in the simulated
  // static data segment. Setup-time only: never call from a driver running
  // under the engine.
  Addr RegisterStatic(TypeId type, uint32_t size);

  // Registers `count` statically placed objects of `type`, nominally
  // `stride` bytes apart, as one resolver range, honouring the type's
  // layout transforms: kPadToLine repacks the run densely at a
  // line-multiple stride, kRecolor staggers successive elements by one
  // line per color. With no transforms the layout is exactly
  // RegisterStatic(type, stride * count) with elements at base + i *
  // stride. Element addresses are appended to `elems` when non-null.
  // Setup-time only, like RegisterStatic.
  Addr RegisterStaticArray(TypeId type, uint32_t elem_size, uint32_t count, uint32_t stride,
                           std::vector<Addr>* elems);

  // Whether `type` carries `kind` in the configured TransformSet.
  bool HasTransform(TypeId type, TypeTransformKind kind) const;
  const TransformSet& transforms() const { return config_.transforms; }
  // Cache line size of the attached machine's hierarchy (the unit every
  // transform pads, aligns, or colors by).
  uint32_t line_size() const { return line_size_; }

  void AddObserver(AllocationObserver* observer) { observers_.push_back(observer); }
  void RemoveObserver(AllocationObserver* observer);

  // Replays every RegisterStatic registration into `observer` as OnAlloc
  // events (the paper's DProf reads static objects from the executable's
  // debug information, so they are knowable at attach time regardless of
  // when the workload registered them).
  void ReplayStatics(AllocationObserver* observer) const;

  TypeRegistry& registry() { return *registry_; }
  const AllocatorTypeStats& type_stats(TypeId type) const;
  // Average live bytes of `type` over the window since construction.
  double AverageLiveBytes(TypeId type, uint64_t now) const;
  uint64_t LiveCount(TypeId type) const;

  // Up to `max` currently-live objects of `type`, in deterministic
  // (arena, slab, object-index) order. Used by the history collector to arm
  // debug registers on long-lived objects that are never recycled.
  std::vector<Addr> LiveObjects(TypeId type, size_t max) const;

  // The lock protecting a cache's slab lists ("SLAB cache lock" in the
  // paper's lock-stat table). Exposed for lock-stat name registration.
  SimLock* CacheLock(TypeId type);

  // Well-known metadata types, present in every profile.
  TypeId slab_type() const { return slab_type_; }
  TypeId array_cache_type() const { return array_cache_type_; }
  TypeId kmem_cache_type() const { return kmem_cache_type_; }

 private:
  struct Slab {
    uint32_t cache_id = 0;
    Addr page_base = 0;
    uint32_t num_pages = 0;
    Addr objs_base = 0;
    uint32_t num_objects = 0;
    std::vector<uint16_t> freelist;    // indices of free (not carved out) objects
    std::vector<int8_t> home;          // allocating core per object, -1 if free
  };

  struct AlienEntry {
    Addr obj = 0;
    int8_t home = -1;
  };

  struct PerCoreCache {
    Addr array_cache_addr = 0;   // simulated array_cache struct (128B)
    Addr alien_addr = 0;         // simulated alien array (also an array_cache)
    std::vector<Addr> magazine;  // free object addresses
    std::vector<AlienEntry> alien;   // cross-core frees awaiting a drain
    std::vector<uint32_t> partial;   // this core's slab ids with free objects
    // Engine mode: drained alien entries staged by this core, moved into the
    // home cores' magazines at the next epoch boundary.
    std::vector<AlienEntry> staged;
  };

  struct KmemCache {
    TypeId type = kInvalidType;
    uint32_t obj_size = 0;
    Addr struct_addr = 0;  // simulated kmem_cache struct
    std::unique_ptr<SimLock> lock;
    std::vector<PerCoreCache> per_core;
    AllocatorTypeStats stats;
    // Transform interpretation, resolved once at cache creation:
    bool line_align = false;   // kAlign: line-align each slab's object run
    bool pin_home = false;     // kPinHome: remote frees bypass the alien path
    // kPinHome on a multi-socket hierarchy also pins slab placement: each
    // slab's object run is carved inside one home block (hierarchy
    // home_block_bytes()) of this socket, or of the allocating core's own
    // socket when -1, so the pinned type's lines are homed where they are
    // used instead of striped by address hash.
    int pin_socket = -1;
    uint32_t color_lines = 0;  // kRecolor: color cycle length, 0 = off
  };

  struct PageInfo {
    enum class Kind : uint8_t { kUnused, kSlab, kMeta };
    Kind kind = Kind::kUnused;
    uint32_t slab_id = 0;  // arena-local
  };

  // One core's slice of the simulated heap. `pages` and `slabs` are sized
  // up front (see SlabConfig) so the owning core can append while other
  // cores resolve previously published addresses.
  struct Arena {
    Addr base = 0;
    Addr bump = 0;
    Addr limit = 0;
    std::vector<PageInfo> pages;
    std::vector<Slab> slabs;
  };

  struct MetaRange {
    Addr base = 0;
    uint32_t size = 0;
    TypeId type = kInvalidType;
  };

  // Arena index of `addr`, or -1 when outside the simulated heap.
  int ArenaOf(Addr addr) const;
  const PageInfo* PageFor(Addr addr) const;

  KmemCache& CacheFor(TypeId type);
  // Adds one slab to the calling core's arena. With allow_fault, an armed
  // kSlabGrow fault plan may veto the growth (transient OOM); returns the
  // failure sentinel and the caller retries after charging reclaim work.
  uint32_t GrowCache(CoreContext& ctx, KmemCache& cache, PerCoreCache& pc, bool allow_fault);
  void Refill(CoreContext& ctx, KmemCache& cache, PerCoreCache& pc);
  void FlushMagazine(CoreContext& ctx, KmemCache& cache, PerCoreCache& pc);
  void DrainAlien(CoreContext& ctx, KmemCache& cache, PerCoreCache& pc);
  void ReturnToSlab(KmemCache& cache, Addr obj);
  Addr AllocMeta(TypeId type, uint32_t size);
  Addr BumpPages(Arena& arena, uint32_t num_pages, PageInfo info);
  void TouchLiveAccounting(KmemCache& cache, uint64_t now, int delta);

  Machine* machine_;
  TypeRegistry* registry_;
  SlabConfig config_;
  uint32_t line_size_ = 64;

  TypeId slab_type_ = kInvalidType;
  TypeId array_cache_type_ = kInvalidType;
  TypeId kmem_cache_type_ = kInvalidType;

  FunctionId fn_alloc_ = kInvalidFunction;          // kmem_cache_alloc_node
  FunctionId fn_refill_ = kInvalidFunction;         // cache_alloc_refill
  FunctionId fn_free_ = kInvalidFunction;           // kmem_cache_free
  FunctionId fn_drain_alien_ = kInvalidFunction;    // __drain_alien_cache
  FunctionId fn_grow_ = kInvalidFunction;           // cache_grow

  std::vector<KmemCache> caches_;
  std::unordered_map<TypeId, uint32_t> cache_by_type_;
  std::vector<Arena> arenas_;  // one per core, plus the trailing meta arena

  std::vector<MetaRange> meta_ranges_;  // sorted by base
  std::vector<MetaRange> statics_;      // RegisterStatic entries, in order
  std::vector<AllocationObserver*> observers_;
  AllocatorTypeStats empty_stats_;

  mutable std::mutex status_mu_;
  Status status_;
};

}  // namespace dprof

#endif  // DPROF_SRC_ALLOC_SLAB_ALLOCATOR_H_
