#include "src/alloc/slab_allocator.h"

#include <algorithm>
#include <string>

#include "src/machine/faults.h"

namespace dprof {
namespace {

// Color cycle length for kRecolor: successive slabs (or static array
// elements) start one line later, modulo this, spreading hot same-offset
// fields across eight associativity sets.
constexpr uint32_t kColorCycle = 8;

// Emergency slab reserve past max_slabs_per_arena: reaching the configured
// bound sets a sticky kResourceExhausted status instead of aborting, and the
// reserve keeps the in-flight epoch's allocations memory-safe until the
// engine polls the status at the epoch boundary and stops the run. Reserved
// up front with the rest of the arena, so growth never reallocates under
// concurrent cross-core address resolution.
constexpr uint32_t kEmergencySlabs = 64;

// GrowCache failure sentinel (never a valid slab id: arenas are bounded far
// below it).
constexpr uint32_t kGrowFailed = ~0u;

}  // namespace

SlabAllocator::SlabAllocator(Machine* machine, TypeRegistry* registry, const SlabConfig& config)
    : machine_(machine), registry_(registry), config_(config) {
  DPROF_CHECK(config_.page_size >= 256);
  DPROF_CHECK(config_.slab_header_size < config_.page_size);
  DPROF_CHECK(config_.batch_count > 0 && config_.batch_count <= config_.magazine_capacity);
  DPROF_CHECK(config_.arena_stride % config_.page_size == 0);
  line_size_ = machine_->hierarchy().line_size();

  slab_type_ = registry_->Register("slab", config_.slab_header_size);
  array_cache_type_ = registry_->Register("array_cache", 128);
  kmem_cache_type_ = registry_->Register("kmem_cache", 256);

  SymbolTable& sym = machine_->symbols();
  fn_alloc_ = sym.Intern("kmem_cache_alloc_node");
  fn_refill_ = sym.Intern("cache_alloc_refill");
  fn_free_ = sym.Intern("kmem_cache_free");
  fn_drain_alien_ = sym.Intern("__drain_alien_cache");
  fn_grow_ = sym.Intern("cache_grow");

  // One arena per core plus the trailing metadata arena. Page tables are
  // fully sized and slab arrays fully reserved up front: the owning core may
  // append during the engine's parallel phase while other cores resolve
  // addresses published in earlier epochs.
  const int num_arenas = machine_->num_cores() + 1;
  const size_t pages_per_arena = config_.arena_stride / config_.page_size;
  arenas_.resize(num_arenas);
  for (int a = 0; a < num_arenas; ++a) {
    Arena& arena = arenas_[a];
    arena.base = config_.base_addr + static_cast<Addr>(a) * config_.arena_stride;
    arena.bump = arena.base;
    arena.limit = arena.base + config_.arena_stride;
    arena.pages.assign(pages_per_arena, PageInfo());
    arena.slabs.reserve(config_.max_slabs_per_arena + kEmergencySlabs);
  }
}

int SlabAllocator::ArenaOf(Addr addr) const {
  if (addr < config_.base_addr) {
    return -1;
  }
  const Addr offset = addr - config_.base_addr;
  const Addr index = offset / config_.arena_stride;
  if (index >= arenas_.size()) {
    return -1;
  }
  return static_cast<int>(index);
}

const SlabAllocator::PageInfo* SlabAllocator::PageFor(Addr addr) const {
  const int a = ArenaOf(addr);
  if (a < 0) {
    return nullptr;
  }
  const Arena& arena = arenas_[a];
  return &arena.pages[(addr - arena.base) / config_.page_size];
}

Addr SlabAllocator::BumpPages(Arena& arena, uint32_t num_pages, PageInfo info) {
  const Addr base = arena.bump;
  DPROF_CHECK(base + static_cast<Addr>(num_pages) * config_.page_size <= arena.limit);
  arena.bump += static_cast<Addr>(num_pages) * config_.page_size;
  const uint64_t first = (base - arena.base) / config_.page_size;
  for (uint32_t i = 0; i < num_pages; ++i) {
    arena.pages[first + i] = info;
  }
  return base;
}

Addr SlabAllocator::AllocMeta(TypeId type, uint32_t size) {
  // Metadata and static objects get their own pages in the setup-time
  // metadata arena, found via meta ranges.
  const uint32_t pages = (size + config_.page_size - 1) / config_.page_size;
  const Addr base =
      BumpPages(arenas_.back(), std::max(1u, pages), PageInfo{PageInfo::Kind::kMeta, 0});
  meta_ranges_.push_back(MetaRange{base, size, type});
  return base;
}

Addr SlabAllocator::RegisterStatic(TypeId type, uint32_t size) {
  const Addr base = AllocMeta(type, size);
  statics_.push_back(MetaRange{base, size, type});
  // The paper's DProf learns statically-allocated objects from the
  // executable's debug information; model that as an allocation event so
  // static objects join the address set.
  for (AllocationObserver* obs : observers_) {
    obs->OnAlloc(type, base, size, 0, machine_->MaxClock());
  }
  return base;
}

Addr SlabAllocator::RegisterStaticArray(TypeId type, uint32_t elem_size, uint32_t count,
                                        uint32_t stride, std::vector<Addr>* elems) {
  DPROF_CHECK(count > 0 && elem_size > 0 && stride >= elem_size);
  const std::string& name = registry_->Name(type);
  uint32_t eff_stride = stride;
  if (config_.transforms.Has(name, TypeTransformKind::kPadToLine)) {
    // Repack densely, one line-multiple stride per element, discarding the
    // caller's hand-chosen placement.
    eff_stride = (elem_size + line_size_ - 1) / line_size_ * line_size_;
  }
  const uint32_t color_lines =
      config_.transforms.Has(name, TypeTransformKind::kRecolor) ? kColorCycle : 0;
  const uint64_t span = static_cast<uint64_t>(eff_stride) * count +
                        (color_lines > 0 ? (color_lines - 1) * line_size_ : 0);
  const Addr base = RegisterStatic(type, static_cast<uint32_t>(span));
  if (elems != nullptr) {
    for (uint32_t i = 0; i < count; ++i) {
      Addr at = base + static_cast<Addr>(i) * eff_stride;
      if (color_lines > 0) {
        at += static_cast<Addr>(i % color_lines) * line_size_;
      }
      elems->push_back(at);
    }
  }
  return base;
}

bool SlabAllocator::HasTransform(TypeId type, TypeTransformKind kind) const {
  return config_.transforms.Has(registry_->Name(type), kind);
}

void SlabAllocator::ReplayStatics(AllocationObserver* observer) const {
  for (const MetaRange& range : statics_) {
    observer->OnAlloc(range.type, range.base, range.size, 0, machine_->MaxClock());
  }
}

SlabAllocator::KmemCache& SlabAllocator::CacheFor(TypeId type) {
  auto it = cache_by_type_.find(type);
  if (it != cache_by_type_.end()) {
    return caches_[it->second];
  }
  const uint32_t id = static_cast<uint32_t>(caches_.size());
  caches_.emplace_back();
  KmemCache& cache = caches_.back();
  cache.type = type;
  // Pad to 8 bytes like the kernel allocator.
  cache.obj_size = (registry_->Size(type) + 7u) & ~7u;
  if (!config_.transforms.empty()) {
    const std::string& name = registry_->Name(type);
    if (config_.transforms.Has(name, TypeTransformKind::kPadToLine)) {
      cache.obj_size = (cache.obj_size + line_size_ - 1) / line_size_ * line_size_;
    }
    cache.line_align = config_.transforms.Has(name, TypeTransformKind::kAlign);
    cache.pin_home = config_.transforms.Has(name, TypeTransformKind::kPinHome);
    if (cache.pin_home) {
      const int socket = config_.transforms.ParamFor(name, TypeTransformKind::kPinHome);
      DPROF_CHECK(socket < machine_->hierarchy().num_sockets());
      cache.pin_socket = socket;
    }
    if (config_.transforms.Has(name, TypeTransformKind::kRecolor)) {
      cache.color_lines = kColorCycle;
    }
  }
  cache.struct_addr = AllocMeta(kmem_cache_type_, 256);
  // All caches share the display name so lock-stat aggregates them as one
  // class, like the paper's "SLAB cache lock" row. Each cache still has its
  // own lock instance (and lock word) for arbitration.
  cache.lock = std::make_unique<SimLock>("SLAB cache lock", cache.struct_addr + 64);
  cache.per_core.resize(machine_->num_cores());
  for (auto& pc : cache.per_core) {
    pc.array_cache_addr = AllocMeta(array_cache_type_, 128);
    // Linux models per-node alien queues with the same array_cache struct.
    pc.alien_addr = AllocMeta(array_cache_type_, 128);
    pc.magazine.reserve(config_.magazine_capacity + config_.batch_count);
    pc.alien.reserve(config_.batch_count + 1);
  }
  cache_by_type_.emplace(type, id);
  return caches_[id];
}

SimLock* SlabAllocator::CacheLock(TypeId type) { return CacheFor(type).lock.get(); }

void SlabAllocator::PrepareParallel(int num_cores) {
  DPROF_CHECK(num_cores == machine_->num_cores());
  // Lazily-created kmem_caches allocate metadata from the shared arena; make
  // sure every registered type has its cache before drivers run in parallel.
  for (TypeId type = 0; type < static_cast<TypeId>(registry_->size()); ++type) {
    CacheFor(type);
  }
}

uint32_t SlabAllocator::GrowCache(CoreContext& ctx, KmemCache& cache, PerCoreCache& pc,
                                  bool allow_fault) {
  Arena& arena = arenas_[ctx.core()];
  // Injected transient grow failure: keyed on (core, slab ordinal) only, so
  // faulted runs stay bit-identical across host thread counts. The caller
  // (Refill) charges the reclaim pass the kernel would run and retries with
  // allow_fault off.
  FaultPlan* const faults = machine_->fault_plan();
  if (allow_fault && faults != nullptr &&
      faults->SlabGrowFails(ctx.core(), arena.slabs.size())) {
    return kGrowFailed;
  }
  if (arena.slabs.size() >= config_.max_slabs_per_arena) {
    // Genuine exhaustion: report instead of aborting. Growth continues into
    // the preallocated emergency reserve so the epoch in flight stays
    // memory-safe; the engine polls status() at the epoch boundary and
    // stops the run with this diagnostic.
    std::lock_guard<std::mutex> lk(status_mu_);
    status_.Update(Status(StatusCode::kResourceExhausted, "slab_grow",
                          "core " + std::to_string(ctx.core()) + " arena reached " +
                              std::to_string(config_.max_slabs_per_arena) +
                              " slabs (max_slabs_per_arena)"));
  }
  // kAlign pads past the on-slab header to a line boundary; kRecolor sizes
  // the slab for the worst-case color so every colored slab still fits at
  // least one object.
  const uint32_t align_pad =
      cache.line_align ? (line_size_ - config_.slab_header_size % line_size_) % line_size_ : 0;
  const uint32_t color_max = cache.color_lines > 0 ? (cache.color_lines - 1) * line_size_ : 0;
  // kPinHome on a multi-socket hierarchy additionally pins placement: the
  // object run is carved inside one home block of the target socket. Home
  // blocks cycle sockets round-robin by block index, so the matching block
  // is at most num_sockets blocks past the header — size the slab for that
  // worst case.
  const CacheHierarchy& hierarchy = machine_->hierarchy();
  const bool pin_placement = cache.pin_home && hierarchy.num_sockets() > 1;
  const uint64_t home_block = hierarchy.home_block_bytes();
  const uint32_t pin_max =
      pin_placement
          ? static_cast<uint32_t>(home_block * static_cast<uint64_t>(hierarchy.num_sockets()))
          : 0;
  const uint32_t span =
      config_.slab_header_size + align_pad + color_max + pin_max + cache.obj_size;
  const uint32_t num_pages = (span + config_.page_size - 1) / config_.page_size;
  const uint32_t bytes = num_pages * config_.page_size;

  DPROF_CHECK(arena.slabs.size() < config_.max_slabs_per_arena + kEmergencySlabs);
  const uint32_t slab_id = static_cast<uint32_t>(arena.slabs.size());
  const uint32_t color_off =
      cache.color_lines > 0 ? (slab_id % cache.color_lines) * line_size_ : 0;
  const Addr page_base =
      BumpPages(arena, num_pages, PageInfo{PageInfo::Kind::kSlab, slab_id});
  uint32_t lead = config_.slab_header_size + align_pad + color_off;
  uint32_t num_objects = std::max(1u, (bytes - lead) / cache.obj_size);
  if (pin_placement) {
    const int target =
        cache.pin_socket >= 0 ? cache.pin_socket : hierarchy.SocketOfCore(ctx.core());
    Addr objs = (page_base + lead + home_block - 1) / home_block * home_block;
    while (hierarchy.HomeSocketOf(objs) != target) {
      objs += home_block;
    }
    lead = static_cast<uint32_t>(objs - page_base);
    // Every object stays inside the one matching home block (an oversized
    // single object still gets carved, spilling past it).
    num_objects = std::max(
        1u, std::min((bytes - lead) / cache.obj_size,
                     static_cast<uint32_t>(home_block / cache.obj_size)));
  }

  arena.slabs.emplace_back();
  Slab& slab = arena.slabs.back();
  slab.cache_id = static_cast<uint32_t>(&cache - caches_.data());
  slab.page_base = page_base;
  slab.num_pages = num_pages;
  slab.objs_base = page_base + lead;
  slab.num_objects = num_objects;
  slab.freelist.reserve(num_objects);
  for (uint32_t i = 0; i < num_objects; ++i) {
    slab.freelist.push_back(static_cast<uint16_t>(num_objects - 1 - i));
  }
  slab.home.assign(num_objects, -1);

  // Initialize the on-slab header (type "slab").
  ctx.Write(fn_grow_, page_base, config_.slab_header_size);
  ctx.Compute(fn_grow_, 150);
  pc.partial.push_back(slab_id);
  return slab_id;
}

void SlabAllocator::Refill(CoreContext& ctx, KmemCache& cache, PerCoreCache& pc) {
  ctx.LockAcquire(*cache.lock, fn_refill_);
  ctx.Compute(fn_refill_, 60);
  Arena& arena = arenas_[ctx.core()];
  uint32_t want = config_.batch_count;
  while (want > 0) {
    if (pc.partial.empty()) {
      if (GrowCache(ctx, cache, pc, /*allow_fault=*/true) == kGrowFailed) {
        // Transient injected OOM: charge the shrink/reclaim walk the kernel
        // would run before retrying, then grow for real.
        ctx.Compute(fn_grow_, 400);
        machine_->fault_plan()->NoteRecovered(FaultSeam::kSlabGrow);
        GrowCache(ctx, cache, pc, /*allow_fault=*/false);
      }
    }
    const uint32_t slab_id = pc.partial.back();
    Slab& slab = arena.slabs[slab_id];
    // Walk the slab's bookkeeping structures (type "slab").
    ctx.Access(fn_refill_, slab.page_base, 32, true);
    while (want > 0 && !slab.freelist.empty()) {
      const uint16_t idx = slab.freelist.back();
      slab.freelist.pop_back();
      pc.magazine.push_back(slab.objs_base + static_cast<Addr>(idx) * cache.obj_size);
      --want;
    }
    if (slab.freelist.empty()) {
      pc.partial.pop_back();
    }
  }
  ctx.LockRelease(*cache.lock, fn_refill_);
}

void SlabAllocator::ReturnToSlab(KmemCache& cache, Addr obj) {
  const int owner = ArenaOf(obj);
  DPROF_CHECK(owner >= 0 && owner < machine_->num_cores());
  Arena& arena = arenas_[owner];
  const PageInfo* page = PageFor(obj);
  DPROF_CHECK(page != nullptr && page->kind == PageInfo::Kind::kSlab);
  Slab& slab = arena.slabs[page->slab_id];
  const uint16_t idx =
      static_cast<uint16_t>((obj - slab.objs_base) / cache.obj_size);
  if (slab.freelist.empty()) {
    cache.per_core[owner].partial.push_back(page->slab_id);
  }
  slab.freelist.push_back(idx);
}

void SlabAllocator::FlushMagazine(CoreContext& ctx, KmemCache& cache, PerCoreCache& pc) {
  ctx.LockAcquire(*cache.lock, fn_free_);
  ctx.Compute(fn_free_, 60);
  for (uint32_t i = 0; i < config_.batch_count && !pc.magazine.empty(); ++i) {
    const Addr obj = pc.magazine.front();
    pc.magazine.erase(pc.magazine.begin());
    // free_block() updates the slab descriptor's free count and linkage.
    const PageInfo* page = PageFor(obj);
    DPROF_CHECK(page != nullptr && page->kind == PageInfo::Kind::kSlab);
    ctx.Access(fn_refill_, arenas_[ctx.core()].slabs[page->slab_id].page_base + 8, 16, true);
    ReturnToSlab(cache, obj);
  }
  ctx.LockRelease(*cache.lock, fn_free_);
}

void SlabAllocator::TouchLiveAccounting(KmemCache& cache, uint64_t now, int delta) {
  AllocatorTypeStats& st = cache.stats;
  // Per-core clocks are only loosely synchronized; never integrate backwards.
  if (now > st.last_event) {
    st.live_cycles += static_cast<double>(st.live) * static_cast<double>(now - st.last_event);
    st.last_event = now;
  }
  if (delta > 0) {
    st.live += static_cast<uint64_t>(delta);
    st.peak_live = std::max(st.peak_live, st.live);
  } else {
    DPROF_CHECK(st.live >= static_cast<uint64_t>(-delta));
    st.live -= static_cast<uint64_t>(-delta);
  }
}

void SlabAllocator::CommitAllocEvent(TypeId type, Addr base, uint32_t size, int core,
                                     uint64_t now) {
  KmemCache& cache = CacheFor(type);
  ++cache.stats.allocs;
  TouchLiveAccounting(cache, now, +1);
  for (AllocationObserver* obs : observers_) {
    obs->OnAlloc(type, base, size, core, now);
  }
}

void SlabAllocator::CommitFreeEvent(TypeId type, Addr base, uint32_t size, int core,
                                    uint64_t now, bool alien) {
  KmemCache& cache = CacheFor(type);
  ++cache.stats.frees;
  if (alien) {
    ++cache.stats.alien_frees;
  }
  TouchLiveAccounting(cache, now, -1);
  for (AllocationObserver* obs : observers_) {
    obs->OnFree(type, base, size, core, now);
  }
}

Addr SlabAllocator::Alloc(CoreContext& ctx, TypeId type, FunctionId ip) {
  KmemCache& cache = CacheFor(type);
  PerCoreCache& pc = cache.per_core[ctx.core()];

  // Fast path: pop from this core's array_cache.
  ctx.Compute(ip, 20);
  ctx.Access(fn_alloc_, pc.array_cache_addr, 16, true);
  if (pc.magazine.empty()) {
    Refill(ctx, cache, pc);
  }
  const Addr obj = pc.magazine.back();
  pc.magazine.pop_back();
  // Read the magazine slot that held the pointer.
  ctx.Read(fn_alloc_, pc.array_cache_addr + 24 + 8 * (pc.magazine.size() % 13), 8);

  // Objects in a core's magazine always come from its own arena.
  Arena& arena = arenas_[ctx.core()];
  const PageInfo* page = PageFor(obj);
  DPROF_CHECK(page != nullptr && page->kind == PageInfo::Kind::kSlab);
  Slab& slab = arena.slabs[page->slab_id];
  const uint32_t idx = static_cast<uint32_t>((obj - slab.objs_base) / cache.obj_size);
  slab.home[idx] = static_cast<int8_t>(ctx.core());

  ctx.NotifyAllocEvent(type, obj, cache.obj_size);
  return obj;
}

void SlabAllocator::Free(CoreContext& ctx, Addr addr, FunctionId ip) {
  const ResolveResult res = Resolve(addr);
  DPROF_CHECK(res.valid);
  KmemCache& cache = CacheFor(res.type);
  const int owner = ArenaOf(res.base);
  DPROF_CHECK(owner >= 0 && owner < machine_->num_cores());
  const PageInfo* page = PageFor(res.base);
  DPROF_CHECK(page != nullptr && page->kind == PageInfo::Kind::kSlab);
  Slab& slab = arenas_[owner].slabs[page->slab_id];
  const uint32_t idx = static_cast<uint32_t>((res.base - slab.objs_base) / cache.obj_size);
  const int home = slab.home[idx];
  DPROF_CHECK(home >= 0);
  slab.home[idx] = -1;

  // kfree reads the object's page metadata to find its cache.
  ctx.Compute(ip, 25);
  ctx.Read(fn_free_, slab.page_base, 8);

  ctx.NotifyFreeEvent(res.type, res.base, cache.obj_size, home != ctx.core());

  if (home == ctx.core()) {
    PerCoreCache& pc = cache.per_core[ctx.core()];
    ctx.Access(fn_free_, pc.array_cache_addr, 16, true);
    pc.magazine.push_back(res.base);
    if (pc.magazine.size() > config_.magazine_capacity) {
      FlushMagazine(ctx, cache, pc);
    }
  } else if (cache.pin_home) {
    // kPinHome: hand the object straight back to its home core, skipping
    // the alien array and the batched drain's remote writes to the home
    // core's array_cache and slab header. In engine mode the host transfer
    // is staged per freeing core and lands at the epoch boundary, the same
    // channel DrainAlien uses.
    PerCoreCache& pc = cache.per_core[ctx.core()];
    if (ctx.recording()) {
      pc.staged.push_back(AlienEntry{res.base, static_cast<int8_t>(home)});
    } else {
      PerCoreCache& home_pc = cache.per_core[home];
      home_pc.magazine.push_back(res.base);
      if (home_pc.magazine.size() > config_.magazine_capacity) {
        for (uint32_t i = 0; i < config_.batch_count && !home_pc.magazine.empty(); ++i) {
          const Addr obj = home_pc.magazine.front();
          home_pc.magazine.erase(home_pc.magazine.begin());
          ReturnToSlab(cache, obj);
        }
      }
    }
  } else {
    // Alien free: queue the object on this core's alien array; a full array
    // drains in a batch under the cache lock (__drain_alien_cache), writing
    // the home cores' array_caches — the remote writes that make
    // array_cache objects bounce between cores (paper Table 6.1/6.2).
    PerCoreCache& pc = cache.per_core[ctx.core()];
    ctx.Access(fn_free_, pc.alien_addr, 16, true);
    pc.alien.push_back(AlienEntry{res.base, static_cast<int8_t>(home)});
    if (pc.alien.size() >= config_.batch_count) {
      DrainAlien(ctx, cache, pc);
    }
  }
}

void SlabAllocator::DrainAlien(CoreContext& ctx, KmemCache& cache, PerCoreCache& pc) {
  ctx.LockAcquire(*cache.lock, fn_drain_alien_);
  ctx.Compute(fn_drain_alien_, 60);
  for (const AlienEntry& entry : pc.alien) {
    ctx.Read(fn_drain_alien_, pc.alien_addr + 24, 8);
    // free_block() updates the object's slab descriptor (free counts, list
    // linkage) — a remote write to the "slab" header that makes slab
    // bookkeeping bounce between cores (Table 6.1).
    if (const PageInfo* page = PageFor(entry.obj);
        page != nullptr && page->kind == PageInfo::Kind::kSlab) {
      ctx.Write(fn_drain_alien_, arenas_[entry.home].slabs[page->slab_id].page_base + 16, 8);
    }
    PerCoreCache& home_pc = cache.per_core[entry.home];
    ctx.Access(fn_drain_alien_, home_pc.array_cache_addr, 16, true);
    if (ctx.recording()) {
      // Engine mode: the simulated traffic is recorded now, but the host
      // transfer into the home core's magazine lands at the epoch boundary
      // (FlushEpoch) so the home core's state stays core-owned during the
      // parallel phase.
      pc.staged.push_back(entry);
      continue;
    }
    home_pc.magazine.push_back(entry.obj);
    if (home_pc.magazine.size() > config_.magazine_capacity) {
      for (uint32_t i = 0; i < config_.batch_count && !home_pc.magazine.empty(); ++i) {
        const Addr obj = home_pc.magazine.front();
        home_pc.magazine.erase(home_pc.magazine.begin());
        // free_block() updates the slab descriptor of the returned object.
        if (const PageInfo* obj_page = PageFor(obj);
            obj_page != nullptr && obj_page->kind == PageInfo::Kind::kSlab) {
          ctx.Access(fn_refill_, arenas_[ArenaOf(obj)].slabs[obj_page->slab_id].page_base + 8,
                     16, true);
        }
        ReturnToSlab(cache, obj);
      }
    }
  }
  pc.alien.clear();
  ctx.LockRelease(*cache.lock, fn_drain_alien_);
}

void SlabAllocator::FlushEpoch() {
  // Deterministic application order: cache id, then staging core, then FIFO.
  for (KmemCache& cache : caches_) {
    for (PerCoreCache& pc : cache.per_core) {
      for (const AlienEntry& entry : pc.staged) {
        cache.per_core[entry.home].magazine.push_back(entry.obj);
      }
      pc.staged.clear();
    }
  }
}

ResolveResult SlabAllocator::Resolve(Addr addr) const {
  ResolveResult out;
  const PageInfo* page = PageFor(addr);
  if (page == nullptr) {
    return out;
  }
  if (page->kind == PageInfo::Kind::kSlab) {
    const Arena& arena = arenas_[ArenaOf(addr)];
    const Slab& slab = arena.slabs[page->slab_id];
    const KmemCache& cache = caches_[slab.cache_id];
    if (addr < slab.objs_base) {
      out.valid = true;
      out.type = slab_type_;
      out.base = slab.page_base;
      out.offset = static_cast<uint32_t>(addr - slab.page_base);
      out.size = config_.slab_header_size;
      return out;
    }
    const uint64_t idx = (addr - slab.objs_base) / cache.obj_size;
    if (idx >= slab.num_objects) {
      return out;  // slab tail padding
    }
    out.valid = true;
    out.type = cache.type;
    out.base = slab.objs_base + idx * cache.obj_size;
    out.offset = static_cast<uint32_t>(addr - out.base);
    out.size = cache.obj_size;
    return out;
  }
  if (page->kind == PageInfo::Kind::kMeta) {
    // Few, long-lived ranges: linear scan is fine.
    for (const MetaRange& range : meta_ranges_) {
      if (addr >= range.base && addr < range.base + range.size) {
        out.valid = true;
        out.type = range.type;
        out.base = range.base;
        out.offset = static_cast<uint32_t>(addr - range.base);
        out.size = range.size;
        return out;
      }
    }
  }
  return out;
}

void SlabAllocator::RemoveObserver(AllocationObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

const AllocatorTypeStats& SlabAllocator::type_stats(TypeId type) const {
  auto it = cache_by_type_.find(type);
  return it == cache_by_type_.end() ? empty_stats_ : caches_[it->second].stats;
}

double SlabAllocator::AverageLiveBytes(TypeId type, uint64_t now) const {
  auto it = cache_by_type_.find(type);
  if (it == cache_by_type_.end()) {
    return 0.0;
  }
  const KmemCache& cache = caches_[it->second];
  const AllocatorTypeStats& st = cache.stats;
  if (now == 0) {
    return 0.0;
  }
  double integral = st.live_cycles;
  if (now > st.last_event) {
    integral += static_cast<double>(st.live) * static_cast<double>(now - st.last_event);
  }
  return integral / static_cast<double>(now) * cache.obj_size;
}

uint64_t SlabAllocator::LiveCount(TypeId type) const { return type_stats(type).live; }

std::vector<Addr> SlabAllocator::LiveObjects(TypeId type, size_t max) const {
  std::vector<Addr> out;
  // Statically registered objects are always live.
  for (const MetaRange& range : statics_) {
    if (range.type == type && out.size() < max) {
      out.push_back(range.base);
    }
  }
  auto it = cache_by_type_.find(type);
  if (it == cache_by_type_.end() || out.size() >= max) {
    return out;
  }
  const uint32_t cache_id = it->second;
  const KmemCache& cache = caches_[cache_id];
  for (const Arena& arena : arenas_) {
    for (const Slab& slab : arena.slabs) {
      if (slab.cache_id != cache_id) {
        continue;
      }
      for (uint32_t i = 0; i < slab.num_objects && out.size() < max; ++i) {
        if (slab.home[i] >= 0) {
          out.push_back(slab.objs_base + static_cast<Addr>(i) * cache.obj_size);
        }
      }
      if (out.size() >= max) {
        return out;
      }
    }
  }
  return out;
}

}  // namespace dprof
