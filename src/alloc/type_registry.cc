#include "src/alloc/type_registry.h"

namespace dprof {

TypeId TypeRegistry::Register(const std::string& name, uint32_t size) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    DPROF_CHECK(types_[it->second].size == size);
    return it->second;
  }
  DPROF_CHECK(size > 0);
  const TypeId id = static_cast<TypeId>(types_.size());
  types_.push_back(TypeInfo{name, size});
  by_name_.emplace(name, id);
  return id;
}

TypeId TypeRegistry::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidType : it->second;
}

const TypeInfo& TypeRegistry::Info(TypeId id) const {
  DPROF_CHECK(id < types_.size());
  return types_[id];
}

}  // namespace dprof
