#include "src/alloc/type_transform.h"

#include <algorithm>

namespace dprof {

const char* TypeTransformKindName(TypeTransformKind kind) {
  switch (kind) {
    case TypeTransformKind::kIdentity:
      return "identity";
    case TypeTransformKind::kPadToLine:
      return "pad_to_line";
    case TypeTransformKind::kAlign:
      return "align";
    case TypeTransformKind::kRecolor:
      return "recolor";
    case TypeTransformKind::kReplicate:
      return "replicate";
    case TypeTransformKind::kPinHome:
      return "pin_home";
  }
  return "unknown";
}

bool ParseTypeTransformKind(std::string_view name, TypeTransformKind* out) {
  for (const TypeTransformKind kind :
       {TypeTransformKind::kIdentity, TypeTransformKind::kPadToLine, TypeTransformKind::kAlign,
        TypeTransformKind::kRecolor, TypeTransformKind::kReplicate,
        TypeTransformKind::kPinHome}) {
    if (name == TypeTransformKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

bool ParseTypeTransformSpec(std::string_view spec, TypeTransformKind* out, int* param) {
  *param = -1;
  const size_t at = spec.find('@');
  if (at == std::string_view::npos) {
    return ParseTypeTransformKind(spec, out);
  }
  if (!ParseTypeTransformKind(spec.substr(0, at), out)) {
    return false;
  }
  const std::string_view digits = spec.substr(at + 1);
  if (digits.empty() || digits.size() > 4) {
    return false;
  }
  int value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + (c - '0');
  }
  *param = value;
  return true;
}

std::string TypeTransformSpecName(TypeTransformKind kind, int param) {
  std::string name = TypeTransformKindName(kind);
  if (param >= 0) {
    name += '@';
    name += std::to_string(param);
  }
  return name;
}

const std::vector<TypeTransformKind>& AllTypeTransformKinds() {
  static const std::vector<TypeTransformKind>* kinds = new std::vector<TypeTransformKind>{
      TypeTransformKind::kPadToLine, TypeTransformKind::kAlign, TypeTransformKind::kRecolor,
      TypeTransformKind::kReplicate, TypeTransformKind::kPinHome};
  return *kinds;
}

void TransformSet::Add(const std::string& type, TypeTransformKind kind, int param) {
  if (Has(type, kind)) {
    return;
  }
  entries_.push_back(TypeTransform{type, kind, param});
}

bool TransformSet::Has(std::string_view type, TypeTransformKind kind) const {
  return std::any_of(entries_.begin(), entries_.end(), [&](const TypeTransform& t) {
    return t.kind == kind && t.type == type;
  });
}

int TransformSet::ParamFor(std::string_view type, TypeTransformKind kind) const {
  for (const TypeTransform& t : entries_) {
    if (t.kind == kind && t.type == type) {
      return t.param;
    }
  }
  return -1;
}

bool TransformSet::AnyFor(std::string_view type) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const TypeTransform& t) { return t.type == type; });
}

std::string TransformSet::ToString() const {
  std::string out;
  for (const TypeTransform& t : entries_) {
    if (!out.empty()) {
      out += ',';
    }
    out += t.type;
    out += ':';
    out += TypeTransformSpecName(t.kind, t.param);
  }
  return out;
}

}  // namespace dprof
