#include "src/alloc/type_transform.h"

#include <algorithm>

namespace dprof {

const char* TypeTransformKindName(TypeTransformKind kind) {
  switch (kind) {
    case TypeTransformKind::kIdentity:
      return "identity";
    case TypeTransformKind::kPadToLine:
      return "pad_to_line";
    case TypeTransformKind::kAlign:
      return "align";
    case TypeTransformKind::kRecolor:
      return "recolor";
    case TypeTransformKind::kReplicate:
      return "replicate";
    case TypeTransformKind::kPinHome:
      return "pin_home";
  }
  return "unknown";
}

bool ParseTypeTransformKind(std::string_view name, TypeTransformKind* out) {
  for (const TypeTransformKind kind :
       {TypeTransformKind::kIdentity, TypeTransformKind::kPadToLine, TypeTransformKind::kAlign,
        TypeTransformKind::kRecolor, TypeTransformKind::kReplicate,
        TypeTransformKind::kPinHome}) {
    if (name == TypeTransformKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

const std::vector<TypeTransformKind>& AllTypeTransformKinds() {
  static const std::vector<TypeTransformKind>* kinds = new std::vector<TypeTransformKind>{
      TypeTransformKind::kPadToLine, TypeTransformKind::kAlign, TypeTransformKind::kRecolor,
      TypeTransformKind::kReplicate, TypeTransformKind::kPinHome};
  return *kinds;
}

void TransformSet::Add(const std::string& type, TypeTransformKind kind) {
  if (Has(type, kind)) {
    return;
  }
  entries_.push_back(TypeTransform{type, kind});
}

bool TransformSet::Has(std::string_view type, TypeTransformKind kind) const {
  return std::any_of(entries_.begin(), entries_.end(), [&](const TypeTransform& t) {
    return t.kind == kind && t.type == type;
  });
}

bool TransformSet::AnyFor(std::string_view type) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const TypeTransform& t) { return t.type == type; });
}

std::string TransformSet::ToString() const {
  std::string out;
  for (const TypeTransform& t : entries_) {
    if (!out.empty()) {
      out += ',';
    }
    out += t.type;
    out += ':';
    out += TypeTransformKindName(t.kind);
  }
  return out;
}

}  // namespace dprof
