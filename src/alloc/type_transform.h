// Mechanical data-layout transforms applied per allocated type.
//
// A TypeTransform names one of the fixes the paper's case studies apply by
// hand (§6.1, §6.2, §8) in a form the allocator can interpret mechanically
// at cache-creation time: pad objects to whole cache lines, line-align
// object runs, stagger placements across associativity sets (slab
// coloring), replicate shared singletons per core, or return remote frees
// straight to the allocating core's arena. A TransformSet is the value
// object `dprof whatif` builds its counterfactual runs from: the same
// scenario re-run with one TransformSet entry changed is an exact causal
// experiment on that fix.
//
// Transforms are keyed by type *name*, not TypeId: a TransformSet is
// assembled before the workload registers its types, and the allocator
// resolves names lazily when each kmem_cache or static registration is
// created.

#ifndef DPROF_SRC_ALLOC_TYPE_TRANSFORM_H_
#define DPROF_SRC_ALLOC_TYPE_TRANSFORM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dprof {

enum class TypeTransformKind : uint8_t {
  // No layout change. The control arm: a run with only identity transforms
  // is byte-identical to a run with none.
  kIdentity,
  // Round the object stride up to a whole number of cache lines, so no two
  // objects share a line (kills false sharing between neighbours) and
  // statically carved arrays pack densely line by line instead of at their
  // hand-chosen stride (kills stride aliasing).
  kPadToLine,
  // Line-align the start of each object run without changing the stride.
  kAlign,
  // Slab coloring: stagger successive slabs (or array elements) by one line
  // per color so hot objects spread over associativity sets instead of
  // piling onto one (the paper's conflict-miss fix, §4.3).
  kRecolor,
  // Give a shared singleton (static registration) one private line per
  // core. Workloads that index their per-core slice stop bouncing the
  // shared line (the paper's per-CPU-counter fix for net_device stats).
  kReplicate,
  // Return remote frees directly to the allocating core's arena, skipping
  // the alien array and the batched drain's remote writes to the home
  // core's array_cache and slab headers (§6.1's allocator traffic).
  kPinHome,
};

// Stable lower-case name used by the CLI, JSON documents, and tests.
const char* TypeTransformKindName(TypeTransformKind kind);

// Parses a CLI spelling ("pad_to_line", "pin_home", ...). Returns false on
// unknown names.
bool ParseTypeTransformKind(std::string_view name, TypeTransformKind* out);

// Parses a transform spec with an optional "@N" parameter suffix
// ("pin_home@2" = pin to home socket 2). Plain spellings set *param to -1.
bool ParseTypeTransformSpec(std::string_view spec, TypeTransformKind* out, int* param);

// "kind" or "kind@param" — the inverse of ParseTypeTransformSpec.
std::string TypeTransformSpecName(TypeTransformKind kind, int param);

// The candidate catalog `whatif --auto` searches (every kind but identity).
const std::vector<TypeTransformKind>& AllTypeTransformKinds();

struct TypeTransform {
  std::string type;  // registered type name, e.g. "size-1024"
  TypeTransformKind kind = TypeTransformKind::kIdentity;
  // Kind-specific parameter; -1 = unparameterized. For kPinHome on a
  // multi-socket topology this names the home socket the type's slabs are
  // placed on (-1 = each slab stays on its allocating core's socket).
  int param = -1;
};

// An ordered set of transforms, carried by value through SlabConfig and
// RunSpec. Multiple transforms may target one type (e.g. pad + recolor);
// duplicates are ignored.
class TransformSet {
 public:
  void Add(const std::string& type, TypeTransformKind kind, int param = -1);

  bool Has(std::string_view type, TypeTransformKind kind) const;
  // The parameter of the (type, kind) entry, or -1 when absent or
  // unparameterized.
  int ParamFor(std::string_view type, TypeTransformKind kind) const;
  bool AnyFor(std::string_view type) const;
  bool empty() const { return entries_.empty(); }
  const std::vector<TypeTransform>& entries() const { return entries_; }

  // Canonical "type:kind,type:kind" rendering (insertion order), for labels
  // and diagnostics.
  std::string ToString() const;

 private:
  std::vector<TypeTransform> entries_;
};

}  // namespace dprof

#endif  // DPROF_SRC_ALLOC_TYPE_TRANSFORM_H_
