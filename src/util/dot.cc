#include "src/util/dot.h"

#include <cstdio>

namespace dprof {

namespace {

std::string EscapeLabel(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

}  // namespace

DotWriter::DotWriter(std::string graph_name) : name_(std::move(graph_name)) {}

int DotWriter::AddNode(const std::string& label, bool dark) {
  nodes_.push_back(Node{label, dark});
  return static_cast<int>(nodes_.size()) - 1;
}

void DotWriter::AddEdge(int from, int to, uint64_t weight, bool bold) {
  edges_.push_back(Edge{from, to, weight, bold});
}

std::string DotWriter::ToString() const {
  std::string out = "digraph \"" + EscapeLabel(name_) + "\" {\n";
  out += "  node [shape=box, style=filled, fillcolor=white];\n";
  char buf[256];
  for (size_t i = 0; i < nodes_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "  n%zu [label=\"%s\"%s];\n", i,
                  EscapeLabel(nodes_[i].label).c_str(),
                  nodes_[i].dark ? ", fillcolor=gray55, fontcolor=white" : "");
    out += buf;
  }
  for (const auto& e : edges_) {
    std::snprintf(buf, sizeof(buf), "  n%d -> n%d [label=\"%llu\"%s];\n", e.from, e.to,
                  static_cast<unsigned long long>(e.weight),
                  e.bold ? ", penwidth=3, color=black" : "");
    out += buf;
  }
  out += "}\n";
  return out;
}

}  // namespace dprof
