// Deterministic, seedable pseudo-random number generator used by every
// stochastic component in the simulator and in DProf itself.
//
// All randomness in the project flows through Rng so that benches and tests can
// fix seeds and regenerate the paper tables bit-for-bit run-to-run.

#ifndef DPROF_SRC_UTIL_RNG_H_
#define DPROF_SRC_UTIL_RNG_H_

#include <cstdint>

namespace dprof {

// xoshiro256** with splitmix64 seeding. Small, fast, and good enough for
// sampling decisions; not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step.
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform integer in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

  // Bernoulli trial with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  // Geometric-ish jittered interval around `mean`, used for sampling periods.
  // Returns a value in [mean/2, 3*mean/2] uniformly; never returns 0.
  uint64_t Jitter(uint64_t mean) {
    if (mean <= 1) {
      return 1;
    }
    const uint64_t half = mean / 2;
    return half + Below(mean) + 1;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4] = {};
};

}  // namespace dprof

#endif  // DPROF_SRC_UTIL_RNG_H_
