// A minimal streaming JSON writer for the dprof CLI's machine-readable
// output (profile summaries, bench results). Commas and quoting are managed
// automatically; the caller is responsible for well-formed nesting, which
// CHECK-fails loudly rather than emitting broken documents.

#ifndef DPROF_SRC_UTIL_JSON_WRITER_H_
#define DPROF_SRC_UTIL_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dprof {

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Must be called inside an object, immediately before the value.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  // Splices a pre-rendered JSON document in as one value (e.g. a view's
  // ToJson() output embedded in a larger report). The caller vouches for its
  // validity.
  JsonWriter& Raw(std::string_view json);

  // The finished document. CHECK-fails if containers are still open.
  const std::string& str() const;

  static std::string Escape(std::string_view raw);

 private:
  enum class Frame { kObject, kArray };

  void BeforeValue();

  std::string out_;
  std::vector<Frame> stack_;
  // True when the next value in the current container needs a ',' first.
  std::vector<bool> needs_comma_;
  bool pending_key_ = false;
};

}  // namespace dprof

#endif  // DPROF_SRC_UTIL_JSON_WRITER_H_
