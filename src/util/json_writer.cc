#include "src/util/json_writer.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/util/check.h"

namespace dprof {

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  DPROF_CHECK(!stack_.empty() && stack_.back() == Frame::kObject);
  DPROF_CHECK(!pending_key_);
  out_ += '}';
  stack_.pop_back();
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  DPROF_CHECK(!stack_.empty() && stack_.back() == Frame::kArray);
  out_ += ']';
  stack_.pop_back();
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  DPROF_CHECK(!stack_.empty() && stack_.back() == Frame::kObject);
  DPROF_CHECK(!pending_key_);
  if (needs_comma_.back()) out_ += ',';
  needs_comma_.back() = true;
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN; null is the conventional stand-in.
    out_ += "null";
    return *this;
  }
  // Shortest representation that round-trips: machine-readable output must
  // not truncate (bench baselines get diffed across PRs).
  char buf[64];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  DPROF_CHECK(!json.empty());
  BeforeValue();
  out_ += json;
  return *this;
}

const std::string& JsonWriter::str() const {
  DPROF_CHECK(stack_.empty());
  return out_;
}

std::string JsonWriter::Escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    DPROF_CHECK(stack_.back() == Frame::kArray);
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  } else {
    DPROF_CHECK(out_.empty());
  }
}

}  // namespace dprof
