// Lightweight structured-error value threaded through engine, hierarchy,
// allocator, sampling, and CLI. A Status either is Ok() or carries an error
// code, the name of the seam that raised it, and a human-readable message.
// It deliberately has no dependencies so every layer can speak it.

#ifndef DPROF_SRC_UTIL_STATUS_H_
#define DPROF_SRC_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace dprof {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,    // malformed user input (flags, RunSpec fields)
  kResourceExhausted,  // a bounded resource genuinely ran out (slab arena)
  kDataLoss,           // an invariant audit found corrupted state
  kDeadlineExceeded,   // the watchdog converted a hang into an error
  kInternal,           // anything else that should never happen
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kDataLoss:
      return "data_loss";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kInternal:
      return "internal";
  }
  return "?";
}

class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string seam, std::string message)
      : code_(code), seam_(std::move(seam)), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& seam() const { return seam_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "ok";
    }
    std::string out = StatusCodeName(code_);
    if (!seam_.empty()) {
      out += " [";
      out += seam_;
      out += "]";
    }
    out += ": ";
    out += message_;
    return out;
  }

  // Keeps the first error: assigning onto an existing error is a no-op, so
  // call sites can accumulate without clobbering the root cause.
  void Update(const Status& other) {
    if (ok() && !other.ok()) {
      *this = other;
    }
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string seam_;
  std::string message_;
};

}  // namespace dprof

#endif  // DPROF_SRC_UTIL_STATUS_H_
