// Graphviz DOT emission for DProf's data flow view (paper Figure 6-1).
//
// Nodes are functions; edges carry frequencies; "bold" edges mark CPU
// transitions and "dark" nodes mark high average access latency, mirroring the
// figure's legend.

#ifndef DPROF_SRC_UTIL_DOT_H_
#define DPROF_SRC_UTIL_DOT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dprof {

class DotWriter {
 public:
  explicit DotWriter(std::string graph_name);

  // Returns the node id.
  int AddNode(const std::string& label, bool dark);
  void AddEdge(int from, int to, uint64_t weight, bool bold);

  std::string ToString() const;

 private:
  struct Node {
    std::string label;
    bool dark = false;
  };
  struct Edge {
    int from = 0;
    int to = 0;
    uint64_t weight = 0;
    bool bold = false;
  };

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
};

}  // namespace dprof

#endif  // DPROF_SRC_UTIL_DOT_H_
