// Lightweight invariant checking for the simulator.
//
// DPROF_CHECK is always on (simulation correctness beats raw speed here);
// DPROF_DCHECK compiles out in NDEBUG builds and is used on hot paths.

#ifndef DPROF_SRC_UTIL_CHECK_H_
#define DPROF_SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace dprof {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "DPROF_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace dprof

#define DPROF_CHECK(expr)                                \
  do {                                                   \
    if (!(expr)) {                                       \
      ::dprof::CheckFailed(__FILE__, __LINE__, #expr);   \
    }                                                    \
  } while (0)

#ifdef NDEBUG
#define DPROF_DCHECK(expr) \
  do {                     \
  } while (0)
#else
#define DPROF_DCHECK(expr) DPROF_CHECK(expr)
#endif

#endif  // DPROF_SRC_UTIL_CHECK_H_
