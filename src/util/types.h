// Common scalar type aliases shared by every module.

#ifndef DPROF_SRC_UTIL_TYPES_H_
#define DPROF_SRC_UTIL_TYPES_H_

#include <cstdint>

namespace dprof {

// Simulated virtual/physical address (the simulator does not distinguish).
using Addr = uint64_t;

// Identifier of a data type registered with the type registry (slab pools,
// static objects). Matches the paper's notion of a "data type name".
using TypeId = uint32_t;

// Identifier of a code location. The simulator models program counters at
// function granularity, which is the granularity the paper's path traces and
// data flow views report.
using FunctionId = uint32_t;

inline constexpr TypeId kInvalidType = 0xffffffffu;
inline constexpr FunctionId kInvalidFunction = 0xffffffffu;
inline constexpr Addr kNullAddr = 0;

// Nominal simulated core frequency used to convert cycles to wall-clock
// seconds in reports (the paper reports seconds and samples/second).
inline constexpr double kCyclesPerSecond = 1e9;

}  // namespace dprof

#endif  // DPROF_SRC_UTIL_TYPES_H_
