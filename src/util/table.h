// ASCII table rendering for bench output and DProf view reports.
//
// The bench harness prints the same rows the paper's tables report; this
// printer keeps the formatting logic in one place.

#ifndef DPROF_SRC_UTIL_TABLE_H_
#define DPROF_SRC_UTIL_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dprof {

class TablePrinter {
 public:
  enum class Align { kLeft, kRight };

  explicit TablePrinter(std::vector<std::string> headers);

  // Adds a row; cells beyond the header count are dropped, missing cells are
  // rendered empty.
  void AddRow(std::vector<std::string> cells);

  // Convenience cell formatters.
  static std::string Fixed(double v, int decimals);
  static std::string Percent(double v, int decimals = 2);
  static std::string Bytes(uint64_t bytes);
  static std::string Count(uint64_t n);

  void SetAlign(size_t column, Align align);

  // Renders the table with a separator under the header row.
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dprof

#endif  // DPROF_SRC_UTIL_TABLE_H_
