#include "src/util/table.h"

#include <cstdio>

namespace dprof {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kRight) {
  if (!aligns_.empty()) {
    aligns_[0] = Align::kLeft;
  }
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string TablePrinter::Percent(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, v);
  return buf;
}

std::string TablePrinter::Bytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= 1024ull * 1024ull) {
    std::snprintf(buf, sizeof(buf), "%.2fMB", static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 1024ull) {
    std::snprintf(buf, sizeof(buf), "%.2fKB", static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string TablePrinter::Count(uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(n));
  return buf;
}

void TablePrinter::SetAlign(size_t column, Align align) {
  if (column < aligns_.size()) {
    aligns_[column] = align;
  }
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) {
        widths[c] = row[c].size();
      }
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      const size_t pad = widths[c] - cell.size();
      if (c != 0) {
        line += "  ";
      }
      if (aligns_[c] == Align::kLeft) {
        line += cell;
        line.append(pad, ' ');
      } else {
        line.append(pad, ' ');
        line += cell;
      }
    }
    // Trim trailing spaces for tidy output.
    while (!line.empty() && line.back() == ' ') {
      line.pop_back();
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

}  // namespace dprof
