// Small statistics helpers: running mean/max accumulators and fixed-bucket
// histograms. Used for latency accounting, working-set estimation, and the
// bench tables.

#ifndef DPROF_SRC_UTIL_STATS_H_
#define DPROF_SRC_UTIL_STATS_H_

#include <cstdint>
#include <vector>

namespace dprof {

// Accumulates count / sum / min / max; O(1) memory.
class RunningStat {
 public:
  void Add(double x) {
    if (count_ == 0 || x < min_) {
      min_ = x;
    }
    if (count_ == 0 || x > max_) {
      max_ = x;
    }
    sum_ += x;
    ++count_;
  }

  void Merge(const RunningStat& other) {
    if (other.count_ == 0) {
      return;
    }
    if (count_ == 0 || other.min_ < min_) {
      min_ = other.min_;
    }
    if (count_ == 0 || other.max_ > max_) {
      max_ = other.max_;
    }
    sum_ += other.sum_;
    count_ += other.count_;
  }

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Integer-keyed counter histogram with dense storage up to a bound.
class DenseHistogram {
 public:
  explicit DenseHistogram(size_t buckets) : counts_(buckets, 0) {}

  void Add(size_t bucket, uint64_t n = 1) {
    if (bucket >= counts_.size()) {
      counts_.resize(bucket + 1, 0);
    }
    counts_[bucket] += n;
  }

  uint64_t At(size_t bucket) const { return bucket < counts_.size() ? counts_[bucket] : 0; }
  size_t size() const { return counts_.size(); }

  uint64_t Total() const {
    uint64_t t = 0;
    for (uint64_t c : counts_) {
      t += c;
    }
    return t;
  }

  double Mean() const {
    return counts_.empty() ? 0.0 : static_cast<double>(Total()) / static_cast<double>(counts_.size());
  }

  uint64_t MaxCount() const {
    uint64_t m = 0;
    for (uint64_t c : counts_) {
      if (c > m) {
        m = c;
      }
    }
    return m;
  }

  const std::vector<uint64_t>& counts() const { return counts_; }

 private:
  std::vector<uint64_t> counts_;
};

// Percentage helper that tolerates zero denominators.
inline double Pct(double num, double den) { return den == 0.0 ? 0.0 : 100.0 * num / den; }

}  // namespace dprof

#endif  // DPROF_SRC_UTIL_STATS_H_
