#include "src/workload/memcached.h"

namespace dprof {

// One core's slice of the workload: its memcached instance, its NIC receive
// queue (the load generator always has a request pending), and its share of
// transmit-queue draining.
//
// Step() executes one *phase*, not one whole request: fine-grained steps
// keep cross-core clock skew small, which matters for realistic lock-wait
// accounting (the machine steps the minimum-clock core).
class MemcachedWorkload::CoreDriver final : public dprof::CoreDriver {
 public:
  CoreDriver(KernelEnv* env, const MemcachedConfig* config, const std::vector<Addr>* socks,
             int core)
      : env_(env), config_(config), socks_(socks), core_(core) {}

  bool Step(CoreContext& ctx) override {
    switch (phase_) {
      case Phase::kDrain:
        if (drained_ < config_->tx_drain_batch && !env_->tx_queue(core_).empty()) {
          DrainOnePacket(ctx);
        } else {
          drained_ = 0;
          phase_ = Phase::kReceive;
        }
        return true;
      case Phase::kReceive:
        ReceiveAndProcess(ctx);
        return true;
      case Phase::kTransmit:
        TransmitReply(ctx);
        phase_ = Phase::kDrain;
        return true;
    }
    return true;
  }

  uint64_t requests = 0;
  uint64_t tx_remote = 0;
  uint64_t tx_local = 0;

 private:
  enum class Phase { kDrain, kReceive, kTransmit };

  // --- transmit side: this core owns hardware queue `core_` ------------

  void DrainOnePacket(CoreContext& ctx) {
    const KernelFns& f = env_->fns();
    TxQueue& q = env_->tx_queue(core_);

    // Short critical section: only the queue-head manipulation is locked.
    ctx.LockAcquire(q.lock(), f.qdisc_run);
    ctx.Read(f.pfifo_fast_dequeue, q.base() + 16, 16);
    Packet pkt = q.PopLocked();
    ctx.LockRelease(q.lock(), f.qdisc_run);
    // Unlink the skb from the queue (outside the lock, as pfifo_fast does
    // for the skb itself).
    ctx.Write(f.pfifo_fast_dequeue, pkt.skb, 16);

    TransmitPacket(ctx, pkt);
    ++drained_;
  }

  void TransmitPacket(CoreContext& ctx, const Packet& pkt) {
    const KernelFns& f = env_->fns();

    ctx.Read(f.dev_hard_start_xmit, pkt.skb + 24, 40);
    ctx.Compute(f.dev_hard_start_xmit, 60);
    ctx.Read(f.skb_dma_map, pkt.skb + 64, 32);
    ctx.Compute(f.phys_addr, 30);

    // Descriptor setup: the CPU touches the headers for checksum offload;
    // the NIC DMA engine fetches the payload body without polluting CPU
    // caches.
    ctx.Read(f.ixgbe_xmit_frame, pkt.payload, 256);
    ctx.Write(f.ixgbe_xmit_frame, pkt.skb + 96, 16);
    // Per-transmit statistics on the shared net_device: the true-sharing
    // hot line every core reads and writes.
    ctx.Read(f.ixgbe_xmit_frame, env_->netdev().stats_addr(ctx.core()), 16);
    ctx.Write(f.ixgbe_xmit_frame, env_->netdev().stats_addr(ctx.core()), 16);
    ctx.Compute(f.ixgbe_xmit_frame, 150);
    ctx.Compute(f.local_bh_enable, 40);

    if (ctx.rng().Chance(config_->p_itr_update)) {
      ctx.Write(f.ixgbe_set_itr_msix, env_->netdev().config_addr() + 32, 8);
      ctx.Compute(f.ixgbe_set_itr_msix, 80);
    }

    // Transmit completion: update the sending socket. The wakeup through
    // epoll is coalesced — most completions find the poll flag already set.
    ctx.Compute(f.ixgbe_clean_tx_irq, 90);
    const int owner = pkt.rx_core;
    const Addr sock = sock_addr(owner);
    ctx.Write(f.sock_def_write_space, sock + 192, 16);
    if (ctx.rng().Chance(config_->p_tx_wakeup)) {
      // sock wakeup: the socket's wait queue lock is taken first, then the
      // epoll callback takes the epoll instance's lock (Linux nesting).
      EpollInstance& ep = env_->epoll(owner);
      ctx.LockAcquire(*ep.waitqueue_lock, f.wake_up_sync_key);
      ctx.Write(f.wake_up_sync_key, ep.epitem_addr + 64 + 16, 8);
      ctx.LockAcquire(*ep.epoll_lock, f.ep_poll_callback);
      ctx.Write(f.ep_poll_callback, ep.epitem_addr + 16, 16);
      ctx.Compute(f.ep_poll_callback, 80);
      ctx.LockRelease(*ep.epoll_lock, f.ep_poll_callback);
      ctx.LockRelease(*ep.waitqueue_lock, f.wake_up_sync_key);
    }

    // Free the transmitted packet. On a remote queue this is an alien free:
    // the slab allocator writes the home core's array_cache under the SLAB
    // cache lock.
    ctx.Compute(f.dev_kfree_skb_irq, 30);
    ctx.Read(f.kfree_skb, pkt.skb, 16);
    ctx.Free(pkt.payload, f.kfree);
    ctx.Free(pkt.skb, f.kfree_skb);
  }

  // --- receive + application side --------------------------------------

  // Posts a fresh receive buffer to the NIC ring (ixgbe_alloc_rx_buffers).
  void PostRxBuffer(CoreContext& ctx) {
    const KernelFns& f = env_->fns();
    const KernelTypes& t = env_->types();
    Packet fresh;
    fresh.skb = ctx.Alloc(t.skbuff, f.alloc_skb);
    fresh.payload = ctx.Alloc(t.size1024, f.alloc_skb);
    fresh.rx_core = ctx.core();
    ctx.Write(f.alloc_skb, fresh.skb, 32);  // descriptor setup
    rx_ring_.push_back(fresh);
  }

  void ReceiveAndProcess(CoreContext& ctx) {
    const KernelFns& f = env_->fns();
    Rng& rng = ctx.rng();

    // Keep the NIC receive ring full; the packet we process now was posted
    // rx_ring_entries requests ago, so its buffer is cache-cold.
    while (static_cast<int>(rx_ring_.size()) <= config_->rx_ring_entries) {
      PostRxBuffer(ctx);
    }
    rx_ = rx_ring_.front();
    rx_ring_.pop_front();

    // NIC receive: the device DMA'd the frame into the posted buffer.
    ctx.Compute(f.ixgbe_clean_rx_irq, 120);
    ctx.Write(f.ixgbe_clean_rx_irq, rx_.skb, 128);
    ctx.Write(f.ixgbe_clean_rx_irq, rx_.payload, 128);  // GET request is small
    // Per-receive device statistics: the shared net_device hot line.
    ctx.Read(f.ixgbe_clean_rx_irq, env_->netdev().stats_addr(ctx.core()) + 16, 8);
    ctx.Write(f.ixgbe_clean_rx_irq, env_->netdev().stats_addr(ctx.core()) + 16, 8);
    ctx.Write(f.skb_put, rx_.skb + 8, 16);

    ctx.Read(f.eth_type_trans, rx_.payload, 16);
    ctx.Write(f.eth_type_trans, rx_.skb + 32, 8);
    ctx.Compute(f.eth_type_trans, 30);

    ctx.Read(f.ip_rcv, rx_.payload + 16, 24);
    ctx.Write(f.ip_rcv, rx_.skb + 40, 16);
    ctx.Compute(f.ip_rcv, 80);
    if (rng.Chance(config_->p_drop)) {
      // Malformed packet path: drop without replying.
      ctx.Free(rx_.payload, f.kfree);
      ctx.Free(rx_.skb, f.kfree_skb);
      phase_ = Phase::kDrain;
      return;
    }

    // UDP delivery into the per-core memcached socket.
    const Addr sock = sock_addr(core_);
    ctx.Write(f.lock_sock_nested, sock, 8);
    ctx.Read(f.udp_recvmsg, sock + 64, 64);
    ctx.Write(f.udp_recvmsg, sock + 128, 32);
    ctx.Compute(f.udp_recvmsg, 150);
    ctx.Read(f.skb_copy_datagram_iovec, rx_.payload + 40, 88);
    ctx.Write(f.copy_user_generic_string, env_->user_buffer(core_), 128);
    ctx.Compute(f.copy_user_generic_string, 60);
    if (rng.Chance(config_->p_stats_read)) {
      ctx.Read(f.udp_recvmsg, sock + 256, 64);
    }

    // epoll wakeup delivery to userspace.
    EpollInstance& ep = env_->epoll(core_);
    ctx.LockAcquire(*ep.epoll_lock, f.sys_epoll_wait);
    ctx.Read(f.ep_scan_ready_list, ep.epitem_addr + 16, 32);
    ctx.LockRelease(*ep.epoll_lock, f.sys_epoll_wait);
    ctx.Compute(f.event_handler, 100);

    // memcached userspace: hash the key, miss, build the reply.
    ctx.Read(f.mc_process, env_->user_buffer(core_), 64);
    const Addr table = env_->hashtable(core_);
    for (int probe = 0; probe < 2; ++probe) {
      const Addr line = table + (rng.Next() % (env_->hashtable_size() / 64)) * 64;
      ctx.Read(f.mc_process, line, 16);
    }
    ctx.Compute(f.mc_process, config_->lookup_cycles);
    phase_ = Phase::kTransmit;
  }

  void TransmitReply(CoreContext& ctx) {
    const KernelFns& f = env_->fns();
    const KernelTypes& t = env_->types();
    Rng& rng = ctx.rng();

    // Build the reply.
    const Addr tx_skb = ctx.Alloc(t.skbuff, f.alloc_skb);
    const Addr tx_payload = ctx.Alloc(t.size1024, f.udp_sendmsg);
    ctx.Write(f.udp_sendmsg, tx_skb, 128);
    ctx.Write(f.copy_user_generic_string, tx_payload, 1024);
    ctx.Write(f.skb_put, tx_skb + 8, 16);
    const Addr sock = sock_addr(core_);
    ctx.Read(f.udp_sendmsg, sock + 64, 64);
    ctx.Compute(f.udp_sendmsg, 180);
    if (rng.Chance(config_->p_timestamp)) {
      ctx.Compute(f.getnstimeofday, 40);
      ctx.Write(f.udp_sendmsg, tx_skb + 48, 8);
    }

    // Queue selection: the bug. skb_tx_hash spreads packets over all
    // hardware queues; the fix picks the core-local queue.
    ctx.Read(f.dev_queue_xmit, tx_skb + 24, 24);
    ctx.Compute(f.dev_queue_xmit, 70);
    int queue = core_;
    if (!config_->local_queue_fix) {
      ctx.Read(f.skb_tx_hash, tx_skb + 32, 16);
      ctx.Compute(f.skb_tx_hash, 50);
      queue = static_cast<int>(rng.Next() % env_->num_tx_queues());
    }
    if (queue == core_) {
      ++tx_local;
    } else {
      ++tx_remote;
    }

    // Link the skb (outside the lock), then the short locked enqueue.
    ctx.Write(f.pfifo_fast_enqueue, tx_skb, 16);
    TxQueue& q = env_->tx_queue(queue);
    Packet pkt;
    pkt.skb = tx_skb;
    pkt.payload = tx_payload;
    pkt.skb_type = t.skbuff;
    pkt.rx_core = core_;
    pkt.enqueue_time = ctx.now();
    ctx.LockAcquire(q.lock(), f.dev_queue_xmit);
    ctx.Write(f.pfifo_fast_enqueue, q.base() + 16, 16);
    q.Push(ctx, pkt);
    ctx.LockRelease(q.lock(), f.dev_queue_xmit);

    // Done with the request packet.
    ctx.Free(rx_.payload, f.kfree);
    ctx.Free(rx_.skb, f.kfree_skb);
    ++requests;
  }

  Addr sock_addr(int core) const { return (*socks_)[core]; }

  KernelEnv* env_;
  const MemcachedConfig* config_;
  const std::vector<Addr>* socks_;  // one udp_sock per core, owned by the workload
  int core_;
  Phase phase_ = Phase::kDrain;
  int drained_ = 0;
  Packet rx_;
  std::deque<Packet> rx_ring_;
};

MemcachedWorkload::MemcachedWorkload(KernelEnv* env, const MemcachedConfig& config)
    : env_(env), config_(config) {}

MemcachedWorkload::~MemcachedWorkload() = default;

void MemcachedWorkload::Install(Machine& machine) {
  drivers_.clear();
  if (socks_.empty()) {
    // One long-lived udp_sock per memcached instance, allocated by its
    // owning core so the slab home is right.
    for (int c = 0; c < machine.num_cores(); ++c) {
      CoreContext ctx = machine.Context(c);
      socks_.push_back(ctx.Alloc(env_->types().udp_sock, env_->fns().udp_recvmsg));
    }
  }
  for (int c = 0; c < machine.num_cores(); ++c) {
    drivers_.push_back(std::make_unique<CoreDriver>(env_, &config_, &socks_, c));
    machine.SetDriver(c, drivers_.back().get());
  }
}

uint64_t MemcachedWorkload::CompletedRequests() const {
  uint64_t total = 0;
  for (const auto& d : drivers_) {
    total += d->requests;
  }
  return total;
}

void MemcachedWorkload::ResetStats() {
  for (auto& d : drivers_) {
    d->requests = 0;
    d->tx_remote = 0;
    d->tx_local = 0;
  }
}

uint64_t MemcachedWorkload::TxRemote() const {
  uint64_t total = 0;
  for (const auto& d : drivers_) {
    total += d->tx_remote;
  }
  return total;
}

uint64_t MemcachedWorkload::TxLocal() const {
  uint64_t total = 0;
  for (const auto& d : drivers_) {
    total += d->tx_local;
  }
  return total;
}

}  // namespace dprof
