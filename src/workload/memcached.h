// The memcached case-study workload (paper §6.1).
//
// Sixteen memcached instances, one per core, each serving UDP GETs for a
// non-existent key from a dedicated load generator whose packets are steered
// to that core's NIC receive queue. The intent of the configuration is that
// each request is handled entirely on one core — but the stock kernel's
// skb_tx_hash() picks the *transmit* queue by hashing the packet, so the
// transmit half of nearly every request runs on a remote core: payloads,
// skbuffs, array_caches, the net_device, and sockets all bounce between
// cores, and the Qdisc/SLAB locks get contended.
//
// Setting MemcachedConfig::local_queue_fix installs the driver queue
// selection function the paper's fix adds, which restores core-local
// transmit and yields the ~57% throughput improvement.

#ifndef DPROF_SRC_WORKLOAD_MEMCACHED_H_
#define DPROF_SRC_WORKLOAD_MEMCACHED_H_

#include <memory>
#include <vector>

#include "src/workload/kernel.h"

namespace dprof {

struct MemcachedConfig {
  bool local_queue_fix = false;
  // Max packets drained from this core's hardware queue per step.
  int tx_drain_batch = 8;
  // Pre-posted NIC receive buffers per core. Received packets come from the
  // front of this ring and a fresh buffer is posted at the back, so rx
  // buffers are cold by the time the NIC writes into them and the live
  // skbuff/size-1024 population matches a real driver's.
  int rx_ring_entries = 256;
  // Userspace lookup cost (cycles) per request.
  uint64_t lookup_cycles = 2600;
  // Path-variability knobs; rare paths exist so that Figure 6-3's
  // paths-vs-history-sets experiment has a realistic tail.
  double p_itr_update = 0.10;    // driver interrupt-throttle update path
  double p_timestamp = 0.25;     // timestamping path
  double p_drop = 0.02;          // malformed packet dropped in ip_rcv
  double p_stats_read = 0.05;    // periodic stats read touching udp_sock
  // Fraction of transmit completions that actually wake the socket owner
  // through epoll (wakeups coalesce when the poll flag is already set).
  double p_tx_wakeup = 0.6;
};

class MemcachedWorkload final : public Workload {
 public:
  MemcachedWorkload(KernelEnv* env, const MemcachedConfig& config);
  ~MemcachedWorkload() override;

  void Install(Machine& machine) override;
  uint64_t CompletedRequests() const override;
  void ResetStats() override;

  const MemcachedConfig& config() const { return config_; }
  uint64_t TxRemote() const;  // packets transmitted on a non-local queue
  uint64_t TxLocal() const;

 private:
  class CoreDriver;

  KernelEnv* env_;
  MemcachedConfig config_;
  std::vector<Addr> socks_;
  std::vector<std::unique_ptr<CoreDriver>> drivers_;
};

}  // namespace dprof

#endif  // DPROF_SRC_WORKLOAD_MEMCACHED_H_
