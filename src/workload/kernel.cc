#include "src/workload/kernel.h"

#include <algorithm>

#include "src/machine/faults.h"

namespace dprof {

KernelTypes KernelTypes::Register(TypeRegistry& registry) {
  KernelTypes t;
  t.skbuff = registry.Register("skbuff", 256);
  t.size1024 = registry.Register("size-1024", 1024);
  t.skbuff_fclone = registry.Register("skbuff_fclone", 512);
  t.udp_sock = registry.Register("udp_sock", 1024);
  t.tcp_sock = registry.Register("tcp_sock", 1600);
  t.net_device = registry.Register("net_device", 128);
  t.task_struct = registry.Register("task_struct", 2560);
  t.qdisc = registry.Register("Qdisc", 256);
  t.epitem = registry.Register("epitem", 128);
  t.futex = registry.Register("futex", 64);
  t.user_buffer = registry.Register("user_buffer", 2048);
  t.mc_hashtable = registry.Register("mc_hashtable", 256 * 1024);
  t.mmap_file = registry.Register("mmap_file", 4096);
  return t;
}

KernelFns KernelFns::Intern(SymbolTable& sym) {
  KernelFns f;
  f.alloc_skb = sym.Intern("__alloc_skb");
  f.kfree = sym.Intern("kfree");
  f.kfree_skb = sym.Intern("__kfree_skb");
  f.skb_put = sym.Intern("skb_put");
  f.eth_type_trans = sym.Intern("eth_type_trans");
  f.ip_rcv = sym.Intern("ip_rcv");
  f.udp_recvmsg = sym.Intern("udp_recvmsg");
  f.udp_sendmsg = sym.Intern("udp_sendmsg");
  f.skb_copy_datagram_iovec = sym.Intern("skb_copy_datagram_iovec");
  f.copy_user_generic_string = sym.Intern("copy_user_generic_string");
  f.lock_sock_nested = sym.Intern("lock_sock_nested");
  f.sock_def_write_space = sym.Intern("sock_def_write_space");
  f.ep_poll_callback = sym.Intern("ep_poll_callback");
  f.sys_epoll_wait = sym.Intern("sys_epoll_wait");
  f.ep_scan_ready_list = sym.Intern("ep_scan_ready_list");
  f.wake_up_sync_key = sym.Intern("__wake_up_sync_key");
  f.event_handler = sym.Intern("event_handler");
  f.dev_queue_xmit = sym.Intern("dev_queue_xmit");
  f.skb_tx_hash = sym.Intern("skb_tx_hash");
  f.pfifo_fast_enqueue = sym.Intern("pfifo_fast_enqueue");
  f.pfifo_fast_dequeue = sym.Intern("pfifo_fast_dequeue");
  f.qdisc_run = sym.Intern("__qdisc_run");
  f.dev_hard_start_xmit = sym.Intern("dev_hard_start_xmit");
  f.skb_dma_map = sym.Intern("skb_dma_map");
  f.ixgbe_xmit_frame = sym.Intern("ixgbe_xmit_frame");
  f.ixgbe_clean_rx_irq = sym.Intern("ixgbe_clean_rx_irq");
  f.ixgbe_clean_tx_irq = sym.Intern("ixgbe_clean_tx_irq");
  f.ixgbe_set_itr_msix = sym.Intern("ixgbe_set_itr_msix");
  f.dev_kfree_skb_irq = sym.Intern("dev_kfree_skb_irq");
  f.local_bh_enable = sym.Intern("local_bh_enable");
  f.getnstimeofday = sym.Intern("getnstimeofday");
  f.phys_addr = sym.Intern("__phys_addr");
  f.tcp_v4_rcv = sym.Intern("tcp_v4_rcv");
  f.tcp_create_openreq_child = sym.Intern("tcp_create_openreq_child");
  f.inet_csk_accept = sym.Intern("inet_csk_accept");
  f.tcp_recvmsg = sym.Intern("tcp_recvmsg");
  f.tcp_sendmsg = sym.Intern("tcp_sendmsg");
  f.tcp_write_xmit = sym.Intern("tcp_write_xmit");
  f.tcp_close = sym.Intern("tcp_close");
  f.do_futex = sym.Intern("do_futex");
  f.futex_wait = sym.Intern("futex_wait");
  f.futex_wake = sym.Intern("futex_wake");
  f.schedule = sym.Intern("schedule");
  f.mc_process = sym.Intern("memcached_process");
  f.apache_process = sym.Intern("apache_process");
  return f;
}

TxQueue::TxQueue(SlabAllocator& allocator, KernelTypes types, int index, int num_cores)
    : base_(allocator.RegisterStatic(types.qdisc, 256)),
      lock_("Qdisc lock", base_ + 8),
      staged_(static_cast<size_t>(num_cores)) {
  (void)index;
}

void TxQueue::Push(CoreContext& ctx, Packet packet) {
  if (ctx.recording()) {
    staged_[ctx.core()].push_back(StagedPacket{packet, ctx.now(), ctx.core()});
    return;
  }
  // Direct mode applies the injected mailbox cap at push time (there is no
  // staging); the engine path applies it in FlushStaged.
  FaultPlan* const faults = ctx.machine().fault_plan();
  if (faults != nullptr && fifo_.size() >= faults->MailboxCap()) {
    ++dropped_;
    faults->NoteMailboxDrop();
    return;
  }
  fifo_.push_back(packet);
}

void TxQueue::FlushStaged(FaultPlan* faults) {
  merge_scratch_.clear();
  for (std::vector<StagedPacket>& lane : staged_) {
    merge_scratch_.insert(merge_scratch_.end(), lane.begin(), lane.end());
    lane.clear();
  }
  if (merge_scratch_.empty()) {
    return;
  }
  // Stable: same-core packets keep their program order.
  std::stable_sort(merge_scratch_.begin(), merge_scratch_.end(),
                   [](const StagedPacket& a, const StagedPacket& b) {
                     return a.t != b.t ? a.t < b.t : a.core < b.core;
                   });
  const size_t cap = faults != nullptr ? faults->MailboxCap() : ~size_t{0};
  for (const StagedPacket& staged : merge_scratch_) {
    if (fifo_.size() >= cap) {
      ++dropped_;
      faults->NoteMailboxDrop();
      continue;
    }
    fifo_.push_back(staged.packet);
  }
}

Packet TxQueue::PopLocked() {
  DPROF_CHECK(!fifo_.empty());
  Packet p = fifo_.front();
  fifo_.pop_front();
  return p;
}

NetDevice::NetDevice(SlabAllocator& allocator, KernelTypes types, int num_cores)
    : replicated_(allocator.HasTransform(types.net_device, TypeTransformKind::kReplicate)),
      line_size_(allocator.line_size()) {
  const uint32_t size =
      replicated_ ? 128 + static_cast<uint32_t>(num_cores) * line_size_ : 128;
  base_ = allocator.RegisterStatic(types.net_device, size);
}

EpollInstance::EpollInstance(SlabAllocator& allocator, KernelTypes types, int core) {
  epitem_addr = allocator.RegisterStatic(types.epitem, 128);
  epoll_lock = std::make_unique<SimLock>("epoll lock", epitem_addr + 0);
  waitqueue_lock = std::make_unique<SimLock>("wait queue", epitem_addr + 64);
  (void)core;
}

KernelEnv::KernelEnv(Machine* machine, SlabAllocator* allocator)
    : machine_(machine),
      allocator_(allocator),
      types_(KernelTypes::Register(allocator->registry())),
      fns_(KernelFns::Intern(machine->symbols())) {
  const int cores = machine_->num_cores();
  netdev_ = std::make_unique<NetDevice>(*allocator_, types_, cores);
  tx_queues_.reserve(cores);
  epolls_.reserve(cores);
  for (int c = 0; c < cores; ++c) {
    tx_queues_.push_back(std::make_unique<TxQueue>(*allocator_, types_, c, cores));
    epolls_.push_back(std::make_unique<EpollInstance>(*allocator_, types_, c));
    futex_objs_.push_back(allocator_->RegisterStatic(types_.futex, 64));
    user_buffers_.push_back(AllocUserRegion(2048));
    hashtables_.push_back(AllocUserRegion(kHashtableBytes));
    mmap_files_.push_back(AllocUserRegion(4096));
  }
  // Eight global futex hash buckets: with 16 cores, pairs of cores share a
  // bucket, producing occasional cross-core futex contention.
  for (int b = 0; b < 8; ++b) {
    const Addr word = allocator_->RegisterStatic(types_.futex, 64);
    futex_buckets_.push_back(std::make_unique<SimLock>("futex lock", word));
  }
  // Packets (skbuff bookkeeping + payload buffers) travel through the
  // transmit-queue mailboxes, whose staged pushes only flush at epoch
  // boundaries: studying these types warrants tight epochs.
  machine_->NoteMailboxFedType(types_.skbuff);
  machine_->NoteMailboxFedType(types_.skbuff_fclone);
  machine_->NoteMailboxFedType(types_.size1024);
  machine_->AddEpochHook(this);
}

KernelEnv::~KernelEnv() { machine_->RemoveEpochHook(this); }

void KernelEnv::OnEpochCommit(uint64_t now) {
  (void)now;
  for (auto& queue : tx_queues_) {
    queue->FlushStaged(machine_->fault_plan());
  }
}

Addr KernelEnv::AllocUserRegion(uint32_t size) {
  const Addr base = user_bump_;
  // Page-align each region.
  user_bump_ += (static_cast<Addr>(size) + 4095) & ~4095ull;
  return base;
}

double ThroughputRps(uint64_t requests, uint64_t elapsed_cycles) {
  if (elapsed_cycles == 0) {
    return 0.0;
  }
  return static_cast<double>(requests) /
         (static_cast<double>(elapsed_cycles) / kCyclesPerSecond);
}

}  // namespace dprof
