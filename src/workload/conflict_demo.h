// A small workload that deliberately provokes associativity-conflict misses
// (paper §4.3): hot objects are placed at page-aligned strides so they all
// map to the same handful of cache associativity sets and evict each other,
// while total footprint stays far below cache capacity.
//
// Used by the miss-classification examples and tests: DProf should classify
// this workload's misses as conflict misses, not capacity misses, because a
// few associativity sets are heavily oversubscribed while most sit idle.

#ifndef DPROF_SRC_WORKLOAD_CONFLICT_DEMO_H_
#define DPROF_SRC_WORKLOAD_CONFLICT_DEMO_H_

#include <memory>
#include <vector>

#include "src/workload/kernel.h"

namespace dprof {

struct ConflictDemoConfig {
  // Number of hot objects per core; with stride aliasing, any count above
  // the L1 way count causes steady conflict misses.
  int hot_objects = 24;
  // Object stride in bytes; must be a multiple of (num_sets * line_size) of
  // the target cache so all objects alias to the same set.
  uint32_t stride = 0;  // 0 = derive from the machine's L1 geometry
  uint32_t object_bytes = 64;
  // The paper's conflict-miss fixes are applied through the allocator's
  // TypeTransform API on the hot type ("pkt_stat"): pad_to_line repacks the
  // run densely, recolor staggers elements across associativity sets.
};

class ConflictDemoWorkload final : public Workload {
 public:
  ConflictDemoWorkload(KernelEnv* env, const ConflictDemoConfig& config);
  ~ConflictDemoWorkload() override;

  void Install(Machine& machine) override;
  uint64_t CompletedRequests() const override;
  void ResetStats() override;

  TypeId hot_type() const { return hot_type_; }

 private:
  class CoreDriver;

  KernelEnv* env_;
  ConflictDemoConfig config_;
  TypeId hot_type_ = kInvalidType;
  std::vector<std::unique_ptr<CoreDriver>> drivers_;
};

}  // namespace dprof

#endif  // DPROF_SRC_WORKLOAD_CONFLICT_DEMO_H_
