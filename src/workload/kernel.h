// Shared synthetic-kernel infrastructure for the case-study workloads.
//
// This models the slice of the Linux kernel the paper's evaluation exercises:
// the network receive/transmit paths (skbuffs, packet payloads, the
// pfifo_fast Qdisc with per-core hardware queues, the shared net_device),
// sockets, the epoll/waitqueue wakeup machinery, and futexes. Function names
// match the symbols appearing in the paper's tables and figures so that the
// regenerated views read like the originals.

#ifndef DPROF_SRC_WORKLOAD_KERNEL_H_
#define DPROF_SRC_WORKLOAD_KERNEL_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/alloc/slab_allocator.h"
#include "src/machine/machine.h"

namespace dprof {

// The data types the paper's tables report, registered with their simulated
// sizes (bytes).
struct KernelTypes {
  TypeId skbuff = kInvalidType;         // packet bookkeeping, 256 B
  TypeId size1024 = kInvalidType;       // packet payload ("size-1024"), 1024 B
  TypeId skbuff_fclone = kInvalidType;  // TCP clone pairs, 512 B
  TypeId udp_sock = kInvalidType;       // 1024 B
  TypeId tcp_sock = kInvalidType;       // 1600 B
  TypeId net_device = kInvalidType;     // hot part of the device struct, 128 B
  TypeId task_struct = kInvalidType;    // 2560 B
  TypeId qdisc = kInvalidType;          // 256 B
  TypeId epitem = kInvalidType;         // 128 B
  TypeId futex = kInvalidType;          // 64 B
  TypeId user_buffer = kInvalidType;    // userspace receive buffers
  TypeId mc_hashtable = kInvalidType;   // memcached hash table segment
  TypeId mmap_file = kInvalidType;      // Apache MMapFile-cached content

  static KernelTypes Register(TypeRegistry& registry);
};

// Interned FunctionIds for every kernel function the workloads execute.
struct KernelFns {
  FunctionId alloc_skb, kfree, kfree_skb, skb_put, eth_type_trans, ip_rcv;
  FunctionId udp_recvmsg, udp_sendmsg, skb_copy_datagram_iovec, copy_user_generic_string;
  FunctionId lock_sock_nested, sock_def_write_space, ep_poll_callback, sys_epoll_wait;
  FunctionId ep_scan_ready_list, wake_up_sync_key, event_handler;
  FunctionId dev_queue_xmit, skb_tx_hash, pfifo_fast_enqueue, pfifo_fast_dequeue;
  FunctionId qdisc_run, dev_hard_start_xmit, skb_dma_map, ixgbe_xmit_frame;
  FunctionId ixgbe_clean_rx_irq, ixgbe_clean_tx_irq, ixgbe_set_itr_msix, dev_kfree_skb_irq;
  FunctionId local_bh_enable, getnstimeofday, phys_addr;
  FunctionId tcp_v4_rcv, tcp_create_openreq_child, inet_csk_accept, tcp_recvmsg, tcp_sendmsg;
  FunctionId tcp_write_xmit, tcp_close, do_futex, futex_wait, futex_wake, schedule;
  FunctionId mc_process, apache_process;

  static KernelFns Intern(SymbolTable& symbols);
};

// One in-flight packet: bookkeeping skbuff plus payload buffer.
struct Packet {
  Addr skb = kNullAddr;
  Addr payload = kNullAddr;
  TypeId skb_type = kInvalidType;
  int rx_core = -1;        // core that allocated it
  uint64_t enqueue_time = 0;
};

// A pfifo_fast transmit queue bound to one hardware queue / core. The qdisc
// structure (with its embedded lock word) lives in simulated memory of type
// "Qdisc"; the lock class name matches the paper's lock-stat output.
//
// Only the owning core pops. Remote cores push: directly in direct mode, or
// into a per-sender staging lane in engine mode — staged packets are merged
// into the fifo in deterministic (enqueue-time, core) order at the epoch
// boundary (KernelEnv's epoch hook), so the queue contents never depend on
// host thread scheduling.
class TxQueue {
 public:
  TxQueue(SlabAllocator& allocator, KernelTypes types, int index, int num_cores);

  Addr base() const { return base_; }
  SimLock& lock() { return lock_; }
  bool empty() const { return fifo_.empty(); }
  size_t depth() const { return fifo_.size(); }

  void Push(CoreContext& ctx, Packet packet);
  Packet PopLocked();

  // Merges staged pushes into the fifo; engine commit thread only. An armed
  // kMailboxOverflow fault plan caps the fifo depth: packets past the cap
  // are dropped (tail drop, exactly what pfifo_fast does at qlen limit) and
  // counted — both here and on the plan — never crashed on. The merge order
  // is deterministic, so the drop set is too.
  void FlushStaged(FaultPlan* faults);

  // Packets tail-dropped by an injected mailbox cap.
  uint64_t dropped() const { return dropped_; }

 private:
  struct StagedPacket {
    Packet packet;
    uint64_t t = 0;
    int core = 0;
  };

  Addr base_ = kNullAddr;
  SimLock lock_;
  std::deque<Packet> fifo_;
  std::vector<std::vector<StagedPacket>> staged_;  // per sender core
  std::vector<StagedPacket> merge_scratch_;
  uint64_t dropped_ = 0;
};

// Shared network device state: the hot 128-byte net_device window whose
// per-transmit statistics writes make it bounce between every core. Under
// the net_device kReplicate transform the statistics area grows one private
// cache line per core (the paper's per-CPU-counter fix), so each core's
// stats writes stay on a line it owns.
class NetDevice {
 public:
  NetDevice(SlabAllocator& allocator, KernelTypes types, int num_cores);

  Addr base() const { return base_; }
  Addr stats_addr(int core) const {
    return replicated_ ? base_ + 128 + static_cast<Addr>(core) * line_size_ : base_ + 64;
  }
  Addr config_addr() const { return base_; }

 private:
  Addr base_ = kNullAddr;
  bool replicated_ = false;
  uint32_t line_size_ = 64;
};

// Per-core epoll instance: the epoll lock, the waitqueue lock, and an epitem
// object. Remote wakeups (tx completion on another core) acquire the owner's
// locks from that other core — the contention in paper Table 6.2.
struct EpollInstance {
  explicit EpollInstance(SlabAllocator& allocator, KernelTypes types, int core);

  Addr epitem_addr = kNullAddr;
  std::unique_ptr<SimLock> epoll_lock;
  std::unique_ptr<SimLock> waitqueue_lock;
};

// Everything the two case-study workloads share. Registers itself as an
// epoch hook so transmit-queue mailboxes flush at engine epoch boundaries.
class KernelEnv final : public EpochHook {
 public:
  KernelEnv(Machine* machine, SlabAllocator* allocator);
  ~KernelEnv() override;

  // EpochHook:
  void OnEpochCommit(uint64_t now) override;

  Machine& machine() { return *machine_; }
  SlabAllocator& allocator() { return *allocator_; }
  const KernelTypes& types() const { return types_; }
  const KernelFns& fns() const { return fns_; }

  NetDevice& netdev() { return *netdev_; }
  TxQueue& tx_queue(int index) { return *tx_queues_[index]; }
  int num_tx_queues() const { return static_cast<int>(tx_queues_.size()); }
  EpollInstance& epoll(int core) { return *epolls_[core]; }

  // Global futex hash-bucket locks (kernel-wide, so different cores' futexes
  // collide on buckets — paper Table 6.6).
  SimLock& futex_bucket(int index) { return *futex_buckets_[index % futex_buckets_.size()]; }
  Addr futex_obj(int core) const { return futex_objs_[core]; }

  Addr user_buffer(int core) const { return user_buffers_[core]; }
  Addr hashtable(int core) const { return hashtables_[core]; }
  uint32_t hashtable_size() const { return kHashtableBytes; }
  Addr mmap_file(int core) const { return mmap_files_[core]; }

 private:
  static constexpr uint32_t kHashtableBytes = 256 * 1024;
  // Userspace memory lives outside the kernel allocator's pages: DProf's
  // resolver cannot type it (the paper's tool types kernel objects only).
  static constexpr Addr kUserSpaceBase = 0x7f0000000000ull;

  Addr AllocUserRegion(uint32_t size);
  Addr user_bump_ = kUserSpaceBase;

  Machine* machine_;
  SlabAllocator* allocator_;
  KernelTypes types_;
  KernelFns fns_;

  std::unique_ptr<NetDevice> netdev_;
  std::vector<std::unique_ptr<TxQueue>> tx_queues_;
  std::vector<std::unique_ptr<EpollInstance>> epolls_;
  std::vector<std::unique_ptr<SimLock>> futex_buckets_;
  std::vector<Addr> futex_objs_;
  std::vector<Addr> user_buffers_;
  std::vector<Addr> hashtables_;
  std::vector<Addr> mmap_files_;
};

// Base class for installable workloads.
class Workload {
 public:
  virtual ~Workload() = default;

  // Registers this workload's per-core drivers with the machine.
  virtual void Install(Machine& machine) = 0;

  virtual uint64_t CompletedRequests() const = 0;
  virtual void ResetStats() = 0;
};

// Requests per simulated second.
double ThroughputRps(uint64_t requests, uint64_t elapsed_cycles);

}  // namespace dprof

#endif  // DPROF_SRC_WORKLOAD_KERNEL_H_
