// The Apache case-study workload (paper §6.2).
//
// Sixteen Apache instances, one per core, each serving one memory-cached 1 KB
// static file over short-lived TCP connections. The kernel accepts
// connections in softirq context (allocating and initializing the tcp_sock)
// and parks them on a per-instance accept queue; Apache later accepts and
// serves them.
//
// The mis-configuration the paper diagnoses: the accept backlog is deep and
// the load generators eagerly keep it full. At the performance drop-off the
// time from SYN to accept() grows so much that tcp_sock cache lines are
// evicted before Apache touches them — the tcp_sock working set grows ~10x
// and its share of all L1 misses roughly doubles (Tables 6.4 vs 6.5), while
// the average tcp_sock miss latency grows from ~50 to ~150 cycles.
//
// ApacheConfig::admission_control limits in-flight connections (the paper's
// fix), recovering ~16% throughput at the same offered load.

#ifndef DPROF_SRC_WORKLOAD_APACHE_H_
#define DPROF_SRC_WORKLOAD_APACHE_H_

#include <deque>
#include <memory>
#include <vector>

#include "src/workload/kernel.h"

namespace dprof {

struct ApacheConfig {
  // Accept-queue depth the kernel will buffer per instance.
  int backlog = 512;
  // Offered load as a fraction of the nominal per-core service rate. > 1.0
  // means the generators always have connections pending (drop-off regime).
  double offered_load = 1.5;
  // Calibrated per-request service cost used to convert offered_load into an
  // inter-arrival time in cycles.
  uint64_t nominal_service_cycles = 12800;
  // Worker threads per Apache instance; their task_structs are touched on
  // every request (futex wait/wake + scheduling). The ring exceeds L1 so
  // scheduling writes are steady L1 misses (paper Table 6.4's task_struct).
  int worker_threads = 36;
  // Served connections linger this many requests before teardown (keep-alive
  // drain / FIN). Sized so the recycling tcp_sock footprint fits in L1 at
  // peak — which is what makes the drop-off contrast stark.
  int linger_depth = 12;
  // Userspace request handling cost (cycles).
  uint64_t handler_cycles = 4500;
  // The paper's fix: cap in-flight connections regardless of `backlog`.
  // The limit keeps queued sockets L2-resident without starving workers.
  bool admission_control = false;
  int admission_limit = 384;

  // Paper operating points.
  static ApacheConfig Peak() {
    ApacheConfig c;
    c.backlog = 512;
    c.offered_load = 0.85;
    return c;
  }
  static ApacheConfig DropOff() {
    ApacheConfig c;
    c.backlog = 512;
    c.offered_load = 1.5;
    return c;
  }
  static ApacheConfig Fixed() {
    ApacheConfig c = DropOff();
    c.admission_control = true;
    return c;
  }

  int EffectiveBacklog() const { return admission_control ? admission_limit : backlog; }
};

class ApacheWorkload final : public Workload {
 public:
  ApacheWorkload(KernelEnv* env, const ApacheConfig& config);
  ~ApacheWorkload() override;

  void Install(Machine& machine) override;
  uint64_t CompletedRequests() const override;
  void ResetStats() override;

  const ApacheConfig& config() const { return config_; }

  // Diagnostics for tests and benches.
  double AverageAcceptQueueDepth() const;
  double AverageSockMissLatency() const;  // avg per-line latency at accept
  uint64_t DroppedSyns() const;

 private:
  class CoreDriver;

  KernelEnv* env_;
  ApacheConfig config_;
  std::vector<std::unique_ptr<CoreDriver>> drivers_;
};

}  // namespace dprof

#endif  // DPROF_SRC_WORKLOAD_APACHE_H_
