#include "src/workload/apache.h"

#include <algorithm>

#include "src/util/stats.h"

namespace dprof {

namespace {

// A connection parked on the accept queue.
struct PendingConn {
  Addr sock = kNullAddr;
  Addr req_skb = kNullAddr;
  Addr req_payload = kNullAddr;
  uint64_t syn_time = 0;
};

}  // namespace

class ApacheWorkload::CoreDriver final : public dprof::CoreDriver {
 public:
  CoreDriver(KernelEnv* env, const ApacheConfig* config, int core)
      : env_(env), config_(config), core_(core) {}

  bool Step(CoreContext& ctx) override {
    AcceptArrivals(ctx);
    depth_stat_.Add(static_cast<double>(queue_.size()));
    if (queue_.empty()) {
      return false;  // core idles (the paper's "peak with some cores idle")
    }
    ServeOneConnection(ctx);
    return true;
  }

  uint64_t requests = 0;
  uint64_t dropped_syns = 0;
  RunningStat depth_stat_;
  RunningStat sock_latency_stat_;

 private:
  // Softirq half: take pending SYNs from the load generator, build sockets,
  // park them on the accept queue. Arrivals beyond the backlog are dropped
  // after the kernel has already done the receive work — pure overhead.
  void AcceptArrivals(CoreContext& ctx) {
    const KernelFns& f = env_->fns();
    const KernelTypes& t = env_->types();
    Rng& rng = ctx.rng();

    // Time-based open-loop load: one connection every
    // nominal_service_cycles / offered_load cycles, independent of whether
    // this core is keeping up.
    const uint64_t inter_arrival = static_cast<uint64_t>(
        static_cast<double>(config_->nominal_service_cycles) / config_->offered_load);
    if (next_arrival_ == 0) {
      next_arrival_ = ctx.now() + rng.Jitter(inter_arrival);
    }
    uint64_t n = 0;
    while (next_arrival_ <= ctx.now() && n < 64) {
      next_arrival_ += rng.Jitter(inter_arrival);
      ++n;
    }
    // Dropped SYNs come back: clients retransmit, amplifying offered load
    // exactly when the server is already behind.
    const uint64_t retransmits = std::min<uint64_t>(pending_retransmits_, 16);
    pending_retransmits_ -= retransmits;
    n += retransmits;

    for (uint64_t i = 0; i < n; ++i) {
      // Receive the SYN + request data.
      ctx.Compute(f.ixgbe_clean_rx_irq, 110);
      const Addr skb = ctx.Alloc(t.skbuff, f.alloc_skb);
      const Addr payload = ctx.Alloc(t.size1024, f.alloc_skb);
      ctx.Write(f.ixgbe_clean_rx_irq, skb, 256);
      ctx.Write(f.ixgbe_clean_rx_irq, payload, 128);  // HTTP GET
      ctx.Read(f.eth_type_trans, payload, 16);
      ctx.Read(f.ip_rcv, payload + 16, 24);
      ctx.Compute(f.ip_rcv, 80);
      ctx.Compute(f.tcp_v4_rcv, 150);

      if (static_cast<int>(queue_.size()) >= config_->EffectiveBacklog()) {
        // Queue full: the SYN is dropped after the kernel has already done
        // the receive work, looked up the listener, and sent a reset — all
        // wasted. The client retransmits, amplifying the overload. This is
        // the tax that pushes throughput below the peak.
        ++dropped_syns;
        ctx.Compute(f.tcp_v4_rcv, 300);
        ctx.Write(f.tcp_write_xmit, payload, 64);  // RST
        ctx.Compute(f.tcp_write_xmit, 200);
        ctx.Free(payload, f.kfree);
        ctx.Free(skb, f.kfree_skb);
        if (rng.Chance(0.15)) {
          ++pending_retransmits_;
        }
        continue;
      }

      // Create and initialize the connection socket.
      const Addr sock = ctx.Alloc(t.tcp_sock, f.tcp_create_openreq_child);
      ctx.Write(f.tcp_create_openreq_child, sock, 512);
      ctx.Write(f.tcp_v4_rcv, sock + 512, 64);
      queue_.push_back(PendingConn{sock, skb, payload, ctx.now()});
    }
  }

  // Apache half: accept one connection, serve the file, close.
  void ServeOneConnection(CoreContext& ctx) {
    const KernelFns& f = env_->fns();
    const KernelTypes& t = env_->types();
    Rng& rng = ctx.rng();

    PendingConn conn = queue_.front();
    queue_.pop_front();

    // accept(): walk the tcp_sock's hot fields. If the socket sat in the
    // queue for long, its lines have been evicted and every read goes to
    // L3/DRAM — this latency is the paper's 50-vs-150-cycle signal. The
    // probe accumulates committed latencies, so the stat is exact in both
    // the direct and the engine execution modes.
    ctx.BeginLatencyProbe();
    for (uint32_t off = 0; off < 512; off += 64) {
      ctx.Access(f.inet_csk_accept, conn.sock + off, 64, (off % 256) == 0);
    }
    ctx.EndLatencyProbe(&sock_latency_stat_, 512.0 / 64.0);
    ctx.Compute(f.inet_csk_accept, 200);

    // Hand off to a worker thread: futex wake + scheduling. The futex hash
    // bucket is global, so this contends across cores; the critical section
    // is just the hash-bucket manipulation.
    ctx.Compute(f.do_futex, 80);
    SimLock& bucket = env_->futex_bucket(core_);
    ctx.LockAcquire(bucket, f.do_futex);
    ctx.Write(f.futex_wake, env_->futex_obj(core_), 8);
    ctx.LockRelease(bucket, f.do_futex);
    ctx.Compute(f.futex_wake, 120);

    // Scheduling: touch the next worker task_structs. The per-core ring of
    // workers exceeds L1, so these writes are steady L1 misses.
    TouchTasks(ctx, 3);

    // Read the request, build the response from the mmap'd file. A slow
    // client occasionally needs a second read; some requests carry cookies
    // that touch more of the socket.
    ctx.Read(f.tcp_recvmsg, conn.req_payload, 256);
    if (rng.Chance(0.08)) {
      ctx.Read(f.tcp_recvmsg, conn.req_payload + 256, 128);
      ctx.Write(f.tcp_recvmsg, conn.sock + 896, 32);
    }
    if (rng.Chance(0.03)) {
      ctx.Read(f.tcp_recvmsg, conn.sock + 1024, 64);  // window update path
    }
    ctx.Write(f.copy_user_generic_string, env_->user_buffer(core_), 256);
    ctx.Read(f.apache_process, env_->mmap_file(core_), 1024);
    ctx.Compute(f.apache_process, config_->handler_cycles);

    // Response: TCP uses fclone skbuffs for the data path.
    const Addr tx_skb = ctx.Alloc(t.skbuff_fclone, f.tcp_sendmsg);
    const Addr tx_payload = ctx.Alloc(t.size1024, f.tcp_sendmsg);
    ctx.Write(f.tcp_sendmsg, tx_skb, 512);
    ctx.Write(f.copy_user_generic_string, tx_payload, 1024);
    ctx.Write(f.tcp_write_xmit, conn.sock + 640, 128);
    ctx.Compute(f.tcp_write_xmit, 220);
    if (rng.Chance(0.02)) {
      // Retransmission timer fired: another pass over the write queue.
      ctx.Write(f.tcp_write_xmit, tx_skb + 64, 32);
      ctx.Read(f.tcp_write_xmit, conn.sock + 640, 64);
      ctx.Compute(f.tcp_write_xmit, 300);
    }

    // Transmit on the local queue (each Apache instance is pinned, and rx/tx
    // steering agree here — no remote-queue bug in this workload).
    TxQueue& q = env_->tx_queue(core_);
    ctx.LockAcquire(q.lock(), f.dev_queue_xmit);
    ctx.Write(f.pfifo_fast_enqueue, q.base() + 16, 16);
    ctx.Write(f.pfifo_fast_enqueue, tx_skb, 16);
    ctx.LockRelease(q.lock(), f.dev_queue_xmit);

    ctx.LockAcquire(q.lock(), f.qdisc_run);
    ctx.Read(f.pfifo_fast_dequeue, q.base() + 16, 16);
    ctx.LockRelease(q.lock(), f.qdisc_run);
    ctx.Read(f.dev_hard_start_xmit, tx_skb + 24, 40);
    ctx.Read(f.ixgbe_xmit_frame, tx_payload, 1024);
    ctx.Write(f.ixgbe_xmit_frame, env_->netdev().stats_addr(ctx.core()), 16);
    ctx.Compute(f.ixgbe_xmit_frame, 150);

    // Worker goes back to sleep: futex wait.
    ctx.Compute(f.futex_wait, 100);
    ctx.LockAcquire(bucket, f.do_futex);
    ctx.Write(f.futex_wait, env_->futex_obj(core_), 8);
    ctx.LockRelease(bucket, f.do_futex);
    TouchTasks(ctx, 2);
    if (rng.Chance(0.05)) {
      ctx.Compute(f.schedule, 300);  // occasional involuntary context switch
      TouchTasks(ctx, 1);
    }
    ctx.Free(tx_payload, f.kfree);
    ctx.Free(tx_skb, f.kfree_skb);

    // The connection lingers (keep-alive drain, FIN handshake) while other
    // workers serve; it is torn down after `worker_threads` more requests.
    // This is what keeps ~a worker pool's worth of tcp_socks live even at
    // peak (paper Table 6.4's 1.1MB tcp_sock working set).
    closing_.push_back(conn);
    while (closing_.size() > static_cast<size_t>(config_->linger_depth)) {
      const PendingConn old = closing_.front();
      closing_.pop_front();
      // Final timer/FIN touches on a by-now cold socket, then free.
      ctx.Write(f.tcp_close, old.sock + 1536, 64);
      ctx.Read(f.tcp_close, old.sock, 64);
      ctx.Compute(f.tcp_close, 180);
      ctx.Free(old.req_payload, f.kfree);
      ctx.Free(old.req_skb, f.kfree_skb);
      ctx.Free(old.sock, f.tcp_close);
    }
    ++requests;
  }

  void TouchTasks(CoreContext& ctx, int count) {
    const KernelFns& f = env_->fns();
    const KernelTypes& t = env_->types();
    if (tasks_.empty()) {
      // Allocate this instance's worker task_structs once, on first use.
      for (int i = 0; i < config_->worker_threads; ++i) {
        tasks_.push_back(ctx.Alloc(t.task_struct, f.schedule));
      }
    }
    for (int i = 0; i < count; ++i) {
      const Addr task = tasks_[next_task_ % tasks_.size()];
      ++next_task_;
      ctx.Write(f.schedule, task, 64);          // thread_info / state
      ctx.Read(f.futex_wait, task + 2048, 64);  // futex bookkeeping
    }
  }

  KernelEnv* env_;
  const ApacheConfig* config_;
  int core_;
  std::deque<PendingConn> queue_;
  std::deque<PendingConn> closing_;  // in-service / lingering connections
  std::vector<Addr> tasks_;
  size_t next_task_ = 0;
  uint64_t next_arrival_ = 0;
  uint64_t pending_retransmits_ = 0;
};

ApacheWorkload::ApacheWorkload(KernelEnv* env, const ApacheConfig& config)
    : env_(env), config_(config) {}

ApacheWorkload::~ApacheWorkload() = default;

void ApacheWorkload::Install(Machine& machine) {
  drivers_.clear();
  for (int c = 0; c < machine.num_cores(); ++c) {
    drivers_.push_back(std::make_unique<CoreDriver>(env_, &config_, c));
    machine.SetDriver(c, drivers_.back().get());
  }
}

uint64_t ApacheWorkload::CompletedRequests() const {
  uint64_t total = 0;
  for (const auto& d : drivers_) {
    total += d->requests;
  }
  return total;
}

void ApacheWorkload::ResetStats() {
  for (auto& d : drivers_) {
    d->requests = 0;
    d->dropped_syns = 0;
    d->depth_stat_ = RunningStat();
    d->sock_latency_stat_ = RunningStat();
  }
}

double ApacheWorkload::AverageAcceptQueueDepth() const {
  RunningStat merged;
  for (const auto& d : drivers_) {
    merged.Merge(d->depth_stat_);
  }
  return merged.mean();
}

double ApacheWorkload::AverageSockMissLatency() const {
  RunningStat merged;
  for (const auto& d : drivers_) {
    merged.Merge(d->sock_latency_stat_);
  }
  return merged.mean();
}

uint64_t ApacheWorkload::DroppedSyns() const {
  uint64_t total = 0;
  for (const auto& d : drivers_) {
    total += d->dropped_syns;
  }
  return total;
}

}  // namespace dprof
