#include "src/workload/conflict_demo.h"

namespace dprof {

class ConflictDemoWorkload::CoreDriver final : public dprof::CoreDriver {
 public:
  // Setup happens eagerly at install time: RegisterStatic touches the
  // allocator's shared metadata arena, which must not run from a driver
  // stepping in the engine's parallel phase.
  CoreDriver(KernelEnv* env, const ConflictDemoConfig* config, TypeId hot_type, int core)
      : env_(env), config_(config), hot_type_(hot_type), core_(core) {
    fn_ = env_->machine().symbols().Intern("conflict_scan");
    SetUp();
  }

  bool Step(CoreContext& ctx) override {
    // Cycle through the aliased objects; with more objects than cache ways
    // mapping to one set, every pass evicts the next victim.
    for (const Addr obj : objects_) {
      ctx.Read(fn_, obj, config_->object_bytes);
    }
    ctx.Compute(fn_, 100);
    ++requests;
    return true;
  }

  uint64_t requests = 0;

 private:
  void SetUp() {
    // Alias in the L2 (covers L1 as well, since L1 sets divide L2 sets).
    const CacheGeometry& l2 = env_->machine().hierarchy().config().l2;
    uint32_t stride = config_->stride;
    if (stride == 0) {
      stride = static_cast<uint32_t>(l2.NumSets() * l2.line_size);
    }
    // Reserve one private region per core and carve aliased objects out of
    // it. RegisterStaticArray keeps the resolver aware of the type and lets
    // the hot type's layout transforms (pad_to_line repacks the run densely,
    // recolor staggers elements across sets) undo the aliasing — the paper's
    // conflict-miss fixes, expressed mechanically.
    env_->allocator().RegisterStaticArray(hot_type_, config_->object_bytes,
                                          static_cast<uint32_t>(config_->hot_objects), stride,
                                          &objects_);
  }

  KernelEnv* env_;
  const ConflictDemoConfig* config_;
  TypeId hot_type_;
  int core_;
  FunctionId fn_ = kInvalidFunction;
  std::vector<Addr> objects_;
};

ConflictDemoWorkload::ConflictDemoWorkload(KernelEnv* env, const ConflictDemoConfig& config)
    : env_(env), config_(config) {
  hot_type_ = env_->allocator().registry().Register("pkt_stat", config_.object_bytes);
}

ConflictDemoWorkload::~ConflictDemoWorkload() = default;

void ConflictDemoWorkload::Install(Machine& machine) {
  drivers_.clear();
  for (int c = 0; c < machine.num_cores(); ++c) {
    drivers_.push_back(std::make_unique<CoreDriver>(env_, &config_, hot_type_, c));
    machine.SetDriver(c, drivers_.back().get());
  }
}

uint64_t ConflictDemoWorkload::CompletedRequests() const {
  uint64_t total = 0;
  for (const auto& d : drivers_) {
    total += d->requests;
  }
  return total;
}

void ConflictDemoWorkload::ResetStats() {
  for (auto& d : drivers_) {
    d->requests = 0;
  }
}

}  // namespace dprof
