// Simulated AMD Instruction-Based Sampling (IBS) unit (paper §5.1).
//
// Real IBS randomly tags an instruction entering the pipeline and, when it
// retires, reports the instruction address, the data address, whether the
// access hit in the cache, which level served it, and the access latency,
// then raises an interrupt. This model samples the simulated op stream with
// a randomized countdown and charges the documented ~2,000-cycle interrupt
// cost (paper §6.3) to the core that took the interrupt.
//
// Sampling state is fully per-core — countdown and jitter stream both — so
// a core's sample placement is a pure function of its own access sequence,
// as on real hardware where each core owns its IBS registers. That also
// lets the unit honour PmuHook's batch contract: QuietOps exposes the
// countdown as a no-fire guarantee and OnQuietAccessBatch retires a whole
// run of accesses with one subtraction, so the engine's commit pass only
// pays for event assembly and virtual dispatch at (and around) samples.

#ifndef DPROF_SRC_PMU_IBS_UNIT_H_
#define DPROF_SRC_PMU_IBS_UNIT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/machine/machine.h"
#include "src/util/rng.h"

namespace dprof {

struct IbsSample {
  int core = 0;
  FunctionId ip = kInvalidFunction;
  Addr vaddr = kNullAddr;
  uint32_t size = 0;
  bool is_write = false;
  ServedBy level = ServedBy::kL1;
  uint32_t latency = 0;
  uint64_t now = 0;
};

struct IbsConfig {
  // Mean ops between samples per core; 0 disables sampling.
  uint64_t period_ops = 0;
  // Cycles charged to the sampled core per IBS interrupt: interrupt
  // entry/exit plus reading the IBS register bank (paper: ~2,000 cycles,
  // half spent reading IBS registers).
  uint64_t interrupt_cycles = 2000;
  // Extra cycles for the consumer's handler work (e.g. DProf's address-to-
  // type resolution); charged on top of interrupt_cycles.
  uint64_t handler_cycles = 1200;
  uint64_t seed = 0x1b5;
};

class IbsUnit final : public PmuHook {
 public:
  using Handler = std::function<void(const IbsSample&)>;

  explicit IbsUnit(int num_cores, const IbsConfig& config = {});

  void SetHandler(Handler handler) { handler_ = std::move(handler); }

  // Reconfigures the sampling period; 0 disables.
  void SetPeriod(uint64_t period_ops);
  uint64_t period_ops() const { return config_.period_ops; }
  bool enabled() const { return config_.period_ops != 0; }

  uint64_t samples_taken() const { return samples_taken_; }
  void ResetCounters() { samples_taken_ = 0; }

  // PmuHook:
  uint64_t OnAccess(const AccessEvent& event) override;
  uint64_t QuietOps(int core) const override {
    if (config_.period_ops == 0) {
      return kQuietUnbounded;
    }
    const int64_t cd = countdown_[core];
    return cd > 1 ? static_cast<uint64_t>(cd - 1) : 0;
  }
  void OnQuietAccessBatch(int core, uint64_t count) override {
    if (config_.period_ops != 0) {
      countdown_[core] -= static_cast<int64_t>(count);
    }
  }

 private:
  IbsConfig config_;
  Handler handler_;
  std::vector<int64_t> countdown_;
  std::vector<Rng> rngs_;  // per-core jitter streams
  uint64_t samples_taken_ = 0;
};

}  // namespace dprof

#endif  // DPROF_SRC_PMU_IBS_UNIT_H_
