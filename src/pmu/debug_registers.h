// Simulated x86 debug registers (paper §5.3).
//
// Real hardware provides four debug registers per CPU, each able to watch a
// 1/2/4/8-byte region and raise an interrupt on every load or store to it.
// DProf programs the same watchpoint on every core (objects migrate), so this
// model keeps one global register file; the per-core setup broadcast cost is
// charged by the history collector using DebugRegCostModel.

#ifndef DPROF_SRC_PMU_DEBUG_REGISTERS_H_
#define DPROF_SRC_PMU_DEBUG_REGISTERS_H_

#include <cstdint>
#include <functional>

#include "src/machine/machine.h"

namespace dprof {

// Cycle costs measured in the paper (§6.4, Table 6.9).
struct DebugRegCostModel {
  // Cost of taking one watchpoint interrupt and saving a history element.
  uint64_t interrupt_cycles = 1000;
  // Cost on the core that initiates debug-register setup for a new object
  // (dominated by IPIs to all other cores).
  uint64_t setup_initiator_cycles = 130000;
  // Cost on each other core to handle the setup IPI. The paper reports a
  // ~220,000 cycle total setup cost, of which 130k is the initiator.
  uint64_t setup_ipi_cycles = 6000;
  // Cost to reserve a newly allocated object for profiling with the memory
  // subsystem.
  uint64_t reserve_cycles = 20000;
};

class DebugRegisterFile final : public PmuHook {
 public:
  static constexpr int kNumRegisters = 4;
  static constexpr uint32_t kMaxWatchBytes = 8;

  // Handler receives the triggering access and the register index.
  using Handler = std::function<void(const AccessEvent& event, int reg)>;

  void SetHandler(Handler handler) { handler_ = std::move(handler); }

  // Arms register `reg` to watch [base, base+len). len must be 1..8.
  void Arm(int reg, Addr base, uint32_t len);
  void Disarm(int reg);
  void DisarmAll();
  bool armed(int reg) const { return regs_[reg].active; }
  int FreeRegister() const;  // -1 if none

  uint64_t hits() const { return hits_; }

  // PmuHook: fires the handler once per overlapping armed register and
  // returns the summed interrupt cost.
  uint64_t OnAccess(const AccessEvent& event) override;
  // Disarmed, the file can never fire: unbounded quiet guarantee. Armed,
  // it exposes the bounding window of the active watchpoints instead, so
  // the engine skips non-overlapping accesses without a virtual call.
  uint64_t QuietOps(int core) const override {
    (void)core;
    return num_active_ == 0 ? kQuietUnbounded : 0;
  }
  bool AccessFilter(Addr* lo, Addr* hi) const override {
    if (num_active_ == 0) {
      return false;
    }
    *lo = box_lo_;
    *hi = box_hi_;
    return true;
  }

  const DebugRegCostModel& costs() const { return costs_; }
  void set_costs(const DebugRegCostModel& costs) { costs_ = costs; }

 private:
  struct Watchpoint {
    Addr base = 0;
    uint32_t len = 0;
    bool active = false;
  };

  void RecomputeBox();

  Watchpoint regs_[kNumRegisters];
  Handler handler_;
  DebugRegCostModel costs_;
  uint64_t hits_ = 0;
  int num_active_ = 0;
  // Bounding window over the active watchpoints, kept by Arm/Disarm.
  Addr box_lo_ = 0;
  Addr box_hi_ = 0;
};

}  // namespace dprof

#endif  // DPROF_SRC_PMU_DEBUG_REGISTERS_H_
