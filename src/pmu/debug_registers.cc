#include "src/pmu/debug_registers.h"

#include "src/util/check.h"

namespace dprof {

void DebugRegisterFile::RecomputeBox() {
  box_lo_ = 0;
  box_hi_ = 0;
  bool first = true;
  for (int r = 0; r < kNumRegisters; ++r) {
    const Watchpoint& wp = regs_[r];
    if (!wp.active) {
      continue;
    }
    if (first || wp.base < box_lo_) {
      box_lo_ = wp.base;
    }
    if (first || wp.base + wp.len > box_hi_) {
      box_hi_ = wp.base + wp.len;
    }
    first = false;
  }
}

void DebugRegisterFile::Arm(int reg, Addr base, uint32_t len) {
  DPROF_CHECK(reg >= 0 && reg < kNumRegisters);
  DPROF_CHECK(len >= 1 && len <= kMaxWatchBytes);
  if (!regs_[reg].active) {
    ++num_active_;
  }
  regs_[reg] = Watchpoint{base, len, true};
  RecomputeBox();
}

void DebugRegisterFile::Disarm(int reg) {
  DPROF_CHECK(reg >= 0 && reg < kNumRegisters);
  if (regs_[reg].active) {
    --num_active_;
  }
  regs_[reg] = Watchpoint{};
  RecomputeBox();
}

void DebugRegisterFile::DisarmAll() {
  for (int r = 0; r < kNumRegisters; ++r) {
    regs_[r] = Watchpoint{};
  }
  num_active_ = 0;
  RecomputeBox();
}

int DebugRegisterFile::FreeRegister() const {
  for (int r = 0; r < kNumRegisters; ++r) {
    if (!regs_[r].active) {
      return r;
    }
  }
  return -1;
}

uint64_t DebugRegisterFile::OnAccess(const AccessEvent& event) {
  if (num_active_ == 0) {
    return 0;
  }
  uint64_t cost = 0;
  for (int r = 0; r < kNumRegisters; ++r) {
    const Watchpoint& wp = regs_[r];
    if (!wp.active) {
      continue;
    }
    const bool overlaps = event.addr < wp.base + wp.len && wp.base < event.addr + event.size;
    if (!overlaps) {
      continue;
    }
    ++hits_;
    cost += costs_.interrupt_cycles;
    if (handler_) {
      handler_(event, r);
    }
  }
  return cost;
}

}  // namespace dprof
