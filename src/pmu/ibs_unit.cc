#include "src/pmu/ibs_unit.h"

namespace dprof {

IbsUnit::IbsUnit(int num_cores, const IbsConfig& config)
    : config_(config), countdown_(num_cores, 0) {
  rngs_.reserve(num_cores);
  for (int c = 0; c < num_cores; ++c) {
    rngs_.emplace_back(config.seed * 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(c) + 1);
  }
  SetPeriod(config.period_ops);
}

void IbsUnit::SetPeriod(uint64_t period_ops) {
  config_.period_ops = period_ops;
  for (size_t c = 0; c < countdown_.size(); ++c) {
    countdown_[c] = period_ops == 0 ? 0 : static_cast<int64_t>(rngs_[c].Jitter(period_ops));
  }
}

uint64_t IbsUnit::OnAccess(const AccessEvent& event) {
  if (config_.period_ops == 0) {
    return 0;
  }
  int64_t& cd = countdown_[event.core];
  if (--cd > 0) {
    return 0;
  }
  cd = static_cast<int64_t>(rngs_[event.core].Jitter(config_.period_ops));
  ++samples_taken_;
  if (handler_) {
    IbsSample sample;
    sample.core = event.core;
    sample.ip = event.ip;
    sample.vaddr = event.addr;
    sample.size = event.size;
    sample.is_write = event.is_write;
    sample.level = event.level;
    sample.latency = event.latency;
    sample.now = event.now;
    handler_(sample);
  }
  return config_.interrupt_cycles + config_.handler_cycles;
}

}  // namespace dprof
