// lock-stat baseline (paper §6.1.2, §6.2.2, Tables 6.2 and 6.6).
//
// Records, per lock class (locks sharing a name aggregate, like lockdep
// classes), total wait time, hold time, acquisition counts, and the set of
// functions that acquired the lock.

#ifndef DPROF_SRC_PROFILERS_LOCK_STAT_H_
#define DPROF_SRC_PROFILERS_LOCK_STAT_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/machine/machine.h"

namespace dprof {

struct LockStatRow {
  std::string name;
  uint64_t acquisitions = 0;
  uint64_t contentions = 0;
  double wait_seconds = 0.0;
  double hold_seconds = 0.0;
  double overhead_pct = 0.0;  // wait time / (cores * elapsed)
  std::vector<std::string> functions;
};

class LockStat final : public LockObserver {
 public:
  explicit LockStat(const SymbolTable* symbols) : symbols_(symbols) {}

  // LockObserver:
  void OnAcquire(const SimLock& lock, int core, FunctionId ip, uint64_t wait_cycles,
                 uint64_t now) override;
  void OnRelease(const SimLock& lock, int core, FunctionId ip, uint64_t hold_cycles,
                 uint64_t now) override;

  void Reset();

  // Rows sorted by descending wait time; locks with zero waits and fewer
  // than min_acquisitions are omitted.
  std::vector<LockStatRow> Report(uint64_t elapsed_cycles, int num_cores,
                                  uint64_t min_acquisitions = 1) const;

  std::string ReportTable(uint64_t elapsed_cycles, int num_cores) const;

 private:
  struct Counters {
    uint64_t acquisitions = 0;
    uint64_t contentions = 0;
    uint64_t wait_cycles = 0;
    uint64_t hold_cycles = 0;
    std::set<FunctionId> functions;
  };

  const SymbolTable* symbols_;
  std::map<std::string, Counters> by_name_;
};

}  // namespace dprof

#endif  // DPROF_SRC_PROFILERS_LOCK_STAT_H_
