// OProfile-style code profiler baseline (paper §6.1.3, §6.2.3, Table 6.3).
//
// Attributes clock cycles and L2 misses to functions — the classic
// code-centric view the paper argues is insufficient for data-related cache
// problems. Implemented as a MachineObserver with exact per-function
// accounting (equivalent to sampling with an unbounded rate).

#ifndef DPROF_SRC_PROFILERS_CODE_PROFILER_H_
#define DPROF_SRC_PROFILERS_CODE_PROFILER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/machine/machine.h"

namespace dprof {

struct FunctionProfileRow {
  FunctionId fn = kInvalidFunction;
  std::string name;
  double clk_pct = 0.0;
  double l2_miss_pct = 0.0;
  uint64_t cycles = 0;
  uint64_t l2_misses = 0;
};

class CodeProfiler final : public MachineObserver {
 public:
  // MachineObserver:
  void OnAccess(const AccessEvent& event) override;
  void OnCompute(int core, FunctionId ip, uint64_t cycles, uint64_t now) override;
  // Span delivery: same accounting as the per-event virtuals, but the loop
  // is devirtualized and consecutive events from one function share a
  // single hash lookup (runs of equal ip dominate committed streams).
  void OnAccessBatch(const AccessEvent* events, size_t count) override;
  void OnComputeBatch(const ComputeEvent* events, size_t count) override;

  void Reset();

  uint64_t total_cycles() const { return total_cycles_; }
  uint64_t total_l2_misses() const { return total_l2_misses_; }

  // Rows with clk_pct >= min_clk_pct, sorted by descending clock share.
  std::vector<FunctionProfileRow> Report(const SymbolTable& symbols,
                                         double min_clk_pct = 1.0) const;

  // Renders a Table 6.3-style listing.
  std::string ReportTable(const SymbolTable& symbols, double min_clk_pct = 1.0) const;

 private:
  struct Counters {
    uint64_t cycles = 0;
    uint64_t l1_misses = 0;
    uint64_t l2_misses = 0;
  };

  std::unordered_map<FunctionId, Counters> by_fn_;
  uint64_t total_cycles_ = 0;
  uint64_t total_l2_misses_ = 0;
};

}  // namespace dprof

#endif  // DPROF_SRC_PROFILERS_CODE_PROFILER_H_
