#include "src/profilers/code_profiler.h"

#include <algorithm>

#include "src/util/stats.h"
#include "src/util/table.h"

namespace dprof {

void CodeProfiler::OnAccess(const AccessEvent& event) {
  Counters& c = by_fn_[event.ip];
  const uint64_t cycles = 1 + event.latency;
  c.cycles += cycles;
  total_cycles_ += cycles;
  if (event.level != ServedBy::kL1) {
    ++c.l1_misses;
  }
  if (event.level == ServedBy::kL3 || event.level == ServedBy::kForeignCache ||
      event.level == ServedBy::kDram) {
    ++c.l2_misses;
    ++total_l2_misses_;
  }
}

void CodeProfiler::OnCompute(int core, FunctionId ip, uint64_t cycles, uint64_t now) {
  (void)core;
  (void)now;
  by_fn_[ip].cycles += cycles;
  total_cycles_ += cycles;
}

void CodeProfiler::OnAccessBatch(const AccessEvent* events, size_t count) {
  Counters* counters = nullptr;
  FunctionId cached_ip = kInvalidFunction;
  for (size_t i = 0; i < count; ++i) {
    const AccessEvent& event = events[i];
    if (counters == nullptr || event.ip != cached_ip) {
      counters = &by_fn_[event.ip];  // node-based map: stable across inserts
      cached_ip = event.ip;
    }
    const uint64_t cycles = 1 + event.latency;
    counters->cycles += cycles;
    total_cycles_ += cycles;
    if (event.level != ServedBy::kL1) {
      ++counters->l1_misses;
    }
    if (event.level == ServedBy::kL3 || event.level == ServedBy::kForeignCache ||
        event.level == ServedBy::kDram) {
      ++counters->l2_misses;
      ++total_l2_misses_;
    }
  }
}

void CodeProfiler::OnComputeBatch(const ComputeEvent* events, size_t count) {
  Counters* counters = nullptr;
  FunctionId cached_ip = kInvalidFunction;
  for (size_t i = 0; i < count; ++i) {
    if (counters == nullptr || events[i].ip != cached_ip) {
      counters = &by_fn_[events[i].ip];
      cached_ip = events[i].ip;
    }
    counters->cycles += events[i].cycles;
    total_cycles_ += events[i].cycles;
  }
}

void CodeProfiler::Reset() {
  by_fn_.clear();
  total_cycles_ = 0;
  total_l2_misses_ = 0;
}

std::vector<FunctionProfileRow> CodeProfiler::Report(const SymbolTable& symbols,
                                                     double min_clk_pct) const {
  std::vector<FunctionProfileRow> rows;
  rows.reserve(by_fn_.size());
  for (const auto& [fn, counters] : by_fn_) {
    FunctionProfileRow row;
    row.fn = fn;
    row.name = symbols.Name(fn);
    row.cycles = counters.cycles;
    row.l2_misses = counters.l2_misses;
    row.clk_pct = Pct(static_cast<double>(counters.cycles), static_cast<double>(total_cycles_));
    row.l2_miss_pct =
        Pct(static_cast<double>(counters.l2_misses), static_cast<double>(total_l2_misses_));
    if (row.clk_pct >= min_clk_pct) {
      rows.push_back(std::move(row));
    }
  }
  std::sort(rows.begin(), rows.end(), [](const FunctionProfileRow& a, const FunctionProfileRow& b) {
    return a.clk_pct > b.clk_pct;
  });
  return rows;
}

std::string CodeProfiler::ReportTable(const SymbolTable& symbols, double min_clk_pct) const {
  TablePrinter table({"% CLK", "% L2 Misses", "Function"});
  table.SetAlign(0, TablePrinter::Align::kRight);
  table.SetAlign(2, TablePrinter::Align::kLeft);
  for (const FunctionProfileRow& row : Report(symbols, min_clk_pct)) {
    table.AddRow({TablePrinter::Fixed(row.clk_pct, 1), TablePrinter::Fixed(row.l2_miss_pct, 2),
                  row.name});
  }
  return table.ToString();
}

}  // namespace dprof
