#include "src/profilers/lock_stat.h"

#include <algorithm>

#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/util/types.h"

namespace dprof {

void LockStat::OnAcquire(const SimLock& lock, int core, FunctionId ip, uint64_t wait_cycles,
                         uint64_t now) {
  (void)core;
  (void)now;
  Counters& c = by_name_[lock.name()];
  ++c.acquisitions;
  if (wait_cycles > 0) {
    ++c.contentions;
    c.wait_cycles += wait_cycles;
  }
  c.functions.insert(ip);
}

void LockStat::OnRelease(const SimLock& lock, int core, FunctionId ip, uint64_t hold_cycles,
                         uint64_t now) {
  (void)core;
  (void)now;
  Counters& c = by_name_[lock.name()];
  c.hold_cycles += hold_cycles;
  c.functions.insert(ip);
}

void LockStat::Reset() { by_name_.clear(); }

std::vector<LockStatRow> LockStat::Report(uint64_t elapsed_cycles, int num_cores,
                                          uint64_t min_acquisitions) const {
  std::vector<LockStatRow> rows;
  for (const auto& [name, counters] : by_name_) {
    if (counters.acquisitions < min_acquisitions) {
      continue;
    }
    LockStatRow row;
    row.name = name;
    row.acquisitions = counters.acquisitions;
    row.contentions = counters.contentions;
    row.wait_seconds = static_cast<double>(counters.wait_cycles) / kCyclesPerSecond;
    row.hold_seconds = static_cast<double>(counters.hold_cycles) / kCyclesPerSecond;
    row.overhead_pct = Pct(static_cast<double>(counters.wait_cycles),
                           static_cast<double>(elapsed_cycles) * num_cores);
    for (FunctionId fn : counters.functions) {
      row.functions.push_back(symbols_->Name(fn));
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const LockStatRow& a, const LockStatRow& b) { return a.wait_seconds > b.wait_seconds; });
  return rows;
}

std::string LockStat::ReportTable(uint64_t elapsed_cycles, int num_cores) const {
  TablePrinter table({"Lock Name", "Wait Time", "Overhead", "Functions"});
  table.SetAlign(3, TablePrinter::Align::kLeft);
  for (const LockStatRow& row : Report(elapsed_cycles, num_cores)) {
    std::string fns;
    for (size_t i = 0; i < row.functions.size(); ++i) {
      if (i != 0) {
        fns += ", ";
      }
      fns += row.functions[i];
    }
    table.AddRow({row.name, TablePrinter::Fixed(row.wait_seconds, 4) + " sec",
                  TablePrinter::Percent(row.overhead_pct), fns});
  }
  return table.ToString();
}

}  // namespace dprof
