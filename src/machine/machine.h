// The simulated multicore machine.
//
// A Machine owns the cache hierarchy, per-core cycle clocks, and the
// scheduling loop. Workloads register one CoreDriver per core; the machine
// repeatedly steps the core with the smallest local clock, which keeps
// cross-core cache coherence and lock arbitration in approximately global
// time order while drivers stay simple sequential request loops.
//
// Two execution modes share this interface:
//  - Direct mode (the legacy loop): every CoreContext operation executes
//    against the hierarchy immediately. RunSteps and executor-less RunFor
//    use it, as do tests that drive contexts by hand.
//  - Recorded mode: a CoreContext carries a CoreRecorder and operations are
//    appended to per-core SoA queues instead of executing. The epoch engine
//    (src/machine/engine.h) simulates all cores concurrently this way, then
//    applies and commits the queues in a deterministic order, so the
//    committed event stream is bit-identical for any host thread count.
//
// All instrumentation attaches here:
//  - MachineObserver: sees every access and compute operation (code profiler).
//  - PmuHook: may raise "interrupts" by returning extra cycles to charge the
//    executing core (IBS unit, debug registers). PMU overhead inflates core
//    clocks — and therefore reduces workload throughput — without being
//    attributed to workload functions, exactly how profiling overhead
//    manifests on real hardware (paper Figure 6-2).

#ifndef DPROF_SRC_MACHINE_MACHINE_H_
#define DPROF_SRC_MACHINE_MACHINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/machine/symbol_table.h"
#include "src/sim/hierarchy.h"
#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/status.h"
#include "src/util/types.h"

namespace dprof {

class CoreContext;
class CoreRecorder;
class Engine;
class FaultPlan;
class Machine;

// One memory operation as seen by observers and PMU hooks.
struct AccessEvent {
  int core = 0;
  FunctionId ip = kInvalidFunction;
  Addr addr = kNullAddr;
  uint32_t size = 0;
  bool is_write = false;
  ServedBy level = ServedBy::kL1;
  uint32_t latency = 0;       // cycles spent waiting on memory
  bool invalidation = false;  // simulator ground truth; PMUs must not use it
  uint64_t now = 0;           // core clock after the access completed
};

// One compute burst, the span-delivery counterpart of the OnCompute virtual.
struct ComputeEvent {
  int core = 0;
  FunctionId ip = kInvalidFunction;
  uint64_t cycles = 0;
  uint64_t now = 0;
};

class MachineObserver {
 public:
  virtual ~MachineObserver() = default;
  virtual void OnAccess(const AccessEvent& event) = 0;
  virtual void OnCompute(int core, FunctionId ip, uint64_t cycles, uint64_t now) = 0;

  // Span-based delivery. The epoch engine accumulates contiguous runs of
  // committed events and hands them over in batches instead of making one
  // virtual call per operation. The defaults reproduce per-event dispatch
  // exactly — same events, same order — so overriding is purely an
  // optimization for hot observers (e.g. CodeProfiler).
  virtual void OnAccessBatch(const AccessEvent* events, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      OnAccess(events[i]);
    }
  }
  virtual void OnComputeBatch(const ComputeEvent* events, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      OnCompute(events[i].core, events[i].ip, events[i].cycles, events[i].now);
    }
  }
};

// Hardware performance-monitoring hook. Returns extra cycles (interrupt and
// handler cost) to charge to the executing core; 0 if the op was not sampled.
//
// The batch contract lets the engine's commit pass skip event assembly and
// virtual dispatch for operations a hook provably ignores:
//  - QuietOps(core) returns a lower bound on how many upcoming accesses
//    executed by `core` this hook will neither sample nor charge for,
//    assuming no intervening OnAccess call or reconfiguration. 0 means the
//    hook must be consulted per access (the default, which preserves exact
//    per-op dispatch for hooks that do not opt in).
//  - OnQuietAccessBatch(core, n) accounts n accesses skipped under a
//    QuietOps(core) >= n guarantee (e.g. IBS decrements its countdown by n
//    in one step). Delivery may lag the skipped operations but always
//    arrives before the hook's next OnAccess for that core.
//  - AccessFilter(lo, hi): a hook that only reacts to accesses overlapping
//    [*lo, *hi) (debug registers) returns true and the window; accesses
//    outside it are skipped without consultation or quiet accounting.
//
// Every access that escapes these guarantees (an IBS countdown expiring, an
// access overlapping a watchpoint window) is committed at an arbitration
// point of the engine's global min-clock schedule, so hooks observe their
// events — and handlers with cross-core shared state (the history collector
// FSM) observe their callbacks — in exactly the order the per-op sequential
// merge would produce.
class PmuHook {
 public:
  static constexpr uint64_t kQuietUnbounded = ~0ull;

  virtual ~PmuHook() = default;
  virtual uint64_t OnAccess(const AccessEvent& event) = 0;

  virtual uint64_t QuietOps(int core) const {
    (void)core;
    return 0;
  }
  virtual void OnQuietAccessBatch(int core, uint64_t count) {
    (void)core;
    (void)count;
  }
  virtual bool AccessFilter(Addr* lo, Addr* hi) const {
    (void)lo;
    (void)hi;
    return false;
  }
};

// The typed allocator interface the machine exposes to drivers via
// CoreContext::Alloc/Free. Implemented by SlabAllocator (src/alloc).
//
// Under the epoch engine, Alloc/Free run during the parallel simulation
// phase and must only touch state owned by the calling core; the allocator
// reports allocation events through CoreContext::NotifyAllocEvent /
// NotifyFreeEvent, and the engine calls the Commit*Event methods back in
// deterministic commit order with the committed clock.
class AllocatorIface {
 public:
  virtual ~AllocatorIface() = default;
  virtual Addr Alloc(CoreContext& ctx, TypeId type, FunctionId ip) = 0;
  virtual void Free(CoreContext& ctx, Addr addr, FunctionId ip) = 0;

  // Called by the engine before parallel simulation starts. Implementations
  // create any lazily-built shared structures so the parallel phase only
  // reads them.
  virtual void PrepareParallel(int num_cores) { (void)num_cores; }

  // Called by the engine on the commit thread after each epoch's commit;
  // implementations apply staged cross-core transfers here.
  virtual void FlushEpoch() {}

  // Deferred allocation-event delivery (stats + AllocationObservers) in
  // deterministic commit order. `now` is the committed clock of the event.
  virtual void CommitAllocEvent(TypeId type, Addr base, uint32_t size, int core,
                                uint64_t now) {
    (void)type;
    (void)base;
    (void)size;
    (void)core;
    (void)now;
  }
  virtual void CommitFreeEvent(TypeId type, Addr base, uint32_t size, int core, uint64_t now,
                               bool alien) {
    (void)type;
    (void)base;
    (void)size;
    (void)core;
    (void)now;
    (void)alien;
  }

  // Sticky health status. Allocators that can exhaust a bounded resource
  // (slab arenas under injected grow failures) report it here instead of
  // aborting; the engine polls after each epoch and stops the run with a
  // structured diagnostic.
  virtual Status status() const { return Status::Ok(); }
};

// Per-core workload logic. Step() performs one unit of work (typically one
// request) and returns true, or returns false if the core has nothing to do
// (the machine then idles the core forward by config.idle_cycles).
class CoreDriver {
 public:
  virtual ~CoreDriver() = default;
  virtual bool Step(CoreContext& ctx) = 0;
};

// A spin lock living at a simulated memory address. Arbitration is
// time-based: an acquiring core's clock jumps to the lock's free time; the
// lock word itself is written through the cache hierarchy so contended locks
// also generate coherence traffic.
class SimLock {
 public:
  SimLock(std::string name, Addr word) : name_(std::move(name)), word_(word) {}

  const std::string& name() const { return name_; }
  Addr word() const { return word_; }

 private:
  friend class CoreContext;
  friend class Engine;
  std::string name_;
  Addr word_ = kNullAddr;
  uint64_t free_at_ = 0;
  uint64_t acquired_at_ = 0;
  int holder_ = -1;
};

class LockObserver {
 public:
  virtual ~LockObserver() = default;
  virtual void OnAcquire(const SimLock& lock, int core, FunctionId ip, uint64_t wait_cycles,
                         uint64_t now) = 0;
  virtual void OnRelease(const SimLock& lock, int core, FunctionId ip, uint64_t hold_cycles,
                         uint64_t now) = 0;
};

// Pluggable execution strategy for Machine::RunFor (the epoch engine).
class Executor {
 public:
  virtual ~Executor() = default;
  virtual void RunFor(uint64_t cycles) = 0;
};

// Cross-core host-state exchange point (transmit-queue mailboxes, allocator
// alien-free transfers). The engine invokes hooks on the commit thread after
// each epoch's commit, in registration order, so staged transfers become
// visible to the next epoch's parallel phase deterministically.
class EpochHook {
 public:
  virtual ~EpochHook() = default;
  virtual void OnEpochCommit(uint64_t now) = 0;
};

// One recorded simulation operation awaiting deterministic commit. This is
// the recording-side value type; CoreRecorder stores it scattered across
// structure-of-arrays columns so the apply and commit passes only pull the
// fields they touch through cache.
struct SimOp {
  // Sync kinds (>= kFirstSync) interact with cross-core state at commit
  // time (locks, allocator events); they arbitrate on the global min-clock
  // rule and delimit the segments the commit pass batches between them.
  enum Kind : uint8_t {
    kAccess,           // addr/size/is_write; lane.result receives the apply result
    kCompute,          // aux = cycles
    kIdle,             // aux = cycles
    kProbeBegin,       // latency probe window opens
    kProbeEnd,         // addr = RunningStat*, aux = divisor bits
    kElidedRun,        // engine-internal run of elided accesses: addr = first
                       // ring index, size_w = count (see CoreRecorder::ring)
    kFfRun,            // engine-internal fast-forwarded run: addr = access
                       // count, payload = estimated cycles (sampled mode)
    kLockAcquire,      // addr = SimLock*; wait + acquire callback at commit
    kLockRelease,      // addr = SimLock*
    kAllocEvent,       // addr = base, aux = type<<32 | size
    kFreeEvent,        // addr = base, aux = type<<32 | size, flag = alien
  };
  static constexpr Kind kFirstSync = kLockAcquire;

  uint64_t t = 0;  // issuing core's lower-bound clock when recorded
  Addr addr = kNullAddr;
  uint64_t aux = 0;
  FunctionId ip = kInvalidFunction;
  uint32_t size = 0;
  Kind kind = kAccess;
  bool is_write = false;
  bool flag = false;
};

// Per-core operation queue filled during the engine's parallel simulation
// phase. `lb` is the core's lower-bound clock: the committed clock at epoch
// start plus the minimum cost of every recorded op (memory latencies assume
// L1 hits; PMU interrupts and lock waits are unknown until commit). The
// engine orders commits by each op's recorded `t`, so the interleaving is a
// pure function of the recorded streams — independent of host threading.
//
// Storage is SoA, grouped by consumer:
//  - lane[]: everything the apply pass reads (t, addr, size+write bit) plus
//    the 32-bit packed result it writes back — one 24-byte record per op.
//    For non-access ops the (size_w, result) pair is dead and doubles as
//    the 64-bit payload slot (compute/idle cycles, alloc type+size, probe
//    divisor bits), so no separate aux column exists. Commit order is
//    reconstructed from committed clocks, so only the apply merge reads t.
//  - meta[]: {ip, kind} in 8 bytes — the commit pass's sequential scan
//    (kind every op, alien flag in its top bit, ip only when an event is
//    actually assembled).
//  - sync_points[]: indices of kind >= kFirstSync ops, recorded at push
//    time so the commit pass splits segments without rescanning.
//  - shard_ops[]: per-hierarchy-shard access indices, recorded only when
//    the engine runs the apply pass shard-parallel (record_shards); the
//    single-thread apply uses one fused merge over the lane streams.
class CoreRecorder {
 public:
  struct Lane {
    uint64_t t;
    Addr addr;
    uint32_t size_w;   // kAccess: size | kWriteBit; otherwise payload lo
    uint32_t result;   // kAccess: packed by the apply pass; otherwise payload hi

    uint64_t payload() const {
      return static_cast<uint64_t>(size_w) | (static_cast<uint64_t>(result) << 32);
    }
    void set_payload(uint64_t payload) {
      size_w = static_cast<uint32_t>(payload);
      result = static_cast<uint32_t>(payload >> 32);
    }
  };
  struct Meta {
    FunctionId ip;
    uint8_t kind;  // SimOp::Kind | kAlienBit
    uint8_t pad[3];
  };
  static constexpr uint32_t kWriteBit = ApplyLane::kWriteBit;
  static constexpr uint8_t kKindMask = 0x0f;
  static constexpr uint8_t kAlienBit = 0x80;

  // Apply-phase result packing for kAccess: the shared packed-AccessResult
  // layout (src/sim/hierarchy.h), which is also what ApplyBatch writes.
  static uint32_t PackResult(uint32_t latency, ServedBy level, bool invalidation) {
    return PackAccessResult(latency, level, invalidation);
  }
  static uint32_t ResultLatency(uint32_t result) { return PackedAccessLatency(result); }
  static ServedBy ResultLevel(uint32_t result) { return PackedAccessLevel(result); }
  static bool ResultInvalidation(uint32_t result) {
    return PackedAccessInvalidation(result);
  }

  // num_shards == 0 disables shard-list recording (single-thread apply).
  // The engine sets the per-epoch mode fields (elide/elide_budget for ring
  // streaming, ff/ff_lo/ff_hi for fast-forward) after Reset.
  void Reset(uint64_t committed_clock, size_t num_shards) {
    n = 0;
    sync_points.clear();
    record_shards = num_shards > 0;
    if (shard_ops.size() != num_shards) {
      shard_ops.resize(num_shards);
    }
    for (auto& list : shard_ops) {
      list.clear();
    }
    elide = false;
    elide_budget = 0;
    ff = false;
    ff_lo = kNullAddr;
    ff_hi = kNullAddr;
    ring_n = 0;
    run_open = false;
    accesses = 0;
    lb = committed_clock;
    epoch_start_clock = committed_clock;
    raw_access_cost = 0;
    exact_cost = 0;
  }

  size_t size() const { return n; }
  bool empty() const { return n == 0; }

  void Push(const SimOp& op) {
    if (op.kind >= SimOp::kFirstSync) {
      sync_points.push_back(static_cast<uint32_t>(n));
    }
    if (__builtin_expect(n == capacity, 0)) {
      Grow();
    }
    if (op.kind == SimOp::kAccess) {
      lane[n] = Lane{op.t, op.addr, op.size | (op.is_write ? kWriteBit : 0u), 0};
    } else {
      lane[n] = Lane{op.t, op.addr, static_cast<uint32_t>(op.aux),
                     static_cast<uint32_t>(op.aux >> 32)};
    }
    meta[n] = Meta{op.ip, static_cast<uint8_t>(static_cast<uint8_t>(op.kind) |
                                               (op.flag ? kAlienBit : 0u)),
                   {0, 0, 0}};
    ++n;
    run_open = false;
  }

  // Hot-path pushes (per-line accesses, compute bursts, idle steps) skip
  // the SimOp staging: one capacity branch, two stores.
  void PushAccess(uint64_t t, Addr addr, uint32_t size_w, FunctionId ip) {
    if (__builtin_expect(n == capacity, 0)) {
      Grow();
    }
    lane[n] = Lane{t, addr, size_w, 0};
    meta[n] = Meta{ip, SimOp::kAccess, {0, 0, 0}};
    ++n;
    run_open = false;
  }
  // Fast-forward push with a prefilled apply result: the access never walks
  // the hierarchy, but a hook filter window overlaps it, so commit needs a
  // real kAccess op to dispatch. The result carries the estimated latency at
  // level kL1 (the lower bound; sampled mode trades this precision away).
  void PushFfAccess(uint64_t t, Addr addr, uint32_t size_w, uint32_t result,
                    FunctionId ip) {
    if (__builtin_expect(n == capacity, 0)) {
      Grow();
    }
    lane[n] = Lane{t, addr, size_w, result};
    meta[n] = Meta{ip, SimOp::kAccess, {0, 0, 0}};
    ++n;
    run_open = false;
  }
  // Fast-forwarded run marker: addr accumulates the access count, the
  // payload accumulates the estimated cycle charge. Coalesced like elided
  // runs so a quiet fast-forward epoch records O(1) ops.
  void PushFfRun(uint64_t t, uint64_t est) {
    if (run_open) {
      ++lane[n - 1].addr;
      lane[n - 1].set_payload(lane[n - 1].payload() + est);
      return;
    }
    if (__builtin_expect(n == capacity, 0)) {
      Grow();
    }
    lane[n] = Lane{t, 1, static_cast<uint32_t>(est), static_cast<uint32_t>(est >> 32)};
    meta[n] = Meta{kInvalidFunction, SimOp::kFfRun, {0, 0, 0}};
    ++n;
    run_open = true;
  }
  void PushCycles(SimOp::Kind kind, uint64_t t, uint64_t cycles, FunctionId ip) {
    if (__builtin_expect(n == capacity, 0)) {
      Grow();
    }
    lane[n] = Lane{t, kNullAddr, static_cast<uint32_t>(cycles),
                   static_cast<uint32_t>(cycles >> 32)};
    meta[n] = Meta{ip, static_cast<uint8_t>(kind), {0, 0, 0}};
    ++n;
    run_open = false;
  }

  // Elided-access push: the access streams into the 16-byte ring (in the
  // hierarchy's ApplyLane layout, so the apply pass resolves it in place)
  // and the lane stream carries one kElidedRun marker per contiguous run —
  // enough for the commit pass to rebuild clocks and latency probes from
  // the packed results the apply pass leaves in the ring. The op's t is
  // implied: epoch_start_clock + entry.t_delta. No ip is kept; elision is
  // only legal when nothing can consume an access event.
  void PushElidedAccess(uint64_t t, Addr addr, uint32_t size_w) {
    if (__builtin_expect(ring_n == ring_capacity, 0)) {
      GrowRing();
    }
    // Ring times are epoch-relative 32-bit deltas; an epoch's lower-bound
    // clock advance is bounded by epoch_cycles plus one driver step, so
    // this only fires for a driver that advances >= 2^32 cycles in a
    // single step — always-on, since a silent wrap would corrupt the
    // apply merge order (the compare is against a constant and never
    // taken in practice).
    DPROF_CHECK(t - epoch_start_clock <= 0xffff'ffffull);
    ring[ring_n] = ApplyLane{addr, static_cast<uint32_t>(t - epoch_start_clock), size_w};
    ++ring_n;
    if (run_open) {
      ++lane[n - 1].size_w;  // extend the open run's count
      return;
    }
    if (__builtin_expect(n == capacity, 0)) {
      Grow();
    }
    lane[n] = Lane{t, static_cast<Addr>(ring_n - 1), 1, 0};
    meta[n] = Meta{kInvalidFunction, SimOp::kElidedRun, {0, 0, 0}};
    ++n;
    run_open = true;
  }
  // Extends the previous op instead of pushing when it is the same cycle
  // burst kind from the same function: consecutive compute/idle steps fuse
  // into one op with the summed payload (clock effect identical; observers
  // see one coalesced burst).
  bool CoalesceCycles(SimOp::Kind kind, FunctionId ip, uint64_t cycles) {
    if (n == 0) {
      return false;
    }
    const Meta& last = meta[n - 1];
    if (last.kind != static_cast<uint8_t>(kind) || last.ip != ip) {
      return false;
    }
    lane[n - 1].set_payload(lane[n - 1].payload() + cycles);
    return true;
  }

  // Advances the lower-bound clock for one recorded access of raw cost
  // `raw` (base op cost + L1 latency). The calibrated scale stretches the
  // estimate toward this core's recent committed cost per access, so an
  // epoch's recording window covers roughly epoch_cycles of *true* time;
  // without it, miss-heavy cores overshoot their window by the full
  // latency/PMU factor, clocks skew apart at epoch boundaries, and lock
  // arbitration charges large phantom waits across the skew.
  void ChargeAccess(uint32_t raw) {
    lb += (static_cast<uint64_t>(raw) * cost_scale16) >> 4;
    raw_access_cost += raw;
  }
  // Fast-forward charge: same calibrated estimate as ChargeAccess, but the
  // raw cost is NOT accumulated — the epoch-end calibration divides committed
  // cost by raw_access_cost, and a fast-forwarded epoch's committed cost IS
  // the estimate, so feeding it back would lock the scale in place. Leaving
  // raw_access_cost at 0 makes the calibration skip fast-forward epochs.
  uint64_t ChargeFf(uint32_t raw) {
    const uint64_t est = (static_cast<uint64_t>(raw) * cost_scale16) >> 4;
    lb += est;
    return est;
  }
  void ChargeExact(uint64_t cycles) {
    lb += cycles;
    exact_cost += cycles;
  }

  // Raw growable columns (capacity persists across epochs, so Grow is cold
  // after warm-up; plain pointers keep the hot pushes to one branch).
  Lane* lane = nullptr;
  Meta* meta = nullptr;
  size_t n = 0;
  size_t capacity = 0;
  // Record-elision ring: accesses of elide epochs, in program order, as
  // 16-byte ApplyLane records (half the lane+meta footprint, and the exact
  // span format CacheHierarchy::ApplyBatch consumes in place). After the
  // apply pass each entry's size_w holds the packed AccessResult.
  ApplyLane* ring = nullptr;
  size_t ring_n = 0;
  size_t ring_capacity = 0;
  bool elide = false;
  // Remaining ring-eligible accesses this epoch. Full elision sets ~0ull;
  // bounded-quiet (prefix) elision sets the countdown-guaranteed quiet run
  // (min PmuHook::QuietOps across hooks at epoch start) so accesses past the
  // budget fall back to recorded lanes and can take their PMU interrupts.
  uint64_t elide_budget = 0;
  // Fast-forward mode (sampled execution): accesses charge the calibrated
  // estimate and coalesce into kFfRun markers instead of walking the
  // hierarchy at apply time. Accesses overlapping [ff_lo, ff_hi) — the armed
  // hook filter window snapshotted at epoch start — still record real
  // kAccess ops (with prefilled results) so watchpoints keep firing.
  bool ff = false;
  Addr ff_lo = kNullAddr;
  Addr ff_hi = kNullAddr;
  bool run_open = false;  // last op is this epoch's open kElidedRun/kFfRun
  uint64_t accesses = 0;  // line-chunk accesses recorded this epoch (any mode)
  std::vector<uint32_t> sync_points;
  // Indices of kAccess ops per hierarchy shard, in program order; filled
  // only when record_shards (shard-parallel apply). Ring-streamed accesses
  // are tagged kRingTag and index the ring instead of the lanes, so mixed
  // prefix-elision epochs keep one uniform per-shard list.
  static constexpr uint32_t kRingTag = 1u << 31;
  bool record_shards = false;
  std::vector<std::vector<uint32_t>> shard_ops;
  uint64_t lb = 0;
  uint64_t epoch_start_clock = 0;
  uint64_t raw_access_cost = 0;  // sum of unscaled access costs this epoch
  uint64_t exact_cost = 0;       // compute + idle cycles this epoch
  // Q4 fixed-point committed-cost / raw-cost calibration, fed back by the
  // engine each epoch (16 = 1.0x).
  uint32_t cost_scale16 = 16;

 private:
  void Grow();      // doubles the column storage (cold; capacity persists)
  void GrowRing();  // doubles the elision ring (cold; capacity persists)

  std::unique_ptr<Lane[]> lane_store_;
  std::unique_ptr<Meta[]> meta_store_;
  std::unique_ptr<ApplyLane[]> ring_store_;
};

struct MachineConfig {
  HierarchyConfig hierarchy;
  uint64_t idle_cycles = 2000;  // clock advance when a driver reports no work
  uint32_t base_op_cost = 1;    // pipeline cost of one op, excluding memory
  uint64_t seed = 1;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  int num_cores() const { return config_.hierarchy.num_cores; }
  const MachineConfig& config() const { return config_; }
  CacheHierarchy& hierarchy() { return hierarchy_; }
  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }

  void SetAllocator(AllocatorIface* allocator) { allocator_ = allocator; }
  AllocatorIface* allocator() { return allocator_; }
  void SetDriver(int core, CoreDriver* driver) { drivers_[core] = driver; }

  void AddObserver(MachineObserver* observer) { observers_.push_back(observer); }
  void RemoveObserver(MachineObserver* observer);
  void AddPmuHook(PmuHook* hook) { pmu_hooks_.push_back(hook); }
  void RemovePmuHook(PmuHook* hook);
  void SetLockObserver(LockObserver* observer) { lock_observer_ = observer; }

  void AddEpochHook(EpochHook* hook) { epoch_hooks_.push_back(hook); }
  void RemoveEpochHook(EpochHook* hook);

  // Mailbox-fed types: registered by environments whose cross-core delivery
  // stages in per-sender lanes that flush at epoch boundaries (TxQueue
  // packets). Epoch batching delays those deliveries, which is the one
  // execution-strategy drift the engine has left (miss rates on payload
  // types); profilers consult this to know when tight epochs are warranted.
  void NoteMailboxFedType(TypeId type);
  bool IsMailboxFedType(TypeId type) const;

  // Epoch focus: set while a mailbox-fed type is under study. The epoch
  // engine shrinks its epochs (EngineConfig::epoch_cycles_focus) while this
  // is on, so mailbox deliveries resolve at near-legacy granularity only
  // when the fidelity is actually needed. Pure session state — identical
  // for every host thread count — so determinism is unaffected. The legacy
  // loop ignores it.
  void SetEpochFocus(bool focus) { epoch_focus_ = focus; }
  bool epoch_focus() const { return epoch_focus_; }

  // Record-elision inhibitors. The engine may elide access records for an
  // epoch whose hook/observer state, read at epoch start, proves no event
  // consumer exists. That snapshot cannot see arming that happens mid-epoch
  // from a commit-time callback (the history collector arming debug
  // registers from an allocation event), so any component able to do that
  // holds an inhibitor while attached and elision stays off.
  void AddElisionInhibitor() { ++elision_inhibitors_; }
  void RemoveElisionInhibitor() { --elision_inhibitors_; }
  int elision_inhibitors() const { return elision_inhibitors_; }

  // Installs an execution strategy; RunFor delegates to it when set.
  void SetExecutor(Executor* executor) { executor_ = executor; }
  Executor* executor() { return executor_; }

  // Deterministic fault-injection plan (src/machine/faults.h), or null for a
  // healthy machine. Set before the first epoch; every consumer (engine,
  // allocator, mailboxes, sampler) keys its fault decisions off committed
  // clocks and epoch ordinals, never host threading, so a faulted run stays
  // bit-identical across --threads.
  void SetFaultPlan(FaultPlan* plan) { fault_plan_ = plan; }
  FaultPlan* fault_plan() const { return fault_plan_; }

  uint64_t CoreClock(int core) const { return clocks_[core]; }
  uint64_t MinClock() const;
  uint64_t MaxClock() const;
  Rng& CoreRng(int core) { return rngs_[core]; }

  // Runs the scheduling loop until every core clock is >= MinClock() + cycles.
  // Delegates to the installed executor, when there is one.
  void RunFor(uint64_t cycles);

  // Steps the minimum-clock core exactly `steps` times (always direct mode).
  void RunSteps(uint64_t steps);

  // Charges cycles to a core outside any driver step (PMU setup broadcasts,
  // interrupt handlers triggered by other cores).
  void ChargeCycles(int core, uint64_t cycles) { clocks_[core] += cycles; }

  CoreContext Context(int core);

 private:
  friend class CoreContext;
  friend class Engine;

  int MinClockCore() const;
  void StepCore(int core);

  MachineConfig config_;
  CacheHierarchy hierarchy_;
  SymbolTable symbols_;
  std::vector<uint64_t> clocks_;
  std::vector<CoreDriver*> drivers_;
  std::vector<Rng> rngs_;
  std::vector<MachineObserver*> observers_;
  std::vector<PmuHook*> pmu_hooks_;
  std::vector<EpochHook*> epoch_hooks_;
  AllocatorIface* allocator_ = nullptr;
  LockObserver* lock_observer_ = nullptr;
  Executor* executor_ = nullptr;
  FaultPlan* fault_plan_ = nullptr;
  std::vector<TypeId> mailbox_fed_types_;
  bool epoch_focus_ = false;
  int elision_inhibitors_ = 0;
};

// Lightweight per-core handle passed to drivers and the allocator. All
// simulated work — memory accesses, compute, allocation, locking — flows
// through this API so that clocks, observers, and PMU hooks stay consistent.
//
// With a recorder attached (engine mode), operations are queued instead of
// executed, now() reports the core's lower-bound clock, and Access returns
// a lower-bound AccessResult (L1 latency, no miss flags); drivers must not
// branch on the fields a recorded result cannot know.
class CoreContext {
 public:
  CoreContext(Machine* machine, int core) : machine_(machine), core_(core) {}
  CoreContext(Machine* machine, int core, CoreRecorder* recorder)
      : machine_(machine), core_(core), recorder_(recorder) {}

  int core() const { return core_; }
  uint64_t now() const { return recorder_ != nullptr ? recorder_->lb : machine_->clocks_[core_]; }
  bool recording() const { return recorder_ != nullptr; }
  Machine& machine() { return *machine_; }
  Rng& rng() { return machine_->rngs_[core_]; }

  // Executes one memory-touching instruction at `ip`.
  AccessResult Access(FunctionId ip, Addr addr, uint32_t size, bool is_write);

  // Convenience wrappers.
  AccessResult Read(FunctionId ip, Addr addr, uint32_t size) {
    return Access(ip, addr, size, false);
  }
  AccessResult Write(FunctionId ip, Addr addr, uint32_t size) {
    return Access(ip, addr, size, true);
  }

  // Executes `cycles` of pure compute attributed to `ip`.
  void Compute(FunctionId ip, uint64_t cycles);

  // Typed allocation through the machine's allocator.
  Addr Alloc(TypeId type, FunctionId ip);
  void Free(Addr addr, FunctionId ip);

  void LockAcquire(SimLock& lock, FunctionId ip);
  void LockRelease(SimLock& lock, FunctionId ip);

  // Latency probe: accumulates the committed memory latency of every access
  // between Begin and End, then adds total/divisor to `stat`. Works in both
  // modes; in engine mode the accumulation happens at commit time, so the
  // stat sees true latencies (drivers cannot — see class comment).
  void BeginLatencyProbe();
  void EndLatencyProbe(RunningStat* stat, double divisor);

  // Allocation-event delivery, called by AllocatorIface implementations at
  // the point the event becomes visible: immediate in direct mode, queued
  // for deterministic commit in engine mode.
  void NotifyAllocEvent(TypeId type, Addr base, uint32_t size);
  void NotifyFreeEvent(TypeId type, Addr base, uint32_t size, bool alien);

 private:
  Machine* machine_;
  int core_;
  CoreRecorder* recorder_ = nullptr;
  bool probing_ = false;
  uint64_t probe_latency_ = 0;
};

}  // namespace dprof

#endif  // DPROF_SRC_MACHINE_MACHINE_H_
