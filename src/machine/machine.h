// The simulated multicore machine.
//
// A Machine owns the cache hierarchy, per-core cycle clocks, and the
// scheduling loop. Workloads register one CoreDriver per core; the machine
// repeatedly steps the core with the smallest local clock, which keeps
// cross-core cache coherence and lock arbitration in approximately global
// time order while drivers stay simple sequential request loops.
//
// All instrumentation attaches here:
//  - MachineObserver: sees every access and compute operation (code profiler).
//  - PmuHook: may raise "interrupts" by returning extra cycles to charge the
//    executing core (IBS unit, debug registers). PMU overhead inflates core
//    clocks — and therefore reduces workload throughput — without being
//    attributed to workload functions, exactly how profiling overhead
//    manifests on real hardware (paper Figure 6-2).

#ifndef DPROF_SRC_MACHINE_MACHINE_H_
#define DPROF_SRC_MACHINE_MACHINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/machine/symbol_table.h"
#include "src/sim/hierarchy.h"
#include "src/util/rng.h"
#include "src/util/types.h"

namespace dprof {

class CoreContext;
class Machine;

// One memory operation as seen by observers and PMU hooks.
struct AccessEvent {
  int core = 0;
  FunctionId ip = kInvalidFunction;
  Addr addr = kNullAddr;
  uint32_t size = 0;
  bool is_write = false;
  ServedBy level = ServedBy::kL1;
  uint32_t latency = 0;       // cycles spent waiting on memory
  bool invalidation = false;  // simulator ground truth; PMUs must not use it
  uint64_t now = 0;           // core clock after the access completed
};

class MachineObserver {
 public:
  virtual ~MachineObserver() = default;
  virtual void OnAccess(const AccessEvent& event) = 0;
  virtual void OnCompute(int core, FunctionId ip, uint64_t cycles, uint64_t now) = 0;
};

// Hardware performance-monitoring hook. Returns extra cycles (interrupt and
// handler cost) to charge to the executing core; 0 if the op was not sampled.
class PmuHook {
 public:
  virtual ~PmuHook() = default;
  virtual uint64_t OnAccess(const AccessEvent& event) = 0;
};

// The typed allocator interface the machine exposes to drivers via
// CoreContext::Alloc/Free. Implemented by SlabAllocator (src/alloc).
class AllocatorIface {
 public:
  virtual ~AllocatorIface() = default;
  virtual Addr Alloc(CoreContext& ctx, TypeId type, FunctionId ip) = 0;
  virtual void Free(CoreContext& ctx, Addr addr, FunctionId ip) = 0;
};

// Per-core workload logic. Step() performs one unit of work (typically one
// request) and returns true, or returns false if the core has nothing to do
// (the machine then idles the core forward by config.idle_cycles).
class CoreDriver {
 public:
  virtual ~CoreDriver() = default;
  virtual bool Step(CoreContext& ctx) = 0;
};

// A spin lock living at a simulated memory address. Arbitration is
// time-based: an acquiring core's clock jumps to the lock's free time; the
// lock word itself is written through the cache hierarchy so contended locks
// also generate coherence traffic.
class SimLock {
 public:
  SimLock(std::string name, Addr word) : name_(std::move(name)), word_(word) {}

  const std::string& name() const { return name_; }
  Addr word() const { return word_; }

 private:
  friend class CoreContext;
  std::string name_;
  Addr word_ = kNullAddr;
  uint64_t free_at_ = 0;
  uint64_t acquired_at_ = 0;
  int holder_ = -1;
};

class LockObserver {
 public:
  virtual ~LockObserver() = default;
  virtual void OnAcquire(const SimLock& lock, int core, FunctionId ip, uint64_t wait_cycles,
                         uint64_t now) = 0;
  virtual void OnRelease(const SimLock& lock, int core, FunctionId ip, uint64_t hold_cycles,
                         uint64_t now) = 0;
};

struct MachineConfig {
  HierarchyConfig hierarchy;
  uint64_t idle_cycles = 2000;  // clock advance when a driver reports no work
  uint32_t base_op_cost = 1;    // pipeline cost of one op, excluding memory
  uint64_t seed = 1;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  int num_cores() const { return config_.hierarchy.num_cores; }
  const MachineConfig& config() const { return config_; }
  CacheHierarchy& hierarchy() { return hierarchy_; }
  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }

  void SetAllocator(AllocatorIface* allocator) { allocator_ = allocator; }
  void SetDriver(int core, CoreDriver* driver) { drivers_[core] = driver; }

  void AddObserver(MachineObserver* observer) { observers_.push_back(observer); }
  void RemoveObserver(MachineObserver* observer);
  void AddPmuHook(PmuHook* hook) { pmu_hooks_.push_back(hook); }
  void RemovePmuHook(PmuHook* hook);
  void SetLockObserver(LockObserver* observer) { lock_observer_ = observer; }

  uint64_t CoreClock(int core) const { return clocks_[core]; }
  uint64_t MinClock() const;
  uint64_t MaxClock() const;
  Rng& CoreRng(int core) { return rngs_[core]; }

  // Runs the scheduling loop until every core clock is >= MinClock() + cycles.
  void RunFor(uint64_t cycles);

  // Steps the minimum-clock core exactly `steps` times.
  void RunSteps(uint64_t steps);

  // Charges cycles to a core outside any driver step (PMU setup broadcasts,
  // interrupt handlers triggered by other cores).
  void ChargeCycles(int core, uint64_t cycles) { clocks_[core] += cycles; }

  CoreContext Context(int core);

 private:
  friend class CoreContext;

  int MinClockCore() const;
  void StepCore(int core);

  MachineConfig config_;
  CacheHierarchy hierarchy_;
  SymbolTable symbols_;
  std::vector<uint64_t> clocks_;
  std::vector<CoreDriver*> drivers_;
  std::vector<Rng> rngs_;
  std::vector<MachineObserver*> observers_;
  std::vector<PmuHook*> pmu_hooks_;
  AllocatorIface* allocator_ = nullptr;
  LockObserver* lock_observer_ = nullptr;
};

// Lightweight per-core handle passed to drivers and the allocator. All
// simulated work — memory accesses, compute, allocation, locking — flows
// through this API so that clocks, observers, and PMU hooks stay consistent.
class CoreContext {
 public:
  CoreContext(Machine* machine, int core) : machine_(machine), core_(core) {}

  int core() const { return core_; }
  uint64_t now() const { return machine_->clocks_[core_]; }
  Machine& machine() { return *machine_; }
  Rng& rng() { return machine_->rngs_[core_]; }

  // Executes one memory-touching instruction at `ip`.
  AccessResult Access(FunctionId ip, Addr addr, uint32_t size, bool is_write);

  // Convenience wrappers.
  AccessResult Read(FunctionId ip, Addr addr, uint32_t size) {
    return Access(ip, addr, size, false);
  }
  AccessResult Write(FunctionId ip, Addr addr, uint32_t size) {
    return Access(ip, addr, size, true);
  }

  // Executes `cycles` of pure compute attributed to `ip`.
  void Compute(FunctionId ip, uint64_t cycles);

  // Typed allocation through the machine's allocator.
  Addr Alloc(TypeId type, FunctionId ip);
  void Free(Addr addr, FunctionId ip);

  void LockAcquire(SimLock& lock, FunctionId ip);
  void LockRelease(SimLock& lock, FunctionId ip);

 private:
  Machine* machine_;
  int core_;
};

}  // namespace dprof

#endif  // DPROF_SRC_MACHINE_MACHINE_H_
