#include "src/machine/faults.h"

namespace dprof {

namespace {

// SplitMix64 finalizer, same as the sampling schedule's: stateless, so every
// seam decision is a pure function of (seed, seam salt, coordinates).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t Salt(FaultSeam seam) {
  return 0xd00d'0000ull + static_cast<uint64_t>(seam) * 0x1000'0001ull;
}

}  // namespace

const char* FaultSeamName(FaultSeam seam) {
  switch (seam) {
    case FaultSeam::kSlabGrow:
      return "slab_grow";
    case FaultSeam::kLaneDrop:
      return "lane_drop";
    case FaultSeam::kLaneDup:
      return "lane_dup";
    case FaultSeam::kClockSkew:
      return "clock_skew";
    case FaultSeam::kExtBankPressure:
      return "ext_pressure";
    case FaultSeam::kMailboxOverflow:
      return "mailbox_overflow";
    case FaultSeam::kWindowJitter:
      return "window_jitter";
    case FaultSeam::kLatticeCorrupt:
      return "lattice_corrupt";
    case FaultSeam::kEpochStall:
      return "epoch_stall";
    case FaultSeam::kCount:
      break;
  }
  return "?";
}

bool ParseFaultSeam(const std::string& name, FaultSeam* seam) {
  for (int i = 0; i < kNumFaultSeams; ++i) {
    if (name == FaultSeamName(static_cast<FaultSeam>(i))) {
      *seam = static_cast<FaultSeam>(i);
      return true;
    }
  }
  return false;
}

bool ParseFaultSeamList(const std::string& list, uint32_t* mask, std::string* error) {
  *mask = 0;
  size_t start = 0;
  while (start <= list.size()) {
    size_t end = list.find(',', start);
    if (end == std::string::npos) {
      end = list.size();
    }
    const std::string name = list.substr(start, end - start);
    if (name == "all") {
      *mask = (1u << kNumFaultSeams) - 1;
    } else if (!name.empty()) {
      FaultSeam seam;
      if (!ParseFaultSeam(name, &seam)) {
        if (error != nullptr) {
          *error = "unknown fault seam '" + name +
                   "' (try: slab_grow lane_drop lane_dup clock_skew ext_pressure "
                   "mailbox_overflow window_jitter lattice_corrupt epoch_stall all)";
        }
        return false;
      }
      *mask |= 1u << static_cast<int>(seam);
    }
    start = end + 1;
  }
  if (*mask == 0) {
    if (error != nullptr) {
      *error = "empty fault seam list";
    }
    return false;
  }
  return true;
}

bool FaultPlan::SlabGrowFails(int core, uint64_t slab_ordinal) {
  if (!enabled(FaultSeam::kSlabGrow)) {
    return false;
  }
  const uint64_t h = Mix(config_.seed ^ Salt(FaultSeam::kSlabGrow) ^
                         (slab_ordinal << 8) ^ static_cast<uint64_t>(core));
  if (h % config_.slab_grow_period != 0) {
    return false;
  }
  NoteInjected(FaultSeam::kSlabGrow);
  return true;
}

LaneFault FaultPlan::LaneFaultFor(int core, uint64_t t, Addr addr) {
  const bool drop = enabled(FaultSeam::kLaneDrop);
  const bool dup = enabled(FaultSeam::kLaneDup);
  if (!drop && !dup) {
    return LaneFault::kNone;
  }
  const uint64_t h = Mix(config_.seed ^ Salt(FaultSeam::kLaneDrop) ^ (addr << 6) ^
                         (t << 1) ^ static_cast<uint64_t>(core));
  if (h % config_.lane_period != 0) {
    return LaneFault::kNone;
  }
  // Both seams on: the hash picks which fault this record suffers.
  const bool pick_drop = drop && (!dup || ((h >> 32) & 1u) != 0);
  const FaultSeam seam = pick_drop ? FaultSeam::kLaneDrop : FaultSeam::kLaneDup;
  NoteInjected(seam);
  NoteRecovered(seam);
  return pick_drop ? LaneFault::kDrop : LaneFault::kDup;
}

uint32_t FaultPlan::ClockSkew(int core, uint64_t epoch) {
  if (!enabled(FaultSeam::kClockSkew) || config_.skew_max_cycles == 0) {
    return 0;
  }
  const uint64_t h = Mix(config_.seed ^ Salt(FaultSeam::kClockSkew) ^ (epoch << 5) ^
                         static_cast<uint64_t>(core));
  const uint32_t skew = static_cast<uint32_t>(h % config_.skew_max_cycles);
  if (skew != 0) {
    NoteInjected(FaultSeam::kClockSkew);
    NoteRecovered(FaultSeam::kClockSkew);
  }
  return skew;
}

void FaultPlan::ApplyToHierarchy(HierarchyConfig* config) {
  if (!enabled(FaultSeam::kExtBankPressure)) {
    return;
  }
  const uint32_t ways = config_.ext_ways_override > 0 ? config_.ext_ways_override : 1;
  if (ways < config->l3_dir_ext_ways) {
    config->l3_dir_ext_ways = ways;
    NoteInjected(FaultSeam::kExtBankPressure);
  }
}

void FaultPlan::NoteMailboxDrop() {
  NoteInjected(FaultSeam::kMailboxOverflow);
  NoteRecovered(FaultSeam::kMailboxOverflow);
}

bool FaultPlan::WindowJitterFires(uint64_t period) {
  if (!enabled(FaultSeam::kWindowJitter)) {
    return false;
  }
  // Every other period gets its window pushed off-contract, so the honesty
  // self-check sees repeated shortfalls and walks its degradation ladder.
  const uint64_t h =
      Mix(config_.seed ^ Salt(FaultSeam::kWindowJitter) ^ period);
  if ((h & 1u) == 0) {
    return false;
  }
  NoteInjected(FaultSeam::kWindowJitter);
  return true;
}

int FaultPlan::CorruptionAtAudit(uint64_t audit) {
  if (!enabled(FaultSeam::kLatticeCorrupt) || audit < config_.corrupt_from_audit) {
    return -1;
  }
  const uint64_t h = Mix(config_.seed ^ Salt(FaultSeam::kLatticeCorrupt) ^ audit);
  NoteInjected(FaultSeam::kLatticeCorrupt);
  return static_cast<int>(h % CacheHierarchy::kNumLatticeFaultKinds);
}

bool FaultPlan::StallsEpoch(uint64_t epoch) {
  if (!enabled(FaultSeam::kEpochStall) || epoch < config_.stall_after_epochs) {
    return false;
  }
  NoteInjected(FaultSeam::kEpochStall);
  return true;
}

}  // namespace dprof
