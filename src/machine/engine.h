// Epoch-batched parallel execution engine with deterministic replay.
//
// The legacy Machine loop steps the globally-minimum-clock core one driver
// step at a time, interleaving simulation and hierarchy state at every
// operation. This engine splits a run into bounded-cycle *epochs* and each
// epoch into three strictly-barriered phases:
//
//   1. SIMULATE (parallel over cores): every CoreDriver runs with a
//      recording CoreContext until its lower-bound clock reaches the epoch
//      end. Drivers, the allocator fast paths, and RNGs touch only
//      core-owned state; every memory access, compute burst, lock
//      operation, and allocation event is appended to the core's SimOp
//      queue with its lower-bound timestamp.
//   2. APPLY (parallel over hierarchy shards): the recorded accesses are
//      merged per shard in (timestamp, core) order and applied to the cache
//      hierarchy. All hierarchy state partitions by line number
//      (CacheHierarchy::num_shards), so shard workers never share state,
//      and each shard's merge order is a pure function of the recorded
//      queues. Each op's latency/level/invalidation result is stored back
//      into the op.
//   3. COMMIT (sequential): all queues are merged in (timestamp, core)
//      order one final time to reconstruct exact core clocks: latencies,
//      PMU interrupt charges, and lock waits accumulate per core, and every
//      observer, PMU hook, lock observer, and allocation event fires here
//      with its committed clock — the same stream a sequential commit would
//      produce. Epoch hooks (mailboxes, allocator alien transfers) run
//      last.
//
// Because phase 1 is core-local, phase 2 is shard-local with a fixed merge
// order, and phase 3 is sequential with the same fixed order, the committed
// event stream — and therefore every profile built from it — is
// bit-identical for any host thread count, including 1.

#ifndef DPROF_SRC_MACHINE_ENGINE_H_
#define DPROF_SRC_MACHINE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/machine/machine.h"

namespace dprof {

struct EngineConfig {
  // Host worker threads; 0 = std::thread::hardware_concurrency().
  int threads = 0;
  // Epoch length in simulated cycles: the bound on cross-core skew of the
  // lower-bound clocks within one parallel phase, and the granularity at
  // which cross-core mailboxes (EpochHook) exchange state.
  uint64_t epoch_cycles = 20'000;
};

class Engine final : public Executor {
 public:
  // Matches CacheHierarchy's core-count bound; merge scratch is stack-sized.
  static constexpr int kMaxCores = 32;

  Engine(Machine* machine, const EngineConfig& config = {});
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Executor: runs epochs until every core clock >= MinClock() + cycles.
  void RunFor(uint64_t cycles) override;

  int threads() const { return threads_; }
  const EngineConfig& config() const { return config_; }
  uint64_t epochs_run() const { return epochs_run_; }

 private:
  void RunEpoch(uint64_t epoch_end);
  void SimulateCore(int core, uint64_t epoch_end);
  void ApplyShard(uint32_t shard);
  void CommitEpoch();

  // Runs fn(0..count-1) on the worker pool; the calling thread participates.
  void ParallelFor(int count, const std::function<void(int)>& fn);
  void WorkerLoop();
  int ClaimIndex(uint64_t generation);
  void FinishIndex(uint64_t generation);

  Machine* machine_;
  EngineConfig config_;
  int threads_ = 1;
  uint32_t num_shards_ = 1;
  std::vector<CoreRecorder> recorders_;
  uint64_t epochs_run_ = 0;

  // Per-core commit-time lock state (wait stashed between kLockAcquire and
  // kLockAcquireDone; park bookkeeping while a holder's release is pending)
  // and latency-probe accumulators.
  std::vector<uint64_t> lock_wait_;
  std::vector<SimLock*> blocked_on_;
  std::vector<uint64_t> block_start_;
  std::vector<uint64_t> probe_latency_;
  std::vector<uint8_t> probe_active_;

  // Worker pool (created only when threads > 1). All dispatch state is
  // guarded by mu_; generation_ identifies the current dispatch so a
  // straggler can never claim indices of a later one.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* task_ = nullptr;
  int task_count_ = 0;
  int next_index_ = 0;
  int finished_ = 0;
  uint64_t generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace dprof

#endif  // DPROF_SRC_MACHINE_ENGINE_H_
