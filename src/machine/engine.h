// Epoch-batched parallel execution engine with deterministic replay.
//
// The legacy Machine loop steps the globally-minimum-clock core one driver
// step at a time, interleaving simulation and hierarchy state at every
// operation. This engine splits a run into bounded-cycle *epochs* and each
// epoch into three strictly-barriered phases:
//
//   1. SIMULATE (parallel over cores): every CoreDriver runs with a
//      recording CoreContext until its lower-bound clock reaches the epoch
//      end. Drivers, the allocator fast paths, and RNGs touch only
//      core-owned state; every memory access, compute burst, lock
//      operation, and allocation event is appended to the core's SoA op
//      queue with its lower-bound timestamp.
//   2. APPLY (parallel over hierarchy shards): the recorded accesses are
//      merged per shard in (timestamp quantum, core, program order) — see
//      EngineConfig::apply_quantum_bits — and applied to the cache
//      hierarchy. All hierarchy state partitions by line number
//      (CacheHierarchy::num_shards), so shard workers never share state,
//      and each shard's merge order is a pure function of the recorded
//      queues. At one thread the same suborders are produced by a single
//      fused merge with no shard lists. Every merge drain is a single-core
//      span handed to CacheHierarchy::ApplyBatch, whose software pipeline
//      prefetches the tag rows of the access kPrefetchDepth ahead while
//      the current one resolves; each op's packed latency/level/
//      invalidation result is stored back into its lane (or ring) record.
//
//      Epochs that provably have no event consumer stream their accesses
//      through compact 16-byte per-core rings instead of the full lane +
//      meta columns (record elision — see
//      EngineConfig::allow_record_elision); the rings are the ApplyLane
//      span format, so the fused merge applies them in place.
//   3. COMMIT (sequential): exact core clocks are reconstructed — memory
//      latencies, PMU interrupt charges, and lock waits accumulate per
//      core — and every observer, PMU hook, lock observer, and allocation
//      event fires with its committed clock. Epoch hooks (mailboxes,
//      allocator alien transfers) run last.
//
// The commit pass is *segmented*. The only operations whose commit another
// core can observe are sync ops (locks, allocator events) and PMU
// dispatches (IBS samples, watchpoint hits); each of those arbitrates
// under the global min-committed-clock rule and commits exactly when its
// core's pre-op clock is the global minimum — the legacy scheduling rule —
// so lock arbitration, allocation-event order, and sample/hit delivery
// into shared handlers interleave identically to a fully sequential per-op
// merge. Everything between those points advances only core-local state
// and commits as whole per-core segments. Within a segment, PMU hooks are
// consulted through the batch contract on PmuHook (QuietOps /
// OnQuietAccessBatch / AccessFilter): an access only pays for event
// assembly and virtual dispatch when some hook can actually act on it.
// Observer delivery is span-based (MachineObserver::OnAccessBatch /
// OnComputeBatch) and, when the engine owns worker threads, overlaps the
// next epoch's simulate phase: observers are pure sinks, so handing the
// fully-assembled event buffer of epoch N to a delivery thread while epoch
// N+1 simulates changes nothing about its content or order.
//
// Because phase 1 is core-local, phase 2 is shard-local with a fixed merge
// order, and phase 3's schedule is a pure function of the recorded queues
// and committed state, the committed event stream — and therefore every
// profile built from it — is bit-identical for any host thread count,
// including 1.

#ifndef DPROF_SRC_MACHINE_ENGINE_H_
#define DPROF_SRC_MACHINE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/machine/machine.h"
#include "src/machine/sampling.h"

namespace dprof {

struct EngineConfig {
  // Host worker threads; 0 = std::thread::hardware_concurrency().
  int threads = 0;
  // Epoch length in simulated cycles: the bound on cross-core skew of the
  // lower-bound clocks within one parallel phase, and the granularity at
  // which cross-core mailboxes (EpochHook) exchange state.
  uint64_t epoch_cycles = 20'000;
  // Adaptive epoch length used while Machine::epoch_focus() is set (a
  // mailbox-fed type is under study): mailbox deliveries resolve at
  // near-legacy granularity, closing the payload-type miss-rate drift of
  // epoch batching, without paying the extra epochs on every run. Fidelity
  // data: kernel scenario size-1024 miss rate, legacy 69% vs engine 41% at
  // 20k-cycle epochs, 57% at 2k (tests/engine_validation_test.cc).
  uint64_t epoch_cycles_focus = 2'000;
  // The apply pass merges recorded accesses in (t >> apply_quantum_bits,
  // core, program order): cores' accesses interleave at quantum granularity
  // instead of op granularity. The legacy loop reorders at driver-step
  // granularity (one core runs a whole step before the min-clock scan picks
  // the next), so a quantum of the same order keeps coherence timing
  // comparable while giving the host long same-core runs — the simulated
  // L1/L2 state stays hot and the merge tree amortizes across runs.
  int apply_quantum_bits = 11;  // 2048-cycle quanta; fidelity data in tests/engine_validation_test.cc
  // Record elision: an epoch whose machine state, read at epoch start,
  // proves that no consumer can act on any access event (no observers, no
  // armed access filter, every counting PMU hook unbounded-quiet, no
  // elision inhibitor held — see Engine::ElisionMode) streams its
  // accesses through a compact 16-byte per-core ring straight into the
  // batch applier instead of materializing the 24-byte lane + 8-byte meta
  // records. The committed stream is bit-identical either way (the apply
  // merge order and clock reconstruction are unchanged); this knob exists
  // so tests and CI can force the recorded path and diff the two.
  bool allow_record_elision = true;
  // Topology-aware apply: on a multi-socket hierarchy, the apply phase
  // dispatches one task per socket — a worker drains whole L3 slices (the
  // socket's contiguous shard range), keeping its tag walks inside one
  // slice's arrays — instead of claiming the flat shard list one shard at a
  // time. Off = the flat line-hash dispatch (the comparison arm benches
  // record). Single-socket topologies always use the flat dispatch.
  bool socket_aware_apply = true;
  // Deterministic work stealing for the socket-aware apply: a worker that
  // drains its own socket's slices takes remaining shards from other
  // sockets' ranges via per-socket cursors. Shard state is disjoint, so
  // which worker applies a shard (and in what order across sockets) cannot
  // change any result — stealing rebalances wall-clock only.
  bool apply_work_stealing = true;
  // Sampled execution (statistical fast-forward): when enabled, a
  // SamplingController alternates detailed windows (full hierarchy walks +
  // event delivery — exactly the exact-mode semantics) with fast-forward
  // stretches where accesses advance clocks through the calibrated per-core
  // cost estimate and skip the tag lattice entirely. Allocator state,
  // lock/sync arbitration, and armed watchpoint windows stay exact; the
  // window schedule is a pure function of committed clocks, so sampled runs
  // stay byte-identical across --threads values. Epochs with observers
  // attached always run detailed.
  SamplingConfig sampling{};
  // Invariant auditing: every audit_epochs epochs (0 = never) the commit
  // thread walks the tag lattice with an InvariantAuditor (src/sim/audit.h)
  // and checks committed-clock monotonicity. A violation stops the run with
  // a kDataLoss status; a clean audit changes no observable output.
  uint64_t audit_epochs = 0;
  // Graceful-degradation watchdog: a run that makes no committed-clock
  // progress for watchdog_stall_epochs consecutive epochs, or spends more
  // than watchdog_wall_seconds of host wall time inside one RunFor call,
  // stops with a kDeadlineExceeded status instead of hanging. Healthy
  // epochs always advance the min clock, so the stall bound only trips on
  // genuine scheduling bugs (or the injected kEpochStall fault). 0 disables
  // either bound.
  uint64_t watchdog_stall_epochs = 256;
  double watchdog_wall_seconds = 300.0;
};

// Host wall-clock spent in each engine phase, accumulated across epochs.
// deliver_seconds counts span delivery to observers wherever it ran: on the
// delivery thread when commit overlaps the next simulate phase, inside the
// commit phase (and therefore also inside commit_seconds) at one thread.
struct EnginePhaseStats {
  double simulate_seconds = 0.0;
  double apply_seconds = 0.0;
  double commit_seconds = 0.0;
  double deliver_seconds = 0.0;
  uint64_t epochs = 0;
  uint64_t elided_epochs = 0;  // epochs that streamed every access record-elided
  uint64_t ff_epochs = 0;      // epochs fast-forwarded by the sampling controller
};

class Engine final : public Executor {
 public:
  // Matches CacheHierarchy's core-count bound; merge scratch is stack-sized.
  static constexpr int kMaxCores = 64;
  static_assert((kMaxCores & (kMaxCores - 1)) == 0,
                "merge keys pack the core id into the low log2(kMaxCores) bits");

  Engine(Machine* machine, const EngineConfig& config = {});
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Executor: runs epochs until every core clock >= MinClock() + cycles.
  void RunFor(uint64_t cycles) override;

  int threads() const { return threads_; }
  const EngineConfig& config() const { return config_; }
  uint64_t epochs_run() const { return epochs_run_; }
  const EnginePhaseStats& phase_stats() const { return phase_stats_; }
  // Non-null when sampled execution is enabled; exposes the measured-window
  // accounting the report layer turns into scaled estimates + intervals.
  const SamplingController* sampler() const { return sampler_.get(); }

  // Sticky health status: Ok until a watchdog, lattice audit, or polled
  // allocator failure stops the run. Once set, RunFor returns immediately
  // so callers can surface the diagnostic instead of looping on a dead run.
  const Status& status() const { return status_; }
  uint64_t audits_run() const { return audits_run_; }

 private:
  // Observer/PMU capability snapshot the commit pass branches on per run
  // instead of per op. Rebuilt at every commit and after any operation that
  // can rearm a hook (sync ops, full per-op dispatches).
  struct FusedSink {
    struct Filtered {
      PmuHook* hook;
      Addr lo;
      Addr hi;
    };
    std::vector<PmuHook*> counting;   // consulted via QuietOps / skip batches
    std::vector<Filtered> filtered;   // consulted only on address overlap
    bool want_events = false;         // any MachineObserver attached
  };

  // One epoch's observer-bound event stream: homogeneous spans over the two
  // typed buffers, in exact commit order. Double-buffered so delivery of
  // epoch N can overlap epoch N+1's simulate phase.
  struct EventBatch {
    struct Span {
      uint8_t is_compute;
      uint32_t offset;
      uint32_t count;
    };
    std::vector<AccessEvent> access;
    std::vector<ComputeEvent> compute;
    std::vector<Span> spans;

    bool IsEmpty() const { return spans.empty(); }
    void Clear() {
      access.clear();
      compute.clear();
      spans.clear();
    }
  };

  // Runs one epoch starting at the committed min-clock. `epoch_cycles` is the
  // nominal epoch length; fast-forward epochs stretch it (bounded by the
  // sampler's runway and config cap) to amortize per-epoch overhead.
  void RunEpoch(uint64_t min_clock, uint64_t deadline, uint64_t epoch_cycles);
  // Lattice audit + committed-clock monotonicity check, run on the commit
  // thread between epochs; injects one planned corruption first when a
  // fault plan arms kLatticeCorrupt (the detection-coverage harness).
  void RunAudit();
  void SimulateCore(int core, uint64_t epoch_end);
  void ApplyShard(uint32_t shard);
  // Socket-aware apply task: drains the socket's own shard range, then (when
  // work stealing is on) helps other sockets finish theirs.
  void ApplySocket(int socket);
  void ApplyGlobal();
  void CommitEpoch();

  // What the record-elision gate allows for the coming epoch, read from the
  // machine's observer/hook state at epoch start. kFull: no consumer can act
  // on any access (no observers, no armed filter, every counting hook
  // unbounded-quiet, no inhibitor held) — every access streams through the
  // ring. kPrefix: same, except some counting hook has a bounded quiet
  // countdown — each core streams its countdown-guaranteed quiet prefix and
  // records the rest. kOff: a consumer (observer, armed filter, inhibitor)
  // forces full records. Hook and observer sets change only between RunFor
  // calls, and mid-epoch arming from commit callbacks is excluded by
  // Machine::elision_inhibitors.
  enum class ElideMode { kOff, kPrefix, kFull };
  ElideMode ElisionMode() const;

  // Commits ops of `core` starting at `begin` within a sync-free segment
  // ending at `end`, advancing the core's committed clock in place. Stops
  // at the first access some PMU hook can act on — a cross-core-visible
  // effect that must re-arbitrate — and returns its index; the access at
  // `begin` itself, already arbitrated, dispatches immediately. Returns
  // `end` when the whole segment committed.
  uint32_t CommitRun(int core, uint32_t begin, uint32_t end);
  // CommitRun for a fast-forwarded epoch: kFfRun markers advance the clock
  // by their accumulated estimate; the only dispatchable accesses are the
  // filter-window overlaps recorded with prefilled results, and they go to
  // the filtered hooks only — counting hooks (IBS) are frozen across
  // fast-forward stretches so sample counts stay proportional to measured
  // windows.
  uint32_t CommitRunFf(int core, uint32_t begin, uint32_t end);
  // Commits the sync op at `index`; returns false when the core parked on a
  // lock whose release is still pending (op not consumed).
  bool CommitSyncOp(int core, uint32_t index);
  // Full per-op path for an access some hook may act on: assembles the
  // event, delivers it, and lets every PMU hook charge the core.
  void DispatchAccess(int core, uint32_t index, uint64_t& clock);

  void ResyncSink();
  void RefreshQuiet(int core);
  void FlushQuiet(int core);

  void EmitAccess(const AccessEvent& event);
  void EmitCompute(const ComputeEvent& event);
  void DeliverBatch(const EventBatch& batch);
  void HandOffOrDeliver();
  void WaitDeliveryIdle();
  void DeliveryLoop();

  // Runs fn(0..count-1) on the worker pool; the calling thread participates.
  void ParallelFor(int count, const std::function<void(int)>& fn);
  void WorkerLoop();
  int ClaimIndex(uint64_t generation);
  void FinishIndex(uint64_t generation);

  Machine* machine_;
  EngineConfig config_;
  int threads_ = 1;
  uint32_t num_shards_ = 1;
  // Shard-parallel apply when worker threads exist; fused single merge
  // (bit-identical results, no shard lists) otherwise.
  bool shard_apply_ = false;
  // Socket-major dispatch of the shard-parallel apply (see
  // EngineConfig::socket_aware_apply); shards_per_socket_ is the contiguous
  // shard range each socket owns, socket_cursor_ the per-socket claim state.
  bool socket_apply_ = false;
  int num_sockets_ = 1;
  uint32_t shards_per_socket_ = 1;
  std::vector<std::atomic<uint32_t>> socket_cursor_;
  // This epoch streams every access through the elision rings (set per
  // epoch from the gate above; identical for every host thread count).
  bool elide_epoch_ = false;
  // This epoch fast-forwards (sampled execution; mutually exclusive with
  // elide_epoch_ — fast-forward wins, there is nothing to elide).
  bool ff_epoch_ = false;
  std::unique_ptr<SamplingController> sampler_;
  std::vector<CoreRecorder> recorders_;
  uint64_t epochs_run_ = 0;
  EnginePhaseStats phase_stats_;

  // Health state: sticky status, audit cadence bookkeeping, and the
  // previous audit's committed clocks (monotonicity baseline).
  Status status_;
  uint64_t audits_run_ = 0;
  std::vector<uint64_t> audit_prev_clocks_;

  // Per-core commit-time lock state (park bookkeeping while a holder's
  // release is pending) and latency-probe accumulators.
  std::vector<SimLock*> blocked_on_;
  std::vector<uint64_t> block_start_;
  std::vector<uint64_t> probe_latency_;
  std::vector<uint8_t> probe_active_;

  // Commit-pass scratch, valid during CommitEpoch (members so the lock
  // wake-up in CommitSyncOp can refresh parked cores' keys).
  FusedSink sink_;
  uint64_t commit_keys_[kMaxCores];
  uint32_t commit_cursor_[kMaxCores];
  uint32_t commit_sync_i_[kMaxCores];
  bool woke_parked_ = false;  // a lock release re-armed a parked core's key
  // PMU gate: remaining quiet budget across sink_.counting hooks, and the
  // accesses consumed under it but not yet flushed via OnQuietAccessBatch.
  // gate_unbounded_ marks a kQuietUnbounded budget (no accounting needed).
  uint64_t gate_quiet_[kMaxCores];
  uint64_t gate_skipped_[kMaxCores];
  uint8_t gate_unbounded_[kMaxCores];

  // Observer delivery. batches_[build_batch_] is filled by the commit pass;
  // the other slot may be in flight on the delivery thread.
  EventBatch batches_[2];
  int build_batch_ = 0;
  std::thread deliver_thread_;
  std::mutex deliver_mu_;
  std::condition_variable deliver_cv_;
  bool deliver_pending_ = false;
  bool deliver_shutdown_ = false;

  // Worker pool (created only when threads > 1). All dispatch state is
  // guarded by mu_; generation_ identifies the current dispatch so a
  // straggler can never claim indices of a later one.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* task_ = nullptr;
  int task_count_ = 0;
  int next_index_ = 0;
  int finished_ = 0;
  uint64_t generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace dprof

#endif  // DPROF_SRC_MACHINE_ENGINE_H_
