#include "src/machine/engine.h"

#include <algorithm>

#include "src/util/check.h"

namespace dprof {

namespace {

// Merge keys pack (timestamp << 5) | core, so an unconditional min
// reduction picks the smallest timestamp with ties to the lowest core id —
// the same rule the legacy loop's MinClockCore uses; per-core queues are
// FIFO, so same-core ops keep program order. The reduction over a fixed
// 32-slot array compiles to branchless min chains, which beats both a
// binary heap and a branchy argmin scan at this fan-in. Clocks stay far
// below 2^59, so the shift never overflows.
constexpr uint64_t kDoneKey = ~0ull;

uint64_t PackKey(uint64_t timestamp, int core) {
  return (timestamp << 5) | static_cast<uint64_t>(core);
}

// Balanced-tree reduction: log-depth dependency chain, so the four-wide min
// stages overlap instead of serializing like a linear fold.
template <int kWidth>
__attribute__((always_inline)) inline uint64_t MinKeyTree(const uint64_t* keys) {
  uint64_t m[kWidth / 2];
  for (int i = 0; i < kWidth / 2; ++i) {
    m[i] = std::min(keys[2 * i], keys[2 * i + 1]);
  }
  for (int width = kWidth / 2; width > 1; width /= 2) {
    for (int i = 0; i < width / 2; ++i) {
      m[i] = std::min(m[2 * i], m[2 * i + 1]);
    }
  }
  return m[0];
}

__attribute__((always_inline)) inline uint64_t MinKey(const uint64_t* keys, int cores) {
  if (cores <= 8) {
    return MinKeyTree<8>(keys);
  }
  if (cores <= 16) {
    return MinKeyTree<16>(keys);
  }
  return MinKeyTree<32>(keys);
}

}  // namespace

Engine::Engine(Machine* machine, const EngineConfig& config)
    : machine_(machine), config_(config) {
  DPROF_CHECK(config_.epoch_cycles > 0);
  threads_ = config_.threads > 0 ? config_.threads
                                 : static_cast<int>(std::thread::hardware_concurrency());
  if (threads_ < 1) {
    threads_ = 1;
  }
  num_shards_ = machine_->hierarchy().num_shards();
  const int cores = machine_->num_cores();
  recorders_.resize(cores);
  lock_wait_.assign(cores, 0);
  blocked_on_.assign(cores, nullptr);
  block_start_.assign(cores, 0);
  probe_latency_.assign(cores, 0);
  probe_active_.assign(cores, 0);

  const int max_width = std::max(cores, static_cast<int>(num_shards_));
  const int spawn = std::min(threads_ - 1, max_width - 1);
  workers_.reserve(spawn);
  for (int i = 0; i < spawn; ++i) {
    workers_.emplace_back(&Engine::WorkerLoop, this);
  }
}

Engine::~Engine() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

// Claims the next index of dispatch `generation`, or -1 when that dispatch
// has no indices left (or has been superseded — a straggler from a finished
// dispatch must never claim into the next one). Claims are whole-core /
// whole-shard units, so the mutex is uncontended in practice.
int Engine::ClaimIndex(uint64_t generation) {
  std::lock_guard<std::mutex> lk(mu_);
  if (generation_ != generation || next_index_ >= task_count_) {
    return -1;
  }
  return next_index_++;
}

void Engine::FinishIndex(uint64_t generation) {
  std::lock_guard<std::mutex> lk(mu_);
  if (generation_ == generation && ++finished_ == task_count_) {
    done_cv_.notify_all();
  }
}

void Engine::WorkerLoop() {
  uint64_t seen = 0;
  while (true) {
    const std::function<void(int)>* task = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) {
        return;
      }
      seen = generation_;
      task = task_;
    }
    for (int i = ClaimIndex(seen); i >= 0; i = ClaimIndex(seen)) {
      (*task)(i);
      FinishIndex(seen);
    }
  }
}

void Engine::ParallelFor(int count, const std::function<void(int)>& fn) {
  if (workers_.empty() || count <= 1) {
    for (int i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }
  uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    task_ = &fn;
    task_count_ = count;
    next_index_ = 0;
    finished_ = 0;
    generation = ++generation_;
  }
  work_cv_.notify_all();
  for (int i = ClaimIndex(generation); i >= 0; i = ClaimIndex(generation)) {
    fn(i);
    FinishIndex(generation);
  }
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return finished_ == count; });
  task_ = nullptr;
}

void Engine::RunFor(uint64_t cycles) {
  Machine& m = *machine_;
  if (m.allocator_ != nullptr) {
    m.allocator_->PrepareParallel(m.num_cores());
  }
  const uint64_t deadline = m.MinClock() + cycles;
  while (true) {
    const uint64_t min_clock = m.MinClock();
    if (min_clock >= deadline) {
      break;
    }
    RunEpoch(std::min(deadline, min_clock + config_.epoch_cycles));
  }
}

void Engine::RunEpoch(uint64_t epoch_end) {
  Machine& m = *machine_;
  const int cores = m.num_cores();
  for (int c = 0; c < cores; ++c) {
    CoreRecorder& rec = recorders_[c];
    // Calibrate the core's lower-bound cost model from the epoch just
    // committed: measured access-attributable clock advance (latency + PMU
    // interrupts + lock waits) over the raw estimate. Smoothed 3:1 to damp
    // oscillation; pure function of committed state, so identical for any
    // thread count.
    const uint64_t advance = m.clocks_[c] - rec.epoch_start_clock;
    if (rec.raw_access_cost > 0 && advance > rec.exact_cost) {
      uint64_t scale16 = ((advance - rec.exact_cost) * 16) / rec.raw_access_cost;
      scale16 = std::min<uint64_t>(std::max<uint64_t>(scale16, 16), 4096);
      rec.cost_scale16 =
          static_cast<uint32_t>((3ull * rec.cost_scale16 + scale16) / 4);
    }
    rec.Reset(m.clocks_[c], num_shards_);
  }
  ParallelFor(cores, [&](int core) { SimulateCore(core, epoch_end); });
  ParallelFor(static_cast<int>(num_shards_),
              [&](int shard) { ApplyShard(static_cast<uint32_t>(shard)); });
  CommitEpoch();
  if (m.allocator_ != nullptr) {
    m.allocator_->FlushEpoch();
  }
  for (EpochHook* hook : m.epoch_hooks_) {
    hook->OnEpochCommit(m.MaxClock());
  }
  ++epochs_run_;
}

void Engine::SimulateCore(int core, uint64_t epoch_end) {
  Machine& m = *machine_;
  CoreRecorder& rec = recorders_[core];
  CoreDriver* driver = m.drivers_[core];
  CoreContext ctx(&m, core, &rec);
  while (rec.lb < epoch_end) {
    const bool did_work = driver != nullptr && driver->Step(ctx);
    if (!did_work) {
      SimOp op;
      op.kind = SimOp::kIdle;
      op.t = rec.lb;
      op.aux = m.config_.idle_cycles;
      rec.Push(op);
      rec.ChargeExact(m.config_.idle_cycles);
    }
  }
}

void Engine::ApplyShard(uint32_t shard) {
  Machine& m = *machine_;
  const int cores = m.num_cores();
  uint64_t keys[kMaxCores];
  size_t cursor[kMaxCores] = {0};
  int remaining = 0;
  for (int c = 0; c < kMaxCores; ++c) {
    keys[c] = kDoneKey;
  }
  for (int c = 0; c < cores; ++c) {
    const auto& list = recorders_[c].shard_ops[shard];
    if (!list.empty()) {
      keys[c] = PackKey(recorders_[c].ops[list[0]].t, c);
      ++remaining;
    }
  }
  while (remaining > 0) {
    const int core = static_cast<int>(MinKey(keys, cores) & 31u);
    CoreRecorder& rec = recorders_[core];
    const auto& list = rec.shard_ops[shard];
    SimOp& op = rec.ops[list[cursor[core]]];
    const AccessResult r = m.hierarchy_.Access(core, op.addr, op.size, op.is_write, op.t);
    op.aux = SimOp::PackResult(r.latency, r.level, r.invalidation);
    if (++cursor[core] < list.size()) {
      keys[core] = PackKey(rec.ops[list[cursor[core]]].t, core);
    } else {
      keys[core] = kDoneKey;
      --remaining;
    }
  }
}

void Engine::CommitEpoch() {
  Machine& m = *machine_;
  const int cores = m.num_cores();
  size_t cursor[kMaxCores] = {0};
  // Commit order is the legacy scheduling rule at op granularity: always
  // the core with the smallest *committed* clock (ties to the lowest id).
  // Ordering by recorded lb timestamps instead would let a core whose true
  // clock raced ahead (PMU interrupts, miss latencies) release locks far in
  // the future and drag every later acquirer's clock up with it — phantom
  // waits that collapse throughput. Keys refresh after every op since the
  // op itself moves the core's clock.
  uint64_t keys[kMaxCores];
  int remaining = 0;
  for (int c = 0; c < kMaxCores; ++c) {
    keys[c] = kDoneKey;
  }
  for (int c = 0; c < cores; ++c) {
    if (!recorders_[c].ops.empty()) {
      keys[c] = PackKey(m.clocks_[c], c);
      ++remaining;
    }
  }
  while (remaining > 0) {
    const uint64_t min_key = MinKey(keys, cores);
    // All live queues parked on locks with no pending release would mean a
    // critical section spanning a driver step, which drivers must not do.
    DPROF_CHECK(min_key != kDoneKey);
    const int core = static_cast<int>(min_key & 31u);
    CoreRecorder& rec = recorders_[core];
    const SimOp& op = rec.ops[cursor[core]];
    uint64_t& clock = m.clocks_[core];

    switch (op.kind) {
      case SimOp::kAccess: {
        const uint32_t latency = op.ResultLatency();
        clock += m.config_.base_op_cost + latency;
        if (probe_active_[core] != 0) {
          probe_latency_[core] += latency;
        }
        AccessEvent event;
        event.core = core;
        event.ip = op.ip;
        event.addr = op.addr;
        event.size = op.size;
        event.is_write = op.is_write;
        event.level = op.ResultLevel();
        event.latency = latency;
        event.invalidation = op.ResultInvalidation();
        event.now = clock;
        for (MachineObserver* obs : m.observers_) {
          obs->OnAccess(event);
        }
        for (PmuHook* hook : m.pmu_hooks_) {
          const uint64_t extra = hook->OnAccess(event);
          if (extra != 0) {
            clock += extra;
          }
        }
        break;
      }
      case SimOp::kCompute: {
        clock += op.aux;
        for (MachineObserver* obs : m.observers_) {
          obs->OnCompute(core, op.ip, op.aux, clock);
        }
        break;
      }
      case SimOp::kIdle: {
        clock += op.aux;
        break;
      }
      case SimOp::kLockAcquire: {
        SimLock* lock = reinterpret_cast<SimLock*>(op.addr);
        if (lock->holder_ >= 0 && lock->holder_ != core) {
          // The holder's release is still pending in this commit: park this
          // core (its queue stops merging) until that release wakes it.
          // Without parking, the nondecreasing commit-clock order would make
          // every same-epoch wait zero and let critical sections overlap.
          if (blocked_on_[core] == nullptr) {
            blocked_on_[core] = lock;
            block_start_[core] = clock;
          }
          keys[core] = kDoneKey;
          continue;  // op not consumed; retried after the wake-up
        }
        uint64_t wait = 0;
        if (blocked_on_[core] != nullptr) {
          blocked_on_[core] = nullptr;
          wait = clock > block_start_[core] ? clock - block_start_[core] : 0;
        }
        if (lock->free_at_ > clock) {
          wait += lock->free_at_ - clock;
          clock = lock->free_at_;
        }
        lock_wait_[core] = wait;
        lock->holder_ = core;  // claimed now; acquired_at_ stamps at Done
        break;
      }
      case SimOp::kLockAcquireDone: {
        SimLock* lock = reinterpret_cast<SimLock*>(op.addr);
        lock->holder_ = core;
        lock->acquired_at_ = clock;
        if (m.lock_observer_ != nullptr) {
          m.lock_observer_->OnAcquire(*lock, core, op.ip, lock_wait_[core], clock);
        }
        break;
      }
      case SimOp::kLockRelease: {
        SimLock* lock = reinterpret_cast<SimLock*>(op.addr);
        const uint64_t hold = clock - lock->acquired_at_;
        lock->free_at_ = clock;
        lock->holder_ = -1;
        if (m.lock_observer_ != nullptr) {
          m.lock_observer_->OnRelease(*lock, core, op.ip, hold, clock);
        }
        // Wake cores parked on this lock: they waited until this release,
        // then re-arbitrate by the usual min-clock rule.
        for (int c = 0; c < cores; ++c) {
          if (blocked_on_[c] == lock) {
            if (clock > m.clocks_[c]) {
              m.clocks_[c] = clock;
            }
            keys[c] = PackKey(m.clocks_[c], c);
          }
        }
        break;
      }
      case SimOp::kAllocEvent: {
        m.allocator_->CommitAllocEvent(static_cast<TypeId>(op.aux >> 32), op.addr,
                                       static_cast<uint32_t>(op.aux), core, clock);
        break;
      }
      case SimOp::kFreeEvent: {
        m.allocator_->CommitFreeEvent(static_cast<TypeId>(op.aux >> 32), op.addr,
                                      static_cast<uint32_t>(op.aux), core, clock, op.flag);
        break;
      }
      case SimOp::kProbeBegin: {
        probe_active_[core] = 1;
        probe_latency_[core] = 0;
        break;
      }
      case SimOp::kProbeEnd: {
        probe_active_[core] = 0;
        double divisor = 1.0;
        __builtin_memcpy(&divisor, &op.aux, sizeof(double));
        reinterpret_cast<RunningStat*>(op.addr)->Add(
            static_cast<double>(probe_latency_[core]) / divisor);
        break;
      }
    }

    if (++cursor[core] < rec.ops.size()) {
      keys[core] = PackKey(clock, core);
    } else {
      keys[core] = kDoneKey;
      --remaining;
    }
  }
}

}  // namespace dprof
