#include "src/machine/engine.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "src/machine/faults.h"
#include "src/sim/audit.h"
#include "src/util/check.h"

namespace dprof {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

constexpr int Log2Floor(int v) { return v <= 1 ? 0 : 1 + Log2Floor(v >> 1); }

// Merge keys pack (timestamp << kCoreBits) | core, so an unconditional min
// reduction picks the smallest timestamp with ties to the lowest core id —
// the same rule the legacy loop's MinClockCore uses; per-core queues are
// FIFO, so same-core ops keep program order. The reduction over a fixed
// kMaxCores-slot array compiles to branchless min chains, which beats both
// a binary heap and a branchy argmin scan at this fan-in. Clocks stay far
// below 2^59, so the shift never overflows.
constexpr int kCoreBits = Log2Floor(Engine::kMaxCores);
constexpr uint64_t kCoreMask = Engine::kMaxCores - 1;
static_assert(Engine::kMaxCores == 1 << kCoreBits,
              "core extraction below assumes kMaxCores is a power of two");

constexpr uint64_t kDoneKey = ~0ull;

uint64_t PackKey(uint64_t timestamp, int core) {
  return (timestamp << kCoreBits) | static_cast<uint64_t>(core);
}

// Gather window of the apply passes: merge drains fill up to this many
// ApplyLane records before handing the window to the hierarchy's
// prefetch-pipelined ApplyBatch. Large enough to amortize the pipeline
// lead-in (kPrefetchDepth) many times over, small enough to live on the
// stack next to its scatter indices.
constexpr uint32_t kApplyWindow = 64;

// Scatter sentinel of an injected duplicate apply: the replayed record's
// result is discarded, so the sentinel never collides with ring tags or
// lane indices.
constexpr uint32_t kDupScatter = ~0u;

// Balanced-tree reduction: log-depth dependency chain, so the four-wide min
// stages overlap instead of serializing like a linear fold.
template <int kWidth>
__attribute__((always_inline)) inline uint64_t MinKeyTree(const uint64_t* keys) {
  uint64_t m[kWidth / 2];
  for (int i = 0; i < kWidth / 2; ++i) {
    m[i] = std::min(keys[2 * i], keys[2 * i + 1]);
  }
  for (int width = kWidth / 2; width > 1; width /= 2) {
    for (int i = 0; i < width / 2; ++i) {
      m[i] = std::min(m[2 * i], m[2 * i + 1]);
    }
  }
  return m[0];
}

__attribute__((always_inline)) inline uint64_t MinKey(const uint64_t* keys, int cores) {
  if (cores <= 8) {
    return MinKeyTree<8>(keys);
  }
  if (cores <= 16) {
    return MinKeyTree<16>(keys);
  }
  if (cores <= 32) {
    return MinKeyTree<32>(keys);
  }
  return MinKeyTree<64>(keys);
}

// Assembles the observer/hook-facing event for the access op at one lane
// record; every emission site must agree on this unpacking.
inline AccessEvent MakeAccessEvent(int core, const CoreRecorder::Lane& lane,
                                   FunctionId ip, uint32_t latency, uint64_t now) {
  AccessEvent event;
  event.core = core;
  event.ip = ip;
  event.addr = lane.addr;
  event.size = lane.size_w & ~CoreRecorder::kWriteBit;
  event.is_write = (lane.size_w & CoreRecorder::kWriteBit) != 0;
  event.level = CoreRecorder::ResultLevel(lane.result);
  event.latency = latency;
  event.invalidation = CoreRecorder::ResultInvalidation(lane.result);
  event.now = now;
  return event;
}

}  // namespace

Engine::Engine(Machine* machine, const EngineConfig& config)
    : machine_(machine), config_(config) {
  DPROF_CHECK(config_.epoch_cycles > 0);
  DPROF_CHECK(config_.epoch_cycles_focus > 0);
  DPROF_CHECK(config_.apply_quantum_bits >= 0 && config_.apply_quantum_bits < 32);
  DPROF_CHECK(machine_->num_cores() <= kMaxCores);
  threads_ = config_.threads > 0 ? config_.threads
                                 : static_cast<int>(std::thread::hardware_concurrency());
  if (threads_ < 1) {
    threads_ = 1;
  }
  num_shards_ = machine_->hierarchy().num_shards();
  if (config_.sampling.enabled) {
    sampler_ = std::make_unique<SamplingController>(config_.sampling);
  }
  const int cores = machine_->num_cores();
  recorders_.resize(cores);
  blocked_on_.assign(cores, nullptr);
  block_start_.assign(cores, 0);
  probe_latency_.assign(cores, 0);
  probe_active_.assign(cores, 0);

  const int max_width = std::max(cores, static_cast<int>(num_shards_));
  const int spawn = std::min(threads_ - 1, max_width - 1);
  workers_.reserve(spawn);
  for (int i = 0; i < spawn; ++i) {
    workers_.emplace_back(&Engine::WorkerLoop, this);
  }
  // With workers, the apply phase runs one worker per hierarchy shard over
  // recorded shard lists; without them, a single fused merge over the
  // per-core streams applies the same per-shard suborders — identical
  // hierarchy results — without the shard indirection.
  shard_apply_ = !workers_.empty() && num_shards_ > 1;
  // Socket-major dispatch: each socket's L3 slice is a contiguous shard
  // range (the home bits are the shard index's high bits), so a socket task
  // walks one slice's arrays end to end.
  num_sockets_ = machine_->hierarchy().num_sockets();
  shards_per_socket_ = num_shards_ / static_cast<uint32_t>(num_sockets_);
  socket_apply_ = shard_apply_ && config_.socket_aware_apply && num_sockets_ > 1;
  if (socket_apply_) {
    socket_cursor_ = std::vector<std::atomic<uint32_t>>(num_sockets_);
  }
}

Engine::~Engine() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  if (deliver_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(deliver_mu_);
      deliver_shutdown_ = true;
    }
    deliver_cv_.notify_all();
    deliver_thread_.join();
  }
}

// Claims the next index of dispatch `generation`, or -1 when that dispatch
// has no indices left (or has been superseded — a straggler from a finished
// dispatch must never claim into the next one). Claims are whole-core /
// whole-shard units, so the mutex is uncontended in practice.
int Engine::ClaimIndex(uint64_t generation) {
  std::lock_guard<std::mutex> lk(mu_);
  if (generation_ != generation || next_index_ >= task_count_) {
    return -1;
  }
  return next_index_++;
}

void Engine::FinishIndex(uint64_t generation) {
  std::lock_guard<std::mutex> lk(mu_);
  if (generation_ == generation && ++finished_ == task_count_) {
    done_cv_.notify_all();
  }
}

void Engine::WorkerLoop() {
  uint64_t seen = 0;
  while (true) {
    const std::function<void(int)>* task = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) {
        return;
      }
      seen = generation_;
      task = task_;
    }
    for (int i = ClaimIndex(seen); i >= 0; i = ClaimIndex(seen)) {
      (*task)(i);
      FinishIndex(seen);
    }
  }
}

void Engine::ParallelFor(int count, const std::function<void(int)>& fn) {
  if (workers_.empty() || count <= 1) {
    for (int i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }
  uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    task_ = &fn;
    task_count_ = count;
    next_index_ = 0;
    finished_ = 0;
    generation = ++generation_;
  }
  work_cv_.notify_all();
  for (int i = ClaimIndex(generation); i >= 0; i = ClaimIndex(generation)) {
    fn(i);
    FinishIndex(generation);
  }
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return finished_ == count; });
  task_ = nullptr;
}

void Engine::RunFor(uint64_t cycles) {
  Machine& m = *machine_;
  if (m.allocator_ != nullptr) {
    m.allocator_->PrepareParallel(m.num_cores());
  }
  if (sampler_ != nullptr) {
    sampler_->SetFaultPlan(m.fault_plan());
  }
  const uint64_t deadline = m.MinClock() + cycles;
  const auto wall_start = Clock::now();
  uint64_t last_min = ~0ull;
  uint64_t stalled_epochs = 0;
  while (status_.ok()) {
    const uint64_t min_clock = m.MinClock();
    if (min_clock >= deadline) {
      break;
    }
    // Watchdog: healthy epochs always advance the committed min clock, so
    // repeated zero-progress epochs mean the run is wedged. The wall-clock
    // bound catches everything else (a livelocked phase still returns here
    // between epochs). Both convert a would-be hang into a diagnostic.
    if (min_clock == last_min) {
      if (config_.watchdog_stall_epochs > 0 &&
          ++stalled_epochs >= config_.watchdog_stall_epochs) {
        status_ = Status(StatusCode::kDeadlineExceeded, "watchdog",
                         "committed clock stuck at " + std::to_string(min_clock) +
                             " for " + std::to_string(stalled_epochs) +
                             " consecutive epochs");
        break;
      }
    } else {
      last_min = min_clock;
      stalled_epochs = 0;
    }
    if (config_.watchdog_wall_seconds > 0 &&
        Seconds(wall_start, Clock::now()) > config_.watchdog_wall_seconds) {
      status_ = Status(StatusCode::kDeadlineExceeded, "watchdog",
                       "epoch loop exceeded " +
                           std::to_string(config_.watchdog_wall_seconds) +
                           "s of wall time at committed clock " +
                           std::to_string(min_clock));
      break;
    }
    // Adaptive epoch length: tight while a mailbox-fed type is under study
    // (focus is pure session state, so the choice — and therefore the
    // committed stream — is identical for every host thread count).
    const uint64_t epoch =
        m.epoch_focus() ? config_.epoch_cycles_focus : config_.epoch_cycles;
    RunEpoch(min_clock, deadline, epoch);
    if (config_.audit_epochs > 0 && epochs_run_ % config_.audit_epochs == 0) {
      RunAudit();
    }
    if (m.allocator_ != nullptr) {
      status_.Update(m.allocator_->status());
    }
  }
  // Settle in-flight observer delivery before the caller can read observer
  // state: RunFor's boundary is the only synchronization point callers see.
  WaitDeliveryIdle();
}

void Engine::RunAudit() {
  Machine& m = *machine_;
  FaultPlan* const plan = m.fault_plan();
  if (plan != nullptr) {
    // Detection-coverage harness: plant one planned corruption right before
    // the walk. The planned kind may have no live target in a sparse lattice
    // (nothing exclusive yet, empty extension bank), so rotate through the
    // kinds until one lands.
    const int kind = plan->CorruptionAtAudit(audits_run_);
    if (kind >= 0) {
      for (int k = 0; k < CacheHierarchy::kNumLatticeFaultKinds; ++k) {
        if (m.hierarchy_.InjectLatticeFault(
                (kind + k) % CacheHierarchy::kNumLatticeFaultKinds)) {
          break;
        }
      }
    }
  }
  // Committed-clock monotonicity: the one engine-owned invariant, checked
  // against the previous audit's snapshot at the same cadence.
  const int cores = m.num_cores();
  if (audit_prev_clocks_.empty()) {
    audit_prev_clocks_.assign(m.clocks_.begin(), m.clocks_.end());
  } else {
    for (int c = 0; c < cores; ++c) {
      if (m.clocks_[c] < audit_prev_clocks_[c]) {
        status_.Update(Status(
            StatusCode::kDataLoss, "audit",
            "committed clock of core " + std::to_string(c) + " moved backwards (" +
                std::to_string(audit_prev_clocks_[c]) + " -> " +
                std::to_string(m.clocks_[c]) + ")"));
      }
      audit_prev_clocks_[c] = m.clocks_[c];
    }
  }
  const InvariantAuditor auditor(&m.hierarchy_);
  const AuditResult result = auditor.Audit();
  ++audits_run_;
  if (!result.ok()) {
    std::string message = "lattice audit #" + std::to_string(audits_run_ - 1) +
                          " found " + std::to_string(result.total_violations) +
                          " violation(s)";
    if (!result.violations.empty()) {
      message += ": " + result.violations.front();
    }
    status_.Update(Status(StatusCode::kDataLoss, "audit", message));
  }
}

void Engine::RunEpoch(uint64_t min_clock, uint64_t deadline, uint64_t epoch_cycles) {
  Machine& m = *machine_;
  const int cores = m.num_cores();
  // The sampling schedule is a function of the committed min-clock, and the
  // elision gate reads only committed machine state, so both choices — like
  // everything downstream of them — are identical for every thread count.
  // Observers force detailed epochs: fast-forward has no events to deliver,
  // so a sampled run with observers attached would silently starve them.
  const bool want_detailed = sampler_ == nullptr || sampler_->BeginEpoch(min_clock);
  ff_epoch_ = !want_detailed && m.observers_.empty();
  // Fast-forward stretches coarsen the epoch: they skip the apply phase and
  // deliver no events, so the usual epoch granularity only buys overhead.
  // The stretch ends at the next detailed window (FfRunway) and at the
  // config cap; both are functions of the committed clock, so the epoch
  // schedule stays identical for every thread count.
  uint64_t epoch_end = std::min(deadline, min_clock + epoch_cycles);
  if (ff_epoch_) {
    const uint64_t stretch =
        std::max(epoch_cycles, std::min(sampler_->FfRunway(min_clock),
                                        sampler_->config().ff_epoch_cycles));
    epoch_end = std::min(deadline, min_clock + stretch);
  }
  FaultPlan* const faults = m.fault_plan();
  if (faults != nullptr && faults->StallsEpoch(epochs_run_)) {
    // Injected scheduler wedge: the epoch ends where it starts, so no core
    // simulates and the committed min clock cannot advance. The watchdog in
    // RunFor is what turns the resulting no-progress streak into a status.
    epoch_end = min_clock;
  }
  const ElideMode elide_mode =
      ff_epoch_ ? ElideMode::kOff : ElisionMode();
  elide_epoch_ = elide_mode == ElideMode::kFull;
  // Fast-forward epochs snapshot the union of armed filter windows so
  // watchpoint-covered addresses keep recording dispatchable ops. Windows
  // armed mid-epoch (by an alloc-event handler) see their accesses from the
  // next epoch on — a documented approximation of sampled mode.
  Addr ff_lo = 0;
  Addr ff_hi = 0;
  if (ff_epoch_) {
    for (PmuHook* hook : m.pmu_hooks_) {
      Addr lo = 0;
      Addr hi = 0;
      if (hook->AccessFilter(&lo, &hi)) {
        if (ff_lo == ff_hi) {
          ff_lo = lo;
          ff_hi = hi;
        } else {
          ff_lo = std::min(ff_lo, lo);
          ff_hi = std::max(ff_hi, hi);
        }
      }
    }
  }
  const size_t record_shards = shard_apply_ && !ff_epoch_ ? num_shards_ : 0;
  for (int c = 0; c < cores; ++c) {
    CoreRecorder& rec = recorders_[c];
    // Calibrate the core's lower-bound cost model from the epoch just
    // committed: measured access-attributable clock advance (latency + PMU
    // interrupts + lock waits) over the raw estimate. Smoothed 3:1 to damp
    // oscillation; pure function of committed state, so identical for any
    // thread count. Fast-forwarded epochs leave raw_access_cost at zero, so
    // their estimated advances never feed back into the scale.
    const uint64_t advance = m.clocks_[c] - rec.epoch_start_clock;
    if (rec.raw_access_cost > 0 && advance > rec.exact_cost) {
      uint64_t scale16 = ((advance - rec.exact_cost) * 16) / rec.raw_access_cost;
      scale16 = std::min<uint64_t>(std::max<uint64_t>(scale16, 16), 4096);
      rec.cost_scale16 =
          static_cast<uint32_t>((3ull * rec.cost_scale16 + scale16) / 4);
    }
    rec.Reset(m.clocks_[c], record_shards);
    if (ff_epoch_) {
      rec.ff = true;
      rec.ff_lo = ff_lo;
      rec.ff_hi = ff_hi;
    } else if (elide_mode == ElideMode::kFull) {
      rec.elide = true;
      rec.elide_budget = ~0ull;
    } else if (elide_mode == ElideMode::kPrefix) {
      uint64_t budget = PmuHook::kQuietUnbounded;
      for (PmuHook* hook : m.pmu_hooks_) {
        budget = std::min(budget, hook->QuietOps(c));
      }
      if (budget > 0) {
        rec.elide = true;
        rec.elide_budget = budget;
      }
    }
    // Injected per-core clock skew: an idle burst recorded at epoch start,
    // keyed on (core, epoch ordinal) only, so skewed runs commit the same
    // stream at every thread count. Recovery is inherent — the commit pass
    // reconstructs exact clocks from the recorded ops like any idle time.
    if (faults != nullptr && epoch_end > min_clock) {
      const uint32_t skew = faults->ClockSkew(c, epochs_run_);
      if (skew != 0) {
        rec.PushCycles(SimOp::kIdle, rec.lb, skew, kInvalidFunction);
        rec.ChargeExact(skew);
      }
    }
  }
  const auto t0 = Clock::now();
  ParallelFor(cores, [&](int core) { SimulateCore(core, epoch_end); });
  const auto t1 = Clock::now();
  // Fast-forward epochs never touch the hierarchy: no apply pass at all.
  if (!ff_epoch_) {
    if (socket_apply_) {
      for (auto& cursor : socket_cursor_) {
        cursor.store(0, std::memory_order_relaxed);
      }
      ParallelFor(num_sockets_, [&](int socket) { ApplySocket(socket); });
    } else if (shard_apply_) {
      ParallelFor(static_cast<int>(num_shards_),
                  [&](int shard) { ApplyShard(static_cast<uint32_t>(shard)); });
    } else {
      ApplyGlobal();
    }
  }
  const auto t2 = Clock::now();
  CommitEpoch();
  if (m.allocator_ != nullptr) {
    m.allocator_->FlushEpoch();
  }
  for (EpochHook* hook : m.epoch_hooks_) {
    hook->OnEpochCommit(m.MaxClock());
  }
  // Hand off after the epoch hooks so the delivery thread only ever
  // overlaps the next epoch's simulate phase — allocator flushes and epoch
  // hooks run with observers settled.
  HandOffOrDeliver();
  const auto t3 = Clock::now();
  phase_stats_.simulate_seconds += Seconds(t0, t1);
  phase_stats_.apply_seconds += Seconds(t1, t2);
  phase_stats_.commit_seconds += Seconds(t2, t3);
  ++phase_stats_.epochs;
  if (elide_epoch_) {
    ++phase_stats_.elided_epochs;
  }
  if (ff_epoch_) {
    ++phase_stats_.ff_epochs;
  }
  ++epochs_run_;
  if (sampler_ != nullptr) {
    uint64_t accesses = 0;
    for (int c = 0; c < cores; ++c) {
      accesses += recorders_[c].accesses;
    }
    sampler_->EndEpoch(!ff_epoch_, m.MinClock() - min_clock, accesses);
  }
}

Engine::ElideMode Engine::ElisionMode() const {
  const Machine& m = *machine_;
  if (!config_.allow_record_elision) {
    return ElideMode::kOff;
  }
  if (!m.observers_.empty() || m.elision_inhibitors() > 0) {
    return ElideMode::kOff;
  }
  bool bounded = false;
  for (PmuHook* hook : m.pmu_hooks_) {
    Addr lo = 0;
    Addr hi = 0;
    if (hook->AccessFilter(&lo, &hi)) {
      return ElideMode::kOff;  // an armed watchpoint window wants per-access checks
    }
    for (int c = 0; c < m.num_cores(); ++c) {
      if (hook->QuietOps(c) != PmuHook::kQuietUnbounded) {
        bounded = true;  // a countdown could expire inside the epoch
      }
    }
  }
  // Bounded countdowns still guarantee a quiet prefix per core: stream that
  // prefix through the ring, record from the first access a hook could act
  // on.
  return bounded ? ElideMode::kPrefix : ElideMode::kFull;
}

void Engine::SimulateCore(int core, uint64_t epoch_end) {
  Machine& m = *machine_;
  CoreRecorder& rec = recorders_[core];
  CoreDriver* driver = m.drivers_[core];
  CoreContext ctx(&m, core, &rec);
  while (rec.lb < epoch_end) {
    const bool did_work = driver != nullptr && driver->Step(ctx);
    if (!did_work) {
      if (!rec.CoalesceCycles(SimOp::kIdle, kInvalidFunction, m.config_.idle_cycles)) {
        rec.PushCycles(SimOp::kIdle, rec.lb, m.config_.idle_cycles, kInvalidFunction);
      }
      rec.ChargeExact(m.config_.idle_cycles);
    }
  }
}

// All apply passes merge in (t >> apply_quantum_bits, core, program order):
// see EngineConfig::apply_quantum_bits. The quantized key also makes
// same-core runs long (a core's whole quantum drains before the merge
// switches), so the min-tree recomputes once per run, not per op — and each
// drain is a single-core span the prefetch-pipelined ApplyBatch can walk.
// Gathering a drain into a window before applying it changes nothing about
// the access order; it only lets the hierarchy see the addresses of ops
// i+1..i+k while it resolves op i.
void Engine::ApplyShard(uint32_t shard) {
  Machine& m = *machine_;
  const int cores = m.num_cores();
  const int qbits = config_.apply_quantum_bits;
  // Lane faults (dropped / duplicated records) are keyed on the recorded
  // (core, timestamp, address) alone, and a drop recovers to the optimistic
  // lower-bound result, so faulted applies stay bit-identical to the fused
  // single-thread merge. The window reserves one slot so a duplicate always
  // lands adjacent to its original (batch boundaries don't change results).
  FaultPlan* const faults = m.fault_plan();
  const bool lane_faults =
      faults != nullptr && (faults->enabled(FaultSeam::kLaneDrop) ||
                            faults->enabled(FaultSeam::kLaneDup));
  const uint32_t drop_result =
      PackAccessResult(m.config_.hierarchy.latency.l1, ServedBy::kL1, false);
  const uint32_t window_cap = lane_faults ? kApplyWindow - 1 : kApplyWindow;
  uint64_t keys[kMaxCores];
  size_t cursor[kMaxCores] = {0};
  ApplyLane window[kApplyWindow];
  uint32_t scatter[kApplyWindow];
  int remaining = 0;
  for (int c = 0; c < kMaxCores; ++c) {
    keys[c] = kDoneKey;
  }
  // Shard-list entries are ring indices (kRingTag set: ring-streamed
  // accesses of elide epochs and prefixes) or lane indices (recorded
  // accesses); the tag picks the gather source and the scatter target, so
  // one merge handles pure and mixed epochs alike.
  auto entry_t = [](const CoreRecorder& rec, uint32_t e) {
    return (e & CoreRecorder::kRingTag) != 0
               ? rec.epoch_start_clock + rec.ring[e & ~CoreRecorder::kRingTag].t_delta
               : rec.lane[e].t;
  };
  for (int c = 0; c < cores; ++c) {
    const CoreRecorder& rec = recorders_[c];
    const auto& list = rec.shard_ops[shard];
    if (!list.empty()) {
      keys[c] = PackKey(entry_t(rec, list[0]) >> qbits, c);
      ++remaining;
    }
  }
  while (remaining > 0) {
    const int core = static_cast<int>(MinKey(keys, cores) & kCoreMask);
    CoreRecorder& rec = recorders_[core];
    const auto& list = rec.shard_ops[shard];
    const uint64_t base = rec.epoch_start_clock;
    keys[core] = kDoneKey;
    const uint64_t limit = MinKey(keys, cores);
    uint64_t key;
    do {
      // Gather the drain (ring entries or lane records of this core, in
      // shard-list order) into the window, then batch-apply and scatter the
      // packed results back.
      uint32_t nw = 0;
      do {
        const uint32_t e = list[cursor[core]];
        if ((e & CoreRecorder::kRingTag) != 0) {
          // Ring-streamed accesses are never faulted: elision requires the
          // epoch to be consumer-free, so a perturbed ring could not be
          // observed recovering anyway.
          window[nw] = rec.ring[e & ~CoreRecorder::kRingTag];
          scatter[nw] = e;
          ++nw;
        } else {
          const CoreRecorder::Lane& lane = rec.lane[e];
          DPROF_CHECK(lane.t - base <= 0xffff'ffffull);  // silent wrap would corrupt merge order
          const LaneFault fault = lane_faults
                                      ? faults->LaneFaultFor(core, lane.t, lane.addr)
                                      : LaneFault::kNone;
          if (fault == LaneFault::kDrop) {
            // The record never reaches the hierarchy; recover by committing
            // the optimistic lower-bound result in its place.
            rec.lane[e].result = drop_result;
          } else {
            window[nw] =
                ApplyLane{lane.addr, static_cast<uint32_t>(lane.t - base), lane.size_w};
            scatter[nw] = e;
            ++nw;
            if (fault == LaneFault::kDup) {
              window[nw] = window[nw - 1];
              scatter[nw] = kDupScatter;
              ++nw;
            }
          }
        }
        key = ++cursor[core] < list.size()
                  ? PackKey(entry_t(rec, list[cursor[core]]) >> qbits, core)
                  : kDoneKey;
      } while (key < limit && nw < window_cap);
      m.hierarchy_.ApplyBatch(core, base, window, nw);
      for (uint32_t j = 0; j < nw; ++j) {
        if (scatter[j] == kDupScatter) {
          continue;
        }
        if ((scatter[j] & CoreRecorder::kRingTag) != 0) {
          rec.ring[scatter[j] & ~CoreRecorder::kRingTag].size_w = window[j].size_w;
        } else {
          rec.lane[scatter[j]].result = window[j].size_w;
        }
      }
    } while (key < limit);
    keys[core] = key;
    if (key == kDoneKey) {
      --remaining;
    }
  }
}

// Socket-aware apply task. The shard key is the home socket: shards of one
// socket form a contiguous range [socket * shards_per_socket_, ...), and
// this task drains that whole range — one worker owns whole L3 slices, so
// its tag walks stay inside one slice's (contiguous) tag/meta arrays. Once
// its own slice is dry, a worker steals remaining shards from the other
// sockets' ranges through their claim cursors. Every shard is still applied
// exactly once by exactly one worker, and shard state is disjoint, so the
// committed results cannot depend on who applied what — stealing only
// rebalances host wall-clock when the epoch's accesses skew toward one
// socket's slices.
void Engine::ApplySocket(int socket) {
  const uint32_t base = static_cast<uint32_t>(socket) * shards_per_socket_;
  std::atomic<uint32_t>& own = socket_cursor_[socket];
  for (uint32_t i = own.fetch_add(1, std::memory_order_relaxed);
       i < shards_per_socket_; i = own.fetch_add(1, std::memory_order_relaxed)) {
    ApplyShard(base + i);
  }
  if (!config_.apply_work_stealing) {
    return;
  }
  for (int v = 1; v < num_sockets_; ++v) {
    const int victim = (socket + v) % num_sockets_;
    std::atomic<uint32_t>& cursor = socket_cursor_[victim];
    const uint32_t victim_base = static_cast<uint32_t>(victim) * shards_per_socket_;
    for (uint32_t i = cursor.fetch_add(1, std::memory_order_relaxed);
         i < shards_per_socket_; i = cursor.fetch_add(1, std::memory_order_relaxed)) {
      ApplyShard(victim_base + i);
    }
  }
}

// Single-thread apply: one fused merge over all per-core streams. Hierarchy
// state is disjoint across shards, and this global order restricts to
// exactly the per-shard suborder on every shard, so the results are
// bit-identical to the shard-parallel pass — without recording shard lists
// or making one merge pass per shard over near-empty lists.
//
// Each core's access stream is its elision ring (every entry streamed while
// the elide budget held — the whole epoch when fully elided) followed by its
// recorded lane accesses; the ring is a strict time-prefix of the lanes, so
// a per-core (ring cursor, lane cursor) pair walks the concatenation in
// order. Ring drains hand contiguous slices to ApplyBatch in place (no
// gather, no scatter — the packed results land directly in the ring); lane
// drains gather into a window and scatter results back.
void Engine::ApplyGlobal() {
  Machine& m = *machine_;
  const int cores = m.num_cores();
  const int qbits = config_.apply_quantum_bits;
  // Same lane-fault keying as ApplyShard: decisions depend only on the
  // recorded op, so both apply strategies perturb identically.
  FaultPlan* const faults = m.fault_plan();
  const bool lane_faults =
      faults != nullptr && (faults->enabled(FaultSeam::kLaneDrop) ||
                            faults->enabled(FaultSeam::kLaneDup));
  const uint32_t drop_result =
      PackAccessResult(m.config_.hierarchy.latency.l1, ServedBy::kL1, false);
  const uint32_t window_cap = lane_faults ? kApplyWindow - 1 : kApplyWindow;
  uint64_t keys[kMaxCores];
  size_t ring_cursor[kMaxCores] = {0};
  uint32_t cursor[kMaxCores] = {0};
  int remaining = 0;
  for (int c = 0; c < kMaxCores; ++c) {
    keys[c] = kDoneKey;
  }
  // Advances to the next access op at or after `from`; other op kinds do
  // not touch the hierarchy.
  auto next_access = [](const CoreRecorder& rec, uint32_t from) {
    const uint32_t count = static_cast<uint32_t>(rec.size());
    while (from < count &&
           (rec.meta[from].kind & CoreRecorder::kKindMask) != SimOp::kAccess) {
      ++from;
    }
    return from;
  };
  auto key_of = [&](const CoreRecorder& rec, int c) {
    if (ring_cursor[c] < rec.ring_n) {
      return PackKey(
          (rec.epoch_start_clock + rec.ring[ring_cursor[c]].t_delta) >> qbits, c);
    }
    if (cursor[c] < rec.size()) {
      return PackKey(rec.lane[cursor[c]].t >> qbits, c);
    }
    return kDoneKey;
  };
  for (int c = 0; c < cores; ++c) {
    const CoreRecorder& rec = recorders_[c];
    cursor[c] = next_access(rec, 0);
    keys[c] = key_of(rec, c);
    if (keys[c] != kDoneKey) {
      ++remaining;
    }
  }
  ApplyLane window[kApplyWindow];
  uint32_t scatter[kApplyWindow];
  while (remaining > 0) {
    const int core = static_cast<int>(MinKey(keys, cores) & kCoreMask);
    CoreRecorder& rec = recorders_[core];
    const uint32_t count = static_cast<uint32_t>(rec.size());
    const uint64_t base = rec.epoch_start_clock;
    keys[core] = kDoneKey;
    const uint64_t limit = MinKey(keys, cores);
    uint64_t key;
    do {
      if (ring_cursor[core] < rec.ring_n) {
        // Ring times are nondecreasing, so the drain is the contiguous
        // slice up to the first entry at or past the limit quantum.
        const size_t begin = ring_cursor[core];
        size_t end = begin + 1;
        while (end < rec.ring_n &&
               PackKey((base + rec.ring[end].t_delta) >> qbits, core) < limit) {
          ++end;
        }
        m.hierarchy_.ApplyBatch(core, base, rec.ring + begin, end - begin);
        ring_cursor[core] = end;
        key = key_of(rec, core);
        continue;
      }
      uint32_t nw = 0;
      do {
        const uint32_t li = cursor[core];
        const CoreRecorder::Lane& lane = rec.lane[li];
        DPROF_CHECK(lane.t - base <= 0xffff'ffffull);  // silent wrap would corrupt merge order
        const LaneFault fault = lane_faults
                                    ? faults->LaneFaultFor(core, lane.t, lane.addr)
                                    : LaneFault::kNone;
        if (fault == LaneFault::kDrop) {
          rec.lane[li].result = drop_result;
        } else {
          window[nw] =
              ApplyLane{lane.addr, static_cast<uint32_t>(lane.t - base), lane.size_w};
          scatter[nw] = li;
          ++nw;
          if (fault == LaneFault::kDup) {
            window[nw] = window[nw - 1];
            scatter[nw] = kDupScatter;
            ++nw;
          }
        }
        cursor[core] = next_access(rec, li + 1);
        key = cursor[core] < count ? PackKey(rec.lane[cursor[core]].t >> qbits, core)
                                   : kDoneKey;
      } while (key < limit && nw < window_cap);
      m.hierarchy_.ApplyBatch(core, base, window, nw);
      for (uint32_t j = 0; j < nw; ++j) {
        if (scatter[j] != kDupScatter) {
          rec.lane[scatter[j]].result = window[j].size_w;
        }
      }
    } while (key < limit);
    keys[core] = key;
    if (key == kDoneKey) {
      --remaining;
    }
  }
}

void Engine::ResyncSink() {
  Machine& m = *machine_;
  sink_.counting.clear();
  sink_.filtered.clear();
  sink_.want_events = !m.observers_.empty();
  for (PmuHook* hook : m.pmu_hooks_) {
    Addr lo = 0;
    Addr hi = 0;
    if (hook->AccessFilter(&lo, &hi)) {
      sink_.filtered.push_back(FusedSink::Filtered{hook, lo, hi});
    } else {
      sink_.counting.push_back(hook);
    }
  }
}

void Engine::RefreshQuiet(int core) {
  uint64_t quiet = PmuHook::kQuietUnbounded;
  for (PmuHook* hook : sink_.counting) {
    quiet = std::min(quiet, hook->QuietOps(core));
  }
  gate_quiet_[core] = quiet;
  gate_unbounded_[core] = quiet == PmuHook::kQuietUnbounded ? 1 : 0;
}

void Engine::FlushQuiet(int core) {
  if (gate_skipped_[core] == 0) {
    return;
  }
  for (PmuHook* hook : sink_.counting) {
    hook->OnQuietAccessBatch(core, gate_skipped_[core]);
  }
  gate_skipped_[core] = 0;
}

// Commit order is the legacy scheduling rule: always the core with the
// smallest *committed* clock (ties to the lowest id). Ordering by recorded
// lb timestamps instead would let a core whose true clock raced ahead (PMU
// interrupts, miss latencies) release locks far in the future and drag
// every later acquirer's clock up with it — phantom waits that collapse
// throughput.
//
// The schedule is segmented: the only ops whose commit another core can
// observe are sync ops (locks, allocator events) and PMU dispatches (IBS
// samples, watchpoint hits) — everything else advances purely core-local
// state. Those ops arbitrate one at a time under the min-clock rule, and
// since each commits exactly when its core's pre-op clock is the global
// minimum, their cross-core order — lock arbitration, allocation-event
// order, sample and hit delivery into shared handlers — is identical to
// the fully sequential per-op merge. The segments between them commit as
// whole per-core batches: clock trajectories are unaffected, and only the
// interleaving of *observer* spans across cores differs (deterministically)
// from the per-op merge.
void Engine::CommitEpoch() {
  Machine& m = *machine_;
  const int cores = m.num_cores();
  ResyncSink();
  woke_parked_ = false;
  int remaining = 0;
  for (int c = 0; c < kMaxCores; ++c) {
    commit_keys_[c] = kDoneKey;
  }
  for (int c = 0; c < cores; ++c) {
    commit_cursor_[c] = 0;
    commit_sync_i_[c] = 0;
    gate_skipped_[c] = 0;
    RefreshQuiet(c);
    if (!recorders_[c].empty()) {
      commit_keys_[c] = PackKey(m.clocks_[c], c);
      ++remaining;
    }
  }
  while (remaining > 0) {
    const uint64_t min_key = MinKey(commit_keys_, cores);
    // All live queues parked on locks with no pending release would mean a
    // critical section spanning a driver step, which drivers must not do.
    DPROF_CHECK(min_key != kDoneKey);
    const int core = static_cast<int>(min_key & kCoreMask);
    CoreRecorder& rec = recorders_[core];
    const uint32_t count = static_cast<uint32_t>(rec.size());
    uint32_t cursor = commit_cursor_[core];
    // Run-until-limit: keys only grow as cores commit (clocks are
    // nondecreasing), so this core keeps the floor — and commits turn after
    // turn without touching the merge tree — until its key reaches the
    // smallest other key. The one event that can lower another key, a lock
    // release waking parked cores, forces a full re-arbitration.
    commit_keys_[core] = kDoneKey;
    const uint64_t limit = MinKey(commit_keys_, cores);
    uint64_t key = kDoneKey;
    while (true) {
      const uint32_t next_sync = commit_sync_i_[core] < rec.sync_points.size()
                                     ? rec.sync_points[commit_sync_i_[core]]
                                     : count;
      bool woke = false;
      if (cursor == next_sync) {
        const uint8_t sync_kind = rec.meta[cursor].kind & CoreRecorder::kKindMask;
        if (!CommitSyncOp(core, cursor)) {
          key = kDoneKey;  // parked; the release re-arms the key
          break;
        }
        ++cursor;
        ++commit_sync_i_[core];
        // Allocation events drive watchpoint arming through their
        // observers, changing the filter windows; lock ops cannot rearm
        // anything. The counting hooks' quiet budgets stay valid:
        // (dis)arming only moves a hook between the filtered and
        // unbounded-quiet classes.
        if (sync_kind >= SimOp::kAllocEvent) {
          ResyncSink();
        } else {
          woke = sync_kind == SimOp::kLockRelease && woke_parked_;
          woke_parked_ = false;
        }
      } else {
        // Commits the segment up to the next sync op, stopping at (and
        // re-arbitrating before) any access a PMU hook can act on — unless
        // that access is the op just arbitrated, which dispatches now.
        cursor = ff_epoch_ ? CommitRunFf(core, cursor, next_sync)
                           : CommitRun(core, cursor, next_sync);
      }
      if (cursor >= count) {
        key = kDoneKey;
        --remaining;
        break;
      }
      key = PackKey(m.clocks_[core], core);
      if (woke || key >= limit) {
        break;
      }
    }
    commit_cursor_[core] = cursor;
    commit_keys_[core] = key;
  }
  for (int c = 0; c < cores; ++c) {
    FlushQuiet(c);
  }
}

uint32_t Engine::CommitRun(int core, uint32_t begin, uint32_t end) {
  Machine& m = *machine_;
  CoreRecorder& rec = recorders_[core];
  // Hot state lives in locals: routing every op's clock/gate/probe update
  // through the member arrays would make each store a potential alias of
  // the lane/meta columns and force reloads. The committed clock syncs
  // with m.clocks_ around DispatchAccess (whose hook handlers may read
  // machine clocks) and at return.
  const CoreRecorder::Lane* const lanes = rec.lane;
  const CoreRecorder::Meta* const metas = rec.meta;
  uint64_t clock = m.clocks_[core];
  uint64_t probe_lat = probe_latency_[core];
  uint8_t probing = probe_active_[core];
  const uint64_t base_cost = m.config_.base_op_cost;
  const bool want_events = sink_.want_events;
  uint32_t i = begin;
  // Passthrough: no hook can act on any access in this segment (counting
  // hooks unbounded-quiet, no armed filters) and no observer wants events —
  // the loop reduces to clock reconstruction. Hooks with an unbounded
  // guarantee need no skip accounting, so the gate is bypassed entirely.
  if (gate_unbounded_[core] != 0 && sink_.filtered.empty() && !want_events) {
    for (; i < end; ++i) {
      const uint8_t k = metas[i].kind & CoreRecorder::kKindMask;
      if (k == SimOp::kAccess) {
        const uint32_t latency = CoreRecorder::ResultLatency(lanes[i].result);
        clock += base_cost + latency;
        if (probing != 0) {
          probe_lat += latency;
        }
      } else if (k == SimOp::kElidedRun) {
        // A run of elided accesses: the apply pass left each packed result
        // in the ring slice; the run's clock effect is one sum.
        const ApplyLane* run = rec.ring + lanes[i].addr;
        const uint32_t count = lanes[i].size_w;
        uint64_t lat = 0;
        for (uint32_t j = 0; j < count; ++j) {
          lat += PackedAccessLatency(run[j].size_w);
        }
        clock += count * base_cost + lat;
        if (probing != 0) {
          probe_lat += lat;
        }
      } else if (k == SimOp::kCompute || k == SimOp::kIdle) {
        clock += lanes[i].payload();
      } else if (k == SimOp::kProbeBegin) {
        probing = 1;
        probe_lat = 0;
      } else {
        DPROF_DCHECK(k == SimOp::kProbeEnd);
        probing = 0;
        double divisor = 1.0;
        const uint64_t bits = lanes[i].payload();
        __builtin_memcpy(&divisor, &bits, sizeof(double));
        reinterpret_cast<RunningStat*>(lanes[i].addr)
            ->Add(static_cast<double>(probe_lat) / divisor);
      }
    }
    m.clocks_[core] = clock;
    probe_latency_[core] = probe_lat;
    probe_active_[core] = probing;
    return end;
  }
  uint64_t quiet = gate_quiet_[core];
  uint64_t skipped = gate_skipped_[core];
  for (; i < end; ++i) {
    const uint8_t k = metas[i].kind & CoreRecorder::kKindMask;
    if (k == SimOp::kAccess) {
      const CoreRecorder::Lane& lane = lanes[i];
      // Gate: can any PMU hook act on this access? Counting hooks are
      // covered by the quiet budget; filtered hooks by the window check.
      bool needs_hook = quiet == 0;
      if (!needs_hook && !sink_.filtered.empty()) {
        const uint32_t size = lane.size_w & ~CoreRecorder::kWriteBit;
        for (const FusedSink::Filtered& f : sink_.filtered) {
          if (lane.addr < f.hi && f.lo < lane.addr + size) {
            needs_hook = true;
            break;
          }
        }
      }
      if (needs_hook) {
        if (i != begin) {
          break;  // an arbitration point: hand back to the scheduler
        }
        // Sync the member state the dispatch path (hooks, gate flush,
        // resync) reads and writes, then reload it.
        m.clocks_[core] = clock;
        probe_latency_[core] = probe_lat;
        probe_active_[core] = probing;
        gate_quiet_[core] = quiet;
        gate_skipped_[core] = skipped;
        DispatchAccess(core, i, m.clocks_[core]);
        clock = m.clocks_[core];
        probe_lat = probe_latency_[core];
        probing = probe_active_[core];
        quiet = gate_quiet_[core];
        skipped = gate_skipped_[core];
        continue;
      }
      --quiet;
      ++skipped;
      const uint32_t latency = CoreRecorder::ResultLatency(lane.result);
      clock += base_cost + latency;
      if (probing != 0) {
        probe_lat += latency;
      }
      if (want_events) {
        EmitAccess(MakeAccessEvent(core, lane, metas[i].ip, latency, clock));
      }
    } else if (k == SimOp::kElidedRun) {
      // A run streamed under the quiet budget: no hook could act on any of
      // these accesses (the budget is the epoch-start countdown guarantee,
      // and elided runs precede every recorded access in program order), so
      // the run only needs the clock/probe sums plus bulk quiet accounting
      // — the countdowns must still retire these accesses so the first
      // recorded access past the prefix samples exactly as without elision.
      const ApplyLane* run = rec.ring + lanes[i].addr;
      const uint32_t count = lanes[i].size_w;
      DPROF_DCHECK(quiet >= count);
      quiet -= count;
      skipped += count;
      uint64_t lat = 0;
      for (uint32_t j = 0; j < count; ++j) {
        lat += PackedAccessLatency(run[j].size_w);
      }
      clock += count * base_cost + lat;
      if (probing != 0) {
        probe_lat += lat;
      }
    } else if (k == SimOp::kCompute) {
      const uint64_t cycles = lanes[i].payload();
      clock += cycles;
      if (want_events) {
        EmitCompute(ComputeEvent{core, metas[i].ip, cycles, clock});
      }
    } else if (k == SimOp::kIdle) {
      clock += lanes[i].payload();
    } else if (k == SimOp::kProbeBegin) {
      probing = 1;
      probe_lat = 0;
    } else {
      DPROF_DCHECK(k == SimOp::kProbeEnd);
      probing = 0;
      double divisor = 1.0;
      const uint64_t bits = lanes[i].payload();
      __builtin_memcpy(&divisor, &bits, sizeof(double));
      reinterpret_cast<RunningStat*>(lanes[i].addr)
          ->Add(static_cast<double>(probe_lat) / divisor);
    }
  }
  m.clocks_[core] = clock;
  probe_latency_[core] = probe_lat;
  probe_active_[core] = probing;
  gate_quiet_[core] = quiet;
  gate_skipped_[core] = skipped;
  return i;
}

// Fast-forward commit: the epoch ran functional-only, so there are no apply
// results to reconstruct from — kFfRun markers carry the accumulated
// estimated charge, and the only kAccess ops are filter-window overlaps
// recorded with a prefilled estimate. Counting hooks are frozen (no quiet
// accounting, no OnAccess): IBS samples come exclusively from detailed
// windows so the sample population matches the measured denominator. There
// are never observers in a fast-forwarded epoch, so no events are emitted.
uint32_t Engine::CommitRunFf(int core, uint32_t begin, uint32_t end) {
  Machine& m = *machine_;
  CoreRecorder& rec = recorders_[core];
  const CoreRecorder::Lane* const lanes = rec.lane;
  const CoreRecorder::Meta* const metas = rec.meta;
  uint64_t clock = m.clocks_[core];
  uint64_t probe_lat = probe_latency_[core];
  uint8_t probing = probe_active_[core];
  const uint64_t base_cost = m.config_.base_op_cost;
  uint32_t i = begin;
  for (; i < end; ++i) {
    const uint8_t k = metas[i].kind & CoreRecorder::kKindMask;
    if (k == SimOp::kFfRun) {
      const uint64_t count = lanes[i].addr;
      const uint64_t est = lanes[i].payload();
      clock += est;
      if (probing != 0) {
        // The estimate is base cost + estimated latency per access; probes
        // integrate the latency share.
        probe_lat += est - count * base_cost;
      }
    } else if (k == SimOp::kAccess) {
      const CoreRecorder::Lane& lane = lanes[i];
      const uint32_t size = lane.size_w & ~CoreRecorder::kWriteBit;
      bool needs_hook = false;
      for (const FusedSink::Filtered& f : sink_.filtered) {
        if (lane.addr < f.hi && f.lo < lane.addr + size) {
          needs_hook = true;
          break;
        }
      }
      if (needs_hook && i != begin) {
        break;  // an arbitration point: hand back to the scheduler
      }
      const uint32_t latency = CoreRecorder::ResultLatency(lane.result);
      clock += base_cost + latency;
      if (probing != 0) {
        probe_lat += latency;
      }
      if (needs_hook) {
        m.clocks_[core] = clock;
        const AccessEvent event =
            MakeAccessEvent(core, lane, metas[i].ip, latency, clock);
        // Filtered hooks only — the watching debug registers see the access
        // at its estimated latency; counting hooks stay untouched.
        for (const FusedSink::Filtered& f : sink_.filtered) {
          if (lane.addr < f.hi && f.lo < lane.addr + size) {
            const uint64_t extra = f.hook->OnAccess(event);
            if (extra != 0) {
              m.clocks_[core] += extra;
            }
          }
        }
        // A handler may have (dis)armed a window.
        ResyncSink();
        RefreshQuiet(core);
        clock = m.clocks_[core];
      }
    } else if (k == SimOp::kCompute || k == SimOp::kIdle) {
      clock += lanes[i].payload();
    } else if (k == SimOp::kProbeBegin) {
      probing = 1;
      probe_lat = 0;
    } else {
      DPROF_DCHECK(k == SimOp::kProbeEnd);
      probing = 0;
      double divisor = 1.0;
      const uint64_t bits = lanes[i].payload();
      __builtin_memcpy(&divisor, &bits, sizeof(double));
      reinterpret_cast<RunningStat*>(lanes[i].addr)
          ->Add(static_cast<double>(probe_lat) / divisor);
    }
  }
  m.clocks_[core] = clock;
  probe_latency_[core] = probe_lat;
  probe_active_[core] = probing;
  return i;
}

void Engine::DispatchAccess(int core, uint32_t index, uint64_t& clock) {
  Machine& m = *machine_;
  CoreRecorder& rec = recorders_[core];
  const CoreRecorder::Lane& lane = rec.lane[index];
  // Counting hooks must be current before their per-op consultation.
  FlushQuiet(core);
  const uint32_t latency = CoreRecorder::ResultLatency(lane.result);
  clock += m.config_.base_op_cost + latency;
  if (probe_active_[core] != 0) {
    probe_latency_[core] += latency;
  }
  const AccessEvent event =
      MakeAccessEvent(core, lane, rec.meta[index].ip, latency, clock);
  if (sink_.want_events) {
    EmitAccess(event);
  }
  for (PmuHook* hook : m.pmu_hooks_) {
    const uint64_t extra = hook->OnAccess(event);
    if (extra != 0) {
      clock += extra;
    }
  }
  // A handler may have (dis)armed a watchpoint or reset a countdown.
  ResyncSink();
  RefreshQuiet(core);
}

bool Engine::CommitSyncOp(int core, uint32_t index) {
  Machine& m = *machine_;
  CoreRecorder& rec = recorders_[core];
  const uint8_t kind = rec.meta[index].kind & CoreRecorder::kKindMask;
  uint64_t& clock = m.clocks_[core];
  switch (kind) {
    case SimOp::kLockAcquire: {
      SimLock* lock = reinterpret_cast<SimLock*>(rec.lane[index].addr);
      if (lock->holder_ >= 0 && lock->holder_ != core) {
        // The holder's release is still pending in this commit: park this
        // core (its queue stops merging) until that release wakes it.
        // Without parking, the nondecreasing commit-clock order would make
        // every same-epoch wait zero and let critical sections overlap.
        if (blocked_on_[core] == nullptr) {
          blocked_on_[core] = lock;
          block_start_[core] = clock;
        }
        return false;  // op not consumed; retried after the wake-up
      }
      uint64_t wait = 0;
      if (blocked_on_[core] != nullptr) {
        blocked_on_[core] = nullptr;
        wait = clock > block_start_[core] ? clock - block_start_[core] : 0;
      }
      if (lock->free_at_ > clock) {
        wait += lock->free_at_ - clock;
        clock = lock->free_at_;
      }
      lock->holder_ = core;
      lock->acquired_at_ = clock;
      if (m.lock_observer_ != nullptr) {
        m.lock_observer_->OnAcquire(*lock, core, rec.meta[index].ip, wait, clock);
      }
      return true;
    }
    case SimOp::kLockRelease: {
      SimLock* lock = reinterpret_cast<SimLock*>(rec.lane[index].addr);
      const uint64_t hold = clock - lock->acquired_at_;
      lock->free_at_ = clock;
      lock->holder_ = -1;
      if (m.lock_observer_ != nullptr) {
        m.lock_observer_->OnRelease(*lock, core, rec.meta[index].ip, hold, clock);
      }
      // Wake cores parked on this lock: they waited until this release,
      // then re-arbitrate by the usual min-clock rule.
      for (int c = 0; c < m.num_cores(); ++c) {
        if (blocked_on_[c] == lock) {
          if (clock > m.clocks_[c]) {
            m.clocks_[c] = clock;
          }
          commit_keys_[c] = PackKey(m.clocks_[c], c);
          woke_parked_ = true;
        }
      }
      return true;
    }
    case SimOp::kAllocEvent: {
      const uint64_t payload = rec.lane[index].payload();
      m.allocator_->CommitAllocEvent(static_cast<TypeId>(payload >> 32),
                                     rec.lane[index].addr,
                                     static_cast<uint32_t>(payload), core, clock);
      return true;
    }
    default: {
      DPROF_DCHECK(kind == SimOp::kFreeEvent);
      const uint64_t payload = rec.lane[index].payload();
      m.allocator_->CommitFreeEvent(static_cast<TypeId>(payload >> 32),
                                    rec.lane[index].addr,
                                    static_cast<uint32_t>(payload), core, clock,
                                    (rec.meta[index].kind & CoreRecorder::kAlienBit) != 0);
      return true;
    }
  }
}

void Engine::EmitAccess(const AccessEvent& event) {
  EventBatch& batch = batches_[build_batch_];
  batch.access.push_back(event);
  if (!batch.spans.empty() && batch.spans.back().is_compute == 0) {
    ++batch.spans.back().count;
  } else {
    batch.spans.push_back(
        EventBatch::Span{0, static_cast<uint32_t>(batch.access.size() - 1), 1});
  }
}

void Engine::EmitCompute(const ComputeEvent& event) {
  EventBatch& batch = batches_[build_batch_];
  batch.compute.push_back(event);
  if (!batch.spans.empty() && batch.spans.back().is_compute == 1) {
    ++batch.spans.back().count;
  } else {
    batch.spans.push_back(
        EventBatch::Span{1, static_cast<uint32_t>(batch.compute.size() - 1), 1});
  }
}

void Engine::DeliverBatch(const EventBatch& batch) {
  if (batch.IsEmpty()) {
    return;
  }
  const auto start = Clock::now();
  Machine& m = *machine_;
  for (const EventBatch::Span& span : batch.spans) {
    if (span.is_compute != 0) {
      for (MachineObserver* obs : m.observers_) {
        obs->OnComputeBatch(&batch.compute[span.offset], span.count);
      }
    } else {
      for (MachineObserver* obs : m.observers_) {
        obs->OnAccessBatch(&batch.access[span.offset], span.count);
      }
    }
  }
  phase_stats_.deliver_seconds += Seconds(start, Clock::now());
}

// Hands the built batch to the delivery thread so observers consume epoch
// N's events while epoch N+1 simulates; the simulate phase touches only
// core-owned state and observers are pure sinks nothing reads before the
// next RunFor boundary, so the overlap is invisible to the results. With
// one thread (or nothing to deliver) delivery runs inline.
void Engine::HandOffOrDeliver() {
  EventBatch& built = batches_[build_batch_];
  if (built.IsEmpty()) {
    return;
  }
  if (threads_ <= 1) {
    DeliverBatch(built);
    built.Clear();
    return;
  }
  std::unique_lock<std::mutex> lk(deliver_mu_);
  if (!deliver_thread_.joinable()) {
    deliver_thread_ = std::thread(&Engine::DeliveryLoop, this);
  }
  deliver_cv_.wait(lk, [&] { return !deliver_pending_; });
  build_batch_ = 1 - build_batch_;
  deliver_pending_ = true;
  deliver_cv_.notify_all();
}

void Engine::WaitDeliveryIdle() {
  if (!deliver_thread_.joinable()) {
    return;
  }
  std::unique_lock<std::mutex> lk(deliver_mu_);
  deliver_cv_.wait(lk, [&] { return !deliver_pending_; });
}

void Engine::DeliveryLoop() {
  std::unique_lock<std::mutex> lk(deliver_mu_);
  while (true) {
    deliver_cv_.wait(lk, [&] { return deliver_shutdown_ || deliver_pending_; });
    if (!deliver_pending_) {
      return;  // shutdown with nothing in flight
    }
    EventBatch& batch = batches_[1 - build_batch_];
    lk.unlock();
    DeliverBatch(batch);
    lk.lock();
    batch.Clear();
    deliver_pending_ = false;
    deliver_cv_.notify_all();
  }
}

}  // namespace dprof
