// Interning table mapping function names to FunctionIds and back.
//
// The simulator models program counters at function granularity: every
// simulated operation carries the FunctionId of the kernel/application
// function executing it, which is what the paper's views report.

#ifndef DPROF_SRC_MACHINE_SYMBOL_TABLE_H_
#define DPROF_SRC_MACHINE_SYMBOL_TABLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/util/types.h"

namespace dprof {

class SymbolTable {
 public:
  // Returns the id for `name`, creating it on first use.
  FunctionId Intern(const std::string& name);

  // Returns the name for `id`; "?" for unknown ids.
  const std::string& Name(FunctionId id) const;

  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, FunctionId> ids_;
  std::vector<std::string> names_;
  std::string unknown_ = "?";
};

}  // namespace dprof

#endif  // DPROF_SRC_MACHINE_SYMBOL_TABLE_H_
