#ifndef DPROF_MACHINE_SAMPLING_H_
#define DPROF_MACHINE_SAMPLING_H_

#include <cstdint>

namespace dprof {

class FaultPlan;

// Configuration for the engine's sampled execution mode. When enabled, the
// engine alternates short *detailed windows* (full tag-lattice walks + event
// delivery, exactly the semantics of exact mode) with long *fast-forward*
// stretches where accesses advance clocks through the calibrated per-core
// cost estimate but skip the hierarchy entirely. Allocator state, lock/sync
// arbitration, and per-core clocks stay exact throughout.
struct SamplingConfig {
  bool enabled = false;
  // Length of one sampling period in simulated cycles. Each period serves at
  // least window_cycles of detailed simulation; the rest fast-forwards.
  uint64_t period_cycles = 400'000;
  // Detailed-window budget per period, in simulated cycles.
  uint64_t window_cycles = 20'000;
  // Seed for the deterministic window-placement jitter. The schedule is a
  // pure function of (seed, committed clock), so it is identical for every
  // engine --threads value.
  uint64_t seed = 0x5a17;
  // Epoch-length cap for fast-forward stretches. FF epochs skip the apply
  // phase and deliver no events, so the engine coarsens them to amortize
  // per-epoch overhead; FfRunway() still ends a stretch at the next detailed
  // window. Watchpoint filters armed mid-epoch see accesses only from the
  // next epoch on, so this also bounds that arming lag in simulated cycles.
  uint64_t ff_epoch_cycles = 100'000;
};

// One confidence interval on a proportion, in percentage points.
struct SamplingInterval {
  double estimate = 0.0;  // point estimate, percent
  double lo = 0.0;        // lower bound, percent (clamped to 0)
  double hi = 0.0;        // upper bound, percent (clamped to 100)
};

// Owns the detailed-vs-fast-forward window schedule and the measured-window
// accounting. The engine consults BeginEpoch at each epoch boundary (with the
// global committed min-clock, which is thread-count independent) and reports
// the epoch's outcome through EndEpoch. Epochs are the scheduling granule:
// a "window" is realized as a run of consecutive detailed epochs totalling at
// least window_cycles of simulated time.
class SamplingController {
 public:
  explicit SamplingController(const SamplingConfig& config);

  // Decide whether the epoch starting at committed min-clock `clock` runs
  // detailed (true) or fast-forwarded (false). Deterministic sequential
  // function of the clock sequence.
  bool BeginEpoch(uint64_t clock);

  // Report the epoch that just committed. `detailed` is the mode it actually
  // ran in (the engine may force detailed mode, e.g. when observers are
  // attached), `advance` is the simulated cycles the global min-clock moved,
  // and `accesses` is the number of memory accesses the epoch recorded.
  void EndEpoch(bool detailed, uint64_t advance, uint64_t accesses);

  // Cycles from `clock` until the next detailed window could begin — the cap
  // a fast-forward epoch must respect so one long FF epoch never jumps a
  // window. Only meaningful right after BeginEpoch(clock) returned false.
  uint64_t FfRunway(uint64_t clock) const;

  const SamplingConfig& config() const { return config_; }
  uint64_t detailed_epochs() const { return detailed_epochs_; }
  uint64_t ff_epochs() const { return ff_epochs_; }
  uint64_t measured_accesses() const { return measured_accesses_; }
  uint64_t ff_accesses() const { return ff_accesses_; }
  uint64_t measured_cycles() const { return measured_cycles_; }
  uint64_t total_cycles() const { return total_cycles_; }

  // Ratio of all accesses to measured-window accesses: the factor by which a
  // measured-window counter is scaled to estimate its full-run value.
  double Scale() const;

  // Wilson score interval (z = 2.576, 99% confidence) for a proportion with
  // k successes out of n trials, widened by an absolute floor that accounts
  // for systematic window-placement error (phase-correlated workloads can
  // bias any fixed window schedule; the floor keeps the reported interval
  // honest about that). Returns percentages.
  static SamplingInterval WilsonCI(uint64_t k, uint64_t n, double floor_pct);

  // Self-check against the honesty contract behind WilsonCI: the scaled
  // estimates assume every period contributes (close to) a full detailed
  // window of measurement. A period that rolls over with less than half its
  // window served is a violation; the controller degrades gracefully —
  // first widening the window (x2, capped at the period), then, after
  // kMaxViolations, falling back to exact execution for the rest of the
  // run. All decisions are functions of the committed clock sequence, so
  // degraded runs stay byte-identical across --threads.
  static constexpr uint64_t kMaxViolations = 3;
  uint64_t violations() const { return violations_; }
  bool widened() const { return widened_; }
  bool exact_fallback() const { return exact_fallback_; }

  // Optional fault plan (kWindowJitter seam): perturbs the window offset at
  // period rollover so the window provably cannot fit, forcing the
  // self-check above to trip. Used by the crashtest harness.
  void SetFaultPlan(FaultPlan* faults) { faults_ = faults; }

  // The floor applied to per-type miss-share intervals, in points. Shares
  // are robust to window placement (systematic misses distribute across
  // types roughly in proportion), so this floor stays tight.
  static constexpr double kTypeShareFloorPct = 2.5;
  // The floor applied to the overall L1 miss-rate interval, in points. The
  // absolute rate is exposed to two systematic errors the statistical term
  // cannot see: cold caches at detailed-window entry (the lattice is frozen
  // during fast-forward, inflating misses) and phase-correlated window
  // placement (which can deflate them). Across the built-in scenarios the
  // observed bias reaches ~11 points in either direction; the floor covers
  // it with margin. Runs that need a tight absolute miss rate use exact
  // mode.
  static constexpr double kMissRateFloorPct = 15.0;
  // z for the Wilson interval: 99% two-sided.
  static constexpr double kZ = 2.576;

 private:
  // Deterministic jitter for the detailed-window offset inside period k.
  uint64_t Jitter(uint64_t k) const;

  SamplingConfig config_;
  FaultPlan* faults_ = nullptr;
  uint64_t cur_period_ = ~0ull;  // index of the period being served
  uint64_t served_ = 0;          // detailed cycles served in cur_period_
  uint64_t offset_ = 0;          // window start offset inside cur_period_
  uint64_t violations_ = 0;      // periods that broke the honesty contract
  bool widened_ = false;         // the window budget was doubled at least once
  bool exact_fallback_ = false;  // degraded to always-detailed execution
  uint64_t detailed_epochs_ = 0;
  uint64_t ff_epochs_ = 0;
  uint64_t measured_accesses_ = 0;
  uint64_t ff_accesses_ = 0;
  uint64_t measured_cycles_ = 0;
  uint64_t total_cycles_ = 0;
};

}  // namespace dprof

#endif  // DPROF_MACHINE_SAMPLING_H_
