#include "src/machine/machine.h"

#include <algorithm>

#include "src/util/check.h"

namespace dprof {

void CoreRecorder::Grow() {
  const size_t new_cap = capacity == 0 ? 4096 : capacity * 2;
  auto new_lane = std::make_unique<Lane[]>(new_cap);
  auto new_meta = std::make_unique<Meta[]>(new_cap);
  if (n > 0) {
    __builtin_memcpy(new_lane.get(), lane, n * sizeof(Lane));
    __builtin_memcpy(new_meta.get(), meta, n * sizeof(Meta));
  }
  lane_store_ = std::move(new_lane);
  meta_store_ = std::move(new_meta);
  lane = lane_store_.get();
  meta = meta_store_.get();
  capacity = new_cap;
}

void CoreRecorder::GrowRing() {
  const size_t new_cap = ring_capacity == 0 ? 4096 : ring_capacity * 2;
  auto new_ring = std::make_unique<ApplyLane[]>(new_cap);
  if (ring_n > 0) {
    __builtin_memcpy(new_ring.get(), ring, ring_n * sizeof(ApplyLane));
  }
  ring_store_ = std::move(new_ring);
  ring = ring_store_.get();
  ring_capacity = new_cap;
}

Machine::Machine(const MachineConfig& config)
    : config_(config),
      hierarchy_(config.hierarchy),
      clocks_(config.hierarchy.num_cores, 0),
      drivers_(config.hierarchy.num_cores, nullptr) {
  rngs_.reserve(config.hierarchy.num_cores);
  for (int c = 0; c < config.hierarchy.num_cores; ++c) {
    rngs_.emplace_back(config.seed * 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(c) + 1);
  }
}

void Machine::RemoveObserver(MachineObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

void Machine::RemovePmuHook(PmuHook* hook) {
  pmu_hooks_.erase(std::remove(pmu_hooks_.begin(), pmu_hooks_.end(), hook), pmu_hooks_.end());
}

void Machine::RemoveEpochHook(EpochHook* hook) {
  epoch_hooks_.erase(std::remove(epoch_hooks_.begin(), epoch_hooks_.end(), hook),
                     epoch_hooks_.end());
}

void Machine::NoteMailboxFedType(TypeId type) {
  if (!IsMailboxFedType(type)) {
    mailbox_fed_types_.push_back(type);
  }
}

bool Machine::IsMailboxFedType(TypeId type) const {
  return std::find(mailbox_fed_types_.begin(), mailbox_fed_types_.end(), type) !=
         mailbox_fed_types_.end();
}

uint64_t Machine::MinClock() const {
  return *std::min_element(clocks_.begin(), clocks_.end());
}

uint64_t Machine::MaxClock() const {
  return *std::max_element(clocks_.begin(), clocks_.end());
}

int Machine::MinClockCore() const {
  int best = 0;
  for (int c = 1; c < num_cores(); ++c) {
    if (clocks_[c] < clocks_[best]) {
      best = c;
    }
  }
  return best;
}

void Machine::StepCore(int core) {
  CoreDriver* driver = drivers_[core];
  bool did_work = false;
  if (driver != nullptr) {
    CoreContext ctx(this, core);
    did_work = driver->Step(ctx);
  }
  if (!did_work) {
    clocks_[core] += config_.idle_cycles;
  }
}

void Machine::RunFor(uint64_t cycles) {
  if (executor_ != nullptr) {
    executor_->RunFor(cycles);
    return;
  }
  const uint64_t deadline = MinClock() + cycles;
  while (MinClock() < deadline) {
    StepCore(MinClockCore());
  }
}

void Machine::RunSteps(uint64_t steps) {
  for (uint64_t i = 0; i < steps; ++i) {
    StepCore(MinClockCore());
  }
}

CoreContext Machine::Context(int core) {
  DPROF_CHECK(core >= 0 && core < num_cores());
  return CoreContext(this, core);
}

AccessResult CoreContext::Access(FunctionId ip, Addr addr, uint32_t size, bool is_write) {
  // A large access (memcpy, DMA fetch) is really a loop of line-sized
  // loads/stores; model it that way so each simulated "instruction" touches
  // at most one cache line. This keeps IBS sampling probability proportional
  // to the number of instructions, as on real hardware.
  Machine& m = *machine_;
  const uint32_t line_size = m.hierarchy_.line_size();

  if (recorder_ != nullptr) {
    // Engine mode: queue one op per line chunk; results resolve at commit.
    CoreRecorder& rec = *recorder_;
    const uint32_t l1_latency = m.config_.hierarchy.latency.l1;
    const uint32_t raw_cost = m.config_.base_op_cost + l1_latency;
    const uint32_t write_bit = is_write ? CoreRecorder::kWriteBit : 0u;
    AccessResult total;
    Addr at = addr;
    uint32_t remaining = size;
    if (rec.ff) {
      // Fast-forward: charge the calibrated estimate, skip the hierarchy.
      // Accesses inside the armed filter window snapshot still record real
      // kAccess ops (with the estimate prefilled as the result) so commit
      // can dispatch them to the watching hook.
      while (remaining > 0) {
        const uint32_t line_room =
            static_cast<uint32_t>(line_size - (at & (line_size - 1)));
        const uint32_t chunk = remaining < line_room ? remaining : line_room;
        ++rec.accesses;
        const uint64_t t = rec.lb;
        const uint64_t est = rec.ChargeFf(raw_cost);
        if (at < rec.ff_hi && at + chunk > rec.ff_lo) {
          const uint64_t extra =
              est > m.config_.base_op_cost ? est - m.config_.base_op_cost : 0;
          rec.PushFfAccess(t, at, chunk | write_bit,
                           CoreRecorder::PackResult(static_cast<uint32_t>(extra),
                                                    ServedBy::kL1, false),
                           ip);
        } else {
          rec.PushFfRun(t, est);
        }
        total.latency += l1_latency;
        ++total.lines;
        at += chunk;
        remaining -= chunk;
      }
      return total;
    }
    while (remaining > 0) {
      const uint32_t line_room =
          static_cast<uint32_t>(line_size - (at & (line_size - 1)));
      const uint32_t chunk = remaining < line_room ? remaining : line_room;
      const bool use_ring = rec.elide & (rec.elide_budget > 0);
      ++rec.accesses;
      if (rec.record_shards) {
        rec.shard_ops[m.hierarchy_.ShardOf(at)].push_back(static_cast<uint32_t>(
            use_ring ? (rec.ring_n | CoreRecorder::kRingTag) : rec.size()));
      }
      if (use_ring) {
        --rec.elide_budget;
        rec.PushElidedAccess(rec.lb, at, chunk | write_bit);
      } else {
        rec.PushAccess(rec.lb, at, chunk | write_bit, ip);
      }
      rec.ChargeAccess(raw_cost);
      total.latency += l1_latency;
      ++total.lines;
      at += chunk;
      remaining -= chunk;
    }
    return total;  // lower bound: L1 latency, no miss/invalidation flags
  }

  AccessResult total;
  Addr at = addr;
  uint32_t remaining = size;
  while (remaining > 0) {
    const uint32_t line_room = static_cast<uint32_t>(line_size - (at & (line_size - 1)));
    const uint32_t chunk = remaining < line_room ? remaining : line_room;
    const AccessResult r = m.hierarchy_.Access(core_, at, chunk, is_write, now());
    m.clocks_[core_] += m.config_.base_op_cost + r.latency;

    total.latency += r.latency;
    total.level = std::max(total.level, r.level);
    total.l1_miss = total.l1_miss || r.l1_miss;
    total.invalidation = total.invalidation || r.invalidation;
    total.lines += r.lines;
    if (probing_) {
      probe_latency_ += r.latency;
    }

    AccessEvent event;
    event.core = core_;
    event.ip = ip;
    event.addr = at;
    event.size = chunk;
    event.is_write = is_write;
    event.level = r.level;
    event.latency = r.latency;
    event.invalidation = r.invalidation;
    event.now = m.clocks_[core_];

    for (MachineObserver* obs : m.observers_) {
      obs->OnAccess(event);
    }
    for (PmuHook* hook : m.pmu_hooks_) {
      const uint64_t extra = hook->OnAccess(event);
      if (extra != 0) {
        // Interrupt + handler cost lands on the executing core but is not
        // attributed to the workload function.
        m.clocks_[core_] += extra;
      }
    }
    at += chunk;
    remaining -= chunk;
  }
  return total;
}

void CoreContext::Compute(FunctionId ip, uint64_t cycles) {
  Machine& m = *machine_;
  if (recorder_ != nullptr) {
    if (!recorder_->CoalesceCycles(SimOp::kCompute, ip, cycles)) {
      recorder_->PushCycles(SimOp::kCompute, recorder_->lb, cycles, ip);
    }
    recorder_->ChargeExact(cycles);
    return;
  }
  m.clocks_[core_] += cycles;
  for (MachineObserver* obs : m.observers_) {
    obs->OnCompute(core_, ip, cycles, m.clocks_[core_]);
  }
}

Addr CoreContext::Alloc(TypeId type, FunctionId ip) {
  DPROF_CHECK(machine_->allocator_ != nullptr);
  return machine_->allocator_->Alloc(*this, type, ip);
}

void CoreContext::Free(Addr addr, FunctionId ip) {
  DPROF_CHECK(machine_->allocator_ != nullptr);
  machine_->allocator_->Free(*this, addr, ip);
}

void CoreContext::LockAcquire(SimLock& lock, FunctionId ip) {
  Machine& m = *machine_;
  if (recorder_ != nullptr) {
    // The lock-word access records first, the acquire op after it: at
    // commit, latency-then-wait sums to the same clock as the direct
    // mode's wait-then-latency, and the acquire needs only one sync op
    // (arbitration point) instead of an acquire/done pair bracketing the
    // access.
    Access(ip, lock.word_, 8, true);
    SimOp op;
    op.kind = SimOp::kLockAcquire;
    op.t = recorder_->lb;
    op.addr = reinterpret_cast<Addr>(&lock);
    op.ip = ip;
    recorder_->Push(op);
    return;
  }
  uint64_t wait = 0;
  if (lock.free_at_ > now()) {
    wait = lock.free_at_ - now();
    m.clocks_[core_] = lock.free_at_;
  }
  // Grab the lock word exclusively: coherence traffic on contended locks.
  Access(ip, lock.word_, 8, true);
  lock.holder_ = core_;
  lock.acquired_at_ = now();
  if (m.lock_observer_ != nullptr) {
    m.lock_observer_->OnAcquire(lock, core_, ip, wait, now());
  }
}

void CoreContext::LockRelease(SimLock& lock, FunctionId ip) {
  Machine& m = *machine_;
  if (recorder_ != nullptr) {
    Access(ip, lock.word_, 8, true);
    SimOp op;
    op.kind = SimOp::kLockRelease;
    op.t = recorder_->lb;
    op.addr = reinterpret_cast<Addr>(&lock);
    op.ip = ip;
    recorder_->Push(op);
    return;
  }
  DPROF_DCHECK(lock.holder_ == core_);
  Access(ip, lock.word_, 8, true);
  const uint64_t hold = now() - lock.acquired_at_;
  lock.free_at_ = now();
  lock.holder_ = -1;
  if (m.lock_observer_ != nullptr) {
    m.lock_observer_->OnRelease(lock, core_, ip, hold, now());
  }
}

void CoreContext::BeginLatencyProbe() {
  if (recorder_ != nullptr) {
    SimOp op;
    op.kind = SimOp::kProbeBegin;
    op.t = recorder_->lb;
    recorder_->Push(op);
    return;
  }
  probing_ = true;
  probe_latency_ = 0;
}

void CoreContext::EndLatencyProbe(RunningStat* stat, double divisor) {
  if (recorder_ != nullptr) {
    SimOp op;
    op.kind = SimOp::kProbeEnd;
    op.t = recorder_->lb;
    op.addr = reinterpret_cast<Addr>(stat);
    static_assert(sizeof(double) == sizeof(uint64_t), "divisor packing");
    __builtin_memcpy(&op.aux, &divisor, sizeof(double));
    recorder_->Push(op);
    return;
  }
  probing_ = false;
  stat->Add(static_cast<double>(probe_latency_) / divisor);
}

void CoreContext::NotifyAllocEvent(TypeId type, Addr base, uint32_t size) {
  if (recorder_ != nullptr) {
    SimOp op;
    op.kind = SimOp::kAllocEvent;
    op.t = recorder_->lb;
    op.addr = base;
    op.aux = (static_cast<uint64_t>(type) << 32) | size;
    recorder_->Push(op);
    return;
  }
  machine_->allocator_->CommitAllocEvent(type, base, size, core_, now());
}

void CoreContext::NotifyFreeEvent(TypeId type, Addr base, uint32_t size, bool alien) {
  if (recorder_ != nullptr) {
    SimOp op;
    op.kind = SimOp::kFreeEvent;
    op.t = recorder_->lb;
    op.addr = base;
    op.aux = (static_cast<uint64_t>(type) << 32) | size;
    op.flag = alien;
    recorder_->Push(op);
    return;
  }
  machine_->allocator_->CommitFreeEvent(type, base, size, core_, now(), alien);
}

}  // namespace dprof
