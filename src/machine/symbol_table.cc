#include "src/machine/symbol_table.h"

namespace dprof {

FunctionId SymbolTable::Intern(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) {
    return it->second;
  }
  const FunctionId id = static_cast<FunctionId>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

const std::string& SymbolTable::Name(FunctionId id) const {
  if (id < names_.size()) {
    return names_[id];
  }
  return unknown_;
}

}  // namespace dprof
