// Deterministic, seeded fault injection for the dprof engine.
//
// A FaultPlan enables a set of named *seams* — places in the engine,
// allocator, hierarchy rig, mailbox, and sampler where a controlled
// perturbation can be injected — and answers, per seam, "does the fault fire
// here?" as a pure function of the plan seed and simulation-intrinsic
// coordinates (core id, committed clock, epoch ordinal, slab ordinal). Host
// threading never feeds a decision, so a faulted run is bit-identical for
// every --threads value, which is what lets CI diff crashtest output across
// thread counts.
//
// Every seam is recoverable by construction: the injection site converts the
// fault into a structured recovery (retry, drop-with-lower-bound, bounded
// skew, capacity cap) or a structured diagnostic (lattice corruption caught
// by the auditor, a stall caught by the watchdog) — never a crash. The plan
// counts injections and recoveries per seam; the counts surface in the
// report's "faults" JSON block.

#ifndef DPROF_SRC_MACHINE_FAULTS_H_
#define DPROF_SRC_MACHINE_FAULTS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/sim/hierarchy.h"
#include "src/util/types.h"

namespace dprof {

enum class FaultSeam : uint8_t {
  kSlabGrow = 0,       // allocator slab-grow failure (simulated OOM)
  kLaneDrop,           // an ApplyLane record is lost before apply
  kLaneDup,            // an ApplyLane record is applied twice
  kClockSkew,          // bounded per-core clock skew at epoch start
  kExtBankPressure,    // shrunk l3_dir_ext_ways: ReclaimExtWay storms
  kMailboxOverflow,    // bounded TxQueue depth: overflow packets dropped
  kWindowJitter,       // sampled-window schedule pushed off its contract
  kLatticeCorrupt,     // deliberate tag-lattice corruption (audit must catch)
  kEpochStall,         // epochs stop advancing (watchdog must catch)
  kCount,
};

constexpr int kNumFaultSeams = static_cast<int>(FaultSeam::kCount);

const char* FaultSeamName(FaultSeam seam);
// Parses a seam name ("slab_grow", "lane_drop", ...); false if unknown.
bool ParseFaultSeam(const std::string& name, FaultSeam* seam);

// What happened to one gathered lane record.
enum class LaneFault : uint8_t { kNone = 0, kDrop, kDup };

struct FaultPlanConfig {
  uint64_t seed = 0xfa017;
  uint32_t enabled_mask = 0;  // bit per FaultSeam

  // Per-seam magnitudes; deterministic defaults sized so a short run sees
  // every enabled seam fire many times.
  uint32_t slab_grow_period = 4;       // ~1/4 of slab grows fail (then retry)
  uint32_t lane_period = 512;          // ~1/512 of lane records faulted
  uint32_t skew_max_cycles = 64;       // per-core skew in [0, max) per epoch
  uint32_t ext_ways_override = 1;      // l3_dir_ext_ways under pressure
  uint32_t mailbox_cap = 8;           // max queued packets per mailbox
  uint64_t stall_after_epochs = 64;    // epochs stop advancing from here on
  uint64_t corrupt_from_audit = 1;     // corrupt before this audit ordinal on
};

// Builds an enabled-mask from a comma-separated seam list ("slab_grow,
// lane_drop", or "all"). Returns false and sets *error on an unknown name.
bool ParseFaultSeamList(const std::string& list, uint32_t* mask, std::string* error);

class FaultPlan {
 public:
  explicit FaultPlan(const FaultPlanConfig& config) : config_(config) {}

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  const FaultPlanConfig& config() const { return config_; }
  bool enabled(FaultSeam seam) const {
    return (config_.enabled_mask >> static_cast<int>(seam)) & 1u;
  }
  bool any_enabled() const { return config_.enabled_mask != 0; }

  // --- Seam decisions. Each is a pure function of (seed, args); the
  // injection counters are the only mutable state and use relaxed atomics
  // (totals are deterministic; increment order is not observable).

  // Does the core's slab_ordinal-th arena grow fail? The caller recovers by
  // charging a reclaim stall and retrying (the retry always succeeds).
  bool SlabGrowFails(int core, uint64_t slab_ordinal);

  // Fate of the lane record (core, t, addr). Identical in the shard-parallel
  // and fused-global apply paths because both see the same coordinates.
  LaneFault LaneFaultFor(int core, uint64_t t, Addr addr);

  // Deterministic per-core clock skew injected at the start of the epoch
  // with ordinal `epoch`, in cycles ([0, skew_max_cycles)).
  uint32_t ClockSkew(int core, uint64_t epoch);

  // Applies configuration-level seams to a hierarchy config at rig build
  // (extension-bank pressure shrinks l3_dir_ext_ways).
  void ApplyToHierarchy(HierarchyConfig* config);

  // Mailbox depth cap; ~0u when the seam is off. The queue drops (and
  // counts) packets beyond the cap.
  uint32_t MailboxCap() const {
    return enabled(FaultSeam::kMailboxOverflow) ? config_.mailbox_cap : ~0u;
  }
  void NoteMailboxDrop();

  // Does sampled-window period k get its schedule perturbed off-contract?
  bool WindowJitterFires(uint64_t period);

  // Corruption kind to inject before audit ordinal `audit`, or -1. Kinds
  // index CacheHierarchy::InjectLatticeFault.
  int CorruptionAtAudit(uint64_t audit);

  // Does the epoch with ordinal `epoch` stall (no clock progress)?
  bool StallsEpoch(uint64_t epoch);

  // Recovery bookkeeping for seams whose recovery happens at the caller.
  void NoteRecovered(FaultSeam seam) {
    recovered_[static_cast<int>(seam)].fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t injected(FaultSeam seam) const {
    return injected_[static_cast<int>(seam)].load(std::memory_order_relaxed);
  }
  uint64_t recovered(FaultSeam seam) const {
    return recovered_[static_cast<int>(seam)].load(std::memory_order_relaxed);
  }

 private:
  void NoteInjected(FaultSeam seam) {
    injected_[static_cast<int>(seam)].fetch_add(1, std::memory_order_relaxed);
  }

  FaultPlanConfig config_;
  std::atomic<uint64_t> injected_[kNumFaultSeams] = {};
  std::atomic<uint64_t> recovered_[kNumFaultSeams] = {};
};

}  // namespace dprof

#endif  // DPROF_SRC_MACHINE_FAULTS_H_
