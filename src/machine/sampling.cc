#include "src/machine/sampling.h"

#include <algorithm>
#include <cmath>

#include "src/machine/faults.h"

namespace dprof {

namespace {

// SplitMix64 finalizer: cheap, well-mixed, and stateless so the window
// schedule stays a pure function of (seed, period index).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

SamplingController::SamplingController(const SamplingConfig& config) : config_(config) {
  if (config_.period_cycles == 0) {
    config_.period_cycles = SamplingConfig().period_cycles;
  }
  if (config_.window_cycles == 0) {
    config_.window_cycles = SamplingConfig().window_cycles;
  }
  if (config_.ff_epoch_cycles == 0) {
    config_.ff_epoch_cycles = SamplingConfig().ff_epoch_cycles;
  }
  // A window at least as long as the period means "always detailed".
  config_.window_cycles = std::min(config_.window_cycles, config_.period_cycles);
}

uint64_t SamplingController::Jitter(uint64_t k) const {
  // Period 0 keeps its window at offset 0 so the cost calibration has
  // detailed epochs behind it before the first fast-forward stretch.
  if (k == 0) {
    return 0;
  }
  const uint64_t slack = config_.period_cycles - config_.window_cycles;
  if (slack == 0) {
    return 0;
  }
  return Mix(config_.seed ^ k) % slack;
}

bool SamplingController::BeginEpoch(uint64_t clock) {
  if (exact_fallback_) {
    return true;
  }
  const uint64_t k = clock / config_.period_cycles;
  if (k != cur_period_) {
    // Honesty self-check at period rollover: a period that served less than
    // half its detailed-window budget breaks the assumption behind the
    // scaled estimates. Degrade: widen the window so the next period can
    // catch up; repeated violations abandon sampling for exact execution.
    if (cur_period_ != ~0ull && served_ < config_.window_cycles / 2) {
      ++violations_;
      if (faults_ != nullptr) {
        faults_->NoteRecovered(FaultSeam::kWindowJitter);
      }
      if (violations_ >= kMaxViolations) {
        exact_fallback_ = true;
        return true;
      }
      widened_ = true;
      config_.window_cycles =
          std::min(config_.window_cycles * 2, config_.period_cycles);
    }
    cur_period_ = k;
    served_ = 0;
    offset_ = Jitter(k);
    if (faults_ != nullptr && faults_->WindowJitterFires(k)) {
      // Injected schedule jitter: park the window start so late in the
      // period that the budget provably cannot be served — the self-check
      // above must catch it at the next rollover.
      offset_ = config_.period_cycles - config_.window_cycles / 4 - 1;
    }
  }
  // Serve the detailed window once the clock passes the jittered offset, and
  // keep serving until window_cycles of simulated time have gone by. Because
  // epoch strides vary, "past the offset and not yet served" guarantees at
  // least one detailed epoch per period regardless of how clocks land.
  const uint64_t in_period = clock - k * config_.period_cycles;
  return served_ < config_.window_cycles && in_period >= offset_;
}

uint64_t SamplingController::FfRunway(uint64_t clock) const {
  const uint64_t k = clock / config_.period_cycles;
  const uint64_t window_start = k * config_.period_cycles + offset_;
  if (served_ < config_.window_cycles && clock < window_start) {
    return window_start - clock;
  }
  // This period's window is fully served: the next detailed epoch is behind
  // period k+1's jittered offset.
  return (k + 1) * config_.period_cycles + Jitter(k + 1) - clock;
}

void SamplingController::EndEpoch(bool detailed, uint64_t advance, uint64_t accesses) {
  total_cycles_ += advance;
  if (detailed) {
    served_ += advance;
    ++detailed_epochs_;
    measured_cycles_ += advance;
    measured_accesses_ += accesses;
  } else {
    ++ff_epochs_;
    ff_accesses_ += accesses;
  }
}

double SamplingController::Scale() const {
  if (measured_accesses_ == 0) {
    return 1.0;
  }
  return static_cast<double>(measured_accesses_ + ff_accesses_) /
         static_cast<double>(measured_accesses_);
}

SamplingInterval SamplingController::WilsonCI(uint64_t k, uint64_t n, double floor_pct) {
  SamplingInterval ci;
  if (n == 0) {
    ci.estimate = 0.0;
    ci.lo = 0.0;
    ci.hi = 100.0;
    return ci;
  }
  const double nn = static_cast<double>(n);
  const double p = static_cast<double>(k) / nn;
  const double z2 = kZ * kZ;
  const double denom = 1.0 + z2 / nn;
  const double center = (p + z2 / (2.0 * nn)) / denom;
  const double half =
      (kZ * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn))) / denom;
  ci.estimate = 100.0 * p;
  ci.lo = std::max(0.0, 100.0 * (center - half) - floor_pct);
  ci.hi = std::min(100.0, 100.0 * (center + half) + floor_pct);
  return ci;
}

}  // namespace dprof
