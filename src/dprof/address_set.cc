#include "src/dprof/address_set.h"

#include <algorithm>

namespace dprof {

AddressSet::AddressSet(const AddressSetOptions& options)
    : options_(options), rng_(options.seed) {
  // Hot path: one insert per allocation and one erase per free.
  live_alloc_time_.reserve(1 << 16);
}

AddressSet::PerType& AddressSet::Entry(TypeId type) { return per_type_[type]; }

void AddressSet::OnAlloc(TypeId type, Addr base, uint32_t size, int core, uint64_t now) {
  (void)core;
  PerType& entry = Entry(type);
  // Per-core clocks are only loosely synchronized; never integrate backwards.
  if (now > entry.last_event) {
    entry.live_integral +=
        static_cast<double>(entry.live) * static_cast<double>(now - entry.last_event);
    entry.last_event = now;
  }
  ++entry.allocs;
  ++entry.live;
  entry.obj_size = size;
  live_alloc_time_[base] = now;

  const Addr sample = base % options_.modulo;
  if (entry.samples.size() < options_.reservoir_per_type) {
    entry.samples.push_back(sample);
  } else {
    // Reservoir sampling keeps a uniform sample of all allocations.
    const uint64_t slot = rng_.Below(entry.allocs);
    if (slot < entry.samples.size()) {
      entry.samples[slot] = sample;
    }
  }
}

void AddressSet::OnFree(TypeId type, Addr base, uint32_t size, int core, uint64_t now) {
  (void)size;
  (void)core;
  PerType& entry = Entry(type);
  if (now > entry.last_event) {
    entry.live_integral +=
        static_cast<double>(entry.live) * static_cast<double>(now - entry.last_event);
    entry.last_event = now;
  }
  ++entry.frees;
  if (entry.live > 0) {
    --entry.live;
  }
  auto it = live_alloc_time_.find(base);
  if (it != live_alloc_time_.end()) {
    if (now > it->second) {
      entry.lifetime.Add(static_cast<double>(now - it->second));
    }
    live_alloc_time_.erase(it);
  }
}

uint64_t AddressSet::AllocCount(TypeId type) const {
  auto it = per_type_.find(type);
  return it == per_type_.end() ? 0 : it->second.allocs;
}

uint64_t AddressSet::LiveCount(TypeId type) const {
  auto it = per_type_.find(type);
  return it == per_type_.end() ? 0 : it->second.live;
}

uint32_t AddressSet::ObjectSize(TypeId type) const {
  auto it = per_type_.find(type);
  return it == per_type_.end() ? 0 : it->second.obj_size;
}

double AddressSet::AverageLiveBytes(TypeId type, uint64_t now) const {
  auto it = per_type_.find(type);
  if (it == per_type_.end() || now == 0) {
    return 0.0;
  }
  const PerType& entry = it->second;
  double integral = entry.live_integral;
  if (now > entry.last_event) {
    integral += static_cast<double>(entry.live) * static_cast<double>(now - entry.last_event);
  }
  return integral / static_cast<double>(now) * entry.obj_size;
}

double AddressSet::AverageLifetime(TypeId type) const {
  auto it = per_type_.find(type);
  return it == per_type_.end() ? 0.0 : it->second.lifetime.mean();
}

const std::vector<Addr>& AddressSet::AddressSamples(TypeId type) const {
  auto it = per_type_.find(type);
  return it == per_type_.end() ? empty_ : it->second.samples;
}

std::vector<TypeId> AddressSet::KnownTypes() const {
  std::vector<TypeId> out;
  out.reserve(per_type_.size());
  for (const auto& [type, entry] : per_type_) {
    out.push_back(type);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace dprof
