#include "src/dprof/access_sample.h"

#include <algorithm>

namespace dprof {

void AccessSampleTable::Record(const IbsSample& sample, const ResolveResult& resolved) {
  ++total_samples_;
  if (sample.level != ServedBy::kL1) {
    ++l1_misses_;
  }
  if (!resolved.valid) {
    ++unresolved_;
    return;
  }
  const SampleKey key{resolved.type, resolved.offset, sample.ip};
  auto [it, inserted] = cells_.try_emplace(key);
  SampleStats& stats = it->second;
  if (inserted) {
    by_type_ip_[TypeIpKey(key.type, key.ip)].push_back(key);
  }
  ++stats.count;
  ++stats.level_counts[static_cast<int>(sample.level)];
  stats.latency_sum += sample.latency;
  if (sample.is_write) {
    ++stats.writes;
  }
  stats.cpu_mask |= 1u << sample.core;
}

std::unordered_map<TypeId, TypeSampleAgg> AccessSampleTable::AggregateByType() const {
  std::unordered_map<TypeId, TypeSampleAgg> out;
  for (const auto& [key, stats] : cells_) {
    TypeSampleAgg& agg = out[key.type];
    agg.samples += stats.count;
    agg.latency_sum += stats.latency_sum;
    agg.cpu_mask |= stats.cpu_mask;
    for (int level = 1; level < 5; ++level) {
      agg.l1_misses += stats.level_counts[level];
    }
    agg.foreign += stats.level_counts[static_cast<int>(ServedBy::kForeignCache)];
    agg.dram += stats.level_counts[static_cast<int>(ServedBy::kDram)];
  }
  return out;
}

RangeStats AccessSampleTable::Aggregate(TypeId type, FunctionId ip, uint32_t offset_lo,
                                        uint32_t offset_hi) const {
  RangeStats out;
  auto it = by_type_ip_.find(TypeIpKey(type, ip));
  if (it == by_type_ip_.end()) {
    return out;
  }
  uint64_t level_counts[5] = {0, 0, 0, 0, 0};
  uint64_t latency_sum = 0;
  for (const SampleKey& key : it->second) {
    if (key.offset < offset_lo || key.offset > offset_hi) {
      continue;
    }
    const SampleStats& stats = cells_.at(key);
    out.count += stats.count;
    latency_sum += stats.latency_sum;
    for (int level = 0; level < 5; ++level) {
      level_counts[level] += stats.level_counts[level];
    }
  }
  if (out.count > 0) {
    for (int level = 0; level < 5; ++level) {
      out.level_prob[level] =
          static_cast<double>(level_counts[level]) / static_cast<double>(out.count);
    }
    out.avg_latency = static_cast<double>(latency_sum) / static_cast<double>(out.count);
  }
  return out;
}

std::vector<uint32_t> AccessSampleTable::HotOffsets(TypeId type, size_t max_offsets) const {
  std::unordered_map<uint32_t, uint64_t> counts;
  for (const auto& [key, stats] : cells_) {
    if (key.type == type) {
      counts[key.offset & ~3u] += stats.count;  // 4-byte windows
    }
  }
  std::vector<std::pair<uint32_t, uint64_t>> sorted(counts.begin(), counts.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second > b.second || (a.second == b.second && a.first < b.first);
  });
  std::vector<uint32_t> out;
  for (size_t i = 0; i < sorted.size() && i < max_offsets; ++i) {
    out.push_back(sorted[i].first);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void AccessSampleTable::Clear() {
  cells_.clear();
  by_type_ip_.clear();
  total_samples_ = 0;
  unresolved_ = 0;
  l1_misses_ = 0;
}

}  // namespace dprof
