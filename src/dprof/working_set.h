// The working set view (paper §3, §4.2): which types occupy the cache, how
// many objects of each are active, and how data distributes over cache
// associativity sets.
//
// DProf estimates cache contents with a simple simulation over the address
// set: for each type, it places the estimated number of concurrently-live
// objects (sampled addresses modulo the cache size) and marks the lines its
// path traces / access samples touch. The per-associativity-set histogram
// of distinct lines identifies oversubscribed sets (conflict candidates);
// total demand vs. cache capacity identifies capacity pressure.

#ifndef DPROF_SRC_DPROF_WORKING_SET_H_
#define DPROF_SRC_DPROF_WORKING_SET_H_

#include <map>
#include <string>
#include <vector>

#include "src/alloc/type_registry.h"
#include "src/dprof/access_sample.h"
#include "src/dprof/address_set.h"
#include "src/sim/cache.h"
#include "src/util/rng.h"

namespace dprof {

struct WorkingSetRow {
  TypeId type = kInvalidType;
  std::string name;
  double avg_live_objects = 0.0;
  double avg_live_bytes = 0.0;
  double cache_lines_touched = 0.0;  // estimated distinct lines in the cache
};

struct AssocSetPressure {
  uint64_t set = 0;
  uint64_t distinct_lines = 0;
  std::map<TypeId, uint64_t> lines_per_type;
};

struct WorkingSetOptions {
  CacheGeometry geometry{512 * 1024, 64, 16};  // default: private L2
  // A set is conflicted if it holds more than `conflict_factor` times the
  // average and more lines than it has ways (paper §4.3's factor-2 rule).
  double conflict_factor = 2.0;
  uint64_t seed = 0xca11;
};

class WorkingSetView {
 public:
  static WorkingSetView Build(const TypeRegistry& registry, const AddressSet& addresses,
                              const AccessSampleTable& samples, uint64_t now,
                              const WorkingSetOptions& options = {});

  const std::vector<WorkingSetRow>& rows() const { return rows_; }
  const WorkingSetRow* Find(TypeId type) const;

  // Associativity sets flagged as conflict-suffering, most pressured first.
  const std::vector<AssocSetPressure>& conflicted_sets() const { return conflicted_; }

  // Distinct-line histogram over all associativity sets.
  const std::vector<uint64_t>& set_histogram() const { return set_histogram_; }
  double mean_lines_per_set() const { return mean_lines_per_set_; }

  // Total estimated distinct lines vs. cache capacity in lines.
  double demand_lines() const { return demand_lines_; }
  double capacity_lines() const { return capacity_lines_; }
  bool OverCapacity() const { return demand_lines_ > capacity_lines_; }

  // Fraction of `type`'s lines that land in conflicted sets.
  double ConflictedFraction(TypeId type) const;

  std::string ToTable(size_t top_n) const;

  // Machine-readable form: rows plus demand/capacity and the conflicted
  // associativity sets.
  std::string ToJson() const;

 private:
  std::vector<WorkingSetRow> rows_;
  std::vector<AssocSetPressure> conflicted_;
  std::vector<uint64_t> set_histogram_;
  std::map<TypeId, uint64_t> conflicted_lines_per_type_;
  std::map<TypeId, uint64_t> total_lines_per_type_;
  double mean_lines_per_set_ = 0.0;
  double demand_lines_ = 0.0;
  double capacity_lines_ = 0.0;
};

}  // namespace dprof

#endif  // DPROF_SRC_DPROF_WORKING_SET_H_
