#include "src/dprof/working_set.h"

#include <algorithm>
#include <unordered_set>

#include "src/util/check.h"
#include "src/util/json_writer.h"
#include "src/util/table.h"

namespace dprof {

namespace {

// Offsets of `type` that the profiled software actually touches, from the
// access samples; used to mark which lines of each live object are cached.
std::vector<uint32_t> TouchedLineOffsets(const AccessSampleTable& samples, TypeId type,
                                         uint32_t obj_size, uint32_t line_size) {
  std::unordered_set<uint32_t> lines;
  for (const auto& [key, stats] : samples.cells()) {
    if (key.type == type) {
      lines.insert(key.offset / line_size * line_size);
    }
  }
  std::vector<uint32_t> out(lines.begin(), lines.end());
  if (out.empty()) {
    // No samples: assume the whole object is touched.
    for (uint32_t off = 0; off < std::max(obj_size, line_size); off += line_size) {
      out.push_back(off);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

WorkingSetView WorkingSetView::Build(const TypeRegistry& registry, const AddressSet& addresses,
                                     const AccessSampleTable& samples, uint64_t now,
                                     const WorkingSetOptions& options) {
  WorkingSetView view;
  const CacheGeometry& geom = options.geometry;
  // LineOf/SetOf are shift/mask math and silently wrong otherwise.
  DPROF_CHECK(geom.IsPowerOfTwoShaped());
  const uint64_t num_sets = geom.NumSets();
  view.set_histogram_.assign(num_sets, 0);
  view.capacity_lines_ = static_cast<double>(num_sets) * geom.ways;

  Rng rng(options.seed);
  std::vector<std::map<TypeId, uint64_t>> per_set_types(num_sets);

  for (const TypeId type : addresses.KnownTypes()) {
    const uint32_t obj_size = addresses.ObjectSize(type);
    if (obj_size == 0) {
      continue;
    }
    const double avg_live_bytes = addresses.AverageLiveBytes(type, now);
    const double avg_live_objects = avg_live_bytes / obj_size;
    const std::vector<Addr>& addr_samples = addresses.AddressSamples(type);
    if (addr_samples.empty()) {
      continue;
    }

    WorkingSetRow row;
    row.type = type;
    row.name = registry.Name(type);
    row.avg_live_objects = avg_live_objects;
    row.avg_live_bytes = avg_live_bytes;

    const std::vector<uint32_t> touched =
        TouchedLineOffsets(samples, type, obj_size, geom.line_size);

    // Place round(avg_live_objects) objects, drawing addresses from the
    // sampled address set, and mark each touched line.
    const uint64_t objects =
        std::min<uint64_t>(static_cast<uint64_t>(avg_live_objects + 0.5), 1u << 20);
    std::unordered_set<uint64_t> lines_seen;
    for (uint64_t i = 0; i < objects; ++i) {
      const Addr base = addr_samples[i < addr_samples.size()
                                         ? i
                                         : rng.Below(addr_samples.size())];
      for (const uint32_t off : touched) {
        const uint64_t line = geom.LineOf(base + off);
        if (!lines_seen.insert(line).second) {
          continue;
        }
        const uint64_t set = geom.SetOf(line);
        ++view.set_histogram_[set];
        ++per_set_types[set][type];
        ++view.total_lines_per_type_[type];
      }
    }
    row.cache_lines_touched = static_cast<double>(lines_seen.size());
    view.demand_lines_ += row.cache_lines_touched;
    view.rows_.push_back(std::move(row));
  }

  std::sort(view.rows_.begin(), view.rows_.end(),
            [](const WorkingSetRow& a, const WorkingSetRow& b) {
              return a.avg_live_bytes > b.avg_live_bytes;
            });

  // Conflict detection: sets holding > conflict_factor * mean and more lines
  // than they have ways.
  uint64_t total = 0;
  for (const uint64_t count : view.set_histogram_) {
    total += count;
  }
  view.mean_lines_per_set_ =
      num_sets == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(num_sets);
  for (uint64_t set = 0; set < num_sets; ++set) {
    const uint64_t count = view.set_histogram_[set];
    if (count > geom.ways &&
        static_cast<double>(count) > options.conflict_factor * view.mean_lines_per_set_) {
      AssocSetPressure pressure;
      pressure.set = set;
      pressure.distinct_lines = count;
      pressure.lines_per_type = per_set_types[set];
      for (const auto& [type, lines] : per_set_types[set]) {
        view.conflicted_lines_per_type_[type] += lines;
      }
      view.conflicted_.push_back(std::move(pressure));
    }
  }
  std::sort(view.conflicted_.begin(), view.conflicted_.end(),
            [](const AssocSetPressure& a, const AssocSetPressure& b) {
              return a.distinct_lines > b.distinct_lines;
            });
  return view;
}

const WorkingSetRow* WorkingSetView::Find(TypeId type) const {
  for (const WorkingSetRow& row : rows_) {
    if (row.type == type) {
      return &row;
    }
  }
  return nullptr;
}

double WorkingSetView::ConflictedFraction(TypeId type) const {
  auto total_it = total_lines_per_type_.find(type);
  if (total_it == total_lines_per_type_.end() || total_it->second == 0) {
    return 0.0;
  }
  auto conf_it = conflicted_lines_per_type_.find(type);
  const uint64_t conflicted = conf_it == conflicted_lines_per_type_.end() ? 0 : conf_it->second;
  return static_cast<double>(conflicted) / static_cast<double>(total_it->second);
}

std::string WorkingSetView::ToTable(size_t top_n) const {
  TablePrinter table({"Type name", "Avg objects", "Working Set Size", "Cache lines"});
  size_t shown = 0;
  for (const WorkingSetRow& row : rows_) {
    if (shown >= top_n) {
      break;
    }
    table.AddRow({row.name, TablePrinter::Fixed(row.avg_live_objects, 1),
                  TablePrinter::Bytes(static_cast<uint64_t>(row.avg_live_bytes)),
                  TablePrinter::Fixed(row.cache_lines_touched, 0)});
    ++shown;
  }
  std::string out = table.ToString();
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "cache demand: %.0f lines of %.0f capacity; %zu conflicted assoc sets "
                "(mean %.2f lines/set)\n",
                demand_lines_, capacity_lines_, conflicted_.size(), mean_lines_per_set_);
  out += buf;
  return out;
}


std::string WorkingSetView::ToJson() const {
  JsonWriter json;
  json.BeginObject();
  json.Key("demand_lines").Number(demand_lines_);
  json.Key("capacity_lines").Number(capacity_lines_);
  json.Key("over_capacity").Bool(OverCapacity());
  json.Key("mean_lines_per_set").Number(mean_lines_per_set_);
  json.Key("rows").BeginArray();
  for (const WorkingSetRow& row : rows_) {
    json.BeginObject();
    json.Key("type").String(row.name);
    json.Key("avg_live_objects").Number(row.avg_live_objects);
    json.Key("avg_live_bytes").Number(row.avg_live_bytes);
    json.Key("cache_lines_touched").Number(row.cache_lines_touched);
    json.Key("conflicted_fraction").Number(ConflictedFraction(row.type));
    json.EndObject();
  }
  json.EndArray();
  json.Key("conflicted_sets").BeginArray();
  for (const AssocSetPressure& pressure : conflicted_) {
    json.BeginObject();
    json.Key("set").UInt(pressure.set);
    json.Key("distinct_lines").UInt(pressure.distinct_lines);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

}  // namespace dprof
