#include "src/dprof/path_trace.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "src/util/json_writer.h"
#include "src/util/table.h"

namespace dprof {

bool PathTrace::Bounces() const {
  for (const PathStep& step : steps) {
    if (step.cpu_change) {
      return true;
    }
  }
  return false;
}

bool PathTrace::HasInvalidationPattern(uint32_t line_size) const {
  // For each step, scan backwards for a write on a different "CPU epoch"
  // (separated by at least one cpu_change) to an overlapping cache line.
  for (size_t i = 1; i < steps.size(); ++i) {
    bool crossed_cpu = false;
    for (size_t j = i; j-- > 0;) {
      crossed_cpu = crossed_cpu || steps[j + 1].cpu_change;
      if (!crossed_cpu) {
        continue;
      }
      if (!steps[j].has_write) {
        continue;
      }
      const uint32_t line_lo_i = steps[i].offset_lo / line_size;
      const uint32_t line_hi_i = steps[i].offset_hi / line_size;
      const uint32_t line_lo_j = steps[j].offset_lo / line_size;
      const uint32_t line_hi_j = steps[j].offset_hi / line_size;
      if (line_lo_i <= line_hi_j && line_lo_j <= line_hi_i) {
        return true;
      }
    }
  }
  return false;
}

namespace {

// An element annotated with its CPU "epoch": the number of CPU transitions
// its own history had seen when it was recorded. Epochs normalize away
// absolute core ids, so histories of objects living on different cores can
// be merged when their migration pattern matches (paper §5.4: "equivalent
// sequence of cpu values").
struct EpochElement {
  HistoryElement elem;
  uint16_t epoch = 0;
  // Merge-ordering time, aligned at the history's end: objects of the same
  // type spend variable time parked (NIC rings, accept queues) between
  // allocation and processing, but processing-to-free is tight, so aligning
  // timelines at the free keeps equivalent accesses adjacent when merging
  // histories from different object instances.
  int64_t sort_time = 0;
};

// Annotates one history's elements with epochs and end-aligned sort times.
std::vector<EpochElement> Epochize(const ObjectHistory& history) {
  std::vector<EpochElement> out;
  out.reserve(history.elements.size());
  const int64_t end_time = history.end_time != 0
                               ? static_cast<int64_t>(history.end_time)
                               : (history.elements.empty()
                                      ? 0
                                      : static_cast<int64_t>(history.elements.back().time));
  uint16_t epoch = 0;
  uint16_t prev_cpu = 0;
  bool have_prev = false;
  for (const HistoryElement& elem : history.elements) {
    if (have_prev && elem.cpu != prev_cpu) {
      ++epoch;
    }
    prev_cpu = elem.cpu;
    have_prev = true;
    out.push_back(EpochElement{elem, epoch, static_cast<int64_t>(elem.time) - end_time});
  }
  return out;
}

// Bucketing key for merging histories into whole-object combined sequences:
// the number of CPU migrations the object made. Histories watching different
// offsets of equivalently-migrating objects merge; objects that migrated a
// different number of times (e.g. locally- vs remotely-transmitted packets)
// stay apart.
uint64_t MigrationShape(const std::vector<EpochElement>& elements) {
  uint16_t max_epoch = 0;
  for (const EpochElement& ee : elements) {
    max_epoch = std::max(max_epoch, ee.epoch);
  }
  return max_epoch;
}

// Collapses epoch-annotated elements into path steps. Elements are ordered
// by (epoch, time): the epoch axis preserves the migration structure even
// when histories from different objects interleave slightly on the time
// axis.
std::vector<PathStep> CollapseToSteps(std::vector<EpochElement> elements) {
  std::stable_sort(elements.begin(), elements.end(),
                   [](const EpochElement& a, const EpochElement& b) {
                     if (a.epoch != b.epoch) {
                       return a.epoch < b.epoch;
                     }
                     return a.sort_time < b.sort_time;
                   });
  std::vector<PathStep> steps;
  uint16_t prev_epoch = 0;
  bool have_prev = false;
  // Histories of different offsets come from different object instances, so
  // their time axes carry jitter; fold an element into any of the last few
  // steps with the same ip (the paper's "matching up common access
  // patterns") instead of requiring exact adjacency.
  constexpr size_t kFoldLookback = 3;
  for (const EpochElement& ee : elements) {
    const HistoryElement& elem = ee.elem;
    const bool cpu_change = have_prev && ee.epoch != prev_epoch;
    PathStep* fold = nullptr;
    if (!cpu_change) {
      for (size_t back = 0; back < kFoldLookback && back < steps.size(); ++back) {
        PathStep& candidate = steps[steps.size() - 1 - back];
        if (back > 0 && candidate.cpu_change) {
          break;  // never fold across a CPU transition
        }
        if (candidate.ip == elem.ip) {
          fold = &candidate;
          break;
        }
      }
    }
    if (fold != nullptr) {
      fold->offset_lo = std::min(fold->offset_lo, elem.offset);
      fold->offset_hi = std::max(fold->offset_hi, elem.offset);
      fold->has_write = fold->has_write || elem.is_write;
      fold->avg_time += (static_cast<double>(elem.time) - fold->avg_time) /
                        static_cast<double>(fold->accesses + 1);
      ++fold->accesses;
    } else {
      PathStep step;
      step.ip = elem.ip;
      step.cpu_change = cpu_change;
      step.has_write = elem.is_write;
      step.offset_lo = elem.offset;
      step.offset_hi = elem.offset;
      step.avg_time = static_cast<double>(elem.time);
      step.accesses = 1;
      steps.push_back(step);
    }
    prev_epoch = ee.epoch;
    have_prev = true;
  }
  return steps;
}

// Signature for grouping equivalent execution paths: the ip sequence plus
// cpu-change flags (paper §5.4: "same sequence of ip values and equivalent
// sequence of cpu values").
std::vector<uint64_t> SignatureOf(const std::vector<PathStep>& steps) {
  std::vector<uint64_t> sig;
  sig.reserve(steps.size());
  for (const PathStep& step : steps) {
    sig.push_back((static_cast<uint64_t>(step.ip) << 1) | (step.cpu_change ? 1 : 0));
  }
  return sig;
}

void AugmentWithSamples(TypeId type, const AccessSampleTable& samples,
                        std::vector<PathStep>* steps) {
  for (PathStep& step : *steps) {
    const RangeStats stats = samples.Aggregate(type, step.ip, step.offset_lo,
                                               step.offset_hi + 3);
    if (stats.count > 0) {
      for (int level = 0; level < 5; ++level) {
        step.level_prob[level] = stats.level_prob[level];
      }
      step.avg_latency = stats.avg_latency;
      step.has_sample_stats = true;
    }
  }
}

}  // namespace

std::vector<PathTrace> PathTraceBuilder::Build(TypeId type,
                                               const std::vector<ObjectHistory>& histories,
                                               const AccessSampleTable& samples,
                                               const PathTraceOptions& options) {
  // 1. Assemble element sequences. Default: one sequence per history.
  //    combine_sweeps: bucket histories by (sweep, migration shape) into
  //    whole-object combined sequences (for pair-sampled data).
  std::vector<std::vector<EpochElement>> sequences;
  if (options.combine_sweeps) {
    std::map<std::pair<uint32_t, uint64_t>, std::vector<EpochElement>> by_sweep;
    for (const ObjectHistory& history : histories) {
      if (history.type != type || history.elements.empty()) {
        continue;
      }
      std::vector<EpochElement> epochized = Epochize(history);
      const uint64_t shape = MigrationShape(epochized);
      auto& elems = by_sweep[{history.sweep, shape}];
      elems.insert(elems.end(), epochized.begin(), epochized.end());
    }
    for (auto& [key, elements] : by_sweep) {
      sequences.push_back(std::move(elements));
    }
  } else {
    for (const ObjectHistory& history : histories) {
      if (history.type != type || history.elements.empty()) {
        continue;
      }
      sequences.push_back(Epochize(history));
    }
  }

  // 2. Collapse each sequence and group by signature.
  std::map<std::vector<uint64_t>, PathTrace> grouped;
  for (auto& elements : sequences) {
    if (elements.empty()) {
      continue;
    }
    std::vector<PathStep> steps = CollapseToSteps(std::move(elements));
    std::vector<uint64_t> sig = SignatureOf(steps);
    auto it = grouped.find(sig);
    if (it == grouped.end()) {
      PathTrace trace;
      trace.type = type;
      trace.steps = std::move(steps);
      trace.frequency = 1;
      grouped.emplace(std::move(sig), std::move(trace));
    } else {
      PathTrace& trace = it->second;
      ++trace.frequency;
      for (size_t i = 0; i < trace.steps.size(); ++i) {
        PathStep& dst = trace.steps[i];
        const PathStep& src = steps[i];
        dst.offset_lo = std::min(dst.offset_lo, src.offset_lo);
        dst.offset_hi = std::max(dst.offset_hi, src.offset_hi);
        dst.has_write = dst.has_write || src.has_write;
        dst.avg_time += (src.avg_time - dst.avg_time) / static_cast<double>(trace.frequency);
        dst.accesses += src.accesses;
      }
    }
  }

  // 3. Augment with access-sample statistics and sort by frequency.
  std::vector<PathTrace> out;
  out.reserve(grouped.size());
  for (auto& [sig, trace] : grouped) {
    AugmentWithSamples(type, samples, &trace.steps);
    out.push_back(std::move(trace));
  }
  std::sort(out.begin(), out.end(),
            [](const PathTrace& a, const PathTrace& b) { return a.frequency > b.frequency; });
  return out;
}

size_t PathTraceBuilder::CountUniqueSignatures(const std::vector<ObjectHistory>& histories) {
  std::unordered_set<std::string> signatures;
  for (const ObjectHistory& history : histories) {
    if (history.elements.empty()) {
      continue;
    }
    std::vector<PathStep> steps = CollapseToSteps(Epochize(history));
    std::string sig;
    sig.reserve(steps.size() * 10);
    char buf[32];
    // Per-history signatures also record the watched offset: the same
    // functions touching different members count as different paths.
    std::snprintf(buf, sizeof(buf), "@%u|", history.watch_offsets[0]);
    sig += buf;
    for (const PathStep& step : steps) {
      std::snprintf(buf, sizeof(buf), "%u%c,", step.ip, step.cpu_change ? '!' : '.');
      sig += buf;
    }
    signatures.insert(std::move(sig));
  }
  return signatures.size();
}

std::string PathTraceBuilder::ToTable(const PathTrace& trace, const SymbolTable& symbols) {
  TablePrinter table({"Avg time", "Program counter", "CPU change", "Offsets",
                      "Cache hit probability", "Access time"});
  table.SetAlign(1, TablePrinter::Align::kLeft);
  table.SetAlign(4, TablePrinter::Align::kLeft);
  for (const PathStep& step : trace.steps) {
    std::string probs;
    if (step.has_sample_stats) {
      for (int level = 0; level < 5; ++level) {
        if (step.level_prob[level] >= 0.005) {
          if (!probs.empty()) {
            probs += ", ";
          }
          probs += TablePrinter::Fixed(step.level_prob[level] * 100.0, 0) + "% " +
                   ServedByName(static_cast<ServedBy>(level));
        }
      }
    } else {
      probs = "-";
    }
    char offsets[48];
    std::snprintf(offsets, sizeof(offsets), "%u-%u", step.offset_lo, step.offset_hi);
    table.AddRow({TablePrinter::Count(static_cast<uint64_t>(step.avg_time)),
                  symbols.Name(step.ip) + "()", step.cpu_change ? "yes" : "no", offsets, probs,
                  step.has_sample_stats
                      ? TablePrinter::Fixed(step.avg_latency, 0) + " cyc"
                      : "-"});
  }
  std::string out = table.ToString();
  out += "frequency: " + TablePrinter::Count(trace.frequency) + "\n";
  return out;
}


std::string PathTraceBuilder::ToJson(const PathTrace& trace, const SymbolTable& symbols) {
  JsonWriter json;
  json.BeginObject();
  json.Key("type").UInt(trace.type);
  json.Key("frequency").UInt(trace.frequency);
  json.Key("bounces").Bool(trace.Bounces());
  json.Key("steps").BeginArray();
  for (const PathStep& step : trace.steps) {
    json.BeginObject();
    json.Key("function").String(symbols.Name(step.ip));
    json.Key("cpu_change").Bool(step.cpu_change);
    json.Key("has_write").Bool(step.has_write);
    json.Key("offset_lo").UInt(step.offset_lo);
    json.Key("offset_hi").UInt(step.offset_hi);
    json.Key("avg_time").Number(step.avg_time);
    json.Key("accesses").UInt(step.accesses);
    if (step.has_sample_stats) {
      json.Key("avg_latency").Number(step.avg_latency);
    }
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

}  // namespace dprof
