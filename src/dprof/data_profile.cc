#include "src/dprof/data_profile.h"

#include <algorithm>

#include "src/util/stats.h"
#include "src/util/json_writer.h"
#include "src/util/table.h"

namespace dprof {

DataProfile DataProfile::Build(const TypeRegistry& registry, const AccessSampleTable& samples,
                               const AddressSet& addresses, uint64_t now,
                               double bounce_foreign_threshold) {
  DataProfile profile;
  const auto by_type = samples.AggregateByType();
  const double total_misses = static_cast<double>(samples.l1_miss_samples());
  for (const auto& [type, agg] : by_type) {
    DataProfileRow row;
    row.type = type;
    row.name = registry.Name(type);
    row.samples = agg.samples;
    row.miss_pct = Pct(static_cast<double>(agg.l1_misses), total_misses);
    row.bounce = agg.ForeignFraction() >= bounce_foreign_threshold;
    row.working_set_bytes = addresses.AverageLiveBytes(type, now);
    if (row.working_set_bytes == 0.0) {
      // Statically allocated types never appear in the address set; fall
      // back to the type size (one instance assumed).
      row.working_set_bytes = registry.Size(type);
    }
    if (agg.l1_misses > 0) {
      row.avg_miss_latency =
          static_cast<double>(agg.latency_sum) / static_cast<double>(agg.samples);
    }
    profile.rows_.push_back(std::move(row));
  }
  std::sort(profile.rows_.begin(), profile.rows_.end(),
            [](const DataProfileRow& a, const DataProfileRow& b) {
              return a.miss_pct > b.miss_pct;
            });
  return profile;
}

const DataProfileRow* DataProfile::Find(TypeId type) const {
  for (const DataProfileRow& row : rows_) {
    if (row.type == type) {
      return &row;
    }
  }
  return nullptr;
}

std::vector<TypeId> DataProfile::TopTypes(size_t count) const {
  std::vector<TypeId> out;
  for (const DataProfileRow& row : rows_) {
    if (out.size() >= count) {
      break;
    }
    out.push_back(row.type);
  }
  return out;
}

std::string DataProfile::ToTable(size_t top_n) const {
  TablePrinter table({"Type name", "Working Set Size", "% of all L1 misses", "Bounce"});
  double total_pct = 0.0;
  double total_bytes = 0.0;
  size_t shown = 0;
  for (const DataProfileRow& row : rows_) {
    if (shown >= top_n) {
      break;
    }
    table.AddRow({row.name, TablePrinter::Bytes(static_cast<uint64_t>(row.working_set_bytes)),
                  TablePrinter::Percent(row.miss_pct), row.bounce ? "yes" : "no"});
    total_pct += row.miss_pct;
    total_bytes += row.working_set_bytes;
    ++shown;
  }
  table.AddRow({"Total", TablePrinter::Bytes(static_cast<uint64_t>(total_bytes)),
                TablePrinter::Percent(total_pct), "-"});
  return table.ToString();
}


std::string DataProfile::ToJson() const {
  JsonWriter json;
  json.BeginArray();
  for (const DataProfileRow& row : rows_) {
    json.BeginObject();
    json.Key("type").String(row.name);
    json.Key("working_set_bytes").Number(row.working_set_bytes);
    json.Key("miss_pct").Number(row.miss_pct);
    json.Key("bounce").Bool(row.bounce);
    json.Key("samples").UInt(row.samples);
    json.Key("avg_miss_latency").Number(row.avg_miss_latency);
    json.EndObject();
  }
  json.EndArray();
  return json.str();
}

}  // namespace dprof
