// Object access histories (paper §5.3, Table 5.2).
//
// DProf monitors one object at a time: when an object of the target type is
// allocated, it reserves it with the memory subsystem, broadcasts debug-
// register setup to every core, and then records {offset, ip, cpu, time}
// for every load/store to the watched 4-byte window(s) until the object is
// freed. Whole-object coverage is stitched together across many monitored
// objects: a "history set" is a sweep of histories covering every offset of
// the type once (single mode), or every offset pair (pair-sampling mode,
// used to recover inter-offset ordering — paper §6.4, Table 6.10).
//
// The collector also accounts the paper's Table 6.9 overhead breakdown:
// per-access interrupt cost, per-object memory-reservation cost, and the
// cross-core debug-register setup broadcast.

#ifndef DPROF_SRC_DPROF_HISTORY_H_
#define DPROF_SRC_DPROF_HISTORY_H_

#include <cstdint>
#include <vector>

#include "src/alloc/slab_allocator.h"
#include "src/pmu/debug_registers.h"
#include "src/util/rng.h"

namespace dprof {

// One recorded access to a watched offset (paper Table 5.2, plus the
// read/write flag the debug-register status provides).
struct HistoryElement {
  uint32_t offset = 0;
  FunctionId ip = kInvalidFunction;
  uint16_t cpu = 0;
  bool is_write = false;
  uint64_t time = 0;  // cycles since the object's allocation
};

struct ObjectHistory {
  TypeId type = kInvalidType;
  Addr base = kNullAddr;
  uint64_t alloc_time = 0;
  uint64_t end_time = 0;  // free time relative to alloc_time (or last element)
  uint32_t watch_offsets[2] = {0, 0};
  int num_watch = 1;
  uint32_t sweep = 0;  // which history set this history belongs to
  bool complete = false;
  std::vector<HistoryElement> elements;
};

struct HistoryCollectorOptions {
  uint32_t granularity = 4;  // bytes per debug-register window
  bool pair_mode = false;
  uint32_t max_sets = 0;                     // stop after N sets; 0 = no limit
  uint32_t max_elements_per_history = 8192;  // guard for hot offsets
  uint64_t max_monitor_cycles = 50'000'000;  // guard for long-lived objects
  // Restrict the sweep to these offsets (e.g. the hot members found in the
  // access samples — paper §6.4). Empty = all offsets.
  std::vector<uint32_t> member_offsets;
  // When ready to monitor, skip a uniform-random number of allocations in
  // [0, arm_skip_max) before arming, so monitoring decorrelates from the
  // workload's allocation order (a request often allocates several objects
  // of the same type in a fixed sequence).
  uint32_t arm_skip_max = 8;
  // Minimum cycles between finishing one object and arming the next: paces
  // the 220k-cycle setup broadcast so short-lived hot types do not drown
  // the machine in IPIs (the paper's fastest collection rate, 4,600
  // histories/s, corresponds to roughly one setup per 217k cycles).
  uint64_t min_rearm_cycles = 150'000;
  // Debug registers watch addresses, not allocations: when a type's objects
  // never recycle (no allocation events arrive to trigger arming), Poll()
  // arms the sweep on already-live objects instead of spinning to the phase
  // cap. Requires the collector to be built with an allocator.
  bool arm_live_objects = true;
  uint64_t seed = 0xdeb6;
};

struct HistoryOverhead {
  uint64_t interrupt_cycles = 0;
  uint64_t reserve_cycles = 0;
  uint64_t comm_cycles = 0;
  uint64_t objects_profiled = 0;
  uint64_t elements_recorded = 0;

  uint64_t Total() const { return interrupt_cycles + reserve_cycles + comm_cycles; }
};

class HistoryCollector final : public AllocationObserver {
 public:
  // The collector drives `regs` (it installs its own handler) and charges
  // setup costs to `machine`'s cores. With an `allocator`, Poll() can arm
  // already-live objects of types that never allocate (see
  // HistoryCollectorOptions::arm_live_objects).
  HistoryCollector(Machine* machine, DebugRegisterFile* regs, TypeId type, uint32_t object_size,
                   const HistoryCollectorOptions& options = {},
                   SlabAllocator* allocator = nullptr);
  ~HistoryCollector();

  HistoryCollector(const HistoryCollector&) = delete;
  HistoryCollector& operator=(const HistoryCollector&) = delete;

  // AllocationObserver:
  void OnAlloc(TypeId type, Addr base, uint32_t size, int core, uint64_t now) override;
  void OnFree(TypeId type, Addr base, uint32_t size, int core, uint64_t now) override;

  // Periodic trigger, called by the session between run slices. Times out a
  // stale in-flight object, and — if this collector's type has produced no
  // allocation events — arms the debug registers on an already-live object
  // so non-recycling types (conflict_demo's hot statics) still get their
  // sweep instead of idling to the phase cap.
  void Poll(uint64_t now);

  // Abandons any in-flight monitoring (call before detaching).
  void Stop();

  bool done() const {
    return options_.max_sets != 0 && sets_completed_ >= options_.max_sets;
  }
  uint32_t sets_completed() const { return sets_completed_; }
  uint32_t histories_per_set() const;
  const std::vector<ObjectHistory>& histories() const { return histories_; }
  std::vector<ObjectHistory> TakeHistories() { return std::move(histories_); }
  const HistoryOverhead& overhead() const { return overhead_; }
  TypeId type() const { return type_; }

 private:
  void OnDebugHit(const AccessEvent& event, int reg);
  void BeginMonitoring(Addr base, int core, uint64_t now);
  void FinishMonitoring(bool complete);
  void AdvanceScan();
  uint32_t NumOffsets() const { return static_cast<uint32_t>(offsets_.size()); }

  Machine* machine_;
  DebugRegisterFile* regs_;
  TypeId type_;
  uint32_t object_size_;
  HistoryCollectorOptions options_;
  SlabAllocator* allocator_ = nullptr;
  uint64_t alloc_events_seen_ = 0;
  size_t live_cursor_ = 0;

  std::vector<uint32_t> offsets_;  // offsets in the sweep
  uint32_t scan_i_ = 0;            // current offset index (single + pair mode)
  uint32_t scan_j_ = 1;            // second offset index (pair mode)
  uint32_t sets_completed_ = 0;

  bool monitoring_ = false;
  uint64_t earliest_arm_ = 0;
  uint32_t arm_skip_ = 0;
  Rng rng_;
  ObjectHistory current_;
  std::vector<ObjectHistory> histories_;
  HistoryOverhead overhead_;
};

}  // namespace dprof

#endif  // DPROF_SRC_DPROF_HISTORY_H_
