// Path traces (paper §4, Table 4.1; construction per §5.4).
//
// A path trace summarizes the life of objects of one type along one
// execution path: the sequence of program counters that touched the object,
// whether each was on a new CPU, the offsets accessed, per-step cache-hit
// probabilities and latencies (joined in from the access samples), and the
// frequency with which the path was observed.
//
// Construction: object access histories of one history set (a sweep
// covering every watched offset) are merged on the time-since-allocation
// axis into one combined history per set; consecutive elements with the
// same ip and cpu collapse into steps; sets whose step signature (ip
// sequence + cpu-change flags) matches are aggregated, and the signature's
// multiplicity is the path frequency.

#ifndef DPROF_SRC_DPROF_PATH_TRACE_H_
#define DPROF_SRC_DPROF_PATH_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/dprof/access_sample.h"
#include "src/dprof/history.h"
#include "src/machine/symbol_table.h"

namespace dprof {

struct PathStep {
  FunctionId ip = kInvalidFunction;
  bool cpu_change = false;
  bool has_write = false;
  uint32_t offset_lo = 0;
  uint32_t offset_hi = 0;
  double avg_time = 0.0;  // cycles since allocation
  uint64_t accesses = 0;
  // Augmented from access samples (paper §5.4):
  double level_prob[5] = {0, 0, 0, 0, 0};
  double avg_latency = 0.0;
  bool has_sample_stats = false;
};

struct PathTrace {
  TypeId type = kInvalidType;
  std::vector<PathStep> steps;
  uint64_t frequency = 0;

  bool Bounces() const;
  // Whether any step's cache line [offset/64] was previously written by a
  // different CPU — the invalidation-miss signature (paper §4.3).
  bool HasInvalidationPattern(uint32_t line_size = 64) const;
};

struct PathTraceOptions {
  // When false (default), each object access history becomes its own
  // ordered path — always truthful, since a history is a real ordered
  // record of one offset's accesses; histories with the same signature
  // aggregate, so their offset ranges union naturally.
  //
  // When true, all histories of one history set are merged into combined
  // whole-object paths on the (epoch, end-aligned time) axis. Inter-offset
  // order from single-offset histories is under-determined — this mode is
  // intended for pair-sampled histories, which is exactly why the paper
  // introduces pairwise sampling (§5.3).
  bool combine_sweeps = false;
};

class PathTraceBuilder {
 public:
  // Builds path traces, augmented with sample stats.
  static std::vector<PathTrace> Build(TypeId type,
                                      const std::vector<ObjectHistory>& histories,
                                      const AccessSampleTable& samples,
                                      const PathTraceOptions& options = {});

  // Distinct per-history path signatures (ip + cpu-change sequence of a
  // single offset's history). This is the "unique paths" metric of paper
  // Figure 6-3.
  static size_t CountUniqueSignatures(const std::vector<ObjectHistory>& histories);

  // Renders a Table 4.1-style listing of one path trace.
  static std::string ToTable(const PathTrace& trace, const SymbolTable& symbols);

  // Machine-readable form of one path trace.
  static std::string ToJson(const PathTrace& trace, const SymbolTable& symbols);
};

}  // namespace dprof

#endif  // DPROF_SRC_DPROF_PATH_TRACE_H_
