// Access samples (paper §5.1, Table 5.1).
//
// Each IBS interrupt yields one access sample: {type, offset, ip, cpu,
// cache-level + latency stats}. DProf aggregates samples by (type, offset,
// ip) — the key its path-trace augmentation step joins on (§5.4) — instead
// of keeping the raw 88-byte records in RAM.

#ifndef DPROF_SRC_DPROF_ACCESS_SAMPLE_H_
#define DPROF_SRC_DPROF_ACCESS_SAMPLE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/alloc/slab_allocator.h"
#include "src/pmu/ibs_unit.h"
#include "src/util/types.h"

namespace dprof {

struct SampleKey {
  TypeId type = kInvalidType;
  uint32_t offset = 0;
  FunctionId ip = kInvalidFunction;

  bool operator==(const SampleKey& other) const {
    return type == other.type && offset == other.offset && ip == other.ip;
  }
};

struct SampleKeyHash {
  size_t operator()(const SampleKey& k) const {
    uint64_t h = k.type;
    h = h * 0x9e3779b97f4a7c15ull + k.offset;
    h = h * 0x9e3779b97f4a7c15ull + k.ip;
    return static_cast<size_t>(h ^ (h >> 32));
  }
};

// Aggregated statistics for one (type, offset, ip) cell.
struct SampleStats {
  uint64_t count = 0;
  uint64_t level_counts[5] = {0, 0, 0, 0, 0};  // indexed by ServedBy
  uint64_t latency_sum = 0;
  uint64_t writes = 0;
  uint32_t cpu_mask = 0;
};

// Aggregate over a (type, ip, offset-range) used to augment path steps.
struct RangeStats {
  uint64_t count = 0;
  double level_prob[5] = {0, 0, 0, 0, 0};
  double avg_latency = 0.0;
};

// Per-type aggregate used by the data profile view.
struct TypeSampleAgg {
  uint64_t samples = 0;
  uint64_t l1_misses = 0;
  uint64_t foreign = 0;
  uint64_t dram = 0;
  uint64_t latency_sum = 0;
  uint32_t cpu_mask = 0;

  double ForeignFraction() const {
    return samples == 0 ? 0.0 : static_cast<double>(foreign) / static_cast<double>(samples);
  }
};

class AccessSampleTable {
 public:
  // Records one IBS sample, resolving its data address through the typed
  // allocator. Unresolvable addresses (stack, unknown regions) are counted
  // but not attributed.
  void Record(const IbsSample& sample, const ResolveResult& resolved);

  uint64_t total_samples() const { return total_samples_; }
  uint64_t unresolved_samples() const { return unresolved_; }
  uint64_t l1_miss_samples() const { return l1_misses_; }

  const std::unordered_map<SampleKey, SampleStats, SampleKeyHash>& cells() const {
    return cells_;
  }

  std::unordered_map<TypeId, TypeSampleAgg> AggregateByType() const;

  // Aggregates all cells with this type/ip whose offset falls in
  // [offset_lo, offset_hi].
  RangeStats Aggregate(TypeId type, FunctionId ip, uint32_t offset_lo,
                       uint32_t offset_hi) const;

  // Offsets of this type with the most samples — DProf uses these to decide
  // which object members are worth pairwise profiling (paper §6.4).
  std::vector<uint32_t> HotOffsets(TypeId type, size_t max_offsets) const;

  void Clear();

 private:
  std::unordered_map<SampleKey, SampleStats, SampleKeyHash> cells_;
  // Secondary index: (type, ip) -> keys, for range aggregation.
  std::unordered_map<uint64_t, std::vector<SampleKey>> by_type_ip_;
  uint64_t total_samples_ = 0;
  uint64_t unresolved_ = 0;
  uint64_t l1_misses_ = 0;

  static uint64_t TypeIpKey(TypeId type, FunctionId ip) {
    return (static_cast<uint64_t>(type) << 32) | ip;
  }
};

}  // namespace dprof

#endif  // DPROF_SRC_DPROF_ACCESS_SAMPLE_H_
