// The address set (paper §4, §5): the address and type of every object
// allocated during execution, plus live-count accounting.
//
// DProf uses the address set to (a) estimate per-type working-set sizes and
// lifetimes and (b) map objects onto cache associativity sets. Per the
// paper, storing addresses modulo the maximum cache size is sufficient; we
// additionally reservoir-sample per type to bound memory.

#ifndef DPROF_SRC_DPROF_ADDRESS_SET_H_
#define DPROF_SRC_DPROF_ADDRESS_SET_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/alloc/slab_allocator.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace dprof {

struct AddressSetOptions {
  uint64_t modulo = 16 * 1024 * 1024;  // max cache size of interest
  size_t reservoir_per_type = 4096;
  uint64_t seed = 0x5eed;
};

class AddressSet final : public AllocationObserver {
 public:
  explicit AddressSet(const AddressSetOptions& options = {});

  // AllocationObserver:
  void OnAlloc(TypeId type, Addr base, uint32_t size, int core, uint64_t now) override;
  void OnFree(TypeId type, Addr base, uint32_t size, int core, uint64_t now) override;

  uint64_t AllocCount(TypeId type) const;
  uint64_t LiveCount(TypeId type) const;
  uint32_t ObjectSize(TypeId type) const;

  // Average concurrently-live bytes of `type` over [0, now].
  double AverageLiveBytes(TypeId type, uint64_t now) const;

  // Mean allocate-to-free lifetime in cycles (completed objects only).
  double AverageLifetime(TypeId type) const;

  // Sampled object base addresses (modulo `options.modulo`).
  const std::vector<Addr>& AddressSamples(TypeId type) const;

  std::vector<TypeId> KnownTypes() const;

 private:
  struct PerType {
    uint64_t allocs = 0;
    uint64_t frees = 0;
    uint64_t live = 0;
    uint32_t obj_size = 0;
    double live_integral = 0.0;
    uint64_t last_event = 0;
    RunningStat lifetime;
    std::vector<Addr> samples;
  };

  PerType& Entry(TypeId type);

  AddressSetOptions options_;
  Rng rng_;
  std::unordered_map<TypeId, PerType> per_type_;
  std::unordered_map<Addr, uint64_t> live_alloc_time_;
  std::vector<Addr> empty_;
};

}  // namespace dprof

#endif  // DPROF_SRC_DPROF_ADDRESS_SET_H_
