#include "src/dprof/miss_classifier.h"

#include <algorithm>

#include "src/util/stats.h"
#include "src/util/json_writer.h"
#include "src/util/table.h"

namespace dprof {

const char* MissKindName(MissKind kind) {
  switch (kind) {
    case MissKind::kNone:
      return "none";
    case MissKind::kInvalidation:
      return "invalidation";
    case MissKind::kConflict:
      return "conflict";
    case MissKind::kCapacity:
      return "capacity";
  }
  return "?";
}

std::vector<MissClassRow> MissClassifier::Build(
    const TypeRegistry& registry, const AccessSampleTable& samples,
    const WorkingSetView& working_set,
    const std::vector<std::vector<PathTrace>>& traces_per_type,
    const MissClassifierOptions& options) {
  const auto by_type = samples.AggregateByType();

  // Are conflicts concentrated in a few sets (conflict regime) or spread
  // uniformly (capacity regime)? Paper §4.3's distinction.
  const size_t num_sets = working_set.set_histogram().size();
  const bool conflicts_concentrated =
      !working_set.conflicted_sets().empty() &&
      static_cast<double>(working_set.conflicted_sets().size()) <=
          options.concentrated_sets_fraction * static_cast<double>(num_sets);
  const bool over_capacity = working_set.OverCapacity();

  std::vector<MissClassRow> rows;
  for (const auto& [type, agg] : by_type) {
    if (agg.l1_misses == 0) {
      continue;
    }
    MissClassRow row;
    row.type = type;
    row.name = registry.Name(type);
    row.miss_samples = agg.l1_misses;

    // Invalidation evidence: foreign-cache fetches among this type's misses.
    double invalidation =
        static_cast<double>(agg.foreign) / static_cast<double>(agg.l1_misses);
    for (const auto& traces : traces_per_type) {
      for (const PathTrace& trace : traces) {
        if (trace.type == type && trace.HasInvalidationPattern()) {
          row.path_invalidation_evidence = true;
        }
      }
    }

    // Conflict evidence: this type's lines sit in oversubscribed sets.
    double conflict = 0.0;
    if (conflicts_concentrated) {
      conflict = working_set.ConflictedFraction(type);
    }

    // Capacity: non-invalidation misses when demand exceeds capacity and
    // pressure is uniform.
    double capacity = 0.0;
    if (over_capacity && !conflicts_concentrated) {
      capacity = 1.0 - invalidation;
    } else if (over_capacity) {
      capacity = std::max(0.0, 1.0 - invalidation - conflict);
    }

    // Normalize to percentages (shares are estimates and may overlap).
    double total = invalidation + conflict + capacity;
    if (total <= 0.0) {
      // No structural evidence: attribute to capacity-ish background.
      capacity = 1.0;
      total = 1.0;
    }
    row.invalidation_pct = 100.0 * invalidation / total;
    row.conflict_pct = 100.0 * conflict / total;
    row.capacity_pct = 100.0 * capacity / total;

    row.dominant = MissKind::kInvalidation;
    double best = row.invalidation_pct;
    if (row.conflict_pct > best) {
      row.dominant = MissKind::kConflict;
      best = row.conflict_pct;
    }
    if (row.capacity_pct > best) {
      row.dominant = MissKind::kCapacity;
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const MissClassRow& a, const MissClassRow& b) {
    return a.miss_samples > b.miss_samples;
  });
  return rows;
}

std::string MissClassifier::ToTable(const std::vector<MissClassRow>& rows) {
  TablePrinter table(
      {"Type name", "Invalidation", "Conflict", "Capacity", "Dominant", "Miss samples"});
  table.SetAlign(4, TablePrinter::Align::kLeft);
  for (const MissClassRow& row : rows) {
    table.AddRow({row.name, TablePrinter::Percent(row.invalidation_pct, 1),
                  TablePrinter::Percent(row.conflict_pct, 1),
                  TablePrinter::Percent(row.capacity_pct, 1), MissKindName(row.dominant),
                  TablePrinter::Count(row.miss_samples)});
  }
  return table.ToString();
}


std::string MissClassifier::ToJson(const std::vector<MissClassRow>& rows) {
  JsonWriter json;
  json.BeginArray();
  for (const MissClassRow& row : rows) {
    json.BeginObject();
    json.Key("type").String(row.name);
    json.Key("invalidation_pct").Number(row.invalidation_pct);
    json.Key("conflict_pct").Number(row.conflict_pct);
    json.Key("capacity_pct").Number(row.capacity_pct);
    json.Key("dominant").String(MissKindName(row.dominant));
    json.Key("miss_samples").UInt(row.miss_samples);
    json.Key("path_invalidation_evidence").Bool(row.path_invalidation_evidence);
    json.EndObject();
  }
  json.EndArray();
  return json.str();
}

}  // namespace dprof
