#include "src/dprof/history.h"

#include <algorithm>

#include "src/util/check.h"

namespace dprof {

HistoryCollector::HistoryCollector(Machine* machine, DebugRegisterFile* regs, TypeId type,
                                   uint32_t object_size, const HistoryCollectorOptions& options,
                                   SlabAllocator* allocator)
    : machine_(machine),
      regs_(regs),
      type_(type),
      object_size_(object_size),
      options_(options),
      allocator_(allocator),
      rng_(options.seed) {
  DPROF_CHECK(options_.granularity >= 1 &&
              options_.granularity <= DebugRegisterFile::kMaxWatchBytes);
  if (!options_.member_offsets.empty()) {
    offsets_ = options_.member_offsets;
    std::sort(offsets_.begin(), offsets_.end());
  } else {
    for (uint32_t off = 0; off < object_size_; off += options_.granularity) {
      offsets_.push_back(off);
    }
  }
  DPROF_CHECK(!offsets_.empty());
  if (options_.pair_mode) {
    DPROF_CHECK(offsets_.size() >= 2);
  }
  regs_->SetHandler([this](const AccessEvent& event, int reg) { OnDebugHit(event, reg); });
  // OnAlloc arms debug registers from a commit-time allocation callback —
  // mid-epoch, invisible to the engine's epoch-start elision gate — so the
  // engine must keep materializing access records while this collector
  // lives (see Machine::AddElisionInhibitor).
  machine_->AddElisionInhibitor();
}

HistoryCollector::~HistoryCollector() { machine_->RemoveElisionInhibitor(); }

uint32_t HistoryCollector::histories_per_set() const {
  const uint32_t n = NumOffsets();
  return options_.pair_mode ? n * (n - 1) / 2 : n;
}

void HistoryCollector::OnAlloc(TypeId type, Addr base, uint32_t size, int core, uint64_t now) {
  (void)size;
  // Allocation events double as a timeout check: a watched object whose
  // monitored offset has gone cold (or that is never freed) must not stall
  // the sweep forever.
  if (monitoring_ && now > current_.alloc_time &&
      now - current_.alloc_time > options_.max_monitor_cycles) {
    FinishMonitoring(false);
  }
  if (type != type_ || monitoring_ || done()) {
    if (type == type_) {
      ++alloc_events_seen_;
    }
    return;
  }
  ++alloc_events_seen_;
  if (now < earliest_arm_) {
    return;
  }
  if (arm_skip_ > 0) {
    --arm_skip_;
    return;
  }
  arm_skip_ = options_.arm_skip_max == 0
                  ? 0
                  : static_cast<uint32_t>(rng_.Below(options_.arm_skip_max));
  BeginMonitoring(base, core, now);
}

void HistoryCollector::BeginMonitoring(Addr base, int core, uint64_t now) {
  monitoring_ = true;
  current_ = ObjectHistory();
  current_.type = type_;
  current_.base = base;
  current_.alloc_time = now;
  current_.sweep = sets_completed_;
  current_.watch_offsets[0] = offsets_[scan_i_];
  current_.num_watch = 1;

  // Reserve the object with the memory subsystem.
  const DebugRegCostModel& costs = regs_->costs();
  machine_->ChargeCycles(core, costs.reserve_cycles);
  overhead_.reserve_cycles += costs.reserve_cycles;

  // Broadcast debug-register setup to every core.
  machine_->ChargeCycles(core, costs.setup_initiator_cycles);
  overhead_.comm_cycles += costs.setup_initiator_cycles;
  for (int c = 0; c < machine_->num_cores(); ++c) {
    if (c != core) {
      machine_->ChargeCycles(c, costs.setup_ipi_cycles);
      overhead_.comm_cycles += costs.setup_ipi_cycles;
    }
  }

  regs_->Arm(0, base + offsets_[scan_i_], options_.granularity);
  if (options_.pair_mode) {
    current_.watch_offsets[1] = offsets_[scan_j_];
    current_.num_watch = 2;
    regs_->Arm(1, base + offsets_[scan_j_], options_.granularity);
  }
  // Element timestamps are relative to when monitoring actually engages,
  // i.e. after the reservation and setup broadcast completed.
  current_.alloc_time = machine_->CoreClock(core);
  ++overhead_.objects_profiled;
}

void HistoryCollector::OnDebugHit(const AccessEvent& event, int reg) {
  if (!monitoring_) {
    return;
  }
  const DebugRegCostModel& costs = regs_->costs();
  overhead_.interrupt_cycles += costs.interrupt_cycles;

  HistoryElement elem;
  elem.offset = reg == 0 ? current_.watch_offsets[0] : current_.watch_offsets[1];
  elem.ip = event.ip;
  elem.cpu = static_cast<uint16_t>(event.core);
  elem.is_write = event.is_write;
  // Cores are only loosely synchronized: a hit can arrive from a core whose
  // clock still trails the monitor's post-broadcast start time.
  elem.time = event.now > current_.alloc_time ? event.now - current_.alloc_time : 0;
  current_.elements.push_back(elem);
  ++overhead_.elements_recorded;

  if (current_.elements.size() >= options_.max_elements_per_history ||
      elem.time > options_.max_monitor_cycles) {
    FinishMonitoring(false);
  }
}

void HistoryCollector::OnFree(TypeId type, Addr base, uint32_t size, int core, uint64_t now) {
  (void)size;
  (void)core;
  if (!monitoring_ || type != type_ || base != current_.base) {
    return;
  }
  if (now > current_.alloc_time) {
    current_.end_time = now - current_.alloc_time;
  }
  FinishMonitoring(true);
}

void HistoryCollector::FinishMonitoring(bool complete) {
  regs_->Disarm(0);
  if (options_.pair_mode) {
    regs_->Disarm(1);
  }
  monitoring_ = false;
  earliest_arm_ = machine_->MaxClock() + options_.min_rearm_cycles;
  current_.complete = complete;
  if (current_.end_time == 0 && !current_.elements.empty()) {
    current_.end_time = current_.elements.back().time;
  }
  histories_.push_back(std::move(current_));
  current_ = ObjectHistory();
  AdvanceScan();
}

void HistoryCollector::AdvanceScan() {
  if (options_.pair_mode) {
    ++scan_j_;
    if (scan_j_ >= NumOffsets()) {
      ++scan_i_;
      scan_j_ = scan_i_ + 1;
      if (scan_j_ >= NumOffsets()) {
        scan_i_ = 0;
        scan_j_ = 1;
        ++sets_completed_;
      }
    }
  } else {
    ++scan_i_;
    if (scan_i_ >= NumOffsets()) {
      scan_i_ = 0;
      ++sets_completed_;
    }
  }
}

void HistoryCollector::Poll(uint64_t now) {
  // Timeout for a stale in-flight object; with no allocation events for any
  // type, OnAlloc's timeout check never runs, so it must also live here.
  if (monitoring_ && now > current_.alloc_time &&
      now - current_.alloc_time > options_.max_monitor_cycles) {
    FinishMonitoring(false);
  }
  if (!options_.arm_live_objects || allocator_ == nullptr || monitoring_ || done()) {
    return;
  }
  if (alloc_events_seen_ > 0 || now < earliest_arm_) {
    // The type recycles (allocation-triggered arming works), or we are
    // still pacing the setup broadcast.
    return;
  }
  const std::vector<Addr> live = allocator_->LiveObjects(type_, 4096);
  if (live.empty()) {
    return;
  }
  const Addr base = live[live_cursor_ % live.size()];
  ++live_cursor_;
  BeginMonitoring(base, 0, now);
}

void HistoryCollector::Stop() {
  if (monitoring_) {
    FinishMonitoring(false);
  }
  regs_->SetHandler(nullptr);
  regs_->DisarmAll();
}

}  // namespace dprof
