// The data profile view (paper §3, Tables 6.1 / 6.4 / 6.5): data types
// ranked by their share of all L1 misses, with working-set size and a
// CPU-bounce flag.

#ifndef DPROF_SRC_DPROF_DATA_PROFILE_H_
#define DPROF_SRC_DPROF_DATA_PROFILE_H_

#include <string>
#include <vector>

#include "src/alloc/type_registry.h"
#include "src/dprof/access_sample.h"
#include "src/dprof/address_set.h"

namespace dprof {

struct DataProfileRow {
  TypeId type = kInvalidType;
  std::string name;
  double working_set_bytes = 0.0;  // average concurrently-live bytes
  double miss_pct = 0.0;           // share of all L1-miss samples
  bool bounce = false;             // objects move between CPUs
  uint64_t samples = 0;
  double avg_miss_latency = 0.0;
};

class DataProfile {
 public:
  // `bounce_foreign_threshold`: a type bounces if at least this fraction of
  // its samples were served from another core's cache.
  static DataProfile Build(const TypeRegistry& registry, const AccessSampleTable& samples,
                           const AddressSet& addresses, uint64_t now,
                           double bounce_foreign_threshold = 0.005);

  const std::vector<DataProfileRow>& rows() const { return rows_; }

  // Row for `type`, or nullptr.
  const DataProfileRow* Find(TypeId type) const;

  // Types ordered by miss share (the "top data types" DProf would suggest
  // profiling further).
  std::vector<TypeId> TopTypes(size_t count) const;

  // Renders the Table 6.1-style view.
  std::string ToTable(size_t top_n) const;

  // Machine-readable form: an array of row objects, ranked by miss share.
  std::string ToJson() const;

 private:
  std::vector<DataProfileRow> rows_;
};

}  // namespace dprof

#endif  // DPROF_SRC_DPROF_DATA_PROFILE_H_
