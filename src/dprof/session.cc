#include "src/dprof/session.h"

namespace dprof {

DProfSession::DProfSession(Machine* machine, SlabAllocator* allocator,
                           const DProfOptions& options)
    : machine_(machine), allocator_(allocator), options_(options), addresses_(options.address_set) {
  ibs_ = std::make_unique<IbsUnit>(machine_->num_cores(), options_.ibs);
  ibs_->SetHandler([this](const IbsSample& sample) {
    // The interrupt handler resolves the data address to its type via the
    // allocator (paper §5.2); the cycle cost is part of the IBS config.
    samples_.Record(sample, allocator_->Resolve(sample.vaddr));
  });
  debug_regs_ = std::make_unique<DebugRegisterFile>();
  debug_regs_->set_costs(options_.debug_costs);

  machine_->AddPmuHook(ibs_.get());
  machine_->AddPmuHook(debug_regs_.get());
  allocator_->AddObserver(&addresses_);
  // Static objects are knowable from debug info at attach time (paper §5.2),
  // no matter when the workload registered them.
  allocator_->ReplayStatics(&addresses_);
}

DProfSession::~DProfSession() {
  allocator_->RemoveObserver(&addresses_);
  machine_->RemovePmuHook(ibs_.get());
  machine_->RemovePmuHook(debug_regs_.get());
}

void DProfSession::CollectAccessSamples(uint64_t cycles) {
  ibs_->SetPeriod(options_.ibs_period_ops);
  machine_->RunFor(cycles);
  ibs_->SetPeriod(0);
  profile_end_ = machine_->MaxClock();
}

uint64_t DProfSession::CollectHistories(TypeId type, uint32_t sets) {
  HistoryCollectorOptions history_options = options_.history;
  history_options.max_sets = sets;

  // While a mailbox-fed type is under study, ask the executor for tight
  // epochs: its objects are delivered through epoch-boundary mailboxes, so
  // coarse epochs would distort exactly the reuse distances the histories
  // are meant to capture. Restored below so other phases keep the cheap
  // default.
  const bool prev_focus = machine_->epoch_focus();
  if (options_.adaptive_epoch_focus && machine_->IsMailboxFedType(type)) {
    machine_->SetEpochFocus(true);
  }

  const uint32_t object_size = allocator_->registry().Size(type);
  HistoryCollector collector(machine_, debug_regs_.get(), type, object_size, history_options,
                             allocator_);
  allocator_->AddObserver(&collector);

  const uint64_t start = machine_->MaxClock();
  const uint64_t deadline = start + options_.history_phase_max_cycles;
  while (!collector.done() && machine_->MaxClock() < deadline) {
    machine_->RunFor(200'000);
    // For types whose objects never recycle, arm already-live objects
    // (debug-register semantics: watchpoints address memory, not
    // allocations). After the first slice, a recycling type has produced
    // allocation events and Poll leaves arming to OnAlloc.
    collector.Poll(machine_->MaxClock());
  }
  collector.Stop();
  allocator_->RemoveObserver(&collector);
  machine_->SetEpochFocus(prev_focus);
  const uint64_t elapsed = machine_->MaxClock() - start;

  auto& stored = histories_[type];
  auto collected = collector.TakeHistories();
  for (auto& history : collected) {
    stored.push_back(std::move(history));
  }
  HistoryOverhead& overhead = overheads_[type];
  const HistoryOverhead& delta = collector.overhead();
  overhead.interrupt_cycles += delta.interrupt_cycles;
  overhead.reserve_cycles += delta.reserve_cycles;
  overhead.comm_cycles += delta.comm_cycles;
  overhead.objects_profiled += delta.objects_profiled;
  overhead.elements_recorded += delta.elements_recorded;
  profile_end_ = machine_->MaxClock();
  return elapsed;
}

void DProfSession::CollectHistoriesForTopTypes(size_t top_k, uint32_t sets) {
  const DataProfile profile = BuildDataProfile();
  for (const TypeId type : profile.TopTypes(top_k)) {
    CollectHistories(type, sets);
  }
}

DataProfile DProfSession::BuildDataProfile() const {
  const uint64_t now = profile_end_ == 0 ? machine_->MaxClock() : profile_end_;
  return DataProfile::Build(allocator_->registry(), samples_, addresses_, now);
}

WorkingSetView DProfSession::BuildWorkingSet(const WorkingSetOptions& options) const {
  const uint64_t now = profile_end_ == 0 ? machine_->MaxClock() : profile_end_;
  return WorkingSetView::Build(allocator_->registry(), addresses_, samples_, now, options);
}

std::vector<PathTrace> DProfSession::BuildPathTraces(TypeId type,
                                                     const PathTraceOptions& options) const {
  return PathTraceBuilder::Build(type, histories(type), samples_, options);
}

DataFlowGraph DProfSession::BuildDataFlow(TypeId type, const DataFlowOptions& options) const {
  return DataFlowGraph::Build(BuildPathTraces(type), machine_->symbols(), options);
}

std::vector<MissClassRow> DProfSession::ClassifyMisses(
    const WorkingSetOptions& ws_options) const {
  const WorkingSetView working_set = BuildWorkingSet(ws_options);
  std::vector<std::vector<PathTrace>> traces;
  for (const auto& [type, histories] : histories_) {
    traces.push_back(PathTraceBuilder::Build(type, histories, samples_));
  }
  return MissClassifier::Build(allocator_->registry(), samples_, working_set, traces);
}

const std::vector<ObjectHistory>& DProfSession::histories(TypeId type) const {
  auto it = histories_.find(type);
  return it == histories_.end() ? empty_histories_ : it->second;
}

const HistoryOverhead& DProfSession::history_overhead(TypeId type) const {
  auto it = overheads_.find(type);
  return it == overheads_.end() ? empty_overhead_ : it->second;
}

}  // namespace dprof
