// DProfSession: end-to-end orchestration of a profiling run.
//
// Mirrors the paper's workflow (§5): while the workload runs, phase 1
// gathers access samples (IBS) and the address set (allocator hooks);
// phase 2 collects object access histories for the types the data profile
// flags, one type at a time, using the debug registers; finally the session
// builds path traces and the four views.
//
// DProf sees only what the paper's hardware exposes — IBS samples, debug
// register hits, and allocator type queries — never simulator ground truth.

#ifndef DPROF_SRC_DPROF_SESSION_H_
#define DPROF_SRC_DPROF_SESSION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/dprof/access_sample.h"
#include "src/dprof/address_set.h"
#include "src/dprof/data_flow.h"
#include "src/dprof/data_profile.h"
#include "src/dprof/history.h"
#include "src/dprof/miss_classifier.h"
#include "src/dprof/path_trace.h"
#include "src/dprof/working_set.h"
#include "src/pmu/ibs_unit.h"

namespace dprof {

struct DProfOptions {
  // IBS sampling period in ops during the access-sample phase.
  uint64_t ibs_period_ops = 200;
  IbsConfig ibs;
  DebugRegCostModel debug_costs;
  AddressSetOptions address_set;
  HistoryCollectorOptions history;
  // Safety cap for one type's history phase, in machine cycles.
  uint64_t history_phase_max_cycles = 4'000'000'000ull;
  // Ask the executor for tight epochs while a mailbox-fed type's histories
  // are being collected (Machine::SetEpochFocus). Stats-equivalence tests
  // turn this off to compare against fixed-epoch baselines.
  bool adaptive_epoch_focus = true;
};

class DProfSession {
 public:
  DProfSession(Machine* machine, SlabAllocator* allocator, const DProfOptions& options = {});
  ~DProfSession();

  DProfSession(const DProfSession&) = delete;
  DProfSession& operator=(const DProfSession&) = delete;

  // Phase 1: run the machine for `cycles` with IBS + address-set collection.
  void CollectAccessSamples(uint64_t cycles);

  // Phase 2: collect `sets` object-access-history sets for `type`. Returns
  // the elapsed machine cycles the collection took.
  uint64_t CollectHistories(TypeId type, uint32_t sets);

  // Convenience: phase 2 for the top `top_k` types of the current profile.
  void CollectHistoriesForTopTypes(size_t top_k, uint32_t sets);

  // Views.
  DataProfile BuildDataProfile() const;
  WorkingSetView BuildWorkingSet(const WorkingSetOptions& options = {}) const;
  std::vector<PathTrace> BuildPathTraces(TypeId type,
                                         const PathTraceOptions& options = {}) const;
  DataFlowGraph BuildDataFlow(TypeId type, const DataFlowOptions& options = {}) const;
  std::vector<MissClassRow> ClassifyMisses(const WorkingSetOptions& ws_options = {}) const;

  // Raw data access.
  const AccessSampleTable& samples() const { return samples_; }
  const AddressSet& addresses() const { return addresses_; }
  const std::vector<ObjectHistory>& histories(TypeId type) const;
  const HistoryOverhead& history_overhead(TypeId type) const;
  uint64_t last_profile_end() const { return profile_end_; }

  Machine& machine() { return *machine_; }
  SlabAllocator& allocator() { return *allocator_; }
  IbsUnit& ibs() { return *ibs_; }
  DebugRegisterFile& debug_registers() { return *debug_regs_; }

 private:
  Machine* machine_;
  SlabAllocator* allocator_;
  DProfOptions options_;

  std::unique_ptr<IbsUnit> ibs_;
  std::unique_ptr<DebugRegisterFile> debug_regs_;

  AccessSampleTable samples_;
  AddressSet addresses_;
  std::map<TypeId, std::vector<ObjectHistory>> histories_;
  std::map<TypeId, HistoryOverhead> overheads_;
  uint64_t profile_end_ = 0;

  std::vector<ObjectHistory> empty_histories_;
  HistoryOverhead empty_overhead_;
};

}  // namespace dprof

#endif  // DPROF_SRC_DPROF_SESSION_H_
