// The miss classification view (paper §3, §4.3): per data type, how its
// cache misses split between invalidations (true/false sharing), conflict
// misses, and capacity misses. Compulsory misses are assumed absent, as in
// the paper.
//
// Classification logic:
//  - Invalidation share: the fraction of the type's misses explained by a
//    foreign-cache fetch, corroborated by path traces showing a write from a
//    different CPU to the same cache line earlier in the object's life.
//  - Conflict share: the fraction of the type's lines living in
//    oversubscribed associativity sets (working-set view, factor-2 rule) —
//    but only when conflicts concentrate in a few sets.
//  - Capacity share: the remainder when total demand exceeds capacity and
//    pressure is roughly uniform across sets.

#ifndef DPROF_SRC_DPROF_MISS_CLASSIFIER_H_
#define DPROF_SRC_DPROF_MISS_CLASSIFIER_H_

#include <string>
#include <vector>

#include "src/dprof/access_sample.h"
#include "src/dprof/path_trace.h"
#include "src/dprof/working_set.h"

namespace dprof {

enum class MissKind { kNone, kInvalidation, kConflict, kCapacity };

const char* MissKindName(MissKind kind);

struct MissClassRow {
  TypeId type = kInvalidType;
  std::string name;
  double invalidation_pct = 0.0;
  double conflict_pct = 0.0;
  double capacity_pct = 0.0;
  MissKind dominant = MissKind::kNone;
  uint64_t miss_samples = 0;
  bool path_invalidation_evidence = false;  // corroborated by path traces
};

struct MissClassifierOptions {
  // Conflicts are "concentrated" (vs. uniform capacity pressure) when the
  // conflicted sets hold at most this fraction of all sets.
  double concentrated_sets_fraction = 0.10;
};

class MissClassifier {
 public:
  // `traces_per_type` may be empty for types without collected histories;
  // classification then relies on sample-level evidence alone.
  static std::vector<MissClassRow> Build(
      const TypeRegistry& registry, const AccessSampleTable& samples,
      const WorkingSetView& working_set,
      const std::vector<std::vector<PathTrace>>& traces_per_type,
      const MissClassifierOptions& options = {});

  static std::string ToTable(const std::vector<MissClassRow>& rows);

  // Machine-readable form: an array of row objects.
  static std::string ToJson(const std::vector<MissClassRow>& rows);
};

}  // namespace dprof

#endif  // DPROF_SRC_DPROF_MISS_CLASSIFIER_H_
