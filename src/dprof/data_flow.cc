#include "src/dprof/data_flow.h"

#include <algorithm>
#include <map>

#include "src/util/dot.h"
#include "src/util/json_writer.h"

namespace dprof {

DataFlowGraph DataFlowGraph::Build(const std::vector<PathTrace>& traces,
                                   const SymbolTable& symbols,
                                   const DataFlowOptions& options) {
  DataFlowGraph graph;
  graph.nodes_.push_back(DataFlowNode{options.alloc_label, false, 0.0, 0});
  graph.root_ = 0;
  graph.nodes_.push_back(DataFlowNode{options.free_label, false, 0.0, 0});
  graph.sink_ = 1;

  // Prefix trie: children[(node, step key)] -> node.
  std::map<std::pair<int, uint64_t>, int> children;
  // Edge lookup for frequency accumulation.
  std::map<std::pair<int, int>, size_t> edge_index;

  auto add_edge = [&](int from, int to, uint64_t freq, bool cpu_change) {
    auto it = edge_index.find({from, to});
    if (it != edge_index.end()) {
      graph.edges_[it->second].frequency += freq;
      graph.edges_[it->second].cpu_change |= cpu_change;
      return;
    }
    edge_index[{from, to}] = graph.edges_.size();
    graph.edges_.push_back(DataFlowEdge{from, to, freq, cpu_change});
  };

  for (const PathTrace& trace : traces) {
    int at = graph.root_;
    graph.nodes_[graph.root_].visits += trace.frequency;
    for (const PathStep& step : trace.steps) {
      const uint64_t key = (static_cast<uint64_t>(step.ip) << 1) | (step.cpu_change ? 1 : 0);
      auto it = children.find({at, key});
      int next;
      if (it != children.end()) {
        next = it->second;
      } else {
        DataFlowNode node;
        node.label = symbols.Name(step.ip) + "()";
        node.avg_latency = step.avg_latency;
        node.dark = step.has_sample_stats && step.avg_latency > options.dark_latency_threshold;
        next = static_cast<int>(graph.nodes_.size());
        graph.nodes_.push_back(std::move(node));
        children[{at, key}] = next;
      }
      DataFlowNode& node = graph.nodes_[next];
      node.visits += trace.frequency;
      if (step.has_sample_stats) {
        // Keep the max latency seen for this node across merged paths.
        node.avg_latency = std::max(node.avg_latency, step.avg_latency);
        node.dark = node.dark || step.avg_latency > options.dark_latency_threshold;
      }
      add_edge(at, next, trace.frequency, step.cpu_change);
      at = next;
    }
    add_edge(at, graph.sink_, trace.frequency, false);
    graph.nodes_[graph.sink_].visits += trace.frequency;
  }
  return graph;
}

std::vector<DataFlowEdge> DataFlowGraph::CpuTransitions() const {
  std::vector<DataFlowEdge> out;
  for (const DataFlowEdge& edge : edges_) {
    if (edge.cpu_change) {
      out.push_back(edge);
    }
  }
  std::sort(out.begin(), out.end(), [](const DataFlowEdge& a, const DataFlowEdge& b) {
    return a.frequency > b.frequency;
  });
  return out;
}

std::string DataFlowGraph::ToDot(const std::string& graph_name) const {
  DotWriter dot(graph_name);
  for (const DataFlowNode& node : nodes_) {
    dot.AddNode(node.label, node.dark);
  }
  for (const DataFlowEdge& edge : edges_) {
    dot.AddEdge(edge.from, edge.to, edge.frequency, edge.cpu_change);
  }
  return dot.ToString();
}

std::string DataFlowGraph::ToAscii() const {
  // Depth-first rendering of the trie; shared sink printed inline.
  std::string out;
  std::vector<std::vector<const DataFlowEdge*>> adjacency(nodes_.size());
  for (const DataFlowEdge& edge : edges_) {
    adjacency[edge.from].push_back(&edge);
  }
  for (auto& edges : adjacency) {
    std::sort(edges.begin(), edges.end(), [](const DataFlowEdge* a, const DataFlowEdge* b) {
      return a->frequency > b->frequency;
    });
  }

  struct Frame {
    int node;
    int depth;
    bool via_cpu_change;
    uint64_t freq;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{root_, 0, false, nodes_[root_].visits});
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const DataFlowNode& node = nodes_[frame.node];
    for (int i = 0; i < frame.depth; ++i) {
      out += "  ";
    }
    if (frame.depth > 0) {
      out += frame.via_cpu_change ? "==CPU=> " : "-> ";
    }
    out += node.label;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  [x%llu%s%s]",
                  static_cast<unsigned long long>(frame.freq), node.dark ? ", SLOW" : "",
                  frame.via_cpu_change ? ", cpu change" : "");
    out += buf;
    out += '\n';
    if (frame.node == sink_) {
      continue;
    }
    // Push children in reverse so the most frequent renders first.
    const auto& edges = adjacency[frame.node];
    for (size_t i = edges.size(); i-- > 0;) {
      const DataFlowEdge* edge = edges[i];
      stack.push_back(Frame{edge->to, frame.depth + 1, edge->cpu_change, edge->frequency});
    }
  }
  return out;
}


std::string DataFlowGraph::ToJson() const {
  JsonWriter json;
  json.BeginObject();
  json.Key("nodes").BeginArray();
  for (const DataFlowNode& node : nodes_) {
    json.BeginObject();
    json.Key("label").String(node.label);
    json.Key("dark").Bool(node.dark);
    json.Key("avg_latency").Number(node.avg_latency);
    json.Key("visits").UInt(node.visits);
    json.EndObject();
  }
  json.EndArray();
  json.Key("edges").BeginArray();
  for (const DataFlowEdge& edge : edges_) {
    json.BeginObject();
    json.Key("from").Int(edge.from);
    json.Key("to").Int(edge.to);
    json.Key("frequency").UInt(edge.frequency);
    json.Key("cpu_change").Bool(edge.cpu_change);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

}  // namespace dprof
