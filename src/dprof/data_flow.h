// The data flow view (paper §3, §4.4, Figure 6-1): the execution paths of a
// type's path traces merged into one graph from allocation to free. Edges
// where the object moved to another CPU are bold; nodes whose accesses were
// expensive are dark.
//
// Paths sharing a prefix are merged into a trie rooted at a synthetic
// alloc() node; identical suffixes collapse into shared chains ending at a
// synthetic free() node.

#ifndef DPROF_SRC_DPROF_DATA_FLOW_H_
#define DPROF_SRC_DPROF_DATA_FLOW_H_

#include <string>
#include <vector>

#include "src/dprof/path_trace.h"
#include "src/machine/symbol_table.h"

namespace dprof {

struct DataFlowNode {
  std::string label;
  bool dark = false;       // high average access latency
  double avg_latency = 0.0;
  uint64_t visits = 0;
};

struct DataFlowEdge {
  int from = 0;
  int to = 0;
  uint64_t frequency = 0;
  bool cpu_change = false;  // rendered bold, like the paper's figure
};

struct DataFlowOptions {
  double dark_latency_threshold = 60.0;  // cycles
  std::string alloc_label = "kmem_cache_alloc_node()";
  std::string free_label = "kfree()";
};

class DataFlowGraph {
 public:
  static DataFlowGraph Build(const std::vector<PathTrace>& traces, const SymbolTable& symbols,
                             const DataFlowOptions& options = {});

  const std::vector<DataFlowNode>& nodes() const { return nodes_; }
  const std::vector<DataFlowEdge>& edges() const { return edges_; }

  // Edges crossing CPUs, heaviest first — the points the paper tells the
  // programmer to inspect.
  std::vector<DataFlowEdge> CpuTransitions() const;

  std::string ToDot(const std::string& graph_name) const;
  std::string ToAscii() const;

  // Machine-readable form: nodes and edges with their display attributes.
  std::string ToJson() const;

 private:
  std::vector<DataFlowNode> nodes_;
  std::vector<DataFlowEdge> edges_;
  int root_ = 0;
  int sink_ = 0;
};

}  // namespace dprof

#endif  // DPROF_SRC_DPROF_DATA_FLOW_H_
