#include "src/cli/whatif.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "src/util/json_writer.h"
#include "src/util/table.h"

namespace dprof {

namespace {

// Shapes a spec into a measurement run: single-threaded engine (candidates
// parallelize across experiments instead), no history phase, no view JSON —
// the diff must only see the workload under the transform.
RunSpec MeasurementSpec(const RunSpec& base) {
  RunSpec spec = base;
  spec.threads = 1;
  spec.collect_histories = false;
  spec.build_view_json = false;
  spec.drill_type.clear();
  return spec;
}

const ScenarioProfileRow* RowForType(const std::vector<ScenarioProfileRow>& profile,
                                     const std::string& type) {
  for (const ScenarioProfileRow& row : profile) {
    if (row.type == type) {
      return &row;
    }
  }
  return nullptr;
}

}  // namespace

std::vector<WhatIfCandidate> AutoCandidates(const std::vector<ScenarioProfileRow>& profile,
                                            size_t top_n, int num_sockets) {
  std::vector<WhatIfCandidate> candidates;
  const size_t n = std::min(top_n, profile.size());
  for (size_t i = 0; i < n; ++i) {
    for (const TypeTransformKind kind : AllTypeTransformKinds()) {
      if (kind == TypeTransformKind::kPinHome && num_sockets > 1) {
        // Per-socket home enumeration: one experiment per home socket.
        for (int socket = 0; socket < num_sockets; ++socket) {
          candidates.push_back(WhatIfCandidate{profile[i].type, kind, socket});
        }
        continue;
      }
      candidates.push_back(WhatIfCandidate{profile[i].type, kind});
    }
  }
  return candidates;
}

WhatIfReport RunWhatIf(const ScenarioRegistry& registry, const std::string& scenario,
                       const RunSpec& base_spec,
                       const std::vector<WhatIfCandidate>& candidates) {
  const RunSpec baseline_spec = MeasurementSpec(base_spec);
  const ScenarioReport baseline = RunScenario(registry, scenario, baseline_spec);

  WhatIfReport report;
  report.scenario = baseline.scenario;
  report.cores = baseline.cores;
  report.collect_cycles = baseline.collect_cycles;
  report.baseline_requests = baseline.requests;
  report.baseline_rps = baseline.throughput_rps;
  report.baseline_l1_misses = baseline.hierarchy.l1_misses;
  report.baseline_invalidation_misses = baseline.hierarchy.invalidation_misses;
  report.baseline_profile = baseline.profile;

  // Each experiment is an independent deterministic simulation: fan out
  // across host threads, one engine thread each. Results land by index, so
  // the report never depends on completion order.
  std::vector<ScenarioReport> variants(candidates.size());
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const size_t workers = std::min<size_t>(
      candidates.size(), base_spec.threads > 0 ? static_cast<size_t>(base_spec.threads) : hw);
  std::atomic<size_t> next{0};
  auto run_experiments = [&]() {
    for (size_t i = next.fetch_add(1); i < candidates.size(); i = next.fetch_add(1)) {
      RunSpec spec = MeasurementSpec(base_spec);
      spec.transforms.Add(candidates[i].type, candidates[i].kind, candidates[i].param);
      variants[i] = RunScenario(registry, scenario, spec);
    }
  };
  if (workers <= 1) {
    run_experiments();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      threads.emplace_back(run_experiments);
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }

  for (size_t i = 0; i < candidates.size(); ++i) {
    const ScenarioReport& variant = variants[i];
    WhatIfOutcome out;
    out.candidate = candidates[i];
    out.requests = variant.requests;
    out.throughput_rps = variant.throughput_rps;
    out.delta_rps = variant.throughput_rps - baseline.throughput_rps;
    out.delta_pct = baseline.throughput_rps > 0.0
                        ? out.delta_rps / baseline.throughput_rps * 100.0
                        : 0.0;
    if (const ScenarioProfileRow* row = RowForType(baseline.profile, candidates[i].type)) {
      out.miss_pct_before = row->miss_pct;
      out.bounce_before = row->bounce;
    }
    if (const ScenarioProfileRow* row = RowForType(variant.profile, candidates[i].type)) {
      out.miss_pct_after = row->miss_pct;
      out.bounce_after = row->bounce;
    }
    out.l1_miss_delta = static_cast<int64_t>(variant.hierarchy.l1_misses) -
                        static_cast<int64_t>(baseline.hierarchy.l1_misses);
    out.invalidation_miss_delta =
        static_cast<int64_t>(variant.hierarchy.invalidation_misses) -
        static_cast<int64_t>(baseline.hierarchy.invalidation_misses);
    report.outcomes.push_back(std::move(out));
  }

  std::sort(report.outcomes.begin(), report.outcomes.end(),
            [](const WhatIfOutcome& a, const WhatIfOutcome& b) {
              if (a.delta_pct != b.delta_pct) return a.delta_pct > b.delta_pct;
              return a.candidate.Label() < b.candidate.Label();
            });
  return report;
}

std::string WhatIfReportToTable(const WhatIfReport& report) {
  TablePrinter table({"Gain %", "Type", "Fix", "Req/s", "Miss % (was)", "Bounce"});
  table.SetAlign(0, TablePrinter::Align::kRight);
  table.SetAlign(3, TablePrinter::Align::kRight);
  table.SetAlign(4, TablePrinter::Align::kRight);
  for (const WhatIfOutcome& out : report.outcomes) {
    std::string bounce = out.bounce_before == out.bounce_after
                             ? (out.bounce_after ? "yes" : "no")
                             : (out.bounce_after ? "no -> yes" : "yes -> no");
    table.AddRow({TablePrinter::Fixed(out.delta_pct, 2), out.candidate.type,
                  TypeTransformSpecName(out.candidate.kind, out.candidate.param),
                  TablePrinter::Fixed(out.throughput_rps, 0),
                  TablePrinter::Fixed(out.miss_pct_after, 2) + " (" +
                      TablePrinter::Fixed(out.miss_pct_before, 2) + ")",
                  std::move(bounce)});
  }
  return table.ToString();
}

std::string WhatIfReportToJson(const WhatIfReport& report) {
  JsonWriter json;
  json.BeginObject();
  json.Key("whatif_version").Int(1);
  json.Key("scenario").String(report.scenario);
  json.Key("cores").Int(report.cores);
  json.Key("collect_cycles").UInt(report.collect_cycles);
  json.Key("baseline").BeginObject();
  json.Key("requests").UInt(report.baseline_requests);
  json.Key("throughput_rps").Number(report.baseline_rps);
  json.Key("l1_misses").UInt(report.baseline_l1_misses);
  json.Key("invalidation_misses").UInt(report.baseline_invalidation_misses);
  json.EndObject();
  json.Key("candidates").BeginArray();
  for (const WhatIfOutcome& out : report.outcomes) {
    json.BeginObject();
    json.Key("type").String(out.candidate.type);
    json.Key("fix").String(TypeTransformSpecName(out.candidate.kind, out.candidate.param));
    json.Key("requests").UInt(out.requests);
    json.Key("throughput_rps").Number(out.throughput_rps);
    json.Key("delta_rps").Number(out.delta_rps);
    json.Key("delta_pct").Number(out.delta_pct);
    json.Key("miss_pct_before").Number(out.miss_pct_before);
    json.Key("miss_pct_after").Number(out.miss_pct_after);
    json.Key("bounce_before").Bool(out.bounce_before);
    json.Key("bounce_after").Bool(out.bounce_after);
    json.Key("l1_miss_delta").Int(out.l1_miss_delta);
    json.Key("invalidation_miss_delta").Int(out.invalidation_miss_delta);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

}  // namespace dprof
