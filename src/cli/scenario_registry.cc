#include "src/cli/scenario_registry.h"

#include <algorithm>
#include <utility>

#include "src/dprof/miss_classifier.h"
#include "src/machine/engine.h"
#include "src/util/check.h"
#include "src/util/json_writer.h"
#include "src/workload/apache.h"
#include "src/workload/conflict_demo.h"
#include "src/workload/memcached.h"

namespace dprof {

namespace {

void ApplySpec(ScenarioRig& rig, const RunSpec& spec) {
  if (spec.collect_cycles > 0) rig.collect_cycles = spec.collect_cycles;
  rig.options.adaptive_epoch_focus = spec.adaptive_epoch_focus;
}

}  // namespace

bool ApplyTopologyPreset(const std::string& name, HierarchyConfig* config) {
  if (name.empty()) {
    return true;
  }
  if (name == "paper-amd") {
    // The paper's evaluation machine: 4 quad-core AMD sockets, one L3 slice
    // (and memory controller) per socket.
    config->num_cores = 16;
    config->num_sockets = 4;
    config->l3 = CacheGeometry{4 * 1024 * 1024, 64, 16};
    return true;
  }
  if (name == "big") {
    // Scaling preset: 4 sockets x 16 cores, full-size slices.
    config->num_cores = 64;
    config->num_sockets = 4;
    config->l3 = CacheGeometry{16 * 1024 * 1024, 64, 16};
    return true;
  }
  return false;
}

std::string ValidateRunSpec(const RunSpec& spec) {
  if (!spec.topology.empty()) {
    HierarchyConfig probe;
    if (!ApplyTopologyPreset(spec.topology, &probe)) {
      return "--topology must be one of: paper-amd, big; got '" + spec.topology + "'";
    }
  }
  if (spec.cores < 1 || spec.cores > Engine::kMaxCores) {
    return "--cores must be in [1, " + std::to_string(Engine::kMaxCores) +
           "] (the simulated machine's core limit); got " + std::to_string(spec.cores);
  }
  if (spec.threads < 0 || spec.threads > 1024) {
    return "--threads must be in [0, 1024] (0 = hardware concurrency); got " +
           std::to_string(spec.threads);
  }
  if (!spec.sampled && (spec.sampling_period > 0 || spec.sampling_window > 0)) {
    return "--period/--window only apply to sampled runs; add --sampled";
  }
  if (spec.sampled && spec.sampling_period > 0 && spec.sampling_window > spec.sampling_period) {
    return "--window (" + std::to_string(spec.sampling_window) +
           ") must not exceed --period (" + std::to_string(spec.sampling_period) + ")";
  }
  if (!spec.fault_seams.empty()) {
    uint32_t mask = 0;
    std::string error;
    if (!ParseFaultSeamList(spec.fault_seams, &mask, &error)) {
      return error;
    }
  }
  if (spec.watchdog_wall_seconds < 0.0) {
    return "--watchdog-seconds must be >= 0 (0 keeps the 300s default)";
  }
  return "";
}

std::unique_ptr<ScenarioRig> MakeBaseRig(const RunSpec& spec) {
  auto rig = std::make_unique<ScenarioRig>();
  rig->registry = std::make_unique<TypeRegistry>();
  MachineConfig config;
  config.hierarchy.num_cores = spec.cores;
  // A topology preset overrides the flat-SMP core count and L3 geometry;
  // callers validated the name via ValidateRunSpec.
  DPROF_CHECK(ApplyTopologyPreset(spec.topology, &config.hierarchy));
  config.seed = spec.seed;
  if (!spec.fault_seams.empty()) {
    FaultPlanConfig fault_config;
    std::string error;
    // Callers run ValidateRunSpec first; an unparseable list here is a
    // programming error, not user input.
    DPROF_CHECK(ParseFaultSeamList(spec.fault_seams, &fault_config.enabled_mask, &error));
    if (spec.fault_seed != 0) {
      fault_config.seed = spec.fault_seed;
    }
    rig->faults = std::make_unique<FaultPlan>(fault_config);
    // Configuration-level seams (ext-bank pressure) must land before the
    // machine builds its hierarchy.
    rig->faults->ApplyToHierarchy(&config.hierarchy);
  }
  rig->machine = std::make_unique<Machine>(config);
  rig->machine->SetFaultPlan(rig->faults.get());
  SlabConfig slab_config;
  slab_config.transforms = spec.transforms;
  rig->allocator =
      std::make_unique<SlabAllocator>(rig->machine.get(), rig->registry.get(), slab_config);
  rig->machine->SetAllocator(rig->allocator.get());
  rig->env = std::make_unique<KernelEnv>(rig->machine.get(), rig->allocator.get());
  // Interactive default: bound each type's history phase to ~50ms of
  // simulated time. Workloads that never recycle a type's objects (so the
  // collector sees no allocations to watch) bail out here instead of
  // spinning to the library's 4-second safety cap.
  rig->options.history_phase_max_cycles = 50'000'000;
  return rig;
}

bool ScenarioRegistry::Register(const std::string& name, const std::string& description,
                                ScenarioFactory factory) {
  DPROF_CHECK(factory != nullptr);
  auto [it, inserted] =
      scenarios_.emplace(name, ScenarioInfo{name, description, std::move(factory)});
  (void)it;
  return inserted;
}

const ScenarioInfo* ScenarioRegistry::Find(const std::string& name) const {
  auto it = scenarios_.find(name);
  return it == scenarios_.end() ? nullptr : &it->second;
}

std::vector<std::string> ScenarioRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(scenarios_.size());
  for (const auto& [name, info] : scenarios_) {
    (void)info;
    names.push_back(name);
  }
  return names;
}

ScenarioRegistry& ScenarioRegistry::Default() {
  static ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry();
    RegisterBuiltinScenarios(*r);
    return r;
  }();
  return *registry;
}

void RegisterBuiltinScenarios(ScenarioRegistry& registry) {
  registry.Register(
      "memcached",
      "memcached/UDP with the stock skb_tx_hash() queue selection (paper §6.1): "
      "skbuffs and payloads bounce between cores",
      [](const RunSpec& spec) {
        auto rig = MakeBaseRig(spec);
        MemcachedConfig config;
        config.local_queue_fix = spec.local_tx_queue;
        rig->workload = std::make_unique<MemcachedWorkload>(rig->env.get(), config);
        rig->options.ibs_period_ops = 200;
        ApplySpec(*rig, spec);
        return rig;
      });

  registry.Register(
      "apache",
      "Apache static-file serving past the throughput drop-off (paper §6.2): "
      "deep accept queues evict tcp_socks before accept()",
      [](const RunSpec& spec) {
        auto rig = MakeBaseRig(spec);
        rig->workload = std::make_unique<ApacheWorkload>(
            rig->env.get(),
            spec.admission_control ? ApacheConfig::Fixed() : ApacheConfig::DropOff());
        rig->options.ibs_period_ops = 200;
        ApplySpec(*rig, spec);
        return rig;
      });

  registry.Register(
      "kernel",
      "kernel network stack with the paper's core-local transmit fix applied: "
      "the post-fix memcached profile (paper §6.1, fixed)",
      [](const RunSpec& spec) {
        auto rig = MakeBaseRig(spec);
        MemcachedConfig config;
        config.local_queue_fix = true;
        rig->workload = std::make_unique<MemcachedWorkload>(rig->env.get(), config);
        rig->options.ibs_period_ops = 200;
        ApplySpec(*rig, spec);
        return rig;
      });

  registry.Register(
      "conflict_demo",
      "associativity-conflict microbenchmark (paper §4.3): hot objects alias "
      "to the same L1 sets and evict each other",
      [](const RunSpec& spec) {
        auto rig = MakeBaseRig(spec);
        rig->workload =
            std::make_unique<ConflictDemoWorkload>(rig->env.get(), ConflictDemoConfig{});
        rig->options.ibs_period_ops = 100;
        rig->collect_cycles = 20'000'000;
        // Hot objects live forever: the collector arms debug registers on
        // already-live objects (HistoryCollector::Poll). A coarse sweep with
        // a small per-history element cap lets each type's sweep complete
        // well before the phase cap instead of spinning to it.
        rig->options.history_phase_max_cycles = 10'000'000;
        rig->options.history.granularity = 8;
        rig->options.history.max_elements_per_history = 256;
        rig->history_sets = 1;
        ApplySpec(*rig, spec);
        return rig;
      });
}

ScenarioReport RunScenario(const ScenarioRegistry& registry, const std::string& name,
                           const RunSpec& spec) {
  const ScenarioInfo* info = registry.Find(name);
  DPROF_CHECK(info != nullptr);

  std::unique_ptr<ScenarioRig> rig = info->factory(spec);
  DPROF_CHECK(rig != nullptr && rig->workload != nullptr);
  rig->workload->Install(*rig->machine);

  // Validate the drill-down type before spending the run: workloads
  // register every type during rig construction / install.
  TypeId drill = kInvalidType;
  if (!spec.drill_type.empty()) {
    drill = rig->registry->Find(spec.drill_type);
    if (drill == kInvalidType) {
      ScenarioReport report;
      report.scenario = name;
      report.drill_type = spec.drill_type;
      report.drill_type_found = false;
      return report;
    }
    // Drilling into a mailbox-fed type: run the whole session under tight
    // epochs so the sampled miss profile of the studied type is not blurred
    // by epoch-batched mailbox delivery (the engine's one known drift from
    // the legacy loop). Other runs keep the cheap default epoch length.
    if (rig->machine->IsMailboxFedType(drill)) {
      rig->machine->SetEpochFocus(true);
    }
  }

  // Scenario runs execute on the epoch engine unless the caller asked for
  // the legacy loop baseline; the thread count only affects wall-clock,
  // never the committed stream or the report.
  std::unique_ptr<Engine> engine;
  if (spec.use_engine) {
    EngineConfig engine_config;
    engine_config.threads = spec.threads;
    engine_config.allow_record_elision = spec.record_elision;
    engine_config.socket_aware_apply = spec.socket_aware_apply;
    engine_config.apply_work_stealing = spec.work_stealing;
    engine_config.sampling.enabled = spec.sampled;
    if (spec.sampling_period > 0) {
      engine_config.sampling.period_cycles = spec.sampling_period;
    }
    if (spec.sampling_window > 0) {
      engine_config.sampling.window_cycles = spec.sampling_window;
    }
    engine_config.audit_epochs = spec.audit_epochs;
    if (spec.watchdog_stall_epochs > 0) {
      engine_config.watchdog_stall_epochs = spec.watchdog_stall_epochs;
    }
    if (spec.watchdog_wall_seconds > 0.0) {
      engine_config.watchdog_wall_seconds = spec.watchdog_wall_seconds;
    }
    engine = std::make_unique<Engine>(rig->machine.get(), engine_config);
    rig->machine->SetExecutor(engine.get());
  }

  DProfSession session(rig->machine.get(), rig->allocator.get(), rig->options);
  session.CollectAccessSamples(rig->collect_cycles);
  // Once the engine raised an error status it refuses to run further epochs,
  // so the history phases (which poll until simulated time advances) would
  // spin. Skip them and carry the diagnostic into the report instead.
  const bool run_healthy = engine == nullptr || engine->status().ok();
  if (spec.collect_histories && run_healthy) {
    session.CollectHistoriesForTopTypes(rig->top_types, rig->history_sets);
  }

  ScenarioReport drill_report_part;
  if (!spec.drill_type.empty() && run_healthy) {
    drill_report_part.drill_type = spec.drill_type;
    {
      drill_report_part.drill_type_found = true;
      if (session.histories(drill).empty()) {
        session.CollectHistories(drill, rig->history_sets);
      }
      std::vector<PathTrace> traces = session.BuildPathTraces(drill);
      std::sort(traces.begin(), traces.end(),
                [](const PathTrace& a, const PathTrace& b) { return a.frequency > b.frequency; });
      const size_t top_n = std::min<size_t>(traces.size(), 5);
      JsonWriter traces_json;
      traces_json.BeginArray();
      for (size_t i = 0; i < top_n; ++i) {
        drill_report_part.path_trace_text +=
            PathTraceBuilder::ToTable(traces[i], rig->machine->symbols()) + "\n";
        traces_json.Raw(PathTraceBuilder::ToJson(traces[i], rig->machine->symbols()));
      }
      traces_json.EndArray();
      drill_report_part.path_traces_json = traces_json.str();
    }
  }

  ScenarioReport report;
  if (engine != nullptr) {
    const EnginePhaseStats& stats = engine->phase_stats();
    report.used_engine = true;
    report.engine_simulate_seconds = stats.simulate_seconds;
    report.engine_apply_seconds = stats.apply_seconds;
    report.engine_commit_seconds = stats.commit_seconds;
    report.engine_deliver_seconds = stats.deliver_seconds;
    report.engine_epochs = stats.epochs;
    report.status = engine->status();
    report.audits_run = engine->audits_run();
  }
  if (rig->faults != nullptr) {
    report.faults_enabled = true;
    report.fault_seed = rig->faults->config().seed;
    for (int i = 0; i < kNumFaultSeams; ++i) {
      const FaultSeam seam = static_cast<FaultSeam>(i);
      if (!rig->faults->enabled(seam)) {
        continue;
      }
      ScenarioReport::SeamCount count;
      count.seam = FaultSeamName(seam);
      count.injected = rig->faults->injected(seam);
      count.recovered = rig->faults->recovered(seam);
      report.fault_seams.push_back(std::move(count));
    }
    for (int q = 0; q < rig->env->num_tx_queues(); ++q) {
      report.mailbox_dropped += rig->env->tx_queue(q).dropped();
    }
  }
  if (engine != nullptr && engine->sampler() != nullptr) {
    const SamplingController& sc = *engine->sampler();
    report.sampling_violations = sc.violations();
    report.sampling_window_widened = sc.widened();
    report.sampling_exact_fallback = sc.exact_fallback();
    report.degraded = sc.violations() > 0;
  }
  report.drill_type = drill_report_part.drill_type;
  report.drill_type_found = drill_report_part.drill_type_found;
  report.path_trace_text = std::move(drill_report_part.path_trace_text);
  report.path_traces_json = std::move(drill_report_part.path_traces_json);
  report.scenario = name;
  report.cores = rig->machine->num_cores();
  report.num_sockets = rig->machine->hierarchy().num_sockets();
  report.collect_cycles = rig->collect_cycles;
  report.hierarchy = rig->machine->hierarchy().Totals();
  report.requests = rig->workload->CompletedRequests();
  report.throughput_rps = ThroughputRps(report.requests, rig->machine->MaxClock());
  report.access_samples = session.samples().total_samples();

  const DataProfile profile = session.BuildDataProfile();
  for (const DataProfileRow& row : profile.rows()) {
    ScenarioProfileRow out;
    out.type = row.name;
    out.miss_pct = row.miss_pct;
    out.working_set_bytes = row.working_set_bytes;
    out.bounce = row.bounce;
    out.samples = row.samples;
    out.avg_miss_latency = row.avg_miss_latency;
    report.profile.push_back(std::move(out));
  }
  report.profile_table = profile.ToTable(10);

  if (engine != nullptr && engine->sampler() != nullptr) {
    // Sampled run: scale the measured-window counters to full-run estimates
    // and attach intervals. The hierarchy totals only ever saw detailed
    // windows (fast-forward skips the lattice), so they ARE the
    // measured-window counters; the IBS sample table is likewise fed only
    // from detailed windows (counting hooks freeze across fast-forward).
    const SamplingController& sc = *engine->sampler();
    SamplingReport& s = report.sampling;
    s.enabled = true;
    s.period_cycles = sc.config().period_cycles;
    s.window_cycles = sc.config().window_cycles;
    s.seed = sc.config().seed;
    s.detailed_epochs = sc.detailed_epochs();
    s.ff_epochs = sc.ff_epochs();
    s.measured_accesses = sc.measured_accesses();
    s.ff_accesses = sc.ff_accesses();
    s.scale = sc.Scale();
    s.confidence = 0.99;
    s.l1_miss_rate =
        SamplingController::WilsonCI(report.hierarchy.l1_misses, report.hierarchy.accesses,
                                     SamplingController::kMissRateFloorPct);
    const uint64_t miss_samples = session.samples().l1_miss_samples();
    const auto by_type = session.samples().AggregateByType();
    for (const DataProfileRow& row : profile.rows()) {
      const auto it = by_type.find(row.type);
      const uint64_t k = it != by_type.end() ? it->second.l1_misses : 0;
      const SamplingInterval ci = SamplingController::WilsonCI(
          k, miss_samples, SamplingController::kTypeShareFloorPct);
      SamplingReport::TypeInterval out;
      out.type = row.name;
      out.miss_pct = row.miss_pct;
      out.ci_lo = ci.lo;
      out.ci_hi = ci.hi;
      out.miss_samples = k;
      s.types.push_back(std::move(out));
    }
  }

  const std::vector<MissClassRow> miss_rows = session.ClassifyMisses();
  report.miss_class_table = MissClassifier::ToTable(miss_rows);

  if (spec.build_view_json) {
    report.miss_class_json = MissClassifier::ToJson(miss_rows);
    report.working_set_json = session.BuildWorkingSet().ToJson();
    const std::vector<TypeId> top = profile.TopTypes(1);
    if (!top.empty() && !session.histories(top[0]).empty()) {
      report.top_type = rig->registry->Name(top[0]);
      report.data_flow_json = session.BuildDataFlow(top[0]).ToJson();
    }
  }
  return report;
}

std::string ScenarioReportToJson(const ScenarioReport& report) {
  JsonWriter json;
  json.BeginObject();
  json.Key("scenario").String(report.scenario);
  json.Key("cores").Int(report.cores);
  json.Key("collect_cycles").UInt(report.collect_cycles);
  json.Key("requests").UInt(report.requests);
  json.Key("throughput_rps").Number(report.throughput_rps);
  json.Key("access_samples").UInt(report.access_samples);
  json.Key("hierarchy").BeginObject();
  json.Key("accesses").UInt(report.hierarchy.accesses);
  json.Key("l1_hits").UInt(report.hierarchy.l1_hits);
  json.Key("l1_misses").UInt(report.hierarchy.l1_misses);
  json.Key("served").BeginArray();
  for (int i = 0; i < 5; ++i) {
    json.UInt(report.hierarchy.served[i]);
  }
  json.EndArray();
  json.Key("invalidation_misses").UInt(report.hierarchy.invalidation_misses);
  json.Key("tag_reclaims").UInt(report.hierarchy.tag_reclaims);
  json.Key("back_invalidations").UInt(report.hierarchy.back_invalidations);
  // NUMA counters exist only on multi-socket topologies; flat documents stay
  // byte-for-byte the pre-NUMA golden fingerprints.
  if (report.num_sockets > 1) {
    json.Key("num_sockets").Int(report.num_sockets);
    json.Key("remote_fills").UInt(report.hierarchy.remote_fills);
    json.Key("cross_socket_back_invalidations")
        .UInt(report.hierarchy.cross_socket_back_invalidations);
  }
  json.EndObject();
  // Emitted only on sampled runs, so exact-mode documents are byte-for-byte
  // what pre-sampling builds produced (golden fingerprints, whatif identity).
  if (report.sampling.enabled) {
    const SamplingReport& s = report.sampling;
    json.Key("sampling").BeginObject();
    json.Key("enabled").Bool(true);
    json.Key("period_cycles").UInt(s.period_cycles);
    json.Key("window_cycles").UInt(s.window_cycles);
    json.Key("seed").UInt(s.seed);
    json.Key("detailed_epochs").UInt(s.detailed_epochs);
    json.Key("ff_epochs").UInt(s.ff_epochs);
    json.Key("measured_accesses").UInt(s.measured_accesses);
    json.Key("ff_accesses").UInt(s.ff_accesses);
    json.Key("scale").Number(s.scale);
    json.Key("confidence").Number(s.confidence);
    json.Key("l1_miss_rate").BeginObject();
    json.Key("estimate").Number(s.l1_miss_rate.estimate);
    json.Key("ci_lo").Number(s.l1_miss_rate.lo);
    json.Key("ci_hi").Number(s.l1_miss_rate.hi);
    json.EndObject();
    json.Key("types").BeginArray();
    for (const SamplingReport::TypeInterval& t : s.types) {
      json.BeginObject();
      json.Key("type").String(t.type);
      json.Key("miss_pct").Number(t.miss_pct);
      json.Key("ci_lo").Number(t.ci_lo);
      json.Key("ci_hi").Number(t.ci_hi);
      json.Key("miss_samples").UInt(t.miss_samples);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  // Robustness blocks: emitted only when present, so healthy exact-mode
  // documents (with or without --audit) stay byte-for-byte the golden
  // fingerprints CI pins.
  if (report.faults_enabled) {
    json.Key("faults").BeginObject();
    json.Key("seed").UInt(report.fault_seed);
    json.Key("seams").BeginArray();
    for (const ScenarioReport::SeamCount& seam : report.fault_seams) {
      json.BeginObject();
      json.Key("seam").String(seam.seam);
      json.Key("injected").UInt(seam.injected);
      json.Key("recovered").UInt(seam.recovered);
      json.EndObject();
    }
    json.EndArray();
    json.Key("mailbox_dropped").UInt(report.mailbox_dropped);
    json.Key("audits_run").UInt(report.audits_run);
    json.EndObject();
  }
  if (report.degraded) {
    json.Key("degraded").BeginObject();
    json.Key("sampling_violations").UInt(report.sampling_violations);
    json.Key("sampling_window_widened").Bool(report.sampling_window_widened);
    json.Key("sampling_exact_fallback").Bool(report.sampling_exact_fallback);
    json.EndObject();
  }
  if (!report.status.ok()) {
    json.Key("error").BeginObject();
    json.Key("code").String(StatusCodeName(report.status.code()));
    json.Key("seam").String(report.status.seam());
    json.Key("message").String(report.status.message());
    json.EndObject();
  }
  json.Key("profile").BeginArray();
  for (const ScenarioProfileRow& row : report.profile) {
    json.BeginObject();
    json.Key("type").String(row.type);
    json.Key("miss_pct").Number(row.miss_pct);
    json.Key("working_set_bytes").Number(row.working_set_bytes);
    json.Key("bounce").Bool(row.bounce);
    json.Key("samples").UInt(row.samples);
    json.Key("avg_miss_latency").Number(row.avg_miss_latency);
    json.EndObject();
  }
  json.EndArray();
  json.Key("views").BeginObject();
  if (!report.working_set_json.empty()) {
    json.Key("working_set").Raw(report.working_set_json);
  }
  if (!report.miss_class_json.empty()) {
    json.Key("miss_classification").Raw(report.miss_class_json);
  }
  if (!report.data_flow_json.empty()) {
    json.Key("data_flow_type").String(report.top_type);
    json.Key("data_flow").Raw(report.data_flow_json);
  }
  if (!report.drill_type.empty()) {
    json.Key("path_trace_type").String(report.drill_type);
    json.Key("path_traces").Raw(report.drill_type_found && !report.path_traces_json.empty()
                                    ? report.path_traces_json
                                    : "[]");
  }
  json.EndObject();
  json.EndObject();
  return json.str();
}

}  // namespace dprof
