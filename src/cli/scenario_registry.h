// The scenario registry behind `dprof list` / `dprof run <name>`.
//
// A scenario bundles everything one reproducible profiling run needs: the
// simulated machine, the typed allocator, a workload, and the DProfOptions
// the session should use. Scenarios are registered by name with a factory
// lambda, so future workloads and operating points plug in with one
// Register() call and immediately show up in the CLI, the tests, and CI.

#ifndef DPROF_SRC_CLI_SCENARIO_REGISTRY_H_
#define DPROF_SRC_CLI_SCENARIO_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/dprof/session.h"
#include "src/machine/faults.h"
#include "src/machine/sampling.h"
#include "src/util/status.h"
#include "src/workload/kernel.h"

namespace dprof {

// Everything a scenario run owns. Destruction order matters (members are
// declared leaf-last so dependents die first); keep the machine above the
// pieces that point into it.
struct ScenarioRig {
  std::unique_ptr<TypeRegistry> registry;
  // Deterministic fault-injection plan (null on healthy runs). Declared
  // above the machine, which holds a raw pointer into it.
  std::unique_ptr<FaultPlan> faults;
  std::unique_ptr<Machine> machine;
  std::unique_ptr<SlabAllocator> allocator;
  std::unique_ptr<KernelEnv> env;
  std::unique_ptr<Workload> workload;

  DProfOptions options;
  // Phase-1 access-sample collection length, in simulated cycles.
  uint64_t collect_cycles = 40'000'000;
  // Phase-2: history sets per type, for the top `top_types` profile entries.
  uint32_t history_sets = 4;
  size_t top_types = 3;
};

// One reproducible run request: everything a caller — the CLI, a bench, or
// the whatif search loop — needs to say about a scenario run, in one value
// object. Replaces the old ScenarioParams/DProfOptions overlap so a search
// can construct counterfactual runs programmatically (copy the spec, change
// one field, re-run).
struct RunSpec {
  int cores = 16;
  // Machine topology preset (see ApplyTopologyPreset): "" = flat SMP with
  // `cores` cores and one L3; "paper-amd" = the paper's 4-socket/16-core AMD
  // box (4 cores + one 4MB L3 slice per socket); "big" = a 4-socket/64-core
  // machine (16 cores + one 16MB slice per socket). A preset fixes the core
  // count and overrides `cores`.
  std::string topology;
  // Engine apply-phase dispatch arms on multi-socket topologies (see
  // EngineConfig::socket_aware_apply / apply_work_stealing). Both change
  // host wall-clock only; the report is byte-identical across all four
  // combinations — the parallel_engine bench records both sharding arms.
  bool socket_aware_apply = true;
  bool work_stealing = true;
  uint64_t seed = 1;
  // 0 = keep the scenario's default collect_cycles.
  uint64_t collect_cycles = 0;
  // Host worker threads for the epoch engine; 0 = hardware_concurrency.
  // The committed event stream — and so the whole report — is bit-identical
  // for every value, including 1.
  int threads = 0;
  // When false, the run executes on the legacy step-the-minimum-clock-core
  // loop instead of the epoch engine: the baseline the parallel_engine
  // bench and the engine-validation tests compare against.
  bool use_engine = true;
  // EngineConfig::allow_record_elision for the run's engine. The report is
  // byte-identical either way; tests and CI force the recorded path with
  // false to diff the two.
  bool record_elision = true;
  // Whether RunScenario should render the per-view JSON documents into the
  // report; text-only callers skip that work.
  bool build_view_json = true;
  // Whether to run the phase-2 history collection for the top profiled
  // types. The whatif engine turns this off: throughput diffs must not
  // include history-phase perturbation.
  bool collect_histories = true;
  // DProfOptions::adaptive_epoch_focus for the run's session (tight epochs
  // while a mailbox-fed type's histories are collected). Stats-equivalence
  // tests turn this off to compare against fixed-epoch baselines.
  bool adaptive_epoch_focus = true;
  // Data-layout transforms the allocator applies per type name
  // (SlabConfig::transforms) — the whatif engine's experimental variable.
  TransformSet transforms;
  // Workload-logic fixes that are not expressible as layout transforms,
  // promoted from ad-hoc workload config booleans:
  //  - memcached §6.1: transmit on the receiving core's queue instead of
  //    skb_tx_hash() (MemcachedConfig::local_queue_fix);
  //  - apache §6.2: cap concurrently accepted connections
  //    (ApacheConfig admission control).
  bool local_tx_queue = false;
  bool admission_control = false;
  // Per-type drill-down: also collect histories for this type (by name) and
  // include its path traces in the report.
  std::string drill_type;
  // Sampled execution (statistical fast-forward): the engine alternates
  // short detailed windows with fast-forward stretches and the report gains
  // a "sampling" block with scaled estimates + confidence intervals. Exact
  // mode (sampled=false) stays the golden reference. period/window of 0 keep
  // the SamplingConfig defaults.
  bool sampled = false;
  uint64_t sampling_period = 0;
  uint64_t sampling_window = 0;
  // Periodic lattice invariant auditing (`dprof run --audit=N`): every N
  // engine epochs the commit thread re-derives the tag lattice's global
  // invariants (inclusion, private-exclusive consistency, directory
  // extension-bank obligations, committed-clock monotonicity) and turns any
  // violation into a structured kDataLoss status. 0 = off. Audit-enabled
  // healthy runs produce byte-identical reports to audit-off runs.
  uint64_t audit_epochs = 0;
  // Deterministic fault injection: comma-separated seam list ("all", or e.g.
  // "slab_grow,lane_drop" — see ParseFaultSeamList). Empty = healthy run.
  // Every fault decision is a pure function of (seed, simulated state), so
  // faulted runs stay byte-identical across --threads.
  std::string fault_seams;
  // Seed salting every fault decision; 0 keeps the FaultPlanConfig default.
  uint64_t fault_seed = 0;
  // Watchdog overrides; 0 keeps the EngineConfig defaults (256 stalled
  // epochs / 300 wall-clock seconds).
  uint64_t watchdog_stall_epochs = 0;
  double watchdog_wall_seconds = 0.0;
};

using ScenarioFactory = std::function<std::unique_ptr<ScenarioRig>(const RunSpec&)>;

struct ScenarioInfo {
  std::string name;
  std::string description;
  ScenarioFactory factory;
};

class ScenarioRegistry {
 public:
  // Returns false (and leaves the registry unchanged) on duplicate names.
  bool Register(const std::string& name, const std::string& description,
                ScenarioFactory factory);

  const ScenarioInfo* Find(const std::string& name) const;
  bool Has(const std::string& name) const { return Find(name) != nullptr; }
  std::vector<std::string> Names() const;
  size_t size() const { return scenarios_.size(); }

  // The registry with the built-in scenarios (memcached, apache, kernel,
  // conflict_demo) pre-registered.
  static ScenarioRegistry& Default();

 private:
  std::map<std::string, ScenarioInfo> scenarios_;
};

// Registers the built-in scenarios into `registry` (used by Default() and by
// tests that want a fresh registry).
void RegisterBuiltinScenarios(ScenarioRegistry& registry);

// Validates every field of `spec` against the limits the simulator actually
// enforces (core count vs Engine::kMaxCores, thread bounds, sampling-flag
// consistency, fault seam names, watchdog ranges). Returns an empty string
// when valid, else a one-line actionable error message. The CLI prints the
// message and exits nonzero instead of CHECK-aborting deep in the rig.
std::string ValidateRunSpec(const RunSpec& spec);

// Applies a named topology preset to `config`: core count, socket count, and
// the per-slice L3 geometry. An empty name is the flat default and changes
// nothing. Returns false on an unknown preset name.
bool ApplyTopologyPreset(const std::string& name, HierarchyConfig* config);

// Shared rig assembly for scenario factories: machine + typed allocator
// (with the spec's transforms installed) + kernel environment sized from
// `spec`, with interactive-friendly session defaults. The factory fills in
// `workload` (and any option overrides).
std::unique_ptr<ScenarioRig> MakeBaseRig(const RunSpec& spec);

// One ranked row of the run summary.
struct ScenarioProfileRow {
  std::string type;
  double miss_pct = 0.0;
  double working_set_bytes = 0.0;
  bool bounce = false;
  uint64_t samples = 0;
  double avg_miss_latency = 0.0;
};

// Sampled-mode estimates: measured-window counters scaled to full-run
// estimates, with confidence intervals. Only populated (and only emitted
// into the JSON document) when RunSpec::sampled is set, so exact-mode
// reports stay byte-identical to pre-sampling builds.
struct SamplingReport {
  bool enabled = false;
  uint64_t period_cycles = 0;
  uint64_t window_cycles = 0;
  uint64_t seed = 0;
  uint64_t detailed_epochs = 0;
  uint64_t ff_epochs = 0;
  uint64_t measured_accesses = 0;
  uint64_t ff_accesses = 0;
  double scale = 1.0;       // full-run / measured-window access ratio
  double confidence = 0.0;  // two-sided level of the intervals, e.g. 0.99
  // Overall L1 miss rate of the measured windows (percent of accesses).
  SamplingInterval l1_miss_rate;
  struct TypeInterval {
    std::string type;
    double miss_pct = 0.0;  // share of sampled L1 misses, percent
    double ci_lo = 0.0;
    double ci_hi = 0.0;
    uint64_t miss_samples = 0;
  };
  // Per-type miss-share intervals, in profile order (desc. miss_pct).
  std::vector<TypeInterval> types;
};

// The result of `dprof run`: throughput plus the data-profile summary.
struct ScenarioReport {
  std::string scenario;
  int cores = 0;
  // Socket count of the run's hierarchy; the JSON document emits the NUMA
  // counters (remote fills, cross-socket back-invalidations) only when > 1,
  // so flat-topology documents stay byte-identical to pre-NUMA builds.
  int num_sockets = 1;
  uint64_t collect_cycles = 0;
  uint64_t requests = 0;
  double throughput_rps = 0.0;
  uint64_t access_samples = 0;
  std::vector<ScenarioProfileRow> profile;
  // Human-readable views (data profile table, miss classification).
  std::string profile_table;
  std::string miss_class_table;
  // Machine-readable view documents (see the views' ToJson methods).
  std::string working_set_json;
  std::string miss_class_json;
  // Data flow of the top profiled type, when histories were collected.
  std::string top_type;
  std::string data_flow_json;
  // --type drill-down results (empty unless RunSpec::drill_type set).
  std::string drill_type;
  bool drill_type_found = false;
  std::string path_trace_text;    // Table 4.1-style listings
  std::string path_traces_json;   // JSON array of path traces

  // Simulator-side ground truth: the hierarchy's aggregate counters after
  // the run (read straight from the embedded-directory lattice). Included
  // in the JSON document; deterministic for any host thread count, and the
  // fingerprint the golden stats-equivalence test pins per scenario.
  HierarchyTotals hierarchy;

  // Sampled-mode estimates (RunSpec::sampled runs only).
  SamplingReport sampling;

  // Fault-injection accounting (RunSpec::fault_seams runs only): per-seam
  // injected/recovered counters from the FaultPlan. Deterministic for any
  // --threads value, so crashtest can diff the JSON across thread counts.
  struct SeamCount {
    std::string seam;
    uint64_t injected = 0;
    uint64_t recovered = 0;
  };
  bool faults_enabled = false;
  uint64_t fault_seed = 0;
  std::vector<SeamCount> fault_seams;
  uint64_t mailbox_dropped = 0;

  // Graceful-degradation record: set when the run finished but had to give
  // something up (sampling honesty-contract violations that widened the
  // window or forced the exact fallback). Emitted as a "degraded" JSON block
  // only when degraded is true.
  bool degraded = false;
  uint64_t sampling_violations = 0;
  bool sampling_window_widened = false;
  bool sampling_exact_fallback = false;

  // Terminal engine status. !status.ok() means the run ended in a structured
  // diagnostic (watchdog, audit violation, allocator exhaustion) instead of
  // completing; the CLI renders it as an "error" JSON block and exits
  // nonzero. Healthy runs carry Status::Ok() and emit nothing.
  Status status;
  uint64_t audits_run = 0;

  // Host-side engine phase timing for the run (zeroed on the legacy loop).
  // Deliberately excluded from ScenarioReportToJson: wall-clock varies with
  // the thread count while the report must stay byte-identical; the bench
  // driver surfaces these through `dprof bench --json` instead.
  bool used_engine = false;
  double engine_simulate_seconds = 0.0;
  double engine_apply_seconds = 0.0;
  double engine_commit_seconds = 0.0;
  double engine_deliver_seconds = 0.0;
  uint64_t engine_epochs = 0;
};

// Builds the rig, runs both DProf phases, and assembles the report.
// CHECK-fails if `name` is not registered — callers validate first.
ScenarioReport RunScenario(const ScenarioRegistry& registry, const std::string& name,
                           const RunSpec& spec);

// Renders `report` as the machine-readable JSON document `dprof run --json`
// prints.
std::string ScenarioReportToJson(const ScenarioReport& report);

}  // namespace dprof

#endif  // DPROF_SRC_CLI_SCENARIO_REGISTRY_H_
