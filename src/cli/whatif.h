// The causal what-if engine behind `dprof whatif`.
//
// The paper locates cache bottlenecks; this answers "what does fixing one
// buy you". Because the whole machine is simulated, the counterfactual is
// run exactly, not estimated: a baseline profiled run, then one re-run per
// candidate (a TypeTransform applied to one type), auto-diffed into a
// ranked estimated-throughput-gain report. Candidate runs are independent
// deterministic simulations, so they execute in parallel on host threads;
// the report carries no wall-clock and is byte-identical for any thread
// count.

#ifndef DPROF_SRC_CLI_WHATIF_H_
#define DPROF_SRC_CLI_WHATIF_H_

#include <string>
#include <vector>

#include "src/cli/scenario_registry.h"

namespace dprof {

// One candidate fix: apply `kind` to the type named `type` and re-run.
// `param` is the kind-specific transform parameter (pin_home's target home
// socket); -1 = unparameterized.
struct WhatIfCandidate {
  std::string type;
  TypeTransformKind kind = TypeTransformKind::kIdentity;
  int param = -1;

  std::string Label() const { return type + ":" + TypeTransformSpecName(kind, param); }
};

// The measured effect of one candidate, diffed against the baseline run.
struct WhatIfOutcome {
  WhatIfCandidate candidate;
  uint64_t requests = 0;
  double throughput_rps = 0.0;
  double delta_rps = 0.0;
  double delta_pct = 0.0;  // throughput gain over baseline, percent
  // The transformed type's own profile row, before and after (miss share of
  // all sampled misses; bounce = classified as bouncing between cores).
  double miss_pct_before = 0.0;
  double miss_pct_after = 0.0;
  bool bounce_before = false;
  bool bounce_after = false;
  // Machine-wide counter deltas (variant minus baseline).
  int64_t l1_miss_delta = 0;
  int64_t invalidation_miss_delta = 0;
};

struct WhatIfReport {
  std::string scenario;
  int cores = 0;
  uint64_t collect_cycles = 0;
  uint64_t baseline_requests = 0;
  double baseline_rps = 0.0;
  uint64_t baseline_l1_misses = 0;
  uint64_t baseline_invalidation_misses = 0;
  // Baseline profile rows, for --auto candidate selection and the report.
  std::vector<ScenarioProfileRow> baseline_profile;
  // Ranked best-first: throughput gain desc, candidate label asc on ties.
  std::vector<WhatIfOutcome> outcomes;
};

// The --auto search space: the top `top_n` types of `profile` crossed with
// every transform kind (identity excluded). Allocator-internal and already
// transformed types still appear — a no-op candidate simply ranks at the
// bottom with a ~0 delta. On a multi-socket topology (`num_sockets` > 1)
// pin_home expands to one candidate per home socket — per-socket, not
// per-core, so the search stays tractable at 64 cores.
std::vector<WhatIfCandidate> AutoCandidates(const std::vector<ScenarioProfileRow>& profile,
                                            size_t top_n, int num_sockets = 1);

// Runs the baseline and every candidate experiment, then ranks the diffs.
// `base_spec` describes the shared run shape (cores, seed, cycles); its
// transforms are the baseline's. Measurement runs disable phase-2 history
// collection and view JSON so the throughput diff only sees the workload.
// `base_spec.threads` sets the host-parallel candidate fan-out (0 = hardware
// concurrency); each experiment itself runs single-threaded.
WhatIfReport RunWhatIf(const ScenarioRegistry& registry, const std::string& scenario,
                       const RunSpec& base_spec, const std::vector<WhatIfCandidate>& candidates);

// Ranked human-readable table.
std::string WhatIfReportToTable(const WhatIfReport& report);

// Versioned machine-readable document ("whatif_version": 1). Carries no
// wall-clock, so it is byte-identical across host thread counts.
std::string WhatIfReportToJson(const WhatIfReport& report);

}  // namespace dprof

#endif  // DPROF_SRC_CLI_WHATIF_H_
