// The bench registry behind `dprof bench <name> [--json]`.
//
// Each bench is a named function producing a flat list of metrics. CI runs
// `dprof bench micro_costs --json` and archives the document, so every PR
// gets a perf trajectory baseline; new benchmarks plug in with one
// Register() call.

#ifndef DPROF_SRC_CLI_BENCH_REGISTRY_H_
#define DPROF_SRC_CLI_BENCH_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace dprof {

struct BenchMetric {
  std::string name;
  double value = 0.0;
  std::string unit;
};

struct BenchReport {
  std::string bench;
  std::vector<BenchMetric> metrics;
  // Free-form program output (paper-table reproductions); printed before the
  // metrics in text mode, embedded as "output" in JSON.
  std::string text;
};

struct BenchParams {
  // Scale factor for iteration counts; CI uses 1, perf runs can raise it.
  double scale = 1.0;
  uint64_t seed = 1;
};

using BenchFn = std::function<BenchReport(const BenchParams&)>;

struct BenchInfo {
  std::string name;
  std::string description;
  BenchFn fn;
};

class BenchRegistry {
 public:
  bool Register(const std::string& name, const std::string& description, BenchFn fn);

  const BenchInfo* Find(const std::string& name) const;
  std::vector<std::string> Names() const;
  size_t size() const { return benches_.size(); }

  // The registry with the built-in benches (micro_costs,
  // memcached_throughput, apache_throughput) pre-registered.
  static BenchRegistry& Default();

 private:
  std::map<std::string, BenchInfo> benches_;
};

void RegisterBuiltinBenches(BenchRegistry& registry);

// Directory holding the standalone bench_* reproduction executables
// (bench/table_*.cc et al.). The CLI sets this from argv[0] so the
// registered paper-table benches can run them from one driver; when unset,
// those benches report an error metric instead.
void SetBenchProgramDir(const std::string& dir);

// Renders `report` as the machine-readable JSON document
// `dprof bench --json` prints.
std::string BenchReportToJson(const BenchReport& report);

// Renders `report` as an aligned human-readable table.
std::string BenchReportToText(const BenchReport& report);

}  // namespace dprof

#endif  // DPROF_SRC_CLI_BENCH_REGISTRY_H_
