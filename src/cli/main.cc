// The unified dprof driver.
//
//   dprof list                      — scenarios and benches with descriptions
//   dprof run <scenario> [flags]    — profile a scenario, print the summary
//   dprof whatif <scenario> [flags] — re-run with candidate fixes, rank gains
//   dprof bench <name> [flags]      — run a registered benchmark
//   dprof crashtest [flags]         — fault-injection matrix: every scenario
//                                     x every seam must recover or produce a
//                                     structured diagnostic, never crash
//
// All subcommands share one flag parser that fills a RunSpec; each declares
// which flags it honours, so an inapplicable flag errors instead of being
// silently ignored.
//
// Flags:
//   --json             machine-readable output (run, whatif, bench)
//   --cores N          simulated cores (run, whatif; default 16)
//   --topology NAME    machine topology preset (run, whatif): paper-amd
//                      (4 sockets x 4 cores, 4MB L3 slice each) or big
//                      (4 sockets x 16 cores, 16MB slices); overrides --cores
//   --flat-sharding    disable socket-aware apply sharding; workers claim
//                      individual shards instead of whole sockets (run,
//                      whatif; output is byte-identical either way)
//   --no-work-stealing disable epoch-boundary shard stealing between socket
//                      workers (run, whatif; output is byte-identical)
//   --cycles N         phase-1 collection length in simulated cycles
//   --threads N        host worker threads (run: epoch engine workers;
//                      whatif: parallel candidate experiments; default 0 =
//                      hardware concurrency; output is bit-identical for
//                      every value)
//   --type NAME        run: per-type path-trace drill-down;
//                      whatif: the type the next --fix applies to
//   --fix KIND         whatif: candidate transform for the preceding --type
//                      (pad_to_line, align, recolor, replicate, pin_home,
//                      identity); repeatable
//   --auto             whatif: search top profiled types x all fixes
//   --top N            whatif: how many profiled types --auto explores
//                      (default 3)
//   --local-tx-queue   apply the memcached §6.1 workload fix: transmit on
//                      the receiving core's queue (run, whatif)
//   --admission-control apply the apache §6.2 workload fix: cap accepted
//                      connections (run, whatif)
//   --legacy-loop      run on the legacy sequential loop instead of the
//                      epoch engine (run; the validation baseline)
//   --no-record-elision keep materializing full access records even for
//                      epochs with no event consumer (run, whatif; output
//                      is byte-identical either way — CI diffs the two)
//   --sampled          statistical fast-forward: alternate short detailed
//                      windows with functional-only stretches and report
//                      scaled estimates with confidence intervals (run,
//                      whatif; deterministic per seed and thread count)
//   --sampling-period N  cycles between detailed windows (default 400000)
//   --sampling-window N  detailed-window length in cycles (default 20000)
//   --audit N          verify the tag-lattice invariants every N engine
//                      epochs; violations end the run with a structured
//                      diagnostic (run; healthy output is byte-identical
//                      with or without auditing)
//   --fault SEAMS      deterministic fault injection: comma-separated seam
//                      list or "all" (run; see `dprof crashtest` for names)
//   --fault-seed N     seed salting every fault decision (run)
//   --watchdog-stall-epochs N  end the run with a diagnostic after N epochs
//                      without clock progress (run; default 256)
//   --watchdog-seconds X  wall-clock budget before the watchdog ends the
//                      run with a diagnostic (run; default 300)
//   --seed N           machine seed (default 1)
//   --scale X          bench iteration scale factor (default 1.0)

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/cli/bench_registry.h"
#include "src/cli/crashtest.h"
#include "src/cli/scenario_registry.h"
#include "src/cli/whatif.h"

namespace dprof {
namespace {

int Usage(FILE* out) {
  std::fprintf(out,
               "usage: dprof <command> [args]\n"
               "\n"
               "commands:\n"
               "  list                        list scenarios and benches\n"
               "  run <scenario> [flags]      profile a scenario end to end\n"
               "  whatif <scenario> [flags]   rank candidate fixes by measured gain\n"
               "  bench <name> [flags]        run a registered benchmark\n"
               "  crashtest [flags]           scenario x fault-seam recovery matrix\n"
               "\n"
               "flags:\n"
               "  --json        machine-readable output\n"
               "  --cores N     simulated cores (run, whatif; default 16)\n"
               "  --topology NAME  preset: paper-amd or big (run, whatif)\n"
               "  --flat-sharding  per-shard instead of per-socket apply workers\n"
               "  --no-work-stealing  no shard stealing between socket workers\n"
               "  --cycles N    phase-1 collection cycles (run, whatif)\n"
               "  --type NAME   drill-down type (run) / transform target (whatif)\n"
               "  --fix KIND    candidate transform for the preceding --type (whatif)\n"
               "  --auto        search top profiled types x all fixes (whatif)\n"
               "  --top N       types --auto explores (whatif; default 3)\n"
               "  --local-tx-queue    memcached core-local transmit fix\n"
               "  --admission-control apache admission-control fix\n"
               "  --legacy-loop run on the legacy loop, not the engine (run)\n"
               "  --no-record-elision always materialize access records\n"
               "  --sampled     statistical fast-forward with confidence intervals\n"
               "  --sampling-period N  cycles between detailed windows (sampled)\n"
               "  --sampling-window N  detailed-window length in cycles (sampled)\n"
               "  --audit N     verify tag-lattice invariants every N epochs (run)\n"
               "  --fault SEAMS comma-separated fault seams, or 'all' (run)\n"
               "  --fault-seed N  seed for fault decisions (run)\n"
               "  --watchdog-stall-epochs N  stall budget before diagnostic (run)\n"
               "  --watchdog-seconds X  wall-clock budget before diagnostic (run)\n"
               "  --seed N      machine seed (default 1)\n"
               "  --scale X     bench iteration scale (bench; default 1.0)\n");
  return out == stdout ? 0 : 2;
}

struct ParsedFlags {
  bool json = false;
  int cores = 16;
  std::string topology;
  bool socket_aware_apply = true;
  bool work_stealing = true;
  uint64_t cycles = 0;
  uint64_t seed = 1;
  double scale = 1.0;
  int threads = 0;
  bool legacy_loop = false;
  bool record_elision = true;
  bool local_tx_queue = false;
  bool admission_control = false;
  bool sampled = false;
  uint64_t sampling_period = 0;
  uint64_t sampling_window = 0;
  uint64_t audit = 0;
  std::string fault_seams;
  uint64_t fault_seed = 0;
  uint64_t watchdog_stall_epochs = 0;
  double watchdog_seconds = 0.0;
  std::string drill_type;
  // whatif candidate selection.
  bool auto_search = false;
  uint64_t top = 3;
  std::vector<WhatIfCandidate> candidates;
};

// The one place flags become a run request: every subcommand that runs a
// scenario builds its RunSpec here.
RunSpec SpecFromFlags(const ParsedFlags& flags) {
  RunSpec spec;
  spec.cores = flags.cores;
  spec.topology = flags.topology;
  spec.socket_aware_apply = flags.socket_aware_apply;
  spec.work_stealing = flags.work_stealing;
  spec.seed = flags.seed;
  spec.collect_cycles = flags.cycles;
  spec.threads = flags.threads;
  spec.use_engine = !flags.legacy_loop;
  spec.record_elision = flags.record_elision;
  spec.build_view_json = flags.json;
  spec.local_tx_queue = flags.local_tx_queue;
  spec.admission_control = flags.admission_control;
  spec.sampled = flags.sampled;
  spec.sampling_period = flags.sampling_period;
  spec.sampling_window = flags.sampling_window;
  spec.audit_epochs = flags.audit;
  spec.fault_seams = flags.fault_seams;
  spec.fault_seed = flags.fault_seed;
  spec.watchdog_stall_epochs = flags.watchdog_stall_epochs;
  spec.watchdog_wall_seconds = flags.watchdog_seconds;
  return spec;
}

// Strict unsigned decimal parse; rejects empty values and trailing garbage
// (so "--cycles 2e6" errors instead of silently running 2 cycles).
bool ParseUInt(const char* flag, const char* value, uint64_t* out) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (errno != 0 || end == value || *end != '\0') {
    std::fprintf(stderr, "dprof: %s expects a non-negative integer, got '%s'\n", flag,
                 value);
    return false;
  }
  *out = parsed;
  return true;
}

// Returns false (after printing a diagnostic) on malformed or, for this
// command, inapplicable flags. `allowed` is the space-separated flag list the
// current subcommand honours, so e.g. `bench --cores 4` errors instead of
// silently running the default geometry.
bool ParseFlags(const std::vector<std::string>& args, size_t start, std::string_view allowed,
                ParsedFlags* flags) {
  for (size_t i = start; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "dprof: %s requires a value\n", flag);
        return nullptr;
      }
      return args[++i].c_str();
    };
    // Exact-token membership in the space-separated `allowed` list ("--c"
    // must not pass as a prefix of "--cores").
    bool flag_allowed = false;
    for (size_t pos = 0; pos < allowed.size();) {
      const size_t space = allowed.find(' ', pos);
      const std::string_view token = allowed.substr(
          pos, space == std::string_view::npos ? allowed.size() - pos : space - pos);
      if (token == arg) {
        flag_allowed = true;
        break;
      }
      if (space == std::string_view::npos) break;
      pos = space + 1;
    }
    if (!flag_allowed) {
      std::fprintf(stderr, "dprof: unknown flag '%s' (accepted here: %s)\n", arg.c_str(),
                   std::string(allowed).c_str());
      return false;
    }
    if (arg == "--legacy-loop") {
      flags->legacy_loop = true;
    } else if (arg == "--topology") {
      const char* v = next_value("--topology");
      if (v == nullptr) return false;
      flags->topology = v;
    } else if (arg == "--flat-sharding") {
      flags->socket_aware_apply = false;
    } else if (arg == "--no-work-stealing") {
      flags->work_stealing = false;
    } else if (arg == "--no-record-elision") {
      flags->record_elision = false;
    } else if (arg == "--json") {
      flags->json = true;
    } else if (arg == "--auto") {
      flags->auto_search = true;
    } else if (arg == "--local-tx-queue") {
      flags->local_tx_queue = true;
    } else if (arg == "--admission-control") {
      flags->admission_control = true;
    } else if (arg == "--sampled") {
      flags->sampled = true;
    } else if (arg == "--sampling-period") {
      const char* v = next_value("--sampling-period");
      if (v == nullptr || !ParseUInt("--sampling-period", v, &flags->sampling_period))
        return false;
      if (flags->sampling_period == 0) {
        std::fprintf(stderr, "dprof: --sampling-period must be positive\n");
        return false;
      }
    } else if (arg == "--sampling-window") {
      const char* v = next_value("--sampling-window");
      if (v == nullptr || !ParseUInt("--sampling-window", v, &flags->sampling_window))
        return false;
      if (flags->sampling_window == 0) {
        std::fprintf(stderr, "dprof: --sampling-window must be positive\n");
        return false;
      }
    } else if (arg == "--scenario") {
      // Already consumed by FindScenarioArg; skip the value token.
      if (next_value("--scenario") == nullptr) return false;
    } else if (arg == "--cores") {
      const char* v = next_value("--cores");
      uint64_t cores = 0;
      if (v == nullptr || !ParseUInt("--cores", v, &cores)) return false;
      // Range check (against the simulated machine's real core limit, not a
      // parser-local guess) happens in ValidateRunSpec.
      if (cores > 4096) {
        std::fprintf(stderr, "dprof: --cores expects a small integer, got '%s'\n", v);
        return false;
      }
      flags->cores = static_cast<int>(cores);
    } else if (arg == "--audit") {
      const char* v = next_value("--audit");
      if (v == nullptr || !ParseUInt("--audit", v, &flags->audit)) return false;
      if (flags->audit == 0) {
        std::fprintf(stderr,
                     "dprof: --audit expects the positive epoch period between "
                     "invariant audits\n");
        return false;
      }
    } else if (arg == "--fault") {
      const char* v = next_value("--fault");
      if (v == nullptr) return false;
      flags->fault_seams = v;
    } else if (arg == "--fault-seed") {
      const char* v = next_value("--fault-seed");
      if (v == nullptr || !ParseUInt("--fault-seed", v, &flags->fault_seed)) return false;
    } else if (arg == "--watchdog-stall-epochs") {
      const char* v = next_value("--watchdog-stall-epochs");
      if (v == nullptr ||
          !ParseUInt("--watchdog-stall-epochs", v, &flags->watchdog_stall_epochs))
        return false;
      if (flags->watchdog_stall_epochs == 0) {
        std::fprintf(stderr, "dprof: --watchdog-stall-epochs must be positive\n");
        return false;
      }
    } else if (arg == "--watchdog-seconds") {
      const char* v = next_value("--watchdog-seconds");
      if (v == nullptr) return false;
      char* end = nullptr;
      flags->watchdog_seconds = std::strtod(v, &end);
      if (end == v || *end != '\0' || !(flags->watchdog_seconds > 0.0)) {
        std::fprintf(stderr, "dprof: --watchdog-seconds must be a positive number\n");
        return false;
      }
    } else if (arg == "--cycles") {
      const char* v = next_value("--cycles");
      if (v == nullptr || !ParseUInt("--cycles", v, &flags->cycles)) return false;
      if (flags->cycles == 0) {
        // 0 is the "use the scenario default" sentinel internally; accepting
        // it here would silently run the 40M-cycle default.
        std::fprintf(stderr, "dprof: --cycles must be positive\n");
        return false;
      }
    } else if (arg == "--seed") {
      const char* v = next_value("--seed");
      if (v == nullptr || !ParseUInt("--seed", v, &flags->seed)) return false;
    } else if (arg == "--threads") {
      const char* v = next_value("--threads");
      uint64_t threads = 0;
      if (v == nullptr || !ParseUInt("--threads", v, &threads)) return false;
      if (threads > 1024) {
        std::fprintf(stderr, "dprof: --threads must be in [0, 1024]\n");
        return false;
      }
      flags->threads = static_cast<int>(threads);
    } else if (arg == "--top") {
      const char* v = next_value("--top");
      if (v == nullptr || !ParseUInt("--top", v, &flags->top)) return false;
      if (flags->top == 0 || flags->top > 64) {
        std::fprintf(stderr, "dprof: --top must be in [1, 64]\n");
        return false;
      }
    } else if (arg == "--type") {
      const char* v = next_value("--type");
      if (v == nullptr) return false;
      flags->drill_type = v;
    } else if (arg == "--fix") {
      const char* v = next_value("--fix");
      if (v == nullptr) return false;
      TypeTransformKind kind;
      int param = -1;
      if (!ParseTypeTransformSpec(v, &kind, &param)) {
        std::fprintf(stderr,
                     "dprof: unknown fix '%s' (one of: identity, pad_to_line, align, "
                     "recolor, replicate, pin_home[@socket])\n",
                     v);
        return false;
      }
      if (flags->drill_type.empty()) {
        std::fprintf(stderr, "dprof: --fix requires a preceding --type\n");
        return false;
      }
      flags->candidates.push_back(WhatIfCandidate{flags->drill_type, kind, param});
    } else if (arg == "--scale") {
      const char* v = next_value("--scale");
      if (v == nullptr) return false;
      char* end = nullptr;
      flags->scale = std::strtod(v, &end);
      if (end == v || *end != '\0' || !(flags->scale > 0.0)) {
        std::fprintf(stderr, "dprof: --scale must be a positive number\n");
        return false;
      }
    }
  }
  return true;
}

int CmdList() {
  std::printf("scenarios:\n");
  ScenarioRegistry& scenarios = ScenarioRegistry::Default();
  for (const std::string& name : scenarios.Names()) {
    std::printf("  %-16s %s\n", name.c_str(), scenarios.Find(name)->description.c_str());
  }
  std::printf("\nbenches:\n");
  BenchRegistry& benches = BenchRegistry::Default();
  for (const std::string& name : benches.Names()) {
    std::printf("  %-24s %s\n", name.c_str(), benches.Find(name)->description.c_str());
  }
  return 0;
}

// Scenario-name lookup shared by run and whatif. `args[2]` may be the name,
// or a `--scenario NAME` flag anywhere after the subcommand; `*flag_start`
// receives the index where flag parsing begins.
bool FindScenarioArg(const std::vector<std::string>& args, std::string* name,
                     size_t* flag_start) {
  *flag_start = 2;
  if (args.size() > 2 && args[2].rfind("--", 0) != 0) {
    *name = args[2];
    *flag_start = 3;
  } else {
    for (size_t i = 2; i + 1 < args.size(); ++i) {
      if (args[i] == "--scenario") {
        *name = args[i + 1];
        break;
      }
    }
  }
  if (name->empty()) {
    std::fprintf(stderr, "dprof: %s requires a scenario name\n", args[1].c_str());
    return false;
  }
  if (!ScenarioRegistry::Default().Has(*name)) {
    std::fprintf(stderr, "dprof: unknown scenario '%s'; try 'dprof list'\n", name->c_str());
    return false;
  }
  return true;
}

int CmdRun(const std::vector<std::string>& args) {
  std::string name;
  size_t flag_start = 0;
  if (!FindScenarioArg(args, &name, &flag_start)) return 2;
  ParsedFlags flags;
  if (!ParseFlags(args, flag_start,
                  "--json --cores --topology --flat-sharding --no-work-stealing "
                  "--cycles --threads --type --seed --legacy-loop "
                  "--no-record-elision --local-tx-queue --admission-control "
                  "--sampled --sampling-period --sampling-window --audit --fault "
                  "--fault-seed --watchdog-stall-epochs --watchdog-seconds --scenario",
                  &flags))
    return 2;

  RunSpec spec = SpecFromFlags(flags);
  spec.drill_type = flags.drill_type;
  const std::string spec_error = ValidateRunSpec(spec);
  if (!spec_error.empty()) {
    std::fprintf(stderr, "dprof: %s\n", spec_error.c_str());
    return 2;
  }
  const ScenarioReport report = RunScenario(ScenarioRegistry::Default(), name, spec);
  if (!report.drill_type.empty() && !report.drill_type_found) {
    std::fprintf(stderr, "dprof: scenario '%s' has no type named '%s'\n", name.c_str(),
                 report.drill_type.c_str());
    return 2;
  }

  if (flags.json) {
    // On a diagnostic ending, the document still prints — it carries the
    // structured "error" block — but the exit code says the run failed.
    std::printf("%s\n", ScenarioReportToJson(report).c_str());
    return report.status.ok() ? 0 : 1;
  }
  std::printf("scenario: %s (%d cores, %llu cycles)\n", report.scenario.c_str(),
              report.cores, static_cast<unsigned long long>(report.collect_cycles));
  std::printf("requests: %llu (%.0f req/s), access samples: %llu\n\n",
              static_cast<unsigned long long>(report.requests), report.throughput_rps,
              static_cast<unsigned long long>(report.access_samples));
  std::printf("== data profile ==\n%s\n", report.profile_table.c_str());
  std::printf("== miss classification ==\n%s\n", report.miss_class_table.c_str());
  if (!report.drill_type.empty()) {
    if (report.path_trace_text.empty()) {
      std::printf("== path traces: %s ==\n(no histories collected)\n",
                  report.drill_type.c_str());
    } else {
      std::printf("== path traces: %s ==\n%s", report.drill_type.c_str(),
                  report.path_trace_text.c_str());
    }
  }
  if (report.degraded) {
    std::printf("note: sampled run degraded (%llu honesty violations%s%s)\n",
                static_cast<unsigned long long>(report.sampling_violations),
                report.sampling_window_widened ? ", window widened" : "",
                report.sampling_exact_fallback ? ", exact fallback" : "");
  }
  if (!report.status.ok()) {
    std::fprintf(stderr, "dprof: run ended in diagnostic: %s\n",
                 report.status.ToString().c_str());
    return 1;
  }
  return 0;
}

int CmdWhatIf(const std::vector<std::string>& args) {
  std::string name;
  size_t flag_start = 0;
  if (!FindScenarioArg(args, &name, &flag_start)) return 2;
  ParsedFlags flags;
  if (!ParseFlags(args, flag_start,
                  "--json --cores --topology --flat-sharding --no-work-stealing "
                  "--cycles --threads --seed --no-record-elision --scenario "
                  "--type --fix --auto --top --local-tx-queue --admission-control "
                  "--sampled --sampling-period --sampling-window",
                  &flags))
    return 2;
  if (flags.auto_search == !flags.candidates.empty()) {
    std::fprintf(stderr,
                 "dprof: whatif needs either --auto or at least one --type/--fix pair\n");
    return 2;
  }

  ScenarioRegistry& registry = ScenarioRegistry::Default();
  const RunSpec spec = SpecFromFlags(flags);
  const std::string spec_error = ValidateRunSpec(spec);
  if (!spec_error.empty()) {
    std::fprintf(stderr, "dprof: %s\n", spec_error.c_str());
    return 2;
  }
  HierarchyConfig topo_probe;
  ApplyTopologyPreset(spec.topology, &topo_probe);
  for (const WhatIfCandidate& candidate : flags.candidates) {
    if (candidate.kind == TypeTransformKind::kPinHome &&
        candidate.param >= topo_probe.num_sockets) {
      std::fprintf(stderr, "dprof: pin_home@%d names a socket this topology lacks (%d)\n",
                   candidate.param, topo_probe.num_sockets);
      return 2;
    }
  }
  std::vector<WhatIfCandidate> candidates = flags.candidates;
  if (flags.auto_search) {
    // Seed the search with the baseline's top profiled types: a cheap
    // profile-only run (reused as the diff baseline inside RunWhatIf would
    // need identical shape, so we just pick types here and let RunWhatIf
    // re-measure under measurement settings).
    RunSpec probe = spec;
    probe.build_view_json = false;
    probe.collect_histories = false;
    probe.threads = 1;
    const ScenarioReport baseline = RunScenario(registry, name, probe);
    candidates = AutoCandidates(baseline.profile, flags.top, baseline.num_sockets);
    if (candidates.empty()) {
      std::fprintf(stderr, "dprof: scenario '%s' produced no profiled types\n",
                   name.c_str());
      return 1;
    }
  }

  const WhatIfReport report = RunWhatIf(registry, name, spec, candidates);
  if (flags.json) {
    std::printf("%s\n", WhatIfReportToJson(report).c_str());
    return 0;
  }
  std::printf("scenario: %s (%d cores, %llu cycles)\n", report.scenario.c_str(),
              report.cores, static_cast<unsigned long long>(report.collect_cycles));
  std::printf("baseline: %llu requests (%.0f req/s)\n\n",
              static_cast<unsigned long long>(report.baseline_requests),
              report.baseline_rps);
  std::printf("== estimated gain per candidate fix ==\n%s",
              WhatIfReportToTable(report).c_str());
  return 0;
}

int CmdBench(const std::vector<std::string>& args) {
  if (args.size() < 3) {
    std::fprintf(stderr, "dprof: bench requires a bench name\n");
    return 2;
  }
  const std::string& name = args[2];
  BenchRegistry& registry = BenchRegistry::Default();
  const BenchInfo* info = registry.Find(name);
  if (info == nullptr) {
    std::fprintf(stderr, "dprof: unknown bench '%s'; try 'dprof list'\n", name.c_str());
    return 2;
  }
  ParsedFlags flags;
  if (!ParseFlags(args, 3, "--json --scale --seed", &flags)) return 2;

  BenchParams params;
  params.scale = flags.scale;
  params.seed = flags.seed;
  const BenchReport report = info->fn(params);
  if (flags.json) {
    std::printf("%s\n", BenchReportToJson(report).c_str());
  } else {
    std::printf("%s", BenchReportToText(report).c_str());
  }
  return 0;
}

int Main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  if (!args.empty()) {
    // The paper-table benches exec sibling bench_* binaries from our dir.
    const std::string& self = args[0];
    const size_t slash = self.rfind('/');
    SetBenchProgramDir(slash == std::string::npos ? "." : self.substr(0, slash));
  }
  if (args.size() < 2) return Usage(stderr);
  const std::string& command = args[1];
  if (command == "list") return CmdList();
  if (command == "run") return CmdRun(args);
  if (command == "whatif") return CmdWhatIf(args);
  if (command == "bench") return CmdBench(args);
  if (command == "crashtest") return CmdCrashtest(args);
  if (command == "help" || command == "--help" || command == "-h") return Usage(stdout);
  std::fprintf(stderr, "dprof: unknown command '%s'\n", command.c_str());
  return Usage(stderr);
}

}  // namespace
}  // namespace dprof

int main(int argc, char** argv) { return dprof::Main(argc, argv); }
