// `dprof crashtest`: the robustness acceptance matrix.
//
// Runs every built-in scenario against every fault seam (scenarios x seams
// cells) with invariant auditing and the watchdog armed, and requires every
// cell to end in either a clean recovery (status ok, with the seam's
// injected/recovered counters proving it actually fired) or a structured
// diagnostic (the expected error code for seams whose whole point is to be
// *caught* — lattice corruption by the auditor, stalls by the watchdog).
// A crash, CHECK-abort, or hang anywhere in the matrix is the failure this
// command exists to catch; CI runs it under ASan and diffs its --json
// output across --threads values, which the deterministic fault plan makes
// byte-identical.

#ifndef DPROF_SRC_CLI_CRASHTEST_H_
#define DPROF_SRC_CLI_CRASHTEST_H_

#include <string>
#include <vector>

namespace dprof {

// Entry point for `dprof crashtest [--json] [--threads N]`. Returns 0 iff
// every cell ended in its expected outcome and every seam fired in at least
// one scenario.
int CmdCrashtest(const std::vector<std::string>& args);

}  // namespace dprof

#endif  // DPROF_SRC_CLI_CRASHTEST_H_
