#include "src/cli/crashtest.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/cli/scenario_registry.h"
#include "src/machine/faults.h"
#include "src/util/json_writer.h"

namespace dprof {

namespace {

// What a seam is expected to do to a short audited run. Seams built to be
// *recovered* must leave the run healthy; seams built to be *caught* must
// end it in the matching structured diagnostic.
struct SeamCase {
  FaultSeam seam;
  bool expect_diagnostic;
  StatusCode expect_code;
};

constexpr SeamCase kSeamCases[] = {
    {FaultSeam::kSlabGrow, false, StatusCode::kOk},
    {FaultSeam::kLaneDrop, false, StatusCode::kOk},
    {FaultSeam::kLaneDup, false, StatusCode::kOk},
    {FaultSeam::kClockSkew, false, StatusCode::kOk},
    {FaultSeam::kExtBankPressure, false, StatusCode::kOk},
    {FaultSeam::kMailboxOverflow, false, StatusCode::kOk},
    {FaultSeam::kWindowJitter, false, StatusCode::kOk},
    {FaultSeam::kLatticeCorrupt, true, StatusCode::kDataLoss},
    {FaultSeam::kEpochStall, true, StatusCode::kDeadlineExceeded},
};

const char* const kScenarios[] = {"memcached", "apache", "kernel", "conflict_demo"};

struct CellResult {
  std::string scenario;
  std::string seam;
  std::string outcome;  // "ok" or "diagnostic"
  bool pass = false;
  Status status;
  uint64_t injected = 0;
  uint64_t recovered = 0;
  uint64_t mailbox_dropped = 0;
  uint64_t audits_run = 0;
  bool degraded = false;
};

RunSpec CellSpec(const SeamCase& sc, int threads) {
  RunSpec spec;
  // Small geometry: the matrix is 4 scenarios x 9 seams, so each cell must
  // be cheap; every seam's default cadence fires many times in 2M cycles.
  spec.cores = 8;
  spec.seed = 1;
  spec.collect_cycles = 2'000'000;
  spec.threads = threads;
  spec.build_view_json = false;
  spec.collect_histories = false;
  spec.audit_epochs = 16;
  spec.fault_seams = FaultSeamName(sc.seam);
  // A hung cell must become a diagnostic long before CI's job timeout.
  spec.watchdog_wall_seconds = 120.0;
  if (sc.seam == FaultSeam::kWindowJitter) {
    // The jitter seam perturbs the sampled-window schedule; it needs a
    // sampled run with several period rollovers to walk the degradation
    // ladder (widen, widen, exact fallback).
    spec.sampled = true;
    spec.sampling_period = 200'000;
    spec.sampling_window = 10'000;
  }
  if (sc.seam == FaultSeam::kLaneDrop || sc.seam == FaultSeam::kLaneDup) {
    // Lane faults live in the recorded apply path; forcing records on makes
    // every epoch eligible instead of only the event-consumer ones.
    spec.record_elision = false;
  }
  if (sc.seam == FaultSeam::kEpochStall) {
    // The stall begins at epoch 64 (FaultPlanConfig::stall_after_epochs);
    // a tight stall budget turns it into a diagnostic quickly.
    spec.watchdog_stall_epochs = 64;
  }
  return spec;
}

CellResult RunCell(const std::string& scenario, const SeamCase& sc, int threads) {
  const ScenarioReport report =
      RunScenario(ScenarioRegistry::Default(), scenario, CellSpec(sc, threads));
  CellResult cell;
  cell.scenario = scenario;
  cell.seam = FaultSeamName(sc.seam);
  cell.status = report.status;
  for (const ScenarioReport::SeamCount& count : report.fault_seams) {
    cell.injected += count.injected;
    cell.recovered += count.recovered;
  }
  cell.mailbox_dropped = report.mailbox_dropped;
  cell.audits_run = report.audits_run;
  cell.degraded = report.degraded;
  if (report.status.ok()) {
    cell.outcome = "ok";
    cell.pass = !sc.expect_diagnostic;
  } else {
    cell.outcome = "diagnostic";
    cell.pass = sc.expect_diagnostic && report.status.code() == sc.expect_code;
  }
  return cell;
}

std::string MatrixToJson(const std::vector<CellResult>& cells, bool pass) {
  JsonWriter json;
  json.BeginObject();
  json.Key("pass").Bool(pass);
  json.Key("cells").BeginArray();
  for (const CellResult& cell : cells) {
    json.BeginObject();
    json.Key("scenario").String(cell.scenario);
    json.Key("seam").String(cell.seam);
    json.Key("outcome").String(cell.outcome);
    json.Key("pass").Bool(cell.pass);
    json.Key("status_code").String(StatusCodeName(cell.status.code()));
    json.Key("status_seam").String(cell.status.seam());
    json.Key("status_message").String(cell.status.message());
    json.Key("injected").UInt(cell.injected);
    json.Key("recovered").UInt(cell.recovered);
    json.Key("mailbox_dropped").UInt(cell.mailbox_dropped);
    json.Key("audits_run").UInt(cell.audits_run);
    json.Key("degraded").Bool(cell.degraded);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

}  // namespace

int CmdCrashtest(const std::vector<std::string>& args) {
  bool json = false;
  int threads = 0;
  for (size_t i = 2; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--threads") {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "dprof: --threads requires a value\n");
        return 2;
      }
      errno = 0;
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(args[++i].c_str(), &end, 10);
      if (errno != 0 || end == args[i].c_str() || *end != '\0' || parsed > 1024) {
        std::fprintf(stderr, "dprof: --threads must be an integer in [0, 1024]\n");
        return 2;
      }
      threads = static_cast<int>(parsed);
    } else {
      std::fprintf(stderr, "dprof: unknown flag '%s' (accepted here: --json --threads)\n",
                   arg.c_str());
      return 2;
    }
  }

  std::vector<CellResult> cells;
  uint64_t injected_by_seam[kNumFaultSeams] = {};
  for (const char* scenario : kScenarios) {
    for (const SeamCase& sc : kSeamCases) {
      if (!json) {
        std::fprintf(stderr, "crashtest: %s x %s...\n", scenario, FaultSeamName(sc.seam));
      }
      CellResult cell = RunCell(scenario, sc, threads);
      injected_by_seam[static_cast<int>(sc.seam)] += cell.injected;
      cells.push_back(std::move(cell));
    }
  }

  bool pass = true;
  for (const CellResult& cell : cells) {
    pass = pass && cell.pass;
  }
  // Every seam must actually have fired in at least one scenario — a seam
  // whose injected count is zero everywhere is dead code, not coverage.
  std::string dead_seams;
  for (const SeamCase& sc : kSeamCases) {
    if (injected_by_seam[static_cast<int>(sc.seam)] == 0) {
      pass = false;
      dead_seams += dead_seams.empty() ? "" : ",";
      dead_seams += FaultSeamName(sc.seam);
    }
  }

  if (json) {
    std::printf("%s\n", MatrixToJson(cells, pass).c_str());
  } else {
    std::printf("%-14s %-18s %-11s %-6s %s\n", "scenario", "seam", "outcome", "pass",
                "status");
    for (const CellResult& cell : cells) {
      std::printf("%-14s %-18s %-11s %-6s %s\n", cell.scenario.c_str(), cell.seam.c_str(),
                  cell.outcome.c_str(), cell.pass ? "PASS" : "FAIL",
                  cell.status.ToString().c_str());
    }
    if (!dead_seams.empty()) {
      std::printf("dead seams (never injected): %s\n", dead_seams.c_str());
    }
    std::printf("crashtest: %s (%zu cells)\n", pass ? "PASS" : "FAIL", cells.size());
  }
  return pass ? 0 : 1;
}

}  // namespace dprof
