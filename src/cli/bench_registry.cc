#include "src/cli/bench_registry.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "src/cli/scenario_registry.h"
#include "src/dprof/session.h"
#include "src/util/check.h"
#include "src/util/json_writer.h"
#include "src/workload/apache.h"
#include "src/workload/kernel.h"
#include "src/workload/memcached.h"

namespace dprof {

namespace {

using Clock = std::chrono::steady_clock;

// Benches reuse the scenario rig assembly so machine wiring lives in exactly
// one place (MakeBaseRig).
std::unique_ptr<ScenarioRig> MakeRig(int cores, uint64_t seed) {
  ScenarioParams params;
  params.cores = cores;
  params.seed = seed;
  return MakeBaseRig(params);
}

double ElapsedNs(Clock::time_point start) {
  return std::chrono::duration<double, std::nano>(Clock::now() - start).count();
}

// Times `iters` calls of `op` and returns host nanoseconds per call.
template <typename Op>
double TimePerOp(uint64_t iters, Op&& op) {
  const auto start = Clock::now();
  for (uint64_t i = 0; i < iters; ++i) op(i);
  return ElapsedNs(start) / static_cast<double>(iters);
}

uint64_t Scaled(double scale, uint64_t base) {
  const double scaled = scale * static_cast<double>(base);
  return scaled < 1.0 ? 1 : static_cast<uint64_t>(scaled);
}

// Host cost of the substrate primitives, plus the paper's §6.3/§6.4 cost
// constants so the baseline records the simulated-cost model in effect.
BenchReport RunMicroCosts(const BenchParams& params) {
  BenchReport report;
  report.bench = "micro_costs";

  {
    Cache cache(CacheGeometry{32 * 1024, 64, 8});
    for (uint64_t line = 0; line < 512; ++line) cache.Insert(line, line);
    volatile bool sink = false;
    const double ns = TimePerOp(Scaled(params.scale, 2'000'000), [&](uint64_t i) {
      sink = cache.Touch(i % 512, i);
    });
    report.metrics.push_back({"cache_touch", ns, "ns/op"});
  }

  {
    HierarchyConfig config;
    config.num_cores = 4;
    CacheHierarchy hierarchy(config);
    hierarchy.Access(0, 0x1000, 8, false, 0);
    const double ns = TimePerOp(Scaled(params.scale, 1'000'000), [&](uint64_t i) {
      hierarchy.Access(0, 0x1000, 8, false, i + 1);
    });
    report.metrics.push_back({"hierarchy_local_hit", ns, "ns/op"});
  }

  {
    auto rig = MakeRig(2, params.seed);
    Machine& machine = *rig->machine;
    const TypeId type = rig->registry->Register("bench_obj", 256);
    const FunctionId fn = machine.symbols().Intern("bench");
    CoreContext ctx = machine.Context(0);
    const double ns = TimePerOp(Scaled(params.scale, 200'000), [&](uint64_t) {
      const Addr a = ctx.Alloc(type, fn);
      ctx.Free(a, fn);
    });
    report.metrics.push_back({"slab_alloc_free", ns, "ns/op"});

    const Addr addr = ctx.Alloc(type, fn);
    volatile uint64_t sink = 0;
    const double resolve_ns = TimePerOp(Scaled(params.scale, 2'000'000), [&](uint64_t) {
      sink = rig->allocator->Resolve(addr + 128).type;
    });
    report.metrics.push_back({"resolve", resolve_ns, "ns/op"});
  }

  {
    auto rig = MakeRig(4, params.seed);
    Machine& machine = *rig->machine;
    MemcachedConfig mc;
    mc.rx_ring_entries = 32;
    MemcachedWorkload workload(rig->env.get(), mc);
    workload.Install(machine);
    const uint64_t steps = Scaled(params.scale, 50'000);
    const auto start = Clock::now();
    machine.RunSteps(steps);
    report.metrics.push_back(
        {"memcached_step", ElapsedNs(start) / static_cast<double>(steps), "ns/op"});
    report.metrics.push_back(
        {"memcached_sim_cycles_per_step",
         static_cast<double>(machine.MaxClock()) / static_cast<double>(steps), "cycles"});
  }

  const IbsConfig ibs;
  report.metrics.push_back(
      {"ibs_interrupt_cycles", static_cast<double>(ibs.interrupt_cycles), "cycles"});
  const DebugRegCostModel debug_costs;
  report.metrics.push_back({"watchpoint_interrupt_cycles",
                            static_cast<double>(debug_costs.interrupt_cycles), "cycles"});
  report.metrics.push_back({"debugreg_setup_initiator_cycles",
                            static_cast<double>(debug_costs.setup_initiator_cycles),
                            "cycles"});
  return report;
}

// Simulated memcached throughput, stock vs. the paper's core-local tx fix.
BenchReport RunMemcachedThroughput(const BenchParams& params) {
  BenchReport report;
  report.bench = "memcached_throughput";
  const uint64_t warm = Scaled(params.scale, 10'000'000);
  const uint64_t measure = Scaled(params.scale, 40'000'000);
  for (const bool fixed : {false, true}) {
    auto rig = MakeRig(16, params.seed);
    Machine& machine = *rig->machine;
    MemcachedConfig mc;
    mc.local_queue_fix = fixed;
    MemcachedWorkload workload(rig->env.get(), mc);
    workload.Install(machine);
    machine.RunFor(warm);
    workload.ResetStats();
    const uint64_t start = machine.MaxClock();
    machine.RunFor(measure);
    const double rps =
        ThroughputRps(workload.CompletedRequests(), machine.MaxClock() - start);
    report.metrics.push_back(
        {fixed ? "fixed_rps" : "stock_rps", rps, "req/s"});
  }
  return report;
}

// Simulated Apache throughput at the paper's three operating points.
BenchReport RunApacheThroughput(const BenchParams& params) {
  BenchReport report;
  report.bench = "apache_throughput";
  const uint64_t warm = Scaled(params.scale, 10'000'000);
  const uint64_t measure = Scaled(params.scale, 40'000'000);
  const std::pair<const char*, ApacheConfig> points[] = {
      {"peak_rps", ApacheConfig::Peak()},
      {"dropoff_rps", ApacheConfig::DropOff()},
      {"fixed_rps", ApacheConfig::Fixed()},
  };
  for (const auto& [name, apache_config] : points) {
    auto rig = MakeRig(16, params.seed);
    Machine& machine = *rig->machine;
    ApacheWorkload workload(rig->env.get(), apache_config);
    workload.Install(machine);
    machine.RunFor(warm);
    workload.ResetStats();
    const uint64_t start = machine.MaxClock();
    machine.RunFor(measure);
    report.metrics.push_back(
        {name, ThroughputRps(workload.CompletedRequests(), machine.MaxClock() - start),
         "req/s"});
  }
  return report;
}

}  // namespace

bool BenchRegistry::Register(const std::string& name, const std::string& description,
                             BenchFn fn) {
  DPROF_CHECK(fn != nullptr);
  auto [it, inserted] = benches_.emplace(name, BenchInfo{name, description, std::move(fn)});
  (void)it;
  return inserted;
}

const BenchInfo* BenchRegistry::Find(const std::string& name) const {
  auto it = benches_.find(name);
  return it == benches_.end() ? nullptr : &it->second;
}

std::vector<std::string> BenchRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(benches_.size());
  for (const auto& [name, info] : benches_) {
    (void)info;
    names.push_back(name);
  }
  return names;
}

BenchRegistry& BenchRegistry::Default() {
  static BenchRegistry* registry = [] {
    auto* r = new BenchRegistry();
    RegisterBuiltinBenches(*r);
    return r;
  }();
  return *registry;
}

void RegisterBuiltinBenches(BenchRegistry& registry) {
  registry.Register("micro_costs",
                    "host cost of substrate primitives + paper cost constants",
                    RunMicroCosts);
  registry.Register("memcached_throughput",
                    "simulated memcached req/s, stock vs. core-local tx fix",
                    RunMemcachedThroughput);
  registry.Register("apache_throughput",
                    "simulated Apache req/s at peak / drop-off / fixed",
                    RunApacheThroughput);
}

std::string BenchReportToJson(const BenchReport& report) {
  JsonWriter json;
  json.BeginObject();
  json.Key("bench").String(report.bench);
  json.Key("metrics").BeginArray();
  for (const BenchMetric& metric : report.metrics) {
    json.BeginObject();
    json.Key("name").String(metric.name);
    json.Key("value").Number(metric.value);
    json.Key("unit").String(metric.unit);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

std::string BenchReportToText(const BenchReport& report) {
  std::string out = "bench: " + report.bench + "\n";
  for (const BenchMetric& metric : report.metrics) {
    char line[160];
    std::snprintf(line, sizeof(line), "  %-36s %14.2f %s\n", metric.name.c_str(),
                  metric.value, metric.unit.c_str());
    out += line;
  }
  return out;
}

}  // namespace dprof
