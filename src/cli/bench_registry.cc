#include "src/cli/bench_registry.h"

#include <sys/wait.h>

#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <utility>

#include "src/cli/scenario_registry.h"
#include "src/cli/whatif.h"
#include "src/machine/engine.h"
#include "src/sim/hierarchy.h"
#include "src/util/check.h"
#include "src/util/json_writer.h"
#include "src/util/rng.h"
#include "src/workload/apache.h"
#include "src/workload/kernel.h"
#include "src/workload/memcached.h"

namespace dprof {

namespace {

using Clock = std::chrono::steady_clock;

// Benches reuse the scenario rig assembly so machine wiring lives in exactly
// one place (MakeBaseRig).
std::unique_ptr<ScenarioRig> MakeRig(int cores, uint64_t seed) {
  RunSpec params;
  params.cores = cores;
  params.seed = seed;
  return MakeBaseRig(params);
}

double ElapsedNs(Clock::time_point start) {
  return std::chrono::duration<double, std::nano>(Clock::now() - start).count();
}

// Times `iters` calls of `op` and returns host nanoseconds per call.
template <typename Op>
double TimePerOp(uint64_t iters, Op&& op) {
  const auto start = Clock::now();
  for (uint64_t i = 0; i < iters; ++i) op(i);
  return ElapsedNs(start) / static_cast<double>(iters);
}

uint64_t Scaled(double scale, uint64_t base) {
  const double scaled = scale * static_cast<double>(base);
  return scaled < 1.0 ? 1 : static_cast<uint64_t>(scaled);
}

// Host cost of the substrate primitives, plus the paper's §6.3/§6.4 cost
// constants so the baseline records the simulated-cost model in effect.
BenchReport RunMicroCosts(const BenchParams& params) {
  BenchReport report;
  report.bench = "micro_costs";

  {
    Cache cache(CacheGeometry{32 * 1024, 64, 8});
    for (uint64_t line = 0; line < 512; ++line) cache.Insert(line, line);
    volatile bool sink = false;
    const double ns = TimePerOp(Scaled(params.scale, 2'000'000), [&](uint64_t i) {
      sink = cache.Touch(i % 512, i);
    });
    report.metrics.push_back({"cache_touch", ns, "ns/op"});
  }

  {
    HierarchyConfig config;
    config.num_cores = 4;
    CacheHierarchy hierarchy(config);
    hierarchy.Access(0, 0x1000, 8, false, 0);
    const double ns = TimePerOp(Scaled(params.scale, 1'000'000), [&](uint64_t i) {
      hierarchy.Access(0, 0x1000, 8, false, i + 1);
    });
    report.metrics.push_back({"hierarchy_local_hit", ns, "ns/op"});
  }

  {
    auto rig = MakeRig(2, params.seed);
    Machine& machine = *rig->machine;
    const TypeId type = rig->registry->Register("bench_obj", 256);
    const FunctionId fn = machine.symbols().Intern("bench");
    CoreContext ctx = machine.Context(0);
    const double ns = TimePerOp(Scaled(params.scale, 200'000), [&](uint64_t) {
      const Addr a = ctx.Alloc(type, fn);
      ctx.Free(a, fn);
    });
    report.metrics.push_back({"slab_alloc_free", ns, "ns/op"});

    const Addr addr = ctx.Alloc(type, fn);
    volatile uint64_t sink = 0;
    const double resolve_ns = TimePerOp(Scaled(params.scale, 2'000'000), [&](uint64_t) {
      sink = rig->allocator->Resolve(addr + 128).type;
    });
    report.metrics.push_back({"resolve", resolve_ns, "ns/op"});
  }

  {
    auto rig = MakeRig(4, params.seed);
    Machine& machine = *rig->machine;
    MemcachedConfig mc;
    mc.rx_ring_entries = 32;
    MemcachedWorkload workload(rig->env.get(), mc);
    workload.Install(machine);
    const uint64_t steps = Scaled(params.scale, 50'000);
    const auto start = Clock::now();
    machine.RunSteps(steps);
    report.metrics.push_back(
        {"memcached_step", ElapsedNs(start) / static_cast<double>(steps), "ns/op"});
    report.metrics.push_back(
        {"memcached_sim_cycles_per_step",
         static_cast<double>(machine.MaxClock()) / static_cast<double>(steps), "cycles"});
  }

  const IbsConfig ibs;
  report.metrics.push_back(
      {"ibs_interrupt_cycles", static_cast<double>(ibs.interrupt_cycles), "cycles"});
  const DebugRegCostModel debug_costs;
  report.metrics.push_back({"watchpoint_interrupt_cycles",
                            static_cast<double>(debug_costs.interrupt_cycles), "cycles"});
  report.metrics.push_back({"debugreg_setup_initiator_cycles",
                            static_cast<double>(debug_costs.setup_initiator_cycles),
                            "cycles"});
  return report;
}

// Drives one access mix through the batch-apply interface the engine's
// apply pass uses since PR 5: ops gather into per-core windows (flushed
// when the issuing core changes or the window fills, like a merge drain)
// and resolve via CacheHierarchy::ApplyBatch, so the measurement includes
// the prefetch pipelining the real apply pass gets. `gen(i, &core, &addr,
// &size_w)` produces op i; one simulated cycle elapses per op. Returns host
// ns per access.
template <typename Gen>
double TimeBatchApply(CacheHierarchy& h, uint64_t* now, uint64_t ops, Gen&& gen) {
  constexpr uint32_t kWindow = 64;
  ApplyLane window[kWindow];
  uint32_t nw = 0;
  int window_core = 0;
  uint64_t base = 0;
  const auto start = Clock::now();
  for (uint64_t i = 0; i < ops; ++i) {
    int core = 0;
    Addr addr = 0;
    uint32_t size_w = 0;
    gen(i, &core, &addr, &size_w);
    ++*now;
    if (core != window_core || nw == kWindow) {
      if (nw > 0) h.ApplyBatch(window_core, base, window, nw);
      nw = 0;
      window_core = core;
    }
    if (nw == 0) base = *now;
    window[nw++] = ApplyLane{addr, static_cast<uint32_t>(*now - base), size_w};
  }
  if (nw > 0) h.ApplyBatch(window_core, base, window, nw);
  return ElapsedNs(start) / static_cast<double>(ops);
}

// ns/access of the simulated cache hierarchy itself, per access mix, driven
// through the batch-apply path (the engine's apply-pass inner loop, ~70% of
// a `dprof run` since PR 3). CI gates regressions on the stable mixes via
// compare_bench.py --only.
BenchReport RunHierarchyBench(const BenchParams& params) {
  BenchReport report;
  report.bench = "hierarchy";
  HierarchyConfig config;
  config.num_cores = 16;
  CacheHierarchy h(config);
  uint64_t now = 0;
  const uint32_t line = config.l1.line_size;
  constexpr uint32_t kRead8 = 8;
  constexpr uint32_t kWrite8 = 8 | ApplyLane::kWriteBit;

  // Pure L1 read hits: 256 resident lines, one core.
  {
    for (uint64_t i = 0; i < 256; ++i) {
      h.Access(0, i * line, 8, false, ++now);
    }
    const double ns = TimeBatchApply(
        h, &now, Scaled(params.scale, 4'000'000),
        [&](uint64_t i, int* core, Addr* addr, uint32_t* size_w) {
          *core = 0;
          *addr = (i & 255) * line;
          *size_w = kRead8;
        });
    report.metrics.push_back({"l1_read_hit", ns, "ns/access"});
  }

  // L1 write hits on exclusively-owned lines (the write fast path).
  {
    for (uint64_t i = 0; i < 256; ++i) {
      h.Access(1, i * line, 8, true, ++now);
    }
    const double ns = TimeBatchApply(
        h, &now, Scaled(params.scale, 4'000'000),
        [&](uint64_t i, int* core, Addr* addr, uint32_t* size_w) {
          *core = 1;
          *addr = (i & 255) * line;
          *size_w = kWrite8;
        });
    report.metrics.push_back({"l1_write_hit", ns, "ns/access"});
  }

  // L2 hits: cycle a footprint larger than L1 (4096 lines = 256 KiB).
  {
    h.FlushAll();
    const double ns = TimeBatchApply(
        h, &now, Scaled(params.scale, 2'000'000),
        [&](uint64_t i, int* core, Addr* addr, uint32_t* size_w) {
          *core = 2;
          *addr = (i & 4095) * line;
          *size_w = kRead8;
        });
    report.metrics.push_back({"l2_hit", ns, "ns/access"});
  }

  // L3 hits: cycle a footprint larger than L2 (32768 lines = 2 MiB).
  {
    h.FlushAll();
    const double ns = TimeBatchApply(
        h, &now, Scaled(params.scale, 1'000'000),
        [&](uint64_t i, int* core, Addr* addr, uint32_t* size_w) {
          *core = 3;
          *addr = (i & 32767) * line;
          *size_w = kRead8;
        });
    report.metrics.push_back({"l3_hit", ns, "ns/access"});
  }

  // Cold DRAM misses: a stream of never-repeated lines (L3 fills + evictions
  // once the stream wraps past capacity).
  {
    h.FlushAll();
    const double ns = TimeBatchApply(
        h, &now, Scaled(params.scale, 1'000'000),
        [&](uint64_t i, int* core, Addr* addr, uint32_t* size_w) {
          *core = 4;
          *addr = (1ull << 32) + i * line;
          *size_w = kRead8;
        });
    report.metrics.push_back({"dram_miss", ns, "ns/access"});
  }

  // Invalidation ping-pong: four cores take turns writing the same 64 lines,
  // so every access is a remote-invalidation miss plus a write upgrade.
  {
    h.FlushAll();
    const double ns = TimeBatchApply(
        h, &now, Scaled(params.scale, 1'000'000),
        [&](uint64_t i, int* core, Addr* addr, uint32_t* size_w) {
          *core = static_cast<int>((i >> 6) & 3);
          *addr = (2ull << 32) + (i & 63) * line;
          *size_w = kWrite8;
        });
    report.metrics.push_back({"invalidation_pingpong", ns, "ns/access"});
  }

  // Mixed: 16 cores in 16-op drains (the engine's apply merge hands the
  // hierarchy per-core runs, not per-op core rotation), pseudo-random lines
  // in a 4096-line shared footprint, 25% writes — every path (hits, fills,
  // upgrades, foreign fetches, invalidations) in one scenario-shaped
  // number.
  {
    h.FlushAll();
    Rng rng(params.seed);
    const double ns = TimeBatchApply(
        h, &now, Scaled(params.scale, 2'000'000),
        [&](uint64_t i, int* core, Addr* addr, uint32_t* size_w) {
          const uint64_t r = rng.Next();
          *core = static_cast<int>((i >> 4) & 15);
          *addr = (3ull << 32) + (r & 4095) * line;
          *size_w = (r >> 40) % 4 == 0 ? kWrite8 : kRead8;
        });
    report.metrics.push_back({"mixed", ns, "ns/access"});
  }

  // Geometric mean across the mixes: the headline ns/access figure the CI
  // regression gate watches.
  double log_sum = 0.0;
  for (const BenchMetric& metric : report.metrics) {
    log_sum += std::log(metric.value);
  }
  report.metrics.push_back(
      {"geomean", std::exp(log_sum / static_cast<double>(report.metrics.size())),
       "ns/access"});
  return report;
}

// Simulated memcached throughput, stock vs. the paper's core-local tx fix.
// Runs on the epoch engine (the default execution strategy everywhere
// else); with no profiling session attached every epoch qualifies for
// record elision, so this is the "profiling off is free" operating point.
BenchReport RunMemcachedThroughput(const BenchParams& params) {
  BenchReport report;
  report.bench = "memcached_throughput";
  const uint64_t warm = Scaled(params.scale, 10'000'000);
  const uint64_t measure = Scaled(params.scale, 40'000'000);
  // Both arms come from the registered scenario factory, with the fix
  // expressed as the RunSpec option the CLI exposes (--local-tx-queue).
  const ScenarioInfo* info = ScenarioRegistry::Default().Find("memcached");
  DPROF_CHECK(info != nullptr);
  for (const bool fixed : {false, true}) {
    RunSpec spec;
    spec.cores = 16;
    spec.seed = params.seed;
    spec.local_tx_queue = fixed;
    auto rig = info->factory(spec);
    Machine& machine = *rig->machine;
    rig->workload->Install(machine);
    Engine engine(&machine, EngineConfig{});
    machine.SetExecutor(&engine);
    machine.RunFor(warm);
    rig->workload->ResetStats();
    const uint64_t start = machine.MaxClock();
    machine.RunFor(measure);
    const double rps =
        ThroughputRps(rig->workload->CompletedRequests(), machine.MaxClock() - start);
    report.metrics.push_back(
        {fixed ? "fixed_rps" : "stock_rps", rps, "req/s"});
    machine.SetExecutor(nullptr);
  }
  return report;
}

// Simulated Apache throughput at the paper's three operating points. On the
// epoch engine, like the memcached throughput bench above.
BenchReport RunApacheThroughput(const BenchParams& params) {
  BenchReport report;
  report.bench = "apache_throughput";
  const uint64_t warm = Scaled(params.scale, 10'000'000);
  const uint64_t measure = Scaled(params.scale, 40'000'000);
  auto measure_workload = [&](Workload& workload, Machine& machine) {
    workload.Install(machine);
    Engine engine(&machine, EngineConfig{});
    machine.SetExecutor(&engine);
    machine.RunFor(warm);
    workload.ResetStats();
    const uint64_t start = machine.MaxClock();
    machine.RunFor(measure);
    const double rps =
        ThroughputRps(workload.CompletedRequests(), machine.MaxClock() - start);
    machine.SetExecutor(nullptr);
    return rps;
  };
  // Peak is an operating point (offered load below the knee), not a fix:
  // it keeps its explicit config. Drop-off and fixed are the scenario
  // factory's two RunSpec shapes (--admission-control off/on).
  {
    auto rig = MakeRig(16, params.seed);
    ApacheWorkload workload(rig->env.get(), ApacheConfig::Peak());
    report.metrics.push_back(
        {"peak_rps", measure_workload(workload, *rig->machine), "req/s"});
  }
  const ScenarioInfo* info = ScenarioRegistry::Default().Find("apache");
  DPROF_CHECK(info != nullptr);
  for (const bool fixed : {false, true}) {
    RunSpec spec;
    spec.cores = 16;
    spec.seed = params.seed;
    spec.admission_control = fixed;
    auto rig = info->factory(spec);
    report.metrics.push_back({fixed ? "fixed_rps" : "dropoff_rps",
                              measure_workload(*rig->workload, *rig->machine), "req/s"});
  }
  return report;
}

// Smoke-sized end-to-end run of the whatif engine: memcached at 8 cores,
// --auto over the top two profiled types. Emits one stable wall-clock row
// (whatif_smoke_seconds, CI-gated) plus one volatile delta row per
// candidate (whatif_candidate_*, SKIP-not-fail in compare_bench.py — the
// candidate set follows the profile ranking and may change release to
// release).
BenchReport RunWhatIfSmoke(const BenchParams& params) {
  BenchReport report;
  report.bench = "whatif_smoke";
  ScenarioRegistry& registry = ScenarioRegistry::Default();
  RunSpec spec;
  spec.cores = 8;
  spec.seed = params.seed;
  spec.collect_cycles = Scaled(params.scale, 2'000'000);

  const auto start = Clock::now();
  RunSpec probe = spec;
  probe.threads = 1;
  probe.collect_histories = false;
  probe.build_view_json = false;
  const ScenarioReport baseline = RunScenario(registry, "memcached", probe);
  const std::vector<WhatIfCandidate> candidates = AutoCandidates(baseline.profile, 2);
  const WhatIfReport whatif = RunWhatIf(registry, "memcached", spec, candidates);
  report.metrics.push_back({"whatif_smoke_seconds", ElapsedNs(start) / 1e9, "s"});

  for (const WhatIfOutcome& out : whatif.outcomes) {
    report.metrics.push_back({"whatif_candidate_" + out.candidate.type + "_" +
                                  TypeTransformKindName(out.candidate.kind) + "_delta_pct",
                              out.delta_pct, "%"});
  }
  return report;
}

// Epoch-engine scaling on the paper's 16-core memcached scenario: the full
// `dprof run` pipeline (phase-1 IBS collection + phase-2 histories + views)
// timed on the legacy sequential loop, the engine at one thread, and the
// engine at hardware concurrency. Engine outputs are bit-identical across
// thread counts; only wall-clock moves.
BenchReport RunParallelEngine(const BenchParams& params) {
  BenchReport report;
  report.bench = "parallel_engine";
  const uint64_t cycles = Scaled(params.scale, 40'000'000);

  // Both sides time the same work: phase-1 collection, phase-2 histories
  // for the top types, the profile table, and miss classification (view
  // JSON rendering is skipped on both). The legacy baseline is the same
  // session pipeline on the step-the-minimum-clock-core loop.
  ScenarioReport last_report;
  auto run_once = [&](int threads, bool use_engine, bool sampled = false,
                      const std::string& topology = std::string(),
                      bool socket_aware = true) {
    RunSpec sp;
    sp.cores = 16;
    sp.topology = topology;
    sp.socket_aware_apply = socket_aware;
    sp.seed = params.seed;
    sp.collect_cycles = cycles;
    sp.threads = threads;
    sp.use_engine = use_engine;
    sp.build_view_json = false;
    sp.sampled = sampled;
    const auto start = Clock::now();
    last_report = RunScenario(ScenarioRegistry::Default(), "memcached", sp);
    return ElapsedNs(start) / 1e9;
  };

  // Per-phase wall-clock breakdown rides along with each engine row, so
  // phase shares are measured rather than estimated. deliver is a subset of
  // commit at one thread (delivery runs inline); at >1 threads it overlaps
  // the next epoch's simulate phase on the delivery thread.
  auto push_engine_run = [&report](const std::string& prefix, double seconds,
                                   const ScenarioReport& r) {
    report.metrics.push_back({prefix + "_seconds", seconds, "s"});
    report.metrics.push_back({prefix + "_simulate_seconds", r.engine_simulate_seconds, "s"});
    report.metrics.push_back({prefix + "_apply_seconds", r.engine_apply_seconds, "s"});
    report.metrics.push_back({prefix + "_commit_seconds", r.engine_commit_seconds, "s"});
    report.metrics.push_back({prefix + "_deliver_seconds", r.engine_deliver_seconds, "s"});
  };

  const double legacy_s = run_once(0, false);
  const double engine_t1_s = run_once(1, true);
  const ScenarioReport t1 = last_report;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());

  report.metrics.push_back({"legacy_loop_seconds", legacy_s, "s"});
  push_engine_run("engine_threads1", engine_t1_s, t1);
  report.metrics.push_back(
      {"engine_threads1_epochs", static_cast<double>(t1.engine_epochs), "epochs"});
  report.metrics.push_back({"engine_hw_threads", static_cast<double>(hw), "threads"});

  // Fixed-thread-count scaling rows, so parallel speedup is tracked (and CI
  // gated) at points every reasonable runner can reproduce. A row whose
  // thread count exceeds the hardware is skipped and annotated — timing an
  // oversubscribed run measures the scheduler, not the engine.
  double engine_t2_s = 0.0;
  double engine_t4_s = 0.0;
  for (const int threads : {2, 4}) {
    const std::string prefix = "engine_threads" + std::to_string(threads);
    if (hw < threads) {
      report.metrics.push_back({prefix + "_skipped_hw_too_small", 1.0, ""});
      continue;
    }
    const double seconds = run_once(threads, true);
    (threads == 2 ? engine_t2_s : engine_t4_s) = seconds;
    push_engine_run(prefix, seconds, last_report);
  }

  const double engine_thw_s = run_once(0, true);
  push_engine_run("engine_hw", engine_thw_s, last_report);

  // Sampled execution: the same pipeline with statistical fast-forward at
  // the default period/window, same thread count as the exact hw row — the
  // speedup row is the sampled mode's headline number.
  const double engine_sampled_s = run_once(0, true, /*sampled=*/true);
  push_engine_run("engine_sampled", engine_sampled_s, last_report);
  report.metrics.push_back(
      {"engine_sampled_speedup_vs_exact",
       engine_sampled_s > 0 ? engine_thw_s / engine_sampled_s : 0.0, "x"});
  report.metrics.push_back(
      {"speedup_hw_vs_legacy", engine_thw_s > 0 ? legacy_s / engine_thw_s : 0.0, "x"});
  report.metrics.push_back(
      {"speedup_hw_vs_threads1", engine_thw_s > 0 ? engine_t1_s / engine_thw_s : 0.0, "x"});
  report.metrics.push_back(
      {"speedup_threads1_vs_legacy", engine_t1_s > 0 ? legacy_s / engine_t1_s : 0.0, "x"});
  if (engine_t2_s > 0) {
    report.metrics.push_back(
        {"speedup_threads2_vs_threads1", engine_t1_s / engine_t2_s, "x"});
  }
  if (engine_t4_s > 0) {
    report.metrics.push_back(
        {"speedup_threads4_vs_threads1", engine_t1_s / engine_t4_s, "x"});
  }

  // Big-preset rows (4 sockets x 16 cores): socket-aware apply sharding vs
  // the flat per-shard claim at four threads — the NUMA sharding headline.
  // The two arms differ only in EngineConfig::socket_aware_apply and commit
  // identical streams, so the ratio isolates shard-claim and locality cost;
  // both arms oversubscribe a small host identically, which keeps the
  // comparison meaningful even below four hardware threads.
  {
    const double socket_s = run_once(4, true, false, "big", true);
    const double flat_s = run_once(4, true, false, "big", false);
    report.metrics.push_back({"big_threads4_socket_seconds", socket_s, "s"});
    report.metrics.push_back({"big_threads4_flat_seconds", flat_s, "s"});
    report.metrics.push_back(
        {"big_socket_vs_flat_speedup", socket_s > 0 ? flat_s / socket_s : 0.0, "x"});
  }
  // Deeper fixed-thread scaling on the big preset, same skip convention as
  // the threads2/threads4 rows above. engine_threads8_seconds is CI-gated.
  for (const int threads : {8, 16}) {
    const std::string prefix = "engine_threads" + std::to_string(threads);
    if (hw < threads) {
      report.metrics.push_back({prefix + "_skipped_hw_too_small", 1.0, ""});
      continue;
    }
    push_engine_run(prefix, run_once(threads, true, false, "big"), last_report);
  }

  // Unprofiled stretch: the record-elision operating point. No session is
  // attached, so no hook or observer can consume an event and every epoch
  // is eligible; elision off vs on isolates the record+merge cost of the
  // materialized SoA lanes (the committed stream is identical either way).
  auto run_unprofiled = [&](bool elide) {
    auto rig = MakeRig(16, params.seed);
    Machine& machine = *rig->machine;
    MemcachedWorkload workload(rig->env.get(), MemcachedConfig{});
    workload.Install(machine);
    EngineConfig engine_config;
    engine_config.threads = 1;
    engine_config.allow_record_elision = elide;
    Engine engine(&machine, engine_config);
    machine.SetExecutor(&engine);
    const auto start = Clock::now();
    machine.RunFor(cycles);
    const double seconds = ElapsedNs(start) / 1e9;
    DPROF_CHECK(!elide ||
                engine.phase_stats().elided_epochs == engine.phase_stats().epochs);
    machine.SetExecutor(nullptr);
    return seconds;
  };
  report.metrics.push_back(
      {"engine_threads1_unprofiled_seconds", run_unprofiled(false), "s"});
  report.metrics.push_back(
      {"engine_threads1_unprofiled_elided_seconds", run_unprofiled(true), "s"});
  return report;
}

// ---------------------------------------------------------------------------
// Paper-table reproduction programs (bench/table_*.cc, figure_*, ablations)
// surfaced through this registry: `dprof bench table_6_1_memcached_profile`
// executes the sibling bench_* binary and relays its report.
// ---------------------------------------------------------------------------

std::string& BenchProgramDir() {
  static std::string* dir = new std::string();
  return *dir;
}

BenchReport RunTableProgram(const std::string& name, const BenchParams& params) {
  (void)params;  // the reproduction programs fix their own seeds and scales
  BenchReport report;
  report.bench = name;
  const std::string& dir = BenchProgramDir();
  if (dir.empty()) {
    report.text = "bench program directory unknown (not invoked via the dprof CLI)\n";
    report.metrics.push_back({"exit_code", -1.0, ""});
    return report;
  }
  const std::string command = dir + "/bench_" + name + " 2>&1";
  const auto start = Clock::now();
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) {
    report.text = "failed to start " + command + "\n";
    report.metrics.push_back({"exit_code", -1.0, ""});
    return report;
  }
  std::array<char, 4096> buffer;
  size_t n = 0;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    report.text.append(buffer.data(), n);
  }
  const int status = pclose(pipe);
  // Decode the wait status: exit code when the program exited, -signal when
  // it died on one, -1 when pclose itself failed.
  int exit_code = -1;
  if (status >= 0) {
    exit_code = WIFEXITED(status) ? WEXITSTATUS(status)
                                  : (WIFSIGNALED(status) ? -WTERMSIG(status) : -1);
  }
  report.metrics.push_back({"exit_code", static_cast<double>(exit_code), ""});
  report.metrics.push_back({"host_seconds", ElapsedNs(start) / 1e9, "s"});
  return report;
}

}  // namespace

void SetBenchProgramDir(const std::string& dir) { BenchProgramDir() = dir; }

bool BenchRegistry::Register(const std::string& name, const std::string& description,
                             BenchFn fn) {
  DPROF_CHECK(fn != nullptr);
  auto [it, inserted] = benches_.emplace(name, BenchInfo{name, description, std::move(fn)});
  (void)it;
  return inserted;
}

const BenchInfo* BenchRegistry::Find(const std::string& name) const {
  auto it = benches_.find(name);
  return it == benches_.end() ? nullptr : &it->second;
}

std::vector<std::string> BenchRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(benches_.size());
  for (const auto& [name, info] : benches_) {
    (void)info;
    names.push_back(name);
  }
  return names;
}

BenchRegistry& BenchRegistry::Default() {
  static BenchRegistry* registry = [] {
    auto* r = new BenchRegistry();
    RegisterBuiltinBenches(*r);
    return r;
  }();
  return *registry;
}

void RegisterBuiltinBenches(BenchRegistry& registry) {
  registry.Register("micro_costs",
                    "host cost of substrate primitives + paper cost constants",
                    RunMicroCosts);
  registry.Register("hierarchy",
                    "ns/access of the cache-hierarchy model per access mix "
                    "(hits, misses, invalidation ping-pong, mixed)",
                    RunHierarchyBench);
  registry.Register("memcached_throughput",
                    "simulated memcached req/s, stock vs. core-local tx fix",
                    RunMemcachedThroughput);
  registry.Register("apache_throughput",
                    "simulated Apache req/s at peak / drop-off / fixed",
                    RunApacheThroughput);
  registry.Register("parallel_engine",
                    "epoch-engine wall-clock: legacy loop vs 1 / N host threads "
                    "on the 16-core memcached scenario",
                    RunParallelEngine);
  registry.Register("whatif_smoke",
                    "end-to-end `dprof whatif --auto` smoke on memcached "
                    "(top-2 types x all fixes, ranked deltas)",
                    RunWhatIfSmoke);

  // Paper-table reproductions (standalone bench/ programs run from here).
  static const char* kTablePrograms[] = {
      "table_6_1_memcached_profile", "table_6_2_lockstat_memcached",
      "table_6_3_oprofile_memcached", "table_6_4_6_5_apache_profile",
      "table_6_6_lockstat_apache",   "table_6_7_history_collection",
      "table_6_8_history_rates",     "table_6_9_overhead_breakdown",
      "table_6_10_pairwise",         "figure_6_1_dataflow_skbuff",
      "figure_6_2_ibs_overhead",     "figure_6_3_unique_paths",
      "ablation_pairwise",           "ablation_sampling_rate",
      "case_study_fixes"};
  for (const char* name : kTablePrograms) {
    registry.Register(
        name, std::string("paper reproduction: runs the standalone bench_") + name,
        [name](const BenchParams& params) { return RunTableProgram(name, params); });
  }
}

std::string BenchReportToJson(const BenchReport& report) {
  JsonWriter json;
  json.BeginObject();
  json.Key("bench").String(report.bench);
  if (!report.text.empty()) {
    json.Key("output").String(report.text);
  }
  json.Key("metrics").BeginArray();
  for (const BenchMetric& metric : report.metrics) {
    json.BeginObject();
    json.Key("name").String(metric.name);
    json.Key("value").Number(metric.value);
    json.Key("unit").String(metric.unit);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

std::string BenchReportToText(const BenchReport& report) {
  std::string out = "bench: " + report.bench + "\n";
  if (!report.text.empty()) {
    out += report.text;
    if (out.back() != '\n') {
      out += '\n';
    }
  }
  for (const BenchMetric& metric : report.metrics) {
    char line[160];
    std::snprintf(line, sizeof(line), "  %-36s %14.2f %s\n", metric.name.c_str(),
                  metric.value, metric.unit.c_str());
    out += line;
  }
  return out;
}

}  // namespace dprof
