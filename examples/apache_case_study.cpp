// Paper §6.2 end-to-end: differential working-set analysis of Apache at its
// throughput peak vs. past the drop-off, then the admission-control fix.
//
// Expected outcome (paper): at drop-off the tcp_sock working set grows ~10x,
// its share of all L1 misses roughly doubles, and its average miss latency
// triples; limiting the accept backlog recovers ~16% throughput at the same
// offered load.

#include <cstdio>

#include "src/dprof/session.h"
#include "src/workload/apache.h"
#include "src/workload/kernel.h"

namespace {

using namespace dprof;

struct RunResult {
  double throughput = 0.0;
  double sock_ws_bytes = 0.0;
  double sock_miss_pct = 0.0;
  double sock_latency = 0.0;
  double queue_depth = 0.0;
};

RunResult RunConfig(const ApacheConfig& config, bool print_profile, const char* label) {
  MachineConfig machine_config;
  machine_config.hierarchy.num_cores = 16;
  Machine machine(machine_config);
  TypeRegistry registry;
  SlabAllocator allocator(&machine, &registry);
  machine.SetAllocator(&allocator);
  KernelEnv env(&machine, &allocator);
  ApacheWorkload workload(&env, config);
  workload.Install(machine);

  DProfOptions options;
  options.ibs_period_ops = 150;
  DProfSession session(&machine, &allocator, options);

  machine.RunFor(20'000'000);  // warm up: fill queues to steady state
  workload.ResetStats();
  const uint64_t start = machine.MaxClock();
  session.CollectAccessSamples(40'000'000);

  RunResult result;
  result.throughput =
      ThroughputRps(workload.CompletedRequests(), machine.MaxClock() - start);
  result.queue_depth = workload.AverageAcceptQueueDepth();
  result.sock_latency = workload.AverageSockMissLatency();

  const DataProfile profile = session.BuildDataProfile();
  if (print_profile) {
    std::printf("== DProf data profile: %s ==\n%s\n", label, profile.ToTable(6).c_str());
  }
  if (const DataProfileRow* row = profile.Find(registry.Find("tcp_sock"))) {
    result.sock_ws_bytes = row->working_set_bytes;
    result.sock_miss_pct = row->miss_pct;
  }
  return result;
}

}  // namespace

int main() {
  std::printf("profiling Apache at peak and past the drop-off (16 cores)...\n\n");
  const RunResult peak = RunConfig(ApacheConfig::Peak(), true, "peak");
  const RunResult drop = RunConfig(ApacheConfig::DropOff(), true, "drop-off");

  std::printf("== Differential analysis (the paper's diagnosis) ==\n");
  std::printf("%-34s %14s %14s\n", "", "peak", "drop-off");
  std::printf("%-34s %14.0f %14.0f\n", "throughput (req/s)", peak.throughput,
              drop.throughput);
  std::printf("%-34s %13.2fMB %13.2fMB\n", "tcp_sock working set",
              peak.sock_ws_bytes / 1048576.0, drop.sock_ws_bytes / 1048576.0);
  std::printf("%-34s %13.2f%% %13.2f%%\n", "tcp_sock share of all L1 misses",
              peak.sock_miss_pct, drop.sock_miss_pct);
  std::printf("%-34s %14.0f %14.0f\n", "avg tcp_sock line latency (cycles)",
              peak.sock_latency, drop.sock_latency);
  std::printf("%-34s %14.1f %14.1f\n", "avg accept-queue depth", peak.queue_depth,
              drop.queue_depth);

  std::printf("\n== The fix: admission control on the accept queue ==\n");
  const RunResult fixed = RunConfig(ApacheConfig::Fixed(), false, "fixed");
  std::printf("drop-off (backlog 512): %12.0f req/s\n", drop.throughput);
  std::printf("fixed    (backlog %3d): %12.0f req/s\n",
              ApacheConfig::Fixed().admission_limit, fixed.throughput);
  std::printf("improvement:            %+11.1f%%  (paper: +16%%)\n",
              100.0 * (fixed.throughput - drop.throughput) / drop.throughput);
  return 0;
}
