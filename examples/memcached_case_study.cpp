// Paper §6.1 end-to-end: diagnose memcached's transmit-queue bug with DProf,
// cross-check with lock-stat and OProfile, then apply the fix and measure.
//
// Expected outcome (paper): size-1024 tops the data profile and bounces; the
// skbuff data flow shows a CPU change between pfifo_fast_enqueue and
// pfifo_fast_dequeue; installing a local queue selection function removes the
// bouncing and improves throughput by ~57%.

#include <cstdio>

#include "src/dprof/session.h"
#include "src/profilers/code_profiler.h"
#include "src/profilers/lock_stat.h"
#include "src/workload/kernel.h"
#include "src/workload/memcached.h"

namespace {

// Runs one memcached configuration and returns its throughput (req/s).
double MeasureThroughput(bool local_queue_fix, uint64_t cycles) {
  using namespace dprof;
  MachineConfig config;
  config.hierarchy.num_cores = 16;
  Machine machine(config);
  TypeRegistry registry;
  SlabAllocator allocator(&machine, &registry);
  machine.SetAllocator(&allocator);
  KernelEnv env(&machine, &allocator);
  MemcachedConfig mc;
  mc.local_queue_fix = local_queue_fix;
  MemcachedWorkload workload(&env, mc);
  workload.Install(machine);

  // Warm up, then measure.
  machine.RunFor(cycles / 4);
  workload.ResetStats();
  const uint64_t start = machine.MaxClock();
  machine.RunFor(cycles);
  return ThroughputRps(workload.CompletedRequests(), machine.MaxClock() - start);
}

}  // namespace

int main() {
  using namespace dprof;

  MachineConfig config;
  config.hierarchy.num_cores = 16;
  Machine machine(config);
  TypeRegistry registry;
  SlabAllocator allocator(&machine, &registry);
  machine.SetAllocator(&allocator);
  KernelEnv env(&machine, &allocator);

  MemcachedWorkload workload(&env, MemcachedConfig{});  // stock kernel (bug)
  workload.Install(machine);

  CodeProfiler oprofile;
  machine.AddObserver(&oprofile);
  LockStat lockstat(&machine.symbols());
  machine.SetLockObserver(&lockstat);

  DProfOptions options;
  options.ibs_period_ops = 150;
  DProfSession session(&machine, &allocator, options);

  std::printf("profiling stock memcached configuration (16 cores)...\n\n");
  const uint64_t start = machine.MaxClock();
  session.CollectAccessSamples(40'000'000);

  std::printf("== DProf data profile ==\n%s\n", session.BuildDataProfile().ToTable(6).c_str());

  const TypeId skbuff = registry.Find("skbuff");
  session.CollectHistories(skbuff, 8);
  const DataFlowGraph flow = session.BuildDataFlow(skbuff);
  std::printf("== DProf data flow for skbuff (CPU transitions in bold) ==\n%s\n",
              flow.ToAscii().c_str());
  std::printf("top cross-CPU transitions:\n");
  int shown = 0;
  for (const DataFlowEdge& edge : flow.CpuTransitions()) {
    if (shown++ >= 4) {
      break;
    }
    std::printf("  %s ==CPU=> %s  (x%llu)\n", flow.nodes()[edge.from].label.c_str(),
                flow.nodes()[edge.to].label.c_str(),
                static_cast<unsigned long long>(edge.frequency));
  }

  const uint64_t elapsed = machine.MaxClock() - start;
  std::printf("\n== lock-stat (same run) ==\n%s\n",
              lockstat.ReportTable(elapsed, machine.num_cores()).c_str());
  std::printf("== OProfile-style function profile (same run, top rows) ==\n%s\n",
              oprofile.ReportTable(machine.symbols(), 1.5).c_str());

  std::printf("== The fix: driver-provided local queue selection ==\n");
  const double buggy = MeasureThroughput(false, 30'000'000);
  const double fixed = MeasureThroughput(true, 30'000'000);
  std::printf("stock (skb_tx_hash):  %12.0f req/s\n", buggy);
  std::printf("fixed (local queue):  %12.0f req/s\n", fixed);
  std::printf("improvement:          %+11.1f%%  (paper: +57%%)\n",
              100.0 * (fixed - buggy) / buggy);
  return 0;
}
