// Quickstart: profile a workload with DProf and print the data profile.
//
// This is the smallest end-to-end use of the library:
//   1. build a simulated multicore machine + typed slab allocator,
//   2. install a workload (the paper's memcached setup, 4 cores here),
//   3. attach a DProfSession, collect access samples and object histories,
//   4. print the data profile, one path trace, and the data flow view.

#include <cstdio>

#include "src/dprof/session.h"
#include "src/workload/kernel.h"
#include "src/workload/memcached.h"

int main() {
  using namespace dprof;

  // 1. Machine + allocator.
  MachineConfig machine_config;
  machine_config.hierarchy.num_cores = 4;
  Machine machine(machine_config);
  TypeRegistry registry;
  SlabAllocator allocator(&machine, &registry);
  machine.SetAllocator(&allocator);

  // 2. Workload: memcached with the stock (buggy) tx queue selection.
  KernelEnv env(&machine, &allocator);
  MemcachedWorkload workload(&env, MemcachedConfig{});
  workload.Install(machine);

  // 3. Profile.
  DProfOptions options;
  options.ibs_period_ops = 100;
  DProfSession session(&machine, &allocator, options);
  session.CollectAccessSamples(20'000'000);  // ~20ms of simulated time

  std::printf("== Data profile (types ranked by share of all L1 misses) ==\n%s\n",
              session.BuildDataProfile().ToTable(8).c_str());

  // 4. Dig into the top type with object access histories.
  const TypeId skbuff = registry.Find("skbuff");
  session.CollectHistories(skbuff, 6);

  const auto traces = session.BuildPathTraces(skbuff);
  if (!traces.empty()) {
    std::printf("== Most frequent skbuff path trace ==\n%s\n",
                PathTraceBuilder::ToTable(traces[0], machine.symbols()).c_str());
  }

  std::printf("== skbuff data flow ==\n%s\n",
              session.BuildDataFlow(skbuff).ToAscii().c_str());

  std::printf("throughput: %.0f req/s over %llu requests\n",
              ThroughputRps(workload.CompletedRequests(), machine.MaxClock()),
              static_cast<unsigned long long>(workload.CompletedRequests()));
  return 0;
}
