// Demonstrates DProf's miss classification view (paper §4.3) on three
// contrasting workloads:
//   1. memcached with the tx-queue bug  -> invalidation (sharing) misses
//   2. the conflict demo                -> associativity conflict misses
//   3. apache past the drop-off         -> capacity misses on tcp_sock
//
// Each run prints the classification table plus the evidence DProf used
// (foreign-cache fractions, associativity-set pressure, demand vs capacity).

#include <cstdio>

#include "src/dprof/session.h"
#include "src/workload/apache.h"
#include "src/workload/conflict_demo.h"
#include "src/workload/kernel.h"
#include "src/workload/memcached.h"

namespace {

using namespace dprof;

void Classify(Workload& workload, Machine& machine, SlabAllocator& allocator,
              const char* label, const WorkingSetOptions& ws_options) {
  workload.Install(machine);
  DProfOptions options;
  options.ibs_period_ops = 120;
  DProfSession session(&machine, &allocator, options);
  session.CollectAccessSamples(30'000'000);

  const WorkingSetView ws = session.BuildWorkingSet(ws_options);
  const auto rows = session.ClassifyMisses(ws_options);
  std::printf("== %s ==\n", label);
  std::printf("%s", MissClassifier::ToTable(rows).c_str());
  std::printf("evidence: demand %.0f lines vs capacity %.0f; %zu conflicted sets "
              "(mean %.2f lines/set)\n\n",
              ws.demand_lines(), ws.capacity_lines(), ws.conflicted_sets().size(),
              ws.mean_lines_per_set());
}

}  // namespace

int main() {
  {
    MachineConfig config;
    config.hierarchy.num_cores = 8;
    Machine machine(config);
    TypeRegistry registry;
    SlabAllocator allocator(&machine, &registry);
    machine.SetAllocator(&allocator);
    KernelEnv env(&machine, &allocator);
    MemcachedWorkload workload(&env, MemcachedConfig{});
    Classify(workload, machine, allocator, "memcached with tx-hash bug (expect invalidation)",
             WorkingSetOptions{});
  }
  {
    MachineConfig config;
    config.hierarchy.num_cores = 8;
    Machine machine(config);
    TypeRegistry registry;
    SlabAllocator allocator(&machine, &registry);
    machine.SetAllocator(&allocator);
    KernelEnv env(&machine, &allocator);
    ConflictDemoWorkload workload(&env, ConflictDemoConfig{});
    WorkingSetOptions ws;
    ws.geometry = machine.hierarchy().config().l2;
    Classify(workload, machine, allocator, "conflict demo (expect conflict on pkt_stat)", ws);
  }
  {
    MachineConfig config;
    config.hierarchy.num_cores = 8;
    Machine machine(config);
    TypeRegistry registry;
    SlabAllocator allocator(&machine, &registry);
    machine.SetAllocator(&allocator);
    KernelEnv env(&machine, &allocator);
    ApacheWorkload workload(&env, ApacheConfig::DropOff());
    Classify(workload, machine, allocator, "apache past drop-off (expect capacity on tcp_sock)",
             WorkingSetOptions{});
  }
  return 0;
}
