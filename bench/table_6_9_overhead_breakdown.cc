// Reproduces paper Table 6.9: the breakdown of object-access-history
// profiling overhead into (a) debug-register interrupts, (b) reserving the
// object with the memory subsystem, and (c) the cross-core debug-register
// setup broadcast, for data types used by Apache.
//
// Paper shape: the broadcast dominates for types with few accesses per
// watched window (skbuff_fclone: 90% communication) while hot bookkeeping
// types pay mostly interrupt cost (skbuff: 60% interrupts).

#include "bench/history_bench.h"
#include "src/util/stats.h"
#include "src/util/table.h"

int main() {
  using namespace dprof;
  PrintHeader("Table 6.9: history overhead breakdown (Apache data types)",
              "Pesterev 2010, Table 6.9");

  TablePrinter table({"Data Type", "Interrupts", "Memory", "Communication"});
  for (const auto& [factory, config] : PaperHistoryRows(false)) {
    if (config.benchmark != "Apache") {
      continue;
    }
    const HistoryBenchResult r = RunHistoryBench(factory, config);
    const double total = static_cast<double>(r.breakdown.Total());
    table.AddRow({r.type_name,
                  TablePrinter::Percent(Pct(static_cast<double>(r.breakdown.interrupt_cycles),
                                            total), 0),
                  TablePrinter::Percent(Pct(static_cast<double>(r.breakdown.reserve_cycles),
                                            total), 0),
                  TablePrinter::Percent(Pct(static_cast<double>(r.breakdown.comm_cycles),
                                            total), 0)});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("paper reference rows:\n");
  std::printf("  size-1024      20%%  10%%  70%%\n");
  std::printf("  skbuff         60%%  10%%  30%%\n");
  std::printf("  skbuff_fclone   5%%   5%%  90%%\n");
  std::printf("  tcp_sock       20%%   5%%  75%%\n\n");
  std::printf("cost model: 1,000 cycles per watchpoint interrupt; 130,000 cycles on\n");
  std::printf("the initiating core per setup broadcast (220,000 total); 20,000 cycles\n");
  std::printf("to reserve an object with the memory subsystem (paper §6.4).\n");
  return 0;
}
