// Reproduces paper Figure 6-1: the data flow view for skbuff objects in
// memcached, with bold edges marking transitions from one core to another
// and dark boxes marking functions with high cache access latencies.
//
// Paper shape: transmit-path skbuffs jump to a different core between
// pfifo_fast_enqueue and pfifo_fast_dequeue — the smoking gun for the
// tx-queue selection bug.

#include "bench/bench_common.h"

int main() {
  using namespace dprof;
  PrintHeader("Figure 6-1: skbuff data flow view (memcached, tx-hash bug)",
              "Pesterev 2010, Figure 6-1");

  BenchRig rig(16, 42);
  MemcachedConfig mc;
  mc.rx_ring_entries = 96;  // shorter ring residency keeps the bench quick
  MemcachedWorkload workload(rig.env.get(), mc);
  workload.Install(*rig.machine);

  DProfOptions options;
  options.ibs_period_ops = 120;
  DProfSession session(rig.machine.get(), rig.allocator.get(), options);

  rig.machine->RunFor(10'000'000);
  session.CollectAccessSamples(20'000'000);
  const TypeId skbuff = rig.registry.Find("skbuff");
  session.CollectHistories(skbuff, 10);

  const DataFlowGraph flow = session.BuildDataFlow(skbuff);
  std::printf("== ASCII rendering (==CPU=> marks a core transition) ==\n%s\n",
              flow.ToAscii().c_str());

  std::printf("== Cross-CPU transitions, heaviest first ==\n");
  for (const DataFlowEdge& edge : flow.CpuTransitions()) {
    std::printf("  %-28s ==CPU=> %-28s x%llu\n", flow.nodes()[edge.from].label.c_str(),
                flow.nodes()[edge.to].label.c_str(),
                static_cast<unsigned long long>(edge.frequency));
  }

  std::printf("\n== Graphviz DOT (paper's figure format) ==\n%s\n",
              flow.ToDot("skbuff_data_flow").c_str());

  std::printf("paper shape: bold (cross-CPU) edge between pfifo_fast_enqueue and\n"
              "pfifo_fast_dequeue; transmit-side functions dark (high latency).\n");
  return 0;
}
