// Shared setup for the reproduction benches: builds the machine of the
// paper's evaluation (§6) — a 16-core, 4-socket AMD box with one L3 slice
// per socket — with the typed allocator and kernel environment, and
// provides throughput measurement helpers.
//
// Every bench fixes its seeds, so tables are reproducible run-to-run.

#ifndef DPROF_BENCH_BENCH_COMMON_H_
#define DPROF_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>

#include "src/dprof/session.h"
#include "src/profilers/code_profiler.h"
#include "src/profilers/lock_stat.h"
#include "src/workload/apache.h"
#include "src/workload/kernel.h"
#include "src/workload/memcached.h"

namespace dprof {

// A complete simulated testbed: machine + allocator + kernel environment.
struct BenchRig {
  explicit BenchRig(int cores = 16, uint64_t seed = 1) {
    MachineConfig config;
    config.hierarchy.num_cores = cores;
    if (cores == 16) {
      // The paper's evaluation machine (the `paper-amd` CLI preset): four
      // quad-core sockets, each with its own 4MB L3 slice.
      config.hierarchy.num_sockets = 4;
      config.hierarchy.l3 = CacheGeometry{4 * 1024 * 1024, 64, 16};
    }
    config.seed = seed;
    machine = std::make_unique<Machine>(config);
    allocator = std::make_unique<SlabAllocator>(machine.get(), &registry);
    machine->SetAllocator(allocator.get());
    env = std::make_unique<KernelEnv>(machine.get(), allocator.get());
  }

  TypeRegistry registry;
  std::unique_ptr<Machine> machine;
  std::unique_ptr<SlabAllocator> allocator;
  std::unique_ptr<KernelEnv> env;
};

// Warms to a steady state, then measures throughput over `measure` cycles.
inline double MeasureThroughput(BenchRig& rig, Workload& workload, uint64_t warm,
                                uint64_t measure) {
  rig.machine->RunFor(warm);
  workload.ResetStats();
  const uint64_t start = rig.machine->MaxClock();
  rig.machine->RunFor(measure);
  return ThroughputRps(workload.CompletedRequests(), rig.machine->MaxClock() - start);
}

inline void PrintHeader(const char* what, const char* paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", what);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================\n\n");
}

}  // namespace dprof

#endif  // DPROF_BENCH_BENCH_COMMON_H_
