// Reproduces paper Figure 6-3: percent of unique execution paths captured as
// a function of the number of history sets collected.
//
// Paper shape: diminishing returns — 30-100 sets capture most unique paths
// for every type studied (their ground truth used 720 sets).
//
// Method, like the paper: collect a large number of sets once, treat the
// paths found across all of them as ground truth, then count how many
// distinct per-history path signatures appear within the first k sets.

#include <vector>

#include "bench/bench_common.h"
#include "src/util/table.h"

namespace {

using namespace dprof;

std::vector<ObjectHistory> Collect(const char* workload_name, const char* type_name,
                                   uint32_t sets) {
  BenchRig rig(16, 5);
  std::unique_ptr<Workload> workload;
  if (std::string(workload_name) == "memcached") {
    MemcachedConfig config;
    config.rx_ring_entries = 48;  // short residency: many sets in bounded time
    workload = std::make_unique<MemcachedWorkload>(rig.env.get(), config);
  } else {
    workload = std::make_unique<ApacheWorkload>(rig.env.get(), ApacheConfig::Peak());
  }
  workload->Install(*rig.machine);

  DProfOptions options;
  options.ibs_period_ops = 200;
  // Sweep the hot members only, again like the paper.
  DProfSession session(rig.machine.get(), rig.allocator.get(), options);
  rig.machine->RunFor(10'000'000);
  session.CollectAccessSamples(6'000'000);
  const TypeId type = rig.registry.Find(type_name);

  DProfOptions collect_options = options;
  collect_options.history.member_offsets = session.samples().HotOffsets(type, 16);
  collect_options.history_phase_max_cycles = 6'000'000'000ull;
  DProfSession collector(rig.machine.get(), rig.allocator.get(), collect_options);
  collector.CollectHistories(type, sets);
  return collector.histories(type);
}

std::vector<ObjectHistory> FirstSets(const std::vector<ObjectHistory>& all, uint32_t sets) {
  std::vector<ObjectHistory> out;
  for (const ObjectHistory& h : all) {
    if (h.sweep < sets) {
      out.push_back(h);
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace dprof;
  PrintHeader("Figure 6-3: % of unique paths captured vs history sets collected",
              "Pesterev 2010, Figure 6-3");

  const uint32_t kGroundTruthSets = 48;  // paper used 720; shape is identical
  const std::vector<uint32_t> kCheckpoints = {2, 4, 8, 12, 16, 24, 32, 48};

  struct Series {
    const char* workload;
    const char* type;
  };
  const Series series[] = {
      {"memcached", "size-1024"}, {"memcached", "skbuff"},
      {"apache", "skbuff"},       {"apache", "tcp_sock"},
  };

  TablePrinter table({"Sets", "mc size-1024", "mc skbuff", "ap skbuff", "ap tcp_sock"});
  std::vector<std::vector<double>> columns;
  std::vector<size_t> totals;
  for (const Series& s : series) {
    const auto all = Collect(s.workload, s.type, kGroundTruthSets);
    const size_t total = PathTraceBuilder::CountUniqueSignatures(all);
    totals.push_back(total);
    std::vector<double> column;
    for (const uint32_t sets : kCheckpoints) {
      const size_t found = PathTraceBuilder::CountUniqueSignatures(FirstSets(all, sets));
      column.push_back(total == 0 ? 0.0
                                  : 100.0 * static_cast<double>(found) /
                                        static_cast<double>(total));
    }
    columns.push_back(std::move(column));
  }

  for (size_t i = 0; i < kCheckpoints.size(); ++i) {
    table.AddRow({TablePrinter::Count(kCheckpoints[i]), TablePrinter::Fixed(columns[0][i], 0),
                  TablePrinter::Fixed(columns[1][i], 0), TablePrinter::Fixed(columns[2][i], 0),
                  TablePrinter::Fixed(columns[3][i], 0)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("ground-truth unique paths: mc size-1024 %zu, mc skbuff %zu, ap skbuff %zu, "
              "ap tcp_sock %zu (at %u sets)\n\n",
              totals[0], totals[1], totals[2], totals[3], kGroundTruthSets);
  std::printf("paper shape: sharply diminishing returns; 30-100 sets capture most\n");
  std::printf("unique paths (their ground truth: 720 sets; y-axis starts ~50%%).\n");
  return 0;
}
