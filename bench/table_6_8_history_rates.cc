// Reproduces paper Table 6.8: average object access history collection rates
// (elements per history, histories per second, elements per second).
//
// Paper shape: rates are set by object lifetime and per-offset access
// frequency — short-lived hot types (Apache skbuff_fclone: 4600 histories/s)
// collect orders of magnitude faster than long-residency buffers
// (memcached size-1024: 53 histories/s).

#include "bench/history_bench.h"
#include "src/util/table.h"

int main() {
  using namespace dprof;
  PrintHeader("Table 6.8: history collection rates", "Pesterev 2010, Table 6.8");

  TablePrinter table({"Benchmark", "Data Type", "Elements per History",
                      "Histories per Second", "Elements per Second"});
  table.SetAlign(1, TablePrinter::Align::kLeft);
  for (const auto& [factory, config] : PaperHistoryRows(false)) {
    const HistoryBenchResult r = RunHistoryBench(factory, config);
    table.AddRow({r.benchmark, r.type_name, TablePrinter::Fixed(r.elements_per_history, 1),
                  TablePrinter::Fixed(r.histories_per_second, 0),
                  TablePrinter::Fixed(r.elements_per_second, 0)});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("paper reference rows:\n");
  std::printf("  memcached size-1024     0.3    53   120\n");
  std::printf("  memcached skbuff        4.2    56   350\n");
  std::printf("  Apache    size-1024     0.5   660  1660\n");
  std::printf("  Apache    skbuff        4.8   110   770\n");
  std::printf("  Apache    skbuff_fclone 4.0  4600 27500\n");
  std::printf("  Apache    tcp_sock      8.3  1030 10600\n");
  return 0;
}
