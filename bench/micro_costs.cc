// Microbenchmarks (google-benchmark) for the substrate primitives, plus a
// check of the paper's §6.3 cost constants (IBS interrupt ~2,000 cycles,
// 88 bytes per access sample; §6.4: watchpoint interrupt ~1,000 cycles,
// 130k/220k-cycle debug-register setup).
//
// These measure *host* performance of the simulator itself — useful for
// knowing how much simulated time a bench second buys.

#include <benchmark/benchmark.h>

#include "src/dprof/session.h"
#include "src/workload/kernel.h"
#include "src/workload/memcached.h"

namespace dprof {
namespace {

void BM_CacheTouch(benchmark::State& state) {
  Cache cache(CacheGeometry{32 * 1024, 64, 8});
  for (uint64_t line = 0; line < 512; ++line) {
    cache.Insert(line, line);
  }
  uint64_t line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Touch(line % 512, line));
    ++line;
  }
}
BENCHMARK(BM_CacheTouch);

void BM_HierarchyLocalHit(benchmark::State& state) {
  HierarchyConfig config;
  config.num_cores = 4;
  CacheHierarchy h(config);
  h.Access(0, 0x1000, 8, false, 0);
  uint64_t now = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.Access(0, 0x1000, 8, false, now++));
  }
}
BENCHMARK(BM_HierarchyLocalHit);

void BM_HierarchyForeignBounce(benchmark::State& state) {
  HierarchyConfig config;
  config.num_cores = 4;
  CacheHierarchy h(config);
  uint64_t now = 1;
  int core = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.Access(core, 0x2000, 8, true, now++));
    core = (core + 1) % 2;
  }
}
BENCHMARK(BM_HierarchyForeignBounce);

void BM_SlabAllocFree(benchmark::State& state) {
  MachineConfig config;
  config.hierarchy.num_cores = 2;
  Machine machine(config);
  TypeRegistry registry;
  SlabAllocator allocator(&machine, &registry);
  machine.SetAllocator(&allocator);
  const TypeId type = registry.Register("bench_obj", 256);
  const FunctionId fn = machine.symbols().Intern("bench");
  CoreContext ctx = machine.Context(0);
  for (auto _ : state) {
    const Addr a = ctx.Alloc(type, fn);
    ctx.Free(a, fn);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_SlabAllocFree);

void BM_Resolve(benchmark::State& state) {
  MachineConfig config;
  config.hierarchy.num_cores = 1;
  Machine machine(config);
  TypeRegistry registry;
  SlabAllocator allocator(&machine, &registry);
  machine.SetAllocator(&allocator);
  const TypeId type = registry.Register("bench_obj", 256);
  CoreContext ctx = machine.Context(0);
  const Addr a = ctx.Alloc(type, machine.symbols().Intern("bench"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.Resolve(a + 128));
  }
}
BENCHMARK(BM_Resolve);

void BM_MemcachedRequest(benchmark::State& state) {
  MachineConfig config;
  config.hierarchy.num_cores = 4;
  Machine machine(config);
  TypeRegistry registry;
  SlabAllocator allocator(&machine, &registry);
  machine.SetAllocator(&allocator);
  KernelEnv env(&machine, &allocator);
  MemcachedConfig mc;
  mc.rx_ring_entries = 32;
  MemcachedWorkload workload(&env, mc);
  workload.Install(machine);
  for (auto _ : state) {
    machine.RunSteps(1);
  }
  state.counters["sim_cycles_per_step"] =
      static_cast<double>(machine.MaxClock()) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_MemcachedRequest);

void BM_IbsSampledAccess(benchmark::State& state) {
  MachineConfig config;
  config.hierarchy.num_cores = 1;
  Machine machine(config);
  IbsConfig ibs_config;
  ibs_config.period_ops = 100;
  IbsUnit ibs(1, ibs_config);
  machine.AddPmuHook(&ibs);
  CoreContext ctx = machine.Context(0);
  Addr a = 0x1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.Read(0, a, 8));
    a += 64;
  }
}
BENCHMARK(BM_IbsSampledAccess);

void BM_PathTraceBuild(benchmark::State& state) {
  AccessSampleTable samples;
  std::vector<ObjectHistory> histories;
  Rng rng(3);
  for (uint32_t sweep = 0; sweep < 32; ++sweep) {
    for (uint32_t off = 0; off < 64; off += 4) {
      ObjectHistory h;
      h.type = 1;
      h.sweep = sweep;
      h.complete = true;
      h.watch_offsets[0] = off;
      for (int i = 0; i < 6; ++i) {
        HistoryElement e;
        e.offset = off;
        e.ip = static_cast<FunctionId>(rng.Below(8));
        e.cpu = static_cast<uint16_t>(rng.Below(2));
        e.time = static_cast<uint64_t>(i) * 100 + rng.Below(20);
        h.elements.push_back(e);
      }
      h.end_time = h.elements.back().time + 10;
      histories.push_back(std::move(h));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(PathTraceBuilder::Build(1, histories, samples));
  }
}
BENCHMARK(BM_PathTraceBuild);

}  // namespace
}  // namespace dprof

int main(int argc, char** argv) {
  std::printf("paper cost constants in effect (checked against §6.3/§6.4):\n");
  dprof::IbsConfig ibs;
  std::printf("  IBS interrupt: %llu cycles (+%llu handler)\n",
              static_cast<unsigned long long>(ibs.interrupt_cycles),
              static_cast<unsigned long long>(ibs.handler_cycles));
  dprof::DebugRegCostModel debug_costs;
  std::printf("  watchpoint interrupt: %llu cycles\n",
              static_cast<unsigned long long>(debug_costs.interrupt_cycles));
  std::printf("  debug-register setup: %llu initiator / %llu total (16 cores)\n\n",
              static_cast<unsigned long long>(debug_costs.setup_initiator_cycles),
              static_cast<unsigned long long>(debug_costs.setup_initiator_cycles +
                                              15 * debug_costs.setup_ipi_cycles));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
