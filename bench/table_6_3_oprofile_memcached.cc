// Reproduces paper Table 6.3: top functions by percent of clock cycles and
// L2 misses for memcached, as an OProfile-style code profiler reports them.
//
// Paper shape: a flat profile — ~29 functions above 1% CLK with kfree,
// ixgbe_clean_rx_irq and __alloc_skb near the top. Nothing in this view
// points at the transmit-queue selection bug; that is the paper's argument
// for data-centric profiling.

#include "bench/bench_common.h"

int main() {
  using namespace dprof;
  PrintHeader("Table 6.3: OProfile-style function profile of memcached",
              "Pesterev 2010, Table 6.3");

  BenchRig rig(16, 42);
  MemcachedWorkload workload(rig.env.get(), MemcachedConfig{});
  workload.Install(*rig.machine);
  CodeProfiler profiler;
  rig.machine->AddObserver(&profiler);

  rig.machine->RunFor(15'000'000);
  profiler.Reset();
  rig.machine->RunFor(60'000'000);

  std::printf("%s\n", profiler.ReportTable(rig.machine->symbols(), 1.0).c_str());
  const auto rows = profiler.Report(rig.machine->symbols(), 1.0);
  std::printf("functions above 1%% CLK: %zu (paper: 29)\n\n", rows.size());

  std::printf("paper reference (top rows): 4.4%% kfree, 3.7%% ixgbe_clean_rx_irq,\n");
  std::printf("3.5%% __alloc_skb, 3.2%% ixgbe_xmit_frame, 3.0%% kmem_cache_free, ...\n");
  std::printf("note: dev_queue_xmit / skb_tx_hash sit mid-table in both — the bug\n");
  std::printf("is invisible in a code-centric profile.\n");
  return 0;
}
