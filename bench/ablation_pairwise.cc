// Ablation (design choice from DESIGN.md): what does pairwise sampling buy
// over single-offset sweeps when reconstructing whole-object paths?
//
// The paper introduces pair sampling (§5.3) because single-offset histories
// cannot recover inter-offset ordering. This bench reconstructs combined
// path traces both ways over the same workload and compares (a) how many
// distinct whole-object paths each reconstruction produces (fragmentation)
// and (b) how often the reconstructed order of the transmit-path milestones
// matches ground truth (enqueue must precede dequeue).

#include "bench/bench_common.h"

namespace {

using namespace dprof;

std::vector<PathTrace> Reconstruct(bool pair_mode, uint32_t sets) {
  BenchRig rig(16, 13);
  MemcachedConfig config;
  config.rx_ring_entries = 48;
  MemcachedWorkload workload(rig.env.get(), config);
  workload.Install(*rig.machine);

  DProfOptions options;
  options.ibs_period_ops = 200;
  DProfSession bootstrap(rig.machine.get(), rig.allocator.get(), options);
  rig.machine->RunFor(10'000'000);
  bootstrap.CollectAccessSamples(6'000'000);
  const TypeId skbuff = rig.registry.Find("skbuff");

  DProfOptions collect_options = options;
  collect_options.history.pair_mode = pair_mode;
  collect_options.history.member_offsets = bootstrap.samples().HotOffsets(skbuff, 8);
  collect_options.history_phase_max_cycles = 6'000'000'000ull;
  DProfSession session(rig.machine.get(), rig.allocator.get(), collect_options);
  session.CollectHistories(skbuff, sets);

  PathTraceOptions trace_options;
  trace_options.combine_sweeps = true;
  return session.BuildPathTraces(skbuff, trace_options);
}

struct OrderCheck {
  int enqueue_before_dequeue = 0;
  int dequeue_before_enqueue = 0;
};

OrderCheck CheckOrdering(const std::vector<PathTrace>& traces, const SymbolTable& symbols) {
  OrderCheck check;
  for (const PathTrace& trace : traces) {
    int enqueue_at = -1;
    int dequeue_at = -1;
    for (size_t i = 0; i < trace.steps.size(); ++i) {
      const std::string& name = symbols.Name(trace.steps[i].ip);
      if (name == "pfifo_fast_enqueue" && enqueue_at < 0) {
        enqueue_at = static_cast<int>(i);
      }
      if (name == "pfifo_fast_dequeue" && dequeue_at < 0) {
        dequeue_at = static_cast<int>(i);
      }
    }
    if (enqueue_at >= 0 && dequeue_at >= 0) {
      if (enqueue_at < dequeue_at) {
        check.enqueue_before_dequeue += static_cast<int>(trace.frequency);
      } else {
        check.dequeue_before_enqueue += static_cast<int>(trace.frequency);
      }
    }
  }
  return check;
}

}  // namespace

int main() {
  using namespace dprof;
  PrintHeader("Ablation: pairwise sampling vs single-offset sweeps",
              "design choice behind paper §5.3 / Table 6.10");

  // A throwaway machine supplies the symbol table (ids are deterministic).
  BenchRig names(1, 1);
  KernelFns::Intern(names.machine->symbols());

  const auto single = Reconstruct(false, 6);
  const auto pair = Reconstruct(true, 2);

  const OrderCheck single_check = CheckOrdering(single, names.machine->symbols());
  const OrderCheck pair_check = CheckOrdering(pair, names.machine->symbols());

  std::printf("%-34s %16s %16s\n", "", "single-offset", "pairwise");
  std::printf("%-34s %16zu %16zu\n", "combined paths reconstructed", single.size(),
              pair.size());
  std::printf("%-34s %13d/%-3d %13d/%-3d\n", "enqueue-before-dequeue (right/wrong)",
              single_check.enqueue_before_dequeue, single_check.dequeue_before_enqueue,
              pair_check.enqueue_before_dequeue, pair_check.dequeue_before_enqueue);

  std::printf("\ninterpretation: single-offset reconstruction fragments paths and can\n");
  std::printf("only order offsets by cross-object time alignment; pair sampling\n");
  std::printf("observes both offsets of one object and pins the true order — at a\n");
  std::printf("quadratic collection cost (Table 6.10).\n");
  return 0;
}
