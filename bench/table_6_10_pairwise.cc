// Reproduces paper Table 6.10: object access history collection using
// pairwise sampling — every pair of watched members is monitored together to
// recover inter-offset ordering, so the number of histories per set grows
// quadratically and collection takes correspondingly longer.
//
// Paper shape: histories/set goes from N (Table 6.7) to C(N,2) — e.g.
// 2016 (+1) pairs for skbuff's 64 windows — and overhead grows a few-fold.

#include "bench/history_bench.h"
#include "src/util/table.h"

int main() {
  using namespace dprof;
  PrintHeader("Table 6.10: pairwise-sampling collection times and overhead",
              "Pesterev 2010, Table 6.10");

  TablePrinter table({"Benchmark", "Data Type", "Size (bytes)", "Histories/Sets",
                      "Time (s)", "Overhead (%)"});
  table.SetAlign(1, TablePrinter::Align::kLeft);
  for (const auto& [factory, config] : PaperHistoryRows(true)) {
    const HistoryBenchResult r = RunHistoryBench(factory, config);
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%llu/%u",
                  static_cast<unsigned long long>(r.histories), r.sets);
    table.AddRow({r.benchmark, r.type_name, TablePrinter::Count(r.object_size), ratio,
                  TablePrinter::Fixed(r.collection_seconds, 2),
                  TablePrinter::Fixed(r.overhead_pct, 1)});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("note: like the paper (§6.4), pairwise sweeps monitor only the hot\n");
  std::printf("members found in the access samples (10 windows -> C(10,2)=45 pairs\n");
  std::printf("per set); the paper's full-object sweeps reach 32132/1 for size-1024.\n\n");
  std::printf("paper reference rows:\n");
  std::printf("  memcached size-1024 1024B 32132/1  400s  0.9%%\n");
  std::printf("  memcached skbuff     256B  2017/1   26s  1.0%%\n");
  std::printf("  Apache    size-1024 1024B 32132/1   50s  4.8%%\n");
  std::printf("  Apache    skbuff     256B  2017/1   18s  1.7%%\n");
  std::printf("  Apache    skbuff_fclone 512B 8129/1 2.3s 18%%\n");
  std::printf("  Apache    tcp_sock  1600B 79801/1   81s  5.5%%\n");
  return 0;
}
