// Reproduces paper Figure 6-2: DProf's access-sampling overhead as a
// function of the IBS sampling rate, measured as percent connection
// throughput reduction for the Apache and memcached applications.
//
// Paper shape: roughly linear growth, reaching ~10-12% at 18k samples/s/core
// (each IBS interrupt costs ~2,000 cycles plus handler work).

#include <vector>

#include "bench/bench_common.h"

namespace {

using namespace dprof;

struct Point {
  double ksamples_per_sec_core = 0.0;
  double overhead_pct = 0.0;
};

template <typename MakeWorkload>
std::vector<Point> Sweep(MakeWorkload make_workload, const std::vector<uint64_t>& periods) {
  // Baseline: no sampling.
  double baseline = 0.0;
  {
    BenchRig rig(16, 3);
    auto workload = make_workload(rig);
    workload->Install(*rig.machine);
    baseline = MeasureThroughput(rig, *workload, 12'000'000, 25'000'000);
  }
  std::vector<Point> points;
  for (const uint64_t period : periods) {
    BenchRig rig(16, 3);
    auto workload = make_workload(rig);
    workload->Install(*rig.machine);
    DProfOptions options;
    options.ibs_period_ops = period;
    DProfSession session(rig.machine.get(), rig.allocator.get(), options);
    rig.machine->RunFor(12'000'000);
    workload->ResetStats();
    session.ibs().ResetCounters();
    const uint64_t start = rig.machine->MaxClock();
    session.CollectAccessSamples(25'000'000);
    const uint64_t elapsed = rig.machine->MaxClock() - start;
    const double tput = ThroughputRps(workload->CompletedRequests(), elapsed);
    Point p;
    const double seconds = static_cast<double>(elapsed) / kCyclesPerSecond;
    p.ksamples_per_sec_core = static_cast<double>(session.ibs().samples_taken()) /
                              seconds / rig.machine->num_cores() / 1000.0;
    p.overhead_pct = 100.0 * (baseline - tput) / baseline;
    points.push_back(p);
  }
  return points;
}

void Print(const char* app, const std::vector<Point>& points) {
  std::printf("%s:\n", app);
  std::printf("  %-28s %s\n", "samples (thousands/s/core)", "throughput reduction");
  for (const Point& p : points) {
    std::printf("  %-28.1f %19.2f%%\n", p.ksamples_per_sec_core, p.overhead_pct);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace dprof;
  PrintHeader("Figure 6-2: IBS sampling overhead vs sampling rate",
              "Pesterev 2010, Figure 6-2");

  // Periods chosen to land in the paper's 2-20k samples/s/core band.
  const std::vector<uint64_t> periods = {2400, 1200, 600, 400, 300, 240};

  const auto memcached_points = Sweep(
      [](BenchRig& rig) {
        return std::make_unique<MemcachedWorkload>(rig.env.get(), MemcachedConfig{});
      },
      periods);
  Print("memcached", memcached_points);

  const auto apache_points = Sweep(
      [](BenchRig& rig) {
        // Saturated but admission-controlled: overhead measures the service
        // path without exciting the SYN-retransmit feedback loop.
        ApacheConfig config = ApacheConfig::Fixed();
        config.admission_limit = 64;
        return std::make_unique<ApacheWorkload>(rig.env.get(), config);
      },
      periods);
  Print("Apache", apache_points);

  std::printf("paper shape: near-linear overhead, ~2-12%% over 2-18k samples/s/core.\n");
  return 0;
}
