// Reproduces the paper's headline result (§6.1, §6.2, §8): fixing the two
// bugs DProf diagnosed yields a 16-57% throughput improvement on the
// memcached and Apache workloads.
//
//  - memcached: install a driver-local transmit queue selection function
//    instead of skb_tx_hash (paper: +57%).
//  - Apache: admission-control the accept backlog (paper: +16% at the same
//    offered load as the drop-off point).

#include "bench/bench_common.h"

namespace {

using namespace dprof;

double RunMemcached(bool fix) {
  BenchRig rig(16, 1);
  MemcachedConfig config;
  config.local_queue_fix = fix;
  MemcachedWorkload workload(rig.env.get(), config);
  workload.Install(*rig.machine);
  return MeasureThroughput(rig, workload, 10'000'000, 30'000'000);
}

double RunApache(const ApacheConfig& config) {
  BenchRig rig(16, 1);
  ApacheWorkload workload(rig.env.get(), config);
  // Queues and the retransmit equilibrium need a long warm-up to stabilize.
  workload.Install(*rig.machine);
  return MeasureThroughput(rig, workload, 30'000'000, 10'000'000);
}

}  // namespace

int main() {
  using namespace dprof;
  PrintHeader("Case-study fixes: throughput before and after (paper: +57% / +16%)",
              "Pesterev 2010, §6.1.1, §6.2.1, §8");

  std::printf("== memcached: local tx-queue selection (paper: +57%%) ==\n");
  const double mc_buggy = RunMemcached(false);
  const double mc_fixed = RunMemcached(true);
  std::printf("  stock (skb_tx_hash):  %12.0f req/s\n", mc_buggy);
  std::printf("  fixed (local queue):  %12.0f req/s\n", mc_fixed);
  std::printf("  improvement:          %+11.1f%%   (paper: +57%%)\n\n",
              100.0 * (mc_fixed - mc_buggy) / mc_buggy);

  std::printf("== Apache: accept-queue admission control (paper: +16%%) ==\n");
  const double ap_peak = RunApache(ApacheConfig::Peak());
  const double ap_drop = RunApache(ApacheConfig::DropOff());
  const double ap_fixed = RunApache(ApacheConfig::Fixed());
  std::printf("  peak (reference):     %12.0f req/s\n", ap_peak);
  std::printf("  drop-off:             %12.0f req/s\n", ap_drop);
  std::printf("  admission control:    %12.0f req/s\n", ap_fixed);
  std::printf("  improvement:          %+11.1f%%   (paper: +16%%)\n",
              100.0 * (ap_fixed - ap_drop) / ap_drop);
  return 0;
}
