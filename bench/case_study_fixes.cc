// Reproduces the paper's headline result (§6.1, §6.2, §8): fixing the two
// bugs DProf diagnosed yields a 16-57% throughput improvement on the
// memcached and Apache workloads.
//
//  - memcached: install a driver-local transmit queue selection function
//    instead of skb_tx_hash (paper: +57%).
//  - Apache: admission-control the accept backlog (paper: +16% at the same
//    offered load as the drop-off point).
//
// Both fixes are workload-logic changes, so they ride the RunSpec options
// the CLI exposes (--local-tx-queue / --admission-control) and both arms of
// each comparison come from the same registered scenario factory — the
// identical construction path `dprof run` and `dprof whatif` use.

#include "bench/bench_common.h"
#include "src/cli/scenario_registry.h"
#include "src/machine/engine.h"
#include "src/util/check.h"

namespace {

using namespace dprof;

// Builds the rig from the registered factory and measures steady-state
// throughput (warm-up, then `measure` cycles) on the epoch engine.
double RunArm(const char* scenario, const RunSpec& spec, uint64_t warm, uint64_t measure) {
  const ScenarioInfo* info = ScenarioRegistry::Default().Find(scenario);
  DPROF_CHECK(info != nullptr);
  auto rig = info->factory(spec);
  rig->workload->Install(*rig->machine);
  Engine engine(rig->machine.get(), EngineConfig{});
  rig->machine->SetExecutor(&engine);
  rig->machine->RunFor(warm);
  rig->workload->ResetStats();
  const uint64_t start = rig->machine->MaxClock();
  rig->machine->RunFor(measure);
  const double rps = ThroughputRps(rig->workload->CompletedRequests(),
                                   rig->machine->MaxClock() - start);
  rig->machine->SetExecutor(nullptr);
  return rps;
}

double RunMemcached(bool fix) {
  RunSpec spec;
  spec.cores = 16;
  spec.seed = 1;
  spec.local_tx_queue = fix;
  return RunArm("memcached", spec, 10'000'000, 30'000'000);
}

double RunApacheSpec(bool admission_control) {
  RunSpec spec;
  spec.cores = 16;
  spec.seed = 1;
  spec.admission_control = admission_control;
  // Same windows as the registry's apache_throughput bench: the retransmit
  // equilibrium needs the long measurement stretch to average out.
  return RunArm("apache", spec, 10'000'000, 40'000'000);
}

// Peak is a reference operating point (offered load below the knee), not a
// fix, so it is not a RunSpec option; build it directly on the base rig.
double RunApachePeak() {
  RunSpec spec;
  spec.cores = 16;
  spec.seed = 1;
  auto rig = MakeBaseRig(spec);
  rig->workload = std::make_unique<ApacheWorkload>(rig->env.get(), ApacheConfig::Peak());
  rig->workload->Install(*rig->machine);
  Engine engine(rig->machine.get(), EngineConfig{});
  rig->machine->SetExecutor(&engine);
  rig->machine->RunFor(10'000'000);
  rig->workload->ResetStats();
  const uint64_t start = rig->machine->MaxClock();
  rig->machine->RunFor(40'000'000);
  const double rps = ThroughputRps(rig->workload->CompletedRequests(),
                                   rig->machine->MaxClock() - start);
  rig->machine->SetExecutor(nullptr);
  return rps;
}

}  // namespace

int main() {
  using namespace dprof;
  PrintHeader("Case-study fixes: throughput before and after (paper: +57% / +16%)",
              "Pesterev 2010, §6.1.1, §6.2.1, §8");

  std::printf("== memcached: local tx-queue selection (paper: +57%%) ==\n");
  const double mc_buggy = RunMemcached(false);
  const double mc_fixed = RunMemcached(true);
  std::printf("  stock (skb_tx_hash):  %12.0f req/s\n", mc_buggy);
  std::printf("  fixed (local queue):  %12.0f req/s\n", mc_fixed);
  std::printf("  improvement:          %+11.1f%%   (paper: +57%%)\n\n",
              100.0 * (mc_fixed - mc_buggy) / mc_buggy);

  std::printf("== Apache: accept-queue admission control (paper: +16%%) ==\n");
  const double ap_peak = RunApachePeak();
  const double ap_drop = RunApacheSpec(false);
  const double ap_fixed = RunApacheSpec(true);
  std::printf("  peak (reference):     %12.0f req/s\n", ap_peak);
  std::printf("  drop-off:             %12.0f req/s\n", ap_drop);
  std::printf("  admission control:    %12.0f req/s\n", ap_fixed);
  std::printf("  improvement:          %+11.1f%%   (paper: +16%%)\n",
              100.0 * (ap_fixed - ap_drop) / ap_drop);
  return 0;
}
