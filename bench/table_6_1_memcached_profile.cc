// Reproduces paper Table 6.1: working set and data profile views for the top
// data types in memcached (stock kernel, tx-hash bug active).
//
// Paper shape: size-1024 tops the list with ~45% of all L1 misses, followed
// by slab, array_cache, net_device, udp_sock, and skbuff; every top type
// bounces between cores; the listed types cover ~80% of all misses.

#include "bench/bench_common.h"

int main() {
  using namespace dprof;
  PrintHeader("Table 6.1: memcached data profile + working set views",
              "Pesterev 2010, Table 6.1");

  BenchRig rig(16, 42);
  MemcachedWorkload workload(rig.env.get(), MemcachedConfig{});
  workload.Install(*rig.machine);

  DProfOptions options;
  options.ibs_period_ops = 120;
  DProfSession session(rig.machine.get(), rig.allocator.get(), options);

  rig.machine->RunFor(20'000'000);  // steady state
  session.CollectAccessSamples(60'000'000);

  const DataProfile profile = session.BuildDataProfile();
  std::printf("%s\n", profile.ToTable(10).c_str());

  std::printf("paper reference rows (16-core AMD testbed):\n");
  std::printf("  size-1024    14.6MB   45.40%%  yes\n");
  std::printf("  slab          2.55MB  10.48%%  yes\n");
  std::printf("  array_cache   128B     9.51%%  yes\n");
  std::printf("  net_device    128B     6.03%%  yes\n");
  std::printf("  udp_sock      1024B    5.24%%  yes\n");
  std::printf("  skbuff       20.55MB   5.20%%  yes\n");
  std::printf("  Total        37.7MB   81.86%%\n\n");

  std::printf("samples: %llu total, %llu L1 misses, %llu unresolved (userspace)\n",
              static_cast<unsigned long long>(session.samples().total_samples()),
              static_cast<unsigned long long>(session.samples().l1_miss_samples()),
              static_cast<unsigned long long>(session.samples().unresolved_samples()));
  return 0;
}
