// Reproduces paper Table 6.7: object access history collection times and
// overhead for different data types and applications.
//
// Paper shape: collection time scales with object size (more offsets to
// sweep) and object lifetime (one object monitored at a time); overhead
// stays in the low single digits except for hot, short-lived types
// (skbuff_fclone reached 16%).
//
// Scale note: the paper collected 32-80 sets per type over minutes of wall
// time; this bench collects fewer sets (simulated seconds) — times scale
// linearly in sets, rates and overheads are directly comparable.

#include "bench/history_bench.h"
#include "src/util/table.h"

int main() {
  using namespace dprof;
  PrintHeader("Table 6.7: object access history collection time and overhead",
              "Pesterev 2010, Table 6.7");

  TablePrinter table({"Benchmark", "Data Type", "Size (bytes)", "Histories", "Sets",
                      "Time (s)", "Overhead (%)"});
  table.SetAlign(1, TablePrinter::Align::kLeft);
  for (const auto& [factory, config] : PaperHistoryRows(false)) {
    const HistoryBenchResult r = RunHistoryBench(factory, config);
    table.AddRow({r.benchmark, r.type_name, TablePrinter::Count(r.object_size),
                  TablePrinter::Count(r.histories), TablePrinter::Count(r.sets),
                  TablePrinter::Fixed(r.collection_seconds, 2),
                  TablePrinter::Fixed(r.overhead_pct, 1)});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("paper reference rows:\n");
  std::printf("  memcached size-1024 1024B  8128/32   170s  1.3%%\n");
  std::printf("  memcached skbuff     256B  5120/80    95s  0.8%%\n");
  std::printf("  Apache    size-1024 1024B 20320/80    34s  2.9%%\n");
  std::printf("  Apache    skbuff     256B  2048/32    24s  1.6%%\n");
  std::printf("  Apache    skbuff_fclone 512B 10240/80 2.5s 16%%\n");
  std::printf("  Apache    tcp_sock  1600B 32000/80    32s  4.9%%\n");
  return 0;
}
