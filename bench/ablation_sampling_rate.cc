// Ablation (design choice from DESIGN.md): how much IBS sampling does the
// data profile need? Sweeps the sampling period and reports how quickly the
// view converges to the dense-sampling reference: the top type, its miss
// share, and the bounce flags.
//
// This is the trade-off behind paper Figure 6-2: lower rates cost less but
// need longer runs to converge (paper §6.3).

#include <cmath>
#include <vector>

#include "bench/bench_common.h"
#include "src/util/table.h"

namespace {

using namespace dprof;

struct ProfileSummary {
  std::string top_type;
  double top_share = 0.0;
  int bouncing_types = 0;
  uint64_t samples = 0;
};

ProfileSummary RunAt(uint64_t period) {
  BenchRig rig(16, 21);
  MemcachedWorkload workload(rig.env.get(), MemcachedConfig{});
  workload.Install(*rig.machine);
  DProfOptions options;
  options.ibs_period_ops = period;
  DProfSession session(rig.machine.get(), rig.allocator.get(), options);
  rig.machine->RunFor(15'000'000);
  session.CollectAccessSamples(25'000'000);
  const DataProfile profile = session.BuildDataProfile();
  ProfileSummary summary;
  summary.samples = session.samples().total_samples();
  if (!profile.rows().empty()) {
    summary.top_type = profile.rows()[0].name;
    summary.top_share = profile.rows()[0].miss_pct;
  }
  for (const DataProfileRow& row : profile.rows()) {
    if (row.bounce && row.miss_pct > 1.0) {
      ++summary.bouncing_types;
    }
  }
  return summary;
}

}  // namespace

int main() {
  using namespace dprof;
  PrintHeader("Ablation: data-profile fidelity vs IBS sampling rate",
              "design trade-off behind paper §6.3 / Figure 6-2");

  const ProfileSummary reference = RunAt(40);  // dense sampling

  TablePrinter table({"Period (ops)", "Samples", "Top type", "Top share",
                      "Share error", "Bouncing types"});
  table.SetAlign(2, TablePrinter::Align::kLeft);
  for (const uint64_t period : std::vector<uint64_t>{40, 100, 300, 1000, 3000, 10000}) {
    const ProfileSummary s = RunAt(period);
    table.AddRow({TablePrinter::Count(period), TablePrinter::Count(s.samples), s.top_type,
                  TablePrinter::Percent(s.top_share),
                  TablePrinter::Percent(std::abs(s.top_share - reference.top_share)),
                  TablePrinter::Count(static_cast<uint64_t>(s.bouncing_types))});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("reference (period 40): top=%s at %.2f%%, %d bouncing types\n\n",
              reference.top_type.c_str(), reference.top_share, reference.bouncing_types);
  std::printf("interpretation: the ranking is stable across two orders of magnitude of\n");
  std::printf("sampling rate; only the share estimates get noisy — supporting the\n");
  std::printf("paper's choice of tuning rate purely by overhead tolerance (§6.3).\n");
  return 0;
}
