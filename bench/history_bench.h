// Shared harness for the object-access-history benches (paper §6.4,
// Tables 6.7-6.10 and Figure 6-3): runs history collection for one data
// type under a live workload and reports times, rates, and overheads.
//
// Like the paper (§6.4 last paragraph), collection is restricted to the
// object members the access samples flag as hot, which is what makes
// pairwise sampling tractable.

#ifndef DPROF_BENCH_HISTORY_BENCH_H_
#define DPROF_BENCH_HISTORY_BENCH_H_

#include <functional>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace dprof {

struct HistoryBenchResult {
  std::string benchmark;
  std::string type_name;
  uint32_t object_size = 0;
  uint64_t histories = 0;
  uint32_t sets = 0;
  double collection_seconds = 0.0;
  double overhead_pct = 0.0;
  double elements_per_history = 0.0;
  double histories_per_second = 0.0;
  double elements_per_second = 0.0;
  HistoryOverhead breakdown;
};

struct HistoryBenchConfig {
  std::string benchmark;
  std::string type_name;
  uint32_t sets = 4;
  bool pair_mode = false;
  size_t max_member_offsets = 32;  // hot members monitored (paper §6.4)
  uint64_t max_cycles = 3'000'000'000ull;
};

// Factory builds a fresh workload inside the rig (so baseline and collection
// runs are independent and deterministic).
using WorkloadFactory = std::function<std::unique_ptr<Workload>(BenchRig&)>;

inline HistoryBenchResult RunHistoryBench(const WorkloadFactory& factory,
                                          const HistoryBenchConfig& config) {
  HistoryBenchResult result;
  result.benchmark = config.benchmark;
  result.type_name = config.type_name;
  result.sets = config.sets;

  // Baseline throughput without any profiling.
  double baseline = 0.0;
  {
    BenchRig rig(16, 11);
    auto workload = factory(rig);
    workload->Install(*rig.machine);
    baseline = MeasureThroughput(rig, *workload, 15'000'000, 20'000'000);
  }

  // Collection run: short access-sample phase to find hot members, then the
  // history sweeps.
  BenchRig rig(16, 11);
  auto workload = factory(rig);
  workload->Install(*rig.machine);
  const TypeId type = rig.registry.Find(config.type_name);
  result.object_size = rig.registry.Size(type);

  DProfOptions options;
  options.ibs_period_ops = 150;
  options.history.pair_mode = config.pair_mode;
  options.history_phase_max_cycles = config.max_cycles;
  DProfSession session(rig.machine.get(), rig.allocator.get(), options);
  rig.machine->RunFor(15'000'000);
  session.CollectAccessSamples(8'000'000);
  options.history.member_offsets =
      session.samples().HotOffsets(type, config.max_member_offsets);

  // Timed collection of the requested number of sets.
  DProfOptions collect_options = options;
  DProfSession collect_session(rig.machine.get(), rig.allocator.get(), collect_options);
  const uint64_t elapsed = collect_session.CollectHistories(type, config.sets);
  result.histories = collect_session.histories(type).size();
  result.collection_seconds = static_cast<double>(elapsed) / kCyclesPerSecond;
  result.breakdown = collect_session.history_overhead(type);

  // Overhead: throughput over a fixed window while collection runs
  // continuously (sets unbounded), against the unprofiled baseline.
  {
    BenchRig overhead_rig(16, 11);
    auto overhead_workload = factory(overhead_rig);
    overhead_workload->Install(*overhead_rig.machine);
    DProfOptions continuous = options;
    continuous.history_phase_max_cycles = 20'000'000;
    DProfSession continuous_session(overhead_rig.machine.get(), overhead_rig.allocator.get(),
                                    continuous);
    overhead_rig.machine->RunFor(15'000'000);
    overhead_workload->ResetStats();
    const uint64_t start = overhead_rig.machine->MaxClock();
    continuous_session.CollectHistories(overhead_rig.registry.Find(config.type_name), 0);
    const double tput = ThroughputRps(overhead_workload->CompletedRequests(),
                                      overhead_rig.machine->MaxClock() - start);
    result.overhead_pct = 100.0 * (baseline - tput) / baseline;
  }
  if (result.histories > 0) {
    result.elements_per_history = static_cast<double>(result.breakdown.elements_recorded) /
                                  static_cast<double>(result.histories);
  }
  if (result.collection_seconds > 0) {
    result.histories_per_second =
        static_cast<double>(result.histories) / result.collection_seconds;
    result.elements_per_second =
        static_cast<double>(result.breakdown.elements_recorded) / result.collection_seconds;
  }
  return result;
}

// The (benchmark, type) rows of paper Tables 6.7/6.8.
inline std::vector<std::pair<WorkloadFactory, HistoryBenchConfig>> PaperHistoryRows(
    bool pair_mode) {
  auto memcached = [](BenchRig& rig) -> std::unique_ptr<Workload> {
    MemcachedConfig config;
    config.rx_ring_entries = 96;
    return std::make_unique<MemcachedWorkload>(rig.env.get(), config);
  };
  auto apache = [](BenchRig& rig) -> std::unique_ptr<Workload> {
    // Saturated but admission-controlled, so profiling overhead shows up as
    // lost throughput rather than vanishing into idle time.
    ApacheConfig config = ApacheConfig::Fixed();
    config.admission_limit = 64;
    return std::make_unique<ApacheWorkload>(rig.env.get(), config);
  };

  std::vector<std::pair<WorkloadFactory, HistoryBenchConfig>> rows;
  HistoryBenchConfig config;
  config.pair_mode = pair_mode;
  config.max_member_offsets = pair_mode ? 10 : 32;

  config.benchmark = "memcached";
  config.type_name = "size-1024";
  config.sets = pair_mode ? 1 : 3;
  rows.push_back({memcached, config});
  config.type_name = "skbuff";
  config.sets = pair_mode ? 1 : 6;
  rows.push_back({memcached, config});

  config.benchmark = "Apache";
  config.type_name = "size-1024";
  config.sets = pair_mode ? 1 : 4;
  rows.push_back({apache, config});
  config.type_name = "skbuff";
  config.sets = pair_mode ? 1 : 6;
  rows.push_back({apache, config});
  config.type_name = "skbuff_fclone";
  config.sets = pair_mode ? 1 : 6;
  rows.push_back({apache, config});
  config.type_name = "tcp_sock";
  config.sets = pair_mode ? 1 : 4;
  rows.push_back({apache, config});
  return rows;
}

}  // namespace dprof

#endif  // DPROF_BENCH_HISTORY_BENCH_H_
