// Reproduces paper Table 6.2: lock statistics reported by lock-stat during a
// memcached run on the stock (buggy) kernel.
//
// Paper shape: Qdisc lock is the most contended (4.04%), then the epoll lock
// (2.20%) and wait queue (1.89%); the SLAB cache lock shows light contention
// (0.16%). Lock-stat sees the *symptoms* of the tx-queue bug but cannot say
// which data moved across cores.

#include "bench/bench_common.h"

int main() {
  using namespace dprof;
  PrintHeader("Table 6.2: lock-stat during a memcached run (stock kernel)",
              "Pesterev 2010, Table 6.2");

  BenchRig rig(16, 42);
  MemcachedWorkload workload(rig.env.get(), MemcachedConfig{});
  workload.Install(*rig.machine);
  LockStat lockstat(&rig.machine->symbols());
  rig.machine->SetLockObserver(&lockstat);

  rig.machine->RunFor(15'000'000);
  lockstat.Reset();
  const uint64_t start = rig.machine->MaxClock();
  rig.machine->RunFor(60'000'000);  // the paper's "30 second run", scaled
  const uint64_t elapsed = rig.machine->MaxClock() - start;

  std::printf("%s\n", lockstat.ReportTable(elapsed, rig.machine->num_cores()).c_str());

  std::printf("paper reference rows (30s run):\n");
  std::printf("  Qdisc lock       1.2134 sec  4.04%%  dev_queue_xmit, __qdisc_run\n");
  std::printf("  epoll lock       0.6594 sec  2.20%%  sys_epoll_wait, ep_scan_ready_list,"
              " ep_poll_callback\n");
  std::printf("  wait queue       0.5658 sec  1.89%%  __wake_up_sync_key\n");
  std::printf("  SLAB cache lock  0.0477 sec  0.16%%  cache_alloc_refill,"
              " __drain_alien_cache\n");
  return 0;
}
