// Reproduces paper Tables 6.4 and 6.5: working set and data profile views
// for Apache at peak performance and past the drop-off, plus the
// differential analysis DProf enables.
//
// Paper shape: at peak, task_struct leads the misses (21.4%) with tcp_sock
// second (11.0%, 1.11MB working set). At drop-off the tcp_sock working set
// grows ~10x (11.56MB) and its miss share roughly doubles (21.5%), while
// its average miss latency grows ~3x (50 -> 150 cycles).

#include "bench/bench_common.h"

namespace {

using namespace dprof;

struct RunStats {
  double sock_ws = 0.0;
  double sock_miss = 0.0;
  double sock_latency = 0.0;
  double depth = 0.0;
};

RunStats RunOne(const ApacheConfig& config, const char* label) {
  BenchRig rig(16, 42);
  ApacheWorkload workload(rig.env.get(), config);
  workload.Install(*rig.machine);

  DProfOptions options;
  options.ibs_period_ops = 120;
  DProfSession session(rig.machine.get(), rig.allocator.get(), options);

  rig.machine->RunFor(30'000'000);
  workload.ResetStats();
  session.CollectAccessSamples(50'000'000);

  const DataProfile profile = session.BuildDataProfile();
  std::printf("== %s ==\n%s\n", label, profile.ToTable(8).c_str());

  RunStats stats;
  if (const DataProfileRow* row = profile.Find(rig.registry.Find("tcp_sock"))) {
    stats.sock_ws = row->working_set_bytes;
    stats.sock_miss = row->miss_pct;
  }
  stats.sock_latency = workload.AverageSockMissLatency();
  stats.depth = workload.AverageAcceptQueueDepth();
  return stats;
}

}  // namespace

int main() {
  using namespace dprof;
  PrintHeader("Tables 6.4/6.5: Apache data profiles at peak and drop-off",
              "Pesterev 2010, Tables 6.4 and 6.5");

  const RunStats peak = RunOne(ApacheConfig::Peak(), "Table 6.4: Apache at peak");
  const RunStats drop = RunOne(ApacheConfig::DropOff(), "Table 6.5: Apache at drop-off");

  std::printf("== Differential analysis ==\n");
  std::printf("%-36s %12s %12s %8s\n", "", "peak", "drop-off", "ratio");
  std::printf("%-36s %10.2fMB %10.2fMB %7.1fx\n", "tcp_sock working set",
              peak.sock_ws / 1048576.0, drop.sock_ws / 1048576.0,
              peak.sock_ws > 0 ? drop.sock_ws / peak.sock_ws : 0.0);
  std::printf("%-36s %11.2f%% %11.2f%% %7.1fx\n", "tcp_sock share of all L1 misses",
              peak.sock_miss, drop.sock_miss,
              peak.sock_miss > 0 ? drop.sock_miss / peak.sock_miss : 0.0);
  std::printf("%-36s %12.0f %12.0f %7.1fx\n", "avg tcp_sock line latency (cycles)",
              peak.sock_latency, drop.sock_latency,
              peak.sock_latency > 0 ? drop.sock_latency / peak.sock_latency : 0.0);
  std::printf("%-36s %12.1f %12.1f\n", "avg accept-queue depth", peak.depth, drop.depth);

  std::printf("\npaper reference: tcp_sock 1.11MB/11.00%% at peak vs 11.56MB/21.47%% at\n");
  std::printf("drop-off (10.4x WS growth); sock miss latency 50 vs 150 cycles (3x).\n");
  return 0;
}
