// Reproduces paper Table 6.6: lock statistics during an Apache run past the
// drop-off point.
//
// Paper shape: the futex lock is the only contended lock (6.6% overhead,
// do_futex / futex_wait / futex_wake) — and it says nothing about the
// accept-queue mis-configuration that actually causes the slowdown, which is
// the paper's point about lock-centric analysis.

#include "bench/bench_common.h"

int main() {
  using namespace dprof;
  PrintHeader("Table 6.6: lock-stat during an Apache run (drop-off)",
              "Pesterev 2010, Table 6.6");

  BenchRig rig(16, 42);
  ApacheWorkload workload(rig.env.get(), ApacheConfig::DropOff());
  workload.Install(*rig.machine);
  LockStat lockstat(&rig.machine->symbols());
  rig.machine->SetLockObserver(&lockstat);

  rig.machine->RunFor(30'000'000);
  lockstat.Reset();
  const uint64_t start = rig.machine->MaxClock();
  rig.machine->RunFor(60'000'000);
  const uint64_t elapsed = rig.machine->MaxClock() - start;

  std::printf("%s\n", lockstat.ReportTable(elapsed, rig.machine->num_cores()).c_str());

  std::printf("paper reference row (30s run):\n");
  std::printf("  futex lock  1.98 sec  6.6%%  do_futex, futex_wait, futex_wake\n\n");
  std::printf("shape check: futex is the dominant contended lock; the Qdisc and SLAB\n");
  std::printf("locks are quiet because all Apache handling is core-local.\n");
  return 0;
}
