#!/usr/bin/env python3
"""Diffs `dprof bench table_*` reproductions against the paper's reference
numbers, with tolerances.

Usage: check_tables.py --dprof ./build/dprof [--only name1,name2]

Each checked table has a spec below: the headline facts the reproduction must
preserve (which type tops the profile, bounce verdicts, how working sets and
latencies move between operating points), plus numeric values compared against
the paper's numbers (Pesterev 2010) within per-check tolerances. The
simulation is deterministic — fixed seeds, no host dependence — so tolerances
only absorb the model-vs-hardware distance, not run-to-run noise: a change
that walks a value outside its band has changed the reproduction itself.

Exit code 1 when any check fails; tables without a spec are not run.
"""

import argparse
import json
import re
import subprocess
import sys


def parse_profile_rows(text):
    """Rows of a data-profile table: name, working set, miss share, bounce."""
    rows = []
    for line in text.splitlines():
        m = re.match(
            r"\s*(\S+)\s+([\d.]+)(B|KB|MB|GB)\s+([\d.]+)%\s+(yes|no|-)\s*$", line
        )
        if m and m.group(1) != "Total":
            scale = {"B": 1, "KB": 1 << 10, "MB": 1 << 20, "GB": 1 << 30}[m.group(3)]
            rows.append(
                {
                    "type": m.group(1),
                    "ws_bytes": float(m.group(2)) * scale,
                    "miss_pct": float(m.group(4)),
                    "bounce": m.group(5),
                }
            )
    return rows


def parse_lock_rows(text):
    """Rows of a lock-stat table: lock name, wait seconds, overhead pct."""
    rows = []
    for line in text.splitlines():
        m = re.match(r"\s*(.+?)\s+([\d.]+) sec\s+([\d.]+)%", line)
        if m:
            rows.append(
                {
                    "lock": m.group(1).strip(),
                    "wait_s": float(m.group(2)),
                    "overhead_pct": float(m.group(3)),
                }
            )
    return rows


def section(text, start, end=None):
    i = text.find(start)
    if i < 0:
        return ""
    j = text.find(end, i) if end else -1
    return text[i:j] if end and j >= 0 else text[i:]


class Checker:
    def __init__(self, name):
        self.name = name
        self.failures = []
        self.passes = 0

    def check(self, label, ok, detail=""):
        if ok:
            self.passes += 1
            print(f"  OK    {label} {detail}")
        else:
            self.failures.append(label)
            print(f"  FAIL  {label} {detail}")

    def near(self, label, value, paper, tol):
        self.check(
            label,
            abs(value - paper) <= tol,
            f"(got {value:.2f}, paper {paper:.2f}, tol ±{tol:.2f})",
        )


def check_table_6_1(text, c):
    """Memcached profile: size-1024 payloads dominate and bounce."""
    # The simulated table before the "paper reference rows" echo.
    rows = parse_profile_rows(section(text, "Type name", "paper reference"))
    c.check("profile parsed", len(rows) >= 5, f"({len(rows)} rows)")
    if not rows:
        return
    c.check("size-1024 tops the profile", rows[0]["type"] == "size-1024",
            f"(top: {rows[0]['type']})")
    # Paper: 45.40% of all L1 misses; tolerance covers the model distance.
    c.near("size-1024 miss share", rows[0]["miss_pct"], 45.40, 16.0)
    by_type = {r["type"]: r for r in rows}
    for name in ("size-1024", "slab", "net_device", "udp_sock", "skbuff"):
        if name in by_type:
            c.check(f"{name} bounces", by_type[name]["bounce"] == "yes")
    # Paper: the listed types cover ~80% of all misses.
    total = sum(r["miss_pct"] for r in rows)
    c.near("top types' combined miss share", total, 81.86, 16.0)


def check_table_6_2(text, c):
    """Lock-stat under memcached: the Qdisc lock leads, epoll close behind."""
    rows = parse_lock_rows(section(text, "Lock Name", "paper reference"))
    c.check("lock table parsed", len(rows) >= 3, f"({len(rows)} rows)")
    if not rows:
        return
    c.check("Qdisc lock has the highest overhead", rows[0]["lock"] == "Qdisc lock",
            f"(top: {rows[0]['lock']})")
    # Paper: 4.04% — the simulated machine is smaller, so the band is wide,
    # but the lock must stay materially contended.
    c.near("Qdisc lock overhead pct", rows[0]["overhead_pct"], 4.04, 3.5)
    names = [r["lock"] for r in rows]
    c.check("epoll lock contended", "epoll lock" in names)


def check_table_6_4_6_5(text, c):
    """Apache peak vs drop-off: tcp_sock working set and latency blow up."""
    peak = parse_profile_rows(section(text, "== Table 6.4", "== Table 6.5"))
    drop = parse_profile_rows(section(text, "== Table 6.5", "== Differential"))
    c.check("peak profile parsed", len(peak) >= 4)
    c.check("drop-off profile parsed", len(drop) >= 4)
    if not peak or not drop:
        return
    c.check("tcp_sock tops the peak profile", peak[0]["type"] == "tcp_sock")
    c.check("tcp_sock tops the drop-off profile", drop[0]["type"] == "tcp_sock")
    ws_ratio = drop[0]["ws_bytes"] / max(peak[0]["ws_bytes"], 1.0)
    c.check("tcp_sock working set grows at drop-off", ws_ratio > 1.5,
            f"({ws_ratio:.1f}x; paper 10.4x)")
    m = re.search(r"line latency \(cycles\)\s+(\d+)\s+(\d+)", text)
    c.check("latency line parsed", m is not None)
    if m:
        lat_ratio = int(m.group(2)) / max(int(m.group(1)), 1)
        c.check("tcp_sock miss latency grows at drop-off", lat_ratio > 1.2,
                f"({lat_ratio:.1f}x; paper 3x)")


def parse_function_rows(text):
    """Rows of the OProfile-style table: pct clk, pct L2 misses, function."""
    rows = []
    for line in text.splitlines():
        m = re.match(r"\s*([\d.]+)\s+([\d.]+)\s+(\S+)\s*$", line)
        if m:
            rows.append(
                {
                    "clk_pct": float(m.group(1)),
                    "l2_pct": float(m.group(2)),
                    "fn": m.group(3),
                }
            )
    return rows


def check_table_6_3(text, c):
    """OProfile-style memcached profile: flat, driver-heavy, and — the paper's
    point — the tx-queue bug's functions sit mid-table, not on top."""
    rows = parse_function_rows(section(text, "% CLK", "functions above"))
    c.check("function table parsed", len(rows) >= 15, f"({len(rows)} rows)")
    if not rows:
        return
    c.check("rows sorted by % CLK",
            all(rows[i]["clk_pct"] >= rows[i + 1]["clk_pct"]
                for i in range(len(rows) - 1)))
    names = [r["fn"] for r in rows]
    # Paper's top five (4.4% kfree .. 3.0% kmem_cache_free) is driver and
    # allocator code; the reproduction must keep those families prominent.
    for fn in ("ixgbe_xmit_frame", "ixgbe_clean_rx_irq", "kmem_cache_free"):
        c.check(f"{fn} in the profile", fn in names)
    # Paper: 29 functions above 1% CLK — a flat profile with no smoking gun.
    m = re.search(r"functions above 1% CLK:\s*(\d+)\s*\(paper:\s*29\)", text)
    c.check("above-1% summary line parsed", m is not None)
    if m:
        c.near("functions above 1% CLK", float(m.group(1)), 29.0, 15.0)
    # The diagnosis DProf makes (skb_tx_hash queue selection) is invisible
    # here: dev_queue_xmit must be present but must not top the table.
    c.check("dev_queue_xmit present mid-table", "dev_queue_xmit" in names)
    if "dev_queue_xmit" in names:
        c.check("dev_queue_xmit not in the top 3",
                names.index("dev_queue_xmit") >= 3,
                f"(rank {names.index('dev_queue_xmit') + 1})")


def check_table_6_6(text, c):
    """Lock-stat under Apache at drop-off: futex dominates, Qdisc is quiet
    (all Apache handling is core-local, unlike the memcached tx path)."""
    rows = parse_lock_rows(section(text, "Lock Name", "paper reference"))
    c.check("lock table parsed", len(rows) >= 2, f"({len(rows)} rows)")
    if not rows:
        return
    c.check("futex lock has the highest overhead", rows[0]["lock"] == "futex lock",
            f"(top: {rows[0]['lock']})")
    # Paper: 6.6% over a 30s hardware run. The simulated run is far shorter
    # and the model distance is large, so the band is wide — but futex must
    # stay materially contended.
    c.near("futex lock overhead pct", rows[0]["overhead_pct"], 6.6, 15.0)
    by_lock = {r["lock"]: r for r in rows}
    if "Qdisc lock" in by_lock:
        c.check("Qdisc lock quiet under Apache",
                by_lock["Qdisc lock"]["overhead_pct"] < 1.0,
                f"({by_lock['Qdisc lock']['overhead_pct']:.2f}%)")


def parse_history_rows(text):
    """Rows of the table-6.7 collection summary."""
    rows = []
    for line in text.splitlines():
        m = re.match(
            r"\s*(memcached|Apache)\s+(\S+)\s+(\d+)\s+(\d+)\s+(\d+)\s+([\d.]+)\s+([\d.]+)\s*$",
            line,
        )
        if m:
            rows.append(
                {
                    "bench": m.group(1),
                    "type": m.group(2),
                    "size": int(m.group(3)),
                    "histories": int(m.group(4)),
                    "sets": int(m.group(5)),
                    "time_s": float(m.group(6)),
                    "overhead_pct": float(m.group(7)),
                }
            )
    return rows


def check_table_6_7(text, c):
    """History collection: every tracked type yields histories, and the
    paper's conclusion — collection overhead stays small (its worst row is
    16%) — holds for the reproduction."""
    rows = parse_history_rows(section(text, "Benchmark", "paper reference"))
    c.check("history table parsed", len(rows) == 6, f"({len(rows)} rows)")
    if not rows:
        return
    for r in rows:
        c.check(f"{r['bench']}/{r['type']} collected histories",
                r["histories"] >= 8, f"({r['histories']})")
    worst = max(r["overhead_pct"] for r in rows)
    c.check("collection overhead stays small", worst <= 25.0,
            f"(worst {worst:.1f}%; paper worst 16%)")
    types = {r["type"] for r in rows if r["bench"] == "Apache"}
    c.check("Apache tracks tcp_sock", "tcp_sock" in types)


def parse_rate_rows(text):
    """Rows of table 6.8: bench, type, elems/history, histories/s, elems/s."""
    rows = []
    for line in text.splitlines():
        m = re.match(
            r"\s*(memcached|Apache)\s+(\S+)\s+([\d.]+)\s+(\d+)\s+(\d+)\s*$", line
        )
        if m:
            rows.append(
                {
                    "bench": m.group(1),
                    "type": m.group(2),
                    "elems_per_history": float(m.group(3)),
                    "histories_per_s": int(m.group(4)),
                    "elems_per_s": int(m.group(5)),
                }
            )
    return rows


def check_table_6_8(text, c):
    """History collection rates on the paper topology: every tracked type
    sustains a nonzero rate, and — the paper's standout row — skbuff_fclone
    is Apache's fastest collector (4600 histories/s in Table 6.8)."""
    rows = parse_rate_rows(section(text, "Benchmark", "paper reference"))
    c.check("rate table parsed", len(rows) == 6, f"({len(rows)} rows)")
    if not rows:
        return
    for r in rows:
        c.check(f"{r['bench']}/{r['type']} sustains collection",
                r["histories_per_s"] > 0 and r["elems_per_s"] > 0,
                f"({r['histories_per_s']}/s)")
    apache = [r for r in rows if r["bench"] == "Apache"]
    if apache:
        fastest = max(apache, key=lambda r: r["histories_per_s"])
        c.check("skbuff_fclone fastest Apache collector",
                fastest["type"] == "skbuff_fclone", f"(fastest: {fastest['type']})")
    types = {r["type"] for r in apache}
    c.check("Apache tracks tcp_sock", "tcp_sock" in types)


def parse_breakdown_rows(text):
    """Rows of table 6.9: type, interrupt/memory/communication percents."""
    rows = []
    for line in text.splitlines():
        m = re.match(r"\s*(\S+)\s+(\d+)%\s+(\d+)%\s+(\d+)%\s*$", line)
        if m:
            rows.append(
                {
                    "type": m.group(1),
                    "interrupts_pct": int(m.group(2)),
                    "memory_pct": int(m.group(3)),
                    "communication_pct": int(m.group(4)),
                }
            )
    return rows


def check_table_6_9(text, c):
    """Overhead breakdown: the three cost classes partition each row, setup
    broadcasts (communication) dominate skbuff_fclone as in the paper, and
    memory reservations never lead (paper worst: 10%)."""
    rows = parse_breakdown_rows(section(text, "Data Type", "paper reference"))
    c.check("breakdown table parsed", len(rows) == 4, f"({len(rows)} rows)")
    if not rows:
        return
    by_type = {r["type"]: r for r in rows}
    for r in rows:
        total = r["interrupts_pct"] + r["memory_pct"] + r["communication_pct"]
        c.check(f"{r['type']} percents partition the cost", abs(total - 100) <= 2,
                f"(sum {total}%)")
        c.check(f"{r['type']} memory share stays minor", r["memory_pct"] <= 25,
                f"({r['memory_pct']}%)")
    if "skbuff_fclone" in by_type:
        c.near("skbuff_fclone communication share",
               by_type["skbuff_fclone"]["communication_pct"], 90.0, 15.0)


def parse_pairwise_rows(text):
    """Rows of table 6.10: bench, type, size, histories/sets, time, overhead."""
    rows = []
    for line in text.splitlines():
        m = re.match(
            r"\s*(memcached|Apache)\s+(\S+)\s+(\d+)\s+(\d+)/(\d+)\s+([\d.]+)\s+([\d.]+)\s*$",
            line,
        )
        if m:
            rows.append(
                {
                    "bench": m.group(1),
                    "type": m.group(2),
                    "size": int(m.group(3)),
                    "histories": int(m.group(4)),
                    "sets": int(m.group(5)),
                    "time_s": float(m.group(6)),
                    "overhead_pct": float(m.group(7)),
                }
            )
    return rows


def check_table_6_10(text, c):
    """Pairwise sampling: object sizes match the paper's, every sweep yields
    histories, and the paper's conclusion — overhead stays tolerable (its
    worst row is 18%) — holds."""
    rows = parse_pairwise_rows(section(text, "Benchmark", "note:"))
    c.check("pairwise table parsed", len(rows) == 6, f"({len(rows)} rows)")
    if not rows:
        return
    paper_sizes = {"size-1024": 1024, "skbuff": 256, "skbuff_fclone": 512,
                   "tcp_sock": 1600}
    for r in rows:
        c.check(f"{r['bench']}/{r['type']} object size matches paper",
                r["size"] == paper_sizes.get(r["type"]), f"({r['size']}B)")
        c.check(f"{r['bench']}/{r['type']} pairwise sweep collected",
                r["histories"] > 0 and r["sets"] >= 1,
                f"({r['histories']}/{r['sets']})")
    worst = max(r["overhead_pct"] for r in rows)
    c.check("pairwise overhead stays tolerable", worst <= 20.0,
            f"(worst {worst:.1f}%; paper worst 18%)")


SPECS = {
    "table_6_1_memcached_profile": check_table_6_1,
    "table_6_2_lockstat_memcached": check_table_6_2,
    "table_6_3_oprofile_memcached": check_table_6_3,
    "table_6_4_6_5_apache_profile": check_table_6_4_6_5,
    "table_6_6_lockstat_apache": check_table_6_6,
    "table_6_7_history_collection": check_table_6_7,
    "table_6_8_history_rates": check_table_6_8,
    "table_6_9_overhead_breakdown": check_table_6_9,
    "table_6_10_pairwise": check_table_6_10,
}


def check_sampled_scenario(dprof, c, scenario, expected_top):
    """The sampled-mode run (statistical fast-forward) must reproduce the
    exact run's data-profile conclusions: same dominant type, and every
    reported per-type confidence interval covers the exact-mode share. The
    tolerances are the intervals themselves — sampling widens them, it must
    not move the conclusions."""
    base = [dprof, "run", scenario, "--json",
            "--cycles", "10000000", "--threads", "4"]
    exact_proc = subprocess.run(base, capture_output=True, text=True)
    sampled_proc = subprocess.run(base + ["--sampled"], capture_output=True, text=True)
    c.check("exact run succeeded", exact_proc.returncode == 0)
    c.check("sampled run succeeded", sampled_proc.returncode == 0)
    if exact_proc.returncode != 0 or sampled_proc.returncode != 0:
        return
    exact = json.loads(exact_proc.stdout)
    sampled = json.loads(sampled_proc.stdout)
    s = sampled.get("sampling", {})
    c.check("sampling block present", s.get("enabled") is True)
    # FF epochs are coarse (ff_epoch_cycles) while detailed ones stay short,
    # so compare work, not epoch counts: most accesses must be fast-forwarded.
    c.check("run mostly fast-forwarded", s.get("scale", 0) >= 2.0,
            f"(scale {s.get('scale', 0):.1f}x, ff_epochs {s.get('ff_epochs')})")
    ex_rows = exact.get("profile", [])
    sa_rows = sampled.get("profile", [])
    c.check("profiles non-empty", bool(ex_rows) and bool(sa_rows))
    if not ex_rows or not sa_rows:
        return
    top = expected_top if expected_top else ex_rows[0]["type"]
    c.check(f"{top} tops both profiles",
            ex_rows[0]["type"] == sa_rows[0]["type"] == top,
            f"(exact: {ex_rows[0]['type']}, sampled: {sa_rows[0]['type']})")
    ex_by = {r["type"]: r["miss_pct"] for r in ex_rows}
    types = s.get("types", [])
    c.check("per-type intervals reported", len(types) >= 5, f"({len(types)})")
    shared = [t for t in types if t["type"] in ex_by]
    covered = [t for t in shared if t["ci_lo"] <= ex_by[t["type"]] <= t["ci_hi"]]
    c.check("intervals cover exact shares", len(covered) == len(shared),
            f"({len(covered)}/{len(shared)})")
    mr = s.get("l1_miss_rate", {})
    h = exact.get("hierarchy", {})
    if h.get("accesses"):
        exact_mr = 100.0 * h["l1_misses"] / h["accesses"]
        c.check("miss-rate interval covers exact rate",
                mr.get("ci_lo", 0) <= exact_mr <= mr.get("ci_hi", 100),
                f"(exact {exact_mr:.1f}%, ci [{mr.get('ci_lo', 0):.1f}, "
                f"{mr.get('ci_hi', 100):.1f}])")


# Checks that drive `dprof run` directly instead of a table bench. The
# expected dominant types are this reproduction's exact-mode results for
# the paper's workloads: table 6.1 ranks memcached's 1024-byte slab class
# first; the Apache profile (tables 6.4-6.5 regime) is led by tcp_sock.
RUN_SPECS = {
    "sampled_run_memcached": lambda dprof, c: check_sampled_scenario(
        dprof, c, "memcached", "size-1024"),
    "sampled_run_apache": lambda dprof, c: check_sampled_scenario(
        dprof, c, "apache", "tcp_sock"),
}


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--dprof", default="./build/dprof")
    parser.add_argument("--only", default="", help="comma-separated table names")
    args = parser.parse_args()

    all_names = set(SPECS) | set(RUN_SPECS)
    only = {name for name in args.only.split(",") if name}
    names = sorted(only if only else all_names)
    unknown = [n for n in names if n not in all_names]
    if unknown:
        print(f"FAIL: no check spec for: {', '.join(unknown)}")
        return 1

    failed = []
    for name in names:
        print(f"== {name}")
        if name in RUN_SPECS:
            checker = Checker(name)
            RUN_SPECS[name](args.dprof, checker)
            if checker.failures:
                failed.append(name)
            continue
        proc = subprocess.run(
            [args.dprof, "bench", name, "--json"], capture_output=True, text=True
        )
        if proc.returncode != 0:
            print(f"  FAIL  dprof bench {name} exited {proc.returncode}")
            failed.append(name)
            continue
        doc = json.loads(proc.stdout)
        exit_metric = {m["name"]: m["value"] for m in doc.get("metrics", [])}
        if exit_metric.get("exit_code", 1) != 0:
            print(f"  FAIL  bench program exit_code {exit_metric.get('exit_code')}")
            failed.append(name)
            continue
        checker = Checker(name)
        SPECS[name](doc.get("output", ""), checker)
        if checker.failures:
            failed.append(name)

    if failed:
        print(f"\nFAIL: table reproductions out of tolerance: {', '.join(failed)}")
        return 1
    print("\nOK: all checked table reproductions within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
