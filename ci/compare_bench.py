#!/usr/bin/env python3
"""Compares two `dprof bench micro_costs --json` documents.

Usage: compare_bench.py BASELINE.json CURRENT.json [--threshold 0.20]

Fails (exit 1) when any host-cost metric (unit ns/op or s) regresses by more
than the threshold relative to the baseline. Simulated-cost-model constants
(unit "cycles") are reported but never fail the build: changing the model is
a reviewed decision, not a perf regression.
"""

import argparse
import json
import sys


def load_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    return {m["name"]: m for m in doc.get("metrics", [])}


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.20)
    args = parser.parse_args()

    base = load_metrics(args.baseline)
    cur = load_metrics(args.current)

    failures = []
    for name, metric in sorted(cur.items()):
        if name not in base:
            print(f"  NEW    {name:40s} {metric['value']:.2f} {metric['unit']}")
            continue
        old = base[name]
        unit = metric.get("unit", "")
        if unit in ("ns/op", "s") and old["value"] > 0:
            ratio = metric["value"] / old["value"]
            status = "OK"
            if ratio > 1.0 + args.threshold:
                status = "REGRESSION"
                failures.append(name)
            print(
                f"  {status:10s} {name:40s} {old['value']:10.2f} -> "
                f"{metric['value']:10.2f} {unit} ({ratio:.2f}x)"
            )
        else:
            changed = "changed" if metric["value"] != old["value"] else "same"
            print(
                f"  CONST-{changed:7s} {name:36s} {old['value']:.2f} -> "
                f"{metric['value']:.2f} {unit}"
            )

    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) regressed more than "
              f"{args.threshold * 100:.0f}%: {', '.join(failures)}")
        return 1
    print("\nbench comparison passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
