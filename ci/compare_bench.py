#!/usr/bin/env python3
"""Compares two `dprof bench ... --json` documents (micro_costs, parallel_engine).

Usage: compare_bench.py BASELINE.json CURRENT.json [--threshold 0.20]
                        [--only name1,name2] [--volatile-prefix prefix]

Fails (exit 1) when any host-cost metric (unit ns/op, ns/access, or s)
regresses by more than the threshold relative to the baseline. With --only, only the listed
metrics are gate-eligible (the rest are informational) — used for benches
like parallel_engine where some timings (hardware-thread scaling on shared
runners) are too noisy to gate on. Simulated-cost-model constants (unit
"cycles") are reported but never fail the build: changing the model is a
reviewed decision, not a perf regression.

Metrics matching --volatile-prefix (e.g. whatif_candidate_) are SKIPped,
never gated, and never treated as missing: the whatif bench names its rows
after whichever candidate fixes the profile ranked that release, so the row
set legitimately differs across baselines.
"""

import argparse
import json
import sys


def load_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    return {m["name"]: m for m in doc.get("metrics", [])}


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.20)
    parser.add_argument(
        "--only",
        default="",
        help="comma-separated metric names eligible to fail the gate",
    )
    parser.add_argument(
        "--volatile-prefix",
        default="",
        help="metric-name prefix whose rows are informational only and may "
        "appear on either side without failing (ranked whatif candidates)",
    )
    args = parser.parse_args()

    base = load_metrics(args.baseline)
    cur = load_metrics(args.current)
    only = {name for name in args.only.split(",") if name}

    def volatile(name):
        return bool(args.volatile_prefix) and name.startswith(args.volatile_prefix)

    # A gated metric the current run dropped must fail loudly, not pass
    # silently (renamed metric, truncated bench output). A gated metric the
    # *baseline* lacks is a newly added row (the merge base predates it) and
    # gates from the next change on. One absent from both sides is accepted
    # only when the bench says so itself — it must emit a matching
    # *_skipped_* annotation (e.g. engine_threads4_skipped_hw_too_small for
    # engine_threads4_seconds on a <4-thread runner); without one, a
    # misspelled gate name or a silently dropped row must still fail.
    def skip_annotated(name, metrics):
        stem = name[: -len("_seconds")] if name.endswith("_seconds") else name
        return any(m.startswith(stem + "_skipped") for m in metrics)

    missing = []
    for name in sorted(only):
        if name in cur or volatile(name):
            continue
        if name in base:
            missing.append(name)
        elif skip_annotated(name, cur):
            print(f"  SKIP       {name:40s} absent from baseline and current "
                  f"(bench annotated the skip on this host)")
        else:
            missing.append(name)
    if missing:
        print(f"FAIL: gated metric(s) missing from current run: "
              f"{', '.join(missing)}")
        return 1

    failures = []
    for name in sorted(base):
        if name not in cur and volatile(name):
            print(f"  SKIP       {name:40s} volatile row absent from current run")
    for name, metric in sorted(cur.items()):
        if volatile(name):
            side = "both runs" if name in base else "current run only"
            print(
                f"  SKIP       {name:40s} {metric['value']:10.2f} "
                f"{metric.get('unit', '')} (volatile, {side})"
            )
            continue
        if name not in base:
            print(f"  NEW    {name:40s} {metric['value']:.2f} {metric['unit']}")
            continue
        old = base[name]
        unit = metric.get("unit", "")
        if only and name not in only:
            print(
                f"  INFO       {name:40s} {old['value']:10.2f} -> "
                f"{metric['value']:10.2f} {unit}"
            )
            continue
        if unit in ("ns/op", "ns/access", "s") and old["value"] > 0:
            ratio = metric["value"] / old["value"]
            status = "OK"
            if ratio > 1.0 + args.threshold:
                status = "REGRESSION"
                failures.append(name)
            print(
                f"  {status:10s} {name:40s} {old['value']:10.2f} -> "
                f"{metric['value']:10.2f} {unit} ({ratio:.2f}x)"
            )
        else:
            changed = "changed" if metric["value"] != old["value"] else "same"
            print(
                f"  CONST-{changed:7s} {name:36s} {old['value']:.2f} -> "
                f"{metric['value']:.2f} {unit}"
            )

    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) regressed more than "
              f"{args.threshold * 100:.0f}%: {', '.join(failures)}")
        return 1
    print("\nbench comparison passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
